// Package cache implements the storage half of a Ruby-style cache
// controller: a set-associative tag/data array with LRU replacement and
// per-byte dirty masks.
//
// Protocol state machines (package protocol and the controllers built
// on it) own the line *state*; this package only stores it, finds
// victims, and moves bytes. Per-byte masks exist because VIPER is a
// write-through protocol that merges partial-line writes, and because
// false sharing — distinct variables in one line — is the bug surface
// the tester deliberately provokes.
package cache

import (
	"fmt"

	"drftest/internal/mem"
)

// Config sizes a cache array. All three values must be powers of two
// and SizeBytes must be at least Assoc*LineSize.
type Config struct {
	SizeBytes int
	LineSize  int
	Assoc     int
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / (c.LineSize * c.Assoc) }

func (c Config) validate() error {
	if c.SizeBytes <= 0 || c.LineSize <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache: non-positive config %+v", c)
	}
	for _, v := range []int{c.SizeBytes, c.LineSize, c.Assoc} {
		if v&(v-1) != 0 {
			return fmt.Errorf("cache: %d is not a power of two", v)
		}
	}
	if c.Sets() < 1 {
		return fmt.Errorf("cache: size %dB too small for %d-way %dB lines", c.SizeBytes, c.Assoc, c.LineSize)
	}
	return nil
}

// Line is one cache line. State is protocol-defined; Valid merely says
// the tag is meaningful (a line whose protocol state is the protocol's
// invalid state has Valid=false after Invalidate).
type Line struct {
	Tag   mem.Addr // line-aligned address
	Valid bool
	State int
	Data  []byte
	Dirty []bool

	lastUse uint64

	// epoch is the array's snapshot epoch this line was last journaled
	// in; while a snapshot is armed, any access that can hand the line
	// out for mutation saves an undo record the first time per epoch.
	epoch uint64
}

// ClearDirty resets the line's per-byte dirty mask.
func (l *Line) ClearDirty() {
	for i := range l.Dirty {
		l.Dirty[i] = false
	}
}

// WriteMasked merges src into the line under mask (nil = all bytes) and
// marks the written bytes dirty.
func (l *Line) WriteMasked(src []byte, mask []bool) {
	for i := range src {
		if mask != nil && !mask[i] {
			continue
		}
		l.Data[i] = src[i]
		l.Dirty[i] = true
	}
}

// Array is a set-associative cache array with true-LRU replacement.
type Array struct {
	cfg      Config
	sets     [][]Line
	useClock uint64

	// lines/data/dirty alias the flat slabs the sets are sliced from,
	// kept so snapshots can copy the whole array in three copies.
	lines []Line
	data  []byte
	dirty []bool

	// stats
	lookups uint64
	hits    uint64

	// Snapshot support: snap is the armed snapshot (nil when
	// journaling is off), epoch the current arming generation, and
	// journal the undo log of lines touched since arming. Restoring
	// the armed snapshot replays the journal — O(lines touched) — so
	// campaign forks skip the O(sets×ways) Reset scan.
	snap    *ArraySnapshot
	epoch   uint64
	journal []lineUndo
}

// ArraySnapshot is a deep copy of an Array's contents at one instant.
// A snapshot of a clean array (every line invalid with a zeroed LRU
// stamp — the just-built or just-reset state) retains no line copies
// at all: clean is set and the slices stay nil, making warm-fork
// snapshot capture O(1) instead of O(capacity).
type ArraySnapshot struct {
	lines    []Line // scalar fields only; Data/Dirty live in data/dirty
	data     []byte
	dirty    []bool
	clean    bool
	useClock uint64
	lookups  uint64
	hits     uint64
}

type lineUndo struct {
	l    *Line
	save Line // value copy; save.Data/save.Dirty are private buffers
}

// NewArray builds an array for cfg; it panics on an invalid config
// because sizing errors are programming mistakes, not runtime input.
func NewArray(cfg Config) *Array {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	// One flat allocation each for the lines, data bytes and dirty
	// masks, sliced per line: building an array costs five allocations
	// regardless of size, instead of two per line. Full slice
	// expressions pin each line's capacity so no write can spill into a
	// neighbour.
	a := &Array{cfg: cfg, sets: make([][]Line, cfg.Sets())}
	total := cfg.Sets() * cfg.Assoc
	ls := cfg.LineSize
	lines := make([]Line, total)
	data := make([]byte, total*ls)
	dirty := make([]bool, total*ls)
	for i := range lines {
		lines[i].Data = data[i*ls : (i+1)*ls : (i+1)*ls]
		lines[i].Dirty = dirty[i*ls : (i+1)*ls : (i+1)*ls]
	}
	for s := range a.sets {
		a.sets[s] = lines[s*cfg.Assoc : (s+1)*cfg.Assoc : (s+1)*cfg.Assoc]
	}
	a.lines, a.data, a.dirty = lines, data, dirty
	return a
}

// Config returns the array's configuration.
func (a *Array) Config() Config { return a.cfg }

// Reset invalidates every line and zeroes the LRU clock and stats,
// returning the array to its just-built state without reallocating.
// Stale line data and dirty masks need not be cleared: invalid lines
// are never read (Valid gates every lookup, and Victim prefers an
// invalid way regardless of tag), and Install zeroes both when a way
// is claimed.
// Reset also disarms any armed snapshot rather than journaling every
// line; restoring that snapshot later still works via the
// full-copy-back path.
func (a *Array) Reset() {
	for s := range a.sets {
		for w := range a.sets[s] {
			a.sets[s][w].Valid = false
			a.sets[s][w].lastUse = 0
		}
	}
	a.useClock = 0
	a.lookups, a.hits = 0, 0
	a.snap = nil
	a.journal = a.journal[:0]
}

func (a *Array) setIndex(line mem.Addr) int {
	return int(line/mem.Addr(a.cfg.LineSize)) & (a.cfg.Sets() - 1)
}

// Lookup returns the line holding addr's cache line, or nil on miss.
// A hit refreshes LRU state.
func (a *Array) Lookup(addr mem.Addr) *Line {
	line := mem.LineAddr(addr, a.cfg.LineSize)
	set := a.sets[a.setIndex(line)]
	a.lookups++
	for w := range set {
		if set[w].Valid && set[w].Tag == line {
			if a.snap != nil && set[w].epoch != a.epoch {
				a.journalLine(&set[w])
			}
			a.useClock++
			set[w].lastUse = a.useClock
			a.hits++
			return &set[w]
		}
	}
	return nil
}

// Peek is Lookup without LRU or stats side effects. (The returned
// line may still be mutated by the caller, so it is journaled like any
// other escape while a snapshot is armed.)
func (a *Array) Peek(addr mem.Addr) *Line {
	line := mem.LineAddr(addr, a.cfg.LineSize)
	set := a.sets[a.setIndex(line)]
	for w := range set {
		if set[w].Valid && set[w].Tag == line {
			if a.snap != nil && set[w].epoch != a.epoch {
				a.journalLine(&set[w])
			}
			return &set[w]
		}
	}
	return nil
}

// Victim returns the line that would be evicted to make room for addr:
// an invalid way if one exists, otherwise the least recently used way
// for which mayEvict returns true (nil mayEvict allows all). It returns
// nil when every way is pinned — the caller must stall, exactly like a
// Ruby controller waiting on a busy set.
func (a *Array) Victim(addr mem.Addr, mayEvict func(*Line) bool) *Line {
	set := a.sets[a.setIndex(mem.LineAddr(addr, a.cfg.LineSize))]
	var victim *Line
	for w := range set {
		l := &set[w]
		if !l.Valid {
			victim = l
			break
		}
		if mayEvict != nil && !mayEvict(l) {
			continue
		}
		if victim == nil || l.lastUse < victim.lastUse {
			victim = l
		}
	}
	if victim != nil && a.snap != nil && victim.epoch != a.epoch {
		a.journalLine(victim)
	}
	return victim
}

// Install claims way for addr's line: sets the tag, validates it,
// zeroes the data and dirty mask, and refreshes LRU. The way must come
// from Victim (or be otherwise known free).
func (a *Array) Install(way *Line, addr mem.Addr, state int) *Line {
	if a.snap != nil && way.epoch != a.epoch {
		a.journalLine(way)
	}
	way.Tag = mem.LineAddr(addr, a.cfg.LineSize)
	way.Valid = true
	way.State = state
	for i := range way.Data {
		way.Data[i] = 0
		way.Dirty[i] = false
	}
	a.useClock++
	way.lastUse = a.useClock
	return way
}

// Invalidate drops addr's line if present.
func (a *Array) Invalidate(addr mem.Addr) {
	if l := a.Peek(addr); l != nil {
		l.Valid = false
	}
}

// FlashInvalidate visits every valid line (the VIPER load-acquire
// semantic). If visit returns false the line is kept — controllers use
// this to preserve lines with in-flight transactions.
func (a *Array) FlashInvalidate(visit func(*Line) bool) int {
	n := 0
	for s := range a.sets {
		for w := range a.sets[s] {
			l := &a.sets[s][w]
			if !l.Valid {
				continue
			}
			if a.snap != nil && l.epoch != a.epoch {
				a.journalLine(l)
			}
			if visit == nil || visit(l) {
				l.Valid = false
				n++
			}
		}
	}
	return n
}

// ForEachValid visits every valid line. Visitors may mutate the line
// (controllers use this for write-back flushes), so each visited line
// is journaled while a snapshot is armed.
func (a *Array) ForEachValid(visit func(*Line)) {
	for s := range a.sets {
		for w := range a.sets[s] {
			if a.sets[s][w].Valid {
				if a.snap != nil && a.sets[s][w].epoch != a.epoch {
					a.journalLine(&a.sets[s][w])
				}
				visit(&a.sets[s][w])
			}
		}
	}
}

// CountValid returns the number of valid lines.
func (a *Array) CountValid() int {
	n := 0
	a.ForEachValid(func(*Line) { n++ })
	return n
}

// Stats returns (lookups, hits) since construction.
func (a *Array) Stats() (lookups, hits uint64) { return a.lookups, a.hits }

// journalLine saves l's pre-mutation state into the undo journal, once
// per line per arming epoch. Journal entries keep their saved-copy
// buffers across truncation, so steady-state forking journals without
// allocating.
func (a *Array) journalLine(l *Line) {
	n := len(a.journal)
	if n < cap(a.journal) {
		a.journal = a.journal[:n+1]
		u := &a.journal[n]
		d, m := u.save.Data, u.save.Dirty
		u.l = l
		u.save = *l
		u.save.Data = append(d[:0], l.Data...)
		u.save.Dirty = append(m[:0], l.Dirty...)
	} else {
		u := lineUndo{l: l, save: *l}
		u.save.Data = append([]byte(nil), l.Data...)
		u.save.Dirty = append([]bool(nil), l.Dirty...)
		a.journal = append(a.journal, u)
	}
	l.epoch = a.epoch
}

// Snapshot deep-copies the array (three flat copies plus scalars) and
// arms undo journaling so Restore of this snapshot replays only the
// lines touched since. The snapshot shares no mutable storage with
// the array and stays valid across later snapshots, restores and
// resets.
func (a *Array) Snapshot() *ArraySnapshot {
	s := &ArraySnapshot{
		useClock: a.useClock,
		lookups:  a.lookups,
		hits:     a.hits,
	}
	if a.isClean() {
		// Nothing worth copying: invalid lines are never read (Install
		// zeroes a claimed way), so the restore path can reproduce this
		// state with a Reset-style invalidation scan instead of a copy.
		s.clean = true
	} else {
		s.lines = append([]Line(nil), a.lines...)
		s.data = append([]byte(nil), a.data...)
		s.dirty = append([]bool(nil), a.dirty...)
	}
	a.snap = s
	a.journal = a.journal[:0]
	a.epoch++
	return s
}

// isClean reports whether every line is invalid with a zeroed LRU
// stamp — the just-built / just-reset state a warm-fork snapshot is
// taken over. The scan touches only line headers, a fraction of the
// copy it avoids.
func (a *Array) isClean() bool {
	for i := range a.lines {
		if a.lines[i].Valid || a.lines[i].lastUse != 0 {
			return false
		}
	}
	return true
}

// Restore returns the array to the state captured by s. When s is the
// armed snapshot the undo journal is replayed in reverse — O(lines
// touched since Snapshot). Otherwise every line is copied back from
// the snapshot and s becomes the armed snapshot.
func (a *Array) Restore(s *ArraySnapshot) {
	if a.snap == s {
		for i := len(a.journal) - 1; i >= 0; i-- {
			u := &a.journal[i]
			l := u.l
			copy(l.Data, u.save.Data)
			copy(l.Dirty, u.save.Dirty)
			l.Tag, l.Valid, l.State = u.save.Tag, u.save.Valid, u.save.State
			l.lastUse, l.epoch = u.save.lastUse, u.save.epoch
		}
		a.journal = a.journal[:0]
	} else {
		if s.clean {
			for i := range a.lines {
				l := &a.lines[i]
				l.Valid, l.lastUse, l.epoch = false, 0, 0
			}
		} else {
			copy(a.data, s.data)
			copy(a.dirty, s.dirty)
			for i := range a.lines {
				l, sl := &a.lines[i], &s.lines[i]
				l.Tag, l.Valid, l.State, l.lastUse = sl.Tag, sl.Valid, sl.State, sl.lastUse
				l.epoch = 0
			}
		}
		a.snap = s
		a.journal = a.journal[:0]
		a.epoch++
	}
	a.useClock, a.lookups, a.hits = s.useClock, s.lookups, s.hits
}
