package cache

import (
	"testing"
	"testing/quick"

	"drftest/internal/mem"
)

var cfg64 = Config{SizeBytes: 1024, LineSize: 64, Assoc: 2} // 8 sets × 2 ways

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineSize: 64, Assoc: 2},
		{SizeBytes: 1000, LineSize: 64, Assoc: 2},  // not a power of two
		{SizeBytes: 64, LineSize: 64, Assoc: 2},    // too small for assoc
		{SizeBytes: 1024, LineSize: 48, Assoc: 2},  // line not power of two
		{SizeBytes: 1024, LineSize: 64, Assoc: -1}, // negative
	}
	for _, c := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewArray(%+v) did not panic", c)
				}
			}()
			NewArray(c)
		}()
	}
	if got := cfg64.Sets(); got != 8 {
		t.Fatalf("Sets() = %d, want 8", got)
	}
}

func TestInstallThenLookup(t *testing.T) {
	a := NewArray(cfg64)
	err := quick.Check(func(raw uint16) bool {
		addr := mem.Addr(raw) * 4
		line := mem.LineAddr(addr, 64)
		v := a.Victim(addr, nil)
		a.Install(v, addr, 1)
		got := a.Lookup(addr)
		return got != nil && got.Tag == line && got.State == 1
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLookupMiss(t *testing.T) {
	a := NewArray(cfg64)
	if a.Lookup(0x1000) != nil {
		t.Fatal("empty cache hit")
	}
	lookups, hits := a.Stats()
	if lookups != 1 || hits != 0 {
		t.Fatalf("stats (%d,%d), want (1,0)", lookups, hits)
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	a := NewArray(cfg64)
	// Three lines mapping to set 0 (stride = sets*lineSize = 512).
	addrs := []mem.Addr{0, 512, 1024}
	a.Install(a.Victim(addrs[0], nil), addrs[0], 1)
	a.Install(a.Victim(addrs[1], nil), addrs[1], 1)
	a.Lookup(addrs[0]) // make addrs[1] the LRU
	v := a.Victim(addrs[2], nil)
	if !v.Valid || v.Tag != addrs[1] {
		t.Fatalf("victim is %#x (valid=%v), want %#x", uint64(v.Tag), v.Valid, uint64(addrs[1]))
	}
}

func TestVictimRespectsPin(t *testing.T) {
	a := NewArray(cfg64)
	a.Install(a.Victim(0, nil), 0, 1)
	a.Install(a.Victim(512, nil), 512, 2)
	// Pin everything: no victim available.
	if v := a.Victim(1024, func(*Line) bool { return false }); v != nil {
		t.Fatalf("pinned set yielded victim %#x", uint64(v.Tag))
	}
	// Allow only state 2.
	v := a.Victim(1024, func(l *Line) bool { return l.State == 2 })
	if v == nil || v.Tag != 512 {
		t.Fatal("filter ignored")
	}
}

func TestInstallZeroesData(t *testing.T) {
	a := NewArray(cfg64)
	v := a.Victim(0, nil)
	e := a.Install(v, 0, 1)
	e.WriteMasked([]byte{1, 2, 3}, nil)
	if !e.Dirty[0] {
		t.Fatal("WriteMasked did not mark dirty")
	}
	a.Install(e, 512, 1)
	for i, b := range e.Data[:4] {
		if b != 0 || e.Dirty[i] {
			t.Fatal("Install did not reset data/dirty")
		}
	}
}

func TestWriteMasked(t *testing.T) {
	a := NewArray(cfg64)
	e := a.Install(a.Victim(0, nil), 0, 1)
	src := make([]byte, 64)
	mask := make([]bool, 64)
	src[5], mask[5] = 0xAB, true
	e.WriteMasked(src, mask)
	if e.Data[5] != 0xAB || e.Data[4] != 0 {
		t.Fatal("masked write wrong bytes")
	}
	if !e.Dirty[5] || e.Dirty[4] {
		t.Fatal("dirty mask wrong")
	}
	e.ClearDirty()
	if e.Dirty[5] {
		t.Fatal("ClearDirty failed")
	}
}

func TestFlashInvalidate(t *testing.T) {
	a := NewArray(cfg64)
	for i := mem.Addr(0); i < 4; i++ {
		addr := i * 64
		a.Install(a.Victim(addr, nil), addr, int(i%2)) // states 0 and 1
	}
	kept := 0
	n := a.FlashInvalidate(func(l *Line) bool {
		if l.State == 1 {
			kept++
			return false
		}
		return true
	})
	if n != 2 || kept != 2 {
		t.Fatalf("flash invalidated %d, kept %d", n, kept)
	}
	if a.CountValid() != 2 {
		t.Fatalf("%d valid lines remain, want 2", a.CountValid())
	}
}

func TestInvalidate(t *testing.T) {
	a := NewArray(cfg64)
	a.Install(a.Victim(0x40, nil), 0x40, 1)
	a.Invalidate(0x40)
	if a.Peek(0x40) != nil {
		t.Fatal("line survives Invalidate")
	}
	a.Invalidate(0x9999) // no-op on absent lines
}

// TestNoAliasing: lines installed at distinct line addresses never
// collide in Lookup.
func TestNoAliasing(t *testing.T) {
	a := NewArray(Config{SizeBytes: 4096, LineSize: 64, Assoc: 4})
	installed := map[mem.Addr]bool{}
	for i := 0; i < 64; i++ {
		addr := mem.Addr(i * 64)
		v := a.Victim(addr, nil)
		if v.Valid {
			delete(installed, v.Tag)
		}
		a.Install(v, addr, 7)
		installed[addr] = true
		for tag := range installed {
			if got := a.Peek(tag); got == nil || got.Tag != tag {
				t.Fatalf("line %#x lost or aliased", uint64(tag))
			}
		}
	}
}
