package cache

import (
	"testing"

	"drftest/internal/audit"
)

// TestSnapshotFieldAudit pins the field sets of the snapshotted
// structs so a new field cannot silently escape
// Snapshot/Restore/Reset or the journal-arming access paths (see
// package audit).
func TestSnapshotFieldAudit(t *testing.T) {
	audit.Fields(t, Line{}, map[string]string{
		"Tag":     "state: copied wholesale by the line slab copy and the undo journal",
		"Valid":   "state: via line slab copy / journal",
		"State":   "state: via line slab copy / journal",
		"Data":    "state: slab-aliased bytes, copied via the data slab / journal copies",
		"Dirty":   "state: slab-aliased flags, copied via the dirty slab / journal copies",
		"lastUse": "state: via line slab copy / journal",
		"epoch":   "snapshot bookkeeping: journaled-this-epoch marker, reset on re-arm",
	})
	audit.Fields(t, Array{}, map[string]string{
		"cfg":      "config: fixed at construction",
		"sets":     "config: views into the slabs, survive Reset/Restore",
		"useClock": "state: Reset zeroes, Snapshot/Restore copy",
		"lines":    "state slab: Snapshot/Restore copy wholesale, journal copies per line",
		"data":     "state slab: via slab/journal copies",
		"dirty":    "state slab: via slab/journal copies",
		"lookups":  "stats: ResetStats zeroes, Snapshot/Restore copy",
		"hits":     "stats: ResetStats zeroes, Snapshot/Restore copy",
		"snap":     "snapshot bookkeeping: armed snapshot, Reset disarms",
		"epoch":    "snapshot bookkeeping: arming generation",
		"journal":  "snapshot bookkeeping: undo log since arming",
	})
}
