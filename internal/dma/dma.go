// Package dma models the DMA engine that application runs use to move
// buffers in and out of the heterogeneous system.
//
// Neither the GPU tester nor the CPU tester models DMA, which is why
// the paper's Fig. 10 finds a handful of directory transitions that
// only application-based testing activates. This engine exists to
// reproduce exactly that effect.
package dma

import (
	"drftest/internal/directory"
	"drftest/internal/mem"
	"drftest/internal/sim"
)

// Engine issues line-granularity reads and writes through the system
// directory, like a copy engine staging kernel buffers.
type Engine struct {
	k        *sim.Kernel
	dir      *directory.Directory
	lineSize int

	reads, writes uint64
	inflight      int
}

// New builds a DMA engine over dir.
func New(k *sim.Kernel, dir *directory.Directory, lineSize int) *Engine {
	return &Engine{k: k, dir: dir, lineSize: lineSize}
}

// Stats returns (reads, writes) completed.
func (e *Engine) Stats() (reads, writes uint64) { return e.reads, e.writes }

// Inflight returns the number of outstanding DMA operations.
func (e *Engine) Inflight() int { return e.inflight }

// CopyIn writes `lines` consecutive cache lines starting at base,
// filling them with a recognizable pattern, one op every interval
// ticks. done (may be nil) runs after the last write completes.
func (e *Engine) CopyIn(base mem.Addr, lines int, interval sim.Tick, done func()) {
	e.run(base, lines, interval, true, done)
}

// CopyOut reads `lines` consecutive cache lines starting at base.
func (e *Engine) CopyOut(base mem.Addr, lines int, interval sim.Tick, done func()) {
	e.run(base, lines, interval, false, done)
}

func (e *Engine) run(base mem.Addr, lines int, interval sim.Tick, write bool, done func()) {
	if lines <= 0 {
		if done != nil {
			e.k.Schedule(0, done)
		}
		return
	}
	line := mem.LineAddr(base, e.lineSize)
	e.inflight++
	finish := func() {
		e.inflight--
		if lines == 1 {
			if done != nil {
				done()
			}
			return
		}
		e.k.Schedule(interval, func() {
			e.run(line+mem.Addr(e.lineSize), lines-1, interval, write, done)
		})
	}
	if write {
		data := make([]byte, e.lineSize)
		for i := range data {
			data[i] = byte(uint64(line)>>6 + uint64(i))
		}
		e.dir.DMAWrite(line, data, func() {
			e.writes++
			finish()
		})
		return
	}
	e.dir.DMARead(line, func([]byte) {
		e.reads++
		finish()
	})
}
