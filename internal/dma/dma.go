// Package dma models the DMA engine that application runs use to move
// buffers in and out of the heterogeneous system.
//
// Neither the GPU tester nor the CPU tester models DMA, which is why
// the paper's Fig. 10 finds a handful of directory transitions that
// only application-based testing activates. This engine exists to
// reproduce exactly that effect.
package dma

import (
	"drftest/internal/directory"
	"drftest/internal/mem"
	"drftest/internal/sim"
)

// Engine issues line-granularity reads and writes through the system
// directory, like a copy engine staging kernel buffers.
type Engine struct {
	k        *sim.Kernel
	dir      *directory.Directory
	lineSize int

	reads, writes uint64
	inflight      int
	free          []*transfer
}

// New builds a DMA engine over dir.
func New(k *sim.Kernel, dir *directory.Directory, lineSize int) *Engine {
	return &Engine{k: k, dir: dir, lineSize: lineSize}
}

// Stats returns (reads, writes) completed.
func (e *Engine) Stats() (reads, writes uint64) { return e.reads, e.writes }

// Inflight returns the number of outstanding DMA operations.
func (e *Engine) Inflight() int { return e.inflight }

// CopyIn writes `lines` consecutive cache lines starting at base,
// filling them with a recognizable pattern, one op every interval
// ticks. done (may be nil) runs after the last write completes.
func (e *Engine) CopyIn(base mem.Addr, lines int, interval sim.Tick, done func()) {
	e.run(base, lines, interval, true, done)
}

// CopyOut reads `lines` consecutive cache lines starting at base.
func (e *Engine) CopyOut(base mem.Addr, lines int, interval sim.Tick, done func()) {
	e.run(base, lines, interval, false, done)
}

// transfer is one CopyIn/CopyOut in flight: pooled, with its callbacks
// prebound and (for writes) one pattern buffer reused line to line, so
// a transfer allocates nothing per line. Buffer reuse is safe because
// the next write is only issued after the previous one completed, long
// after the directory copied the borrowed bytes into its own line.
type transfer struct {
	e        *Engine
	line     mem.Addr
	left     int
	interval sim.Tick
	write    bool
	done     func()
	buf      []byte

	stepFn   func()
	wrDoneFn func()
	rdDoneFn func([]byte)
}

func (e *Engine) getXfer() *transfer {
	if n := len(e.free); n > 0 {
		t := e.free[n-1]
		e.free = e.free[:n-1]
		return t
	}
	t := &transfer{e: e}
	t.stepFn = t.step
	t.wrDoneFn = t.wrDone
	t.rdDoneFn = t.rdDone
	return t
}

func (e *Engine) putXfer(t *transfer) {
	t.line, t.left, t.interval, t.write, t.done = 0, 0, 0, false, nil
	e.free = append(e.free, t)
}

func (e *Engine) run(base mem.Addr, lines int, interval sim.Tick, write bool, done func()) {
	if lines <= 0 {
		if done != nil {
			e.k.Schedule(0, done)
		}
		return
	}
	t := e.getXfer()
	t.line = mem.LineAddr(base, e.lineSize)
	t.left, t.interval, t.write, t.done = lines, interval, write, done
	e.inflight++
	t.issue()
}

func (t *transfer) issue() {
	e := t.e
	if t.write {
		if t.buf == nil {
			t.buf = make([]byte, e.lineSize)
		}
		for i := range t.buf {
			t.buf[i] = byte(uint64(t.line)>>6 + uint64(i))
		}
		e.dir.DMAWrite(t.line, t.buf, t.wrDoneFn)
		return
	}
	e.dir.DMARead(t.line, t.rdDoneFn)
}

func (t *transfer) wrDone() {
	t.e.writes++
	t.finish()
}

func (t *transfer) rdDone([]byte) {
	t.e.reads++
	t.finish()
}

// finish completes one line: the last line runs done synchronously
// (after the transfer is recycled — done may start another transfer);
// otherwise the next line is issued after the inter-op interval. The
// in-flight count drops across the gap, as it always has: Inflight
// counts issued-but-incomplete line ops, not active transfers.
func (t *transfer) finish() {
	e := t.e
	e.inflight--
	if t.left == 1 {
		done := t.done
		e.putXfer(t)
		if done != nil {
			done()
		}
		return
	}
	e.k.Schedule(t.interval, t.stepFn)
}

func (t *transfer) step() {
	t.line += mem.Addr(t.e.lineSize)
	t.left--
	t.e.inflight++
	t.issue()
}
