package dma

import (
	"testing"

	"drftest/internal/coverage"
	"drftest/internal/directory"
	"drftest/internal/mem"
	"drftest/internal/memctrl"
	"drftest/internal/sim"
)

func newRig() (*sim.Kernel, *Engine, *mem.Store, *coverage.Collector) {
	k := sim.NewKernel()
	col := coverage.NewCollector(directory.NewSpec())
	store := mem.NewStore()
	ctrl := memctrl.New(k, memctrl.DefaultConfig(), store, nil)
	dir := directory.New(k, col, nil, ctrl, 64)
	return k, New(k, dir, 64), store, col
}

func TestCopyInWritesPattern(t *testing.T) {
	k, e, store, col := newRig()
	doneAt := sim.Tick(0)
	e.CopyIn(0x1000, 8, 10, func() { doneAt = k.Now() })
	k.RunUntilIdle()
	if doneAt == 0 {
		t.Fatal("done callback never ran")
	}
	reads, writes := e.Stats()
	if reads != 0 || writes != 8 {
		t.Fatalf("stats r=%d w=%d", reads, writes)
	}
	// Every written line is non-zero and distinct per line.
	a := store.ByteAt(0x1000)
	b := store.ByteAt(0x1040)
	if a == b {
		t.Fatal("DMA pattern not line-dependent")
	}
	if col.Matrix("Directory").Hits[directory.StateU][directory.EvDMAWr] == 0 {
		t.Fatal("[U,DMA_Wr] not recorded")
	}
}

func TestCopyOutReads(t *testing.T) {
	k, e, _, col := newRig()
	done := false
	e.CopyOut(0x2000, 4, 5, func() { done = true })
	k.RunUntilIdle()
	if !done {
		t.Fatal("CopyOut never finished")
	}
	if r, _ := e.Stats(); r != 4 {
		t.Fatalf("reads=%d", r)
	}
	if col.Matrix("Directory").Hits[directory.StateU][directory.EvDMARd] == 0 {
		t.Fatal("[U,DMA_Rd] not recorded")
	}
}

func TestZeroLinesCompletesImmediately(t *testing.T) {
	k, e, _, _ := newRig()
	done := false
	e.CopyIn(0, 0, 1, func() { done = true })
	k.RunUntilIdle()
	if !done {
		t.Fatal("zero-length transfer never completed")
	}
	if e.Inflight() != 0 {
		t.Fatal("inflight count leaked")
	}
}

// TestCopyInSteadyStateAllocs pins the pooled-transfer engine: once a
// transfer object and its pattern buffer exist, repeated CopyIns over
// the same buffer allocate nothing — the per-line closures and pattern
// buffers the old engine built are gone. (CopyOut is excluded: each
// read response carries a fresh copy of the line by contract.)
func TestCopyInSteadyStateAllocs(t *testing.T) {
	k, e, _, _ := newRig()
	round := func() {
		e.CopyIn(0x1000, 8, 10, nil)
		k.RunUntilIdle()
	}
	for i := 0; i < 3; i++ {
		round()
	}
	if n := testing.AllocsPerRun(50, round); n != 0 {
		t.Fatalf("steady-state CopyIn allocates %.1f objects, want 0", n)
	}
}
