// Package audit provides the field-enumeration guard used by the
// packages that implement Snapshot/Restore/Reset: a new struct field
// compiles cleanly while silently escaping every copy path, so each
// snapshotted struct pins its field set in a test. Adding a field
// fails that test until the field is (a) handled by — or deliberately
// excluded from — Snapshot, Restore, and Reset, and (b) classified in
// the test's field list with a note saying which.
package audit

import (
	"reflect"
	"sort"
	"testing"
)

// Fields checks the concrete struct type of v against known, a map
// from field name to a short note on how Snapshot/Restore/Reset treat
// it. Unclassified fields and stale entries (renamed or removed
// fields) both fail the test.
func Fields(t *testing.T, v any, known map[string]string) {
	t.Helper()
	tp := reflect.TypeOf(v)
	for tp.Kind() == reflect.Pointer {
		tp = tp.Elem()
	}
	if tp.Kind() != reflect.Struct {
		t.Fatalf("audit.Fields: %v is not a struct", tp)
	}
	have := make(map[string]bool, tp.NumField())
	for i := 0; i < tp.NumField(); i++ {
		name := tp.Field(i).Name
		have[name] = true
		if _, ok := known[name]; !ok {
			t.Errorf("%v has unclassified field %q: handle it in Snapshot/Restore/Reset (or note why it is excluded) and add it to this audit", tp, name)
		}
	}
	names := make([]string, 0, len(known))
	for name := range known {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !have[name] {
			t.Errorf("%v audit lists field %q which no longer exists: update the audit (and check the copy paths for the rename)", tp, name)
		}
	}
}
