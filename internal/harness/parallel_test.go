package harness

import (
	"sync"
	"testing"
	"time"

	"drftest/internal/apps"
)

// runWithTimeout fails the test if fn does not return promptly — the
// regression mode for parallelDo is a deadlock, not a wrong answer.
func runWithTimeout(t *testing.T, name string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		fn()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("%s did not complete (deadlock)", name)
	}
}

func TestParallelDoZeroItems(t *testing.T) {
	runWithTimeout(t, "parallelDo(0, …)", func() {
		parallelDo(0, 4, func(i int) {
			t.Errorf("do called with i=%d for n=0", i)
		})
	})
}

func TestParallelDoMoreWorkersThanItems(t *testing.T) {
	runWithTimeout(t, "parallelDo(3, 16, …)", func() {
		var mu sync.Mutex
		seen := make(map[int]int)
		parallelDo(3, 16, func(i int) {
			mu.Lock()
			seen[i]++
			mu.Unlock()
		})
		if len(seen) != 3 {
			t.Fatalf("visited %d indices, want 3", len(seen))
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("index %d visited %d times", i, c)
			}
		}
	})
}

func TestParallelDoDefaultWorkers(t *testing.T) {
	runWithTimeout(t, "parallelDo(8, 0, …)", func() {
		var mu sync.Mutex
		n := 0
		parallelDo(8, 0, func(int) {
			mu.Lock()
			n++
			mu.Unlock()
		})
		if n != 8 {
			t.Fatalf("did %d items, want 8", n)
		}
	})
}

// TestParallelSweepMatchesSerial: the parallel runner must produce
// exactly the serial sweep's coverage (per-run determinism is per-run;
// only wall clock changes).
func TestParallelSweepMatchesSerial(t *testing.T) {
	cfgs := GPUTesterConfigs(5, 0.05)[:6]
	serial := RunGPUSweep(cfgs)
	par := RunGPUSweepParallel(cfgs, 4)
	if serial.Failures != 0 || par.Failures != 0 {
		t.Fatal("unexpected failures")
	}
	if serial.TotalEvents != par.TotalEvents || serial.TotalOps != par.TotalOps {
		t.Fatalf("parallel diverged: events %d vs %d, ops %d vs %d",
			serial.TotalEvents, par.TotalEvents, serial.TotalOps, par.TotalOps)
	}
	for i := range serial.UnionL1.Hits {
		for j := range serial.UnionL1.Hits[i] {
			if serial.UnionL1.Hits[i][j] != par.UnionL1.Hits[i][j] {
				t.Fatalf("L1 union cell (%d,%d) differs", i, j)
			}
		}
	}
	for i := range serial.UnionL2.Hits {
		for j := range serial.UnionL2.Hits[i] {
			if serial.UnionL2.Hits[i][j] != par.UnionL2.Hits[i][j] {
				t.Fatalf("L2 union cell (%d,%d) differs", i, j)
			}
		}
	}
}

// TestParallelAppSuiteMatchesSerial: for the same seeds, the parallel
// app suite must be bit-identical to the serial one — same per-run
// event counts and identical union coverage matrices, cell for cell.
// This pins the shared scaleProfile path: any drift between the serial
// and parallel profile scaling shows up as an event-count mismatch.
func TestParallelAppSuiteMatchesSerial(t *testing.T) {
	opts := AppSuiteOptions{Seed: 3, Scale: 0.05, NumWFs: 4,
		Profiles: []apps.Profile{*apps.ByName("Square"), *apps.ByName("CM"), *apps.ByName("FFT")}}
	serial := RunAppSuite(opts)
	par := RunAppSuiteParallel(opts, 3)
	if serial.TotalEvents != par.TotalEvents || serial.Faults != par.Faults {
		t.Fatalf("parallel app suite diverged: %d vs %d events", serial.TotalEvents, par.TotalEvents)
	}
	if len(serial.Runs) != len(par.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(serial.Runs), len(par.Runs))
	}
	for i := range serial.Runs {
		s, p := serial.Runs[i], par.Runs[i]
		if s.Res.Events != p.Res.Events || s.Res.MemOps != p.Res.MemOps || s.Res.Faults != p.Res.Faults {
			t.Fatalf("run %d diverged: events %d vs %d, memops %d vs %d",
				i, s.Res.Events, p.Res.Events, s.Res.MemOps, p.Res.MemOps)
		}
		if s.L1Sum != p.L1Sum || s.L2Sum != p.L2Sum {
			t.Fatalf("run %d coverage summaries diverged", i)
		}
	}
	for name, pair := range map[string][2][][]uint64{
		"L1":  {serial.UnionL1.Hits, par.UnionL1.Hits},
		"L2":  {serial.UnionL2.Hits, par.UnionL2.Hits},
		"Dir": {serial.UnionDir.Hits, par.UnionDir.Hits},
	} {
		for i := range pair[0] {
			for j := range pair[0][i] {
				if pair[0][i][j] != pair[1][i][j] {
					t.Fatalf("%s union cell (%d,%d) differs: %d vs %d",
						name, i, j, pair[0][i][j], pair[1][i][j])
				}
			}
		}
	}
}

func TestParallelCPUSweepMatchesSerial(t *testing.T) {
	cfgs := CPUTesterConfigs(9, 0.01)[:4]
	serial := RunCPUSweep(cfgs)
	par := RunCPUSweepParallel(cfgs, 4)
	if serial.Failures != 0 || par.Failures != 0 {
		t.Fatal("unexpected failures")
	}
	if serial.UnionDirSum.Active != par.UnionDirSum.Active {
		t.Fatalf("CPU sweep unions differ: %d vs %d", serial.UnionDirSum.Active, par.UnionDirSum.Active)
	}
}
