package harness

import (
	"testing"

	"drftest/internal/apps"
)

// TestParallelSweepMatchesSerial: the parallel runner must produce
// exactly the serial sweep's coverage (per-run determinism is per-run;
// only wall clock changes).
func TestParallelSweepMatchesSerial(t *testing.T) {
	cfgs := GPUTesterConfigs(5, 0.05)[:6]
	serial := RunGPUSweep(cfgs)
	par := RunGPUSweepParallel(cfgs, 4)
	if serial.Failures != 0 || par.Failures != 0 {
		t.Fatal("unexpected failures")
	}
	if serial.TotalEvents != par.TotalEvents || serial.TotalOps != par.TotalOps {
		t.Fatalf("parallel diverged: events %d vs %d, ops %d vs %d",
			serial.TotalEvents, par.TotalEvents, serial.TotalOps, par.TotalOps)
	}
	for i := range serial.UnionL1.Hits {
		for j := range serial.UnionL1.Hits[i] {
			if serial.UnionL1.Hits[i][j] != par.UnionL1.Hits[i][j] {
				t.Fatalf("L1 union cell (%d,%d) differs", i, j)
			}
		}
	}
	for i := range serial.UnionL2.Hits {
		for j := range serial.UnionL2.Hits[i] {
			if serial.UnionL2.Hits[i][j] != par.UnionL2.Hits[i][j] {
				t.Fatalf("L2 union cell (%d,%d) differs", i, j)
			}
		}
	}
}

func TestParallelAppSuiteMatchesSerial(t *testing.T) {
	opts := AppSuiteOptions{Seed: 3, Scale: 0.05, NumWFs: 4,
		Profiles: []apps.Profile{*apps.ByName("Square"), *apps.ByName("CM"), *apps.ByName("FFT")}}
	serial := RunAppSuite(opts)
	par := RunAppSuiteParallel(opts, 3)
	if serial.TotalEvents != par.TotalEvents || serial.Faults != par.Faults {
		t.Fatalf("parallel app suite diverged: %d vs %d events", serial.TotalEvents, par.TotalEvents)
	}
	if serial.UnionDirSum.Active != par.UnionDirSum.Active {
		t.Fatalf("directory unions differ: %d vs %d", serial.UnionDirSum.Active, par.UnionDirSum.Active)
	}
}

func TestParallelCPUSweepMatchesSerial(t *testing.T) {
	cfgs := CPUTesterConfigs(9, 0.01)[:4]
	serial := RunCPUSweep(cfgs)
	par := RunCPUSweepParallel(cfgs, 4)
	if serial.Failures != 0 || par.Failures != 0 {
		t.Fatal("unexpected failures")
	}
	if serial.UnionDirSum.Active != par.UnionDirSum.Active {
		t.Fatalf("CPU sweep unions differ: %d vs %d", serial.UnionDirSum.Active, par.UnionDirSum.Active)
	}
}
