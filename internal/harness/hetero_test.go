package harness

import (
	"testing"

	"drftest/internal/mem"
	"drftest/internal/viper"
)

// hclient collects responses for hand-scripted heterogeneous tests.
type hclient struct {
	responses map[uint64]*mem.Response
}

func (c *hclient) HandleResponse(r *mem.Response) {
	cp := *r // the Response is only valid during the call (mem.Requestor)
	c.responses[r.Req.ID] = &cp
}

// TestGPUWriteVisibleToCPU: a drained GPU store must be observed by a
// subsequent CPU load — the write-through went through the directory
// into memory.
func TestGPUWriteVisibleToCPU(t *testing.T) {
	b := BuildHetero(smallGPU(), 2, DefaultCPUCache)
	cl := &hclient{responses: map[uint64]*mem.Response{}}
	b.GPU.Seqs[0].SetClient(cl)
	b.Caches[0].SetClient(cl)
	b.Caches[1].SetClient(cl)

	b.GPU.Seqs[0].Issue(&mem.Request{ID: 1, Op: mem.OpStore, Addr: 0x100, Data: 42, ThreadID: 0})
	b.K.RunUntilIdle()
	b.Caches[0].Issue(&mem.Request{ID: 2, Op: mem.OpLoad, Addr: 0x100, ThreadID: 100})
	b.K.RunUntilIdle()
	if got := cl.responses[2].Data; got != 42 {
		t.Fatalf("CPU load saw %d, want 42", got)
	}
}

// TestCPUDirtyWriteVisibleToGPU: a CPU store leaves the line dirty in
// the CPU cache; a GPU load must trigger a directory probe that
// extracts the dirty data before the GPU fill.
func TestCPUDirtyWriteVisibleToGPU(t *testing.T) {
	b := BuildHetero(smallGPU(), 2, DefaultCPUCache)
	cl := &hclient{responses: map[uint64]*mem.Response{}}
	b.GPU.Seqs[0].SetClient(cl)
	b.Caches[0].SetClient(cl)
	b.Caches[1].SetClient(cl)

	b.Caches[0].Issue(&mem.Request{ID: 1, Op: mem.OpStore, Addr: 0x200, Data: 77, ThreadID: 100})
	b.K.RunUntilIdle()
	b.GPU.Seqs[0].Issue(&mem.Request{ID: 2, Op: mem.OpLoad, Addr: 0x200, ThreadID: 0})
	b.K.RunUntilIdle()
	if got := cl.responses[2].Data; got != 77 {
		t.Fatalf("GPU load saw %d, want 77 (dirty CPU owner not probed)", got)
	}
}

// TestCPUStoreInvalidatesGPUL2: the GPU caches a line in its L2; a CPU
// store must probe-invalidate it, so a post-acquire GPU load sees the
// new value — the "CPU L2 may want to own a cache line in GPU L2"
// scenario that makes PrbInv reachable for applications.
func TestCPUStoreInvalidatesGPUL2(t *testing.T) {
	b := BuildHetero(smallGPU(), 2, DefaultCPUCache)
	cl := &hclient{responses: map[uint64]*mem.Response{}}
	b.GPU.Seqs[0].SetClient(cl)
	b.Caches[0].SetClient(cl)
	b.Caches[1].SetClient(cl)

	// GPU warms the line into TCP+TCC.
	b.GPU.Seqs[0].Issue(&mem.Request{ID: 1, Op: mem.OpLoad, Addr: 0x300, ThreadID: 0})
	b.K.RunUntilIdle()
	// CPU takes the line exclusively and writes it.
	b.Caches[0].Issue(&mem.Request{ID: 2, Op: mem.OpStore, Addr: 0x300, Data: 5, ThreadID: 100})
	b.K.RunUntilIdle()
	// GPU acquire (flash-invalidates its L1), then load: must miss all
	// the way to the directory and observe the CPU's value.
	b.GPU.Seqs[0].Issue(&mem.Request{ID: 3, Op: mem.OpAtomic, Addr: 0x4000, Operand: 1, Acquire: true, ThreadID: 0})
	b.K.RunUntilIdle()
	b.GPU.Seqs[0].Issue(&mem.Request{ID: 4, Op: mem.OpLoad, Addr: 0x300, ThreadID: 0})
	b.K.RunUntilIdle()
	if got := cl.responses[4].Data; got != 5 {
		t.Fatalf("GPU post-acquire load saw %d, want 5", got)
	}
	// The TCC must have seen the probe.
	l2 := b.Col.Matrix("GPU-L2")
	probeHits := uint64(0)
	for st := range l2.Hits {
		probeHits += l2.Hits[st][7] // TCCPrbInv
	}
	if probeHits == 0 {
		t.Fatal("GPU L2 never saw a probe-invalidate")
	}
}

// TestGPUAtomicNackedWhileCPUHolds: an atomic to a CPU-held line is
// NACKed and retried until the directory cleans the CPU copies — the
// AtomicND path.
func TestGPUAtomicNackedWhileCPUHolds(t *testing.T) {
	b := BuildHetero(smallGPU(), 2, DefaultCPUCache)
	cl := &hclient{responses: map[uint64]*mem.Response{}}
	b.GPU.Seqs[0].SetClient(cl)
	b.Caches[0].SetClient(cl)
	b.Caches[1].SetClient(cl)

	b.Caches[0].Issue(&mem.Request{ID: 1, Op: mem.OpStore, Addr: 0x500, Data: 10, ThreadID: 100})
	b.K.RunUntilIdle()
	b.GPU.Seqs[0].Issue(&mem.Request{ID: 2, Op: mem.OpAtomic, Addr: 0x500, Operand: 1, ThreadID: 0})
	b.K.RunUntilIdle()
	if got := cl.responses[2].Data; got != 10 {
		t.Fatalf("atomic old value %d, want 10 (dirty data must reach memory first)", got)
	}
	nacks, _, _ := b.Dir.Stats()
	if nacks == 0 {
		t.Fatal("directory never NACKed the atomic")
	}
	l2 := b.Col.Matrix("GPU-L2")
	if l2.Hits[3][4] == 0 { // [A, AtomicND]
		t.Fatal("[A,AtomicND] retry not recorded at the TCC")
	}
	if got := b.Store.ReadWord(0x500); got != 11 {
		t.Fatalf("memory holds %d after atomic, want 11", got)
	}
}

func smallGPU() viper.Config {
	cfg := viper.SmallCacheConfig()
	cfg.NumCUs = 2
	return cfg
}
