package harness

import (
	"testing"

	"drftest/internal/core"
	"drftest/internal/viper"
)

// TestSoakLongRandomRuns hammers the full stack with larger random
// workloads across several seeds and topologies: zero failures, full
// completion, clean final audits. Skipped with -short.
func TestSoakLongRandomRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	type variant struct {
		name string
		sys  viper.Config
	}
	variants := []variant{
		{"small", viper.SmallCacheConfig()},
		{"large", viper.LargeCacheConfig()},
		{"mixed", viper.MixedCacheConfig()},
	}
	banked := viper.SmallCacheConfig()
	banked.NumL2Slices = 4
	variants = append(variants, variant{"banked", banked})

	for _, v := range variants {
		for seed := uint64(1); seed <= 3; seed++ {
			b := BuildGPU(v.sys)
			cfg := core.DefaultConfig()
			cfg.Seed = seed
			cfg.NumWavefronts = 16
			cfg.ThreadsPerWF = 4
			cfg.EpisodesPerThread = 20
			cfg.ActionsPerEpisode = 50
			cfg.NumSyncVars = 20
			cfg.NumDataVars = 2000
			rep := core.New(b.K, b.Sys, cfg).Run()
			if !rep.Passed() {
				t.Fatalf("%s seed %d: %s", v.name, seed, rep.Failures[0].TableV())
			}
			if rep.OpsCompleted != cfg.TotalActions() {
				t.Fatalf("%s seed %d: %d of %d ops completed", v.name, seed, rep.OpsCompleted, cfg.TotalActions())
			}
		}
	}
}

// TestSoakHeterogeneous runs GPU tester + host CPU traffic + DMA on
// the same heterogeneous system simultaneously — not a paper
// experiment (the paper runs testers separately), but a stress of the
// directory's cross-client race handling.
func TestSoakHeterogeneous(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	for seed := uint64(1); seed <= 3; seed++ {
		b := BuildHetero(viper.SmallCacheConfig(), 2, DefaultCPUCache)
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.NumWavefronts = 8
		cfg.EpisodesPerThread = 10
		cfg.ActionsPerEpisode = 40
		// Tester variables live far from the host's control block, so
		// the concurrent host traffic cannot race the checked data.
		cfg.AddressRangeBytes = 0x8000
		tester := core.New(b.K, b.GPU, cfg)

		host := newHostDriver(b, seed, 200, 2000)
		// Host polling only its own control block: no overlap with the
		// tester's address range.
		host.sharedProb = 0
		host.start()
		tester.Start()
		b.K.RunUntilIdle()
		host.stop()
		tester.Finish()
		tester.AuditStore(b.Store)
		if fails := tester.Failures(); len(fails) > 0 {
			t.Fatalf("seed %d: %s", seed, fails[0].TableV())
		}
	}
}
