package harness

import (
	"testing"

	"drftest/internal/checker"
	"drftest/internal/core"
	"drftest/internal/coverage"
	"drftest/internal/viper"
)

type covMatrix = coverage.Matrix

func newWBMatrix() *covMatrix { return coverage.NewMatrix(viper.NewTCCWBSpec()) }

// TestTesterDrivesWriteBackVariantUnchanged is the §IV generality
// claim: the identical DRF tester runs against the VIPER-WB protocol
// and validates it with zero extensions — only the system config
// changed.
func TestTesterDrivesWriteBackVariantUnchanged(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		sysCfg := viper.SmallCacheConfig()
		sysCfg.WriteBackL2 = true
		b := BuildGPU(sysCfg)
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.NumWavefronts = 16
		cfg.EpisodesPerThread = 8
		cfg.ActionsPerEpisode = 40
		cfg.NumSyncVars = 8
		cfg.NumDataVars = 512
		cfg.RecordTrace = true
		rep := core.New(b.K, b.Sys, cfg).Run()
		if !rep.Passed() {
			t.Fatalf("seed %d: tester failed on VIPER-WB: %s", seed, rep.Failures[0].TableV())
		}
		if rep.OpsCompleted != cfg.TotalActions() {
			t.Fatalf("seed %d: ops lost", seed)
		}
		// Independent axiomatic re-verification of the WB execution.
		if vs := checker.Verify(rep.Trace); len(vs) != 0 {
			t.Fatalf("seed %d: axiomatic checker flagged VIPER-WB: %v", seed, vs[0])
		}
		if seed == 1 {
			l2 := b.Col.Matrix("GPU-L2WB").Summarize(TCCWBImpossible())
			t.Logf("VIPER-WB L2 coverage: %s", l2)
			t.Logf("inactive: %v", b.Col.Matrix("GPU-L2WB").InactiveCells(TCCWBImpossible()))
			if l2.Active == 0 {
				t.Fatal("no WB transitions recorded")
			}
		}
	}
}

// TestTesterCatchesBugInWriteBackVariant: the non-atomic-RMW bug
// injected into the *new* protocol is still caught by the unchanged
// tester — finding bugs in freshly written protocols is the entire
// point of the methodology.
func TestTesterCatchesBugInWriteBackVariant(t *testing.T) {
	detected := 0
	for seed := uint64(1); seed <= 8; seed++ {
		sysCfg := viper.SmallCacheConfig()
		sysCfg.WriteBackL2 = true
		sysCfg.Bugs.NonAtomicRMW = true
		b := BuildGPU(sysCfg)
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.NumWavefronts = 8
		cfg.EpisodesPerThread = 8
		cfg.ActionsPerEpisode = 30
		cfg.NumSyncVars = 4
		cfg.NumDataVars = 48
		cfg.StoreFraction = 0.6
		rep := core.New(b.K, b.Sys, cfg).Run()
		if !rep.Passed() {
			detected++
		}
	}
	t.Logf("NonAtomicRMW in VIPER-WB detected in %d/8 seeds", detected)
	if detected < 4 {
		t.Fatalf("tester too weak on the write-back variant: %d/8", detected)
	}
}

// TestWBCoverageSweep: a mini Table III sweep over the write-back
// protocol reaches high coverage of its own table.
func TestWBCoverageSweep(t *testing.T) {
	union := coverageUnionWB(t, 6)
	sum := union.Summarize(TCCWBImpossible())
	t.Logf("VIPER-WB union: %s", sum)
	if sum.Coverage() < 1.0 {
		t.Errorf("WB union coverage %.1f%% below 100%%; inactive: %v",
			100*sum.Coverage(), union.InactiveCells(TCCWBImpossible()))
	}
}

func coverageUnionWB(t *testing.T, runs int) *covMatrix {
	t.Helper()
	union := newWBMatrix()
	for seed := uint64(1); seed <= uint64(runs); seed++ {
		sysCfg := viper.SmallCacheConfig()
		if seed%2 == 0 {
			sysCfg = viper.LargeCacheConfig()
		}
		sysCfg.WriteBackL2 = true
		b := BuildGPU(sysCfg)
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.NumWavefronts = 16
		cfg.EpisodesPerThread = 8
		cfg.ActionsPerEpisode = 60
		cfg.NumSyncVars = 8
		cfg.NumDataVars = 1024
		rep := core.New(b.K, b.Sys, cfg).Run()
		if !rep.Passed() {
			t.Fatalf("seed %d failed: %v", seed, rep.Failures[0])
		}
		union.Merge(b.Col.Matrix("GPU-L2WB"))
	}
	return union
}
