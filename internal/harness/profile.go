package harness

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles begins CPU and/or heap profiling for a command run.
// Either path may be empty to skip that profile. The returned stop
// function must run after the workload (defer it in main): it stops
// the CPU profile and writes the heap profile — after a GC, so the
// snapshot shows live steady-state memory rather than collectable
// garbage.
func StartProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("creating cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("starting cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "creating mem profile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "writing mem profile: %v\n", err)
			}
		}
	}, nil
}
