package harness

import (
	"encoding/json"
	"testing"

	"drftest/internal/core"
	"drftest/internal/coverage"
	"drftest/internal/viper"
)

func campaignTestCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.NumWavefronts = 8
	cfg.EpisodesPerThread = 8
	cfg.ActionsPerEpisode = 30
	cfg.NumSyncVars = 4
	cfg.NumDataVars = 64
	cfg.StoreFraction = 0.6
	cfg.KeepGoing = true
	return cfg
}

// reportJSON canonicalizes a report for equality comparison: wall time
// is the one field legitimately different between two identical runs.
func reportJSON(t *testing.T, rep *core.Report) string {
	t.Helper()
	r := *rep
	r.WallTime = 0
	b, err := json.Marshal(&r)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return string(b)
}

func requireMatrixEqual(t *testing.T, name string, a, b *coverage.Matrix) {
	t.Helper()
	if len(a.Hits) != len(b.Hits) {
		t.Fatalf("%s: state count %d vs %d", name, len(a.Hits), len(b.Hits))
	}
	for i := range a.Hits {
		for j := range a.Hits[i] {
			if a.Hits[i][j] != b.Hits[i][j] {
				t.Fatalf("%s: cell [%s][%s] = %d vs %d",
					name, a.Spec.States[i], a.Spec.Events[j], a.Hits[i][j], b.Hits[i][j])
			}
		}
	}
}

// TestResetRunBitIdentical is the guard on the whole reuse design: a
// run on a reset context must be bit-identical — report, coverage,
// failures — to a run on a freshly built system with the same seed.
// The reset context is deliberately dirtied first by a run with a
// different seed (and, in the bug cases, a run that stopped mid-flight
// with pending kernel events).
func TestResetRunBitIdentical(t *testing.T) {
	cases := []struct {
		name   string
		sysCfg func() viper.Config
		test   func(cfg *core.Config)
	}{
		{"writethrough", viper.SmallCacheConfig, func(cfg *core.Config) {}},
		{"writeback", func() viper.Config {
			c := viper.SmallCacheConfig()
			c.WriteBackL2 = true
			return c
		}, func(cfg *core.Config) {}},
		{"jitter", func() viper.Config {
			c := viper.SmallCacheConfig()
			c.RespJitter = 12
			c.JitterSeed = 99
			return c
		}, func(cfg *core.Config) {}},
		{"lostwrite-bug", func() viper.Config {
			c := viper.SmallCacheConfig()
			c.Bugs.LostWriteRace = true
			return c
		}, func(cfg *core.Config) {}},
		{"dropack-bug", func() viper.Config {
			c := viper.SmallCacheConfig()
			c.Bugs.DropWBAckEvery = 20
			return c
		}, func(cfg *core.Config) { cfg.KeepGoing = false }},
		{"trace-and-stream", viper.SmallCacheConfig, func(cfg *core.Config) {
			cfg.RecordTrace = true
			cfg.StreamCheck = true
		}},
	}
	const seed, dirtySeed = 7, 1234

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sysCfg := tc.sysCfg()
			_, l2Name, _ := campaignSpecs(sysCfg)
			testCfg := campaignTestCfg()
			tc.test(&testCfg)

			// Fresh build, run seed directly.
			fb := BuildGPU(sysCfg)
			fc := testCfg
			fc.Seed = seed
			fresh := core.New(fb.K, fb.Sys, fc).Run()
			freshL1 := fb.Col.Matrix("GPU-L1").Clone()
			freshL2 := fb.Col.Matrix(l2Name).Clone()

			// Second build: dirty it with a different seed, then reset
			// and run the same seed as above.
			rb := BuildGPU(sysCfg)
			rc := testCfg
			rc.Seed = dirtySeed
			tester := core.New(rb.K, rb.Sys, rc)
			tester.Run()
			rb.K.Reset()
			rb.Sys.Reset()
			rb.Col.Reset()
			tester.Reset(seed)
			reset := tester.Run()

			if got, want := reportJSON(t, reset), reportJSON(t, fresh); got != want {
				t.Fatalf("reset-run report differs from fresh-run report\nfresh: %s\nreset: %s", want, got)
			}
			requireMatrixEqual(t, "GPU-L1", freshL1, rb.Col.Matrix("GPU-L1"))
			requireMatrixEqual(t, l2Name, freshL2, rb.Col.Matrix(l2Name))
		})
	}
}

// TestCampaignMatchesSerial: the campaign's union coverage and failure
// set must equal a plain serial loop over the same seed sequence, and
// must not depend on the worker count.
func TestCampaignMatchesSerial(t *testing.T) {
	sysCfg := viper.SmallCacheConfig()
	sysCfg.Bugs.StaleAcquire = true // guarantee a non-empty failure set to compare
	base := CampaignConfig{
		SysCfg:    sysCfg,
		TestCfg:   campaignTestCfg(),
		BaseSeed:  100,
		Workers:   1,
		BatchSize: 4,
		SaturateK: 2,
		MaxSeeds:  48,
	}
	ref := RunGPUCampaign(base)
	if ref.SeedsRun == 0 {
		t.Fatal("campaign ran no seeds")
	}

	// Serial reference: the same seeds through the one-shot RunGPUTest
	// path (fresh build per run, no campaign machinery at all).
	serialL1 := coverage.NewMatrix(viper.NewTCPSpec())
	serialL2 := coverage.NewMatrix(viper.NewTCCSpec())
	var serialFailures []SeedFailure
	for i := 0; i < ref.SeedsRun; i++ {
		seed := base.BaseSeed + uint64(i)
		tc := base.TestCfg
		tc.Seed = seed
		r := RunGPUTest(GPUTestConfig{SysCfg: sysCfg, TestCfg: tc})
		serialL1.Merge(r.L1)
		serialL2.Merge(r.L2)
		if len(r.Report.Failures) > 0 {
			serialFailures = append(serialFailures, SeedFailure{Seed: seed, Failures: r.Report.Failures})
		}
	}
	requireMatrixEqual(t, "GPU-L1 union", serialL1, ref.UnionL1)
	requireMatrixEqual(t, "GPU-L2 union", serialL2, ref.UnionL2)
	requireFailuresEqual(t, serialFailures, ref.Failures)

	// Worker-count independence: more workers, identical outcome.
	par := base
	par.Workers = 3
	par.Rebuild = true // also crosses the rebuild/reuse mode boundary
	got := RunGPUCampaign(par)
	if got.SeedsRun != ref.SeedsRun || got.Batches != ref.Batches || got.Saturated != ref.Saturated {
		t.Fatalf("workers=3: seeds/batches/saturated = %d/%d/%v, want %d/%d/%v",
			got.SeedsRun, got.Batches, got.Saturated, ref.SeedsRun, ref.Batches, ref.Saturated)
	}
	for i := range ref.NewCellsByBatch {
		if got.NewCellsByBatch[i] != ref.NewCellsByBatch[i] {
			t.Fatalf("workers=3: batch %d activated %d new cells, want %d",
				i, got.NewCellsByBatch[i], ref.NewCellsByBatch[i])
		}
	}
	requireMatrixEqual(t, "GPU-L1 union (workers=3)", ref.UnionL1, got.UnionL1)
	requireMatrixEqual(t, "GPU-L2 union (workers=3)", ref.UnionL2, got.UnionL2)
	requireFailuresEqual(t, ref.Failures, got.Failures)
}

func requireFailuresEqual(t *testing.T, want, got []SeedFailure) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("failure-set size %d, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Seed != got[i].Seed {
			t.Fatalf("failure %d: seed %d, want %d", i, got[i].Seed, want[i].Seed)
		}
		w, err := json.Marshal(want[i].Failures)
		if err != nil {
			t.Fatal(err)
		}
		g, err := json.Marshal(got[i].Failures)
		if err != nil {
			t.Fatal(err)
		}
		if string(w) != string(g) {
			t.Fatalf("seed %d failures differ\nwant: %s\ngot:  %s", want[i].Seed, w, g)
		}
	}
}

// TestCampaignDetectsInjectedBugs: a saturation campaign must flag
// every one of the four injected protocol bugs before it stops — the
// paper's core claim, now phrased as a stopping-rule property.
func TestCampaignDetectsInjectedBugs(t *testing.T) {
	cases := []struct {
		name string
		bugs viper.BugSet
	}{
		{"lostwrite", viper.BugSet{LostWriteRace: true}},
		{"nonatomic", viper.BugSet{NonAtomicRMW: true}},
		{"dropack", viper.BugSet{DropWBAckEvery: 20}},
		{"staleacquire", viper.BugSet{StaleAcquire: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sysCfg := viper.SmallCacheConfig()
			sysCfg.Bugs = tc.bugs
			testCfg := campaignTestCfg()
			if tc.name == "dropack" {
				// The dropped ack manifests as a deadlock; the run must
				// be allowed to stop on it.
				testCfg.KeepGoing = false
			}
			res := RunGPUCampaign(CampaignConfig{
				SysCfg:    sysCfg,
				TestCfg:   testCfg,
				BaseSeed:  1,
				BatchSize: 8,
				SaturateK: 3,
				MaxSeeds:  256,
			})
			if len(res.Failures) == 0 {
				t.Fatalf("campaign ran %d seeds (%d batches, saturated=%v) without detecting the injected bug",
					res.SeedsRun, res.Batches, res.Saturated)
			}
		})
	}
}

// TestCampaignSaturates: on a correct protocol the plateau rule, not
// the seed cap, should end the campaign, with zero failures.
func TestCampaignSaturates(t *testing.T) {
	res := RunGPUCampaign(CampaignConfig{
		SysCfg:    viper.SmallCacheConfig(),
		TestCfg:   campaignTestCfg(),
		BaseSeed:  1,
		BatchSize: 8,
		SaturateK: 3,
		MaxSeeds:  512,
	})
	if !res.Saturated {
		t.Fatalf("campaign hit the %d-seed cap without saturating (last batches: %v)",
			res.SeedsRun, res.NewCellsByBatch)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("correct protocol produced failures: seed %d: %v",
			res.Failures[0].Seed, res.Failures[0].Failures[0])
	}
	if res.UnionL1Sum.Active == 0 || res.UnionL2Sum.Active == 0 {
		t.Fatal("saturated campaign recorded no coverage")
	}
	// The stopping rule's whole point: the union keeps growing for a
	// while, then plateaus. The first batch must activate cells and the
	// last SaturateK must not.
	if res.NewCellsByBatch[0] == 0 {
		t.Fatal("first batch activated no cells")
	}
	for _, n := range res.NewCellsByBatch[len(res.NewCellsByBatch)-3:] {
		if n != 0 {
			t.Fatalf("saturated campaign's trailing batches still activated cells: %v", res.NewCellsByBatch)
		}
	}
}

// TestCampaignReuseCheaperThanRebuild pins the perf claim behind the
// reset paths at the allocation level, where the measurement is exact
// and machine-independent: a steady-state reset-and-run must allocate
// far less than a build-and-run of the same seed.
func TestCampaignReuseCheaperThanRebuild(t *testing.T) {
	sysCfg := viper.SmallCacheConfig()
	testCfg := campaignTestCfg()

	b := BuildGPU(sysCfg)
	tc := testCfg
	tc.Seed = 1
	tester := core.New(b.K, b.Sys, tc)
	tester.Run()
	seed := uint64(2)
	resetAllocs := testing.AllocsPerRun(3, func() {
		b.K.Reset()
		b.Sys.Reset()
		b.Col.Reset()
		tester.Reset(seed)
		tester.Run()
		seed++
	})

	seed = 2
	rebuildAllocs := testing.AllocsPerRun(3, func() {
		nb := BuildGPU(sysCfg)
		ntc := testCfg
		ntc.Seed = seed
		core.New(nb.K, nb.Sys, ntc).Run()
		seed++
	})

	if resetAllocs*2 > rebuildAllocs {
		t.Fatalf("reset-run allocates %.0f objects/run, rebuild-run %.0f — reuse should be at least 2x cheaper",
			resetAllocs, rebuildAllocs)
	}
	t.Logf("allocs/run: reset=%.0f rebuild=%.0f (%.1fx)", resetAllocs, rebuildAllocs, rebuildAllocs/resetAllocs)
}
