package harness

import (
	"drftest/internal/apps"
	"drftest/internal/mem"
	"drftest/internal/rng"
	"drftest/internal/sim"
)

// hostControlBase is the host threads' own control block, far from
// every GPU region.
const (
	hostControlBase   mem.Addr = 0x4000_0000
	hostControlStride mem.Addr = 1 << 12
)

// hostDriver models the CPU-side activity of an application run: host
// threads polling and updating the buffers the GPU kernel works on.
// It is deliberately light — real GPU applications keep the CPU mostly
// idle — but it is what makes the GPU L2 see probe-invalidations and
// the directory see CPU events during application-based testing.
type hostDriver struct {
	b       *HeteroBuild
	rnd     *rng.PCG
	period  sim.Tick
	nextID  uint64
	running bool
	pending map[int]bool
	// opsLeft bounds each host thread so the simulation drains even if
	// the kernel outlives the host's polling loop.
	opsLeft map[int]int
	// sharedProb is the probability a host op polls the kernel's
	// shared buffer instead of the private control block.
	sharedProb float64
}

func newHostDriver(b *HeteroBuild, seed uint64, period sim.Tick, opsPerCPU int) *hostDriver {
	h := &hostDriver{
		b:          b,
		rnd:        rng.New(seed, 0x405),
		period:     period,
		pending:    make(map[int]bool),
		opsLeft:    make(map[int]int),
		sharedProb: 0.05,
	}
	for i := range b.Caches {
		h.opsLeft[i] = opsPerCPU
	}
	for i, c := range b.Caches {
		cpu := i
		c.SetClient(hostClient{h: h, cpu: cpu})
	}
	return h
}

type hostClient struct {
	h   *hostDriver
	cpu int
}

func (c hostClient) HandleResponse(resp *mem.Response) {
	h := c.h
	h.pending[c.cpu] = false
	if h.running {
		h.b.K.Schedule(h.period, func() { h.issue(c.cpu) })
	}
}

func (h *hostDriver) start() {
	h.running = true
	for cpu := range h.b.Caches {
		cpu := cpu
		h.b.K.Schedule(sim.Tick(cpu)*7, func() { h.issue(cpu) })
	}
}

func (h *hostDriver) stop() { h.running = false }

func (h *hostDriver) issue(cpu int) {
	if !h.running || h.pending[cpu] || h.b.K.Stopped() || h.opsLeft[cpu] <= 0 {
		return
	}
	h.opsLeft[cpu]--
	h.pending[cpu] = true
	h.nextID++
	// Real application hosts mostly spin on their own control block
	// (reads and writes); the kernel's shared buffer they only *poll*
	// read-only — inputs travel by DMA. The occasional shared-region
	// read is what provokes the CPU↔GPU probe traffic of Fig. 10
	// without the dirty-sharing churn only the random testers create.
	var addr mem.Addr
	shared := h.rnd.Bool(h.sharedProb)
	if shared {
		addr = apps.SharedRegionBase + mem.Addr(h.rnd.Intn(64*16)*mem.WordSize)
	} else {
		addr = hostControlBase + mem.Addr(cpu)*hostControlStride +
			mem.Addr(h.rnd.Intn(4*16)*mem.WordSize)
	}
	req := &mem.Request{ID: 1<<40 | h.nextID, Addr: addr, ThreadID: cpu}
	if !shared && h.rnd.Bool(0.3) {
		req.Op = mem.OpStore
		req.Data = uint32(h.nextID)
	} else {
		req.Op = mem.OpLoad
	}
	h.b.Caches[cpu].Issue(req)
}
