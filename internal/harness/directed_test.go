package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"drftest/internal/core"
	"drftest/internal/viper"
)

// directedTestCampaign is the shared config of the mode tests: small
// enough to run in seconds, enough saturation patience (SaturateK) for
// the swarm/directed policies to explore corners past the base
// configuration's plateau.
func directedTestCampaign(mode CampaignMode) CampaignConfig {
	return CampaignConfig{
		SysCfg:    viper.SmallCacheConfig(),
		TestCfg:   campaignTestCfg(),
		BaseSeed:  1,
		BatchSize: 8,
		SaturateK: 8,
		MaxSeeds:  512,
		Mode:      mode,
	}
}

// campaignOutcome canonicalizes the worker-count-independent part of a
// campaign result for byte comparison (wall times and throughput
// excluded, artifact paths included — the path set is deterministic).
func campaignOutcome(t *testing.T, r *CampaignResult) string {
	t.Helper()
	out := struct {
		Mode                string
		SeedsRun, Batches   int
		NewCellsByBatch     []int
		CornerByBatch       []string
		ColdByBatch         []int
		NewCellNamesByBatch [][]string
		Saturated           bool
		SeedsToSaturation   int
		CellsAtSaturation   int
		L1Hits, L2Hits      [][]uint64
		Failures            []SeedFailure
		TotalOps            uint64
		TotalEvents         uint64
	}{
		r.Mode.String(), r.SeedsRun, r.Batches, r.NewCellsByBatch,
		r.CornerByBatch, r.ColdByBatch, r.NewCellNamesByBatch, r.Saturated,
		r.SeedsToSaturation, r.CellsAtSaturation,
		r.UnionL1.Hits, r.UnionL2.Hits, r.Failures, r.TotalOps, r.TotalEvents,
	}
	b, err := json.Marshal(&out)
	if err != nil {
		t.Fatalf("marshal outcome: %v", err)
	}
	return string(b)
}

// TestDirectedCampaignDeterministic: the whole observable outcome of a
// swarm or directed campaign — seeds run, batches, corners, unions,
// cold counts, failures — must be byte-identical across worker counts
// 1/3/8. This is the batch-boundary determinism argument made
// executable: corner choice is a pure function of (BaseSeed, batch,
// new-cell history) and never of worker scheduling.
func TestDirectedCampaignDeterministic(t *testing.T) {
	for _, mode := range []CampaignMode{CampaignSwarm, CampaignDirected} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := directedTestCampaign(mode)
			cfg.SysCfg.Bugs.StaleAcquire = true // non-empty failure set to compare
			cfg.MaxSeeds = 96
			cfg.Workers = 1
			ref := RunGPUCampaign(cfg)
			refOut := campaignOutcome(t, ref)
			if ref.SeedsRun == 0 || len(ref.Failures) == 0 {
				t.Fatalf("degenerate reference campaign: %d seeds, %d failures", ref.SeedsRun, len(ref.Failures))
			}
			for _, workers := range []int{3, 8} {
				c := cfg
				c.Workers = workers
				got := RunGPUCampaign(c)
				if out := campaignOutcome(t, got); out != refOut {
					t.Fatalf("workers=%d outcome differs from workers=1\nref: %s\ngot: %s", workers, refOut, out)
				}
			}
		})
	}
}

// TestTCPFullCoverageReachable pins the TCPImpossible audit: every
// defined TCP cell — including the A-row stalls that need two wavefronts
// racing on one CU — is reachable in GPU-only mode, so the L1 mask is
// intentionally empty. A directed campaign must drive L1 coverage to
// 100% of defined cells (and the L2 to 100% of its reachable cells).
func TestTCPFullCoverageReachable(t *testing.T) {
	res := RunGPUCampaign(directedTestCampaign(CampaignDirected))
	if got := len(TCPImpossible()); got != 0 {
		t.Fatalf("TCPImpossible names %d cells; this test assumes the audit found none", got)
	}
	if res.UnionL1Sum.Active != res.UnionL1Sum.Defined {
		t.Fatalf("directed campaign left TCP cells cold: %v (%d/%d active)",
			res.UnionL1.InactiveCells(TCPImpossible()), res.UnionL1Sum.Active, res.UnionL1Sum.Defined)
	}
	if res.UnionL2Sum.Active != res.UnionL2Sum.Reachable {
		t.Fatalf("directed campaign left reachable TCC cells cold: %v",
			res.UnionL2.InactiveCells(TCCImpossibleGPUOnly()))
	}
}

// TestSwarmModesBeatUniform is the CI gate property behind BENCH_PR6:
// at the same seed budget, swarm and directed campaigns must activate
// at least as many cells as the uniform baseline — and on this small
// system strictly more, because the base configuration provably cannot
// reach the replacement and A-row stall cells the corners buy.
func TestSwarmModesBeatUniform(t *testing.T) {
	uniform := RunGPUCampaign(directedTestCampaign(CampaignUniform))
	for _, mode := range []CampaignMode{CampaignSwarm, CampaignDirected} {
		res := RunGPUCampaign(directedTestCampaign(mode))
		if res.CellsAtSaturation <= uniform.CellsAtSaturation {
			t.Fatalf("%s: %d cells at saturation, uniform baseline %d — corner diversity bought nothing",
				mode, res.CellsAtSaturation, uniform.CellsAtSaturation)
		}
	}
}

// TestCampaignWritesReplayableArtifacts is the end-to-end regression
// for the campaign artifact bugfix: a bug-injected campaign must write
// exactly one artifact per failing seed, report its path, and every
// artifact must replay bit-identically through the same Load/Replay
// path cmd/replay uses.
func TestCampaignWritesReplayableArtifacts(t *testing.T) {
	dir := t.TempDir()
	sysCfg := viper.SmallCacheConfig()
	sysCfg.Bugs.StaleAcquire = true
	res := RunGPUCampaign(CampaignConfig{
		SysCfg:      sysCfg,
		TestCfg:     campaignTestCfg(),
		BaseSeed:    100,
		Workers:     3,
		BatchSize:   8,
		MaxSeeds:    16,
		Mode:        CampaignSwarm,
		ArtifactDir: dir,
		TraceDepth:  512,
	})
	if len(res.Failures) == 0 {
		t.Fatal("bug-injected campaign detected no failures")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(res.Failures) {
		t.Fatalf("campaign wrote %d artifacts for %d failing seeds", len(entries), len(res.Failures))
	}
	for _, sf := range res.Failures {
		if sf.ArtifactErr != "" {
			t.Fatalf("seed %d: artifact write failed: %s", sf.Seed, sf.ArtifactErr)
		}
		if sf.ArtifactPath == "" {
			t.Fatalf("seed %d: failing seed reported no artifact path", sf.Seed)
		}
		if filepath.Dir(sf.ArtifactPath) != dir {
			t.Fatalf("seed %d: artifact %s written outside %s", sf.Seed, sf.ArtifactPath, dir)
		}
		orig, err := LoadArtifact(sf.ArtifactPath)
		if err != nil {
			t.Fatalf("seed %d: %v", sf.Seed, err)
		}
		if orig.Seed != sf.Seed {
			t.Fatalf("artifact %s records seed %d, campaign says %d", sf.ArtifactPath, orig.Seed, sf.Seed)
		}
		replayed, err := Replay(orig)
		if err != nil {
			t.Fatalf("seed %d: replay: %v", sf.Seed, err)
		}
		if err := CheckReproduced(orig, replayed); err != nil {
			t.Fatalf("seed %d: campaign artifact did not reproduce: %v", sf.Seed, err)
		}
	}
}

// TestResetWithConfigBitIdentical extends the reuse guard across
// configuration corners: a context dirtied at the base config and then
// ResetWithConfig'd to a corner must run bit-identically to a fresh
// build at that corner — including corners that change the wavefront
// shape, the address space, and the response-network jitter.
func TestResetWithConfigBitIdentical(t *testing.T) {
	baseSys := viper.SmallCacheConfig()
	baseTest := campaignTestCfg()
	corners := [][numAxes]int{
		{1, 0, 0, 0}, // atomics hot
		{0, 1, 2, 0}, // tight locality, wide scale
		{2, 2, 1, 2}, // everything off-base incl. per-seed jitter
		{0, 0, 0, 1}, // jitter off (base SmallCacheConfig has none anyway)
	}
	const seed, dirtySeed = 11, 4242
	for _, levels := range corners {
		c := makeCorner(baseTest, baseSys, levels)
		t.Run(c.Name(), func(t *testing.T) {
			cornerSys := baseSys
			cornerSys.RespJitter = c.RespJitter
			if c.JitterPerSeed {
				cornerSys.JitterSeed = seed
			}
			_, l2Name, _ := campaignSpecs(cornerSys)

			// Fresh build directly at the corner.
			fb := BuildGPU(cornerSys)
			fc := c.TestCfg
			fc.Seed = seed
			fresh := core.New(fb.K, fb.Sys, fc).Run()
			freshL1 := fb.Col.Matrix("GPU-L1").Clone()
			freshL2 := fb.Col.Matrix(l2Name).Clone()

			// Reused context: built and dirtied at the base config, then
			// retuned to the corner exactly like campaignWorker.runSeed.
			rb := BuildGPU(baseSys)
			rc := baseTest
			rc.Seed = dirtySeed
			tester := core.New(rb.K, rb.Sys, rc)
			tester.Run()
			rb.K.Reset()
			rb.Sys.SetRespJitter(cornerSys.RespJitter, cornerSys.JitterSeed)
			rb.Sys.Reset()
			rb.Col.Reset()
			tester.ResetWithConfig(seed, c.TestCfg)
			reset := tester.Run()

			if got, want := reportJSON(t, reset), reportJSON(t, fresh); got != want {
				t.Fatalf("corner reset-run differs from fresh corner run\nfresh: %s\nreset: %s", want, got)
			}
			requireMatrixEqual(t, "GPU-L1", freshL1, rb.Col.Matrix("GPU-L1"))
			requireMatrixEqual(t, l2Name, freshL2, rb.Col.Matrix(l2Name))
		})
	}
}
