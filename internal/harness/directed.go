// Coverage-directed and swarm campaign policy: the layer that closes
// the loop from the live coverage union back into seed generation.
//
// PR 4's campaign engine draws every seed from one fixed configuration,
// so the tail of cold [state][event] cells is reached only by luck. The
// fix, following the swarm-testing observation that configuration
// diversity is what buys tail coverage cheaply, is to deal each *batch*
// a configuration corner:
//
//   - Swarm mode samples a corner uniformly per batch from a small
//     lattice of axes — atomic intensity (NumSyncVars/StoreFraction),
//     locality (AddressRangeBytes/NumDataVars), scale
//     (NumWavefronts/ThreadsPerWF), and response-network jitter — each
//     with three levels anchored at the campaign's base configuration.
//   - Directed mode keeps the same lattice but weights the per-axis
//     level choice by an exponentially-decayed credit score: at every
//     batch barrier the merged union is asked which cold cells the
//     batch just activated (coverage.MergeCountNewFunc /
//     coverage.Matrix.ColdCells), and the batch's corner levels are
//     credited with that count. Corners whose recent batches bought
//     cold cells are sampled more; unproductive levels decay back
//     toward uniform exploration.
//
// Determinism: every policy decision happens at a batch boundary and is
// a pure function of (BaseSeed, batch index, union history). The corner
// for batch b is drawn from the dedicated PCG stream cornerStream+b
// seeded with BaseSeed, and the credit scores evolve only from the
// per-batch newly-activated-cell counts — which are set properties of
// the batch (worker-count independent) — so the whole campaign outcome
// remains independent of the worker count, exactly as in uniform mode
// (pinned by TestDirectedCampaignDeterministic across workers 1/3/8).
package harness

import (
	"fmt"
	"strings"

	"drftest/internal/core"
	"drftest/internal/mem"
	"drftest/internal/rng"
	"drftest/internal/sim"
	"drftest/internal/viper"
)

// CampaignMode selects how a campaign deals test configurations to
// batches.
type CampaignMode int

const (
	// CampaignUniform runs every seed at the campaign's base
	// configuration — the pre-swarm baseline every comparison is made
	// against.
	CampaignUniform CampaignMode = iota
	// CampaignSwarm deals every batch a configuration corner sampled
	// uniformly from the lattice.
	CampaignSwarm
	// CampaignDirected biases corner sampling toward corners whose
	// recent batches activated cold coverage cells.
	CampaignDirected
)

func (m CampaignMode) String() string {
	switch m {
	case CampaignUniform:
		return "uniform"
	case CampaignSwarm:
		return "swarm"
	case CampaignDirected:
		return "directed"
	}
	return fmt.Sprintf("CampaignMode(%d)", int(m))
}

// ParseCampaignMode parses the -campaign-mode flag values.
func ParseCampaignMode(s string) (CampaignMode, error) {
	switch s {
	case "uniform", "":
		return CampaignUniform, nil
	case "swarm":
		return CampaignSwarm, nil
	case "directed":
		return CampaignDirected, nil
	}
	return CampaignUniform, fmt.Errorf("unknown campaign mode %q (want uniform, swarm or directed)", s)
}

// The corner lattice: four axes, three levels each, level 0 always the
// campaign's base configuration. Axes were chosen for the transition
// cells they plausibly buy: atomic intensity drives the A-state rows,
// locality drives false sharing and replacement, scale drives
// stall/race interleavings, jitter drives response reordering.
const (
	axisAtomics = iota
	axisLocality
	axisScale
	axisJitter
	numAxes
)

const levelsPerAxis = 3

// NumCornerAxes is the lattice's axis count; CornerLevels is the wire
// form of a corner — the per-axis level vector a control-plane lease
// carries, from which any worker process reconstructs the identical
// corner (makeCorner is a pure function of the campaign base configs
// and the levels).
const NumCornerAxes = numAxes

// CornerLevels is a corner's per-axis level vector.
type CornerLevels = [NumCornerAxes]int

var axisNames = [numAxes]string{"atomics", "locality", "scale", "jitter"}

var levelNames = [numAxes][levelsPerAxis]string{
	{"base", "hot", "spread"},
	{"base", "tight", "wide"},
	{"base", "narrow", "wide"},
	{"base", "off", "wide"},
}

// Corner is one point of the swarm lattice: a level per axis, plus the
// base configuration with those levels' overrides applied. Corners are
// interned per campaign (cornerPolicy.get), so workers can compare
// corner identity by pointer and skip the reconfigure path when
// consecutive batches share a corner.
type Corner struct {
	Levels [numAxes]int

	// TestCfg is the campaign's base tester config with the corner's
	// overrides applied; Seed is set per run by the worker.
	TestCfg core.Config
	// RespJitter overrides the system's response-network jitter window
	// for this corner; JitterPerSeed additionally reseeds the jitter
	// stream with the run seed, so every seed of a jittered batch
	// explores a different reordering (the seed lands in the replay
	// artifact's SysCfg, keeping failures bit-reproducible).
	RespJitter    sim.Tick
	JitterPerSeed bool
}

// Name renders the corner compactly, e.g.
// "atomics=hot,locality=base,scale=wide,jitter=off".
func (c *Corner) Name() string {
	parts := make([]string, numAxes)
	for a := 0; a < numAxes; a++ {
		parts[a] = axisNames[a] + "=" + levelNames[a][c.Levels[a]]
	}
	return strings.Join(parts, ",")
}

// makeCorner derives a corner's configuration from the campaign base.
// Level 0 of every axis leaves the base untouched, so the all-zero
// corner is exactly the uniform campaign's configuration.
func makeCorner(testCfg core.Config, sysCfg viper.Config, levels [numAxes]int) *Corner {
	c := &Corner{Levels: levels, TestCfg: testCfg, RespJitter: sysCfg.RespJitter}

	switch levels[axisAtomics] {
	case 1: // hot: few heavily contended sync vars, store-heavy episodes
		c.TestCfg.NumSyncVars = max(1, testCfg.NumSyncVars/4)
		c.TestCfg.StoreFraction = 0.8
	case 2: // spread: many sync vars, load-heavy episodes
		c.TestCfg.NumSyncVars = testCfg.NumSyncVars * 4
		c.TestCfg.StoreFraction = 0.25
	}

	switch levels[axisLocality] {
	case 1: // tight: few data vars packed almost as densely as possible
		c.TestCfg.NumDataVars = max(8, testCfg.NumDataVars/8)
	case 2: // wide: many data vars spread over a sparse range
		c.TestCfg.NumDataVars = testCfg.NumDataVars * 4
	}
	// The address range tracks the corner's variable counts: tight packs
	// variables at 1.25× their footprint (maximal false sharing), wide
	// spreads them at 8×, and base defers to the config default (2×).
	total := uint64(c.TestCfg.NumSyncVars + c.TestCfg.NumDataVars)
	switch levels[axisLocality] {
	case 1:
		c.TestCfg.AddressRangeBytes = total * mem.WordSize * 5 / 4
	case 2:
		c.TestCfg.AddressRangeBytes = total * mem.WordSize * 8
	default:
		if testCfg.AddressRangeBytes == 0 {
			c.TestCfg.AddressRangeBytes = 0 // recomputed by withDefaults from the corner's counts
		}
	}

	switch levels[axisScale] {
	case 1: // narrow: fewer, thinner wavefronts — long quiet stretches
		c.TestCfg.NumWavefronts = max(1, testCfg.NumWavefronts/2)
		c.TestCfg.ThreadsPerWF = max(2, testCfg.ThreadsPerWF/2)
	case 2: // wide: more, fatter wavefronts — maximal concurrency
		c.TestCfg.NumWavefronts = testCfg.NumWavefronts * 2
		c.TestCfg.ThreadsPerWF = testCfg.ThreadsPerWF * 2
	}

	switch levels[axisJitter] {
	case 1: // off: strictly ordered responses
		c.RespJitter = 0
	case 2: // wide: aggressive response reordering, reseeded per run
		c.RespJitter = max(8, 2*sysCfg.RespJitter)
		c.JitterPerSeed = true
	}
	return c
}

// cornerStream is the PCG stream selector of corner sampling: batch b
// draws its corner from a generator seeded with BaseSeed advanced by b
// golden-ratio steps (the Weyl-sequence trick, so nearby batches are
// decorrelated from the very first draw — nearby PCG *streams* share
// their early outputs). The choice is a pure function of (BaseSeed, b,
// scores) with no state shared with any other randomness in the system.
const (
	cornerStream = 0xC057A
	cornerStep   = 0x9E3779B97F4A7C15
)

// cornerDecay is the per-batch exponential decay of directed-mode
// credit: a level's score halves every batch it is not re-credited, so
// the policy tracks *recent* productivity and re-explores once a
// corner's cold-cell yield dries up.
const cornerDecay = 0.5

// CornerCache interns corners per (testCfg, sysCfg) base, so equal
// level vectors always yield the same *Corner and run contexts can
// pointer-compare to skip the reconfigure path when consecutive
// batches share a corner. Worker processes keep one per campaign to
// reconstruct corners from lease level vectors.
type CornerCache struct {
	testCfg core.Config
	sysCfg  viper.Config
	corners map[CornerLevels]*Corner
}

// NewCornerCache creates an interning cache anchored at the campaign's
// base configurations.
func NewCornerCache(testCfg core.Config, sysCfg viper.Config) *CornerCache {
	return &CornerCache{
		testCfg: testCfg,
		sysCfg:  sysCfg,
		corners: make(map[CornerLevels]*Corner),
	}
}

// Corner returns the interned corner for a level vector, deriving it
// on first use.
func (cc *CornerCache) Corner(levels CornerLevels) *Corner {
	if c, ok := cc.corners[levels]; ok {
		return c
	}
	c := makeCorner(cc.testCfg, cc.sysCfg, levels)
	cc.corners[levels] = c
	return c
}

// cornerPolicy deals corners to batches and, in directed mode, learns
// from the per-batch cold-cell yield. All methods are called only
// between batches, from the campaign's merge loop.
type cornerPolicy struct {
	mode     CampaignMode
	baseSeed uint64
	cache    *CornerCache

	// scores[axis][level]: exponentially decayed count of cold cells
	// activated by batches that ran with that level.
	scores [numAxes][levelsPerAxis]float64
	// observed counts batches fed back so far; the first batch's yield
	// is never credited — any corner activates the easily reachable
	// mass of the matrix on a cold union, so crediting it would steer
	// toward an arbitrary corner.
	observed int
}

func newCornerPolicy(cfg CampaignConfig) *cornerPolicy {
	return &cornerPolicy{
		mode:     cfg.Mode,
		baseSeed: cfg.BaseSeed,
		cache:    NewCornerCache(cfg.TestCfg, cfg.SysCfg),
	}
}

// get interns the corner for a level vector via the cache.
func (p *cornerPolicy) get(levels [numAxes]int) *Corner {
	return p.cache.Corner(levels)
}

// corner returns the corner batch b runs with. Uniform mode always
// returns the base corner; swarm samples each axis uniformly; directed
// samples each axis with probability proportional to 1+score, which
// degrades gracefully to uniform sampling while no credit has accrued
// (the first batches explore exactly like swarm).
func (p *cornerPolicy) corner(batch int) *Corner {
	if p.mode == CampaignUniform {
		return p.get([numAxes]int{})
	}
	r := rng.New(p.baseSeed+uint64(batch)*cornerStep, cornerStream)
	var levels [numAxes]int
	var w [levelsPerAxis]float64
	for a := 0; a < numAxes; a++ {
		if p.mode == CampaignDirected {
			for l := 0; l < levelsPerAxis; l++ {
				w[l] = 1 + p.scores[a][l]
			}
			levels[a] = r.WeightedChoice(w[:])
		} else {
			levels[a] = r.Intn(levelsPerAxis)
		}
	}
	return p.get(levels)
}

// observe feeds a finished batch back into the policy: the batch ran
// with corner c and activated newCells previously-cold union cells
// (the count the campaign's merge step attributes via
// coverage.MergeCountNewFunc). Every level of every axis decays; the
// batch's levels are then credited with the yield.
func (p *cornerPolicy) observe(c *Corner, newCells int) {
	if p.mode != CampaignDirected {
		return
	}
	p.observed++
	for a := 0; a < numAxes; a++ {
		for l := 0; l < levelsPerAxis; l++ {
			p.scores[a][l] *= cornerDecay
		}
		if p.observed > 1 {
			p.scores[a][c.Levels[a]] += float64(newCells)
		}
	}
}
