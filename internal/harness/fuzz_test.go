package harness

import (
	"testing"

	"drftest/internal/core"
	"drftest/internal/viper"
)

// FuzzTesterNoFalseAlarms drives the whole stack with fuzzer-chosen
// configurations: on a correct protocol the tester must never report a
// failure, never lose an operation, and keep the L2 byte-identical to
// memory. Run with `go test -fuzz FuzzTesterNoFalseAlarms ./internal/harness`
// for open-ended exploration; the seed corpus runs in normal test mode.
func FuzzTesterNoFalseAlarms(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(8), uint8(10), uint8(20), uint8(4), uint16(64), false, false)
	f.Add(uint64(7), uint8(1), uint8(4), uint8(4), uint8(60), uint8(1), uint16(512), true, false)
	f.Add(uint64(42), uint8(2), uint8(16), uint8(2), uint8(9), uint8(16), uint16(300), false, true)
	f.Add(uint64(99), uint8(0), uint8(3), uint8(7), uint8(33), uint8(2), uint16(48), true, true)

	f.Fuzz(func(t *testing.T, seed uint64, cacheSel, wfs, episodes, actions, syncVars uint8, dataVars uint16, jitter, writeBack bool) {
		var sysCfg viper.Config
		switch cacheSel % 3 {
		case 0:
			sysCfg = viper.SmallCacheConfig()
		case 1:
			sysCfg = viper.LargeCacheConfig()
		default:
			sysCfg = viper.MixedCacheConfig()
		}
		sysCfg.NumL2Slices = 1 + int(cacheSel%4)
		sysCfg.WriteBackL2 = writeBack
		if jitter {
			sysCfg.RespJitter = 12
			sysCfg.JitterSeed = seed
		}

		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.NumWavefronts = 1 + int(wfs%24)
		cfg.EpisodesPerThread = 1 + int(episodes%12)
		cfg.ActionsPerEpisode = 2 + int(actions%80)
		cfg.NumSyncVars = 1 + int(syncVars%20)
		cfg.NumDataVars = 16 + int(dataVars%2048)

		b := BuildGPU(sysCfg)
		rep := core.New(b.K, b.Sys, cfg).Run()
		if !rep.Passed() {
			t.Fatalf("false alarm on correct protocol (cfg %+v): %s", cfg, rep.Failures[0].TableV())
		}
		if rep.OpsCompleted != cfg.TotalActions() {
			t.Fatalf("lost operations: %d of %d", rep.OpsCompleted, cfg.TotalActions())
		}
	})
}
