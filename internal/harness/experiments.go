package harness

import (
	"time"

	"drftest/internal/apps"
	"drftest/internal/core"
	"drftest/internal/coverage"
	"drftest/internal/cputester"
	"drftest/internal/directory"
	"drftest/internal/moesi"
	"drftest/internal/sim"
	"drftest/internal/viper"
)

// GPURunResult is one GPU tester run with its coverage.
type GPURunResult struct {
	Name   string
	Caches string
	Report *core.Report
	L1     *coverage.Matrix
	L2     *coverage.Matrix
	L1Sum  coverage.Summary
	L2Sum  coverage.Summary
}

// RunGPUTest executes one Table III tester configuration on a GPU-only
// system.
func RunGPUTest(cfg GPUTestConfig) *GPURunResult {
	b := BuildGPU(cfg.SysCfg)
	tester := core.New(b.K, b.Sys, cfg.TestCfg)
	rep := tester.Run()
	l1 := b.Col.Matrix("GPU-L1")
	l2 := b.Col.Matrix("GPU-L2")
	return &GPURunResult{
		Name:   cfg.Name,
		Caches: cfg.Caches,
		Report: rep,
		L1:     l1,
		L2:     l2,
		L1Sum:  l1.Summarize(nil),
		L2Sum:  l2.Summarize(TCCImpossibleGPUOnly()),
	}
}

// GPUSweepResult is the Fig. 8 dataset: per-run coverage plus the
// union across the whole sweep.
type GPUSweepResult struct {
	Runs        []*GPURunResult
	UnionL1     *coverage.Matrix
	UnionL2     *coverage.Matrix
	UnionL1Sum  coverage.Summary
	UnionL2Sum  coverage.Summary
	TotalEvents uint64
	TotalWall   time.Duration
	TotalOps    uint64
	Failures    int
}

// RunGPUSweep executes the full tester sweep and accumulates unions.
func RunGPUSweep(cfgs []GPUTestConfig) *GPUSweepResult {
	out := &GPUSweepResult{
		UnionL1: coverage.NewMatrix(viper.NewTCPSpec()),
		UnionL2: coverage.NewMatrix(viper.NewTCCSpec()),
	}
	for _, cfg := range cfgs {
		r := RunGPUTest(cfg)
		out.Runs = append(out.Runs, r)
		out.UnionL1.Merge(r.L1)
		out.UnionL2.Merge(r.L2)
		out.TotalEvents += r.Report.EventsExecuted
		out.TotalWall += r.Report.WallTime
		out.TotalOps += r.Report.OpsIssued
		out.Failures += len(r.Report.Failures)
	}
	out.UnionL1Sum = out.UnionL1.Summarize(nil)
	out.UnionL2Sum = out.UnionL2.Summarize(TCCImpossibleGPUOnly())
	return out
}

// AppRunResult is one application run with its coverage.
type AppRunResult struct {
	Res   *apps.RunResult
	L1Sum coverage.Summary
	L2Sum coverage.Summary
	L1    *coverage.Matrix
	L2    *coverage.Matrix
	Dir   *coverage.Matrix
}

// AppSuiteResult is the Fig. 6/9 dataset plus the directory view of
// Fig. 10(a).
type AppSuiteResult struct {
	Runs        []*AppRunResult
	UnionL1     *coverage.Matrix
	UnionL2     *coverage.Matrix
	UnionDir    *coverage.Matrix
	UnionL1Sum  coverage.Summary
	UnionL2Sum  coverage.Summary
	UnionDirSum coverage.Summary
	TotalEvents uint64
	TotalWall   time.Duration
	Faults      int
}

// AppSuiteOptions shapes an application-suite run.
type AppSuiteOptions struct {
	Seed    uint64
	NumWFs  int
	Lanes   int
	NumCPUs int
	// Scale shortens each app's memory-op count (1 = Table IV length).
	Scale float64
	// MaxTicksPerApp bounds each run (0 = unbounded).
	MaxTicksPerApp sim.Tick
	// Profiles defaults to the full 26-app suite.
	Profiles []apps.Profile
}

func (o AppSuiteOptions) withDefaults() AppSuiteOptions {
	if o.NumWFs == 0 {
		o.NumWFs = 16
	}
	if o.Lanes == 0 {
		o.Lanes = 4
	}
	if o.NumCPUs == 0 {
		o.NumCPUs = 2
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Profiles == nil {
		o.Profiles = apps.Profiles
	}
	return o
}

// scaleProfile shortens a profile's per-lane op count by the suite's
// Scale factor, clamped to a useful minimum. It is the single scaling
// rule shared by the serial and parallel suite runners, so the two
// cannot drift apart.
func scaleProfile(p apps.Profile, scale float64) apps.Profile {
	p.MemOpsPerLane = int(float64(p.MemOpsPerLane) * scale)
	if p.MemOpsPerLane < 10 {
		p.MemOpsPerLane = 10
	}
	return p
}

// RunAppSuite executes the application suite on the heterogeneous
// system (GPU over the shared directory, host CPU traffic, DMA staging
// — the paper's application-based testing setup).
func RunAppSuite(opts AppSuiteOptions) *AppSuiteResult {
	opts = opts.withDefaults()
	out := &AppSuiteResult{
		UnionL1:  coverage.NewMatrix(viper.NewTCPSpec()),
		UnionL2:  coverage.NewMatrix(viper.NewTCCSpec()),
		UnionDir: coverage.NewMatrix(directory.NewSpec()),
	}
	for i, prof := range opts.Profiles {
		r := runOneApp(scaleProfile(prof, opts.Scale), opts, opts.Seed+uint64(i))
		out.Runs = append(out.Runs, r)
		out.UnionL1.Merge(r.L1)
		out.UnionL2.Merge(r.L2)
		out.UnionDir.Merge(r.Dir)
		out.TotalEvents += r.Res.Events
		out.TotalWall += r.Res.WallTime
		out.Faults += r.Res.Faults
	}
	out.UnionL1Sum = out.UnionL1.Summarize(nil)
	out.UnionL2Sum = out.UnionL2.Summarize(TCCImpossibleHetero())
	out.UnionDirSum = out.UnionDir.Summarize(nil)
	return out
}

func runOneApp(prof apps.Profile, opts AppSuiteOptions, seed uint64) *AppRunResult {
	gpuCfg := viper.DefaultConfig() // Table III application configuration
	b := BuildHetero(gpuCfg, opts.NumCPUs, DefaultCPUCache)

	// Application phases, as on real systems: DMA stages the input
	// while the system is quiescent, the kernel runs with the host
	// polling, then DMA copies the result out.
	host := newHostDriver(b, seed^0x505, 400, prof.MemOpsPerLane/2)
	b.DMA.CopyIn(apps.SharedRegionBase, 32, 50, nil)
	b.K.RunUntilIdle()

	host.start()
	res := apps.Run(b.K, b.GPU, prof, seed, opts.NumWFs, opts.Lanes, opts.MaxTicksPerApp)
	host.stop()
	b.K.RunUntilIdle()

	// Results are copied out of the kernel's streamed output buffer.
	b.DMA.CopyOut(apps.StreamRegionBase, 32, 50, nil)
	b.K.RunUntilIdle()

	l1 := b.Col.Matrix("GPU-L1")
	l2 := b.Col.Matrix("GPU-L2")
	return &AppRunResult{
		Res:   res,
		L1:    l1,
		L2:    l2,
		Dir:   b.Col.Matrix("Directory"),
		L1Sum: l1.Summarize(nil),
		L2Sum: l2.Summarize(TCCImpossibleHetero()),
	}
}

// CPURunResult is one CPU tester run.
type CPURunResult struct {
	Name   string
	Report *cputester.Report
	CPUSum coverage.Summary
	Dir    *coverage.Matrix
	DirSum coverage.Summary
}

// CPUSweepResult is the Fig. 10(b) dataset.
type CPUSweepResult struct {
	Runs        []*CPURunResult
	UnionDir    *coverage.Matrix
	UnionDirSum coverage.Summary
	UnionCPU    *coverage.Matrix
	TotalWall   time.Duration
	Failures    int
}

// RunCPUSweep executes the Table III CPU tester sweep.
func RunCPUSweep(cfgs []CPUTestConfig) *CPUSweepResult {
	out := &CPUSweepResult{
		UnionDir: coverage.NewMatrix(directory.NewSpec()),
		UnionCPU: coverage.NewMatrix(moesi.NewCPUSpec()),
	}
	for _, cfg := range cfgs {
		b := BuildCPU(cfg.NumCPUs, cfg.CacheCfg)
		tester := cputester.New(b.K, b.Caches, cfg.TestCfg)
		rep := tester.Run()
		r := &CPURunResult{
			Name:   cfg.Name,
			Report: rep,
			Dir:    b.Col.Matrix("Directory"),
		}
		r.CPUSum = b.Col.Matrix("CPU-L1").Summarize(nil)
		r.DirSum = r.Dir.Summarize(nil)
		out.Runs = append(out.Runs, r)
		out.UnionDir.Merge(r.Dir)
		out.UnionCPU.Merge(b.Col.Matrix("CPU-L1"))
		out.TotalWall += rep.WallTime
		out.Failures += len(rep.Failures)
	}
	out.UnionDirSum = out.UnionDir.Summarize(nil)
	return out
}

// RunGPUTesterOnDirectory runs the GPU tester over the heterogeneous
// directory (no CPUs attached) to collect its directory coverage for
// Fig. 10(c).
func RunGPUTesterOnDirectory(cfg GPUTestConfig) (*core.Report, *coverage.Matrix) {
	b := BuildHetero(cfg.SysCfg, 0, DefaultCPUCache)
	tester := core.New(b.K, b.GPU, cfg.TestCfg)
	rep := tester.Run()
	if rep.Passed() {
		// Run's own audit was skipped (no local memory controller);
		// audit against the directory's backing store instead.
		tester.AuditStore(b.Store)
		rep.Failures = tester.Failures()
	}
	return rep, b.Col.Matrix("Directory")
}
