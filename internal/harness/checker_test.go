package harness

import (
	"testing"

	"drftest/internal/checker"
	"drftest/internal/core"
	"drftest/internal/viper"
)

func tracedRun(t *testing.T, bugs viper.BugSet, seed uint64) *core.Report {
	t.Helper()
	sysCfg := viper.SmallCacheConfig()
	sysCfg.Bugs = bugs
	b := BuildGPU(sysCfg)
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.NumWavefronts = 8
	cfg.EpisodesPerThread = 8
	cfg.ActionsPerEpisode = 30
	cfg.NumSyncVars = 4
	cfg.NumDataVars = 64
	cfg.StoreFraction = 0.6
	cfg.RecordTrace = true
	cfg.KeepGoing = true
	return core.New(b.K, b.Sys, cfg).Run()
}

// TestCheckersAgreeOnCorrectProtocol: online and axiomatic checkers
// both pass a correct run.
func TestCheckersAgreeOnCorrectProtocol(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		rep := tracedRun(t, viper.BugSet{}, seed)
		if !rep.Passed() {
			t.Fatalf("online checker flagged a correct run: %v", rep.Failures[0])
		}
		if rep.Trace == nil || len(rep.Trace.Ops) == 0 {
			t.Fatal("trace not recorded")
		}
		if vs := checker.Verify(rep.Trace); len(vs) != 0 {
			t.Fatalf("axiomatic checker disagreed on a correct run: %v", vs[0])
		}
	}
}

// TestStreamMatchesPostHocOnCorpus: on full tester-produced traces —
// correct and bug-injected — the streaming Verify must return exactly
// the violation list of the map-building reference implementation,
// element for element in the same order.
func TestStreamMatchesPostHocOnCorpus(t *testing.T) {
	bugSets := []viper.BugSet{
		{},
		{LostWriteRace: true},
		{NonAtomicRMW: true},
		{StaleAcquire: true},
	}
	for _, bugs := range bugSets {
		for seed := uint64(1); seed <= 4; seed++ {
			rep := tracedRun(t, bugs, seed)
			got := checker.Verify(rep.Trace)
			want := checker.VerifyPostHoc(rep.Trace)
			if len(got) != len(want) {
				t.Fatalf("bugs=%+v seed=%d: stream found %d violations, post-hoc %d\nstream: %v\nposthoc: %v",
					bugs, seed, len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("bugs=%+v seed=%d: violation %d differs\nstream:  %s\nposthoc: %s",
						bugs, seed, i, got[i], want[i])
				}
			}
		}
	}
}

// TestCheckersAgreeOnBugs: when the online checker catches an injected
// bug, the independent axiomatic verifier must flag the same execution.
func TestCheckersAgreeOnBugs(t *testing.T) {
	cases := []struct {
		name string
		bugs viper.BugSet
	}{
		{"LostWriteRace", viper.BugSet{LostWriteRace: true}},
		{"NonAtomicRMW", viper.BugSet{NonAtomicRMW: true}},
		{"StaleAcquire", viper.BugSet{StaleAcquire: true}},
	}
	for _, c := range cases {
		agreed := false
		for seed := uint64(1); seed <= 8 && !agreed; seed++ {
			rep := tracedRun(t, c.bugs, seed)
			onlineCaught := !rep.Passed()
			axioms := checker.Verify(rep.Trace)
			if onlineCaught && len(axioms) == 0 {
				t.Fatalf("%s seed %d: online caught the bug (%v) but axiomatic checker passed the trace",
					c.name, seed, rep.Failures[0].Kind)
			}
			if onlineCaught && len(axioms) > 0 {
				agreed = true
				t.Logf("%s: both checkers flag seed %d (online: %v; axiomatic: %s)",
					c.name, seed, rep.Failures[0].Kind, axioms[0].Axiom)
			}
		}
		if !agreed {
			t.Errorf("%s: never provoked within 8 seeds", c.name)
		}
	}
}
