package harness

import (
	"testing"

	"drftest/internal/core"
	"drftest/internal/sim"
	"drftest/internal/viper"
)

// The ablations below validate the configurability claims of §IV.A:
// each tester knob exists because it steers coverage toward a specific
// transition subset. Removing the knob's effect must visibly reduce
// that subset.

func ablationRun(t *testing.T, mutate func(*core.Config), bugs viper.BugSet, seed uint64) (*core.Report, *GPUBuild) {
	t.Helper()
	sysCfg := viper.SmallCacheConfig()
	sysCfg.Bugs = bugs
	b := BuildGPU(sysCfg)
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.NumWavefronts = 8
	cfg.ThreadsPerWF = 4
	cfg.EpisodesPerThread = 8
	cfg.ActionsPerEpisode = 30
	cfg.NumSyncVars = 4
	cfg.NumDataVars = 48
	cfg.StoreFraction = 0.6
	if mutate != nil {
		mutate(&cfg)
	}
	tester := core.New(b.K, b.Sys, cfg)
	return tester.Run(), b
}

// TestAblationFalseSharingMapping: with the dense random mapping,
// sync and data variables co-locate in lines and the L1's A-state
// corner transitions fire; padding every variable to its own line
// (huge address range) starves them — and hides the lost-write bug.
func TestAblationFalseSharingMapping(t *testing.T) {
	atomicCornerHits := func(b *GPUBuild) uint64 {
		m := b.Col.Matrix("GPU-L1")
		return m.Hits[viper.TCPStateA][viper.TCPLoad] +
			m.Hits[viper.TCPStateA][viper.TCPStoreThrough] +
			m.Hits[viper.TCPStateA][viper.TCPTCCAckWB]
	}
	var denseHits, paddedHits uint64
	for seed := uint64(1); seed <= 4; seed++ {
		_, dense := ablationRun(t, nil, viper.BugSet{}, seed)
		denseHits += atomicCornerHits(dense)
		_, padded := ablationRun(t, func(c *core.Config) {
			// One variable per line: no false sharing at all.
			c.AddressRangeBytes = uint64(c.NumSyncVars+c.NumDataVars) * 64 * 4
		}, viper.BugSet{}, seed)
		paddedHits += atomicCornerHits(padded)
	}
	t.Logf("A-state corner hits: dense=%d padded=%d", denseHits, paddedHits)
	if denseHits == 0 {
		t.Fatal("dense mapping never hit the A-state corner transitions")
	}
	if paddedHits*4 > denseHits {
		t.Errorf("padding should starve A-state corners (dense=%d padded=%d)", denseHits, paddedHits)
	}

	// And the Table V bug should be much easier to catch with false
	// sharing (the paper: apps avoid false sharing by padding, which is
	// why they miss such bugs).
	denseDetect, paddedDetect := 0, 0
	for seed := uint64(1); seed <= 6; seed++ {
		if rep, _ := ablationRun(t, nil, viper.BugSet{LostWriteRace: true}, seed); !rep.Passed() {
			denseDetect++
		}
		if rep, _ := ablationRun(t, func(c *core.Config) {
			c.AddressRangeBytes = uint64(c.NumSyncVars+c.NumDataVars) * 64 * 4
		}, viper.BugSet{LostWriteRace: true}, seed); !rep.Passed() {
			paddedDetect++
		}
	}
	t.Logf("LostWriteRace detection: dense %d/6, padded %d/6", denseDetect, paddedDetect)
	if denseDetect <= paddedDetect {
		t.Errorf("false sharing should make the race easier to catch (dense %d, padded %d)",
			denseDetect, paddedDetect)
	}
}

// TestAblationAddressRange: a smaller address range means more sharing
// and more transient-state residency (paper: "smaller address range
// increases the number of sharing accesses between threads, which
// stresses transient states").
func TestAblationAddressRange(t *testing.T) {
	transientStalls := func(b *GPUBuild) uint64 {
		m := b.Col.Matrix("GPU-L2")
		var n uint64
		for _, ev := range []int{viper.TCCRdBlk, viper.TCCWrVicBlk, viper.TCCAtomic} {
			n += m.Hits[viper.TCCStateIV][ev] + m.Hits[viper.TCCStateA][ev]
		}
		return n
	}
	var small, large uint64
	for seed := uint64(1); seed <= 4; seed++ {
		_, s := ablationRun(t, func(c *core.Config) { c.NumDataVars = 24 }, viper.BugSet{}, seed)
		small += transientStalls(s)
		_, l := ablationRun(t, func(c *core.Config) {
			c.NumDataVars = 4096
			c.AddressRangeBytes = 0 // recompute default for the larger set
		}, viper.BugSet{}, seed)
		large += transientStalls(l)
	}
	t.Logf("transient-state stalls: small-range=%d large-range=%d", small, large)
	if small <= large {
		t.Errorf("smaller address range should stress transients more (small=%d large=%d)", small, large)
	}
}

// TestAblationEpisodeLength: longer episodes raise the ratio of data
// accesses to synchronization, increasing inter-episode interaction on
// data lines (paper §IV.A).
func TestAblationEpisodeLength(t *testing.T) {
	dataTraffic := func(rep *core.Report, b *GPUBuild) float64 {
		m := b.Col.Matrix("GPU-L1")
		data := m.Hits[viper.TCPStateI][viper.TCPLoad] + m.Hits[viper.TCPStateV][viper.TCPLoad] +
			m.Hits[viper.TCPStateI][viper.TCPStoreThrough] + m.Hits[viper.TCPStateV][viper.TCPStoreThrough]
		atomics := m.Hits[viper.TCPStateI][viper.TCPAtomic] + m.Hits[viper.TCPStateV][viper.TCPAtomic]
		if atomics == 0 {
			return 0
		}
		return float64(data) / float64(atomics)
	}
	repShort, bShort := ablationRun(t, func(c *core.Config) { c.ActionsPerEpisode = 6 }, viper.BugSet{}, 3)
	repLong, bLong := ablationRun(t, func(c *core.Config) { c.ActionsPerEpisode = 60 }, viper.BugSet{}, 3)
	short := dataTraffic(repShort, bShort)
	long := dataTraffic(repLong, bLong)
	t.Logf("data:sync access ratio: short=%.1f long=%.1f", short, long)
	if long <= short {
		t.Errorf("longer episodes should raise data:sync ratio (short=%.1f long=%.1f)", short, long)
	}
}

// TestMultiSliceTesterPasses: the tester works unchanged over a banked
// L2 topology (the §III.B configurability claim).
func TestMultiSliceTesterPasses(t *testing.T) {
	sysCfg := viper.SmallCacheConfig()
	sysCfg.NumL2Slices = 4
	b := BuildGPU(sysCfg)
	cfg := core.DefaultConfig()
	cfg.Seed = 11
	cfg.NumWavefronts = 8
	cfg.EpisodesPerThread = 6
	cfg.ActionsPerEpisode = 40
	rep := core.New(b.K, b.Sys, cfg).Run()
	if !rep.Passed() {
		t.Fatalf("tester failed on banked L2: %v", rep.Failures[0])
	}
	if rep.OpsCompleted != rep.OpsIssued {
		t.Fatal("ops lost on banked topology")
	}
	_ = sim.Tick(0)
}
