package harness

import (
	"runtime"
	"sync"
	"sync/atomic"

	"drftest/internal/coverage"
	"drftest/internal/cputester"
	"drftest/internal/directory"
	"drftest/internal/moesi"
	"drftest/internal/protocol"
	"drftest/internal/viper"
)

func newDirSpecFn() *protocol.Spec { return directory.NewSpec() }
func newCPUSpecFn() *protocol.Spec { return moesi.NewCPUSpec() }

func newCPUTester(b *CPUBuild, cfg CPUTestConfig) *cputester.Tester {
	return cputester.New(b.K, b.Caches, cfg.TestCfg)
}

// Every run in a sweep owns an isolated kernel, RNG and coverage
// collector, so sweeps are embarrassingly parallel: results are
// bit-identical to the serial versions (per-run determinism is
// per-run), only wall clock changes. Wall-time totals still sum the
// per-run times, so reported testing cost is unaffected by the worker
// count.

// RunGPUSweepParallel is RunGPUSweep over a worker pool
// (workers ≤ 0 → GOMAXPROCS).
func RunGPUSweepParallel(cfgs []GPUTestConfig, workers int) *GPUSweepResult {
	results := make([]*GPURunResult, len(cfgs))
	parallelDo(len(cfgs), workers, func(i int) {
		results[i] = RunGPUTest(cfgs[i])
	})

	out := &GPUSweepResult{
		UnionL1: coverage.NewMatrix(viper.NewTCPSpec()),
		UnionL2: coverage.NewMatrix(viper.NewTCCSpec()),
	}
	for _, r := range results {
		out.Runs = append(out.Runs, r)
		out.UnionL1.Merge(r.L1)
		out.UnionL2.Merge(r.L2)
		out.TotalEvents += r.Report.EventsExecuted
		out.TotalWall += r.Report.WallTime
		out.TotalOps += r.Report.OpsIssued
		out.Failures += len(r.Report.Failures)
	}
	out.UnionL1Sum = out.UnionL1.Summarize(nil)
	out.UnionL2Sum = out.UnionL2.Summarize(TCCImpossibleGPUOnly())
	return out
}

// RunAppSuiteParallel is RunAppSuite over a worker pool.
func RunAppSuiteParallel(opts AppSuiteOptions, workers int) *AppSuiteResult {
	opts = opts.withDefaults()
	results := make([]*AppRunResult, len(opts.Profiles))
	parallelDo(len(opts.Profiles), workers, func(i int) {
		results[i] = runOneApp(scaleProfile(opts.Profiles[i], opts.Scale), opts, opts.Seed+uint64(i))
	})

	out := &AppSuiteResult{
		UnionL1:  coverage.NewMatrix(viper.NewTCPSpec()),
		UnionL2:  coverage.NewMatrix(viper.NewTCCSpec()),
		UnionDir: coverage.NewMatrix(newDirSpecFn()),
	}
	for _, r := range results {
		out.Runs = append(out.Runs, r)
		out.UnionL1.Merge(r.L1)
		out.UnionL2.Merge(r.L2)
		out.UnionDir.Merge(r.Dir)
		out.TotalEvents += r.Res.Events
		out.TotalWall += r.Res.WallTime
		out.Faults += r.Res.Faults
	}
	out.UnionL1Sum = out.UnionL1.Summarize(nil)
	out.UnionL2Sum = out.UnionL2.Summarize(TCCImpossibleHetero())
	out.UnionDirSum = out.UnionDir.Summarize(nil)
	return out
}

// RunCPUSweepParallel is RunCPUSweep over a worker pool.
func RunCPUSweepParallel(cfgs []CPUTestConfig, workers int) *CPUSweepResult {
	type cpuOut struct {
		r   *CPURunResult
		cpu *coverage.Matrix
	}
	results := make([]cpuOut, len(cfgs))
	parallelDo(len(cfgs), workers, func(i int) {
		b := BuildCPU(cfgs[i].NumCPUs, cfgs[i].CacheCfg)
		tester := newCPUTester(b, cfgs[i])
		rep := tester.Run()
		// Materialize the CPU-L1 matrix once: it serves both the run's
		// summary and the sweep's union merge below.
		cpu := b.Col.Matrix("CPU-L1")
		r := &CPURunResult{Name: cfgs[i].Name, Report: rep, Dir: b.Col.Matrix("Directory")}
		r.CPUSum = cpu.Summarize(nil)
		r.DirSum = r.Dir.Summarize(nil)
		results[i] = cpuOut{r: r, cpu: cpu}
	})

	out := &CPUSweepResult{
		UnionDir: coverage.NewMatrix(newDirSpecFn()),
		UnionCPU: coverage.NewMatrix(newCPUSpecFn()),
	}
	for _, res := range results {
		out.Runs = append(out.Runs, res.r)
		out.UnionDir.Merge(res.r.Dir)
		out.UnionCPU.Merge(res.cpu)
		out.TotalWall += res.r.Report.WallTime
		out.Failures += len(res.r.Report.Failures)
	}
	out.UnionDirSum = out.UnionDir.Summarize(nil)
	return out
}

func parallelDo(n, workers int, do func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	// An atomic ticket dispenser replaces the old prefilled buffered
	// channel: O(1) memory instead of O(n) buffered indices, and a
	// worker claims its next index with one atomic add instead of a
	// channel receive.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				do(i)
			}
		}()
	}
	wg.Wait()
}
