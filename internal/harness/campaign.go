// Campaign engine: coverage-saturation testing campaigns over reusable
// run contexts.
//
// The paper's methodology is campaign-shaped — coverage accumulates
// across many independent tester runs until the protocol transition
// matrix saturates — so the harness needs more than fixed-length
// sweeps. This file provides:
//
//   - Reusable run contexts (RunContext): each worker builds one system
//     and replays it across hundreds of seeds via the Reset paths
//     (sim.Kernel, viper.System, coverage.Collector, core.Tester),
//     skipping the per-run construction cost of caches, pools, address
//     space and reference memory. A reset run is bit-identical to a
//     fresh-build run for the same seed (pinned by
//     TestResetRunBitIdentical).
//   - A saturation-driven scheduler split into three layers. The *spec*
//     layer is CampaignConfig: a pure description of the campaign. The
//     *lease* layer is CampaignState.Plan: the next batch of seeds and
//     the configuration corner it must run under, which any executor —
//     the in-process worker pool below, or the control-plane daemon's
//     local and remote workers (internal/campaignd) — can shard and
//     run. The *merge* layer is CampaignState.Apply: coverage deltas
//     union into the campaign matrices at the batch barrier, newly
//     activated cells are counted and attributed, the corner policy
//     observes the yield, and the K-zero-batch stopping rule advances.
//   - Scalable merging: the run path touches only worker-local
//     matrices (the collector's direct counter tables); union merging
//     happens at batch boundaries, outside the workers, so there is no
//     shared-map or lock contention while seeds execute. Executors
//     hand whole-batch deltas to Apply, so merge cost amortizes per
//     batch — the property that lets the distributed daemon stream one
//     compact result per lease instead of one per seed.
//
// Determinism: the campaign's outcome — seeds run, batch count, union
// matrices, failure set — is a pure function of (Mode, BaseSeed,
// BatchSize, SaturateK, MaxSeeds) and is independent of the worker
// count *and* of how batches are sharded into deltas. Seeds are dealt
// from one counter so every seed in [BaseSeed, BaseSeed+SeedsRun) runs
// exactly once; matrix union is addition (commutative), the
// newly-activated-cell count per batch is a set property of the batch
// (independent of the order deltas merge in), and failures are keyed
// and sorted by seed. The swarm/directed corner policy (directed.go)
// only extends the argument: corners are chosen at batch boundaries
// from (BaseSeed, batch, per-batch new-cell history), all of which are
// themselves worker-count independent.
package harness

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"drftest/internal/core"
	"drftest/internal/coverage"
	"drftest/internal/protocol"
	"drftest/internal/trace"
	"drftest/internal/viper"
)

// DefaultCampaignMaxSeeds caps a campaign that never saturates.
const DefaultCampaignMaxSeeds = 1024

// CampaignConfig parameterizes a coverage-saturation campaign.
type CampaignConfig struct {
	// SysCfg and TestCfg shape every run; TestCfg.Seed is ignored —
	// run i uses seed BaseSeed + i.
	SysCfg  viper.Config `json:"sysCfg"`
	TestCfg core.Config  `json:"testCfg"`
	// BaseSeed is the first seed of the campaign's seed sequence.
	BaseSeed uint64 `json:"baseSeed"`
	// Workers sizes the worker pool (≤0 → GOMAXPROCS). The campaign
	// outcome does not depend on it, only wall clock does.
	Workers int `json:"workers,omitempty"`
	// BatchSize is the number of seeds between coverage merges (≤0 →
	// 16). The saturation rule advances in whole batches, so smaller
	// batches stop closer to the true plateau but merge more often.
	BatchSize int `json:"batchSize,omitempty"`
	// SaturateK stops the campaign after this many consecutive batches
	// that activate zero new transition cells. Zero disables the
	// plateau rule: the campaign runs exactly MaxSeeds seeds.
	SaturateK int `json:"saturateK,omitempty"`
	// MaxSeeds is the hard cap on seeds run (≤0 →
	// DefaultCampaignMaxSeeds).
	MaxSeeds int `json:"maxSeeds,omitempty"`
	// Rebuild disables run-context reuse: every seed constructs a
	// fresh system. This is the pre-campaign baseline mode, kept for
	// benchmarking the reset path against (BenchmarkCampaign).
	Rebuild bool `json:"rebuild,omitempty"`
	// Fork makes each worker fork per-seed run contexts from a warm
	// system snapshot (core.Tester.Fork) instead of Reset-scanning the
	// system: the snapshot arms copy-on-write journals over the caches
	// and reference memory, so rearming for the next seed costs
	// O(state the previous run touched) where System.Reset pays
	// O(cache capacity) every time. Fork-ineligible seeds (a corner
	// whose snapshot is not yet taken, or per-seed jitter reseeding)
	// transparently fall back to the reset path. The campaign outcome
	// is unchanged — a forked run is bit-identical to a reset run
	// (pinned by TestForkRunBitIdentical and
	// TestForkCampaignMatchesReset).
	Fork bool `json:"fork,omitempty"`
	// Mode selects the per-batch configuration policy: uniform (every
	// batch at the base config), swarm (a random lattice corner per
	// batch) or directed (corner sampling biased by cold-cell yield).
	// See directed.go.
	Mode CampaignMode `json:"mode,omitempty"`
	// ArtifactDir, when non-empty, writes one replay artifact per
	// failing seed into the directory (named by seed, the PR 1
	// reproduce-every-failure guarantee extended to campaigns);
	// TraceDepth sizes the embedded execution trace (≤0 →
	// DefaultTraceCapacity).
	ArtifactDir string `json:"artifactDir,omitempty"`
	TraceDepth  int    `json:"traceDepth,omitempty"`
	// CaptureArtifacts embeds each failing seed's replay artifact,
	// JSON-encoded, in SeedFailure.Artifact instead of (or in addition
	// to) writing loose files. The control-plane daemon sets it so
	// remote workers ship artifacts inline with their batch results and
	// the daemon persists them into its content-addressed store.
	CaptureArtifacts bool `json:"captureArtifacts,omitempty"`
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.MaxSeeds <= 0 {
		c.MaxSeeds = DefaultCampaignMaxSeeds
	}
	return c
}

// SeedFailure records the failures one seed produced.
type SeedFailure struct {
	Seed     uint64          `json:"seed"`
	Failures []*core.Failure `json:"failures"`
	// ArtifactPath is the replay artifact written for this seed
	// (CampaignConfig.ArtifactDir set, or the daemon's store path);
	// ArtifactErr records a write failure instead. Both empty when
	// artifacts were not requested.
	ArtifactPath string `json:"artifactPath,omitempty"`
	ArtifactErr  string `json:"artifactError,omitempty"`
	// Artifact is the JSON-encoded replay artifact
	// (CampaignConfig.CaptureArtifacts set): the wire form a remote
	// worker ships to the daemon, which persists it into the artifact
	// store and replaces it with ArtifactPath.
	Artifact []byte `json:"artifact,omitempty"`
}

// CampaignResult is the outcome of a saturation campaign.
type CampaignResult struct {
	// Mode is the configuration policy the campaign ran under.
	Mode CampaignMode
	// SeedsRun counts completed runs; seeds were BaseSeed ..
	// BaseSeed+SeedsRun-1.
	SeedsRun int
	// Batches counts merge rounds; NewCellsByBatch[i] is the number of
	// transition cells batch i activated for the first time.
	Batches         int
	NewCellsByBatch []int
	// CornerByBatch names the configuration corner each batch ran with
	// (all "...base..." in uniform mode).
	CornerByBatch []string
	// NewCellNamesByBatch lists, per batch, the "machine [State, Event]"
	// cells that batch activated for the first time — the per-corner
	// attribution record (total size is bounded by the cell count of
	// both matrices, so this stays small on any campaign length).
	NewCellNamesByBatch [][]string
	// ColdByBatch is the number of reachable-but-unhit union cells
	// remaining after each batch's merge — the quantity directed mode
	// chases to zero.
	ColdByBatch []int
	// Saturated reports whether the plateau rule (not the seed cap)
	// ended the campaign.
	Saturated bool
	// SeedsToSaturation is the number of seeds run through the last
	// batch that activated a new cell — the cost of reaching the
	// campaign's final coverage, excluding the trailing confirmation
	// batches. CellsAtSaturation is that final coverage: active
	// reachable cells summed over both matrices.
	SeedsToSaturation int
	CellsAtSaturation int

	UnionL1    *coverage.Matrix
	UnionL2    *coverage.Matrix
	UnionL1Sum coverage.Summary
	UnionL2Sum coverage.Summary

	// Failures lists every failing seed in ascending seed order.
	Failures []SeedFailure

	TotalOps    uint64
	TotalEvents uint64
	// TotalWall sums per-run wall times (the testing-cost measure);
	// Wall is the campaign's elapsed wall clock.
	TotalWall time.Duration
	Wall      time.Duration
}

// SeedsPerSec returns the campaign's end-to-end throughput.
func (r *CampaignResult) SeedsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.SeedsRun) / r.Wall.Seconds()
}

// BatchPlan is one batch the campaign wants executed: Count seeds
// starting at First, all under Corner. It is the lease layer's unit of
// work — an executor may run it on one context, shard it across a
// worker pool, or slice it into sub-leases for remote worker
// processes; the outcome is the same as long as every seed runs
// exactly once and the deltas all reach Apply.
type BatchPlan struct {
	// Index is the batch's position in the campaign (0-based).
	Index int
	// First is the batch's first seed; seeds are First..First+Count-1.
	First uint64
	Count int
	// Corner is the configuration corner every seed of the batch runs
	// under (the base corner in uniform mode).
	Corner *Corner
}

// BatchDelta is the merge-ready outcome of some subset of a batch's
// seeds: the coverage those seeds added (worker-local matrices),
// their failures, and their work counters. Matrices may be nil when a
// delta carries only failures/counters.
type BatchDelta struct {
	L1, L2   *coverage.Matrix
	Failures []SeedFailure
	// Seeds is the number of seeds the delta covers — bookkeeping for
	// executors that shard batches; Apply trusts the plan's Count.
	Seeds  int
	Ops    uint64
	Events uint64
	Wall   time.Duration
}

// CampaignState is the spec+merge layer of the campaign scheduler: it
// owns the corner policy, the union matrices, the saturation rule and
// every per-batch record, while delegating seed execution to whoever
// calls it. The single-process RunGPUCampaign and the control-plane
// daemon (internal/campaignd) drive the same state machine, which is
// why a distributed campaign's outcome is byte-identical to the local
// one: both are the same sequence of Plan/Apply transitions.
//
// The protocol is strictly alternating: Plan returns the current
// batch (idempotently — calling it twice plans the same batch), the
// caller executes those seeds however it likes, and Apply merges the
// batch's deltas at the barrier and advances. CampaignState is not
// goroutine-safe; callers serialize access (the daemon holds its
// campaign lock across Apply).
type CampaignState struct {
	cfg    CampaignConfig
	policy *cornerPolicy
	out    *CampaignResult

	l2Name        string
	impossible    coverage.CellSet
	tcpImpossible coverage.CellSet

	start       time.Time
	zeroBatches int
	done        bool
	finalized   bool
}

// NewCampaignState initializes the campaign state machine for cfg
// (defaults applied as in RunGPUCampaign).
func NewCampaignState(cfg CampaignConfig) *CampaignState {
	cfg = cfg.withDefaults()
	l2Spec, l2Name, impossible := campaignSpecs(cfg.SysCfg)
	return &CampaignState{
		cfg:    cfg,
		policy: newCornerPolicy(cfg),
		out: &CampaignResult{
			Mode:    cfg.Mode,
			UnionL1: coverage.NewMatrix(viper.NewTCPSpec()),
			UnionL2: coverage.NewMatrix(l2Spec),
		},
		l2Name:        l2Name,
		impossible:    impossible,
		tcpImpossible: TCPImpossible(),
		start:         time.Now(),
	}
}

// Config returns the campaign's configuration with defaults applied.
func (s *CampaignState) Config() CampaignConfig { return s.cfg }

// Done reports whether the campaign has ended (saturation or seed
// cap). Once true, Plan returns ok=false and Result may be taken.
func (s *CampaignState) Done() bool { return s.done }

// Plan returns the batch the campaign wants executed next. It is
// idempotent — the batch advances only when Apply merges its deltas —
// and returns ok=false once the campaign is done. The corner is a pure
// function of (BaseSeed, batch index, union history), so re-planning
// after a crash or lease reissue yields the identical batch.
func (s *CampaignState) Plan() (plan BatchPlan, ok bool) {
	if s.done {
		return BatchPlan{}, false
	}
	count := s.cfg.BatchSize
	if rest := s.cfg.MaxSeeds - s.out.SeedsRun; count > rest {
		count = rest
	}
	return BatchPlan{
		Index:  s.out.Batches,
		First:  s.cfg.BaseSeed + uint64(s.out.SeedsRun),
		Count:  count,
		Corner: s.policy.corner(s.out.Batches),
	}, true
}

// Apply merges the current batch's deltas at the batch barrier:
// coverage unions accumulate, newly activated cells are counted and
// attributed to the batch's corner, the policy observes the yield, and
// the saturation rule advances. The deltas must jointly cover exactly
// the current plan's seeds; their order is irrelevant (union is
// addition, the new-cell count is a set property of the batch, and the
// attribution record is sorted).
func (s *CampaignState) Apply(deltas []BatchDelta) {
	plan, ok := s.Plan()
	if !ok {
		panic("harness: Apply on a finished campaign")
	}
	out := s.out
	newCells := 0
	var activated []string
	onL1 := func(st, ev int) {
		activated = append(activated, "GPU-L1 "+out.UnionL1.CellName(coverage.Cell{State: st, Event: ev}))
	}
	onL2 := func(st, ev int) {
		activated = append(activated, s.l2Name+" "+out.UnionL2.CellName(coverage.Cell{State: st, Event: ev}))
	}
	for _, d := range deltas {
		if d.L1 != nil {
			newCells += out.UnionL1.MergeCountNewFunc(d.L1, onL1)
		}
		if d.L2 != nil {
			newCells += out.UnionL2.MergeCountNewFunc(d.L2, onL2)
		}
		out.Failures = append(out.Failures, d.Failures...)
		out.TotalOps += d.Ops
		out.TotalEvents += d.Events
		out.TotalWall += d.Wall
	}
	// Delta merge order is irrelevant to the counts; sort the
	// attribution list so the record reads the same regardless of which
	// worker (or lease) ran the activating seed.
	sort.Strings(activated)
	s.policy.observe(plan.Corner, newCells)
	out.SeedsRun += plan.Count
	out.Batches++
	out.NewCellsByBatch = append(out.NewCellsByBatch, newCells)
	out.NewCellNamesByBatch = append(out.NewCellNamesByBatch, activated)
	out.CornerByBatch = append(out.CornerByBatch, plan.Corner.Name())
	out.ColdByBatch = append(out.ColdByBatch,
		len(out.UnionL1.ColdCells(s.tcpImpossible))+len(out.UnionL2.ColdCells(s.impossible)))
	if newCells > 0 {
		out.SeedsToSaturation = out.SeedsRun
	}
	if newCells == 0 {
		s.zeroBatches++
	} else {
		s.zeroBatches = 0
	}
	if s.cfg.SaturateK > 0 && s.zeroBatches >= s.cfg.SaturateK {
		out.Saturated = true
		s.done = true
	}
	if out.SeedsRun >= s.cfg.MaxSeeds {
		s.done = true
	}
}

// Progress is a cheap point-in-time view of a running campaign, the
// payload of the daemon's live status endpoint.
type Progress struct {
	SeedsRun        int    `json:"seedsRun"`
	Batches         int    `json:"batches"`
	NewCellsByBatch []int  `json:"newCellsByBatch"`
	ActiveCells     int    `json:"activeCells"`
	ColdCells       int    `json:"coldCells"`
	Failures        int    `json:"failures"`
	Saturated       bool   `json:"saturated"`
	Done            bool   `json:"done"`
	Corner          string `json:"corner,omitempty"`
}

// Progress snapshots the campaign's live counters. ActiveCells is the
// sum of per-batch newly-activated cells — exactly the active union
// cell count, since a cell is counted once when it first goes nonzero.
func (s *CampaignState) Progress() Progress {
	p := Progress{
		SeedsRun:        s.out.SeedsRun,
		Batches:         s.out.Batches,
		NewCellsByBatch: append([]int(nil), s.out.NewCellsByBatch...),
		Failures:        len(s.out.Failures),
		Saturated:       s.out.Saturated,
		Done:            s.done,
	}
	for _, n := range s.out.NewCellsByBatch {
		p.ActiveCells += n
	}
	if n := len(s.out.ColdByBatch); n > 0 {
		p.ColdCells = s.out.ColdByBatch[n-1]
	}
	if plan, ok := s.Plan(); ok {
		p.Corner = plan.Corner.Name()
	}
	return p
}

// Abort ends the campaign early (daemon drain): no further batches are
// planned, and Result finalizes whatever whole batches merged. The
// merged prefix is still deterministic — it is the same Plan/Apply
// sequence any run of the spec would produce, just truncated.
func (s *CampaignState) Abort() { s.done = true }

// Result finalizes and returns the campaign outcome: failures sorted
// by seed, union summaries computed, wall clock closed. Idempotent;
// callable once Done (or after Abort).
func (s *CampaignState) Result() *CampaignResult {
	if !s.finalized {
		out := s.out
		// Failing seeds were appended in delta order; seed order is the
		// deterministic presentation (seeds are unique, so the sort is a
		// total order).
		sort.Slice(out.Failures, func(i, j int) bool { return out.Failures[i].Seed < out.Failures[j].Seed })
		out.UnionL1Sum = out.UnionL1.Summarize(s.tcpImpossible)
		out.UnionL2Sum = out.UnionL2.Summarize(s.impossible)
		out.CellsAtSaturation = out.UnionL1Sum.Active + out.UnionL2Sum.Active
		out.Wall = time.Since(s.start)
		s.finalized = true
	}
	return s.out
}

// RunContext owns one long-lived reusable run context: a built system,
// its tester, and the worker-local coverage/failure accumulators. All
// fields are touched only by the goroutine running seeds during a
// batch, and only by the merger between batches. It is the execution
// half the lease layer hands seeds to — the in-process pool below and
// the daemon's local and remote workers all run seeds through it.
type RunContext struct {
	cfg    CampaignConfig
	l2Name string

	b      *GPUBuild
	tester *core.Tester
	// ring is the execution trace attached when artifacts are
	// requested; it is reset per seed so a failing run's trace is
	// bit-identical to the trace a fresh single-seed replay records.
	ring *trace.Ring
	// corner is the interned corner the reusable context is currently
	// configured for; a pointer mismatch with the batch's corner routes
	// the reset through ResetWithConfig/SetRespJitter.
	corner *Corner
	// snap is the worker's warm system snapshot (Fork mode), taken at
	// the first clean quiescent point under snapCorner; seeds running
	// the same corner fork from it instead of Reset-scanning.
	snap       *viper.SystemSnapshot
	snapCorner *Corner

	// dL1/dL2 accumulate the context's coverage since its last delta
	// handoff; failures, seeds, ops, events and wall likewise. The
	// collector inside b is reset before every run, so its matrices
	// hold exactly one run's hits, merged here on completion.
	dL1, dL2 *coverage.Matrix
	failures []SeedFailure
	seeds    int
	ops      uint64
	events   uint64
	wall     time.Duration
}

// NewRunContext creates a reusable run context for cfg. The context is
// built lazily on the first RunSeed, so creating a pool is cheap.
func NewRunContext(cfg CampaignConfig) *RunContext {
	cfg = cfg.withDefaults()
	l2Spec, l2Name, _ := campaignSpecs(cfg.SysCfg)
	return &RunContext{
		cfg:    cfg,
		l2Name: l2Name,
		dL1:    coverage.NewMatrix(viper.NewTCPSpec()),
		dL2:    coverage.NewMatrix(l2Spec),
	}
}

// forkEligible reports whether seed runs under corner c can use the
// warm-snapshot fork path: Fork mode on, a snapshot taken for this
// exact corner, the context currently configured for it, and no
// per-seed jitter reseeding (which must route through SetRespJitter).
func (w *RunContext) forkEligible(c *Corner) bool {
	return w.cfg.Fork && !c.JitterPerSeed &&
		w.snap != nil && w.snapCorner == c && w.corner == c
}

// takeForkSnapshot captures the warm system snapshot for corner c at a
// clean quiescent point (just built, or just reset). Taking it arms
// the copy-on-write journals every subsequent run pays a small
// journaling overhead into — which is why it is only taken in Fork
// mode — and a corner change replaces it, so swarm batches fork
// within their own corner.
func (w *RunContext) takeForkSnapshot(c *Corner) {
	if !w.cfg.Fork || w.cfg.Rebuild || c.JitterPerSeed || (w.snap != nil && w.snapCorner == c) {
		return
	}
	w.snap = w.b.Sys.Snapshot()
	w.snapCorner = c
}

// cornerSysCfg is the system config corner c runs under for seed.
func (w *RunContext) cornerSysCfg(c *Corner, seed uint64) viper.Config {
	sc := w.cfg.SysCfg
	sc.RespJitter = c.RespJitter
	if c.JitterPerSeed {
		sc.JitterSeed = seed
	}
	return sc
}

// wantArtifacts reports whether failing seeds must capture a replay
// artifact (loose file, inline bytes, or both).
func (w *RunContext) wantArtifacts() bool {
	return w.cfg.ArtifactDir != "" || w.cfg.CaptureArtifacts
}

// RunSeed executes one seed under corner c, accumulating its coverage,
// failures and counters into the context's pending delta.
func (w *RunContext) RunSeed(seed uint64, c *Corner) {
	if w.b == nil || w.cfg.Rebuild {
		w.b = BuildGPU(w.cornerSysCfg(c, seed))
		if w.wantArtifacts() {
			w.ring = EnableTrace(w.b.K, w.cfg.TraceDepth)
		}
		tc := c.TestCfg
		tc.Seed = seed
		w.tester = core.New(w.b.K, w.b.Sys, tc)
		w.corner = c
		w.takeForkSnapshot(c)
	} else if w.forkEligible(c) {
		// Fork fast path: the collector and trace ring reset as usual
		// (their reset is already O(1)/in-place), but the system rearms
		// by journal-undo from the warm snapshot inside Tester.Fork,
		// skipping System.Reset's full cache-invalidation scans.
		w.b.Col.Reset()
		w.ring.Reset()
		w.tester.Fork(seed, []*viper.SystemSnapshot{w.snap})
	} else {
		// Reset order matters: the kernel first (drops pending events,
		// essential after a bug-stopped run), then the system (recycles
		// controller state those events referenced), then the collector
		// (zeroes the hit tables in place), the trace ring, and the
		// tester. A corner change retunes the response jitter between
		// the kernel and system resets (System.Reset reseeds the jitter
		// stream from the config this writes) and routes the tester
		// through the reconfiguring reset.
		w.b.K.Reset()
		if w.corner != c || c.JitterPerSeed {
			sc := w.cornerSysCfg(c, seed)
			w.b.Sys.SetRespJitter(sc.RespJitter, sc.JitterSeed)
		}
		w.b.Sys.Reset()
		w.b.Col.Reset()
		w.ring.Reset()
		if w.corner != c {
			w.tester.ResetWithConfig(seed, c.TestCfg)
			w.corner = c
		} else {
			w.tester.Reset(seed)
		}
		w.takeForkSnapshot(c)
	}
	rep := w.tester.Run()
	w.dL1.Merge(w.b.Col.Matrix("GPU-L1"))
	w.dL2.Merge(w.b.Col.Matrix(w.l2Name))
	if len(rep.Failures) > 0 {
		sf := SeedFailure{Seed: seed, Failures: rep.Failures}
		if w.wantArtifacts() {
			tc := c.TestCfg
			tc.Seed = seed
			art := NewGPUArtifact(w.b.Sys.Cfg, tc, w.tester, rep, w.ring)
			if w.cfg.CaptureArtifacts {
				if data, err := art.Encode(); err != nil {
					sf.ArtifactErr = err.Error()
				} else {
					sf.Artifact = data
				}
			}
			if w.cfg.ArtifactDir != "" {
				if path, err := art.Write(w.cfg.ArtifactDir); err != nil {
					sf.ArtifactErr = err.Error()
				} else {
					sf.ArtifactPath = path
				}
			}
		}
		w.failures = append(w.failures, sf)
	}
	w.seeds++
	w.ops += rep.OpsIssued
	w.events += rep.EventsExecuted
	w.wall += rep.WallTime
}

// Delta returns the context's accumulated coverage/failure delta. The
// matrices are *references* into the context — merge them (Apply, or a
// wire encoding) before the next RunSeed, then ClearDelta.
func (w *RunContext) Delta() BatchDelta {
	return BatchDelta{
		L1:       w.dL1,
		L2:       w.dL2,
		Failures: w.failures,
		Seeds:    w.seeds,
		Ops:      w.ops,
		Events:   w.events,
		Wall:     w.wall,
	}
}

// ClearDelta zeroes the accumulators for the next batch.
func (w *RunContext) ClearDelta() {
	w.dL1.Zero()
	w.dL2.Zero()
	w.failures = w.failures[:0]
	w.seeds = 0
	w.ops, w.events, w.wall = 0, 0, 0
}

// campaignSpecs resolves the L2 spec, collector matrix name and
// impossible-cell mask for the configured protocol variant.
func campaignSpecs(sysCfg viper.Config) (l2Spec *protocol.Spec, l2Name string, impossible coverage.CellSet) {
	if sysCfg.WriteBackL2 {
		return viper.NewTCCWBSpec(), "GPU-L2WB", TCCWBImpossible()
	}
	return viper.NewTCCSpec(), "GPU-L2", TCCImpossibleGPUOnly()
}

// CampaignSpecs resolves the protocol specs and collector matrix name
// a campaign over sysCfg records coverage against — the shape a
// distributed executor needs to decode sparse coverage deltas into
// mergeable matrices.
func CampaignSpecs(sysCfg viper.Config) (l1Spec, l2Spec *protocol.Spec, l2Name string) {
	l2, name, _ := campaignSpecs(sysCfg)
	return viper.NewTCPSpec(), l2, name
}

// RunGPUCampaign runs a coverage-saturation campaign over GPU-only
// systems: batches of seeds execute on the worker pool's reusable run
// contexts until SaturateK consecutive batches add no new transition
// coverage (or MaxSeeds is reached). See the package comment above for
// the determinism argument.
func RunGPUCampaign(cfg CampaignConfig) *CampaignResult {
	cfg = cfg.withDefaults()
	st := NewCampaignState(cfg)
	workers := make([]*RunContext, cfg.Workers)
	for i := range workers {
		workers[i] = NewRunContext(cfg)
	}

	deltas := make([]BatchDelta, len(workers))
	for {
		plan, ok := st.Plan()
		if !ok {
			break
		}
		// Workers claim seeds within the batch from an atomic ticket
		// counter; the barrier below is the merge point. Which worker
		// runs which seed is racy, but nothing observable depends on it.
		var next atomic.Int64
		var wg sync.WaitGroup
		for _, w := range workers {
			wg.Add(1)
			go func(w *RunContext) {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(plan.Count) {
						return
					}
					w.RunSeed(plan.First+uint64(i), plan.Corner)
				}
			}(w)
		}
		wg.Wait()

		for i, w := range workers {
			deltas[i] = w.Delta()
		}
		st.Apply(deltas)
		for _, w := range workers {
			w.ClearDelta()
		}
	}
	return st.Result()
}
