// Campaign engine: coverage-saturation testing campaigns over reusable
// run contexts.
//
// The paper's methodology is campaign-shaped — coverage accumulates
// across many independent tester runs until the protocol transition
// matrix saturates — so the harness needs more than fixed-length
// sweeps. This file provides:
//
//   - Reusable run contexts: each worker builds one system and replays
//     it across hundreds of seeds via the Reset paths (sim.Kernel,
//     viper.System, coverage.Collector, core.Tester), skipping the
//     per-run construction cost of caches, pools, address space and
//     reference memory. A reset run is bit-identical to a fresh-build
//     run for the same seed (pinned by TestResetRunBitIdentical).
//   - A saturation-driven scheduler: workers pull seeds from an
//     unbounded sequence via an atomic ticket counter and accumulate
//     per-worker coverage deltas; after every batch the merger unions
//     the deltas into the campaign matrices and counts newly activated
//     cells. K consecutive batches with zero new transitions stop the
//     campaign — run-until-plateau, the paper's actual stopping rule —
//     bounded by a hard seed cap.
//   - Scalable merging: the run path touches only worker-local
//     matrices (the collector's direct counter tables); union merging
//     happens at batch boundaries, outside the workers, so there is no
//     shared-map or lock contention while seeds execute.
//
// Determinism: the campaign's outcome — seeds run, batch count, union
// matrices, failure set — is a pure function of (Mode, BaseSeed,
// BatchSize, SaturateK, MaxSeeds) and is independent of the worker
// count. Seeds are dealt from one counter so every seed in [BaseSeed,
// BaseSeed+SeedsRun) runs exactly once; matrix union is addition
// (commutative), the newly-activated-cell count per batch is a set
// property of the batch, and failures are keyed and sorted by seed.
// The swarm/directed corner policy (directed.go) only extends the
// argument: corners are chosen at batch boundaries from (BaseSeed,
// batch, per-batch new-cell history), all of which are themselves
// worker-count independent.
package harness

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"drftest/internal/core"
	"drftest/internal/coverage"
	"drftest/internal/protocol"
	"drftest/internal/trace"
	"drftest/internal/viper"
)

// DefaultCampaignMaxSeeds caps a campaign that never saturates.
const DefaultCampaignMaxSeeds = 1024

// CampaignConfig parameterizes a coverage-saturation campaign.
type CampaignConfig struct {
	// SysCfg and TestCfg shape every run; TestCfg.Seed is ignored —
	// run i uses seed BaseSeed + i.
	SysCfg  viper.Config
	TestCfg core.Config
	// BaseSeed is the first seed of the campaign's seed sequence.
	BaseSeed uint64
	// Workers sizes the worker pool (≤0 → GOMAXPROCS). The campaign
	// outcome does not depend on it, only wall clock does.
	Workers int
	// BatchSize is the number of seeds between coverage merges (≤0 →
	// 16). The saturation rule advances in whole batches, so smaller
	// batches stop closer to the true plateau but merge more often.
	BatchSize int
	// SaturateK stops the campaign after this many consecutive batches
	// that activate zero new transition cells. Zero disables the
	// plateau rule: the campaign runs exactly MaxSeeds seeds.
	SaturateK int
	// MaxSeeds is the hard cap on seeds run (≤0 →
	// DefaultCampaignMaxSeeds).
	MaxSeeds int
	// Rebuild disables run-context reuse: every seed constructs a
	// fresh system. This is the pre-campaign baseline mode, kept for
	// benchmarking the reset path against (BenchmarkCampaign).
	Rebuild bool
	// Fork makes each worker fork per-seed run contexts from a warm
	// system snapshot (core.Tester.Fork) instead of Reset-scanning the
	// system: the snapshot arms copy-on-write journals over the caches
	// and reference memory, so rearming for the next seed costs
	// O(state the previous run touched) where System.Reset pays
	// O(cache capacity) every time. Fork-ineligible seeds (a corner
	// whose snapshot is not yet taken, or per-seed jitter reseeding)
	// transparently fall back to the reset path. The campaign outcome
	// is unchanged — a forked run is bit-identical to a reset run
	// (pinned by TestForkRunBitIdentical and
	// TestForkCampaignMatchesReset).
	Fork bool
	// Mode selects the per-batch configuration policy: uniform (every
	// batch at the base config), swarm (a random lattice corner per
	// batch) or directed (corner sampling biased by cold-cell yield).
	// See directed.go.
	Mode CampaignMode
	// ArtifactDir, when non-empty, writes one replay artifact per
	// failing seed into the directory (named by seed, the PR 1
	// reproduce-every-failure guarantee extended to campaigns);
	// TraceDepth sizes the embedded execution trace (≤0 →
	// DefaultTraceCapacity).
	ArtifactDir string
	TraceDepth  int
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.MaxSeeds <= 0 {
		c.MaxSeeds = DefaultCampaignMaxSeeds
	}
	return c
}

// SeedFailure records the failures one seed produced.
type SeedFailure struct {
	Seed     uint64
	Failures []*core.Failure
	// ArtifactPath is the replay artifact written for this seed
	// (CampaignConfig.ArtifactDir set); ArtifactErr records a write
	// failure instead. Both empty when artifacts were not requested.
	ArtifactPath string
	ArtifactErr  string
}

// CampaignResult is the outcome of a saturation campaign.
type CampaignResult struct {
	// Mode is the configuration policy the campaign ran under.
	Mode CampaignMode
	// SeedsRun counts completed runs; seeds were BaseSeed ..
	// BaseSeed+SeedsRun-1.
	SeedsRun int
	// Batches counts merge rounds; NewCellsByBatch[i] is the number of
	// transition cells batch i activated for the first time.
	Batches         int
	NewCellsByBatch []int
	// CornerByBatch names the configuration corner each batch ran with
	// (all "...base..." in uniform mode).
	CornerByBatch []string
	// NewCellNamesByBatch lists, per batch, the "machine [State, Event]"
	// cells that batch activated for the first time — the per-corner
	// attribution record (total size is bounded by the cell count of
	// both matrices, so this stays small on any campaign length).
	NewCellNamesByBatch [][]string
	// ColdByBatch is the number of reachable-but-unhit union cells
	// remaining after each batch's merge — the quantity directed mode
	// chases to zero.
	ColdByBatch []int
	// Saturated reports whether the plateau rule (not the seed cap)
	// ended the campaign.
	Saturated bool
	// SeedsToSaturation is the number of seeds run through the last
	// batch that activated a new cell — the cost of reaching the
	// campaign's final coverage, excluding the trailing confirmation
	// batches. CellsAtSaturation is that final coverage: active
	// reachable cells summed over both matrices.
	SeedsToSaturation int
	CellsAtSaturation int

	UnionL1    *coverage.Matrix
	UnionL2    *coverage.Matrix
	UnionL1Sum coverage.Summary
	UnionL2Sum coverage.Summary

	// Failures lists every failing seed in ascending seed order.
	Failures []SeedFailure

	TotalOps    uint64
	TotalEvents uint64
	// TotalWall sums per-run wall times (the testing-cost measure);
	// Wall is the campaign's elapsed wall clock.
	TotalWall time.Duration
	Wall      time.Duration
}

// SeedsPerSec returns the campaign's end-to-end throughput.
func (r *CampaignResult) SeedsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.SeedsRun) / r.Wall.Seconds()
}

// campaignWorker owns one long-lived run context. All fields are
// touched only by the goroutine running the worker during a batch, and
// only by the merger between batches.
type campaignWorker struct {
	cfg    CampaignConfig
	l2Name string

	b      *GPUBuild
	tester *core.Tester
	// ring is the execution trace attached when artifacts are
	// requested; it is reset per seed so a failing run's trace is
	// bit-identical to the trace a fresh single-seed replay records.
	ring *trace.Ring
	// corner is the interned corner the reusable context is currently
	// configured for; a pointer mismatch with the batch's corner routes
	// the reset through ResetWithConfig/SetRespJitter.
	corner *Corner
	// snap is the worker's warm system snapshot (Fork mode), taken at
	// the first clean quiescent point under snapCorner; seeds running
	// the same corner fork from it instead of Reset-scanning.
	snap       *viper.SystemSnapshot
	snapCorner *Corner

	// dL1/dL2 accumulate the worker's coverage since its last publish;
	// failures, ops, events and wall likewise. The collector inside b
	// is reset before every run, so its matrices hold exactly one
	// run's hits, merged here on completion.
	dL1, dL2 *coverage.Matrix
	failures []SeedFailure
	ops      uint64
	events   uint64
	wall     time.Duration
}

// forkEligible reports whether seed runs under corner c can use the
// warm-snapshot fork path: Fork mode on, a snapshot taken for this
// exact corner, the context currently configured for it, and no
// per-seed jitter reseeding (which must route through SetRespJitter).
func (w *campaignWorker) forkEligible(c *Corner) bool {
	return w.cfg.Fork && !c.JitterPerSeed &&
		w.snap != nil && w.snapCorner == c && w.corner == c
}

// takeForkSnapshot captures the warm system snapshot for corner c at a
// clean quiescent point (just built, or just reset). Taking it arms
// the copy-on-write journals every subsequent run pays a small
// journaling overhead into — which is why it is only taken in Fork
// mode — and a corner change replaces it, so swarm batches fork
// within their own corner.
func (w *campaignWorker) takeForkSnapshot(c *Corner) {
	if !w.cfg.Fork || w.cfg.Rebuild || c.JitterPerSeed || (w.snap != nil && w.snapCorner == c) {
		return
	}
	w.snap = w.b.Sys.Snapshot()
	w.snapCorner = c
}

// cornerSysCfg is the system config corner c runs under for seed.
func (w *campaignWorker) cornerSysCfg(c *Corner, seed uint64) viper.Config {
	sc := w.cfg.SysCfg
	sc.RespJitter = c.RespJitter
	if c.JitterPerSeed {
		sc.JitterSeed = seed
	}
	return sc
}

func (w *campaignWorker) runSeed(seed uint64, c *Corner) {
	if w.b == nil || w.cfg.Rebuild {
		w.b = BuildGPU(w.cornerSysCfg(c, seed))
		if w.cfg.ArtifactDir != "" {
			w.ring = EnableTrace(w.b.K, w.cfg.TraceDepth)
		}
		tc := c.TestCfg
		tc.Seed = seed
		w.tester = core.New(w.b.K, w.b.Sys, tc)
		w.corner = c
		w.takeForkSnapshot(c)
	} else if w.forkEligible(c) {
		// Fork fast path: the collector and trace ring reset as usual
		// (their reset is already O(1)/in-place), but the system rearms
		// by journal-undo from the warm snapshot inside Tester.Fork,
		// skipping System.Reset's full cache-invalidation scans.
		w.b.Col.Reset()
		w.ring.Reset()
		w.tester.Fork(seed, []*viper.SystemSnapshot{w.snap})
	} else {
		// Reset order matters: the kernel first (drops pending events,
		// essential after a bug-stopped run), then the system (recycles
		// controller state those events referenced), then the collector
		// (zeroes the hit tables in place), the trace ring, and the
		// tester. A corner change retunes the response jitter between
		// the kernel and system resets (System.Reset reseeds the jitter
		// stream from the config this writes) and routes the tester
		// through the reconfiguring reset.
		w.b.K.Reset()
		if w.corner != c || c.JitterPerSeed {
			sc := w.cornerSysCfg(c, seed)
			w.b.Sys.SetRespJitter(sc.RespJitter, sc.JitterSeed)
		}
		w.b.Sys.Reset()
		w.b.Col.Reset()
		w.ring.Reset()
		if w.corner != c {
			w.tester.ResetWithConfig(seed, c.TestCfg)
			w.corner = c
		} else {
			w.tester.Reset(seed)
		}
		w.takeForkSnapshot(c)
	}
	rep := w.tester.Run()
	w.dL1.Merge(w.b.Col.Matrix("GPU-L1"))
	w.dL2.Merge(w.b.Col.Matrix(w.l2Name))
	if len(rep.Failures) > 0 {
		sf := SeedFailure{Seed: seed, Failures: rep.Failures}
		if w.cfg.ArtifactDir != "" {
			tc := c.TestCfg
			tc.Seed = seed
			art := NewGPUArtifact(w.b.Sys.Cfg, tc, w.tester, rep, w.ring)
			if path, err := art.Write(w.cfg.ArtifactDir); err != nil {
				sf.ArtifactErr = err.Error()
			} else {
				sf.ArtifactPath = path
			}
		}
		w.failures = append(w.failures, sf)
	}
	w.ops += rep.OpsIssued
	w.events += rep.EventsExecuted
	w.wall += rep.WallTime
}

// publish merges the worker's accumulated delta into the campaign
// result, returning the number of newly activated union cells, and
// clears the delta for the next batch. onNew (optional) observes each
// newly activated cell — the merge-time attribution hook directed mode
// uses to credit the batch's corner.
func (w *campaignWorker) publish(out *CampaignResult, onNew func(machine string, state, event int)) int {
	onL1, onL2 := (func(int, int))(nil), (func(int, int))(nil)
	if onNew != nil {
		onL1 = func(s, e int) { onNew("GPU-L1", s, e) }
		onL2 = func(s, e int) { onNew(w.l2Name, s, e) }
	}
	n := out.UnionL1.MergeCountNewFunc(w.dL1, onL1)
	n += out.UnionL2.MergeCountNewFunc(w.dL2, onL2)
	w.dL1.Zero()
	w.dL2.Zero()
	out.Failures = append(out.Failures, w.failures...)
	w.failures = w.failures[:0]
	out.TotalOps += w.ops
	out.TotalEvents += w.events
	out.TotalWall += w.wall
	w.ops, w.events, w.wall = 0, 0, 0
	return n
}

// campaignSpecs resolves the L2 spec, collector matrix name and
// impossible-cell mask for the configured protocol variant.
func campaignSpecs(sysCfg viper.Config) (l2Spec *protocol.Spec, l2Name string, impossible coverage.CellSet) {
	if sysCfg.WriteBackL2 {
		return viper.NewTCCWBSpec(), "GPU-L2WB", TCCWBImpossible()
	}
	return viper.NewTCCSpec(), "GPU-L2", TCCImpossibleGPUOnly()
}

// RunGPUCampaign runs a coverage-saturation campaign over GPU-only
// systems: batches of seeds execute on the worker pool's reusable run
// contexts until SaturateK consecutive batches add no new transition
// coverage (or MaxSeeds is reached). See the package comment above for
// the determinism argument.
func RunGPUCampaign(cfg CampaignConfig) *CampaignResult {
	cfg = cfg.withDefaults()
	start := time.Now()
	l2Spec, l2Name, impossible := campaignSpecs(cfg.SysCfg)
	tcpImpossible := TCPImpossible()
	policy := newCornerPolicy(cfg)

	out := &CampaignResult{
		Mode:    cfg.Mode,
		UnionL1: coverage.NewMatrix(viper.NewTCPSpec()),
		UnionL2: coverage.NewMatrix(l2Spec),
	}
	workers := make([]*campaignWorker, cfg.Workers)
	for i := range workers {
		workers[i] = &campaignWorker{
			cfg:    cfg,
			l2Name: l2Name,
			dL1:    coverage.NewMatrix(viper.NewTCPSpec()),
			dL2:    coverage.NewMatrix(l2Spec),
		}
	}

	zeroBatches := 0
	for out.SeedsRun < cfg.MaxSeeds {
		batch := cfg.BatchSize
		if rest := cfg.MaxSeeds - out.SeedsRun; batch > rest {
			batch = rest
		}
		first := cfg.BaseSeed + uint64(out.SeedsRun)
		corner := policy.corner(out.Batches)

		// Workers claim seeds within the batch from an atomic ticket
		// counter; the barrier below is the merge point. Which worker
		// runs which seed is racy, but nothing observable depends on it.
		var next atomic.Int64
		var wg sync.WaitGroup
		for _, w := range workers {
			wg.Add(1)
			go func(w *campaignWorker) {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(batch) {
						return
					}
					w.runSeed(first+uint64(i), corner)
				}
			}(w)
		}
		wg.Wait()

		newCells := 0
		var activated []string
		onNew := func(machine string, state, event int) {
			m := out.UnionL1
			if machine != "GPU-L1" {
				m = out.UnionL2
			}
			activated = append(activated, machine+" "+m.CellName(coverage.Cell{State: state, Event: event}))
		}
		for _, w := range workers {
			newCells += w.publish(out, onNew)
		}
		// Worker merge order is fixed (the workers slice), so the
		// attribution list is deterministic; sort it anyway so the
		// record reads the same regardless of which worker ran the
		// activating seed.
		sort.Strings(activated)
		policy.observe(corner, newCells)
		out.SeedsRun += batch
		out.Batches++
		out.NewCellsByBatch = append(out.NewCellsByBatch, newCells)
		out.NewCellNamesByBatch = append(out.NewCellNamesByBatch, activated)
		out.CornerByBatch = append(out.CornerByBatch, corner.Name())
		out.ColdByBatch = append(out.ColdByBatch,
			len(out.UnionL1.ColdCells(tcpImpossible))+len(out.UnionL2.ColdCells(impossible)))
		if newCells > 0 {
			out.SeedsToSaturation = out.SeedsRun
		}
		if newCells == 0 {
			zeroBatches++
		} else {
			zeroBatches = 0
		}
		if cfg.SaturateK > 0 && zeroBatches >= cfg.SaturateK {
			out.Saturated = true
			break
		}
	}

	// Failing seeds were appended in worker order; seed order is the
	// deterministic presentation (seeds are unique, so the sort is a
	// total order).
	sort.Slice(out.Failures, func(i, j int) bool { return out.Failures[i].Seed < out.Failures[j].Seed })
	out.UnionL1Sum = out.UnionL1.Summarize(tcpImpossible)
	out.UnionL2Sum = out.UnionL2.Summarize(impossible)
	out.CellsAtSaturation = out.UnionL1Sum.Active + out.UnionL2Sum.Active
	out.Wall = time.Since(start)
	return out
}
