package harness

import (
	"fmt"

	"drftest/internal/cache"
	"drftest/internal/core"
	"drftest/internal/cputester"
	"drftest/internal/viper"
)

// GPUTestConfig names one cell of Table III's GPU tester sweep.
type GPUTestConfig struct {
	Name    string
	Caches  string // "small" | "large" | "mixed"
	SysCfg  viper.Config
	TestCfg core.Config
}

// GPUTesterConfigs returns the 24 permutations of Table III:
// {small, large, mixed} caches × {100, 200} actions/episode ×
// {10, 100} episodes/WF × {10, 100} atomic locations.
// scale (0 < scale ≤ 1) shortens test lengths proportionally so the
// same sweep runs in unit tests and at full length in the harness.
func GPUTesterConfigs(seed uint64, scale float64) []GPUTestConfig {
	if scale <= 0 {
		scale = 1
	}
	shrink := func(n int) int {
		v := int(float64(n) * scale)
		if v < 2 {
			v = 2
		}
		return v
	}

	cacheCfgs := []struct {
		name string
		cfg  viper.Config
	}{
		{"small", viper.SmallCacheConfig()},
		{"large", viper.LargeCacheConfig()},
		{"mixed", viper.MixedCacheConfig()},
	}
	var out []GPUTestConfig
	id := 0
	for _, cc := range cacheCfgs {
		for _, actions := range []int{100, 200} {
			for _, episodes := range []int{10, 100} {
				for _, syncVars := range []int{10, 100} {
					tc := core.DefaultConfig()
					tc.Seed = seed + uint64(id)
					tc.NumWavefronts = 2 * cc.cfg.NumCUs
					tc.ThreadsPerWF = 4
					tc.ActionsPerEpisode = shrink(actions)
					tc.EpisodesPerThread = shrink(episodes)
					tc.NumSyncVars = syncVars
					// The paper uses 1M regular locations; scaled down
					// proportionally it keeps the same sync:data ratio
					// pressure.
					tc.NumDataVars = shrink(100_000)
					out = append(out, GPUTestConfig{
						Name:    fmt.Sprintf("Test %d", id),
						Caches:  cc.name,
						SysCfg:  cc.cfg,
						TestCfg: tc,
					})
					id++
				}
			}
		}
	}
	return out
}

// CPUTesterConfigs returns the CPU tester sweep of Table III:
// {2, 4, 8} CPUs × {small, large} corepair caches × four test lengths.
func CPUTesterConfigs(seed uint64, scale float64) []CPUTestConfig {
	if scale <= 0 {
		scale = 1
	}
	var out []CPUTestConfig
	id := 0
	for _, cpus := range []int{2, 4, 8} {
		for _, size := range []string{"small", "large"} {
			for _, ops := range []int{100, 10_000, 100_000, 1_000_000} {
				cfg := cputester.DefaultConfig()
				cfg.Seed = seed + uint64(id)
				cfg.OpsPerCPU = int(float64(ops) * scale)
				if cfg.OpsPerCPU < 50 {
					cfg.OpsPerCPU = 50
				}
				cfg.NumLocations = 512
				cfg.AddressRangeBytes = 512 * 1024 * 1024 / 4096 // spread for replacements
				cc := DefaultCPUCache
				if size == "large" {
					cc = LargeCPUCache
				}
				out = append(out, CPUTestConfig{
					Name:     fmt.Sprintf("Test %d", id),
					NumCPUs:  cpus,
					Caches:   size,
					CacheCfg: cc,
					TestCfg:  cfg,
				})
				id++
			}
		}
	}
	return out
}

// CPUTestConfig names one cell of Table III's CPU tester sweep.
type CPUTestConfig struct {
	Name     string
	NumCPUs  int
	Caches   string
	CacheCfg cache.Config
	TestCfg  cputester.Config
}
