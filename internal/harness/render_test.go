package harness

import (
	"strings"
	"testing"

	"drftest/internal/apps"
	"drftest/internal/coverage"
	"drftest/internal/directory"
)

// TestRenderersProduceFigures drives every renderer at small scale and
// checks each figure's signature content appears — the same paths
// cmd/figures uses.
func TestRenderersProduceFigures(t *testing.T) {
	var b strings.Builder

	RenderTableI(&b)
	RenderTableII(&b)
	RenderTableIII(&b, GPUTesterConfigs(1, 0.05), CPUTesterConfigs(1, 0.05))
	RenderTableIV(&b)
	RenderFig4(&b)
	RenderFig5(&b, 1, 0.05)

	sweep := RunGPUSweep(GPUTesterConfigs(1, 0.05)[:2])
	appsRes := RunAppSuite(AppSuiteOptions{Seed: 1, Scale: 0.05, NumWFs: 4,
		Profiles: []apps.Profile{*apps.ByName("Square"), *apps.ByName("CM")}})
	RenderFig6(&b, appsRes)
	RenderFig7(&b, sweep, appsRes)
	RenderFig8(&b, sweep)
	RenderFig9(&b, appsRes)

	_, gpuDir := RunGPUTesterOnDirectory(GPUTesterConfigs(1, 0.05)[0])
	cpuRes := RunCPUSweep(CPUTesterConfigs(1, 0.01)[:2])
	union := gpuDir.Clone()
	union.Merge(cpuRes.UnionDir)
	RenderFig10(&b, &Fig10Result{
		Apps: appsRes.UnionDir, CPUTester: cpuRes.UnionDir,
		GPUTester: gpuDir, TesterUnion: union,
	})
	SpeedComparison(&b, sweep, appsRes)
	Banner(&b, "done")

	out := b.String()
	for _, want := range []string{
		"TABLE I. GPU L1 CACHE EVENTS",
		"TABLE II. GPU L2 CACHE EVENTS",
		"TABLE III. TESTER CONFIGURATIONS",
		"TABLE IV. APPLICATIONS",
		"Fig. 4: state transitions",
		"Fig. 5(a): small caches",
		"Fig. 5(b): large caches",
		"Fig. 6: data locality",
		"Fig. 7(a): GPU tester",
		"Fig. 7(b): all applications",
		"Fig. 8: GPU tester transition coverage",
		"Fig. 9: application transition coverage",
		"Fig. 10: system directory transitions",
		"(UNION)",
		"speedup to similar coverage",
		"streaming",
		"Active",
		"Undef",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered figures missing %q", want)
		}
	}
	if len(out) < 4000 {
		t.Errorf("suspiciously small render output: %d bytes", len(out))
	}
}

// TestFig10ClassesConsistent: every grid cell class in the Fig. 10
// renderers matches the underlying matrices.
func TestFig10ClassesConsistent(t *testing.T) {
	m := coverage.NewMatrix(directory.NewSpec())
	m.Hits[directory.StateU][directory.EvGPURd] = 3
	var b strings.Builder
	m.RenderClassGrid(&b, nil)
	if !strings.Contains(b.String(), "Active") {
		t.Fatal("grid lost the active cell")
	}
}
