package harness

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"drftest/internal/core"
	"drftest/internal/sim"
	"drftest/internal/viper"
)

// artifactJSON canonicalizes an artifact for byte-equality comparison.
func artifactJSON(t *testing.T, a *Artifact) string {
	t.Helper()
	b, err := json.Marshal(a)
	if err != nil {
		t.Fatalf("marshal artifact: %v", err)
	}
	return string(b)
}

// TestForkRunBitIdentical is the guard on the warm-fork fast path: a
// run on a context forked from a clean warm snapshot must be
// bit-identical — report, coverage, failures — to a run on a freshly
// built system with the same seed, across the same configuration
// corners the Reset guard covers. The context is dirtied by a full
// run with a different seed between the snapshot and the fork, and
// forked twice from the same snapshot to pin repeated reuse.
func TestForkRunBitIdentical(t *testing.T) {
	cases := []struct {
		name   string
		sysCfg func() viper.Config
		test   func(cfg *core.Config)
	}{
		{"writethrough", viper.SmallCacheConfig, func(cfg *core.Config) {}},
		{"writeback", func() viper.Config {
			c := viper.SmallCacheConfig()
			c.WriteBackL2 = true
			return c
		}, func(cfg *core.Config) {}},
		{"jitter", func() viper.Config {
			c := viper.SmallCacheConfig()
			c.RespJitter = 12
			c.JitterSeed = 99
			return c
		}, func(cfg *core.Config) {}},
		{"lostwrite-bug", func() viper.Config {
			c := viper.SmallCacheConfig()
			c.Bugs.LostWriteRace = true
			return c
		}, func(cfg *core.Config) {}},
		{"dropack-bug", func() viper.Config {
			c := viper.SmallCacheConfig()
			c.Bugs.DropWBAckEvery = 20
			return c
		}, func(cfg *core.Config) { cfg.KeepGoing = false }},
		{"trace-and-stream", viper.SmallCacheConfig, func(cfg *core.Config) {
			cfg.RecordTrace = true
			cfg.StreamCheck = true
		}},
	}
	const seed, dirtySeed = 7, 1234

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sysCfg := tc.sysCfg()
			_, l2Name, _ := campaignSpecs(sysCfg)
			testCfg := campaignTestCfg()
			tc.test(&testCfg)

			// Fresh build, run seed directly.
			fb := BuildGPU(sysCfg)
			fc := testCfg
			fc.Seed = seed
			fresh := core.New(fb.K, fb.Sys, fc).Run()
			freshL1 := fb.Col.Matrix("GPU-L1").Clone()
			freshL2 := fb.Col.Matrix(l2Name).Clone()

			// Second build: warm snapshot at the clean just-built point,
			// dirty the context with a different seed, then fork.
			rb := BuildGPU(sysCfg)
			snap := rb.Sys.Snapshot()
			rc := testCfg
			rc.Seed = dirtySeed
			tester := core.New(rb.K, rb.Sys, rc)
			tester.Run()

			for round := 1; round <= 2; round++ {
				rb.Col.Reset()
				tester.Fork(seed, []*viper.SystemSnapshot{snap})
				forked := tester.Run()
				if got, want := reportJSON(t, forked), reportJSON(t, fresh); got != want {
					t.Fatalf("fork %d: report differs from fresh-run report\nfresh: %s\nfork:  %s", round, want, got)
				}
				requireMatrixEqual(t, "GPU-L1", freshL1, rb.Col.Matrix("GPU-L1"))
				requireMatrixEqual(t, l2Name, freshL2, rb.Col.Matrix(l2Name))
			}
		})
	}
}

// TestForkCampaignMatchesReset: a campaign on the warm-fork fast path
// must produce exactly the outcome of the same campaign on the reset
// path — same seeds, failures, and union coverage — and stay
// worker-count independent. Swarm mode makes the forked workers cross
// corner boundaries (snapshot invalidation) and jittered corners
// (fork-ineligible fallback) along the way.
func TestForkCampaignMatchesReset(t *testing.T) {
	sysCfg := viper.SmallCacheConfig()
	sysCfg.Bugs.StaleAcquire = true // guarantee a non-empty failure set to compare
	base := CampaignConfig{
		SysCfg:    sysCfg,
		TestCfg:   campaignTestCfg(),
		BaseSeed:  100,
		Workers:   3,
		BatchSize: 8,
		MaxSeeds:  32,
		Mode:      CampaignSwarm,
	}
	ref := RunGPUCampaign(base)
	if ref.SeedsRun == 0 {
		t.Fatal("campaign ran no seeds")
	}

	forked := base
	forked.Fork = true
	for _, workers := range []int{3, 1} {
		forked.Workers = workers
		got := RunGPUCampaign(forked)
		if got.SeedsRun != ref.SeedsRun {
			t.Fatalf("fork workers=%d: ran %d seeds, reset ran %d", workers, got.SeedsRun, ref.SeedsRun)
		}
		requireMatrixEqual(t, "GPU-L1 union (fork)", ref.UnionL1, got.UnionL1)
		requireMatrixEqual(t, "GPU-L2 union (fork)", ref.UnionL2, got.UnionL2)
		requireFailuresEqual(t, ref.Failures, got.Failures)
	}
}

// TestCheckpointRestoreBitIdentical is the guard on mid-run
// checkpointing, the mechanism replay bisection stands on: freezing a
// run mid-flight, running it to completion, rewinding to the frozen
// cut and running it to completion again must produce byte-identical
// artifacts — which must also be byte-identical to an uncheckpointed
// fresh run of the same seed (snapshot arming must not perturb the
// simulation). Coverage must round-trip the same way.
func TestCheckpointRestoreBitIdentical(t *testing.T) {
	ref := failingGPURun(t) // uncheckpointed fresh-run reference
	_, l2Name, _ := campaignSpecs(ref.GPU.SysCfg)

	b := BuildGPU(ref.GPU.SysCfg)
	b.Sys.EnableCheckpointing()
	ring := EnableTrace(b.K, ref.TraceCapacity)
	tester := core.New(b.K, b.Sys, ref.GPU.TestCfg)
	if err := tester.CanCheckpoint(); err != nil {
		t.Fatal(err)
	}

	// Run the first half, freeze a full cut of every layer.
	tester.Start()
	mid := sim.Tick(ref.FirstFailure().Tick / 2)
	b.K.Run(mid)
	kSnap := b.K.Snapshot()
	sysSnap := b.Sys.Snapshot()
	tSnap := tester.Snapshot()
	colSnap := b.Col.Snapshot()
	ringSnap := ring.Snapshot()

	// First completion.
	b.K.RunUntilIdle()
	tester.Finish()
	first := NewGPUArtifact(ref.GPU.SysCfg, ref.GPU.TestCfg, tester, tester.Report(), ring)
	firstL1 := b.Col.Matrix("GPU-L1").Clone()
	firstL2 := b.Col.Matrix(l2Name).Clone()
	if got, want := artifactJSON(t, first), artifactJSON(t, ref); got != want {
		t.Fatalf("checkpointed run diverged from uncheckpointed fresh run\nfresh:        %s\ncheckpointed: %s", want, got)
	}

	// Rewind to the cut, complete again.
	b.K.Restore(kSnap)
	b.Sys.Restore(sysSnap)
	tester.Restore(tSnap)
	b.Col.Restore(colSnap)
	ring.Restore(ringSnap)
	b.K.RunUntilIdle()
	tester.Finish()
	second := NewGPUArtifact(ref.GPU.SysCfg, ref.GPU.TestCfg, tester, tester.Report(), ring)
	if got, want := artifactJSON(t, second), artifactJSON(t, first); got != want {
		t.Fatalf("restored run diverged from its own first completion\nfirst:    %s\nrestored: %s", want, got)
	}
	requireMatrixEqual(t, "GPU-L1 (restored)", firstL1, b.Col.Matrix("GPU-L1"))
	requireMatrixEqual(t, l2Name+" (restored)", firstL2, b.Col.Matrix(l2Name))
}

// TestBisectMinimizeCampaignArtifact is the end-to-end loop the PR
// exists for: a campaign-produced failing artifact bisects to a first
// failing tick and minimizes to a companion artifact that still
// reproduces through the standard Load/Replay/CheckReproduced path.
func TestBisectMinimizeCampaignArtifact(t *testing.T) {
	dir := t.TempDir()
	sysCfg := viper.SmallCacheConfig()
	sysCfg.Bugs.StaleAcquire = true
	res := RunGPUCampaign(CampaignConfig{
		SysCfg:      sysCfg,
		TestCfg:     campaignTestCfg(),
		BaseSeed:    100,
		Workers:     3,
		BatchSize:   8,
		MaxSeeds:    16,
		ArtifactDir: dir,
		TraceDepth:  512,
	})
	if len(res.Failures) == 0 {
		t.Fatal("bug-injected campaign detected no failures")
	}
	sf := res.Failures[0]
	if sf.ArtifactPath == "" || sf.ArtifactErr != "" {
		t.Fatalf("seed %d: no usable artifact (path %q, err %q)", sf.Seed, sf.ArtifactPath, sf.ArtifactErr)
	}
	art, err := LoadArtifact(sf.ArtifactPath)
	if err != nil {
		t.Fatal(err)
	}

	bi, err := BisectArtifact(art, 0)
	if err != nil {
		t.Fatalf("bisect: %v", err)
	}
	if bi.FirstFailingTick == 0 || bi.FirstFailingTick > bi.ReportedTick {
		t.Fatalf("bisected tick %d outside (0, reported %d]", bi.FirstFailingTick, bi.ReportedTick)
	}

	min := Minimize(art, filepath.Base(sf.ArtifactPath), bi.FirstFailingTick)
	minPath, err := WriteMinimized(sf.ArtifactPath, min)
	if err != nil {
		t.Fatal(err)
	}
	if want := MinimizedPath(sf.ArtifactPath); minPath != want {
		t.Fatalf("minimized artifact at %s, want %s", minPath, want)
	}

	loaded, err := LoadArtifact(minPath)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.MinimizedFrom != filepath.Base(sf.ArtifactPath) || loaded.FirstFailingTick != bi.FirstFailingTick {
		t.Fatalf("minimized artifact provenance = (%q, %d), want (%q, %d)",
			loaded.MinimizedFrom, loaded.FirstFailingTick, filepath.Base(sf.ArtifactPath), bi.FirstFailingTick)
	}
	if len(loaded.Trace) >= len(art.Trace) && bi.FirstFailingTick > art.Trace[0].Tick {
		t.Fatalf("minimization did not shrink the trace: %d of %d entries", len(loaded.Trace), len(art.Trace))
	}
	replayed, err := Replay(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckReproduced(loaded, replayed); err != nil {
		t.Fatalf("minimized artifact did not reproduce: %v", err)
	}
}
