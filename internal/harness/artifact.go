package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"drftest/internal/cache"
	"drftest/internal/core"
	"drftest/internal/cputester"
	"drftest/internal/sim"
	"drftest/internal/trace"
	"drftest/internal/viper"
)

// ArtifactSchema is the replay artifact format version. Bump it on any
// incompatible change to the Artifact layout.
const ArtifactSchema = 1

// DefaultTraceCapacity is the execution-trace depth used when a run is
// recorded for replay and no explicit depth is given.
const DefaultTraceCapacity = 4096

// Artifact kinds.
const (
	ArtifactGPU = "gpu"
	ArtifactCPU = "cpu"
)

// ArtifactFailure is one detected bug in replay-comparable form: a
// reproduced run must match every field of the original's first
// failure.
type ArtifactFailure struct {
	Kind     string `json:"kind"`
	Tick     uint64 `json:"tick"`
	Addr     uint64 `json:"addr"`
	Expected uint32 `json:"expected"`
	Got      uint32 `json:"got"`
	Message  string `json:"message"`
}

// RNGState is a PCG stream's raw state, captured at end of run.
type RNGState struct {
	State uint64 `json:"state"`
	Inc   uint64 `json:"inc"`
}

// OpCounts are the run's work counters; a bit-identical replay matches
// all of them.
type OpCounts struct {
	Issued          uint64 `json:"issued"`
	Completed       uint64 `json:"completed"`
	EpisodesRetired uint64 `json:"episodesRetired,omitempty"`
	KernelEvents    uint64 `json:"kernelEvents"`
}

// GPUSetup is everything needed to rebuild a failing GPU tester run.
type GPUSetup struct {
	SysCfg  viper.Config `json:"sysCfg"`
	TestCfg core.Config  `json:"testCfg"`
}

// CPUSetup is everything needed to rebuild a failing CPU tester run.
type CPUSetup struct {
	NumCPUs  int              `json:"numCPUs"`
	CacheCfg cache.Config     `json:"cacheCfg"`
	TestCfg  cputester.Config `json:"testCfg"`
}

// Artifact is a serialized failing run: the complete configuration and
// seed (enough to re-execute it), plus the observables a replay is
// checked against — failures, op counts, final RNG state, and the tail
// of the execution trace.
type Artifact struct {
	Schema int    `json:"schema"`
	Kind   string `json:"kind"` // ArtifactGPU or ArtifactCPU
	Seed   uint64 `json:"seed"`

	GPU *GPUSetup `json:"gpu,omitempty"`
	CPU *CPUSetup `json:"cpu,omitempty"`

	RNG RNGState `json:"rng"`
	Ops OpCounts `json:"ops"`

	// TraceCapacity is the ring depth the trace was recorded with;
	// replays use the same depth so tails compare entry-for-entry.
	TraceCapacity int           `json:"traceCapacity,omitempty"`
	Trace         []trace.Entry `json:"trace,omitempty"`

	Failures []ArtifactFailure `json:"failures"`

	// MinimizedFrom names the artifact file this one was minimized
	// from (Minimize): the trace is cut down to the shortest
	// reproducing suffix — entries from FirstFailingTick on — and
	// CheckReproduced compares it against the tail of a replay.
	// Both fields are additive, so the schema stays at 1: readers
	// without them see a plain (if short-traced) artifact.
	MinimizedFrom    string `json:"minimizedFrom,omitempty"`
	FirstFailingTick uint64 `json:"firstFailingTick,omitempty"`

	// Schedule pins a non-default event interleaving: one chosen event
	// sequence number per multi-candidate schedule choice point, in
	// execution order, as recorded by the bounded exhaustive explorer
	// (internal/explore). Replay attaches a sim.ScriptChooser built
	// from it, so the violating schedule re-executes bit-identically.
	// Additive like MinimizedFrom, so the schema stays at 1: readers
	// without it see a plain artifact (whose default-order replay would
	// simply not reproduce).
	Schedule []uint64 `json:"schedule,omitempty"`
}

// FirstFailure returns the artifact's first failure, the one a replay
// must reproduce.
func (a *Artifact) FirstFailure() ArtifactFailure {
	if len(a.Failures) == 0 {
		return ArtifactFailure{}
	}
	return a.Failures[0]
}

// NewGPUArtifact captures a finished (failing) GPU tester run. The
// ring may be nil when the run was not traced.
func NewGPUArtifact(sysCfg viper.Config, testCfg core.Config, tester *core.Tester, rep *core.Report, ring *trace.Ring) *Artifact {
	state, inc := tester.RNGState()
	return &Artifact{
		Schema: ArtifactSchema,
		Kind:   ArtifactGPU,
		Seed:   testCfg.Seed,
		GPU:    &GPUSetup{SysCfg: sysCfg, TestCfg: testCfg},
		RNG:    RNGState{State: state, Inc: inc},
		Ops: OpCounts{
			Issued:          rep.OpsIssued,
			Completed:       rep.OpsCompleted,
			EpisodesRetired: rep.EpisodesRetired,
			KernelEvents:    rep.EventsExecuted,
		},
		TraceCapacity: ring.Cap(),
		Trace:         ring.Entries(),
		Failures:      gpuFailures(rep.Failures),
	}
}

// NewCPUArtifact captures a finished (failing) CPU tester run.
func NewCPUArtifact(setup CPUSetup, tester *cputester.Tester, rep *cputester.Report, kernelEvents uint64, ring *trace.Ring) *Artifact {
	state, inc := tester.RNGState()
	return &Artifact{
		Schema: ArtifactSchema,
		Kind:   ArtifactCPU,
		Seed:   setup.TestCfg.Seed,
		CPU:    &setup,
		RNG:    RNGState{State: state, Inc: inc},
		Ops: OpCounts{
			Issued:       rep.OpsIssued,
			Completed:    rep.OpsCompleted,
			KernelEvents: kernelEvents,
		},
		TraceCapacity: ring.Cap(),
		Trace:         ring.Entries(),
		Failures:      cpuFailures(rep.Failures),
	}
}

func gpuFailures(fs []*core.Failure) []ArtifactFailure {
	out := make([]ArtifactFailure, 0, len(fs))
	for _, f := range fs {
		out = append(out, ArtifactFailure{
			Kind: f.Kind.String(), Tick: f.Tick, Addr: uint64(f.Addr),
			Expected: f.Expected, Got: f.Got, Message: f.Message,
		})
	}
	return out
}

func cpuFailures(fs []*cputester.Failure) []ArtifactFailure {
	out := make([]ArtifactFailure, 0, len(fs))
	for _, f := range fs {
		kind := "value-mismatch"
		if f.Deadlock {
			kind = "deadlock"
		}
		out = append(out, ArtifactFailure{
			Kind: kind, Tick: f.Tick, Addr: uint64(f.Addr),
			Expected: f.Expected, Got: f.Got, Message: f.Message,
		})
	}
	return out
}

// Encode serializes the artifact to its canonical on-disk form (the
// exact bytes Write produces). Because the encoding is deterministic,
// the bytes double as the artifact's identity in a content-addressed
// store: the same failing run always hashes to the same object.
func (a *Artifact) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Write serializes the artifact into dir (created if needed) under a
// deterministic name and returns the full path.
func (a *Artifact) Write(dir string) (string, error) {
	f := a.FirstFailure()
	return writeArtifactAs(a, dir, fmt.Sprintf("replay-%s-seed%d-tick%d.json", a.Kind, a.Seed, f.Tick))
}

// writeArtifactAs serializes a into dir (created if needed) under the
// given file name and returns the full path.
func writeArtifactAs(a *Artifact, dir, name string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	data, err := a.Encode()
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadArtifactBytes parses and validates an artifact from its encoded
// form (store objects, inline wire artifacts). name labels errors.
func LoadArtifactBytes(name string, data []byte) (*Artifact, error) {
	return decodeArtifact(name, data)
}

// LoadArtifact reads and validates an artifact file.
func LoadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeArtifact(path, data)
}

// decodeArtifact parses and validates an encoded artifact; path labels
// errors.
func decodeArtifact(path string, data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("artifact %s: %w", path, err)
	}
	if a.Schema != ArtifactSchema {
		return nil, fmt.Errorf("artifact %s: schema %d, this build reads %d", path, a.Schema, ArtifactSchema)
	}
	switch a.Kind {
	case ArtifactGPU:
		if a.GPU == nil {
			return nil, fmt.Errorf("artifact %s: gpu kind without gpu setup", path)
		}
		if a.GPU.TestCfg.Seed != a.Seed {
			return nil, fmt.Errorf("artifact %s: seed %d disagrees with embedded tester seed %d", path, a.Seed, a.GPU.TestCfg.Seed)
		}
	case ArtifactCPU:
		if a.CPU == nil {
			return nil, fmt.Errorf("artifact %s: cpu kind without cpu setup", path)
		}
		if a.CPU.TestCfg.Seed != a.Seed {
			return nil, fmt.Errorf("artifact %s: seed %d disagrees with embedded tester seed %d", path, a.Seed, a.CPU.TestCfg.Seed)
		}
	default:
		return nil, fmt.Errorf("artifact %s: unknown kind %q", path, a.Kind)
	}
	return &a, nil
}

// Replay re-executes the artifact's run from its embedded
// configuration and returns a freshly captured artifact of the re-run,
// traced at the original's depth.
func Replay(a *Artifact) (*Artifact, error) {
	depth := a.TraceCapacity
	if depth <= 0 {
		depth = DefaultTraceCapacity
	}
	switch a.Kind {
	case ArtifactGPU:
		b := BuildGPU(a.GPU.SysCfg)
		ring := EnableTrace(b.K, depth)
		tester := core.New(b.K, b.Sys, a.GPU.TestCfg)
		var sc *sim.ScriptChooser
		if len(a.Schedule) > 0 {
			sc = sim.NewScriptChooser(a.Schedule)
			b.K.SetChooser(sc)
		}
		rep := tester.Run()
		replayed := NewGPUArtifact(a.GPU.SysCfg, a.GPU.TestCfg, tester, rep, ring)
		if sc != nil {
			replayed.Schedule = a.Schedule
			if err := sc.Err(); err != nil {
				return nil, fmt.Errorf("replay: %w", err)
			}
			if sc.Consumed() != len(a.Schedule) {
				return nil, fmt.Errorf("replay: schedule diverged: consumed %d of %d recorded choices", sc.Consumed(), len(a.Schedule))
			}
		}
		return replayed, nil
	case ArtifactCPU:
		b := BuildCPU(a.CPU.NumCPUs, a.CPU.CacheCfg)
		ring := EnableTrace(b.K, depth)
		tester := cputester.New(b.K, b.Caches, a.CPU.TestCfg)
		rep := tester.Run()
		return NewCPUArtifact(*a.CPU, tester, rep, b.K.Executed(), ring), nil
	default:
		return nil, fmt.Errorf("replay: unknown artifact kind %q", a.Kind)
	}
}

// CheckReproduced verifies that replayed reproduces orig bit-
// identically: same first failure (kind, tick, address, values,
// message), same op counts, same final RNG state, and — when the
// original embedded a trace at the same depth — the same trace tail.
// A nil return means the failure reproduced.
func CheckReproduced(orig, replayed *Artifact) error {
	if len(orig.Failures) == 0 {
		return fmt.Errorf("original artifact has no failure to reproduce")
	}
	if len(replayed.Failures) == 0 {
		return fmt.Errorf("replay found no failure (original: %s at tick %d)",
			orig.FirstFailure().Kind, orig.FirstFailure().Tick)
	}
	of, rf := orig.FirstFailure(), replayed.FirstFailure()
	if of != rf {
		return fmt.Errorf("replay failure diverged:\n  original: %+v\n  replay:   %+v", of, rf)
	}
	if orig.Ops != replayed.Ops {
		return fmt.Errorf("replay op counts diverged: original %+v, replay %+v", orig.Ops, replayed.Ops)
	}
	if orig.RNG != (RNGState{}) && orig.RNG != replayed.RNG {
		return fmt.Errorf("replay RNG state diverged: original %+v, replay %+v", orig.RNG, replayed.RNG)
	}
	if len(orig.Trace) > 0 && orig.TraceCapacity == replayed.TraceCapacity {
		rt := replayed.Trace
		if orig.MinimizedFrom != "" {
			// A minimized artifact holds only the failing suffix of the
			// original trace; the replay re-records the full ring tail,
			// so it reproduces when the suffixes agree.
			if len(rt) < len(orig.Trace) {
				return fmt.Errorf("replay trace shorter than minimized suffix: %d vs %d entries", len(rt), len(orig.Trace))
			}
			rt = rt[len(rt)-len(orig.Trace):]
		} else if len(orig.Trace) != len(rt) {
			return fmt.Errorf("replay trace length diverged: %d vs %d entries", len(orig.Trace), len(rt))
		}
		for i := range orig.Trace {
			if orig.Trace[i] != rt[i] {
				return fmt.Errorf("replay trace diverged at entry %d:\n  original: %+v\n  replay:   %+v",
					i, orig.Trace[i], rt[i])
			}
		}
	}
	return nil
}
