// Package harness assembles systems and drives the paper's
// experiments: the Table III tester configuration sweep, the
// application suite baseline, the CPU tester runs, and the coverage
// comparisons behind every figure of the evaluation section.
package harness

import (
	"drftest/internal/cache"
	"drftest/internal/coverage"
	"drftest/internal/directory"
	"drftest/internal/dma"
	"drftest/internal/mem"
	"drftest/internal/memctrl"
	"drftest/internal/moesi"
	"drftest/internal/protocol"
	"drftest/internal/sim"
	"drftest/internal/trace"
	"drftest/internal/viper"
)

// traced wraps the coverage collector in a trace.Recorder bound to k,
// so every protocol transition is mirrored into the kernel's execution
// trace whenever one is attached (see EnableTrace). With no tracer the
// wrapper only costs a nil-check per transition.
func traced(k *sim.Kernel, col *coverage.Collector, specs ...*protocol.Spec) protocol.Recorder {
	return trace.NewRecorder(k, col, specs...)
}

// EnableTrace attaches a bounded execution trace to k and returns the
// ring. Capacity <= 0 uses DefaultTraceCapacity.
func EnableTrace(k *sim.Kernel, capacity int) *trace.Ring {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	r := trace.NewRing(capacity)
	k.SetTracer(r)
	return r
}

// GPUBuild is a GPU-only system ready for a tester or workload.
type GPUBuild struct {
	K   *sim.Kernel
	Sys *viper.System
	Col *coverage.Collector
}

// BuildGPU assembles a GPU-only system with coverage collection
// (either protocol variant).
func BuildGPU(cfg viper.Config) *GPUBuild {
	k := sim.NewKernel()
	col := coverage.NewCollector(viper.NewTCPSpec(), viper.NewTCCSpec(), viper.NewTCCWBSpec())
	rec := traced(k, col, viper.NewTCPSpec(), viper.NewTCCSpec(), viper.NewTCCWBSpec())
	sys := viper.NewSystem(k, cfg, rec)
	return &GPUBuild{K: k, Sys: sys, Col: col}
}

// DefaultCPUCache is the small corepair cache of Table III's CPU
// tester column.
var DefaultCPUCache = cache.Config{SizeBytes: 512, LineSize: 64, Assoc: 2}

// LargeCPUCache is Table III's large corepair configuration.
var LargeCPUCache = cache.Config{SizeBytes: 512 * 1024, LineSize: 64, Assoc: 8}

// CPUBuild is a CPU-only system (caches + directory) for the CPU
// tester.
type CPUBuild struct {
	K      *sim.Kernel
	Caches []*moesi.Cache
	Dir    *directory.Directory
	Store  *mem.Store
	Col    *coverage.Collector
}

// BuildCPU assembles numCPUs moesi caches over a directory.
func BuildCPU(numCPUs int, cacheCfg cache.Config) *CPUBuild {
	k := sim.NewKernel()
	col := coverage.NewCollector(moesi.NewCPUSpec(), directory.NewSpec())
	rec := traced(k, col, moesi.NewCPUSpec(), directory.NewSpec())
	store := mem.NewStore()
	ctrl := memctrl.New(k, memctrl.DefaultConfig(), store, nil)
	dir := directory.New(k, rec, nil, ctrl, cacheCfg.LineSize)
	spec := moesi.NewCPUSpec()
	caches := make([]*moesi.Cache, numCPUs)
	for i := range caches {
		caches[i] = moesi.NewCache(k, spec, rec, nil, cacheCfg, dir)
	}
	return &CPUBuild{K: k, Caches: caches, Dir: dir, Store: store, Col: col}
}

// HeteroBuild is the full heterogeneous system: a VIPER GPU over the
// shared directory, CPU caches, and a DMA engine.
type HeteroBuild struct {
	K      *sim.Kernel
	GPU    *viper.System
	Caches []*moesi.Cache
	Dir    *directory.Directory
	DMA    *dma.Engine
	Store  *mem.Store
	Col    *coverage.Collector
}

// BuildHetero assembles the heterogeneous system of §IV.C.
func BuildHetero(gpuCfg viper.Config, numCPUs int, cpuCache cache.Config) *HeteroBuild {
	if gpuCfg.L1.LineSize != cpuCache.LineSize {
		panic("harness: GPU and CPU line sizes must match")
	}
	k := sim.NewKernel()
	col := coverage.NewCollector(
		viper.NewTCPSpec(), viper.NewTCCSpec(),
		moesi.NewCPUSpec(), directory.NewSpec(),
	)
	rec := traced(k, col,
		viper.NewTCPSpec(), viper.NewTCCSpec(),
		moesi.NewCPUSpec(), directory.NewSpec(),
	)
	store := mem.NewStore()
	ctrl := memctrl.New(k, gpuCfg.Mem, store, nil)
	dir := directory.New(k, rec, nil, ctrl, gpuCfg.L1.LineSize)
	gpu := viper.NewSystemWithBackend(k, gpuCfg, rec, dir)
	dir.AttachGPU(gpu)

	spec := moesi.NewCPUSpec()
	caches := make([]*moesi.Cache, numCPUs)
	for i := range caches {
		caches[i] = moesi.NewCache(k, spec, rec, nil, cpuCache, dir)
	}
	return &HeteroBuild{
		K: k, GPU: gpu, Caches: caches, Dir: dir,
		DMA:   dma.New(k, dir, gpuCfg.L1.LineSize),
		Store: store, Col: col,
	}
}

// --- Impossible-cell masks (the Impsb class of Fig. 7) ---

// TCCImpossibleGPUOnly returns the L2 cells unreachable when no CPU
// shares the directory: every probe-invalidate cell (probes only come
// from a remote client) and the atomic NACK (only a directory NACKs).
func TCCImpossibleGPUOnly() coverage.CellSet {
	s := coverage.CellSet{}
	for _, st := range []int{viper.TCCStateI, viper.TCCStateV, viper.TCCStateIV, viper.TCCStateA} {
		s.Add(st, viper.TCCPrbInv)
	}
	s.Add(viper.TCCStateA, viper.TCCAtomicND)
	return s
}

// TCPImpossible returns the L1 cells unreachable under the tester —
// none. Every defined TCP cell is reachable in GPU-only mode (audited
// empirically; TestTCPFullCoverageReachable pins it by driving a swarm
// campaign to 100% L1 coverage), so campaign summaries mask nothing:
// an L1 cell directed mode is chasing is always genuinely reachable.
func TCPImpossible() coverage.CellSet {
	return coverage.CellSet{}
}

// TCCImpossibleHetero returns the L2 cells unreachable in the
// heterogeneous system: none — with other clients on the directory,
// every defined L2 cell (including probes racing in-flight fills) is
// reachable.
func TCCImpossibleHetero() coverage.CellSet {
	return coverage.CellSet{}
}

// Sanity check at init time: masks must only name defined cells.
func init() {
	tcc := viper.NewTCCSpec()
	for cell := range TCCImpossibleGPUOnly() {
		if tcc.Cell(cell[0], cell[1]).Kind == protocol.Undefined {
			panic("harness: impossible mask names an undefined TCC cell")
		}
	}
}
