package harness

import (
	"testing"

	"drftest/internal/checker"
	"drftest/internal/core"
	"drftest/internal/mem"
	"drftest/internal/viper"
)

// TestMultiGPUCoherence: hand-scripted cross-GPU visibility — GPU 1
// caches a line in its L2; GPU 0's write must probe-invalidate it, so
// GPU 1's post-acquire load observes the new value.
func TestMultiGPUCoherence(t *testing.T) {
	gpuCfg := viper.SmallCacheConfig()
	gpuCfg.NumCUs = 1
	b := BuildMultiGPU(gpuCfg, 2)
	cl := &hclient{responses: map[uint64]*mem.Response{}}
	b.GPUs[0].Seqs[0].SetClient(cl)
	b.GPUs[1].Seqs[0].SetClient(cl)

	// GPU 1 warms the line (cached in its TCC).
	b.GPUs[1].Seqs[0].Issue(&mem.Request{ID: 1, Op: mem.OpLoad, Addr: 0x100, ThreadID: 1})
	b.K.RunUntilIdle()
	// GPU 0 writes it through; the directory must invalidate GPU 1's L2.
	b.GPUs[0].Seqs[0].Issue(&mem.Request{ID: 2, Op: mem.OpStore, Addr: 0x100, Data: 33, ThreadID: 0})
	b.K.RunUntilIdle()
	// GPU 1 acquires, then reads: fresh value required.
	b.GPUs[1].Seqs[0].Issue(&mem.Request{ID: 3, Op: mem.OpAtomic, Addr: 0x4000, Operand: 1, Acquire: true, ThreadID: 1})
	b.K.RunUntilIdle()
	b.GPUs[1].Seqs[0].Issue(&mem.Request{ID: 4, Op: mem.OpLoad, Addr: 0x100, ThreadID: 1})
	b.K.RunUntilIdle()
	if got := cl.responses[4].Data; got != 33 {
		t.Fatalf("GPU1 saw %d after GPU0 write, want 33", got)
	}
	l2 := b.Col.Matrix("GPU-L2")
	if l2.Hits[viper.TCCStateV][viper.TCCPrbInv] == 0 {
		t.Fatal("[V,PrbInv] inter-GPU invalidation not recorded")
	}
}

// TestMultiGPUTester: one DRF tester spans both GPUs; it must pass,
// and — the point of the topology — reach the PrbInv transitions no
// single-GPU system can (the paper's "Impsb" cells become coverable).
func TestMultiGPUTester(t *testing.T) {
	gpuCfg := viper.SmallCacheConfig()
	gpuCfg.NumCUs = 4
	b := BuildMultiGPU(gpuCfg, 2)
	cfg := core.DefaultConfig()
	cfg.Seed = 3
	cfg.NumWavefronts = 16
	cfg.EpisodesPerThread = 8
	cfg.ActionsPerEpisode = 40
	cfg.NumSyncVars = 8
	cfg.NumDataVars = 256
	cfg.RecordTrace = true
	tester := core.NewMulti(b.K, b.GPUs, cfg)
	tester.Start()
	b.K.RunUntilIdle()
	tester.Finish()
	tester.AuditStore(b.Store)
	if fails := tester.Failures(); len(fails) > 0 {
		t.Fatalf("multi-GPU tester failed: %s", fails[0].TableV())
	}
	// Axiomatic re-verification across both GPUs.
	if vs := checker.Verify(tester.Trace()); len(vs) != 0 {
		t.Fatalf("axiomatic checker flagged the multi-GPU run: %v", vs[0])
	}

	l2 := b.Col.Matrix("GPU-L2")
	sum := l2.Summarize(TCCImpossibleMultiGPU())
	t.Logf("multi-GPU L2 coverage: %s", sum)
	probeHits := l2.Hits[viper.TCCStateI][viper.TCCPrbInv] + l2.Hits[viper.TCCStateV][viper.TCCPrbInv]
	if probeHits == 0 {
		t.Fatal("multi-GPU tester never triggered inter-GPU PrbInv")
	}
	dirSum := b.Col.Matrix("Directory").Summarize(nil)
	t.Logf("directory from multi-GPU tester alone: %s", dirSum)
}
