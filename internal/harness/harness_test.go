package harness

import (
	"testing"

	"drftest/internal/apps"
	"drftest/internal/directory"
)

func TestTableIIIConfigCounts(t *testing.T) {
	gpu := GPUTesterConfigs(1, 1)
	if len(gpu) != 24 {
		t.Fatalf("GPU sweep has %d configs, Table III has 24", len(gpu))
	}
	names := map[string]bool{}
	for _, c := range gpu {
		if names[c.Name] {
			t.Errorf("duplicate config name %s", c.Name)
		}
		names[c.Name] = true
	}
	cpu := CPUTesterConfigs(1, 1)
	if len(cpu) != 24 {
		t.Fatalf("CPU sweep has %d configs, Table III has 24", len(cpu))
	}
}

func TestGPUSweepSmallScale(t *testing.T) {
	cfgs := GPUTesterConfigs(7, 0.1)
	res := RunGPUSweep(cfgs[:6]) // small+large cache variants
	if res.Failures != 0 {
		for _, r := range res.Runs {
			for _, f := range r.Report.Failures {
				t.Errorf("%s: %s", r.Name, f.TableV())
			}
		}
		t.Fatal("tester sweep reported failures on a correct protocol")
	}
	t.Logf("union L1 %s", res.UnionL1Sum)
	t.Logf("union L2 %s", res.UnionL2Sum)
	t.Logf("total ops=%d events=%d wall=%s", res.TotalOps, res.TotalEvents, res.TotalWall)
	if res.UnionL1Sum.Coverage() < 0.7 || res.UnionL2Sum.Coverage() < 0.7 {
		t.Errorf("implausibly low tester coverage: L1 %.2f L2 %.2f",
			res.UnionL1Sum.Coverage(), res.UnionL2Sum.Coverage())
	}
}

func TestAppSuiteSmallScale(t *testing.T) {
	few := []apps.Profile{*apps.ByName("Square"), *apps.ByName("Interac"), *apps.ByName("MatMul")}
	res := RunAppSuite(AppSuiteOptions{Seed: 3, Scale: 0.25, NumWFs: 8, Profiles: few})
	if res.Faults != 0 {
		t.Fatalf("protocol faults during app suite: %d", res.Faults)
	}
	for _, r := range res.Runs {
		if !r.Res.Completed {
			t.Fatalf("%s did not complete", r.Res.App)
		}
		t.Logf("%-10s events=%-9d L1=%.0f%% L2=%.0f%% locality=%v",
			r.Res.App, r.Res.Events, 100*r.L1Sum.Coverage(), 100*r.L2Sum.Coverage(), r.Res.Locality)
	}
	t.Logf("union dir %s", res.UnionDirSum)
	// Heterogeneous app runs must reach the GPU L2's probe cells (the
	// paper's reason application testing isn't strictly dominated).
	if res.UnionDir.Hits[directory.StateU][directory.EvDMAWr] == 0 {
		t.Error("apps should exercise DMA directory transitions")
	}
}

// TestTesterBeatsAppsOnGPUCoverage is the paper's headline comparison
// (Figs. 7-9) at reduced scale: the tester union must cover at least
// as many L1/L2 transitions as the app union, using far less work.
func TestTesterBeatsAppsOnGPUCoverage(t *testing.T) {
	sweep := RunGPUSweep(GPUTesterConfigs(11, 0.15)[:8])
	if sweep.Failures != 0 {
		t.Fatal("tester failures")
	}
	appRes := RunAppSuite(AppSuiteOptions{Seed: 5, Scale: 0.2, NumWFs: 8,
		Profiles: []apps.Profile{
			*apps.ByName("Square"), *apps.ByName("FFT"), *apps.ByName("Interac"),
			*apps.ByName("CM"), *apps.ByName("MatMul"), *apps.ByName("Histogram"),
		}})
	if appRes.Faults != 0 {
		t.Fatal("app faults")
	}
	// Compare over a common denominator (reachable in GPU-only runs).
	tL1, tL2 := sweep.UnionL1Sum, sweep.UnionL2Sum
	aL1 := appRes.UnionL1.Summarize(nil)
	aL2 := appRes.UnionL2.Summarize(TCCImpossibleGPUOnly())
	t.Logf("tester: L1 %.1f%%  L2 %.1f%%  events=%d", 100*tL1.Coverage(), 100*tL2.Coverage(), sweep.TotalEvents)
	t.Logf("apps  : L1 %.1f%%  L2 %.1f%%  events=%d", 100*aL1.Coverage(), 100*aL2.Coverage(), appRes.TotalEvents)
	if tL1.Active < aL1.Active {
		t.Errorf("apps cover more L1 transitions (%d) than tester (%d)", aL1.Active, tL1.Active)
	}
	if tL2.Active < aL2.Active {
		t.Errorf("apps cover more L2 transitions (%d) than tester (%d)", aL2.Active, tL2.Active)
	}
	t.Logf("tester inactive L1 cells: %v", sweep.UnionL1.InactiveCells(nil))
	t.Logf("tester inactive L2 cells: %v", sweep.UnionL2.InactiveCells(TCCImpossibleGPUOnly()))
	t.Logf("apps inactive L2 cells: %v", appRes.UnionL2.InactiveCells(TCCImpossibleGPUOnly()))
}

// TestFig10Shape reproduces the §IV.C conclusion: GPU+CPU tester union
// beats apps on the directory, while apps uniquely reach DMA cells.
func TestFig10Shape(t *testing.T) {
	gpuCfgs := GPUTesterConfigs(21, 0.1)
	_, gpuDir := RunGPUTesterOnDirectory(gpuCfgs[0])
	_, gpuDir2 := RunGPUTesterOnDirectory(gpuCfgs[9])
	gpuDir.Merge(gpuDir2)
	cpuRes := RunCPUSweep(CPUTesterConfigs(23, 0.02)[:6])
	if cpuRes.Failures != 0 {
		t.Fatal("CPU tester failures")
	}
	union := gpuDir.Clone()
	union.Merge(cpuRes.UnionDir)
	unionSum := union.Summarize(nil)

	appRes := RunAppSuite(AppSuiteOptions{Seed: 9, Scale: 0.15, NumWFs: 8,
		Profiles: []apps.Profile{*apps.ByName("Square"), *apps.ByName("Interac"), *apps.ByName("DNNMark_Conv")}})
	appSum := appRes.UnionDirSum

	t.Logf("directory coverage: testers union %.1f%%  apps %.1f%%",
		100*unionSum.Coverage(), 100*appSum.Coverage())
	if unionSum.Active <= appSum.Active {
		t.Errorf("tester union (%d active) should beat apps (%d active) on the directory",
			unionSum.Active, appSum.Active)
	}
	// Apps must uniquely activate DMA transitions.
	dmaOnly := 0
	for _, ev := range []int{directory.EvDMARd, directory.EvDMAWr} {
		for st := 0; st < 4; st++ {
			if appRes.UnionDir.Hits[st][ev] > 0 && union.Hits[st][ev] == 0 {
				dmaOnly++
			}
		}
	}
	if dmaOnly == 0 {
		t.Error("apps should uniquely activate DMA directory transitions")
	}
	t.Logf("apps uniquely activate %d DMA cells", dmaOnly)
}
