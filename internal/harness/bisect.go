// Checkpointed replay bisection and failure-trace minimization.
//
// A replay artifact pins a failing run, but the failure it reports is
// often detected long after the state divergence that caused it — a
// deadlock surfaces a whole heartbeat period after progress ceased,
// and a value mismatch only when the stale line is finally read. This
// file narrows a failing replay down to its first failing tick without
// re-simulating the prefix over and over:
//
//  1. One checkpointed replay pass re-executes the run, capturing a
//     full run-context snapshot (kernel, system, tester, coverage,
//     trace ring) every K ticks alongside the failure and progress
//     counters at that point.
//  2. The coarse phase binary-searches the recorded counters — pure
//     array work, no simulation — for the pair of checkpoints
//     bracketing the first tick where the failure predicate flips.
//  3. The fine phase restores the one bracketing checkpoint below the
//     flip and single-steps the kernel at most K ticks to the exact
//     first failing tick.
//
// The probe phase (restore + fine scan) costs a fraction of a full
// replay — the CI floor pins it at ≤ 0.5× — and re-running it against
// other predicates reuses the same checkpoint pass. On top of the
// bisected tick, Minimize cuts the artifact's trace down to the
// suffix from that tick on, producing a minimized artifact that still
// reproduces (CheckReproduced compares suffixes for minimized
// artifacts).
package harness

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"drftest/internal/core"
	"drftest/internal/coverage"
	"drftest/internal/sim"
	"drftest/internal/trace"
	"drftest/internal/viper"
)

// DefaultBisectCheckpoints is the checkpoint-count target the adaptive
// cadence aims for when no explicit interval is given.
const DefaultBisectCheckpoints = 64

// gpuCheckpoint is one full run-context snapshot plus the counters the
// coarse search needs.
type gpuCheckpoint struct {
	tick   uint64
	kernel *sim.KernelSnapshot
	sys    *viper.SystemSnapshot
	tester *core.TesterSnapshot
	col    *coverage.CollectorSnapshot
	ring   *trace.RingSnapshot
	fails  int
	ops    uint64
}

// BisectResult reports a completed replay bisection.
type BisectResult struct {
	// FirstFailingTick is the bisected root tick: the first tick at
	// which the run's failure predicate holds — the failure's
	// detection tick for value/atomicity bugs, the tick forward
	// progress ceased for deadlocks (which the deadlock report itself
	// trails by up to a heartbeat period).
	FirstFailingTick uint64 `json:"firstFailingTick"`
	// ReportedTick is the artifact's failure tick, for comparison.
	ReportedTick uint64 `json:"reportedTick"`
	// Deadlock selects which predicate was bisected: failure count for
	// value bugs, completed-op progress for deadlocks.
	Deadlock bool `json:"deadlock"`
	// Checkpoints and CheckpointEvery describe the pass-1 cadence.
	Checkpoints     int    `json:"checkpoints"`
	CheckpointEvery uint64 `json:"checkpointEvery"`
	// CoarseTick is the restored checkpoint's tick; FineSteps counts
	// the single-tick probes from it to FirstFailingTick.
	CoarseTick uint64 `json:"coarseTick"`
	FineSteps  int    `json:"fineSteps"`

	// Replayed is the artifact re-captured by the checkpointed replay
	// pass, for reproduction checking against the original.
	Replayed *Artifact `json:"-"`
}

// bisectRun is a checkpointable GPU replay context.
type bisectRun struct {
	b      *GPUBuild
	ring   *trace.Ring
	tester *core.Tester
}

func newBisectRun(a *Artifact) (*bisectRun, error) {
	if a.Kind != ArtifactGPU {
		return nil, fmt.Errorf("bisect: %s artifacts are not supported (checkpointed replay is GPU-only)", a.Kind)
	}
	if len(a.Schedule) > 0 {
		// A scheduled artifact replays through a ScriptChooser whose
		// consumption position is itself execution state; the bisect
		// checkpoints do not capture it, so restoring a mid-run cut
		// would desynchronize the script. Bisect the underlying config
		// under default order instead, or extend the cut first.
		return nil, fmt.Errorf("bisect: artifacts with a pinned schedule are not supported")
	}
	depth := a.TraceCapacity
	if depth <= 0 {
		depth = DefaultTraceCapacity
	}
	r := &bisectRun{b: BuildGPU(a.GPU.SysCfg)}
	r.b.Sys.EnableCheckpointing()
	r.ring = EnableTrace(r.b.K, depth)
	r.tester = core.New(r.b.K, r.b.Sys, a.GPU.TestCfg)
	if err := r.tester.CanCheckpoint(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *bisectRun) checkpoint() *gpuCheckpoint {
	return &gpuCheckpoint{
		tick:   uint64(r.b.K.Now()),
		kernel: r.b.K.Snapshot(),
		sys:    r.b.Sys.Snapshot(),
		tester: r.tester.Snapshot(),
		col:    r.b.Col.Snapshot(),
		ring:   r.ring.Snapshot(),
		fails:  r.tester.FailureCount(),
		ops:    r.tester.OpsCompleted(),
	}
}

func (r *bisectRun) restore(cp *gpuCheckpoint) {
	r.b.K.Restore(cp.kernel)
	r.b.Sys.Restore(cp.sys)
	r.tester.Restore(cp.tester)
	r.b.Col.Restore(cp.col)
	r.ring.Restore(cp.ring)
}

// BisectPass holds the product of the checkpointed replay pass: the
// recorded checkpoints, the predicate inputs, and the verified
// re-captured artifact. Probe (the coarse + fine search) can be run
// from it any number of times without re-paying the replay.
type BisectPass struct {
	r        *bisectRun
	reported ArtifactFailure
	every    sim.Tick
	cps      []*gpuCheckpoint
	deadlock bool
	finalOps uint64
	replayed *Artifact
}

// BisectArtifact finds the artifact's first failing tick by
// checkpointed replay (see the file comment for the three phases).
// every is the checkpoint cadence in ticks; <= 0 picks an adaptive
// cadence aiming for DefaultBisectCheckpoints checkpoints across the
// run (derived from the artifact's reported failure tick). The
// checkpointed replay must itself reproduce the artifact's failure;
// a divergence is an error.
func BisectArtifact(a *Artifact, every sim.Tick) (*BisectResult, error) {
	p, err := NewBisectPass(a, every)
	if err != nil {
		return nil, err
	}
	return p.Probe()
}

// NewBisectPass runs the checkpointed replay pass (phase 1) and
// verifies the artifact reproduced under it.
func NewBisectPass(a *Artifact, every sim.Tick) (*BisectPass, error) {
	if len(a.Failures) == 0 {
		return nil, fmt.Errorf("bisect: artifact has no failure")
	}
	reported := a.FirstFailure()
	if every <= 0 {
		every = sim.Tick(reported.Tick / DefaultBisectCheckpoints)
		if every <= 0 {
			every = 1
		}
	}

	r, err := newBisectRun(a)
	if err != nil {
		return nil, err
	}

	// Pass 1: checkpointed replay. The run executes in cadence-sized
	// slices with a full snapshot after each, so any later phase can
	// rewind to within `every` ticks of any point. Checkpointing stops
	// once the reported failure tick is behind us — the predicate is
	// monotone and the artifact pins where it has flipped by, so
	// snapshots past it would never be restored (and each one deep-
	// copies the whole run context, which only grows with the run) —
	// and the rest of the run executes in one uncheckpointed sweep.
	// The slice target advances monotonically rather than chasing
	// Now()+every: Kernel.Run leaves Now untouched when no event falls
	// inside the slice, so a Now-relative target would re-run the same
	// empty slice forever across any event gap wider than the cadence.
	r.tester.Start()
	cps := []*gpuCheckpoint{r.checkpoint()}
	for next := r.b.K.Now() + every; !r.b.K.Stopped() && r.b.K.Pending() > 0 && uint64(r.b.K.Now()) < reported.Tick; next += every {
		if uint64(r.b.K.Run(next)) > cps[len(cps)-1].tick {
			cps = append(cps, r.checkpoint())
		}
	}
	r.b.K.RunUntilIdle()
	r.tester.Finish()
	rep := r.tester.Report()
	replayed := NewGPUArtifact(a.GPU.SysCfg, a.GPU.TestCfg, r.tester, rep, r.ring)
	if err := CheckReproduced(a, replayed); err != nil {
		return nil, fmt.Errorf("bisect: checkpointed replay did not reproduce the artifact: %w", err)
	}

	return &BisectPass{
		r:        r,
		reported: reported,
		every:    every,
		cps:      cps,
		deadlock: reported.Kind == core.FailDeadlock.String(),
		finalOps: r.tester.OpsCompleted(),
		replayed: replayed,
	}, nil
}

// Probe runs the coarse and fine phases (2 and 3) over the recorded
// checkpoints: this is the cheap, repeatable part of a bisection — it
// restores one checkpoint and single-steps at most a cadence's worth
// of ticks, never re-simulating the prefix. The CI floor pins its
// cost at ≤ 0.5× a full replay.
func (p *BisectPass) Probe() (*BisectResult, error) {
	r, cps := p.r, p.cps

	// The bisection predicate must be monotone in tick. Failure count
	// is (failures only accumulate); for deadlocks the detection
	// heartbeat fires long after the root event, so the predicate is
	// instead "completed-op progress has reached its final stuck
	// value" — completed ops are monotone too, and the flip tick is
	// where forward progress actually ceased.
	pred := func(fails int, ops uint64) bool {
		if p.deadlock {
			return ops >= p.finalOps
		}
		return fails > 0
	}

	// Coarse phase: binary-search the checkpoint counters for the
	// first checkpoint where the predicate holds. Pure array work.
	hi := sort.Search(len(cps), func(i int) bool { return pred(cps[i].fails, cps[i].ops) })
	if hi == len(cps) {
		return nil, fmt.Errorf("bisect: predicate never flipped across %d checkpoints (internal inconsistency)", len(cps))
	}

	res := &BisectResult{
		ReportedTick:    p.reported.Tick,
		Deadlock:        p.deadlock,
		Checkpoints:     len(cps),
		CheckpointEvery: uint64(p.every),
		Replayed:        p.replayed,
	}
	if hi == 0 {
		// Failing from the very first checkpoint (tick 0): nothing to
		// restore or step.
		res.FirstFailingTick = cps[0].tick
		res.CoarseTick = cps[0].tick
		return res, nil
	}

	// Fine phase: restore the one checkpoint below the flip and
	// single-step to the exact tick.
	// The probe target advances monotonically for the same reason as
	// the pass-1 slice target: an empty tick leaves Now in place, and
	// probing Now()+1 again would never cross the gap.
	lo := cps[hi-1]
	r.restore(lo)
	res.CoarseTick = lo.tick
	for next := r.b.K.Now() + 1; !pred(r.tester.FailureCount(), r.tester.OpsCompleted()); next++ {
		if r.b.K.Stopped() || r.b.K.Pending() == 0 {
			return nil, fmt.Errorf("bisect: fine scan ran dry at tick %d before the predicate flipped", r.b.K.Now())
		}
		r.b.K.Run(next)
		res.FineSteps++
	}
	res.FirstFailingTick = uint64(r.b.K.Now())
	return res, nil
}

// Minimize derives the minimized artifact: the original with its trace
// cut to the shortest reproducing suffix — the entries from the
// bisected first failing tick on. fromName records the source artifact
// (its file name) in the minimized artifact. The result still
// reproduces under Replay/CheckReproduced, which compare a minimized
// trace against the suffix of the re-recorded one.
func Minimize(a *Artifact, fromName string, firstFailingTick uint64) *Artifact {
	min := *a
	min.MinimizedFrom = fromName
	min.FirstFailingTick = firstFailingTick
	min.Trace = nil
	for _, e := range a.Trace {
		if e.Tick >= firstFailingTick {
			min.Trace = append(min.Trace, e)
		}
	}
	return &min
}

// MinimizedPath is the conventional on-disk name for the minimized
// companion of the artifact at path: "<base>.min.json" alongside it.
func MinimizedPath(path string) string {
	return strings.TrimSuffix(path, ".json") + ".min.json"
}

// WriteMinimized writes the minimized artifact alongside its original
// (MinimizedPath) and returns the path written.
func WriteMinimized(origPath string, min *Artifact) (string, error) {
	out := MinimizedPath(origPath)
	dir, base := filepath.Split(out)
	if dir == "" {
		dir = "."
	}
	path, err := writeArtifactAs(min, dir, base)
	if err != nil {
		return "", err
	}
	return path, nil
}
