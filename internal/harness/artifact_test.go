package harness

import (
	"strings"
	"testing"

	"drftest/internal/core"
	"drftest/internal/cputester"
	"drftest/internal/viper"
)

// failingGPURun hunts a small bug-injected configuration (the
// cmd/bughunt shape) for a seed that detects the bug, and returns the
// captured artifact of that failing run.
func failingGPURun(t *testing.T) *Artifact {
	t.Helper()
	sysCfg := viper.SmallCacheConfig()
	sysCfg.Bugs = viper.BugSet{LostWriteRace: true}
	for seed := uint64(1); seed <= 16; seed++ {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.NumWavefronts = 8
		cfg.EpisodesPerThread = 8
		cfg.ActionsPerEpisode = 30
		cfg.NumSyncVars = 4
		cfg.NumDataVars = 48
		cfg.StoreFraction = 0.6

		b := BuildGPU(sysCfg)
		ring := EnableTrace(b.K, 256)
		tester := core.New(b.K, b.Sys, cfg)
		rep := tester.Run()
		if rep.Passed() {
			continue
		}
		return NewGPUArtifact(sysCfg, cfg, tester, rep, ring)
	}
	t.Fatal("injected lostwrite bug not detected within 16 seeds")
	return nil
}

// TestGPUArtifactReplayReproduces: a forced checker failure produces
// an artifact, and replaying the artifact reproduces the identical
// failure — same kind, tick, address, values, op counts, RNG state and
// trace tail.
func TestGPUArtifactReplayReproduces(t *testing.T) {
	art := failingGPURun(t)
	if len(art.Trace) == 0 {
		t.Fatal("failing traced run recorded no trace entries")
	}
	// The failure itself must be visible in the trace tail.
	found := false
	for _, e := range art.Trace {
		if strings.HasPrefix(e.Label, "fail ") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no failure entry in trace tail: %+v", art.Trace[len(art.Trace)-1])
	}

	path, err := art.Write(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Replay(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckReproduced(loaded, replayed); err != nil {
		t.Fatalf("replay did not reproduce the failure: %v", err)
	}
}

// TestGPUArtifactDetectsDivergence: replaying with a perturbed seed
// must NOT be accepted as a reproduction.
func TestGPUArtifactDetectsDivergence(t *testing.T) {
	art := failingGPURun(t)
	mutated := *art
	setup := *art.GPU
	setup.TestCfg.Seed++
	mutated.GPU = &setup
	replayed, err := Replay(&mutated)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckReproduced(art, replayed); err == nil {
		t.Fatal("perturbed replay reported as bit-identical reproduction")
	}
}

// TestCPUArtifactReplayReproduces uses a deliberately tiny deadlock
// threshold to force a deterministic forward-progress failure on the
// CPU tester, then round-trips it through an artifact and replay.
func TestCPUArtifactReplayReproduces(t *testing.T) {
	setup := CPUSetup{NumCPUs: 2, CacheCfg: DefaultCPUCache}
	setup.TestCfg = cputester.DefaultConfig()
	setup.TestCfg.Seed = 7
	setup.TestCfg.OpsPerCPU = 200
	setup.TestCfg.DeadlockThreshold = 5 // DRAM takes ~100 ticks: guaranteed "deadlock"
	setup.TestCfg.CheckPeriod = 10

	b := BuildCPU(setup.NumCPUs, setup.CacheCfg)
	ring := EnableTrace(b.K, 128)
	tester := cputester.New(b.K, b.Caches, setup.TestCfg)
	rep := tester.Run()
	if rep.Passed() {
		t.Fatal("tiny deadlock threshold did not force a failure")
	}
	art := NewCPUArtifact(setup, tester, rep, b.K.Executed(), ring)
	if art.FirstFailure().Kind != "deadlock" {
		t.Fatalf("forced failure kind = %s, want deadlock", art.FirstFailure().Kind)
	}

	path, err := art.Write(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Replay(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckReproduced(loaded, replayed); err != nil {
		t.Fatalf("CPU replay did not reproduce the failure: %v", err)
	}
}

// TestArtifactValidation: malformed artifacts are rejected on load.
func TestArtifactValidation(t *testing.T) {
	art := failingGPURun(t)
	dir := t.TempDir()

	art.Schema = ArtifactSchema + 1
	path, err := art.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadArtifact(path); err == nil {
		t.Fatal("wrong-schema artifact loaded without error")
	}

	art.Schema = ArtifactSchema
	art.Kind = "tpu"
	path, err = art.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadArtifact(path); err == nil {
		t.Fatal("unknown-kind artifact loaded without error")
	}
}

// TestGoldenArtifactReplay: testdata holds a replay artifact recorded
// by the original container/heap event kernel (PR 1). It must keep
// reproducing bit-identically — same failure, op counts, RNG state and
// trace tail — on the current scheduler, proving the rewrite preserved
// the kernel's deterministic ordering contract across releases, not
// just within one build.
func TestGoldenArtifactReplay(t *testing.T) {
	loaded, err := LoadArtifact("testdata/replay-gpu-seed5-tick1263.json")
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Replay(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckReproduced(loaded, replayed); err != nil {
		t.Fatalf("PR 1 golden artifact no longer reproduces: %v", err)
	}
}
