package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"drftest/internal/apps"
	"drftest/internal/coverage"
	"drftest/internal/viper"
)

// RenderTableI writes the GPU L1 event list (paper Table I).
func RenderTableI(w io.Writer) {
	fmt.Fprintln(w, "TABLE I. GPU L1 CACHE EVENTS")
	for _, ev := range viper.TCPEvents {
		fmt.Fprintf(w, "  %-14s %s\n", ev, viper.TCPEventDescriptions[ev])
	}
}

// RenderTableII writes the GPU L2 event list (paper Table II).
func RenderTableII(w io.Writer) {
	fmt.Fprintln(w, "TABLE II. GPU L2 CACHE EVENTS")
	for _, ev := range viper.TCCEvents {
		fmt.Fprintf(w, "  %-14s %s\n", ev, viper.TCCEventDescriptions[ev])
	}
}

// RenderTableIII writes the tester configuration sweep (paper Table III).
func RenderTableIII(w io.Writer, gpu []GPUTestConfig, cpu []CPUTestConfig) {
	fmt.Fprintln(w, "TABLE III. TESTER CONFIGURATIONS")
	fmt.Fprintln(w, "GPU tester (protocol GPU_VIPER, 8 CUs):")
	fmt.Fprintf(w, "  %-8s %-7s %-9s %-9s %-9s %-10s\n", "run", "caches", "acts/eps", "eps/WF", "syncVars", "dataVars")
	for _, c := range gpu {
		fmt.Fprintf(w, "  %-8s %-7s %-9d %-9d %-9d %-10d\n",
			c.Name, c.Caches, c.TestCfg.ActionsPerEpisode, c.TestCfg.EpisodesPerThread,
			c.TestCfg.NumSyncVars, c.TestCfg.NumDataVars)
	}
	fmt.Fprintln(w, "CPU tester (protocol MOESI corepair):")
	fmt.Fprintf(w, "  %-8s %-5s %-7s %-10s\n", "run", "cpus", "caches", "ops/cpu")
	for _, c := range cpu {
		fmt.Fprintf(w, "  %-8s %-5d %-7s %-10d\n", c.Name, c.NumCPUs, c.Caches, c.TestCfg.OpsPerCPU)
	}
}

// RenderTableIV writes the application descriptions (paper Table IV).
func RenderTableIV(w io.Writer) {
	fmt.Fprintln(w, "TABLE IV. APPLICATIONS (synthetic stand-ins; see DESIGN.md)")
	fmt.Fprintf(w, "  %-16s %-10s %s\n", "name", "suite", "description")
	for _, p := range apps.Profiles {
		fmt.Fprintf(w, "  %-16s %-10s %s\n", p.Name, p.Suite, p.Desc)
	}
}

// RenderFig4 writes both VIPER transition tables (paper Fig. 4).
func RenderFig4(w io.Writer) {
	fmt.Fprintln(w, "Fig. 4: state transitions in GPU L1 and L2 caches")
	viper.NewTCPSpec().Render(w)
	fmt.Fprintln(w)
	viper.NewTCCSpec().Render(w)
}

// RenderFig5 runs the tester under small and large caches and writes
// the two transition hit-frequency heat maps (paper Fig. 5).
func RenderFig5(w io.Writer, seed uint64, scale float64) {
	cfgs := GPUTesterConfigs(seed, scale)
	// Config 0 is small caches, config 8 is large (same lengths).
	small := RunGPUTest(cfgs[0])
	large := RunGPUTest(cfgs[8])
	impsb := TCCImpossibleGPUOnly()

	fmt.Fprintln(w, "Fig. 5(a): small caches (256B L1, 1KB L2)")
	small.L1.RenderHeatmap(w, nil)
	small.L2.RenderHeatmap(w, impsb)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Fig. 5(b): large caches (256KB L1, 1MB L2)")
	large.L1.RenderHeatmap(w, nil)
	large.L2.RenderHeatmap(w, impsb)

	fmt.Fprintln(w)
	fmt.Fprintln(w, "observations (paper §IV.A):")
	fmt.Fprintf(w, "  [V, Load] L1 hit frequency:  small=%d  large=%d (hits dominate with large caches)\n",
		small.L1.Hits[viper.TCPStateV][viper.TCPLoad], large.L1.Hits[viper.TCPStateV][viper.TCPLoad])
	fmt.Fprintf(w, "  [V, Repl] L1 replacements:   small=%d  large=%d (replacements dominate with small caches)\n",
		small.L1.Hits[viper.TCPStateV][viper.TCPRepl], large.L1.Hits[viper.TCPStateV][viper.TCPRepl])
}

// RenderFig6 writes the application data-locality breakdown (paper
// Fig. 6) from a completed app suite run.
func RenderFig6(w io.Writer, res *AppSuiteResult) {
	fmt.Fprintln(w, "Fig. 6: data locality in selected applications (fraction of line uses)")
	fmt.Fprintf(w, "  %-16s %10s %10s %10s %10s\n", "app", "streaming", "intraWF", "mixWF", "interWF")
	for _, r := range res.Runs {
		l := r.Res.Locality
		fmt.Fprintf(w, "  %-16s %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n",
			r.Res.App,
			100*l[apps.ClassStreaming], 100*l[apps.ClassIntraWF],
			100*l[apps.ClassMixWF], 100*l[apps.ClassInterWF])
	}
}

// RenderFig7 writes the transition-classification grids comparing the
// tester union against the application union (paper Fig. 7).
func RenderFig7(w io.Writer, sweep *GPUSweepResult, appsRes *AppSuiteResult) {
	impsb := TCCImpossibleGPUOnly()
	fmt.Fprintln(w, "Fig. 7(a): GPU tester")
	sweep.UnionL1.RenderClassGrid(w, nil)
	sweep.UnionL2.RenderClassGrid(w, impsb)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Fig. 7(b): all applications")
	appsRes.UnionL1.RenderClassGrid(w, nil)
	appsRes.UnionL2.RenderClassGrid(w, TCCImpossibleHetero())
}

// RenderFig8 writes the per-run tester coverage and runtime table plus
// the union row (paper Fig. 8).
func RenderFig8(w io.Writer, sweep *GPUSweepResult) {
	fmt.Fprintln(w, "Fig. 8: GPU tester transition coverage and testing time")
	fmt.Fprintf(w, "  %-9s %-7s %8s %8s %12s %12s\n", "run", "caches", "L1 cov", "L2 cov", "sim events", "wall")
	runs := append([]*GPURunResult(nil), sweep.Runs...)
	sort.SliceStable(runs, func(i, j int) bool { return runs[i].Report.EventsExecuted < runs[j].Report.EventsExecuted })
	for _, r := range runs {
		fmt.Fprintf(w, "  %-9s %-7s %7.1f%% %7.1f%% %12d %12s\n",
			r.Name, r.Caches, 100*r.L1Sum.Coverage(), 100*r.L2Sum.Coverage(),
			r.Report.EventsExecuted, r.Report.WallTime.Round(10e3))
	}
	fmt.Fprintf(w, "  %-9s %-7s %7.1f%% %7.1f%% %12d %12s\n", "(UNION)", "",
		100*sweep.UnionL1Sum.Coverage(), 100*sweep.UnionL2Sum.Coverage(),
		sweep.TotalEvents, sweep.TotalWall.Round(10e3))
}

// RenderFig9 writes the per-application coverage and runtime table
// plus the union row (paper Fig. 9).
func RenderFig9(w io.Writer, res *AppSuiteResult) {
	fmt.Fprintln(w, "Fig. 9: application transition coverage and testing time")
	fmt.Fprintf(w, "  %-16s %8s %8s %12s %12s\n", "app", "L1 cov", "L2 cov", "sim events", "wall")
	runs := append([]*AppRunResult(nil), res.Runs...)
	sort.SliceStable(runs, func(i, j int) bool { return runs[i].Res.Events < runs[j].Res.Events })
	for _, r := range runs {
		fmt.Fprintf(w, "  %-16s %7.1f%% %7.1f%% %12d %12s\n",
			r.Res.App, 100*r.L1Sum.Coverage(), 100*r.L2Sum.Coverage(),
			r.Res.Events, r.Res.WallTime.Round(10e3))
	}
	fmt.Fprintf(w, "  %-16s %7.1f%% %7.1f%% %12d %12s\n", "(UNION)",
		100*res.UnionL1Sum.Coverage(), 100*res.UnionL2Sum.Coverage(),
		res.TotalEvents, res.TotalWall.Round(10e3))
}

// Fig10Result aggregates the three directory views of the paper's
// Fig. 10.
type Fig10Result struct {
	Apps        *coverage.Matrix
	CPUTester   *coverage.Matrix
	GPUTester   *coverage.Matrix
	TesterUnion *coverage.Matrix
}

// RenderFig10 writes the directory coverage comparison (paper Fig. 10).
func RenderFig10(w io.Writer, r *Fig10Result) {
	appsSum := r.Apps.Summarize(nil)
	cpuSum := r.CPUTester.Summarize(nil)
	gpuSum := r.GPUTester.Summarize(nil)
	unionSum := r.TesterUnion.Summarize(nil)

	fmt.Fprintln(w, "Fig. 10: system directory transitions covered by test type")
	fmt.Fprintln(w, "(a) applications:")
	r.Apps.RenderClassGrid(w, nil)
	fmt.Fprintln(w, "(b) CPU tester:")
	r.CPUTester.RenderClassGrid(w, nil)
	fmt.Fprintln(w, "(c) GPU + CPU testers (union):")
	r.TesterUnion.RenderClassGrid(w, nil)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  directory coverage: apps %.1f%%  cpu-tester %.1f%%  gpu-tester %.1f%%  testers-union %.1f%%\n",
		100*appsSum.Coverage(), 100*cpuSum.Coverage(), 100*gpuSum.Coverage(), 100*unionSum.Coverage())

	dmaOnly := 0
	for st := range r.Apps.Hits {
		for ev := range r.Apps.Hits[st] {
			if r.Apps.Hits[st][ev] > 0 && r.TesterUnion.Hits[st][ev] == 0 {
				dmaOnly++
			}
		}
	}
	fmt.Fprintf(w, "  transitions only applications activate (DMA-related): %d\n", dmaOnly)
}

// SpeedComparison writes the tester-vs-apps cost summary backing the
// paper's ">50x faster" claim. The paper's metric is cost *to reach
// similar or higher coverage*: the whole application suite's cost is
// compared against the cheapest prefix of tester runs whose coverage
// union already matches the suite's.
func SpeedComparison(w io.Writer, sweep *GPUSweepResult, appsRes *AppSuiteResult) {
	appL1 := appsRes.UnionL1.Summarize(nil)
	appL2 := appsRes.UnionL2.Summarize(TCCImpossibleGPUOnly())

	// Accumulate tester runs (cheapest first) until the union covers at
	// least as many transitions as the app suite does.
	runs := append([]*GPURunResult(nil), sweep.Runs...)
	sort.SliceStable(runs, func(i, j int) bool { return runs[i].Report.EventsExecuted < runs[j].Report.EventsExecuted })
	prefixL1 := coverage.NewMatrix(viper.NewTCPSpec())
	prefixL2 := coverage.NewMatrix(viper.NewTCCSpec())
	var prefixEvents uint64
	var prefixWall time.Duration
	matched := 0
	for _, r := range runs {
		prefixL1.Merge(r.L1)
		prefixL2.Merge(r.L2)
		prefixEvents += r.Report.EventsExecuted
		prefixWall += r.Report.WallTime
		matched++
		if prefixL1.Summarize(nil).Active >= appL1.Active &&
			prefixL2.Summarize(TCCImpossibleGPUOnly()).Active >= appL2.Active {
			break
		}
	}

	fmt.Fprintln(w, "Testing cost: GPU tester vs applications (to similar or higher coverage)")
	fmt.Fprintf(w, "  apps (all %d)     : %12d sim events  %12s wall  L1 %.1f%%  L2 %.1f%%\n",
		len(appsRes.Runs), appsRes.TotalEvents, appsRes.TotalWall.Round(10e3),
		100*appL1.Coverage(), 100*appL2.Coverage())
	fmt.Fprintf(w, "  tester (%d runs)  : %12d sim events  %12s wall  L1 %.1f%%  L2 %.1f%%\n",
		matched, prefixEvents, prefixWall.Round(10e3),
		100*prefixL1.Summarize(nil).Coverage(), 100*prefixL2.Summarize(TCCImpossibleGPUOnly()).Coverage())
	if prefixEvents > 0 {
		fmt.Fprintf(w, "  speedup to similar coverage (sim events): %.1fx\n",
			float64(appsRes.TotalEvents)/float64(prefixEvents))
	}
	if prefixWall > 0 {
		fmt.Fprintf(w, "  speedup to similar coverage (wall clock): %.1fx\n",
			float64(appsRes.TotalWall)/float64(prefixWall))
	}
	fmt.Fprintf(w, "  full-sweep tester cost (all %d runs, union L1 %.1f%% / L2 %.1f%%): %d events, %s\n",
		len(sweep.Runs), 100*sweep.UnionL1Sum.Coverage(), 100*sweep.UnionL2Sum.Coverage(),
		sweep.TotalEvents, sweep.TotalWall.Round(10e3))
}

// Banner writes a section divider.
func Banner(w io.Writer, title string) {
	fmt.Fprintln(w, strings.Repeat("=", 72))
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, strings.Repeat("=", 72))
}
