package harness

// CampaignReportJSON renders a campaign result as the machine-readable
// report map `gputester -campaign -json` emits. The control-plane
// daemon's result endpoint serves the same shape, so a campaign
// submitted over the API reports byte-for-byte like one run in
// process (wall-clock fields aside).
func CampaignReportJSON(res *CampaignResult, baseSeed uint64) map[string]any {
	failures := make([]map[string]any, 0, len(res.Failures))
	for _, sf := range res.Failures {
		for _, f := range sf.Failures {
			fj := map[string]any{
				"seed":    sf.Seed,
				"kind":    f.Kind.String(),
				"tick":    f.Tick,
				"addr":    uint64(f.Addr),
				"message": f.Message,
			}
			if sf.ArtifactPath != "" {
				fj["artifact"] = sf.ArtifactPath
			}
			if sf.ArtifactErr != "" {
				fj["artifactError"] = sf.ArtifactErr
			}
			failures = append(failures, fj)
		}
	}
	return map[string]any{
		"passed":            len(res.Failures) == 0,
		"mode":              res.Mode.String(),
		"baseSeed":          baseSeed,
		"seedsRun":          res.SeedsRun,
		"batches":           res.Batches,
		"saturated":         res.Saturated,
		"seedsToSaturation": res.SeedsToSaturation,
		"cellsAtSaturation": res.CellsAtSaturation,
		"newCellsByBatch":   res.NewCellsByBatch,
		"cornerByBatch":     res.CornerByBatch,
		"opsIssued":         res.TotalOps,
		"kernelEvents":      res.TotalEvents,
		"wallSeconds":       res.Wall.Seconds(),
		"seedsPerSec":       res.SeedsPerSec(),
		"l1":                res.UnionL1,
		"l2":                res.UnionL2,
		"failures":          failures,
	}
}
