package harness

import (
	"testing"

	"drftest/internal/core"
	"drftest/internal/sim"
	"drftest/internal/viper"
)

// This file is the end-to-end guard on the off-critical-path checker
// pipeline: moving StreamCheck folding into its own goroutine must be
// invisible in every observable — reports, artifacts, campaign
// outcomes — across checker modes, worker counts, and the fork/reset
// context strategies. Run with -race these tests also vet the
// pipeline's SPSC handoff under the real simulation workload.

// streamModeRun executes one fixed-seed run under cfg on a fresh
// system and returns its report.
func streamModeRun(t *testing.T, sysCfg viper.Config, cfg core.Config) *core.Report {
	t.Helper()
	b := BuildGPU(sysCfg)
	return core.New(b.K, b.Sys, cfg).Run()
}

// TestStreamCheckerModeByteIdentical pins the fixed-seed report across
// the three checker modes: StreamCheck off, folding inline on the
// simulation thread, and folding off-thread through the pipeline ring.
// The two checking modes must agree byte-for-byte (violations
// included), and neither may perturb the simulation relative to
// checking off.
func TestStreamCheckerModeByteIdentical(t *testing.T) {
	cases := []struct {
		name   string
		sysCfg func() viper.Config
	}{
		{"clean", viper.SmallCacheConfig},
		{"stale-acquire-bug", func() viper.Config {
			c := viper.SmallCacheConfig()
			c.Bugs.StaleAcquire = true
			return c
		}},
		{"lostwrite-bug", func() viper.Config {
			c := viper.SmallCacheConfig()
			c.Bugs.LostWriteRace = true
			return c
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := campaignTestCfg()
			base.Seed = 7

			off := base

			inline := base
			inline.StreamCheck, inline.StreamInline = true, true

			threaded := base
			threaded.StreamCheck = true // pipeline mode (auto)

			repOff := streamModeRun(t, tc.sysCfg(), off)
			repInline := streamModeRun(t, tc.sysCfg(), inline)
			repThreaded := streamModeRun(t, tc.sysCfg(), threaded)

			if got, want := reportJSON(t, repThreaded), reportJSON(t, repInline); got != want {
				t.Fatalf("off-thread checker report differs from inline\ninline:    %s\noff-thread: %s", want, got)
			}
			// Against StreamCheck off, compare everything but the
			// checker's own findings: online checking must not change
			// what the simulation did.
			noViol := *repInline
			noViol.StreamViolations = nil
			if got, want := reportJSON(t, &noViol), reportJSON(t, repOff); got != want {
				t.Fatalf("online checking perturbed the simulation\noff: %s\non:  %s", want, got)
			}
		})
	}
}

// TestStreamCheckCampaignForkAndWorkers pins campaign-level
// determinism with online checking enabled: the same swarm campaign
// on the reset path and the warm-fork fast path, at 1, 3 and 8
// workers, must produce identical seeds, failures and union coverage.
// Before the checker gained Snapshot/Restore and the pipeline, fork
// and StreamCheck could not be combined at all — this is the guard on
// that composition.
func TestStreamCheckCampaignForkAndWorkers(t *testing.T) {
	sysCfg := viper.SmallCacheConfig()
	sysCfg.Bugs.StaleAcquire = true // non-empty failure set to compare
	tc := campaignTestCfg()
	tc.StreamCheck = true
	base := CampaignConfig{
		SysCfg:    sysCfg,
		TestCfg:   tc,
		BaseSeed:  100,
		Workers:   3,
		BatchSize: 8,
		MaxSeeds:  32,
		Mode:      CampaignSwarm,
	}
	ref := RunGPUCampaign(base)
	if ref.SeedsRun == 0 {
		t.Fatal("campaign ran no seeds")
	}
	if len(ref.Failures) == 0 {
		t.Fatal("bug-injected campaign detected no failures")
	}
	for _, v := range []struct {
		fork    bool
		workers int
	}{
		{false, 1}, {false, 8},
		{true, 1}, {true, 3}, {true, 8},
	} {
		got := RunGPUCampaign(CampaignConfig{
			SysCfg:    base.SysCfg,
			TestCfg:   base.TestCfg,
			BaseSeed:  base.BaseSeed,
			Workers:   v.workers,
			BatchSize: base.BatchSize,
			MaxSeeds:  base.MaxSeeds,
			Mode:      base.Mode,
			Fork:      v.fork,
		})
		name := map[bool]string{false: "reset", true: "fork"}[v.fork]
		if got.SeedsRun != ref.SeedsRun {
			t.Fatalf("%s workers=%d: ran %d seeds, reference ran %d", name, v.workers, got.SeedsRun, ref.SeedsRun)
		}
		requireMatrixEqual(t, "GPU-L1 union", ref.UnionL1, got.UnionL1)
		requireMatrixEqual(t, "GPU-L2 union", ref.UnionL2, got.UnionL2)
		requireFailuresEqual(t, ref.Failures, got.Failures)
	}
}

// TestCheckpointRestoreWithStreamCheck is the guard on the lifted
// CanCheckpoint gate: a mid-run freeze/rewind with online checking
// armed must complete byte-identically both times — stream violations
// included — and match an uncheckpointed fresh run. This is the
// composition replay bisection needed and could not have before the
// checker's state became snapshottable.
func TestCheckpointRestoreWithStreamCheck(t *testing.T) {
	sysCfg := viper.SmallCacheConfig()
	sysCfg.Bugs = viper.BugSet{LostWriteRace: true}
	var cfg core.Config
	var fresh *core.Report
	found := false
	for seed := uint64(1); seed <= 16 && !found; seed++ {
		cfg = campaignTestCfg()
		cfg.Seed = seed
		cfg.KeepGoing = false
		cfg.StreamCheck = true
		b := BuildGPU(sysCfg)
		fresh = core.New(b.K, b.Sys, cfg).Run()
		found = !fresh.Passed()
	}
	if !found {
		t.Fatal("injected lostwrite bug not detected within 16 seeds")
	}

	b := BuildGPU(sysCfg)
	b.Sys.EnableCheckpointing()
	tester := core.New(b.K, b.Sys, cfg)
	if err := tester.CanCheckpoint(); err != nil {
		t.Fatalf("StreamCheck still blocks checkpointing: %v", err)
	}

	tester.Start()
	mid := sim.Tick(fresh.Failures[0].Tick / 2)
	b.K.Run(mid)
	kSnap := b.K.Snapshot()
	sysSnap := b.Sys.Snapshot()
	tSnap := tester.Snapshot()

	b.K.RunUntilIdle()
	tester.Finish()
	first := tester.Report()
	if got, want := reportJSON(t, first), reportJSON(t, fresh); got != want {
		t.Fatalf("checkpointed run diverged from uncheckpointed fresh run\nfresh:        %s\ncheckpointed: %s", want, got)
	}

	b.K.Restore(kSnap)
	b.Sys.Restore(sysSnap)
	tester.Restore(tSnap)
	b.K.RunUntilIdle()
	tester.Finish()
	second := tester.Report()
	if got, want := reportJSON(t, second), reportJSON(t, first); got != want {
		t.Fatalf("restored run diverged from its first completion\nfirst:    %s\nrestored: %s", want, got)
	}
}
