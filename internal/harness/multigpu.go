package harness

import (
	"drftest/internal/coverage"
	"drftest/internal/directory"
	"drftest/internal/mem"
	"drftest/internal/memctrl"
	"drftest/internal/sim"
	"drftest/internal/viper"
)

// MultiGPUBuild is a multi-GPU system: several VIPER GPUs sharing one
// directory and memory — §III.B's "multi-GPU system with a varying
// number of caches and diverse topologies".
type MultiGPUBuild struct {
	K     *sim.Kernel
	GPUs  []*viper.System
	Dir   *directory.Directory
	Store *mem.Store
	Col   *coverage.Collector
}

// BuildMultiGPU assembles numGPUs identical VIPER systems over a
// shared directory. GPU writes and atomics probe-invalidate the other
// GPUs' L2 copies, so the TCC's PrbInv transitions become reachable
// without any CPU in the system.
func BuildMultiGPU(gpuCfg viper.Config, numGPUs int) *MultiGPUBuild {
	k := sim.NewKernel()
	col := coverage.NewCollector(viper.NewTCPSpec(), viper.NewTCCSpec(), directory.NewSpec())
	store := mem.NewStore()
	ctrl := memctrl.New(k, gpuCfg.Mem, store, nil)
	dir := directory.New(k, col, nil, ctrl, gpuCfg.L1.LineSize)

	b := &MultiGPUBuild{K: k, Dir: dir, Store: store, Col: col}
	for g := 0; g < numGPUs; g++ {
		id := dir.AddGPU()
		gpu := viper.NewSystemWithBackend(k, gpuCfg, col, dir.GPUBackend(id))
		dir.BindGPU(id, gpu)
		b.GPUs = append(b.GPUs, gpu)
	}
	return b
}

// TCCWBImpossible returns the write-back L2 cells unreachable under a
// FIFO memory controller: an eviction's write-back always completes
// before any later refill of the same line is serviced, so its WBAck
// can only arrive with the line in I or IV (or A), never re-validated
// V/D.
func TCCWBImpossible() coverage.CellSet {
	s := coverage.CellSet{}
	s.Add(viper.TCCWBStateV, viper.TCCWBAck)
	s.Add(viper.TCCWBStateD, viper.TCCWBAck)
	return s
}

// TCCImpossibleMultiGPU returns the GPU L2 cells unreachable in a
// multi-GPU (CPU-less) system: none — inter-GPU invalidations and
// same-line transaction collisions at the directory reach every probe
// cell and the atomic NACK.
func TCCImpossibleMultiGPU() coverage.CellSet {
	return coverage.CellSet{}
}
