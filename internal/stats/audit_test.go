package stats

import (
	"testing"

	"drftest/internal/audit"
)

// TestSnapshotFieldAudit pins the field sets of the snapshotted
// structs so a new field cannot silently escape
// Snapshot/Restore/Reset/Merge (see package audit).
func TestSnapshotFieldAudit(t *testing.T) {
	audit.Fields(t, Histogram{}, map[string]string{
		"Name":    "config: not captured by Snapshot, untouched by Reset",
		"buckets": "data: Reset clears, Snapshot/Restore/Merge copy",
		"count":   "data: Reset clears, Snapshot/Restore/Merge copy",
		"sum":     "data: Reset clears, Snapshot/Restore/Merge copy",
		"min":     "data: Reset re-arms to max, Snapshot/Restore/Merge copy",
		"max":     "data: Reset clears, Snapshot/Restore/Merge copy",
	})
	audit.Fields(t, LatencySet{}, map[string]string{
		"Load":    "data: Reset/Snapshot/Restore/Merge fan out per histogram (via All)",
		"Store":   "data: via All",
		"Atomic":  "data: via All",
		"Acquire": "data: via All",
		"Release": "data: via All",
	})
}
