package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptyHistogram(t *testing.T) {
	h := NewHistogram("empty")
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Percentile(0.5) != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	if !strings.Contains(h.String(), "no samples") {
		t.Fatal("empty histogram string wrong")
	}
}

func TestBasicStats(t *testing.T) {
	h := NewHistogram("lat")
	for _, v := range []uint64{1, 2, 3, 4, 10} {
		h.Record(v)
	}
	if h.Count() != 5 || h.Sum() != 20 || h.Min() != 1 || h.Max() != 10 {
		t.Fatalf("stats wrong: %s", h)
	}
	if h.Mean() != 4 {
		t.Fatalf("mean %v", h.Mean())
	}
}

func TestPercentileBounds(t *testing.T) {
	err := quick.Check(func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram("q")
		var max uint64
		for _, v := range raw {
			h.Record(uint64(v))
			if uint64(v) > max {
				max = uint64(v)
			}
		}
		p50 := h.Percentile(0.5)
		p99 := h.Percentile(0.99)
		// Percentiles are bucket upper bounds: monotone and ≥ min,
		// and p100-ish never exceeds ~2x max (bucket granularity).
		return p50 <= p99 && p99 <= 2*max+1 && h.Percentile(1.0) >= h.Min()
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMerge(t *testing.T) {
	a, b := NewHistogram("a"), NewHistogram("b")
	a.Record(5)
	b.Record(100)
	b.Record(1)
	a.Merge(b)
	if a.Count() != 3 || a.Min() != 1 || a.Max() != 100 || a.Sum() != 106 {
		t.Fatalf("merge wrong: %s", a)
	}
}

func TestRender(t *testing.T) {
	h := NewHistogram("r")
	for i := uint64(1); i <= 100; i++ {
		h.Record(i)
	}
	var b strings.Builder
	h.Render(&b)
	out := b.String()
	if !strings.Contains(out, "#") || !strings.Contains(out, "n=100") {
		t.Fatalf("render output:\n%s", out)
	}
}

func TestLatencySet(t *testing.T) {
	s := NewLatencySet("cu0")
	s.Load.Record(10)
	s.Release.Record(500)
	agg := NewLatencySet("gpu")
	agg.Merge(s)
	if agg.Load.Count() != 1 || agg.Release.Count() != 1 {
		t.Fatal("latency set merge lost samples")
	}
	if len(agg.All()) != 5 {
		t.Fatal("All() wrong length")
	}
}
