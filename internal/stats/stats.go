// Package stats provides the lightweight performance instrumentation a
// cycle-level memory-system model needs: power-of-two-bucketed latency
// histograms with exact count/sum/min/max and approximate percentiles.
//
// The testers use these to characterize runs (and to show the latency
// cost of synchronization operations versus plain accesses); they are
// also the building block for performance-projection studies, the
// other half of what platforms like gem5 are for.
package stats

import (
	"fmt"
	"io"
	"math/bits"
	"strings"
)

// Histogram accumulates uint64 samples into log2 buckets: bucket i
// holds samples in [2^(i-1), 2^i) with bucket 0 holding zero.
type Histogram struct {
	Name    string
	buckets [65]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// NewHistogram creates an empty named histogram.
func NewHistogram(name string) *Histogram {
	return &Histogram{Name: name, min: ^uint64(0)}
}

func bucketOf(v uint64) int {
	return bits.Len64(v)
}

// Record adds one sample.
func (h *Histogram) Record(v uint64) {
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the total of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns the average sample (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample.
func (h *Histogram) Max() uint64 { return h.max }

// Percentile returns an upper bound on the p-quantile (0 < p ≤ 1) at
// bucket resolution: the upper edge of the bucket containing it.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(p * float64(h.count))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if seen >= target {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return h.max
}

// Reset discards all samples, as if freshly constructed.
func (h *Histogram) Reset() {
	clear(h.buckets[:])
	h.count, h.sum, h.max = 0, 0, 0
	h.min = ^uint64(0)
}

// Merge adds other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
	h.count += other.count
	h.sum += other.sum
	if other.count > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// String summarizes the histogram in one line.
func (h *Histogram) String() string {
	if h.count == 0 {
		return fmt.Sprintf("%s: no samples", h.Name)
	}
	return fmt.Sprintf("%s: n=%d mean=%.1f min=%d p50≤%d p99≤%d max=%d",
		h.Name, h.count, h.Mean(), h.Min(), h.Percentile(0.5), h.Percentile(0.99), h.max)
}

// Render writes an ASCII bar chart of the non-empty buckets.
func (h *Histogram) Render(w io.Writer) {
	fmt.Fprintln(w, h.String())
	if h.count == 0 {
		return
	}
	var peak uint64
	for _, n := range h.buckets {
		if n > peak {
			peak = n
		}
	}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		lo, hi := uint64(0), uint64(0)
		if i > 0 {
			lo = 1 << uint(i-1)
			hi = 1<<uint(i) - 1
		}
		bar := int(float64(n) / float64(peak) * 40)
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(w, "  [%8d, %8d] %8d %s\n", lo, hi, n, strings.Repeat("#", bar))
	}
}

// LatencySet groups the per-operation-class latency histograms a
// sequencer maintains.
type LatencySet struct {
	Load    *Histogram
	Store   *Histogram
	Atomic  *Histogram
	Acquire *Histogram
	Release *Histogram
}

// NewLatencySet creates the five histograms with prefixed names.
func NewLatencySet(prefix string) *LatencySet {
	return &LatencySet{
		Load:    NewHistogram(prefix + ".load"),
		Store:   NewHistogram(prefix + ".store"),
		Atomic:  NewHistogram(prefix + ".atomic"),
		Acquire: NewHistogram(prefix + ".acquire"),
		Release: NewHistogram(prefix + ".release"),
	}
}

// Merge accumulates other into s.
func (s *LatencySet) Merge(other *LatencySet) {
	s.Load.Merge(other.Load)
	s.Store.Merge(other.Store)
	s.Atomic.Merge(other.Atomic)
	s.Acquire.Merge(other.Acquire)
	s.Release.Merge(other.Release)
}

// Reset discards the samples of every histogram in the set.
func (s *LatencySet) Reset() {
	for _, h := range s.All() {
		h.Reset()
	}
}

// All returns the histograms in display order.
func (s *LatencySet) All() []*Histogram {
	return []*Histogram{s.Load, s.Store, s.Atomic, s.Acquire, s.Release}
}

// HistogramSnapshot is a deep copy of a histogram's samples (the name
// is configuration and is not captured).
type HistogramSnapshot struct {
	buckets [65]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// Snapshot captures the histogram's samples.
func (h *Histogram) Snapshot() *HistogramSnapshot {
	return &HistogramSnapshot{
		buckets: h.buckets,
		count:   h.count,
		sum:     h.sum,
		min:     h.min,
		max:     h.max,
	}
}

// Restore returns the histogram to the captured samples.
func (h *Histogram) Restore(s *HistogramSnapshot) {
	h.buckets = s.buckets
	h.count, h.sum, h.min, h.max = s.count, s.sum, s.min, s.max
}

// LatencySetSnapshot captures all five histograms of a LatencySet.
type LatencySetSnapshot struct {
	hists [5]*HistogramSnapshot
}

// Snapshot captures every histogram in the set.
func (s *LatencySet) Snapshot() *LatencySetSnapshot {
	var out LatencySetSnapshot
	for i, h := range s.All() {
		out.hists[i] = h.Snapshot()
	}
	return &out
}

// Restore returns every histogram in the set to the captured state.
func (s *LatencySet) Restore(snap *LatencySetSnapshot) {
	for i, h := range s.All() {
		h.Restore(snap.hists[i])
	}
}
