package checker

// This file gives the online Stream checker the same rewind/rearm
// surface the rest of the stack has: Reset (campaign reuse),
// Snapshot/Restore (checkpointed replay). The fold state is small by
// design — bounded by live episodes plus touched variables — so a cut
// is cheap relative to the system snapshots taken alongside it.
//
// Identity doctrine: nothing outside the Stream holds epState or
// varState pointers, so Restore is free to rebuild them. The one
// identity constraint is internal — a live episode's epState is
// reachable from both the eps map and the liveQ, and RetireEpisode
// communicates death to minLiveCreate through that shared object — so
// Restore materializes each saved episode exactly once and links it
// into both structures.

// epSave captures one epState. The first nLive entries of a
// snapshot's eps slice are the live queue in order (including dead
// heads not yet popped, which are no longer in the eps map); entries
// after that are unknown-episode records, which are only in the map.
type epSave struct {
	id        uint64
	createSeq uint64
	known     bool
	dead      bool
	ownWrites []ownWrite
	touched   []int
}

// varSave captures one data variable's A2/A3 fold.
type varSave struct {
	intervals []ival
	prev      ival
	hasPrev   bool
	writers   []writerRec
}

// atomicSave captures one sync variable's A1 fold.
type atomicSave struct {
	contig  int
	pending map[uint32]int
	npend   int
}

// StreamSnapshot is a Stream cut; obtain via Stream.Snapshot (or
// Pipeline.Snapshot, which quiesces the ring first), reinstate via
// Restore.
type StreamSnapshot struct {
	delta uint32

	eps   []epSave
	nLive int

	atomics map[int]atomicSave
	data    map[int]varSave

	a2unknown []Violation
	a2overlap []overlapViol
	a3        []Violation

	finished bool
	result   []Violation
}

// Reset rearms the stream for a fresh run, keeping its maps and the
// episode free list so a campaign's per-seed loop does not rebuild
// them. Dropped episode records are harvested into the free list.
func (s *Stream) Reset(atomicDelta uint32) {
	if atomicDelta == 0 {
		atomicDelta = 1
	}
	s.delta = atomicDelta
	s.harvest()
	clear(s.eps)
	s.liveQ, s.liveHead = s.liveQ[:0], 0
	clear(s.atomics)
	clear(s.data)
	s.a2unknown = s.a2unknown[:0]
	s.a2overlap = s.a2overlap[:0]
	s.a3 = s.a3[:0]
	s.finished, s.result = false, nil
}

// harvest moves every reachable epState onto the free list: the live
// queue tail (live episodes plus dead not-yet-popped heads) and the
// map's unknown-episode records. Live known episodes appear in both
// structures but are harvested once, from the queue.
func (s *Stream) harvest() {
	for _, es := range s.liveQ[s.liveHead:] {
		s.epFree = append(s.epFree, es)
	}
	for _, es := range s.eps {
		if !es.known {
			s.epFree = append(s.epFree, es)
		}
	}
}

func saveEp(es *epState) epSave {
	return epSave{
		id:        es.id,
		createSeq: es.createSeq,
		known:     es.known,
		dead:      es.dead,
		ownWrites: append([]ownWrite(nil), es.ownWrites...),
		touched:   append([]int(nil), es.touched...),
	}
}

// Snapshot deep-captures the fold state. The caller must hold the
// stream quiescent (no concurrent folding) — Pipeline.Snapshot
// arranges this by flushing the ring first.
func (s *Stream) Snapshot() *StreamSnapshot {
	snap := &StreamSnapshot{
		delta:     s.delta,
		atomics:   make(map[int]atomicSave, len(s.atomics)),
		data:      make(map[int]varSave, len(s.data)),
		a2unknown: append([]Violation(nil), s.a2unknown...),
		a2overlap: append([]overlapViol(nil), s.a2overlap...),
		a3:        append([]Violation(nil), s.a3...),
		finished:  s.finished,
		result:    append([]Violation(nil), s.result...),
	}
	live := s.liveQ[s.liveHead:]
	snap.nLive = len(live)
	snap.eps = make([]epSave, 0, len(live)+len(s.eps))
	for _, es := range live {
		snap.eps = append(snap.eps, saveEp(es))
	}
	for _, es := range s.eps {
		if !es.known {
			snap.eps = append(snap.eps, saveEp(es))
		}
	}
	for v, a := range s.atomics {
		as := atomicSave{contig: a.contig, npend: a.npend}
		if a.pending != nil {
			as.pending = make(map[uint32]int, len(a.pending))
			for k, n := range a.pending {
				as.pending[k] = n
			}
		}
		snap.atomics[v] = as
	}
	for v, vs := range s.data {
		snap.data[v] = varSave{
			intervals: append([]ival(nil), vs.intervals...),
			prev:      vs.prev,
			hasPrev:   vs.hasPrev,
			writers:   append([]writerRec(nil), vs.writers...),
		}
	}
	return snap
}

// Restore reinstates a cut captured by Snapshot. Current episode
// records are harvested for reuse; every saved episode is rebuilt
// once and linked into the eps map and/or the live queue exactly as
// the save recorded (dead queue heads stay out of the map, unknown
// records stay out of the queue).
func (s *Stream) Restore(snap *StreamSnapshot) {
	s.delta = snap.delta
	s.harvest()
	clear(s.eps)
	s.liveQ, s.liveHead = s.liveQ[:0], 0
	for i := range snap.eps {
		sv := &snap.eps[i]
		es := s.newEpState()
		es.id, es.createSeq = sv.id, sv.createSeq
		es.known, es.dead = sv.known, sv.dead
		es.ownWrites = append(es.ownWrites, sv.ownWrites...)
		es.touched = append(es.touched, sv.touched...)
		if i < snap.nLive {
			s.liveQ = append(s.liveQ, es)
		}
		if !es.dead {
			s.eps[es.id] = es
		}
	}
	clear(s.atomics)
	for v, as := range snap.atomics {
		a := &atomicState{contig: as.contig, npend: as.npend}
		if as.pending != nil {
			a.pending = make(map[uint32]int, len(as.pending))
			for k, n := range as.pending {
				a.pending[k] = n
			}
		}
		s.atomics[v] = a
	}
	clear(s.data)
	for v, vs := range snap.data {
		s.data[v] = &varState{
			intervals: append([]ival(nil), vs.intervals...),
			prev:      vs.prev,
			hasPrev:   vs.hasPrev,
			writers:   append([]writerRec(nil), vs.writers...),
		}
	}
	s.a2unknown = append(s.a2unknown[:0], snap.a2unknown...)
	s.a2overlap = append(s.a2overlap[:0], snap.a2overlap...)
	s.a3 = append(s.a3[:0], snap.a3...)
	s.finished = snap.finished
	s.result = append([]Violation(nil), snap.result...)
}
