package checker

import (
	"runtime"
	"sync/atomic"
)

// Pipeline moves the online Stream checker off the tester's critical
// path. The kernel thread publishes completed operations and episode
// boundary events into a fixed-capacity single-producer/single-consumer
// ring; a dedicated checker goroutine drains the ring and folds each
// event into the Stream. Because begin/observe/retire ordering is what
// the Stream's soundness argument rests on, all three event kinds share
// the one ring — publication order IS fold order, so the violations are
// identical, in content and order, to folding inline.
//
// On a single-CPU process (GOMAXPROCS=1) a second goroutine buys
// nothing and the ring handoff costs a scheduler round-trip per batch,
// so the pipeline falls back to folding inline on the caller. Inline
// mode can also be forced (Config.StreamInline) for determinism
// triage: the two modes must produce byte-identical reports, and the
// knob lets a harness pin either side of that comparison.
//
// The producer side is not safe for concurrent use — exactly one
// goroutine (the kernel loop) may call BeginEpisode/Observe/
// RetireEpisode/Flush/Finish/Reset/Snapshot/Restore.
type Pipeline struct {
	stream *Stream
	force  bool // caller forced inline mode
	inline bool

	// SPSC ring. tail is written only by the producer, head only by
	// the consumer; both are read across threads. Capacity is a power
	// of two so index math is a mask.
	ring []streamEvent
	mask uint64
	head atomic.Uint64
	tail atomic.Uint64

	// Consumer parking: the worker sets sleeping before re-checking
	// the ring and blocking on notify; the producer checks sleeping
	// after publishing and kicks the (capacity-1) channel. The
	// recheck-after-arm order makes the lost-wakeup race benign.
	sleeping atomic.Bool
	notify   chan struct{}
	stop     chan struct{}
	done     chan struct{}
	running  bool
}

// pipelineRingSize is the event ring capacity. Deep enough to absorb
// bursts (a wavefront's worth of completions per tick), small enough
// that backpressure engages before the checker falls a whole run
// behind. Must be a power of two.
const pipelineRingSize = 1 << 12

type evKind uint8

const (
	evOp evKind = iota
	evBegin
	evRetire
)

// streamEvent is one ring slot: an operation, an episode creation, or
// an episode retirement, tagged so the consumer folds it through the
// matching Stream entry point.
type streamEvent struct {
	op   Op
	id   uint64
	seq  uint64
	kind evKind
}

// NewPipeline builds a checker pipeline over a fresh Stream.
// forceInline pins inline folding; otherwise the mode is picked from
// GOMAXPROCS at construction. The worker goroutine starts lazily on
// the first event, so an idle pipeline costs nothing.
func NewPipeline(atomicDelta uint32, forceInline bool) *Pipeline {
	p := newPipeline(atomicDelta, forceInline || runtime.GOMAXPROCS(0) <= 1)
	p.force = forceInline
	return p
}

// newPipeline pins the mode directly — the seam tests use to exercise
// the threaded ring even on a single-CPU runner.
func newPipeline(atomicDelta uint32, inline bool) *Pipeline {
	p := &Pipeline{
		stream: NewStream(atomicDelta),
		inline: inline,
	}
	if !p.inline {
		p.ring = make([]streamEvent, pipelineRingSize)
		p.mask = pipelineRingSize - 1
		p.notify = make(chan struct{}, 1)
	}
	return p
}

// Inline reports whether events are folded on the caller (no worker).
func (p *Pipeline) Inline() bool { return p.inline }

// ForcedInline reports whether inline mode was requested at
// construction (as opposed to the GOMAXPROCS fallback).
func (p *Pipeline) ForcedInline() bool { return p.force }

// BeginEpisode publishes an episode creation. Calls must arrive in
// increasing createSeq order, like Stream.BeginEpisode.
func (p *Pipeline) BeginEpisode(id, createSeq uint64) {
	if p.inline {
		p.stream.BeginEpisode(id, createSeq)
		return
	}
	p.push(streamEvent{kind: evBegin, id: id, seq: createSeq})
}

// Observe publishes one completed operation in global completion
// order.
func (p *Pipeline) Observe(op Op) {
	if p.inline {
		p.stream.Observe(op)
		return
	}
	p.push(streamEvent{kind: evOp, op: op})
}

// RetireEpisode publishes an episode retirement, after all of the
// episode's operations.
func (p *Pipeline) RetireEpisode(id, retireSeq uint64) {
	if p.inline {
		p.stream.RetireEpisode(id, retireSeq)
		return
	}
	p.push(streamEvent{kind: evRetire, id: id, seq: retireSeq})
}

func (p *Pipeline) push(e streamEvent) {
	if !p.running {
		p.start()
	}
	t := p.tail.Load()
	for t-p.head.Load() >= uint64(len(p.ring)) {
		// Ring full: the checker is behind. Yield the producer — on a
		// loaded box this is the backpressure that keeps the checker's
		// lag bounded by the ring capacity.
		runtime.Gosched()
	}
	p.ring[t&p.mask] = e
	p.tail.Store(t + 1)
	if p.sleeping.Load() {
		select {
		case p.notify <- struct{}{}:
		default:
		}
	}
}

func (p *Pipeline) start() {
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	p.running = true
	go p.run()
}

// run is the consumer: drain the ring into the Stream, park when
// empty, exit when stopped AND drained. head is advanced only after
// the fold, so head==tail means every published event has been fully
// folded — the quiescence condition Flush and Finish wait on.
func (p *Pipeline) run() {
	defer close(p.done)
	for {
		h := p.head.Load()
		if h == p.tail.Load() {
			p.sleeping.Store(true)
			if h != p.tail.Load() {
				p.sleeping.Store(false)
				continue
			}
			select {
			case <-p.notify:
				p.sleeping.Store(false)
				continue
			case <-p.stop:
				p.sleeping.Store(false)
				if h == p.tail.Load() {
					return
				}
				continue
			}
		}
		e := p.ring[h&p.mask]
		switch e.kind {
		case evOp:
			p.stream.Observe(e.op)
		case evBegin:
			p.stream.BeginEpisode(e.id, e.seq)
		case evRetire:
			p.stream.RetireEpisode(e.id, e.seq)
		}
		p.head.Store(h + 1)
	}
}

// Flush blocks until every published event has been folded. After
// Flush (and before the next publish) the Stream is quiescent: the
// worker is parked and the producer may read or mutate checker state
// directly — the window Snapshot and Restore use.
func (p *Pipeline) Flush() {
	if p.inline {
		return
	}
	for p.head.Load() != p.tail.Load() {
		runtime.Gosched()
	}
}

// join drains the ring and retires the worker goroutine. The next
// publish restarts it.
func (p *Pipeline) join() {
	if !p.running {
		return
	}
	close(p.stop)
	<-p.done
	p.running = false
}

// Finish quiesces the pipeline and closes the stream, returning every
// violation in reference order. Idempotent, like Stream.Finish.
func (p *Pipeline) Finish() []Violation {
	p.join()
	return p.stream.Finish()
}

// Close retires the worker goroutine without finishing the stream.
// For owners discarding a pipeline mid-run.
func (p *Pipeline) Close() { p.join() }

// Reset rearms the pipeline for a fresh run: the worker is drained
// and retired, the ring rewound, and the stream reset in place — the
// ring and the stream's fold maps are retained, so a campaign's
// reset-per-seed loop does not rebuild them.
func (p *Pipeline) Reset(atomicDelta uint32) {
	p.join()
	p.head.Store(0)
	p.tail.Store(0)
	p.stream.Reset(atomicDelta)
}

// Snapshot quiesces the pipeline and captures the checker state. The
// ring itself is never part of a snapshot: Flush empties it first, so
// the Stream alone is the cut.
func (p *Pipeline) Snapshot() *StreamSnapshot {
	p.Flush()
	return p.stream.Snapshot()
}

// Restore quiesces the pipeline and reinstates a captured checker
// state. The parked worker observes the restored state only through
// events published afterwards, so no synchronization beyond Flush is
// needed.
func (p *Pipeline) Restore(s *StreamSnapshot) {
	p.Flush()
	p.stream.Restore(s)
}
