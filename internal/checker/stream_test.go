package checker

import (
	"fmt"
	"testing"

	"drftest/internal/rng"
)

// genTrace builds a tester-shaped random trace: threads run episodes
// sequentially, create/retire draw from one global counter, and every
// op is appended at its global completion point — the same ordering
// contract the tester's recorder provides. Knobs inject the bug
// classes the axioms exist to catch: corrupted load values, duplicate
// atomic old values, and claim-discipline breaking (concurrent
// writers), so the generated corpus exercises every checker path.
type genCfg struct {
	threads   int
	episodes  int // per thread
	opsPerEp  int
	dataVars  int
	syncVars  int
	corruptPM int // per-mille chance a load value is corrupted
	dupAtomPM int // per-mille chance an atomic old value duplicates
	// private gives each thread a disjoint variable set, enforcing the
	// tester's claim discipline so the run is genuinely DRF; without
	// it threads race on shared variables and both checkers must flag
	// the overlaps identically.
	private bool
	delta   uint32
}

func genTrace(seed uint64, cfg genCfg) *Trace {
	r := rng.New(seed, 0x5EED)
	tr := &Trace{AtomicDelta: cfg.delta}
	type liveEp struct {
		id      uint64
		opsLeft int
		seq     int
		writes  map[int]uint32
		sync    int
	}
	var (
		gseq    uint64
		nextID  uint64
		live    = make([]*liveEp, cfg.threads)
		done    = make([]int, cfg.threads)
		atomics = make([]uint32, cfg.syncVars)             // next old value per sync var
		retired = make([]uint32, cfg.threads*cfg.dataVars) // globally visible values
		metas   = map[uint64]*EpisodeMeta{}
	)
	for {
		th := int(r.Intn(cfg.threads))
		if live[th] == nil {
			if done[th] >= cfg.episodes {
				allDone := true
				for t := 0; t < cfg.threads; t++ {
					if done[t] < cfg.episodes || live[t] != nil {
						allDone = false
						break
					}
				}
				if allDone {
					break
				}
				continue
			}
			nextID++
			gseq++
			live[th] = &liveEp{id: nextID, opsLeft: cfg.opsPerEp,
				writes: map[int]uint32{}, sync: int(r.Intn(cfg.syncVars))}
			metas[nextID] = &EpisodeMeta{ID: nextID, Thread: th, CreateSeq: gseq}
			continue
		}
		ep := live[th]
		ep.seq++
		if ep.opsLeft == cfg.opsPerEp || ep.opsLeft == 1 {
			// bracket the episode with atomics on its sync var
			old := atomics[ep.sync]
			atomics[ep.sync] += cfg.delta
			if int(r.Intn(1000)) < cfg.dupAtomPM && old >= cfg.delta {
				old -= cfg.delta // duplicate a previous old value
			}
			tr.Ops = append(tr.Ops, Op{Kind: OpAtomic, Var: 1000 + ep.sync, Sync: true,
				Value: old, Thread: th, Episode: ep.id, Seq: ep.seq})
		} else {
			v := int(r.Intn(cfg.dataVars))
			if cfg.private {
				v += th * cfg.dataVars
			}
			if r.Bool(0.4) {
				val := uint32(r.Intn(1 << 16))
				ep.writes[v] = val
				tr.Ops = append(tr.Ops, Op{Kind: OpStore, Var: v,
					Value: val, Thread: th, Episode: ep.id, Seq: ep.seq})
			} else {
				val, own := ep.writes[v]
				if !own {
					val = retired[v]
				}
				if int(r.Intn(1000)) < cfg.corruptPM {
					val += 7
				}
				tr.Ops = append(tr.Ops, Op{Kind: OpLoad, Var: v,
					Value: val, Thread: th, Episode: ep.id, Seq: ep.seq})
			}
		}
		ep.opsLeft--
		if ep.opsLeft == 0 {
			gseq++
			metas[ep.id].RetireSeq = gseq
			for v, val := range ep.writes {
				retired[v] = val
			}
			live[th] = nil
			done[th]++
		}
	}
	ids := make([]uint64, 0, len(metas))
	for id := range metas {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, id := range ids {
		tr.Episodes = append(tr.Episodes, *metas[id])
	}
	return tr
}

func diffViolations(t *testing.T, name string, got, want []Violation) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: stream found %d violations, post-hoc %d\nstream: %v\npost-hoc: %v",
			name, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: violation %d differs\nstream:   %v\npost-hoc: %v", name, i, got[i], want[i])
		}
	}
}

// TestStreamMatchesPostHocHandTraces checks exact violation equality
// (content and order) on the hand-built fixtures, including every
// mutated variant the axiom tests use.
func TestStreamMatchesPostHocHandTraces(t *testing.T) {
	cases := map[string]func() *Trace{
		"good": goodTrace,
		"duplicate-atomic": func() *Trace {
			tr := goodTrace()
			tr.Ops[4].Value = 1
			return tr
		},
		"overlapping-writers": func() *Trace {
			tr := goodTrace()
			tr.Episodes[1].CreateSeq = 1
			tr.Ops[5] = Op{Kind: OpStore, Var: 5, Value: 9, Thread: 1, Episode: 2, Seq: 2}
			return tr
		},
		"stale-read": func() *Trace {
			tr := goodTrace()
			tr.Ops[5].Value = 0
			return tr
		},
		"own-write": func() *Trace {
			tr := goodTrace()
			tr.Ops[2].Value = 7
			return tr
		},
		"unknown-episode": func() *Trace {
			tr := goodTrace()
			tr.Ops[1].Episode = 99
			return tr
		},
		"never-retired": func() *Trace {
			tr := goodTrace()
			tr.Episodes[1].RetireSeq = 0
			return tr
		},
	}
	for name, build := range cases {
		diffViolations(t, name, Verify(build()), VerifyPostHoc(build()))
	}
}

// TestStreamMatchesPostHocRandom cross-checks the streaming checker
// against the post-hoc oracle on randomized tester-shaped traces:
// clean runs, value-corrupted runs, duplicate-atomic runs, and
// mixed-bug runs, across several shapes and seeds.
func TestStreamMatchesPostHocRandom(t *testing.T) {
	shapes := []genCfg{
		{threads: 1, episodes: 40, opsPerEp: 6, dataVars: 4, syncVars: 2, delta: 1},
		{threads: 4, episodes: 30, opsPerEp: 5, dataVars: 6, syncVars: 3, delta: 1},
		{threads: 8, episodes: 20, opsPerEp: 8, dataVars: 3, syncVars: 2, delta: 4},
	}
	bugs := []struct {
		name                 string
		corruptPM, dupAtomPM int
		private              bool
	}{
		{"clean", 0, 0, true},
		{"racy-shared-vars", 0, 0, false},
		{"corrupt-loads", 40, 0, true},
		{"dup-atomics", 0, 60, true},
		{"mixed", 25, 25, false},
	}
	for si, shape := range shapes {
		for _, bug := range bugs {
			cfg := shape
			cfg.corruptPM, cfg.dupAtomPM, cfg.private = bug.corruptPM, bug.dupAtomPM, bug.private
			for seed := uint64(0); seed < 5; seed++ {
				tr := genTrace(seed*977+uint64(si), cfg)
				name := fmt.Sprintf("shape%d/%s/seed%d", si, bug.name, seed)
				diffViolations(t, name, Verify(tr), VerifyPostHoc(tr))
				if bug.name == "clean" {
					if vs := Verify(tr); vs != nil {
						t.Fatalf("%s: clean trace flagged: %v", name, vs)
					}
				}
			}
		}
	}
}

// TestExclusivityDedupTyped is the regression test for the typed A2
// dedup key: an episode touching the same variable many times must
// produce exactly one interval, so an overlap is reported once per
// episode pair — not once per access.
func TestExclusivityDedupTyped(t *testing.T) {
	tr := &Trace{
		AtomicDelta: 1,
		Episodes: []EpisodeMeta{
			{ID: 1, CreateSeq: 1, RetireSeq: 4},
			{ID: 2, CreateSeq: 2, RetireSeq: 5},
		},
		Ops: []Op{
			// both episodes hammer var 5 with multiple stores each
			{Kind: OpStore, Var: 5, Value: 1, Episode: 1, Seq: 1},
			{Kind: OpStore, Var: 5, Value: 2, Episode: 1, Seq: 2},
			{Kind: OpStore, Var: 5, Value: 3, Episode: 2, Seq: 1},
			{Kind: OpStore, Var: 5, Value: 4, Episode: 2, Seq: 2},
			{Kind: OpStore, Var: 5, Value: 5, Episode: 1, Seq: 3},
		},
	}
	for name, verify := range map[string]func(*Trace) []Violation{"stream": Verify, "post-hoc": VerifyPostHoc} {
		vs := verify(tr)
		n := 0
		for _, v := range vs {
			if v.Axiom == "A2-exclusivity" {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("%s: %d A2 violations for one overlapping pair, want 1 (dedup broken): %v", name, n, vs)
		}
	}
	diffViolations(t, "dedup", Verify(tr), VerifyPostHoc(tr))
}

// streamFootprint sums the retained state sizes that must stay
// bounded regardless of how many episodes have passed through.
func (s *Stream) streamFootprint() int {
	n := len(s.eps) + (len(s.liveQ) - s.liveHead)
	for _, v := range s.data {
		n += len(v.intervals) + len(v.writers)
	}
	for _, a := range s.atomics {
		n += a.npend
	}
	return n
}

// TestStreamMemoryBounded runs a long clean workload through the
// stream and asserts the resident state does not grow with episode
// count: the fold is per-variable and per-live-episode, never
// per-retired-episode.
func TestStreamMemoryBounded(t *testing.T) {
	const threads, vars, syncs = 4, 3, 2
	s := NewStream(1)
	r := rng.New(11, 3)
	atomics := make([]uint32, syncs)
	retired := make([]uint32, vars)
	var gseq, id uint64
	high := 0
	for epi := 0; epi < 50000; epi++ {
		id++
		gseq++
		create := gseq
		sv := int(r.Intn(syncs))
		s.BeginEpisode(id, create)
		s.Observe(Op{Kind: OpAtomic, Var: 1000 + sv, Sync: true, Value: atomics[sv], Episode: id, Seq: 1})
		atomics[sv]++
		v := int(r.Intn(vars))
		val := uint32(r.Intn(1 << 16))
		s.Observe(Op{Kind: OpStore, Var: v, Value: val, Episode: id, Seq: 2})
		s.Observe(Op{Kind: OpLoad, Var: v, Value: val, Episode: id, Seq: 3})
		v2 := int(r.Intn(vars))
		if v2 != v {
			s.Observe(Op{Kind: OpLoad, Var: v2, Value: retired[v2], Episode: id, Seq: 4})
		}
		s.Observe(Op{Kind: OpAtomic, Var: 1000 + sv, Sync: true, Value: atomics[sv], Episode: id, Seq: 5})
		atomics[sv]++
		gseq++
		s.RetireEpisode(id, gseq)
		retired[v] = val
		if f := s.streamFootprint(); f > high {
			high = f
		}
	}
	// One episode live at a time over 3 data and 2 sync vars: the
	// retained fold should be a small constant, nowhere near the 50k
	// episodes retired.
	if high > 64 {
		t.Fatalf("stream retained up to %d state entries over 50000 episodes; fold is not bounded", high)
	}
	if vs := s.Finish(); vs != nil {
		t.Fatalf("clean long run flagged: %v", vs)
	}
}

// TestStreamSteadyStateAllocs pins the hot path: after warmup, a full
// begin/observe/retire episode cycle allocates nothing.
func TestStreamSteadyStateAllocs(t *testing.T) {
	s := NewStream(1)
	var gseq, id uint64
	var atomic uint32
	cycle := func() {
		id++
		gseq++
		s.BeginEpisode(id, gseq)
		s.Observe(Op{Kind: OpAtomic, Var: 1000, Sync: true, Value: atomic, Episode: id, Seq: 1})
		atomic++
		s.Observe(Op{Kind: OpStore, Var: 1, Value: uint32(id), Episode: id, Seq: 2})
		s.Observe(Op{Kind: OpLoad, Var: 1, Value: uint32(id), Episode: id, Seq: 3})
		s.Observe(Op{Kind: OpAtomic, Var: 1000, Sync: true, Value: atomic, Episode: id, Seq: 4})
		atomic++
		gseq++
		s.RetireEpisode(id, gseq)
	}
	for i := 0; i < 100; i++ {
		cycle() // warm up free lists and per-var state
	}
	if n := testing.AllocsPerRun(200, cycle); n != 0 {
		t.Fatalf("steady-state episode cycle allocates %v allocs, want 0", n)
	}
}
