// Package checker is an independent, axiomatic verifier for recorded
// tester executions — the TSOTool-style counterpart (paper §II.B,
// Hangal et al.) to the tester's online checking.
//
// The online tester validates each response the moment it arrives,
// using its live reference memory. This checker instead takes the
// complete trace of a finished run and re-derives, from the trace
// alone, what every operation was allowed to return under SC-for-DRF
// with episode discipline:
//
//	A1  Atomic serialization: per sync variable, the returned old
//	    values are exactly {0, k, 2k, …} — some total order of the
//	    fetch-adds exists.
//	A2  Episode exclusivity: the lifetimes of episodes that write a
//	    data variable never overlap each other, nor the lifetime of
//	    any episode that reads it.
//	A3  Read values: a load returns its episode's latest prior write
//	    to the variable, or else the final value written by the
//	    latest-retired writer episode that retired before the reading
//	    episode was created.
//
// Agreement between the two checkers on both correct and bug-injected
// runs is itself a meta-test of the methodology's soundness.
package checker

import (
	"fmt"
	"sort"
)

// OpKind classifies a trace operation.
type OpKind uint8

const (
	// OpLoad is a data-variable read.
	OpLoad OpKind = iota
	// OpStore is a data-variable write.
	OpStore
	// OpAtomic is a fetch-add on a sync variable (acquire or release).
	OpAtomic
)

func (k OpKind) String() string {
	switch k {
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpAtomic:
		return "atomic"
	}
	return "?"
}

// Op is one completed operation in a recorded execution.
type Op struct {
	Kind    OpKind
	Var     int    // variable ID (sync and data spaces are disjoint)
	Sync    bool   // true for sync variables
	Value   uint32 // loaded value, stored value, or atomic old value
	Thread  int
	Episode uint64
	// Seq is the operation's position in the episode's program order.
	Seq int
}

// EpisodeMeta carries the generation-time ordering facts the axioms
// need: CreateSeq and RetireSeq are draws from one global monotonic
// counter bumped at every episode creation and retirement, giving an
// exact total order of those events.
type EpisodeMeta struct {
	ID        uint64
	Thread    int
	CreateSeq uint64
	RetireSeq uint64 // 0 if the episode never retired (aborted run)
}

// Trace is a complete recorded execution.
type Trace struct {
	Ops      []Op
	Episodes []EpisodeMeta
	// AtomicDelta is the constant every atomic added.
	AtomicDelta uint32
}

// Violation is one axiom failure.
type Violation struct {
	Axiom   string
	Message string
}

func (v Violation) String() string { return fmt.Sprintf("%s: %s", v.Axiom, v.Message) }

// Verify checks the trace against the axioms and returns every
// violation found (nil for a consistent execution).
//
// It replays the trace through the online Stream checker: episodes
// are begun in creation order, retirements are interleaved with the
// operation walk at the points the tester's global sequence counter
// dictates (every episode that retired before episode E was created
// has all its operations before E's in completion order, so its
// retirement can be folded before E's next operation), and Finish
// assembles the violations. VerifyPostHoc is the map-building
// reference implementation the stream is tested against.
func Verify(tr *Trace) []Violation {
	s := NewStream(tr.AtomicDelta)
	metas := make(map[uint64]*EpisodeMeta, len(tr.Episodes))
	byCreate := make([]*EpisodeMeta, 0, len(tr.Episodes))
	var retires []*EpisodeMeta
	for i := range tr.Episodes {
		m := &tr.Episodes[i]
		metas[m.ID] = m
		byCreate = append(byCreate, m)
		if m.RetireSeq != 0 {
			retires = append(retires, m)
		}
	}
	sort.Slice(byCreate, func(i, j int) bool { return byCreate[i].CreateSeq < byCreate[j].CreateSeq })
	sort.Slice(retires, func(i, j int) bool { return retires[i].RetireSeq < retires[j].RetireSeq })
	for _, m := range byCreate {
		s.BeginEpisode(m.ID, m.CreateSeq)
	}
	ri := 0
	for _, op := range tr.Ops {
		if m := metas[op.Episode]; m != nil {
			for ri < len(retires) && retires[ri].RetireSeq < m.CreateSeq {
				s.RetireEpisode(retires[ri].ID, retires[ri].RetireSeq)
				ri++
			}
		}
		s.Observe(op)
	}
	for ; ri < len(retires); ri++ {
		s.RetireEpisode(retires[ri].ID, retires[ri].RetireSeq)
	}
	return s.Finish()
}

// VerifyPostHoc checks the trace the original way: collect the whole
// execution, build per-axiom maps, and scan. It is kept as the
// independent oracle the streaming checker is validated against.
func VerifyPostHoc(tr *Trace) []Violation {
	var out []Violation
	episodes := make(map[uint64]*EpisodeMeta, len(tr.Episodes))
	for i := range tr.Episodes {
		episodes[tr.Episodes[i].ID] = &tr.Episodes[i]
	}

	out = append(out, checkAtomics(tr)...)
	out = append(out, checkExclusivity(tr, episodes)...)
	out = append(out, checkReads(tr, episodes)...)
	return out
}

// checkAtomics: axiom A1.
func checkAtomics(tr *Trace) []Violation {
	var out []Violation
	delta := tr.AtomicDelta
	if delta == 0 {
		delta = 1
	}
	olds := map[int][]uint32{}
	for _, op := range tr.Ops {
		if op.Kind == OpAtomic {
			olds[op.Var] = append(olds[op.Var], op.Value)
		}
	}
	vars := make([]int, 0, len(olds))
	for v := range olds {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	for _, v := range vars {
		vals := append([]uint32(nil), olds[v]...)
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for i, got := range vals {
			want := uint32(i) * delta
			if got != want {
				out = append(out, Violation{
					Axiom: "A1-atomic-serialization",
					Message: fmt.Sprintf("sync var %d: sorted old values break the progression at index %d: got %d, want %d (duplicate or skipped fetch-add)",
						v, i, got, want),
				})
				break
			}
		}
	}
	return out
}

// interval is one episode's [create, retire] lifetime with its access
// role on a variable.
type interval struct {
	ep     uint64
	lo, hi uint64
	writes bool
}

// varEp is the typed (variable, episode) dedup key for A2: comparable
// without boxing, so membership tests cost no allocation and the two
// fields can't be swapped silently.
type varEp struct {
	v  int
	ep uint64
}

// checkExclusivity: axiom A2.
func checkExclusivity(tr *Trace, episodes map[uint64]*EpisodeMeta) []Violation {
	var out []Violation
	perVar := map[int][]interval{}
	seen := map[varEp]bool{}
	for _, op := range tr.Ops {
		if op.Sync {
			continue
		}
		key := varEp{op.Var, op.Episode}
		meta := episodes[op.Episode]
		if meta == nil {
			out = append(out, Violation{"A2-exclusivity", fmt.Sprintf("op references unknown episode %d", op.Episode)})
			continue
		}
		if seen[key] {
			if op.Kind == OpStore {
				// Upgrade an existing read interval to a write one.
				ivs := perVar[op.Var]
				for i := range ivs {
					if ivs[i].ep == op.Episode {
						ivs[i].writes = true
					}
				}
			}
			continue
		}
		seen[key] = true
		hi := meta.RetireSeq
		if hi == 0 {
			hi = ^uint64(0) // never retired: conservatively unbounded
		}
		perVar[op.Var] = append(perVar[op.Var], interval{
			ep: op.Episode, lo: meta.CreateSeq, hi: hi, writes: op.Kind == OpStore,
		})
	}

	vars := make([]int, 0, len(perVar))
	for v := range perVar {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	for _, v := range vars {
		ivs := perVar[v]
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
		for i := 1; i < len(ivs); i++ {
			prev, cur := ivs[i-1], ivs[i]
			if cur.lo < prev.hi && (prev.writes || cur.writes) {
				out = append(out, Violation{
					Axiom: "A2-exclusivity",
					Message: fmt.Sprintf("data var %d: episodes %d and %d overlap with a writer (lifetimes [%d,%d] and [%d,%d])",
						v, prev.ep, cur.ep, prev.lo, prev.hi, cur.lo, cur.hi),
				})
			}
		}
	}
	return out
}

// checkReads: axiom A3.
func checkReads(tr *Trace, episodes map[uint64]*EpisodeMeta) []Violation {
	var out []Violation

	// Final write value per (episode, var), plus per-episode in-order
	// writes for own-read resolution.
	type epVar struct {
		ep uint64
		v  int
	}
	finalWrite := map[epVar]uint32{}
	for _, op := range tr.Ops {
		if op.Kind == OpStore {
			finalWrite[epVar{op.Episode, op.Var}] = op.Value // ops are in trace order = program order per thread
		}
	}

	// Writer episodes per var ordered by retire seq.
	writersByVar := map[int][]*EpisodeMeta{}
	for key := range finalWrite {
		if meta := episodes[key.ep]; meta != nil && meta.RetireSeq != 0 {
			writersByVar[key.v] = append(writersByVar[key.v], meta)
		}
	}
	for v := range writersByVar {
		ws := writersByVar[v]
		sort.Slice(ws, func(i, j int) bool { return ws[i].RetireSeq < ws[j].RetireSeq })
	}

	// Walk ops in order, tracking each episode's own writes so far.
	ownWrites := map[epVar]uint32{}
	for _, op := range tr.Ops {
		switch op.Kind {
		case OpStore:
			ownWrites[epVar{op.Episode, op.Var}] = op.Value
		case OpLoad:
			if own, ok := ownWrites[epVar{op.Episode, op.Var}]; ok {
				if op.Value != own {
					out = append(out, Violation{
						Axiom: "A3-read-own-write",
						Message: fmt.Sprintf("episode %d load of var %d returned %d, its own prior store wrote %d",
							op.Episode, op.Var, op.Value, own),
					})
				}
				continue
			}
			meta := episodes[op.Episode]
			if meta == nil {
				continue // already reported by A2
			}
			var want uint32 // zero-initialized memory
			for _, w := range writersByVar[op.Var] {
				if w.RetireSeq < meta.CreateSeq {
					want = finalWrite[epVar{w.ID, op.Var}]
				} else {
					break
				}
			}
			if op.Value != want {
				out = append(out, Violation{
					Axiom: "A3-read-retired-value",
					Message: fmt.Sprintf("episode %d (created@%d) load of var %d returned %d; last retired writer's value is %d",
						op.Episode, meta.CreateSeq, op.Var, op.Value, want),
				})
			}
		}
	}
	return out
}
