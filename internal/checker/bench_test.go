package checker

import "testing"

// BenchmarkChecker compares the two verification modes on the same
// tester-shaped trace: the streaming replay (Verify) against the
// map-building reference (VerifyPostHoc), plus the pure online fold
// (Stream fed episode by episode, the tester-wiring hot path).
func BenchmarkChecker(b *testing.B) {
	cfg := genCfg{threads: 8, episodes: 200, opsPerEp: 8,
		dataVars: 8, syncVars: 4, private: true, delta: 1}
	tr := genTrace(42, cfg)
	opsPerRun := len(tr.Ops)

	b.Run("StreamVerify", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if vs := Verify(tr); vs != nil {
				b.Fatalf("clean trace flagged: %v", vs)
			}
		}
		b.ReportMetric(float64(opsPerRun), "ops/run")
	})
	b.Run("PostHoc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if vs := VerifyPostHoc(tr); vs != nil {
				b.Fatalf("clean trace flagged: %v", vs)
			}
		}
		b.ReportMetric(float64(opsPerRun), "ops/run")
	})
	b.Run("OnlineFold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := NewStream(1)
			var gseq, id uint64
			var atomic uint32
			for ep := 0; ep < 1000; ep++ {
				id++
				gseq++
				s.BeginEpisode(id, gseq)
				s.Observe(Op{Kind: OpAtomic, Var: 1000, Sync: true, Value: atomic, Episode: id, Seq: 1})
				atomic++
				s.Observe(Op{Kind: OpStore, Var: 1, Value: uint32(id), Episode: id, Seq: 2})
				s.Observe(Op{Kind: OpLoad, Var: 1, Value: uint32(id), Episode: id, Seq: 3})
				s.Observe(Op{Kind: OpAtomic, Var: 1000, Sync: true, Value: atomic, Episode: id, Seq: 4})
				atomic++
				gseq++
				s.RetireEpisode(id, gseq)
			}
			if vs := s.Finish(); vs != nil {
				b.Fatalf("clean fold flagged: %v", vs)
			}
		}
	})
}
