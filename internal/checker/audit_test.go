package checker

import (
	"testing"

	"drftest/internal/audit"
)

// TestStreamFieldAudit pins the field sets of the online checker's
// fold state against Reset/Snapshot/Restore (see package audit): the
// stream is now part of the tester's checkpoint cut, so a field that
// escapes these paths breaks replay-bisection bit-identity with
// StreamCheck armed.
func TestStreamFieldAudit(t *testing.T) {
	audit.Fields(t, Stream{}, map[string]string{
		"delta":     "state: copied (Reset retunes it from config)",
		"eps":       "state: rebuilt from the snapshot's epSave records (live known + unknown entries)",
		"epFree":    "pool: recycled epStates, excluded — dropped records are harvested back on Reset/Restore",
		"liveQ":     "state: rebuilt from the snapshot's leading nLive epSave records, dead heads included",
		"liveHead":  "state: normalized to 0 on Restore (only order and dead flags are semantic)",
		"atomics":   "state: per-sync-var A1 fold via atomicSave (pending multiset deep-copied)",
		"data":      "state: per-data-var A2/A3 fold via varSave (intervals/writers deep-copied)",
		"a2unknown": "state: violation bucket, slice-copied",
		"a2overlap": "state: violation bucket, slice-copied",
		"a3":        "state: violation bucket, slice-copied",
		"finished":  "state: copied (a mid-run cut reopens a Finish-sealed stream)",
		"result":    "state: slice-copied alongside finished",
	})
	audit.Fields(t, epState{}, map[string]string{
		"id":        "state: via epSave",
		"createSeq": "state: via epSave",
		"known":     "state: via epSave (unknown records live only in the eps map)",
		"dead":      "state: via epSave (dead records live only in the liveQ)",
		"ownWrites": "state: deep slice copy via epSave",
		"touched":   "state: deep slice copy via epSave",
	})
	audit.Fields(t, varState{}, map[string]string{
		"intervals": "state: deep slice copy via varSave",
		"prev":      "state: value copy via varSave",
		"hasPrev":   "state: value copy via varSave",
		"writers":   "state: deep slice copy via varSave",
	})
	audit.Fields(t, atomicState{}, map[string]string{
		"contig":  "state: value copy via atomicSave",
		"pending": "state: deep map copy via atomicSave",
		"npend":   "state: value copy via atomicSave",
	})
}

// TestPipelineFieldAudit pins the Pipeline's field set. The ring and
// its indices are deliberately NOT snapshot state: Snapshot/Restore
// flush the ring first, so the Stream alone is the cut — a field
// added here must either stay derivable from quiescence or be folded
// into that doctrine explicitly.
func TestPipelineFieldAudit(t *testing.T) {
	audit.Fields(t, Pipeline{}, map[string]string{
		"stream":   "state: the cut itself, via Stream.Snapshot/Restore after Flush",
		"force":    "config: fixed at construction (tester rebuilds the pipeline when the knob changes)",
		"inline":   "config: mode pinned at construction from force/GOMAXPROCS",
		"ring":     "excluded: drained by Flush before every cut, so never part of one",
		"mask":     "config: ring capacity mask, fixed at construction",
		"head":     "excluded: equals tail at every cut (quiescence), rewound by Reset only",
		"tail":     "excluded: equals head at every cut (quiescence), rewound by Reset only",
		"sleeping": "worker parking handshake, meaningless at a quiescent cut",
		"notify":   "worker parking channel, config-like (rebuilt never; capacity 1)",
		"stop":     "worker lifecycle channel, remade by each start()",
		"done":     "worker lifecycle channel, remade by each start()",
		"running":  "worker lifecycle flag; Finish/Reset retire the worker, push revives it",
	})
}
