package checker

import (
	"strings"
	"testing"
)

// hand-built consistent trace: two episodes, writer then reader.
func goodTrace() *Trace {
	return &Trace{
		AtomicDelta: 1,
		Episodes: []EpisodeMeta{
			{ID: 1, Thread: 0, CreateSeq: 1, RetireSeq: 2},
			{ID: 2, Thread: 1, CreateSeq: 3, RetireSeq: 4},
		},
		Ops: []Op{
			{Kind: OpAtomic, Var: 100, Sync: true, Value: 0, Thread: 0, Episode: 1, Seq: 1},
			{Kind: OpStore, Var: 5, Value: 42, Thread: 0, Episode: 1, Seq: 2},
			{Kind: OpLoad, Var: 5, Value: 42, Thread: 0, Episode: 1, Seq: 3}, // own write
			{Kind: OpAtomic, Var: 100, Sync: true, Value: 1, Thread: 0, Episode: 1, Seq: 4},
			{Kind: OpAtomic, Var: 100, Sync: true, Value: 2, Thread: 1, Episode: 2, Seq: 1},
			{Kind: OpLoad, Var: 5, Value: 42, Thread: 1, Episode: 2, Seq: 2}, // retired write
			{Kind: OpLoad, Var: 6, Value: 0, Thread: 1, Episode: 2, Seq: 3},  // untouched var
			{Kind: OpAtomic, Var: 100, Sync: true, Value: 3, Thread: 1, Episode: 2, Seq: 4},
		},
	}
}

func TestConsistentTracePasses(t *testing.T) {
	if vs := Verify(goodTrace()); len(vs) != 0 {
		t.Fatalf("consistent trace flagged: %v", vs)
	}
}

func TestDuplicateAtomicCaught(t *testing.T) {
	tr := goodTrace()
	tr.Ops[4].Value = 1 // same old value as op 3: broken fetch-add
	vs := Verify(tr)
	if len(vs) == 0 || !strings.Contains(vs[0].Axiom, "A1") {
		t.Fatalf("duplicate atomic not caught: %v", vs)
	}
}

func TestOverlappingWritersCaught(t *testing.T) {
	tr := goodTrace()
	// Make episode 2 overlap episode 1's lifetime and store the var.
	tr.Episodes[1].CreateSeq = 1
	tr.Ops[5] = Op{Kind: OpStore, Var: 5, Value: 9, Thread: 1, Episode: 2, Seq: 2}
	found := false
	for _, v := range Verify(tr) {
		if strings.Contains(v.Axiom, "A2") {
			found = true
		}
	}
	if !found {
		t.Fatal("overlapping writer episodes not caught")
	}
}

func TestStaleReadCaught(t *testing.T) {
	tr := goodTrace()
	tr.Ops[5].Value = 0 // reader misses the retired write
	vs := Verify(tr)
	found := false
	for _, v := range vs {
		if v.Axiom == "A3-read-retired-value" {
			found = true
		}
	}
	if !found {
		t.Fatalf("stale read not caught: %v", vs)
	}
}

func TestOwnWriteViolationCaught(t *testing.T) {
	tr := goodTrace()
	tr.Ops[2].Value = 7 // own-episode read disagrees with own store
	vs := Verify(tr)
	found := false
	for _, v := range vs {
		if v.Axiom == "A3-read-own-write" {
			found = true
		}
	}
	if !found {
		t.Fatalf("own-write violation not caught: %v", vs)
	}
}

func TestUnknownEpisodeCaught(t *testing.T) {
	tr := goodTrace()
	tr.Ops[1].Episode = 99
	vs := Verify(tr)
	if len(vs) == 0 {
		t.Fatal("dangling episode reference not caught")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Axiom: "A1", Message: "boom"}
	if v.String() != "A1: boom" {
		t.Fatalf("got %q", v.String())
	}
	for _, k := range []OpKind{OpLoad, OpStore, OpAtomic} {
		if k.String() == "?" {
			t.Fatal("OpKind string missing")
		}
	}
}
