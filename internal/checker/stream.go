package checker

import (
	"fmt"
	"sort"
)

// Stream is the online form of the axiomatic checker: instead of
// materializing a whole trace and building per-axiom maps over it
// (VerifyPostHoc), it folds every completed operation and every
// episode retirement into fixed per-variable state the moment they
// happen. Memory stays bounded by the number of variables plus the
// number of concurrently live episodes — independent of run length —
// while the violations reported by Finish are identical, in content
// and order, to the post-hoc checker's on any trace the tester can
// produce.
//
// The folding relies on two facts the tester guarantees by
// construction (see DESIGN.md): operations are observed in global
// completion order, and an episode is retired only after all of its
// operations have been observed. Under those rules:
//
//   - A1 needs only, per sync variable, a counter of the contiguous
//     prefix {0, k, 2k, …} consumed so far plus a multiset of
//     out-of-order arrivals; the multiset drains back to empty
//     whenever the history is serializable.
//   - A2 needs only the unsealed suffix of each data variable's
//     lifetime intervals: once every live episode was created after
//     an interval's start, nothing can ever sort before it, so it is
//     checked against its neighbor and dropped.
//   - A3 needs only each live episode's own writes and, per
//     variable, the retired-writer values still reachable by some
//     live or future reader; older writers are superseded and pruned.
type Stream struct {
	delta uint32

	eps    map[uint64]*epState
	epFree []*epState
	// liveQ lists live episodes in creation order; liveHead is the
	// first possibly-live entry, so the minimum live CreateSeq is
	// found by popping dead heads.
	liveQ    []*epState
	liveHead int

	atomics map[int]*atomicState
	data    map[int]*varState

	// Violation buckets, assembled in reference order by Finish: A1
	// (per sync var ascending), A2 unknown-episode (op order), A2
	// overlaps (sorted by variable then interval start), A3 (op
	// order).
	a2unknown []Violation
	a2overlap []overlapViol
	a3        []Violation

	finished bool
	result   []Violation
}

// NewStream creates an empty online checker. atomicDelta is the
// constant every fetch-add adds (0 means 1, matching the trace
// default).
func NewStream(atomicDelta uint32) *Stream {
	if atomicDelta == 0 {
		atomicDelta = 1
	}
	return &Stream{
		delta:   atomicDelta,
		eps:     make(map[uint64]*epState),
		atomics: make(map[int]*atomicState),
		data:    make(map[int]*varState),
	}
}

// ownWrite is one episode's latest stored value for a variable.
type ownWrite struct {
	v   int
	val uint32
}

// epState is the per-live-episode fold: identity, creation order, the
// episode's own writes (for A3 own-read resolution and for the
// retired-writer record), and the variables it holds A2 intervals on.
type epState struct {
	id        uint64
	createSeq uint64
	known     bool // BeginEpisode seen; ops may reference unknown IDs
	dead      bool
	ownWrites []ownWrite
	touched   []int
}

func (e *epState) own(v int) (uint32, bool) {
	for i := len(e.ownWrites) - 1; i >= 0; i-- {
		if e.ownWrites[i].v == v {
			return e.ownWrites[i].val, true
		}
	}
	return 0, false
}

func (e *epState) setOwn(v int, val uint32) {
	for i := range e.ownWrites {
		if e.ownWrites[i].v == v {
			e.ownWrites[i].val = val
			return
		}
	}
	e.ownWrites = append(e.ownWrites, ownWrite{v, val})
}

// ival is one episode's [create, retire] lifetime on one variable,
// with its access role. hi is set at retirement; unretired episodes
// get an unbounded lifetime at Finish, like the post-hoc checker.
type ival struct {
	ep      uint64
	lo, hi  uint64
	writes  bool
	retired bool
}

// writerRec is a retired writer's final value for a variable.
type writerRec struct {
	retireSeq uint64
	val       uint32
}

// varState is the per-data-variable fold for A2 and A3.
type varState struct {
	// intervals is the unsealed suffix, sorted by lo.
	intervals []ival
	// prev is the most recently sealed interval, the left neighbor of
	// the next interval to seal.
	prev    ival
	hasPrev bool
	// writers holds retired-writer values in retirement order, pruned
	// to those still reachable by a live or future reader.
	writers []writerRec
}

// atomicState is the per-sync-variable fold for A1: values
// {0..contig-1}*delta have been consumed into the contiguous prefix;
// everything else waits in pending until the prefix reaches it.
type atomicState struct {
	contig  int
	pending map[uint32]int
	npend   int
}

// overlapViol is an A2 overlap with its reference-order sort key.
type overlapViol struct {
	v    int
	lo   uint64
	viol Violation
}

// BeginEpisode registers a created episode. Calls must arrive in
// increasing createSeq order (the tester's creations do).
func (s *Stream) BeginEpisode(id, createSeq uint64) {
	es := s.newEpState()
	es.id, es.createSeq, es.known = id, createSeq, true
	s.eps[id] = es
	if s.liveHead == len(s.liveQ) {
		s.liveQ, s.liveHead = s.liveQ[:0], 0
	}
	s.liveQ = append(s.liveQ, es)
}

func (s *Stream) newEpState() *epState {
	if n := len(s.epFree); n > 0 {
		es := s.epFree[n-1]
		s.epFree = s.epFree[:n-1]
		*es = epState{ownWrites: es.ownWrites[:0], touched: es.touched[:0]}
		return es
	}
	return &epState{}
}

// epState returns the state for id, creating an unknown-episode
// record on first reference so own-write tracking works even for
// dangling IDs (matching the post-hoc checker).
func (s *Stream) epState(id uint64) *epState {
	es := s.eps[id]
	if es == nil {
		es = s.newEpState()
		es.id = id
		s.eps[id] = es
	}
	return es
}

// minLiveCreate pops dead episodes off the queue head (recycling
// them) and returns the minimum CreateSeq over live episodes, or
// ^uint64(0) when none are live.
func (s *Stream) minLiveCreate() uint64 {
	for s.liveHead < len(s.liveQ) && s.liveQ[s.liveHead].dead {
		s.epFree = append(s.epFree, s.liveQ[s.liveHead])
		s.liveQ[s.liveHead] = nil
		s.liveHead++
	}
	if s.liveHead == len(s.liveQ) {
		s.liveQ, s.liveHead = s.liveQ[:0], 0
		return ^uint64(0)
	}
	if s.liveHead > 64 && s.liveHead*2 >= len(s.liveQ) {
		n := copy(s.liveQ, s.liveQ[s.liveHead:])
		s.liveQ, s.liveHead = s.liveQ[:n], 0
	}
	return s.liveQ[s.liveHead].createSeq
}

func (s *Stream) varState(v int) *varState {
	vs := s.data[v]
	if vs == nil {
		vs = &varState{}
		s.data[v] = vs
	}
	return vs
}

// Observe folds one completed operation. Operations must arrive in
// global completion order.
func (s *Stream) Observe(op Op) {
	if op.Kind == OpAtomic {
		s.observeAtomic(op)
	}
	if !op.Sync {
		s.observeInterval(op)
	}
	s.observeValue(op)
}

// observeAtomic: axiom A1 fold.
func (s *Stream) observeAtomic(op Op) {
	a := s.atomics[op.Var]
	if a == nil {
		a = &atomicState{}
		s.atomics[op.Var] = a
	}
	if op.Value == uint32(a.contig)*s.delta {
		a.contig++
		for a.npend > 0 {
			next := uint32(a.contig) * s.delta
			n := a.pending[next]
			if n == 0 {
				break
			}
			if n == 1 {
				delete(a.pending, next)
			} else {
				a.pending[next] = n - 1
			}
			a.npend--
			a.contig++
		}
		return
	}
	if a.pending == nil {
		a.pending = make(map[uint32]int)
	}
	a.pending[op.Value]++
	a.npend++
}

// observeInterval: axiom A2 fold — create or upgrade the episode's
// lifetime interval on the variable.
func (s *Stream) observeInterval(op Op) {
	es := s.epState(op.Episode)
	if !es.known {
		s.a2unknown = append(s.a2unknown,
			Violation{"A2-exclusivity", fmt.Sprintf("op references unknown episode %d", op.Episode)})
		return
	}
	v := s.varState(op.Var)
	// A live episode's interval is never sealed, so a backward scan of
	// the unsealed suffix always finds it; the suffix is small (live
	// window), so this is cheap.
	for i := len(v.intervals) - 1; i >= 0; i-- {
		if v.intervals[i].ep == op.Episode {
			if op.Kind == OpStore {
				v.intervals[i].writes = true
			}
			return
		}
	}
	v.intervals = append(v.intervals, ival{ep: op.Episode, lo: es.createSeq, writes: op.Kind == OpStore})
	// First accesses arrive nearly sorted by creation; restore order
	// from the back.
	for i := len(v.intervals) - 1; i > 0 && v.intervals[i].lo < v.intervals[i-1].lo; i-- {
		v.intervals[i], v.intervals[i-1] = v.intervals[i-1], v.intervals[i]
	}
	es.touched = append(es.touched, op.Var)
}

// observeValue: axiom A3 fold and check.
func (s *Stream) observeValue(op Op) {
	switch op.Kind {
	case OpStore:
		s.epState(op.Episode).setOwn(op.Var, op.Value)
	case OpLoad:
		es := s.epState(op.Episode)
		if own, ok := es.own(op.Var); ok {
			if op.Value != own {
				s.a3 = append(s.a3, Violation{
					Axiom: "A3-read-own-write",
					Message: fmt.Sprintf("episode %d load of var %d returned %d, its own prior store wrote %d",
						op.Episode, op.Var, op.Value, own),
				})
			}
			return
		}
		if !es.known {
			return // already reported by A2
		}
		var want uint32 // zero-initialized memory
		if v := s.data[op.Var]; v != nil {
			ws := v.writers
			i := sort.Search(len(ws), func(i int) bool { return ws[i].retireSeq >= es.createSeq })
			if i > 0 {
				want = ws[i-1].val
			}
		}
		if op.Value != want {
			s.a3 = append(s.a3, Violation{
				Axiom: "A3-read-retired-value",
				Message: fmt.Sprintf("episode %d (created@%d) load of var %d returned %d; last retired writer's value is %d",
					op.Episode, es.createSeq, op.Var, op.Value, want),
			})
		}
	}
}

// RetireEpisode folds an episode's retirement: its intervals get
// their upper bound, its final writes become retired-writer values,
// and any interval now safely ordered before every live episode is
// sealed (checked against its neighbor and dropped). Calls must
// arrive in increasing retireSeq order, after all of the episode's
// operations have been observed.
func (s *Stream) RetireEpisode(id, retireSeq uint64) {
	es := s.eps[id]
	if es == nil || !es.known || es.dead {
		return
	}
	es.dead = true
	delete(s.eps, id)
	for _, varID := range es.touched {
		v := s.data[varID]
		for i := len(v.intervals) - 1; i >= 0; i-- {
			if v.intervals[i].ep == id {
				v.intervals[i].hi = retireSeq
				v.intervals[i].retired = true
				break
			}
		}
	}
	for _, w := range es.ownWrites {
		v := s.varState(w.v)
		v.writers = append(v.writers, writerRec{retireSeq, w.val})
	}
	// es may be recycled by minLiveCreate; its slices stay intact
	// until the next BeginEpisode, so reading them below is safe.
	minLive := s.minLiveCreate()
	for _, varID := range es.touched {
		s.advanceSeal(varID, s.data[varID], minLive)
	}
	for _, w := range es.ownWrites {
		s.pruneWriters(s.data[w.v], minLive)
	}
}

// advanceSeal seals the variable's leading intervals: one is final
// once its episode retired and every live episode was created after
// its start (so nothing can ever sort before or into that prefix).
// Each sealed interval is checked against its left neighbor — the
// same adjacent-pair rule the post-hoc checker applies to the fully
// sorted list — then dropped.
func (s *Stream) advanceSeal(varID int, v *varState, minLive uint64) {
	sealed := 0
	for sealed < len(v.intervals) {
		cur := v.intervals[sealed]
		if !cur.retired || cur.lo >= minLive {
			break
		}
		if v.hasPrev {
			s.checkPair(varID, v.prev, cur)
		}
		v.prev, v.hasPrev = cur, true
		sealed++
	}
	if sealed > 0 {
		n := copy(v.intervals, v.intervals[sealed:])
		v.intervals = v.intervals[:n]
	}
}

func (s *Stream) checkPair(varID int, prev, cur ival) {
	if cur.lo < prev.hi && (prev.writes || cur.writes) {
		s.a2overlap = append(s.a2overlap, overlapViol{
			v: varID, lo: cur.lo,
			viol: Violation{
				Axiom: "A2-exclusivity",
				Message: fmt.Sprintf("data var %d: episodes %d and %d overlap with a writer (lifetimes [%d,%d] and [%d,%d])",
					varID, prev.ep, cur.ep, prev.lo, prev.hi, cur.lo, cur.hi),
			},
		})
	}
}

// pruneWriters drops retired writers superseded for every possible
// future reader: if the second-oldest writer retired before the
// oldest live episode was created, no reader can ever need the
// oldest.
func (s *Stream) pruneWriters(v *varState, minLive uint64) {
	drop := 0
	for drop+1 < len(v.writers) && v.writers[drop+1].retireSeq < minLive {
		drop++
	}
	if drop > 0 {
		n := copy(v.writers, v.writers[drop:])
		v.writers = v.writers[:n]
	}
}

// Finish closes the stream and returns every violation, in the same
// order the post-hoc checker reports them. It is idempotent.
func (s *Stream) Finish() []Violation {
	if s.finished {
		return s.result
	}
	s.finished = true

	var out []Violation

	// A1, per sync variable ascending.
	avars := make([]int, 0, len(s.atomics))
	for v := range s.atomics {
		avars = append(avars, v)
	}
	sort.Ints(avars)
	for _, vid := range avars {
		if viol, bad := s.atomics[vid].firstBreak(vid, s.delta); bad {
			out = append(out, viol)
		}
	}

	// A2: episodes that never retired get an unbounded lifetime, then
	// the remaining unsealed suffixes run the final adjacent-pair
	// sweep. Emission order across variables is restored by the sort
	// below, so map iteration order here is harmless.
	for vid, v := range s.data {
		for i := range v.intervals {
			if !v.intervals[i].retired {
				v.intervals[i].hi = ^uint64(0)
				v.intervals[i].retired = true
			}
		}
		s.advanceSeal(vid, v, ^uint64(0))
	}
	out = append(out, s.a2unknown...)
	sort.Slice(s.a2overlap, func(i, j int) bool {
		if s.a2overlap[i].v != s.a2overlap[j].v {
			return s.a2overlap[i].v < s.a2overlap[j].v
		}
		return s.a2overlap[i].lo < s.a2overlap[j].lo
	})
	for _, ov := range s.a2overlap {
		out = append(out, ov.viol)
	}

	out = append(out, s.a3...)
	s.result = out
	return out
}

// firstBreak reconstructs the first index at which the sorted old
// values would break the {0, k, 2k, …} progression, by merge-walking
// the contiguous prefix with the sorted pending leftovers. A drained
// pending multiset means the history is serializable.
func (a *atomicState) firstBreak(varID int, delta uint32) (Violation, bool) {
	if a.npend == 0 {
		return Violation{}, false
	}
	pend := make([]uint32, 0, a.npend)
	for val, n := range a.pending {
		for i := 0; i < n; i++ {
			pend = append(pend, val)
		}
	}
	sort.Slice(pend, func(i, j int) bool { return pend[i] < pend[j] })
	ci, pi := 0, 0
	for i := 0; ci < a.contig || pi < len(pend); i++ {
		var got uint32
		if ci < a.contig && (pi >= len(pend) || uint32(ci)*delta <= pend[pi]) {
			got = uint32(ci) * delta
			ci++
		} else {
			got = pend[pi]
			pi++
		}
		if want := uint32(i) * delta; got != want {
			return Violation{
				Axiom: "A1-atomic-serialization",
				Message: fmt.Sprintf("sync var %d: sorted old values break the progression at index %d: got %d, want %d (duplicate or skipped fetch-add)",
					varID, i, got, want),
			}, true
		}
	}
	return Violation{}, false
}
