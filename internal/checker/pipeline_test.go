package checker

import (
	"sort"
	"testing"
)

// traceEvents flattens a trace into the begin/op/retire fold order
// Verify uses, so the same sequence can be replayed through a Stream,
// an inline Pipeline, or a threaded Pipeline and the outputs compared.
func traceEvents(tr *Trace) []streamEvent {
	metas := make(map[uint64]*EpisodeMeta, len(tr.Episodes))
	byCreate := make([]*EpisodeMeta, 0, len(tr.Episodes))
	var retires []*EpisodeMeta
	for i := range tr.Episodes {
		m := &tr.Episodes[i]
		metas[m.ID] = m
		byCreate = append(byCreate, m)
		if m.RetireSeq != 0 {
			retires = append(retires, m)
		}
	}
	sort.Slice(byCreate, func(i, j int) bool { return byCreate[i].CreateSeq < byCreate[j].CreateSeq })
	sort.Slice(retires, func(i, j int) bool { return retires[i].RetireSeq < retires[j].RetireSeq })
	var evs []streamEvent
	for _, m := range byCreate {
		evs = append(evs, streamEvent{kind: evBegin, id: m.ID, seq: m.CreateSeq})
	}
	ri := 0
	for _, op := range tr.Ops {
		if m := metas[op.Episode]; m != nil {
			for ri < len(retires) && retires[ri].RetireSeq < m.CreateSeq {
				evs = append(evs, streamEvent{kind: evRetire, id: retires[ri].ID, seq: retires[ri].RetireSeq})
				ri++
			}
		}
		evs = append(evs, streamEvent{kind: evOp, op: op})
	}
	for ; ri < len(retires); ri++ {
		evs = append(evs, streamEvent{kind: evRetire, id: retires[ri].ID, seq: retires[ri].RetireSeq})
	}
	return evs
}

func feed(p *Pipeline, evs []streamEvent) {
	for _, e := range evs {
		switch e.kind {
		case evOp:
			p.Observe(e.op)
		case evBegin:
			p.BeginEpisode(e.id, e.seq)
		case evRetire:
			p.RetireEpisode(e.id, e.seq)
		}
	}
}

// pipelineCorpus: traces long enough to wrap the event ring several
// times (ops ≫ pipelineRingSize exercises backpressure), covering a
// clean run and every injected bug class.
func pipelineCorpus() map[string]*Trace {
	return map[string]*Trace{
		"clean": genTrace(11, genCfg{threads: 8, episodes: 24, opsPerEp: 40,
			dataVars: 32, syncVars: 4, private: true, delta: 1}),
		"corrupt-loads": genTrace(12, genCfg{threads: 8, episodes: 24, opsPerEp: 40,
			dataVars: 32, syncVars: 4, private: true, corruptPM: 20, delta: 1}),
		"dup-atomics": genTrace(13, genCfg{threads: 8, episodes: 24, opsPerEp: 40,
			dataVars: 32, syncVars: 4, private: true, dupAtomPM: 30, delta: 2}),
		"racy": genTrace(14, genCfg{threads: 8, episodes: 24, opsPerEp: 40,
			dataVars: 16, syncVars: 4, private: false, corruptPM: 10, delta: 1}),
	}
}

// TestPipelineMatchesInline pins the pipeline's whole contract: the
// threaded ring and inline folding produce identical violations, in
// content and order, on clean and buggy traces — including traces
// several times the ring capacity, where the producer had to spin on
// backpressure. Run under -race this also vets the SPSC handoff.
func TestPipelineMatchesInline(t *testing.T) {
	for name, tr := range pipelineCorpus() {
		evs := traceEvents(tr)
		if len(evs) <= pipelineRingSize {
			t.Fatalf("%s: trace too small (%d events) to wrap the %d-slot ring", name, len(evs), pipelineRingSize)
		}
		inline := newPipeline(tr.AtomicDelta, true)
		feed(inline, evs)
		want := inline.Finish()

		threaded := newPipeline(tr.AtomicDelta, false)
		feed(threaded, evs)
		got := threaded.Finish()
		diffViolations(t, name, got, want)

		// And both match the reference checker on the same trace.
		diffViolations(t, name+"/post-hoc", got, VerifyPostHoc(tr))
	}
}

// TestPipelineFlushQuiesces checks Flush's contract: after it
// returns, every published event is visible in the stream state.
func TestPipelineFlushQuiesces(t *testing.T) {
	p := newPipeline(1, false)
	p.BeginEpisode(1, 1)
	for i := 0; i < 3*pipelineRingSize; i++ {
		p.Observe(Op{Kind: OpStore, Var: 0, Value: uint32(i), Episode: 1, Seq: i})
	}
	p.Flush()
	if v, ok := p.stream.epState(1).own(0); !ok || v != uint32(3*pipelineRingSize-1) {
		t.Fatalf("after Flush the last store is not folded: got %d (ok=%v)", v, ok)
	}
	p.Finish()
}

// TestPipelineReset pins run-to-run reuse: a pipeline reset between
// traces reports exactly what a fresh pipeline reports, with the
// worker goroutine cleanly retired and restarted.
func TestPipelineReset(t *testing.T) {
	corpus := pipelineCorpus()
	p := newPipeline(1, false)
	// Burn a first run through it, including Finish.
	feed(p, traceEvents(corpus["clean"]))
	p.Finish()
	for _, name := range []string{"racy", "dup-atomics", "corrupt-loads"} {
		tr := corpus[name]
		p.Reset(tr.AtomicDelta)
		evs := traceEvents(tr)
		feed(p, evs)
		fresh := newPipeline(tr.AtomicDelta, true)
		feed(fresh, evs)
		diffViolations(t, "reset/"+name, p.Finish(), fresh.Finish())
	}
}

// TestStreamSnapshotRestore pins the checkpoint contract: fold a
// prefix, snapshot, fold the suffix twice — once live, once after
// Restore — and require identical violations. The cut point is swept
// across the trace so it lands inside live episodes, between
// retirement and reuse, and amid pending (out-of-order) atomics.
func TestStreamSnapshotRestore(t *testing.T) {
	for name, tr := range pipelineCorpus() {
		evs := traceEvents(tr)
		for _, frac := range []float64{0.1, 0.5, 0.9} {
			cut := int(float64(len(evs)) * frac)
			p := newPipeline(tr.AtomicDelta, true)
			feed(p, evs[:cut])
			snap := p.Snapshot()
			feed(p, evs[cut:])
			want := p.Finish()

			p.Restore(snap)
			feed(p, evs[cut:])
			diffViolations(t, name, p.Finish(), want)

			// The same snapshot reinstated on a brand-new stream must
			// behave identically: the cut is self-contained.
			q := NewStream(1)
			q.Restore(snap)
			for _, e := range evs[cut:] {
				switch e.kind {
				case evOp:
					q.Observe(e.op)
				case evBegin:
					q.BeginEpisode(e.id, e.seq)
				case evRetire:
					q.RetireEpisode(e.id, e.seq)
				}
			}
			diffViolations(t, name+"/fresh", q.Finish(), want)
		}
	}
}

// TestPipelineSnapshotThreaded checks that Pipeline.Snapshot flushes
// in-flight ring events before cutting, and that a threaded pipeline
// restores and resumes correctly (worker restarted after a Finish).
func TestPipelineSnapshotThreaded(t *testing.T) {
	tr := pipelineCorpus()["racy"]
	evs := traceEvents(tr)
	cut := len(evs) / 2

	p := newPipeline(tr.AtomicDelta, false)
	feed(p, evs[:cut])
	snap := p.Snapshot()
	feed(p, evs[cut:])
	want := p.Finish()

	// Finish retired the worker; Restore + feed must revive it.
	p.Restore(snap)
	feed(p, evs[cut:])
	diffViolations(t, "threaded", p.Finish(), want)
}
