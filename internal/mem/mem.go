// Package mem defines the memory primitives shared by every level of
// the simulated hierarchy: addresses, operation kinds, request and
// response messages, the port interfaces components use to exchange
// them, and a sparse functional backing store.
//
// The vocabulary deliberately mirrors the paper's: loads and stores
// access data variables; atomics (fetch-add) access synchronization
// variables and may carry acquire and/or release semantics, which is
// exactly the DRF interface the tester exercises.
package mem

import (
	"encoding/binary"
	"fmt"
)

// Addr is a physical byte address.
type Addr uint64

// WordSize is the size in bytes of every tester variable and of all
// word-granularity helpers in this package.
const WordSize = 4

// LineAddr returns the address of the cache line containing a, for a
// power-of-two line size.
func LineAddr(a Addr, lineSize int) Addr {
	return a &^ Addr(lineSize-1)
}

// LineOffset returns a's byte offset within its cache line.
func LineOffset(a Addr, lineSize int) int {
	return int(a & Addr(lineSize-1))
}

// Op enumerates the request kinds a core (or tester) can issue.
type Op uint8

const (
	// OpLoad reads WordSize bytes.
	OpLoad Op = iota
	// OpStore writes WordSize bytes (write-through in VIPER).
	OpStore
	// OpAtomic is an atomic fetch-add of the request's Operand on a
	// WordSize word; the response carries the old value.
	OpAtomic
)

func (o Op) String() string {
	switch o {
	case OpLoad:
		return "LD"
	case OpStore:
		return "ST"
	case OpAtomic:
		return "AT"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Request is a memory request message. Requests flow core → L1 → L2 →
// directory/memory; the same struct is reused at every level with the
// identity fields preserved so failure reports can name the issuing
// thread, wavefront and episode (Table V in the paper).
type Request struct {
	ID   uint64
	Op   Op
	Addr Addr
	// Data holds the store value for OpStore.
	Data uint32
	// Operand is the fetch-add amount for OpAtomic.
	Operand uint32
	// Acquire gives the request load-acquire semantics: on completion
	// the issuing core's L1 is flash-invalidated so subsequent loads
	// cannot observe stale data.
	Acquire bool
	// Release gives the request store-release semantics: it is not
	// issued until all of the thread's prior write-throughs have
	// completed, making them globally visible first.
	Release bool

	// Identity of the issuer, for logs and failure reports.
	ThreadID  int
	WFID      int
	EpisodeID uint64
	CUID      int

	// IssueTick is stamped by the sequencer when the request enters the
	// memory system; the forward-progress checker scans it.
	IssueTick uint64
}

func (r *Request) String() string {
	return fmt.Sprintf("%s addr=%#x thr=%d wf=%d eps=%d", r.Op, uint64(r.Addr), r.ThreadID, r.WFID, r.EpisodeID)
}

// Response answers a Request. Data is the loaded word for OpLoad and
// the old (pre-add) value for OpAtomic.
type Response struct {
	Req  *Request
	Data uint32
	// Tick is the completion time.
	Tick uint64
}

// Requestor is the core-side endpoint: it receives responses for the
// requests it issued. Sequencers and CPU caches take a Requestor as
// their client; the testers and core models implement it.
//
// The *Response is only valid for the duration of the HandleResponse
// call: producers may reuse the backing struct for the next delivery.
// Implementations must copy any fields they need to retain.
type Requestor interface {
	HandleResponse(resp *Response)
}

// Store is a sparse functional backing memory. It is used both as the
// DRAM contents behind the protocol stack and as the reference memory
// the tester checks responses against. Uninitialized bytes read as
// zero.
//
// The store sits on every DRAM access and every tester verify, so page
// resolution is built to do zero map hashes on the common path: a
// single-entry last-page cache catches the run of accesses that stay
// within one page, a two-level chunked directory covers the low
// address range with two slice indexes, and only pages beyond the
// directory's reach fall back to a map. All three tiers hold the same
// page buffers, so semantics — byte-exact contents, zero-fill
// first-touch reads, page-granular footprint — are identical to the
// original all-map store.
type Store struct {
	// lastPN/lastPage cache the most recently resolved page; lastPage
	// is nil when nothing has been resolved yet.
	lastPN   Addr
	lastPage []byte

	// dir is the chunked page directory for page numbers <
	// dirCapPages: dir[pn>>chunkShift][pn&(chunkPages-1)] is the page,
	// nil when absent. Chunks are allocated on first touch of their
	// 1 MiB window, so a workload whose regions are scattered across
	// the range pays pointers only for the windows it actually uses —
	// a flat directory here costs a megabyte of GC-scanned pointers
	// per Store the moment one high page is touched.
	dir [][][]byte

	// far holds the sparse pages beyond the directory's range.
	far map[Addr][]byte

	// touched counts allocated pages across dir and far (Footprint).
	touched int

	// free recycles page buffers released by Reset; page-creating
	// paths draw from it (re-zeroed) before allocating, so a store
	// reused across campaign runs reaches a no-allocation steady state.
	free [][]byte
}

const pageShift = 12
const pageSize = 1 << pageShift

// chunkShift sizes a directory chunk: 256 pages = 1 MiB of address
// space per chunk, 2 KiB of pointers when touched.
const chunkShift = 8
const chunkPages = 1 << chunkShift

// dirCapPages bounds the directory: pages below this number (a
// 512 MiB address range) resolve with two slice indexes; pages above
// it live in the fallback map. The top level is at most
// dirCapPages/chunkPages entries (512 pointers, 4 KiB), grown by
// doubling.
const dirCapPages = 1 << 17

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{}
}

// Reset drops all contents: every byte reads as zero again and
// Footprint restarts at 0, exactly as if freshly constructed. The
// directory skeleton (top level and touched chunks) is kept, and page
// buffers are parked on a free list for newPage to recycle, so the
// first-touch semantics are preserved without first-touch allocations.
func (s *Store) Reset() {
	s.lastPN, s.lastPage = 0, nil
	for _, chunk := range s.dir {
		for i, p := range chunk {
			if p != nil {
				s.free = append(s.free, p)
				chunk[i] = nil
			}
		}
	}
	for pn, p := range s.far {
		s.free = append(s.free, p)
		delete(s.far, pn)
	}
	s.touched = 0
}

// newPage returns a zeroed page buffer, recycling a Reset-freed one
// when available.
func (s *Store) newPage() []byte {
	if n := len(s.free); n > 0 {
		p := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		clear(p)
		return p
	}
	return make([]byte, pageSize)
}

// page resolves the page containing a, allocating it when create is
// set, and returns the page (nil if absent and !create) plus a's
// offset within it.
func (s *Store) page(a Addr, create bool) ([]byte, int) {
	pn := a >> pageShift
	off := int(a & (pageSize - 1))
	if s.lastPage != nil && pn == s.lastPN {
		return s.lastPage, off
	}
	var p []byte
	if pn < dirCapPages {
		ci := pn >> chunkShift
		if ci < Addr(len(s.dir)) && s.dir[ci] != nil {
			p = s.dir[ci][pn&(chunkPages-1)]
		}
		if p == nil {
			if !create {
				return nil, off
			}
			p = s.newPageInDir(pn)
		}
	} else {
		p = s.far[pn]
		if p == nil {
			if !create {
				return nil, off
			}
			if s.far == nil {
				s.far = make(map[Addr][]byte)
			}
			p = s.newPage()
			s.far[pn] = p
			s.touched++
		}
	}
	s.lastPN, s.lastPage = pn, p
	return p, off
}

// newPageInDir allocates page pn, growing the top-level directory by
// doubling until pn's chunk is indexable and allocating the chunk on
// its first touch.
func (s *Store) newPageInDir(pn Addr) []byte {
	ci := pn >> chunkShift
	if ci >= Addr(len(s.dir)) {
		n := len(s.dir)
		if n == 0 {
			n = 8
		}
		for Addr(n) <= ci {
			n *= 2
		}
		grown := make([][][]byte, n)
		copy(grown, s.dir)
		s.dir = grown
	}
	chunk := s.dir[ci]
	if chunk == nil {
		chunk = make([][]byte, chunkPages)
		s.dir[ci] = chunk
	}
	p := s.newPage()
	chunk[pn&(chunkPages-1)] = p
	s.touched++
	return p
}

// ByteAt returns the byte at a.
func (s *Store) ByteAt(a Addr) byte {
	p, off := s.page(a, false)
	if p == nil {
		return 0
	}
	return p[off]
}

// SetByte sets the byte at a.
func (s *Store) SetByte(a Addr, v byte) {
	p, off := s.page(a, true)
	p[off] = v
}

// ReadBytes fills dst starting at a. The span may straddle any number
// of page boundaries; absent pages read as zero without being
// allocated.
func (s *Store) ReadBytes(a Addr, dst []byte) {
	for len(dst) > 0 {
		p, off := s.page(a, false)
		n := pageSize - off
		if n > len(dst) {
			n = len(dst)
		}
		if p == nil {
			clear(dst[:n])
		} else {
			copy(dst[:n], p[off:off+n])
		}
		a += Addr(n)
		dst = dst[n:]
	}
}

// WriteBytes writes src starting at a, honoring mask when non-nil
// (mask[i] false skips byte i). Per-byte masks are how VIPER's
// write-through merging is modelled. A page is only allocated when at
// least one byte is actually written into it, so fully masked-off
// spans leave the footprint unchanged.
func (s *Store) WriteBytes(a Addr, src []byte, mask []bool) {
	for len(src) > 0 {
		off := int(a & (pageSize - 1))
		n := pageSize - off
		if n > len(src) {
			n = len(src)
		}
		if mask == nil {
			p, off := s.page(a, true)
			copy(p[off:off+n], src[:n])
		} else {
			s.writeMasked(a, src[:n], mask[:n])
			mask = mask[n:]
		}
		a += Addr(n)
		src = src[n:]
	}
}

// writeMasked writes one within-page span under its mask, allocating
// the page only if some byte is enabled.
func (s *Store) writeMasked(a Addr, src []byte, mask []bool) {
	any := false
	for _, m := range mask {
		if m {
			any = true
			break
		}
	}
	if !any {
		return
	}
	p, off := s.page(a, true)
	for i := range src {
		if mask[i] {
			p[off+i] = src[i]
		}
	}
}

// ReadWord reads the little-endian 32-bit word at a.
func (s *Store) ReadWord(a Addr) uint32 {
	var b [WordSize]byte
	s.ReadBytes(a, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// WriteWord writes the little-endian 32-bit word v at a.
func (s *Store) WriteWord(a Addr, v uint32) {
	var b [WordSize]byte
	binary.LittleEndian.PutUint32(b[:], v)
	s.WriteBytes(a, b[:], nil)
}

// AtomicAdd performs a fetch-add of delta on the word at a and returns
// the old value.
func (s *Store) AtomicAdd(a Addr, delta uint32) uint32 {
	old := s.ReadWord(a)
	s.WriteWord(a, old+delta)
	return old
}

// Footprint returns the number of distinct pages touched, a cheap
// proxy for an application's memory footprint.
func (s *Store) Footprint() int { return s.touched }
