// Package mem defines the memory primitives shared by every level of
// the simulated hierarchy: addresses, operation kinds, request and
// response messages, the port interfaces components use to exchange
// them, and a sparse functional backing store.
//
// The vocabulary deliberately mirrors the paper's: loads and stores
// access data variables; atomics (fetch-add) access synchronization
// variables and may carry acquire and/or release semantics, which is
// exactly the DRF interface the tester exercises.
package mem

import (
	"encoding/binary"
	"fmt"
)

// Addr is a physical byte address.
type Addr uint64

// WordSize is the size in bytes of every tester variable and of all
// word-granularity helpers in this package.
const WordSize = 4

// LineAddr returns the address of the cache line containing a, for a
// power-of-two line size.
func LineAddr(a Addr, lineSize int) Addr {
	return a &^ Addr(lineSize-1)
}

// LineOffset returns a's byte offset within its cache line.
func LineOffset(a Addr, lineSize int) int {
	return int(a & Addr(lineSize-1))
}

// Op enumerates the request kinds a core (or tester) can issue.
type Op uint8

const (
	// OpLoad reads WordSize bytes.
	OpLoad Op = iota
	// OpStore writes WordSize bytes (write-through in VIPER).
	OpStore
	// OpAtomic is an atomic fetch-add of the request's Operand on a
	// WordSize word; the response carries the old value.
	OpAtomic
)

func (o Op) String() string {
	switch o {
	case OpLoad:
		return "LD"
	case OpStore:
		return "ST"
	case OpAtomic:
		return "AT"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Request is a memory request message. Requests flow core → L1 → L2 →
// directory/memory; the same struct is reused at every level with the
// identity fields preserved so failure reports can name the issuing
// thread, wavefront and episode (Table V in the paper).
type Request struct {
	ID   uint64
	Op   Op
	Addr Addr
	// Data holds the store value for OpStore.
	Data uint32
	// Operand is the fetch-add amount for OpAtomic.
	Operand uint32
	// Acquire gives the request load-acquire semantics: on completion
	// the issuing core's L1 is flash-invalidated so subsequent loads
	// cannot observe stale data.
	Acquire bool
	// Release gives the request store-release semantics: it is not
	// issued until all of the thread's prior write-throughs have
	// completed, making them globally visible first.
	Release bool

	// Identity of the issuer, for logs and failure reports.
	ThreadID  int
	WFID      int
	EpisodeID uint64
	CUID      int

	// IssueTick is stamped by the sequencer when the request enters the
	// memory system; the forward-progress checker scans it.
	IssueTick uint64
}

func (r *Request) String() string {
	return fmt.Sprintf("%s addr=%#x thr=%d wf=%d eps=%d", r.Op, uint64(r.Addr), r.ThreadID, r.WFID, r.EpisodeID)
}

// Response answers a Request. Data is the loaded word for OpLoad and
// the old (pre-add) value for OpAtomic.
type Response struct {
	Req  *Request
	Data uint32
	// Tick is the completion time.
	Tick uint64
}

// Requestor is the core-side endpoint: it receives responses for the
// requests it issued. Sequencers and CPU caches take a Requestor as
// their client; the testers and core models implement it.
//
// The *Response is only valid for the duration of the HandleResponse
// call: producers may reuse the backing struct for the next delivery.
// Implementations must copy any fields they need to retain.
type Requestor interface {
	HandleResponse(resp *Response)
}

// Store is a sparse functional backing memory. It is used both as the
// DRAM contents behind the protocol stack and as the reference memory
// the tester checks responses against. Uninitialized bytes read as
// zero.
//
// The store sits on every DRAM access and every tester verify, so page
// resolution is built to do zero map hashes on the common path: a
// single-entry last-page cache catches the run of accesses that stay
// within one page, a two-level chunked directory covers the low
// address range with two slice indexes, and only pages beyond the
// directory's reach fall back to a map. All three tiers hold the same
// page buffers, so semantics — byte-exact contents, zero-fill
// first-touch reads, page-granular footprint — are identical to the
// original all-map store.
type Store struct {
	// lastPN/lastPE cache the most recently resolved page entry; lastPE
	// is nil when nothing has been resolved yet.
	lastPN Addr
	lastPE *pageEntry

	// dir is the chunked page directory for page numbers <
	// dirCapPages: dir[pn>>chunkShift][pn&(chunkPages-1)] is the
	// entry, data==nil when absent. Chunks are allocated on first
	// touch of their 1 MiB window, so a workload whose regions are
	// scattered across the range pays entries only for the windows it
	// actually uses — a flat directory here costs a megabyte of
	// GC-scanned pointers per Store the moment one high page is
	// touched. Entry addresses are stable once a chunk exists, which
	// is what lets snapshots hold *pageEntry references.
	dir [][]pageEntry

	// far holds the sparse pages beyond the directory's range.
	far map[Addr]*pageEntry

	// pages lists every live entry in birth order, so Snapshot
	// enumerates O(touched) pages instead of scanning the directory.
	pages []*pageEntry

	// touched counts allocated pages across dir and far (Footprint).
	touched int

	// free recycles page buffers released by Reset; page-creating
	// paths draw from it (re-zeroed) before allocating, so a store
	// reused across campaign runs reaches a no-allocation steady state.
	free [][]byte

	// epoch is the current write epoch; an entry whose epoch lags it is
	// copied (COW) before its next write while a snapshot is armed.
	// snap is the armed snapshot the write path journals into; snapped
	// records that a snapshot was ever taken, after which Reset leaves
	// buffers to the GC instead of the free list (they may be shared
	// with a snapshot).
	epoch   uint64
	snap    *StoreSnapshot
	snapped bool
}

// pageEntry is one page slot: the buffer, the write epoch its contents
// belong to, and its page number (so restores can fix the far map).
type pageEntry struct {
	data  []byte
	epoch uint64
	pn    Addr
}

const pageShift = 12
const pageSize = 1 << pageShift

// chunkShift sizes a directory chunk: 256 pages = 1 MiB of address
// space per chunk, 2 KiB of pointers when touched.
const chunkShift = 8
const chunkPages = 1 << chunkShift

// dirCapPages bounds the directory: pages below this number (a
// 512 MiB address range) resolve with two slice indexes; pages above
// it live in the fallback map. The top level is at most
// dirCapPages/chunkPages entries (512 pointers, 4 KiB), grown by
// doubling.
const dirCapPages = 1 << 17

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{}
}

// Reset drops all contents: every byte reads as zero again and
// Footprint restarts at 0, exactly as if freshly constructed. The
// directory skeleton (top level and touched chunks) is kept, and page
// buffers are parked on a free list for newPage to recycle, so the
// first-touch semantics are preserved without first-touch allocations.
//
// Once a snapshot has ever been taken, released buffers may be shared
// with that snapshot, so they are left to the GC instead of the free
// list, and any armed snapshot is disarmed (a later Restore of it
// takes the full-reinstall path).
func (s *Store) Reset() {
	s.lastPN, s.lastPE = 0, nil
	for _, e := range s.pages {
		if !s.snapped {
			s.free = append(s.free, e.data)
		}
		if e.pn >= dirCapPages {
			delete(s.far, e.pn)
		}
		e.data = nil
		e.epoch = 0
	}
	s.pages = s.pages[:0]
	s.touched = 0
	s.snap = nil
}

// newPage returns a zeroed page buffer, recycling a Reset-freed one
// when available.
func (s *Store) newPage() []byte {
	if n := len(s.free); n > 0 {
		p := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		clear(p)
		return p
	}
	return make([]byte, pageSize)
}

// page resolves the page containing a for reading and returns its
// buffer (nil when absent) plus a's offset within it. Read resolution
// never allocates, never copies, and never touches epochs.
func (s *Store) page(a Addr) ([]byte, int) {
	pn := a >> pageShift
	off := int(a & (pageSize - 1))
	if s.lastPE != nil && pn == s.lastPN {
		return s.lastPE.data, off
	}
	e := s.lookup(pn)
	if e == nil {
		return nil, off
	}
	s.lastPN, s.lastPE = pn, e
	return e.data, off
}

// pageW resolves the page containing a for writing, allocating it on
// first touch and copying it out of an armed snapshot when its epoch
// lags the store's, and returns the (now privately owned) buffer plus
// a's offset within it.
func (s *Store) pageW(a Addr) ([]byte, int) {
	pn := a >> pageShift
	off := int(a & (pageSize - 1))
	if s.lastPE != nil && pn == s.lastPN {
		e := s.lastPE
		if e.epoch != s.epoch {
			s.cow(e)
		}
		return e.data, off
	}
	e := s.lookup(pn)
	if e == nil {
		e = s.birth(pn)
	} else if e.epoch != s.epoch {
		s.cow(e)
	}
	s.lastPN, s.lastPE = pn, e
	return e.data, off
}

// lookup finds page pn's live entry, or nil when the page is absent.
func (s *Store) lookup(pn Addr) *pageEntry {
	if pn < dirCapPages {
		ci := pn >> chunkShift
		if ci < Addr(len(s.dir)) && s.dir[ci] != nil {
			if e := &s.dir[ci][pn&(chunkPages-1)]; e.data != nil {
				return e
			}
		}
		return nil
	}
	return s.far[pn]
}

// birth allocates page pn: a directory slot (growing the top level by
// doubling and allocating the chunk on first touch) or a far-map
// entry. The new page is stamped with the current epoch and journaled
// into the armed snapshot so Restore can drop it again.
func (s *Store) birth(pn Addr) *pageEntry {
	var e *pageEntry
	if pn < dirCapPages {
		ci := pn >> chunkShift
		if ci >= Addr(len(s.dir)) {
			n := len(s.dir)
			if n == 0 {
				n = 8
			}
			for Addr(n) <= ci {
				n *= 2
			}
			grown := make([][]pageEntry, n)
			copy(grown, s.dir)
			s.dir = grown
		}
		if s.dir[ci] == nil {
			s.dir[ci] = make([]pageEntry, chunkPages)
		}
		e = &s.dir[ci][pn&(chunkPages-1)]
	} else {
		if s.far == nil {
			s.far = make(map[Addr]*pageEntry)
		}
		e = &pageEntry{}
		s.far[pn] = e
	}
	e.data = s.newPage()
	e.epoch = s.epoch
	e.pn = pn
	s.pages = append(s.pages, e)
	s.touched++
	if s.snap != nil {
		s.snap.journal = append(s.snap.journal, storeUndo{e: e, birth: true})
	}
	return e
}

// cow makes e's buffer privately writable at the current epoch. While
// a snapshot is armed, the old buffer (which the snapshot may share)
// is journaled and replaced by a fresh copy; otherwise only the epoch
// is brought current.
func (s *Store) cow(e *pageEntry) {
	if s.snap != nil {
		s.snap.journal = append(s.snap.journal, storeUndo{e: e, oldData: e.data, oldEpoch: e.epoch})
		buf := s.newPage()
		copy(buf, e.data)
		e.data = buf
	}
	e.epoch = s.epoch
}

// ByteAt returns the byte at a.
func (s *Store) ByteAt(a Addr) byte {
	p, off := s.page(a)
	if p == nil {
		return 0
	}
	return p[off]
}

// SetByte sets the byte at a.
func (s *Store) SetByte(a Addr, v byte) {
	p, off := s.pageW(a)
	p[off] = v
}

// ReadBytes fills dst starting at a. The span may straddle any number
// of page boundaries; absent pages read as zero without being
// allocated.
func (s *Store) ReadBytes(a Addr, dst []byte) {
	for len(dst) > 0 {
		p, off := s.page(a)
		n := pageSize - off
		if n > len(dst) {
			n = len(dst)
		}
		if p == nil {
			clear(dst[:n])
		} else {
			copy(dst[:n], p[off:off+n])
		}
		a += Addr(n)
		dst = dst[n:]
	}
}

// WriteBytes writes src starting at a, honoring mask when non-nil
// (mask[i] false skips byte i). Per-byte masks are how VIPER's
// write-through merging is modelled. A page is only allocated when at
// least one byte is actually written into it, so fully masked-off
// spans leave the footprint unchanged.
func (s *Store) WriteBytes(a Addr, src []byte, mask []bool) {
	for len(src) > 0 {
		off := int(a & (pageSize - 1))
		n := pageSize - off
		if n > len(src) {
			n = len(src)
		}
		if mask == nil {
			p, off := s.pageW(a)
			copy(p[off:off+n], src[:n])
		} else {
			s.writeMasked(a, src[:n], mask[:n])
			mask = mask[n:]
		}
		a += Addr(n)
		src = src[n:]
	}
}

// writeMasked writes one within-page span under its mask, allocating
// the page only if some byte is enabled.
func (s *Store) writeMasked(a Addr, src []byte, mask []bool) {
	any := false
	for _, m := range mask {
		if m {
			any = true
			break
		}
	}
	if !any {
		return
	}
	p, off := s.pageW(a)
	for i := range src {
		if mask[i] {
			p[off+i] = src[i]
		}
	}
}

// ReadWord reads the little-endian 32-bit word at a.
func (s *Store) ReadWord(a Addr) uint32 {
	var b [WordSize]byte
	s.ReadBytes(a, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// WriteWord writes the little-endian 32-bit word v at a.
func (s *Store) WriteWord(a Addr, v uint32) {
	var b [WordSize]byte
	binary.LittleEndian.PutUint32(b[:], v)
	s.WriteBytes(a, b[:], nil)
}

// AtomicAdd performs a fetch-add of delta on the word at a and returns
// the old value.
func (s *Store) AtomicAdd(a Addr, delta uint32) uint32 {
	old := s.ReadWord(a)
	s.WriteWord(a, old+delta)
	return old
}

// Footprint returns the number of distinct pages touched, a cheap
// proxy for an application's memory footprint.
func (s *Store) Footprint() int { return s.touched }

// StoreSnapshot captures a Store's contents at one instant. Taking one
// is O(touched pages) in pointers — no page data is copied up front;
// instead the store's write path copies a page out the first time it
// is written after the snapshot (copy-on-write), journaling the
// original buffer here so Restore of the most recent snapshot is
// O(pages touched since the snapshot).
type StoreSnapshot struct {
	// entries records every live page at snapshot time with the buffer
	// it then held. The buffers are shared with the store but COW
	// guarantees they are never mutated afterwards.
	entries []storeSave
	// journal records, in order, each post-snapshot page birth and
	// first-write copy while this snapshot is the armed one; Restore
	// undoes it in reverse.
	journal []storeUndo
	touched int
}

type storeSave struct {
	e    *pageEntry
	data []byte
}

type storeUndo struct {
	e        *pageEntry
	oldData  []byte // nil for births
	oldEpoch uint64
	birth    bool
}

// Snapshot captures the store's current contents and arms
// copy-on-write against them. The returned snapshot stays valid
// indefinitely (across later snapshots, restores, and resets); only
// the most recently armed snapshot gets the cheap journal-undo
// Restore path.
func (s *Store) Snapshot() *StoreSnapshot {
	snap := &StoreSnapshot{
		entries: make([]storeSave, 0, len(s.pages)),
		touched: s.touched,
	}
	for _, e := range s.pages {
		snap.entries = append(snap.entries, storeSave{e: e, data: e.data})
	}
	s.snap = snap
	s.snapped = true
	s.epoch++ // every live entry now lags → first write per page COWs
	return snap
}

// Restore returns the store to the exact contents captured by snap.
// Restoring the most recently armed snapshot undoes its journal —
// O(pages touched since Snapshot). Restoring an older snapshot (or
// one from before a Reset) reinstalls its page set outright and
// re-arms it, still O(touched pages) with no data copying. Either
// way snap remains valid and can be restored again.
func (s *Store) Restore(snap *StoreSnapshot) {
	s.lastPN, s.lastPE = 0, nil
	if s.snap == snap {
		for i := len(snap.journal) - 1; i >= 0; i-- {
			u := snap.journal[i]
			if u.birth {
				if u.e.pn >= dirCapPages {
					delete(s.far, u.e.pn)
				}
				s.free = append(s.free, u.e.data)
				u.e.data = nil
				u.e.epoch = 0
			} else {
				// The post-copy buffer is private to the store — no
				// snapshot references it — so it can be recycled.
				s.free = append(s.free, u.e.data)
				u.e.data = u.oldData
				u.e.epoch = u.oldEpoch
			}
		}
		snap.journal = snap.journal[:0]
		s.pages = s.pages[:len(snap.entries)]
		s.touched = snap.touched
		return
	}
	// Full reinstall: drop the current page set, then re-link the
	// snapshot's entries with their saved buffers. Current buffers may
	// be shared with some snapshot, so they go to the GC, not the free
	// list. Entry epochs are zeroed below the new armed epoch so every
	// future write copies before touching a snapshot-owned buffer.
	for _, e := range s.pages {
		if e.pn >= dirCapPages {
			delete(s.far, e.pn)
		}
		e.data = nil
		e.epoch = 0
	}
	s.pages = s.pages[:0]
	for _, sv := range snap.entries {
		e := sv.e
		e.data = sv.data
		e.epoch = 0
		if e.pn >= dirCapPages {
			if s.far == nil {
				s.far = make(map[Addr]*pageEntry)
			}
			s.far[e.pn] = e
		}
		s.pages = append(s.pages, e)
	}
	s.touched = snap.touched
	snap.journal = snap.journal[:0]
	s.snap = snap
	s.epoch++
}
