// Package mem defines the memory primitives shared by every level of
// the simulated hierarchy: addresses, operation kinds, request and
// response messages, the port interfaces components use to exchange
// them, and a sparse functional backing store.
//
// The vocabulary deliberately mirrors the paper's: loads and stores
// access data variables; atomics (fetch-add) access synchronization
// variables and may carry acquire and/or release semantics, which is
// exactly the DRF interface the tester exercises.
package mem

import (
	"encoding/binary"
	"fmt"
)

// Addr is a physical byte address.
type Addr uint64

// WordSize is the size in bytes of every tester variable and of all
// word-granularity helpers in this package.
const WordSize = 4

// LineAddr returns the address of the cache line containing a, for a
// power-of-two line size.
func LineAddr(a Addr, lineSize int) Addr {
	return a &^ Addr(lineSize-1)
}

// LineOffset returns a's byte offset within its cache line.
func LineOffset(a Addr, lineSize int) int {
	return int(a & Addr(lineSize-1))
}

// Op enumerates the request kinds a core (or tester) can issue.
type Op uint8

const (
	// OpLoad reads WordSize bytes.
	OpLoad Op = iota
	// OpStore writes WordSize bytes (write-through in VIPER).
	OpStore
	// OpAtomic is an atomic fetch-add of the request's Operand on a
	// WordSize word; the response carries the old value.
	OpAtomic
)

func (o Op) String() string {
	switch o {
	case OpLoad:
		return "LD"
	case OpStore:
		return "ST"
	case OpAtomic:
		return "AT"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Request is a memory request message. Requests flow core → L1 → L2 →
// directory/memory; the same struct is reused at every level with the
// identity fields preserved so failure reports can name the issuing
// thread, wavefront and episode (Table V in the paper).
type Request struct {
	ID   uint64
	Op   Op
	Addr Addr
	// Data holds the store value for OpStore.
	Data uint32
	// Operand is the fetch-add amount for OpAtomic.
	Operand uint32
	// Acquire gives the request load-acquire semantics: on completion
	// the issuing core's L1 is flash-invalidated so subsequent loads
	// cannot observe stale data.
	Acquire bool
	// Release gives the request store-release semantics: it is not
	// issued until all of the thread's prior write-throughs have
	// completed, making them globally visible first.
	Release bool

	// Identity of the issuer, for logs and failure reports.
	ThreadID  int
	WFID      int
	EpisodeID uint64
	CUID      int

	// IssueTick is stamped by the sequencer when the request enters the
	// memory system; the forward-progress checker scans it.
	IssueTick uint64
}

func (r *Request) String() string {
	return fmt.Sprintf("%s addr=%#x thr=%d wf=%d eps=%d", r.Op, uint64(r.Addr), r.ThreadID, r.WFID, r.EpisodeID)
}

// Response answers a Request. Data is the loaded word for OpLoad and
// the old (pre-add) value for OpAtomic.
type Response struct {
	Req  *Request
	Data uint32
	// Tick is the completion time.
	Tick uint64
}

// Requestor is the core-side endpoint: it receives responses for the
// requests it issued. Sequencers and CPU caches take a Requestor as
// their client; the testers and core models implement it.
//
// The *Response is only valid for the duration of the HandleResponse
// call: producers may reuse the backing struct for the next delivery.
// Implementations must copy any fields they need to retain.
type Requestor interface {
	HandleResponse(resp *Response)
}

// Store is a sparse functional backing memory. It is used both as the
// DRAM contents behind the protocol stack and as the reference memory
// the tester checks responses against. Uninitialized bytes read as
// zero.
type Store struct {
	pages map[Addr][]byte
}

const pageShift = 12
const pageSize = 1 << pageShift

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{pages: make(map[Addr][]byte)}
}

func (s *Store) page(a Addr, create bool) ([]byte, int) {
	pn := a >> pageShift
	p, ok := s.pages[pn]
	if !ok {
		if !create {
			return nil, 0
		}
		p = make([]byte, pageSize)
		s.pages[pn] = p
	}
	return p, int(a & (pageSize - 1))
}

// ByteAt returns the byte at a.
func (s *Store) ByteAt(a Addr) byte {
	p, off := s.page(a, false)
	if p == nil {
		return 0
	}
	return p[off]
}

// SetByte sets the byte at a.
func (s *Store) SetByte(a Addr, v byte) {
	p, off := s.page(a, true)
	p[off] = v
}

// ReadBytes fills dst starting at a.
func (s *Store) ReadBytes(a Addr, dst []byte) {
	for i := range dst {
		dst[i] = s.ByteAt(a + Addr(i))
	}
}

// WriteBytes writes src starting at a, honoring mask when non-nil
// (mask[i] false skips byte i). Per-byte masks are how VIPER's
// write-through merging is modelled.
func (s *Store) WriteBytes(a Addr, src []byte, mask []bool) {
	for i := range src {
		if mask != nil && !mask[i] {
			continue
		}
		s.SetByte(a+Addr(i), src[i])
	}
}

// ReadWord reads the little-endian 32-bit word at a.
func (s *Store) ReadWord(a Addr) uint32 {
	var b [WordSize]byte
	s.ReadBytes(a, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// WriteWord writes the little-endian 32-bit word v at a.
func (s *Store) WriteWord(a Addr, v uint32) {
	var b [WordSize]byte
	binary.LittleEndian.PutUint32(b[:], v)
	s.WriteBytes(a, b[:], nil)
}

// AtomicAdd performs a fetch-add of delta on the word at a and returns
// the old value.
func (s *Store) AtomicAdd(a Addr, delta uint32) uint32 {
	old := s.ReadWord(a)
	s.WriteWord(a, old+delta)
	return old
}

// Footprint returns the number of distinct pages touched, a cheap
// proxy for an application's memory footprint.
func (s *Store) Footprint() int { return len(s.pages) }
