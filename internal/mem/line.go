package mem

import "fmt"

// Line is a refcounted cache-line payload handle: the unit of data
// movement through the simulated memory system. Instead of copying a
// line's bytes (and dirty mask) at every hop — sequencer to L1, L1 to
// network message, message to L2, L2 to memory controller — components
// pass the same *Line and adjust its reference count, copying only
// when a holder actually needs to mutate a payload that others can
// still observe (Writable's copy-on-write).
//
// Ownership contract:
//
//   - Get/GetMasked return a line the caller owns (refcount 1).
//   - Passing a line to another component transfers that reference
//     unless the API says otherwise; a holder that keeps the line past
//     the call must Retain it.
//   - Every reference is balanced by exactly one Release; the last
//     Release recycles the line into its pool and bumps its epoch.
//   - A holder may write l.Data / l.Mask() only through the line
//     returned by Writable(), which is an in-place no-op for a sole
//     owner and a pool-backed copy when the payload is shared.
//
// The epoch is the use-after-release detector: a holder records
// l.Epoch() when it stashes a reference (e.g. a message payload) and
// checks it on consumption — if the line was recycled underneath (a
// refcount accounting bug), the epochs disagree. The simulation kernel
// is single-threaded, so refcounts are plain ints and recycled data
// buffers are handed out as-is: contents are deterministic, and every
// consumer either fully overwrites the buffer (fills) or honors the
// byte mask (merges), so residual bytes are never observed.
type Line struct {
	// Data is the payload, sized by the Get call. Write only via
	// Writable (see the ownership contract).
	Data []byte

	// mask is the lazily attached per-byte dirty mask; masked gates it
	// so a recycled mask buffer can stay attached across unmasked uses.
	mask   []bool
	masked bool

	refs  int
	epoch uint64
	pool  *LinePool

	// idx is the line's slot in the pool's registry.
	idx int
}

// Mask returns the per-byte dirty mask, or nil when the line carries
// none (all bytes valid). True marks a byte as present/dirty.
func (l *Line) Mask() []bool {
	if !l.masked {
		return nil
	}
	return l.mask
}

// Refs returns the current reference count.
func (l *Line) Refs() int { return l.refs }

// Epoch returns the line's recycle epoch. It changes exactly when the
// line is recycled into its pool, so a stashed (line, epoch) pair
// detects use-after-release on consumption.
func (l *Line) Epoch() uint64 { return l.epoch }

// Retain adds a reference and returns l for call-site convenience.
func (l *Line) Retain() *Line {
	l.refs++
	return l
}

// Release drops one reference; the last release recycles the line into
// its pool (bumping the epoch so stale handles are detectable).
func (l *Line) Release() {
	l.refs--
	if l.refs > 0 {
		return
	}
	if l.refs < 0 {
		panic("mem: Line over-released")
	}
	l.epoch++
	l.masked = false
	l.pool.free = append(l.pool.free, l)
}

// Writable returns a line whose payload the caller may mutate: l
// itself when the caller is the sole owner, or a pool-backed copy
// (data and mask) when the payload is shared — the caller's reference
// moves to the copy and the other holders keep the original intact.
// Callers must replace their stored reference with the result.
func (l *Line) Writable() *Line {
	if l.refs == 1 {
		return l
	}
	nl := l.pool.Get(len(l.Data))
	copy(nl.Data, l.Data)
	if l.masked {
		copy(nl.ensureMask(), l.mask)
	}
	l.refs--
	return nl
}

// ensureMask attaches (or re-activates) the mask buffer without
// zeroing; callers that need a clean mask use GetMasked.
func (l *Line) ensureMask() []bool {
	n := len(l.Data)
	if cap(l.mask) < n {
		l.mask = make([]bool, n)
	}
	l.mask = l.mask[:n]
	l.masked = true
	return l.mask
}

// LinePool recycles Line handles. One pool serves a whole simulated
// system; Release routes each line back to its owning pool, so handles
// may cross component boundaries freely.
//
// For mid-run checkpointing the pool mirrors the message-pool
// doctrine: EnableTracking registers every line handed out afterwards,
// Snapshot captures each registered line's contents and refcount, and
// Restore writes them back into the same Line objects — holders
// restored by identity (messages, TBEs, queued requests) then agree
// with the payloads they reference.
type LinePool struct {
	lineSize int
	free     []*Line

	// all registers every line ever allocated, in birth order: Reset
	// force-reclaims through it (holders drop references without
	// releasing when a run is torn down), and Snapshot/Restore capture
	// contents through it once tracking is enabled.
	all   []*Line
	track bool

	gets, allocs uint64
}

// NewLinePool returns a pool whose fresh allocations default to
// lineSize bytes of capacity (Get may ask for other sizes).
func NewLinePool(lineSize int) *LinePool {
	return &LinePool{lineSize: lineSize}
}

// Get returns a line with n payload bytes, owned by the caller
// (refcount 1) and carrying no mask. The data is NOT zeroed: recycled
// contents are deterministic (single-threaded kernel) and consumers
// either overwrite the buffer or honor the mask.
func (p *LinePool) Get(n int) *Line {
	p.gets++
	for i := len(p.free) - 1; i >= 0; i-- {
		l := p.free[i]
		if cap(l.Data) >= n {
			p.free[i] = p.free[len(p.free)-1]
			p.free[len(p.free)-1] = nil
			p.free = p.free[:len(p.free)-1]
			l.Data = l.Data[:n]
			l.refs = 1
			return l
		}
	}
	p.allocs++
	c := n
	if c < p.lineSize {
		c = p.lineSize
	}
	l := &Line{Data: make([]byte, n, c), refs: 1, pool: p, idx: len(p.all)}
	p.all = append(p.all, l)
	return l
}

// GetMasked returns a line with n payload bytes and a zeroed per-byte
// mask attached.
func (p *LinePool) GetMasked(n int) *Line {
	l := p.Get(n)
	m := l.ensureMask()
	clear(m)
	return l
}

// Stats returns the pool's Get and allocation-fallback counters: a
// steady state recycles every line, so allocs stops growing.
func (p *LinePool) Stats() (gets, allocs uint64) { return p.gets, p.allocs }

// Reset force-reclaims every line: holders being torn down drop their
// references without releasing (their state is recycled wholesale),
// so the pool re-parks the entire registry on the free stack in birth
// order. Only valid when the owning kernel has been reset — no event
// may still deliver a payload.
func (p *LinePool) Reset() {
	p.free = p.free[:0]
	for _, l := range p.all {
		l.refs = 0
		l.masked = false
		p.free = append(p.free, l)
	}
}

// EnableTracking arms the pool for mid-run snapshots: Snapshot/Restore
// become valid and capture every registered line's contents. Tracking
// stays on for the pool's lifetime.
func (p *LinePool) EnableTracking() { p.track = true }

// lineSave captures one registered line's full state.
type lineSave struct {
	data   []byte
	mask   []bool
	masked bool
	refs   int
	epoch  uint64
}

// LinePoolSnapshot captures every registered line's contents plus the
// free-stack order (which determines future Get results, so replay
// bit-identity depends on it).
type LinePoolSnapshot struct {
	lines []lineSave
	free  []int32
}

// Snapshot captures the registered lines. Only valid with tracking on.
func (p *LinePool) Snapshot() *LinePoolSnapshot {
	if !p.track {
		panic("mem: LinePool.Snapshot without EnableTracking")
	}
	s := &LinePoolSnapshot{lines: make([]lineSave, len(p.all))}
	for i, l := range p.all {
		sv := lineSave{
			data:   append([]byte(nil), l.Data...),
			masked: l.masked,
			refs:   l.refs,
			epoch:  l.epoch,
		}
		if l.masked {
			sv.mask = append([]bool(nil), l.mask...)
		}
		s.lines[i] = sv
	}
	s.free = make([]int32, len(p.free))
	for i, l := range p.free {
		s.free[i] = int32(l.idx)
	}
	return s
}

// Restore writes the captured state back into the same Line objects.
// Lines allocated after the snapshot are zeroed and parked at the
// bottom of the free stack (below the captured order, which must
// replay verbatim); a Get that would have been an allocation at
// snapshot time pops one of them instead — same zeroed contents.
func (p *LinePool) Restore(s *LinePoolSnapshot) {
	n := len(s.lines)
	for i, l := range p.all {
		if i < n {
			sv := &s.lines[i]
			l.Data = l.Data[:len(sv.data)]
			copy(l.Data, sv.data)
			l.masked = sv.masked
			if sv.masked {
				if cap(l.mask) < len(sv.mask) {
					l.mask = make([]bool, len(sv.mask))
				}
				l.mask = l.mask[:len(sv.mask)]
				copy(l.mask, sv.mask)
			}
			l.refs = sv.refs
			l.epoch = sv.epoch
			continue
		}
		l.Data = l.Data[:cap(l.Data)]
		clear(l.Data)
		clear(l.mask)
		l.masked = false
		l.refs = 0
		l.epoch = 0
	}
	p.free = p.free[:0]
	for _, l := range p.all[n:] {
		p.free = append(p.free, l)
	}
	for _, idx := range s.free {
		p.free = append(p.free, p.all[idx])
	}
}

// AuditLive panics unless exactly want lines are live (refcount > 0)
// among the tracked registry — a refcount-leak tripwire for tests.
// Only meaningful with tracking on.
func (p *LinePool) AuditLive(want int) {
	live := 0
	for _, l := range p.all {
		if l.refs > 0 {
			live++
		}
	}
	if live != want {
		panic(fmt.Sprintf("mem: %d live lines, want %d", live, want))
	}
}
