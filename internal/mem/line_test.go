package mem

import "testing"

func TestLineRefcountLifecycle(t *testing.T) {
	p := NewLinePool(64)
	l := p.Get(64)
	if l.Refs() != 1 {
		t.Fatalf("fresh line refs=%d", l.Refs())
	}
	if l.Mask() != nil {
		t.Fatal("fresh Get carries a mask")
	}
	l.Retain()
	if l.Refs() != 2 {
		t.Fatalf("after Retain refs=%d", l.Refs())
	}
	e := l.Epoch()
	l.Release()
	if l.Refs() != 1 || l.Epoch() != e {
		t.Fatal("non-final Release recycled the line")
	}
	l.Release()
	if l.Epoch() != e+1 {
		t.Fatal("final Release did not bump the epoch")
	}
	if g, a := p.Stats(); g != 1 || a != 1 {
		t.Fatalf("gets=%d allocs=%d", g, a)
	}
	// The recycled line comes back from the free stack, not a fresh
	// allocation.
	l2 := p.Get(64)
	if l2 != l {
		t.Fatal("pool did not recycle the released line")
	}
	if _, a := p.Stats(); a != 1 {
		t.Fatal("recycle counted as an allocation")
	}
}

func TestLineOverReleasePanics(t *testing.T) {
	p := NewLinePool(8)
	l := p.Get(8)
	l.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	l.Release()
}

func TestWritableCopiesExactlyWhenShared(t *testing.T) {
	p := NewLinePool(16)
	l := p.GetMasked(16)
	l.Data[0], l.Mask()[0] = 7, true

	// Sole owner: in place.
	if l.Writable() != l {
		t.Fatal("sole-owner Writable copied")
	}

	// Shared: copy; the caller's reference moves to the copy.
	l.Retain()
	w := l.Writable()
	if w == l {
		t.Fatal("shared Writable aliased")
	}
	if l.Refs() != 1 || w.Refs() != 1 {
		t.Fatalf("refs after COW: orig=%d copy=%d", l.Refs(), w.Refs())
	}
	if w.Data[0] != 7 || !w.Mask()[0] {
		t.Fatal("COW did not copy data+mask")
	}
	w.Data[0] = 9
	if l.Data[0] != 7 {
		t.Fatal("COW mutation leaked into the shared original")
	}
	w.Release()
	l.Release()
}

func TestMaskDetachesOnRecycle(t *testing.T) {
	p := NewLinePool(8)
	l := p.GetMasked(8)
	l.Mask()[3] = true
	l.Release()
	// Unmasked reuse of the same buffer must not expose the stale mask.
	l2 := p.Get(8)
	if l2 != l {
		t.Fatal("expected recycle")
	}
	if l2.Mask() != nil {
		t.Fatal("recycled line kept its mask attached")
	}
	// Masked reuse gets a zeroed mask even though the buffer is dirty.
	l2.Release()
	l3 := p.GetMasked(8)
	if l3.Mask()[3] {
		t.Fatal("GetMasked returned a dirty mask")
	}
	l3.Release()
}

func TestPoolResetForceReclaims(t *testing.T) {
	p := NewLinePool(8)
	a, b := p.Get(8), p.Get(8)
	b.Retain() // simulated holder that will be torn down without releasing
	p.Reset()
	if a.Refs() != 0 || b.Refs() != 0 {
		t.Fatal("Reset left references standing")
	}
	// Every line is reusable again; no allocation needed for the next 2.
	_, allocs := p.Stats()
	c, d := p.Get(8), p.Get(8)
	if _, a2 := p.Stats(); a2 != allocs {
		t.Fatal("Reset lost track of pooled lines")
	}
	if c == d {
		t.Fatal("pool handed out the same line twice")
	}
}

// TestSnapshotRestoreIdentity pins the checkpoint doctrine: Restore
// writes contents back into the SAME Line objects, so holders restored
// by identity still agree with their payloads, and the free order
// replays verbatim.
func TestSnapshotRestoreIdentity(t *testing.T) {
	p := NewLinePool(4)
	p.EnableTracking()
	a := p.Get(4)
	a.Data[0] = 1
	b := p.GetMasked(4)
	b.Data[1], b.Mask()[1] = 2, true
	b.Release() // parked on the free stack at snapshot time

	s := p.Snapshot()

	// Diverge: mutate a, recycle it, allocate a brand-new line.
	a.Data[0] = 99
	a.Release()
	c := p.Get(4) // pops one of the parked lines
	c.Data[2] = 3
	extra := p.Get(4) // forces a fresh allocation after the snapshot
	_ = extra

	p.Restore(s)
	if a.Data[0] != 1 || a.Refs() != 1 {
		t.Fatalf("restore missed line a: data=%d refs=%d", a.Data[0], a.Refs())
	}
	if b.Refs() != 0 {
		t.Fatal("restore resurrected the parked line")
	}
	// Replay the same Get: it must return the same object with the
	// same contents as at snapshot time (b was on the free stack).
	g := p.Get(4)
	if g != b {
		t.Fatal("free order did not replay: Get returned a different line")
	}
	if g.Mask() != nil {
		t.Fatal("replayed Get resurrected the stale mask")
	}
}

func TestAuditLive(t *testing.T) {
	p := NewLinePool(4)
	p.EnableTracking()
	l := p.Get(4)
	p.AuditLive(1)
	l.Release()
	p.AuditLive(0)
	defer func() {
		if recover() == nil {
			t.Fatal("AuditLive missed a leak")
		}
	}()
	p.Get(4)
	p.AuditLive(0)
}

// TestGetSteadyStateZeroAlloc pins the pool's whole point: after
// warmup, Get/Release cycles allocate nothing.
func TestGetSteadyStateZeroAlloc(t *testing.T) {
	p := NewLinePool(64)
	warm := make([]*Line, 8)
	for i := range warm {
		warm[i] = p.GetMasked(64)
	}
	for _, l := range warm {
		l.Release()
	}
	n := testing.AllocsPerRun(200, func() {
		a := p.Get(64)
		b := p.GetMasked(64)
		c := b.Writable() // sole owner: no copy
		c.Release()
		a.Release()
	})
	if n != 0 {
		t.Fatalf("steady-state Get/Release allocates %.1f/op", n)
	}
}
