package mem

import (
	"testing"

	"drftest/internal/audit"
)

// TestSnapshotFieldAudit pins the field sets of the snapshotted
// structs so a new field cannot silently escape the COW
// Snapshot/Restore/Reset machinery (see package audit).
func TestSnapshotFieldAudit(t *testing.T) {
	audit.Fields(t, Store{}, map[string]string{
		"lastPN":  "cache: resolution cache, invalidated by Reset/Restore",
		"lastPE":  "cache: resolution cache, invalidated by Reset/Restore",
		"dir":     "state: chunked page directory; entries captured per touched page",
		"far":     "state: sparse overflow pages; captured per touched page",
		"pages":   "state: live-entry list, rebuilt by Restore, cleared by Reset",
		"touched": "state: live-page count, recomputed by Reset/Restore",
		"free":    "pool: recycled buffers; disabled once snapped (buffers may be shared)",
		"epoch":   "snapshot bookkeeping: COW write epoch",
		"snap":    "snapshot bookkeeping: armed snapshot, Reset disarms",
		"snapped": "snapshot bookkeeping: ever-snapshotted latch gating the free list",
	})
	audit.Fields(t, pageEntry{}, map[string]string{
		"data":  "state: page bytes, COW-copied on first armed write per epoch",
		"epoch": "snapshot bookkeeping: last-copied epoch",
		"pn":    "state: page number, fixed for the entry's lifetime",
	})
}

// TestLinePoolFieldAudit pins the field sets of the payload slab pool
// (the zero-copy data plane's allocator). Line matters doubly: its
// handles are held by identity across the whole data plane (messages,
// wt buffers, controller queues), so a field missed by Restore would
// desynchronize every holder at once.
func TestLinePoolFieldAudit(t *testing.T) {
	audit.Fields(t, Line{}, map[string]string{
		"Data":   "state: contents copied into/out of lineSave (the buffer itself is retained by identity)",
		"mask":   "state: copied via lineSave when masked; detached (masked=false) on recycle, buffer retained",
		"masked": "state: copied via lineSave",
		"refs":   "state: copied via lineSave; Reset force-zeroes it",
		"epoch":  "state: copied via lineSave (use-after-release epoch checks replay identically)",
		"pool":   "config: owning pool back-pointer, fixed at allocation",
		"idx":    "config: registry slot, fixed at allocation",
	})
	audit.Fields(t, LinePool{}, map[string]string{
		"lineSize": "config: fixed at construction",
		"free":     "state: free-stack order via the snapshot's free indices (Get-order replay depends on it)",
		"all":      "config: birth-order registry; Restore writes into the SAME Line objects, extras are parked",
		"track":    "config: armed by EnableTracking, survives Reset/Restore",
		"gets":     "stat: monotone counter, excluded from snapshots (Stats is diagnostic only)",
		"allocs":   "stat: monotone counter, excluded from snapshots (alloc pins read deltas within one phase)",
	})
	audit.Fields(t, lineSave{}, map[string]string{
		"data":   "save: deep copy of Line.Data",
		"mask":   "save: deep copy of the attached mask",
		"masked": "save: value copy",
		"refs":   "save: value copy",
		"epoch":  "save: value copy",
	})
}
