package mem

import (
	"testing"

	"drftest/internal/audit"
)

// TestSnapshotFieldAudit pins the field sets of the snapshotted
// structs so a new field cannot silently escape the COW
// Snapshot/Restore/Reset machinery (see package audit).
func TestSnapshotFieldAudit(t *testing.T) {
	audit.Fields(t, Store{}, map[string]string{
		"lastPN":  "cache: resolution cache, invalidated by Reset/Restore",
		"lastPE":  "cache: resolution cache, invalidated by Reset/Restore",
		"dir":     "state: chunked page directory; entries captured per touched page",
		"far":     "state: sparse overflow pages; captured per touched page",
		"pages":   "state: live-entry list, rebuilt by Restore, cleared by Reset",
		"touched": "state: live-page count, recomputed by Reset/Restore",
		"free":    "pool: recycled buffers; disabled once snapped (buffers may be shared)",
		"epoch":   "snapshot bookkeeping: COW write epoch",
		"snap":    "snapshot bookkeeping: armed snapshot, Reset disarms",
		"snapped": "snapshot bookkeeping: ever-snapshotted latch gating the free list",
	})
	audit.Fields(t, pageEntry{}, map[string]string{
		"data":  "state: page bytes, COW-copied on first armed write per epoch",
		"epoch": "snapshot bookkeeping: last-copied epoch",
		"pn":    "state: page number, fixed for the entry's lifetime",
	})
}
