package mem

import (
	"testing"
	"testing/quick"
)

func TestLineAddrAndOffset(t *testing.T) {
	err := quick.Check(func(aRaw uint64, szExp uint8) bool {
		lineSize := 1 << (4 + szExp%6) // 16..512
		a := Addr(aRaw)
		line := LineAddr(a, lineSize)
		off := LineOffset(a, lineSize)
		return line%Addr(lineSize) == 0 &&
			off >= 0 && off < lineSize &&
			line+Addr(off) == a
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestStoreZeroFill(t *testing.T) {
	s := NewStore()
	if s.ReadWord(0x1234) != 0 {
		t.Fatal("fresh store not zero-filled")
	}
}

func TestStoreWordRoundTrip(t *testing.T) {
	s := NewStore()
	err := quick.Check(func(aRaw uint32, v uint32) bool {
		a := Addr(aRaw) &^ 3
		s.WriteWord(a, v)
		return s.ReadWord(a) == v
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestStoreMaskedWrite(t *testing.T) {
	s := NewStore()
	base := Addr(0x100)
	s.WriteBytes(base, []byte{1, 2, 3, 4}, nil)
	s.WriteBytes(base, []byte{9, 9, 9, 9}, []bool{false, true, false, true})
	var got [4]byte
	s.ReadBytes(base, got[:])
	if got != [4]byte{1, 9, 3, 9} {
		t.Fatalf("masked write produced %v", got)
	}
}

func TestStoreAtomicAdd(t *testing.T) {
	s := NewStore()
	a := Addr(0x40)
	for i := uint32(0); i < 10; i++ {
		if old := s.AtomicAdd(a, 3); old != i*3 {
			t.Fatalf("AtomicAdd returned %d, want %d", old, i*3)
		}
	}
	if s.ReadWord(a) != 30 {
		t.Fatalf("final value %d, want 30", s.ReadWord(a))
	}
}

func TestStoreCrossPage(t *testing.T) {
	s := NewStore()
	a := Addr(pageSize - 2) // straddles a page boundary
	s.WriteWord(a, 0xAABBCCDD)
	if s.ReadWord(a) != 0xAABBCCDD {
		t.Fatal("cross-page word write corrupted")
	}
	if s.Footprint() != 2 {
		t.Fatalf("footprint %d, want 2 pages", s.Footprint())
	}
}

func TestOpStrings(t *testing.T) {
	for op, want := range map[Op]string{OpLoad: "LD", OpStore: "ST", OpAtomic: "AT"} {
		if op.String() != want {
			t.Errorf("%v.String() = %q", uint8(op), op.String())
		}
	}
}

func TestRequestString(t *testing.T) {
	r := &Request{Op: OpStore, Addr: 0x52860, ThreadID: 12, WFID: 2, EpisodeID: 652}
	want := "ST addr=0x52860 thr=12 wf=2 eps=652"
	if r.String() != want {
		t.Fatalf("Request.String() = %q, want %q", r.String(), want)
	}
}

// TestStoreStraddlingPageBoundarySpans exercises multi-page ReadBytes
// and WriteBytes spans, masked and unmasked, across the directory's
// page seams.
func TestStoreStraddlingPageBoundarySpans(t *testing.T) {
	s := NewStore()
	base := Addr(3*pageSize - 5) // span covers pages 2, 3 and 4
	src := make([]byte, 2*pageSize+10)
	for i := range src {
		src[i] = byte(i*7 + 1)
	}
	s.WriteBytes(base, src, nil)
	got := make([]byte, len(src))
	s.ReadBytes(base, got)
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("byte %d: got %d want %d", i, got[i], src[i])
		}
	}
	if s.Footprint() != 4 { // [3P-5, 5P+5) touches pages 2, 3, 4 and 5
		t.Fatalf("footprint %d, want 4 pages", s.Footprint())
	}

	// A masked write straddling the same boundary only lands where the
	// mask allows.
	mask := make([]bool, len(src))
	repl := make([]byte, len(src))
	for i := range repl {
		repl[i] = 0xEE
		mask[i] = i%3 == 0
	}
	s.WriteBytes(base, repl, mask)
	s.ReadBytes(base, got)
	for i := range src {
		want := src[i]
		if i%3 == 0 {
			want = 0xEE
		}
		if got[i] != want {
			t.Fatalf("masked byte %d: got %d want %d", i, got[i], want)
		}
	}
}

// TestStoreFirstTouchReadsAllocateNothing pins the zero-fill contract:
// reads of untouched memory return zeroes and never create pages, in
// every tier (directory range, far range, page-straddling spans).
func TestStoreFirstTouchReadsAllocateNothing(t *testing.T) {
	s := NewStore()
	farAddr := Addr(dirCapPages+5) << pageShift
	buf := make([]byte, 3*pageSize)
	for _, a := range []Addr{0, pageSize - 2, farAddr, farAddr + pageSize - 2} {
		s.ReadBytes(a, buf)
		for i, b := range buf {
			if b != 0 {
				t.Fatalf("untouched read at %#x byte %d = %d", uint64(a), i, b)
			}
		}
		if s.ByteAt(a) != 0 || s.ReadWord(a&^3) != 0 {
			t.Fatalf("untouched scalar read at %#x nonzero", uint64(a))
		}
	}
	if s.Footprint() != 0 {
		t.Fatalf("reads allocated %d pages", s.Footprint())
	}
	// Fully masked-off writes must not allocate either.
	s.WriteBytes(farAddr, []byte{1, 2, 3, 4}, []bool{false, false, false, false})
	if s.Footprint() != 0 {
		t.Fatalf("masked-off write allocated %d pages", s.Footprint())
	}
}

// TestStoreNearFarInterleaving hammers the last-page cache with
// alternating near (directory) and far (map) pages: every switch must
// invalidate the cached page, never serve stale bytes.
func TestStoreNearFarInterleaving(t *testing.T) {
	s := NewStore()
	near := Addr(2 * pageSize)
	far := Addr(dirCapPages+99) << pageShift
	far2 := far + 4*pageSize
	addrs := []Addr{near, far, near + pageSize, far2, near + 2*pageSize, far + pageSize}
	for round := 0; round < 4; round++ {
		for i, a := range addrs {
			v := uint32(round*100 + i + 1)
			s.WriteWord(a+Addr(4*round), v)
			if got := s.ReadWord(a + Addr(4*round)); got != v {
				t.Fatalf("round %d addr %#x: got %d want %d", round, uint64(a), got, v)
			}
		}
		// Re-read every earlier value through the cache-thrashing mix.
		for i, a := range addrs {
			v := uint32(round*100 + i + 1)
			if got := s.ReadWord(a + Addr(4*round)); got != v {
				t.Fatalf("round %d reread addr %#x: got %d want %d", round, uint64(a), got, v)
			}
		}
	}
	if s.Footprint() != 6 {
		t.Fatalf("footprint %d, want 6", s.Footprint())
	}
}

// TestStoreFarPagesUseMap pins the tiering: far pages must not grow
// the flat directory.
func TestStoreFarPagesUseMap(t *testing.T) {
	s := NewStore()
	s.WriteWord(Addr(dirCapPages)<<pageShift, 7)
	if len(s.dir) != 0 {
		t.Fatalf("far write grew the directory to %d entries", len(s.dir))
	}
	if len(s.far) != 1 {
		t.Fatalf("far map holds %d pages, want 1", len(s.far))
	}
	s.WriteWord(0, 9)
	if len(s.dir) == 0 {
		t.Fatal("near write did not populate the directory")
	}
	if s.ReadWord(Addr(dirCapPages)<<pageShift) != 7 || s.ReadWord(0) != 9 {
		t.Fatal("tier mixup corrupted values")
	}
}

// TestStoreAccessZeroAllocs pins the O(1) hot path: once a page
// exists, word reads/writes, line reads/writes and atomics allocate
// nothing — in the last-page-cache regime and in the page-alternating
// regime.
func TestStoreAccessZeroAllocs(t *testing.T) {
	s := NewStore()
	line := make([]byte, 64)
	s.WriteWord(0x40, 1)
	s.WriteWord(pageSize+0x40, 1) // both pages exist
	if n := testing.AllocsPerRun(200, func() {
		s.WriteWord(0x40, 3)
		_ = s.ReadWord(0x40)
		_ = s.AtomicAdd(0x40, 1)
		s.ReadBytes(0x00, line)
		s.WriteBytes(0x00, line, nil)
		// alternate pages to defeat-then-refill the last-page cache
		_ = s.ReadWord(pageSize + 0x40)
		_ = s.ReadWord(0x40)
	}); n != 0 {
		t.Fatalf("hot-path store access allocates %v allocs/op, want 0", n)
	}
}
