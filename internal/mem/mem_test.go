package mem

import (
	"testing"
	"testing/quick"
)

func TestLineAddrAndOffset(t *testing.T) {
	err := quick.Check(func(aRaw uint64, szExp uint8) bool {
		lineSize := 1 << (4 + szExp%6) // 16..512
		a := Addr(aRaw)
		line := LineAddr(a, lineSize)
		off := LineOffset(a, lineSize)
		return line%Addr(lineSize) == 0 &&
			off >= 0 && off < lineSize &&
			line+Addr(off) == a
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestStoreZeroFill(t *testing.T) {
	s := NewStore()
	if s.ReadWord(0x1234) != 0 {
		t.Fatal("fresh store not zero-filled")
	}
}

func TestStoreWordRoundTrip(t *testing.T) {
	s := NewStore()
	err := quick.Check(func(aRaw uint32, v uint32) bool {
		a := Addr(aRaw) &^ 3
		s.WriteWord(a, v)
		return s.ReadWord(a) == v
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestStoreMaskedWrite(t *testing.T) {
	s := NewStore()
	base := Addr(0x100)
	s.WriteBytes(base, []byte{1, 2, 3, 4}, nil)
	s.WriteBytes(base, []byte{9, 9, 9, 9}, []bool{false, true, false, true})
	var got [4]byte
	s.ReadBytes(base, got[:])
	if got != [4]byte{1, 9, 3, 9} {
		t.Fatalf("masked write produced %v", got)
	}
}

func TestStoreAtomicAdd(t *testing.T) {
	s := NewStore()
	a := Addr(0x40)
	for i := uint32(0); i < 10; i++ {
		if old := s.AtomicAdd(a, 3); old != i*3 {
			t.Fatalf("AtomicAdd returned %d, want %d", old, i*3)
		}
	}
	if s.ReadWord(a) != 30 {
		t.Fatalf("final value %d, want 30", s.ReadWord(a))
	}
}

func TestStoreCrossPage(t *testing.T) {
	s := NewStore()
	a := Addr(pageSize - 2) // straddles a page boundary
	s.WriteWord(a, 0xAABBCCDD)
	if s.ReadWord(a) != 0xAABBCCDD {
		t.Fatal("cross-page word write corrupted")
	}
	if s.Footprint() != 2 {
		t.Fatalf("footprint %d, want 2 pages", s.Footprint())
	}
}

func TestOpStrings(t *testing.T) {
	for op, want := range map[Op]string{OpLoad: "LD", OpStore: "ST", OpAtomic: "AT"} {
		if op.String() != want {
			t.Errorf("%v.String() = %q", uint8(op), op.String())
		}
	}
}

func TestRequestString(t *testing.T) {
	r := &Request{Op: OpStore, Addr: 0x52860, ThreadID: 12, WFID: 2, EpisodeID: 652}
	want := "ST addr=0x52860 thr=12 wf=2 eps=652"
	if r.String() != want {
		t.Fatalf("Request.String() = %q, want %q", r.String(), want)
	}
}
