package mem

import "testing"

// BenchmarkStoreAccess measures the store's per-access cost in the
// regimes the tester and DRAM model actually drive: word ops that stay
// within one page (last-page cache), word ops alternating between two
// pages (directory index), line-sized span reads/writes (the memctrl
// hot path), and far-map pages. The gate is 0 allocs/op on all of
// them (also pinned by TestStoreAccessZeroAllocs).
func BenchmarkStoreAccess(b *testing.B) {
	b.Run("WordSamePage", func(b *testing.B) {
		s := NewStore()
		s.WriteWord(0x40, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.WriteWord(0x40, uint32(i))
			if s.ReadWord(0x40) != uint32(i) {
				b.Fatal("readback mismatch")
			}
		}
	})
	b.Run("WordAlternatingPages", func(b *testing.B) {
		s := NewStore()
		s.WriteWord(0x40, 1)
		s.WriteWord(pageSize+0x40, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := Addr((i & 1) << pageShift)
			s.WriteWord(a+0x40, uint32(i))
			if s.ReadWord(a+0x40) != uint32(i) {
				b.Fatal("readback mismatch")
			}
		}
	})
	b.Run("Line64", func(b *testing.B) {
		s := NewStore()
		line := make([]byte, 64)
		mask := make([]bool, 64)
		for i := range mask {
			mask[i] = i%2 == 0
		}
		s.WriteBytes(0, line, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.WriteBytes(0, line, mask)
			s.ReadBytes(0, line)
		}
	})
	b.Run("Atomic", func(b *testing.B) {
		s := NewStore()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if s.AtomicAdd(0x80, 1) != uint32(i) {
				b.Fatal("atomic progression broken")
			}
		}
	})
	b.Run("FarPage", func(b *testing.B) {
		s := NewStore()
		far := Addr(dirCapPages+3) << pageShift
		s.WriteWord(far, 1)
		s.WriteWord(0x40, 1) // keep a near page thrashing the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.WriteWord(far, uint32(i))
			_ = s.ReadWord(0x40)
			if s.ReadWord(far) != uint32(i) {
				b.Fatal("far readback mismatch")
			}
		}
	})
}
