package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(12345, 7)
	b := New(12345, 7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestStreamsDiffer(t *testing.T) {
	a := New(12345, 1)
	b := New(12345, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 1 and 2 coincide on %d of 100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	p := New(9, 9)
	c1 := p.Split()
	c2 := p.Split()
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Fatal("consecutive splits produce identical streams")
	}
}

func TestIntnBounds(t *testing.T) {
	p := New(1, 1)
	err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := p.Intn(n)
		return v >= 0 && v < n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1, 1).Intn(0)
}

func TestRangeInclusive(t *testing.T) {
	p := New(3, 3)
	seenLo, seenHi := false, false
	for i := 0; i < 1000; i++ {
		v := p.Range(5, 7)
		if v < 5 || v > 7 {
			t.Fatalf("Range(5,7) returned %d", v)
		}
		seenLo = seenLo || v == 5
		seenHi = seenHi || v == 7
	}
	if !seenLo || !seenHi {
		t.Fatal("Range never produced an endpoint in 1000 draws")
	}
}

func TestFloat64Unit(t *testing.T) {
	p := New(4, 4)
	for i := 0; i < 10_000; i++ {
		f := p.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestUniformity(t *testing.T) {
	p := New(5, 5)
	const buckets, draws = 16, 160_000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[p.Intn(buckets)]++
	}
	expect := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-expect) > 0.05*expect {
			t.Errorf("bucket %d: %d draws, expected ~%.0f", b, c, expect)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	p := New(6, 6)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw % 64)
		perm := p.Perm(n)
		if len(perm) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range perm {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestWeightedChoiceRespectsZeros(t *testing.T) {
	p := New(7, 7)
	w := []float64{0, 3, 0, 1}
	counts := map[int]int{}
	for i := 0; i < 4000; i++ {
		counts[p.WeightedChoice(w)]++
	}
	if counts[0] != 0 || counts[2] != 0 {
		t.Fatalf("zero-weight entries chosen: %v", counts)
	}
	ratio := float64(counts[1]) / float64(counts[3])
	if ratio < 2 || ratio > 4.5 {
		t.Fatalf("3:1 weights produced ratio %.2f (%v)", ratio, counts)
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	p := New(8, 8)
	for _, w := range [][]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WeightedChoice(%v) did not panic", w)
				}
			}()
			p.WeightedChoice(w)
		}()
	}
}

func TestBoolProbability(t *testing.T) {
	p := New(9, 1)
	hits := 0
	for i := 0; i < 100_000; i++ {
		if p.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / 100_000
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("Bool(0.25) fired %.3f of the time", frac)
	}
}
