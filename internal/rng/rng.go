// Package rng provides a small, fast, deterministic random number
// generator used throughout the simulator and the testers.
//
// Determinism is a hard requirement of the testing methodology: the
// paper's debugging flow depends on being able to replay a failing run
// from its seed and observe the identical sequence of memory requests
// and protocol transitions. Every component therefore draws from its own
// PCG32 stream derived from a master seed, so adding randomness to one
// component never perturbs another.
package rng

// PCG implements the PCG32 (XSH-RR) generator of O'Neill. It is seeded
// with a state and a stream (sequence) selector; distinct streams are
// statistically independent.
type PCG struct {
	state uint64
	inc   uint64
}

const pcgMult = 6364136223846793005

// New returns a generator seeded with seed on stream seq.
func New(seed, seq uint64) *PCG {
	p := &PCG{inc: seq<<1 | 1}
	p.Uint32()
	p.state += seed
	p.Uint32()
	return p
}

// State returns the generator's internal state and stream increment.
// Replay artifacts embed it so a reproduced run can be checked to have
// consumed the exact same randomness as the failing one.
func (p *PCG) State() (state, inc uint64) { return p.state, p.inc }

// Split derives a new independent generator from p. The derived stream
// is a pure function of p's current state, so splitting is itself
// deterministic.
func (p *PCG) Split() *PCG {
	return New(p.Uint64(), p.Uint64())
}

// Uint32 returns the next 32 random bits.
func (p *PCG) Uint32() uint32 {
	old := p.state
	p.state = old*pcgMult + p.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint64 returns the next 64 random bits.
func (p *PCG) Uint64() uint64 {
	return uint64(p.Uint32())<<32 | uint64(p.Uint32())
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (p *PCG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(p.Uint64() % uint64(n))
}

// Int63 returns a non-negative random int64.
func (p *PCG) Int63() int64 {
	return int64(p.Uint64() >> 1)
}

// Range returns a uniform int in [lo, hi]. It panics if hi < lo.
func (p *PCG) Range(lo, hi int) int {
	if hi < lo {
		panic("rng: Range with hi < lo")
	}
	return lo + p.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (p *PCG) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability prob.
func (p *PCG) Bool(prob float64) bool {
	return p.Float64() < prob
}

// Perm returns a random permutation of [0, n).
func (p *PCG) Perm(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	p.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Shuffle pseudo-randomizes the order of n elements via swap.
func (p *PCG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, p.Intn(i+1))
	}
}

// WeightedChoice returns an index in [0, len(weights)) selected with
// probability proportional to its weight. Zero-weight entries are never
// chosen. It panics if the total weight is not positive.
func (p *PCG) WeightedChoice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: non-positive total weight")
	}
	x := p.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("rng: unreachable")
}
