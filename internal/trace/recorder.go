package trace

import "drftest/internal/protocol"

// Sink receives trace events. *sim.Kernel implements it; the
// indirection keeps this package free of a dependency on sim (which
// itself depends on the Ring).
type Sink interface {
	// Tracing reports whether events are being recorded; callers use
	// it to skip label construction entirely when tracing is off.
	Tracing() bool
	// Trace records one event at the sink's current time.
	Trace(component, label string, addr uint64)
}

// Recorder wires the protocol engine into the trace: it implements
// protocol.Recorder, forwards every fired transition to the wrapped
// recorder (normally the coverage collector), and — only while the
// sink is tracing — appends a "State×Event" entry for the machine.
// Transition labels are precomputed per spec so the hot path does no
// string building.
type Recorder struct {
	sink   Sink
	next   protocol.Recorder
	labels map[string][][]string // machine name → [state][event] label
}

// NewRecorder builds a Recorder over sink that forwards to next (which
// may be nil) and can label transitions of the given specs. Machines
// whose spec is not listed are forwarded but not traced.
func NewRecorder(sink Sink, next protocol.Recorder, specs ...*protocol.Spec) *Recorder {
	r := &Recorder{sink: sink, next: next, labels: make(map[string][][]string)}
	for _, s := range specs {
		if _, dup := r.labels[s.Name]; dup {
			continue
		}
		tbl := make([][]string, len(s.States))
		for i, st := range s.States {
			tbl[i] = make([]string, len(s.Events))
			for j, ev := range s.Events {
				tbl[i][j] = st + "×" + ev
			}
		}
		r.labels[s.Name] = tbl
	}
	return r
}

// Record implements protocol.Recorder.
func (r *Recorder) Record(machine string, state, event int, kind protocol.Kind) {
	if r.next != nil {
		r.next.Record(machine, state, event, kind)
	}
	r.trace(machine, state, event)
}

func (r *Recorder) trace(machine string, state, event int) {
	if !r.sink.Tracing() {
		return
	}
	if tbl, ok := r.labels[machine]; ok {
		r.sink.Trace(machine, tbl[state][event], 0)
	}
}

// Counters implements protocol.CounterSource by delegating to the
// wrapped recorder. When the inner recorder grants direct counters for
// spec, the machine increments those itself and this recorder's
// remaining job — tracing — comes back as the tee, chained after any
// tee the inner recorder returned. When the inner recorder declines
// (or is not a CounterSource), so does this one, and recording stays
// on the Record slow path.
func (r *Recorder) Counters(spec *protocol.Spec) ([][]uint64, protocol.Recorder) {
	cs, ok := r.next.(protocol.CounterSource)
	if !ok {
		return nil, nil
	}
	hits, inner := cs.Counters(spec)
	if hits == nil {
		return nil, nil
	}
	return hits, &traceTee{rec: r, inner: inner}
}

// traceTee is the Counters tee: counting is already done by the
// machine, so Record here only runs the inner tee and the trace.
type traceTee struct {
	rec   *Recorder
	inner protocol.Recorder
}

func (t *traceTee) Record(machine string, state, event int, kind protocol.Kind) {
	if t.inner != nil {
		t.inner.Record(machine, state, event, kind)
	}
	t.rec.trace(machine, state, event)
}
