// Package trace provides the bounded execution trace behind the
// failure-replay workflow: a fixed-capacity ring buffer of simulation
// events (tick, sequence number, component, label, address) that the
// sim kernel records into and that replay artifacts embed.
//
// The trace exists for one reason: when a checker flags a coherence
// violation, the harness must be able to serialize *what just
// happened* alongside the seed and configuration, so the failing run
// can be re-executed and the protocol bug debugged (paper §V). The
// ring is bounded so tracing is usable on arbitrarily long soak runs,
// and a zero-capacity ring is a no-op so tracing costs nothing when
// disabled.
package trace

// Entry is one recorded simulation event.
type Entry struct {
	// Tick is the simulated time the event was recorded at.
	Tick uint64 `json:"tick"`
	// Seq is the entry's position in the whole recorded stream,
	// starting at 1; it totally orders entries within a tick.
	Seq uint64 `json:"seq"`
	// Component names the recording component ("gpu-tester", "GPU-L1",
	// "Directory", ...).
	Component string `json:"component"`
	// Label describes the event: an op ("issue load"), a protocol
	// transition ("V×Load"), or a failure ("fail value-mismatch").
	Label string `json:"label"`
	// Addr is the memory address involved, or 0 when the layer that
	// recorded the entry does not know one (protocol transitions).
	Addr uint64 `json:"addr"`
}

// Ring is a bounded event trace. A nil Ring and a Ring with capacity
// zero are both valid, permanently disabled traces: Append is a no-op.
type Ring struct {
	buf   []Entry
	total uint64
}

// NewRing returns a trace holding the last capacity entries.
// Capacity <= 0 returns a disabled ring.
func NewRing(capacity int) *Ring {
	r := &Ring{}
	if capacity > 0 {
		r.buf = make([]Entry, capacity)
	}
	return r
}

// Enabled reports whether Append records anything.
func (r *Ring) Enabled() bool { return r != nil && len(r.buf) > 0 }

// Cap returns the ring's capacity.
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Total returns how many entries were ever appended, including those
// already overwritten.
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Len returns how many entries the ring currently holds.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	if r.total < uint64(len(r.buf)) {
		return int(r.total)
	}
	return len(r.buf)
}

// Reset discards every recorded entry and restarts sequence numbering
// from 1, returning the ring to its just-built state while keeping its
// buffer. A campaign reusing one kernel (and its attached tracer)
// across seeds resets the ring before each run so a failing seed's
// artifact carries exactly that run's trace — bit-identical to the
// trace a fresh single-seed run of the same configuration records,
// which is what lets replay compare tails entry-for-entry.
func (r *Ring) Reset() {
	if r == nil {
		return
	}
	r.total = 0
}

// Append records one entry, assigning it the next sequence number.
func (r *Ring) Append(tick uint64, component, label string, addr uint64) {
	if !r.Enabled() {
		return
	}
	r.total++
	r.buf[int((r.total-1)%uint64(len(r.buf)))] = Entry{
		Tick: tick, Seq: r.total, Component: component, Label: label, Addr: addr,
	}
}

// Last returns the most recent n entries, oldest first. It returns
// fewer when the ring holds fewer.
func (r *Ring) Last(n int) []Entry {
	held := r.Len()
	if n > held {
		n = held
	}
	if n <= 0 {
		return nil
	}
	out := make([]Entry, 0, n)
	c := uint64(len(r.buf))
	for i := r.total - uint64(n); i < r.total; i++ {
		out = append(out, r.buf[int(i%c)])
	}
	return out
}

// Entries returns every held entry, oldest first.
func (r *Ring) Entries() []Entry { return r.Last(r.Len()) }

// RingSnapshot captures a ring's contents and sequence state; obtain
// via Snapshot, reinstate via Restore.
type RingSnapshot struct {
	buf   []Entry
	total uint64
}

// Snapshot captures the ring's full state (buffer and total), so a
// later Restore resumes recording exactly where the snapshot left off
// — same sequence numbers, same retained window. Nil for nil/disabled
// rings.
func (r *Ring) Snapshot() *RingSnapshot {
	if !r.Enabled() {
		return nil
	}
	return &RingSnapshot{buf: append([]Entry(nil), r.buf...), total: r.total}
}

// Restore reinstates a state captured by Snapshot on this ring. The
// snapshot must come from a ring of the same capacity (nil restores a
// disabled ring's empty state, i.e. it is a no-op).
func (r *Ring) Restore(s *RingSnapshot) {
	if s == nil {
		if r.Enabled() {
			r.total = 0
		}
		return
	}
	if len(s.buf) != len(r.buf) {
		panic("trace: Restore with mismatched ring capacity")
	}
	copy(r.buf, s.buf)
	r.total = s.total
}
