package trace

import (
	"fmt"
	"math/rand"
	"testing"

	"drftest/internal/audit"
)

// TestSnapshotFieldAudit pins the Ring's field set so a new field
// cannot silently escape Snapshot/Restore/Reset (see package audit).
func TestSnapshotFieldAudit(t *testing.T) {
	audit.Fields(t, Ring{}, map[string]string{
		"buf":   "state: fixed-capacity entry storage; Reset clears, Snapshot/Restore copy",
		"total": "state: lifetime append count (write cursor); Reset zeroes, Snapshot/Restore copy",
	})
}

// TestSnapshotRestoreRoundTrip is the Snapshot/Restore property test:
// across capacities, fill levels (empty, partial, exactly full,
// wrapped several times over) and post-restore reuse, a restored ring
// must report the same Len/Cap/Total and the same Entries() as the
// ring that was snapshotted — and appending after a restore must
// diverge from the donor ring exactly as two identical rings would.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(41))
	appendN := func(r *Ring, n int, tag string) {
		for i := 0; i < n; i++ {
			r.Append(uint64(rnd.Intn(1000)), "comp", tag, uint64(i))
		}
	}
	requireEqual := func(t *testing.T, want, got *Ring, when string) {
		t.Helper()
		if want.Len() != got.Len() || want.Cap() != got.Cap() || want.Total() != got.Total() {
			t.Fatalf("%s: len/cap/total = %d/%d/%d, want %d/%d/%d",
				when, got.Len(), got.Cap(), got.Total(), want.Len(), want.Cap(), want.Total())
		}
		we, ge := want.Entries(), got.Entries()
		for i := range we {
			if we[i] != ge[i] {
				t.Fatalf("%s: entry %d = %+v, want %+v", when, i, ge[i], we[i])
			}
		}
	}

	for _, capacity := range []int{1, 2, 7, 64} {
		for _, fill := range []int{0, 1, capacity / 2, capacity, capacity + 1, 3*capacity + 2} {
			t.Run(fmt.Sprintf("cap%d_fill%d", capacity, fill), func(t *testing.T) {
				r := NewRing(capacity)
				appendN(r, fill, "pre")
				snap := r.Snapshot()

				// Restore onto a dirtied ring of the same capacity.
				other := NewRing(capacity)
				appendN(other, rnd.Intn(2*capacity+1), "dirt")
				other.Restore(snap)
				requireEqual(t, r, other, "after restore")

				// Post-restore reuse: both rings must evolve identically
				// when fed the same appends (replayed via a reseeded RNG).
				rnd = rand.New(rand.NewSource(17))
				appendN(r, capacity+3, "post")
				rnd = rand.New(rand.NewSource(17))
				appendN(other, capacity+3, "post")
				requireEqual(t, r, other, "after post-restore appends")

				// Reset after restore returns to empty, and the snapshot
				// can be restored again (it shares no storage).
				other.Reset()
				if other.Len() != 0 || other.Total() != 0 {
					t.Fatalf("after reset: len=%d total=%d, want 0/0", other.Len(), other.Total())
				}
				other.Restore(snap)
				if got, want := other.Total(), snap.total; got != want {
					t.Fatalf("after second restore: total=%d, want %d", got, want)
				}
			})
		}
	}

	// Disabled rings snapshot to nil, and Restore(nil) resets.
	var disabled *RingSnapshot = NewRing(0).Snapshot()
	if disabled != nil {
		t.Fatalf("disabled ring snapshot = %v, want nil", disabled)
	}
	r := NewRing(4)
	appendN(r, 3, "x")
	r.Restore(nil)
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatalf("Restore(nil): len=%d total=%d, want 0/0", r.Len(), r.Total())
	}

	// Capacity mismatch is a programming error and must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("Restore with mismatched capacity did not panic")
			}
		}()
		big := NewRing(8)
		big.Append(1, "c", "l", 0)
		NewRing(4).Restore(big.Snapshot())
	}()
}
