package trace

import (
	"testing"
	"testing/quick"

	"drftest/internal/protocol"
)

func TestDisabledRing(t *testing.T) {
	for _, r := range []*Ring{nil, NewRing(0), NewRing(-3), {}} {
		if r.Enabled() {
			t.Fatal("zero-capacity ring reports enabled")
		}
		r.Append(1, "c", "l", 2)
		if r.Len() != 0 || r.Total() != 0 || r.Last(5) != nil || r.Entries() != nil {
			t.Fatal("disabled ring recorded an entry")
		}
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 10; i++ {
		r.Append(uint64(i*10), "c", "l", uint64(i))
	}
	if r.Len() != 4 || r.Total() != 10 || r.Cap() != 4 {
		t.Fatalf("len=%d total=%d cap=%d, want 4/10/4", r.Len(), r.Total(), r.Cap())
	}
	got := r.Entries()
	for i, e := range got {
		want := uint64(7 + i) // entries 7..10 survive
		if e.Seq != want || e.Addr != want || e.Tick != want*10 {
			t.Fatalf("entry %d = %+v, want seq/addr %d", i, e, want)
		}
	}
}

// TestRingReset: a reset ring must be indistinguishable from a
// just-built one — sequence numbers restart at 1 and old entries are
// unreachable — which is what lets a campaign's reused trace ring
// produce artifacts bit-identical to a fresh single-seed run's.
func TestRingReset(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 7; i++ {
		r.Append(uint64(i), "old", "l", 0)
	}
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 || r.Entries() != nil {
		t.Fatalf("reset ring not empty: len=%d total=%d", r.Len(), r.Total())
	}
	if r.Cap() != 4 || !r.Enabled() {
		t.Fatal("reset changed the ring's capacity or enablement")
	}
	r.Append(50, "new", "l", 9)
	got := r.Entries()
	if len(got) != 1 || got[0].Seq != 1 || got[0].Component != "new" {
		t.Fatalf("post-reset entries = %+v, want one entry with Seq 1", got)
	}
	var nilRing *Ring
	nilRing.Reset() // must not panic
}

func TestRingLastOrdering(t *testing.T) {
	r := NewRing(8)
	for i := 1; i <= 5; i++ {
		r.Append(uint64(i), "c", "l", 0)
	}
	last := r.Last(3)
	if len(last) != 3 || last[0].Seq != 3 || last[2].Seq != 5 {
		t.Fatalf("Last(3) = %+v", last)
	}
	if got := r.Last(99); len(got) != 5 {
		t.Fatalf("Last(99) returned %d entries, want all 5", len(got))
	}
	if r.Last(0) != nil || r.Last(-1) != nil {
		t.Fatal("Last with n<=0 must return nil")
	}
}

// TestRingProperty: for any capacity and append count, the ring holds
// the newest min(appends, capacity) entries with consecutive sequence
// numbers ending at the total, oldest first.
func TestRingProperty(t *testing.T) {
	err := quick.Check(func(capRaw uint8, appends uint16) bool {
		capacity := int(capRaw % 33) // 0..32, including disabled
		r := NewRing(capacity)
		n := int(appends % 200)
		for i := 1; i <= n; i++ {
			r.Append(uint64(i), "c", "l", uint64(i))
		}
		if capacity == 0 {
			return r.Len() == 0 && r.Total() == 0
		}
		want := n
		if want > capacity {
			want = capacity
		}
		got := r.Entries()
		if len(got) != want || r.Total() != uint64(n) {
			return false
		}
		for i, e := range got {
			wantSeq := uint64(n - want + 1 + i)
			if e.Seq != wantSeq || e.Addr != wantSeq || e.Tick != wantSeq {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

// FuzzRing drives the same invariants from fuzzed (capacity, count)
// pairs, including the wraparound boundary cases.
func FuzzRing(f *testing.F) {
	f.Add(0, 10)
	f.Add(1, 1)
	f.Add(4, 4)
	f.Add(4, 5)
	f.Add(16, 1000)
	f.Fuzz(func(t *testing.T, capacity, n int) {
		if capacity > 1<<12 || n > 1<<14 || n < 0 {
			t.Skip()
		}
		r := NewRing(capacity)
		for i := 1; i <= n; i++ {
			r.Append(uint64(i), "c", "l", uint64(i))
		}
		if capacity <= 0 {
			if r.Enabled() || r.Len() != 0 {
				t.Fatal("disabled ring held entries")
			}
			return
		}
		if r.Total() != uint64(n) {
			t.Fatalf("total=%d want %d", r.Total(), n)
		}
		got := r.Entries()
		for i := 1; i < len(got); i++ {
			if got[i].Seq != got[i-1].Seq+1 {
				t.Fatalf("non-consecutive seqs at %d: %d after %d", i, got[i].Seq, got[i-1].Seq)
			}
		}
		if len(got) > 0 && got[len(got)-1].Seq != uint64(n) {
			t.Fatalf("newest seq %d, want %d", got[len(got)-1].Seq, n)
		}
	})
}

// fakeSink collects Trace calls for recorder tests.
type fakeSink struct {
	on      bool
	entries []Entry
}

func (s *fakeSink) Tracing() bool { return s.on }
func (s *fakeSink) Trace(component, label string, addr uint64) {
	s.entries = append(s.entries, Entry{Component: component, Label: label, Addr: addr})
}

type countRecorder struct{ n int }

func (c *countRecorder) Record(string, int, int, protocol.Kind) { c.n++ }

func TestRecorderLabelsAndForwards(t *testing.T) {
	spec := protocol.NewSpec("M", []string{"I", "V"}, []string{"Load", "Evict"})
	spec.Trans(0, 0, 1, "fill")
	next := &countRecorder{}
	sink := &fakeSink{on: true}
	rec := NewRecorder(sink, next, spec)

	m := protocol.NewMachine(spec, rec)
	m.Fire(0, 0)
	if next.n != 1 {
		t.Fatalf("wrapped recorder saw %d records, want 1", next.n)
	}
	if len(sink.entries) != 1 || sink.entries[0].Label != "I×Load" || sink.entries[0].Component != "M" {
		t.Fatalf("trace entries = %+v", sink.entries)
	}

	// Unknown machines forward but do not trace; a quiet sink records
	// nothing.
	rec.Record("other", 0, 0, protocol.Defined)
	if next.n != 2 || len(sink.entries) != 1 {
		t.Fatalf("unknown machine handling wrong: next=%d entries=%d", next.n, len(sink.entries))
	}
	sink.on = false
	m.Fire(0, 0)
	if next.n != 3 || len(sink.entries) != 1 {
		t.Fatal("recorder traced while sink was off")
	}
}

// grantingSource fakes an inner recorder that grants the counter fast
// path (like the coverage collector does).
type grantingSource struct {
	hits [][]uint64
}

func (g *grantingSource) Record(string, int, int, protocol.Kind) {
	panic("fast path must bypass Record")
}

func (g *grantingSource) Counters(spec *protocol.Spec) ([][]uint64, protocol.Recorder) {
	g.hits = make([][]uint64, len(spec.States))
	for i := range g.hits {
		g.hits[i] = make([]uint64, len(spec.Events))
	}
	return g.hits, nil
}

// TestRecorderCountersDelegation: when the wrapped recorder grants
// direct counters, the trace recorder passes them through and keeps
// only the tracing half as the tee — counting and tracing both still
// happen, with no Record call in between.
func TestRecorderCountersDelegation(t *testing.T) {
	spec := protocol.NewSpec("M", []string{"I", "V"}, []string{"Load", "Evict"})
	spec.Trans(0, 0, 1, "fill")
	inner := &grantingSource{}
	sink := &fakeSink{on: true}
	rec := NewRecorder(sink, inner, spec)

	m := protocol.NewMachine(spec, rec)
	m.Fire(0, 0)
	if inner.hits[0][0] != 1 {
		t.Fatalf("direct counters = %v", inner.hits)
	}
	if len(sink.entries) != 1 || sink.entries[0].Label != "I×Load" {
		t.Fatalf("trace entries = %+v", sink.entries)
	}
	sink.on = false
	m.Fire(0, 0)
	if inner.hits[0][0] != 2 || len(sink.entries) != 1 {
		t.Fatal("counting or quiet-sink behavior broken on the fast path")
	}
}

// TestRecorderCountersDeclines: a plain Recorder next (no
// CounterSource) keeps everything on the Record slow path.
func TestRecorderCountersDeclines(t *testing.T) {
	spec := protocol.NewSpec("M", []string{"I"}, []string{"Load"})
	spec.Trans(0, 0, 0, "hit")
	next := &countRecorder{}
	rec := NewRecorder(&fakeSink{}, next, spec)
	if hits, tee := rec.Counters(spec); hits != nil || tee != nil {
		t.Fatal("recorder granted counters its inner recorder cannot back")
	}
	m := protocol.NewMachine(spec, rec)
	m.Fire(0, 0)
	if next.n != 1 {
		t.Fatal("slow path lost the record")
	}
}
