// Package apps provides the application-based-testing baseline: 26
// synthetic GPU workloads standing in for the paper's suite (AMD
// compute apps, HCC samples, HeteroSync, and the MI benchmarks
// DNNMark / DeepBench / MIOpen — Table IV).
//
// The real applications are unavailable here (no ROCm toolchain, no
// GPU ISA), so each is replaced by a trace generator with the property
// the paper actually measures: its cache-line reuse mix across
// wavefronts (streaming / intra-WF / inter-WF / mixed-WF, Fig. 6,
// following Koo et al.'s classification) and its atomic intensity.
// The workloads run through the detailed gpucore pipeline, so their
// simulation cost scales with instruction count exactly as
// application-based testing's does in gem5.
package apps

// Profile describes one synthetic application.
type Profile struct {
	Name  string
	Suite string
	Desc  string

	// Locality mix: probability that a memory access targets each
	// reuse class. Should sum to ~1.
	Streaming float64
	IntraWF   float64
	InterWF   float64
	MixWF     float64

	// AtomicFrac is the fraction of memory ops that are atomics on
	// shared synchronization words (HeteroSync-style apps are high).
	AtomicFrac float64
	// StoreFrac is the store probability among plain accesses.
	StoreFrac float64
	// ALUPerMem is the mean ALU instructions between memory ops — the
	// detailed-model cost the tester avoids paying.
	ALUPerMem int
	// MemOpsPerLane is each lane's memory op count (test length).
	MemOpsPerLane int
	// SharedLines / PrivateLines size the inter-WF shared and per-WF
	// private working sets, in cache lines.
	SharedLines  int
	PrivateLines int
}

// Profiles lists the 26 applications of Table IV. Locality mixes are
// chosen to span the space of Fig. 6: pure streaming kernels, heavily
// intra-WF compute kernels, inter-WF reduction/sharing kernels, and the
// two atomic-heavy outliers (Interac, CM) that dominate the
// application suite's union coverage in Fig. 9.
var Profiles = []Profile{
	// --- AMD compute apps / HCC samples ---
	{Name: "HACC", Suite: "compute", Desc: "cosmology particle short-range force kernel",
		Streaming: 0.35, IntraWF: 0.45, InterWF: 0.10, MixWF: 0.10, AtomicFrac: 0.002, StoreFrac: 0.30, ALUPerMem: 28, MemOpsPerLane: 1280, SharedLines: 256, PrivateLines: 24},
	{Name: "Square", Suite: "compute", Desc: "elementwise square (bandwidth microkernel)",
		Streaming: 0.96, IntraWF: 0.02, InterWF: 0.01, MixWF: 0.01, AtomicFrac: 0, StoreFrac: 0.50, ALUPerMem: 6, MemOpsPerLane: 1120, SharedLines: 64, PrivateLines: 8},
	{Name: "FFT", Suite: "compute", Desc: "radix-2 fast Fourier transform stages",
		Streaming: 0.20, IntraWF: 0.40, InterWF: 0.25, MixWF: 0.15, AtomicFrac: 0, StoreFrac: 0.45, ALUPerMem: 22, MemOpsPerLane: 1200, SharedLines: 192, PrivateLines: 16},
	{Name: "MatMul", Suite: "compute", Desc: "tiled dense matrix multiply",
		Streaming: 0.15, IntraWF: 0.60, InterWF: 0.15, MixWF: 0.10, AtomicFrac: 0, StoreFrac: 0.20, ALUPerMem: 30, MemOpsPerLane: 1360, SharedLines: 160, PrivateLines: 32},
	{Name: "Histogram", Suite: "compute", Desc: "binned histogram with atomic increments",
		Streaming: 0.55, IntraWF: 0.15, InterWF: 0.20, MixWF: 0.10, AtomicFrac: 0.08, StoreFrac: 0.25, ALUPerMem: 12, MemOpsPerLane: 1120, SharedLines: 48, PrivateLines: 8},
	{Name: "Reduction", Suite: "compute", Desc: "tree reduction over a large array",
		Streaming: 0.45, IntraWF: 0.20, InterWF: 0.25, MixWF: 0.10, AtomicFrac: 0.03, StoreFrac: 0.30, ALUPerMem: 10, MemOpsPerLane: 1040, SharedLines: 96, PrivateLines: 8},
	{Name: "ScanLargeArrays", Suite: "compute", Desc: "work-efficient prefix scan",
		Streaming: 0.50, IntraWF: 0.25, InterWF: 0.15, MixWF: 0.10, AtomicFrac: 0.01, StoreFrac: 0.40, ALUPerMem: 14, MemOpsPerLane: 1120, SharedLines: 128, PrivateLines: 12},
	{Name: "BitonicSort", Suite: "compute", Desc: "bitonic sorting network passes",
		Streaming: 0.25, IntraWF: 0.30, InterWF: 0.30, MixWF: 0.15, AtomicFrac: 0, StoreFrac: 0.50, ALUPerMem: 16, MemOpsPerLane: 1200, SharedLines: 224, PrivateLines: 16},
	{Name: "DCT", Suite: "compute", Desc: "8x8 block discrete cosine transform",
		Streaming: 0.40, IntraWF: 0.50, InterWF: 0.05, MixWF: 0.05, AtomicFrac: 0, StoreFrac: 0.35, ALUPerMem: 26, MemOpsPerLane: 1200, SharedLines: 96, PrivateLines: 24},
	{Name: "FloydWarshall", Suite: "compute", Desc: "all-pairs shortest paths",
		Streaming: 0.10, IntraWF: 0.35, InterWF: 0.40, MixWF: 0.15, AtomicFrac: 0, StoreFrac: 0.35, ALUPerMem: 18, MemOpsPerLane: 1280, SharedLines: 320, PrivateLines: 16},
	{Name: "FastWalsh", Suite: "compute", Desc: "fast Walsh-Hadamard transform",
		Streaming: 0.30, IntraWF: 0.40, InterWF: 0.20, MixWF: 0.10, AtomicFrac: 0, StoreFrac: 0.45, ALUPerMem: 18, MemOpsPerLane: 1120, SharedLines: 160, PrivateLines: 16},
	{Name: "BinarySearch", Suite: "compute", Desc: "batched binary searches over a sorted table",
		Streaming: 0.15, IntraWF: 0.20, InterWF: 0.50, MixWF: 0.15, AtomicFrac: 0, StoreFrac: 0.05, ALUPerMem: 10, MemOpsPerLane: 960, SharedLines: 384, PrivateLines: 8},
	{Name: "NBody", Suite: "compute", Desc: "direct N-body force accumulation",
		Streaming: 0.20, IntraWF: 0.30, InterWF: 0.40, MixWF: 0.10, AtomicFrac: 0.002, StoreFrac: 0.15, ALUPerMem: 34, MemOpsPerLane: 1360, SharedLines: 192, PrivateLines: 16},
	{Name: "Stencil2D", Suite: "compute", Desc: "5-point Jacobi stencil sweeps",
		Streaming: 0.40, IntraWF: 0.30, InterWF: 0.15, MixWF: 0.15, AtomicFrac: 0, StoreFrac: 0.40, ALUPerMem: 14, MemOpsPerLane: 1200, SharedLines: 256, PrivateLines: 16},

	// --- HeteroSync (fine-grained synchronization) ---
	{Name: "SpinMutex", Suite: "heterosync", Desc: "spin-lock mutex acquire/release stress",
		Streaming: 0.05, IntraWF: 0.25, InterWF: 0.45, MixWF: 0.25, AtomicFrac: 0.30, StoreFrac: 0.50, ALUPerMem: 8, MemOpsPerLane: 960, SharedLines: 24, PrivateLines: 4},
	{Name: "EBOMutex", Suite: "heterosync", Desc: "exponential-backoff mutex",
		Streaming: 0.05, IntraWF: 0.30, InterWF: 0.40, MixWF: 0.25, AtomicFrac: 0.22, StoreFrac: 0.50, ALUPerMem: 12, MemOpsPerLane: 960, SharedLines: 24, PrivateLines: 4},
	{Name: "SleepMutex", Suite: "heterosync", Desc: "sleeping mutex with wait queues",
		Streaming: 0.05, IntraWF: 0.30, InterWF: 0.40, MixWF: 0.25, AtomicFrac: 0.18, StoreFrac: 0.45, ALUPerMem: 14, MemOpsPerLane: 960, SharedLines: 32, PrivateLines: 4},
	{Name: "FABarrier", Suite: "heterosync", Desc: "fetch-add global barrier",
		Streaming: 0.05, IntraWF: 0.35, InterWF: 0.40, MixWF: 0.20, AtomicFrac: 0.25, StoreFrac: 0.40, ALUPerMem: 10, MemOpsPerLane: 880, SharedLines: 16, PrivateLines: 4},
	{Name: "TreeBarrier", Suite: "heterosync", Desc: "tree-combining barrier",
		Streaming: 0.05, IntraWF: 0.35, InterWF: 0.35, MixWF: 0.25, AtomicFrac: 0.20, StoreFrac: 0.40, ALUPerMem: 12, MemOpsPerLane: 880, SharedLines: 48, PrivateLines: 4},
	{Name: "Semaphore", Suite: "heterosync", Desc: "counting semaphore stress",
		Streaming: 0.05, IntraWF: 0.30, InterWF: 0.40, MixWF: 0.25, AtomicFrac: 0.24, StoreFrac: 0.45, ALUPerMem: 10, MemOpsPerLane: 880, SharedLines: 24, PrivateLines: 4},

	// --- MI / ML benchmarks ---
	{Name: "DNNMark_Conv", Suite: "mi", Desc: "convolution layer forward pass",
		Streaming: 0.45, IntraWF: 0.40, InterWF: 0.10, MixWF: 0.05, AtomicFrac: 0, StoreFrac: 0.25, ALUPerMem: 32, MemOpsPerLane: 1360, SharedLines: 256, PrivateLines: 32},
	{Name: "DNNMark_Pool", Suite: "mi", Desc: "max-pooling layer",
		Streaming: 0.60, IntraWF: 0.30, InterWF: 0.05, MixWF: 0.05, AtomicFrac: 0, StoreFrac: 0.30, ALUPerMem: 10, MemOpsPerLane: 1040, SharedLines: 128, PrivateLines: 16},
	{Name: "DeepBench_GEMM", Suite: "mi", Desc: "deep-learning GEMM shapes",
		Streaming: 0.20, IntraWF: 0.55, InterWF: 0.15, MixWF: 0.10, AtomicFrac: 0, StoreFrac: 0.20, ALUPerMem: 30, MemOpsPerLane: 1360, SharedLines: 192, PrivateLines: 32},
	{Name: "DeepBench_RNN", Suite: "mi", Desc: "recurrent cell time-step loop",
		Streaming: 0.25, IntraWF: 0.40, InterWF: 0.25, MixWF: 0.10, AtomicFrac: 0.01, StoreFrac: 0.30, ALUPerMem: 24, MemOpsPerLane: 1200, SharedLines: 160, PrivateLines: 16},

	// --- the two atomic-heavy outliers that dominate Fig. 9 ---
	{Name: "Interac", Suite: "mi", Desc: "irregular graph interaction kernel, atomic-heavy",
		Streaming: 0.10, IntraWF: 0.20, InterWF: 0.45, MixWF: 0.25, AtomicFrac: 0.28, StoreFrac: 0.50, ALUPerMem: 8, MemOpsPerLane: 1200, SharedLines: 64, PrivateLines: 8},
	{Name: "CM", Suite: "mi", Desc: "contention microkernel: concurrent counters and flags",
		Streaming: 0.05, IntraWF: 0.15, InterWF: 0.50, MixWF: 0.30, AtomicFrac: 0.35, StoreFrac: 0.55, ALUPerMem: 6, MemOpsPerLane: 1120, SharedLines: 16, PrivateLines: 4},
}

// ByName returns the profile with the given name, or nil.
func ByName(name string) *Profile {
	for i := range Profiles {
		if Profiles[i].Name == name {
			return &Profiles[i]
		}
	}
	return nil
}
