package apps

import (
	"time"

	"drftest/internal/gpucore"
	"drftest/internal/sim"
	"drftest/internal/viper"
)

// RunResult summarizes one application run.
type RunResult struct {
	App            string
	Suite          string
	SimTicks       uint64
	Events         uint64 // kernel events executed — the simulation-work measure
	Instructions   uint64
	MemOps         uint64
	WallTime       time.Duration
	Locality       [4]float64 // access-weighted, indexed by LocalityClass
	LocalityByLine [4]float64
	LinesTouched   int
	Faults         int
	Completed      bool
}

// Run executes prof on sys with numWFs wavefronts of `lanes` threads,
// using the detailed gpucore pipeline. maxTicks bounds runaway runs
// (0 = unbounded).
func Run(k *sim.Kernel, sys *viper.System, prof Profile, seed uint64, numWFs, lanes int, maxTicks sim.Tick) *RunResult {
	w := NewWorkload(prof, seed, sys.Cfg.L1.LineSize, lanes, numWFs)

	wfsLeft := numWFs
	cores := make([]*gpucore.Core, len(sys.Seqs))
	for cu := range cores {
		cores[cu] = gpucore.New(k, gpucore.DefaultConfig(), sys.Seqs[cu], func() { wfsLeft-- })
	}
	for wf := 0; wf < numWFs; wf++ {
		cores[wf%len(cores)].AddWavefront(w.Program(wf))
	}

	startEvents := k.Executed()
	start := time.Now()
	for _, c := range cores {
		c.Start()
	}
	if maxTicks == 0 {
		k.RunUntilIdle()
	} else {
		k.Run(k.Now() + maxTicks)
	}
	wall := time.Since(start)

	var instr, memOps uint64
	for _, c := range cores {
		i, m, _ := c.Stats()
		instr += i
		memOps += m
	}
	return &RunResult{
		App:            prof.Name,
		Suite:          prof.Suite,
		SimTicks:       uint64(k.Now()),
		Events:         k.Executed() - startEvents,
		Instructions:   instr,
		MemOps:         memOps,
		WallTime:       wall,
		Locality:       w.Tracker().BreakdownByAccess(),
		LocalityByLine: w.Tracker().Breakdown(),
		LinesTouched:   w.Tracker().Lines(),
		Faults:         len(sys.Faults()),
		Completed:      wfsLeft == 0,
	}
}
