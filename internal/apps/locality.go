package apps

import (
	"math/bits"

	"drftest/internal/mem"
)

// LocalityClass is Koo et al.'s cache-line reuse classification used
// by the paper's Fig. 6.
type LocalityClass uint8

const (
	// ClassStreaming lines are never reused.
	ClassStreaming LocalityClass = iota
	// ClassIntraWF lines are reused only within one wavefront.
	ClassIntraWF
	// ClassInterWF lines are used by several wavefronts, once each.
	ClassInterWF
	// ClassMixWF lines see both intra- and inter-wavefront reuse.
	ClassMixWF
)

func (c LocalityClass) String() string {
	switch c {
	case ClassStreaming:
		return "streaming"
	case ClassIntraWF:
		return "intraWF"
	case ClassInterWF:
		return "interWF"
	case ClassMixWF:
		return "mixWF"
	}
	return "?"
}

// lineUse folds one line's access history into exactly what classify
// needs: the total, which wavefronts touched it, and which touched it
// more than once. Wavefront sets are bitmasks (apps run tens of
// wavefronts, not thousands), so the tracker stores plain values — no
// per-line pointer or per-line map — and the record stays classifiable
// without replaying counts. Wavefronts beyond the mask width spill
// into a map allocated only if such a wavefront ever appears.
type lineUse struct {
	total  int32
	seen   [2]uint64 // wavefronts 0..127 that touched the line
	repeat [2]uint64 // of those, the ones that touched it more than once
	spill  map[int]int32
}

func (u *lineUse) record(wf int) {
	u.total++
	if wf < 128 {
		w, bit := wf>>6, uint64(1)<<(wf&63)
		if u.seen[w]&bit != 0 {
			u.repeat[w] |= bit
		}
		u.seen[w] |= bit
		return
	}
	if u.spill == nil {
		u.spill = make(map[int]int32)
	}
	u.spill[wf]++
}

// LocalityTracker profiles cache-line usage across wavefronts.
type LocalityTracker struct {
	lineSize int
	lines    map[mem.Addr]lineUse
}

// NewLocalityTracker creates a tracker for the given line size.
func NewLocalityTracker(lineSize int) *LocalityTracker {
	return &LocalityTracker{lineSize: lineSize, lines: make(map[mem.Addr]lineUse)}
}

// Access records that wavefront wf touched addr.
func (t *LocalityTracker) Access(wf int, addr mem.Addr) {
	line := mem.LineAddr(addr, t.lineSize)
	u := t.lines[line]
	u.record(wf)
	t.lines[line] = u
}

// classify buckets one line.
func (u *lineUse) classify() LocalityClass {
	if u.total == 1 {
		return ClassStreaming
	}
	distinct := bits.OnesCount64(u.seen[0]) + bits.OnesCount64(u.seen[1]) + len(u.spill)
	if distinct == 1 {
		return ClassIntraWF
	}
	if u.repeat[0] != 0 || u.repeat[1] != 0 {
		return ClassMixWF
	}
	for _, n := range u.spill {
		if n > 1 {
			return ClassMixWF
		}
	}
	return ClassInterWF
}

// Breakdown returns the fraction of lines in each class, indexed by
// LocalityClass (Fig. 6's stacked bars).
func (t *LocalityTracker) Breakdown() [4]float64 {
	var counts [4]int
	for _, u := range t.lines {
		counts[u.classify()]++
	}
	var out [4]float64
	if len(t.lines) == 0 {
		return out
	}
	for i, n := range counts {
		out[i] = float64(n) / float64(len(t.lines))
	}
	return out
}

// BreakdownByAccess returns the fraction of line *uses* falling in
// each class — each line weighted by how often it was touched. This is
// the view that characterizes an application's traffic (a handful of
// hot shared lines can dominate a kernel that also streams through
// thousands of cold ones) and is what our Fig. 6 reproduction reports.
func (t *LocalityTracker) BreakdownByAccess() [4]float64 {
	var counts [4]int
	total := 0
	for _, u := range t.lines {
		counts[u.classify()] += int(u.total)
		total += int(u.total)
	}
	var out [4]float64
	if total == 0 {
		return out
	}
	for i, n := range counts {
		out[i] = float64(n) / float64(total)
	}
	return out
}

// Lines returns the number of distinct lines touched.
func (t *LocalityTracker) Lines() int { return len(t.lines) }
