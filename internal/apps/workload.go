package apps

import (
	"drftest/internal/gpucore"
	"drftest/internal/mem"
	"drftest/internal/rng"
)

// SharedRegionBase is where every workload's inter-WF shared buffer
// lives; host-side drivers touch the same region to create CPU↔GPU
// sharing in heterogeneous runs.
const SharedRegionBase mem.Addr = 0x0001_0000

// StreamRegionBase is where wavefront 0's streaming output begins —
// the natural source for a result-copying DMA transfer.
const StreamRegionBase mem.Addr = 0x1000_0000

// Memory layout constants for generated traces. Each workload gets
// disjoint shared, per-WF private, streaming and synchronization
// regions, mirroring how real kernels separate their buffers.
const (
	sharedBase           = SharedRegionBase
	privateBase mem.Addr = 0x0100_0000
	streamBase  mem.Addr = 0x1000_0000
	interBase   mem.Addr = 0x0800_0000
	syncBase    mem.Addr = 0x0000_1000

	privateRegion mem.Addr = 1 << 16 // per-WF private window
	streamRegion  mem.Addr = 1 << 22 // per-WF streaming window
	numSyncWords           = 16
)

// Workload instantiates a Profile as per-wavefront instruction streams.
type Workload struct {
	Prof     Profile
	lineSize int
	lanes    int
	numWFs   int
	rnd      *rng.PCG
	tracker  *LocalityTracker
	nextID   uint64
}

// NewWorkload builds a workload for numWFs wavefronts of `lanes`
// threads over lineSize-byte cache lines.
func NewWorkload(prof Profile, seed uint64, lineSize, lanes, numWFs int) *Workload {
	return &Workload{
		Prof:     prof,
		lineSize: lineSize,
		lanes:    lanes,
		numWFs:   numWFs,
		rnd:      rng.New(seed, uint64(len(prof.Name))<<8|0xA9),
		tracker:  NewLocalityTracker(lineSize),
	}
}

// Tracker exposes the locality profile collected while generating.
func (w *Workload) Tracker() *LocalityTracker { return w.tracker }

// Program returns wavefront wf's instruction stream (wf is the global
// wavefront index).
func (w *Workload) Program(wf int) gpucore.Program {
	p := &wfProgram{w: w, wf: wf, rnd: w.rnd.Split()}
	p.reqs = make([]mem.Request, w.lanes)
	p.reqPtrs = make([]*mem.Request, w.lanes)
	for i := range p.reqs {
		p.reqPtrs[i] = &p.reqs[i]
	}
	return p
}

type wfProgram struct {
	w            *Workload
	wf           int
	rnd          *rng.PCG
	opsDone      int
	streamCursor mem.Addr
	interCursor  mem.Addr

	// Per-lane request storage, reused for every memory instruction.
	// Safe because the core resumes a wavefront (and calls Next again)
	// only after every lane of the previous instruction completed, and
	// the only pointer the memory system retains past completion — the
	// in-flight write-through ack — reads just ThreadID, which is
	// lane-stable (see gpucore.Program).
	reqs    []mem.Request
	reqPtrs []*mem.Request
	// lineScratch dedups the distinct lines one SIMT instruction
	// touches (at most lanes entries, usually 1-2).
	lineScratch []mem.Addr
}

// Next implements gpucore.Program.
func (p *wfProgram) Next() (int, gpucore.MemOp, bool) {
	w := p.w
	prof := w.Prof
	if p.opsDone >= prof.MemOpsPerLane {
		return 0, gpucore.MemOp{}, true
	}
	p.opsDone++

	alu := prof.ALUPerMem/2 + p.rnd.Intn(prof.ALUPerMem+1)

	if p.rnd.Bool(prof.AtomicFrac) {
		return alu, p.atomicOp(), false
	}
	return alu, p.plainOp(), false
}

// atomicOp emits a per-lane atomic on the workload's sync words
// (spread one per cache line, as padded locks are), with occasional
// acquire/release semantics as synchronization code has.
func (p *wfProgram) atomicOp() gpucore.MemOp {
	op := gpucore.MemOp{Reqs: p.reqPtrs}
	p.lineScratch = p.lineScratch[:0]
	for l := range op.Reqs {
		addr := syncBase + mem.Addr(p.rnd.Intn(numSyncWords)*p.w.lineSize)
		p.noteLine(mem.LineAddr(addr, p.w.lineSize))
		req := p.newReq(l, addr)
		req.Op = mem.OpAtomic
		req.Operand = 1
		switch p.rnd.Intn(3) {
		case 0:
			req.Acquire = true
		case 1:
			req.Release = true
		}
	}
	p.trackOp()
	return op
}

// plainOp emits a SIMT load or store whose addresses follow the
// profile's locality mix. Reuse classes are realized structurally:
// streaming walks fresh per-WF lines; intra-WF revisits a small per-WF
// private set; inter-WF walks a region every wavefront traverses
// exactly once; mixed-WF hammers a small set shared by all wavefronts.
func (p *wfProgram) plainOp() gpucore.MemOp {
	prof := p.w.Prof
	class := []LocalityClass{ClassStreaming, ClassIntraWF, ClassInterWF, ClassMixWF}[p.rnd.WeightedChoice([]float64{
		prof.Streaming, prof.IntraWF, prof.InterWF, prof.MixWF,
	})]
	isStore := p.rnd.Bool(prof.StoreFrac)

	op := gpucore.MemOp{Reqs: p.reqPtrs}
	var base mem.Addr
	coalesced := false
	switch class {
	case ClassStreaming:
		// Fresh coalesced line per op: lanes stride word-wise.
		base = streamBase + mem.Addr(p.wf)*streamRegion + p.streamCursor
		p.streamCursor += mem.Addr(p.w.lineSize)
		coalesced = true
	case ClassIntraWF:
		base = p.privateLine()
	case ClassInterWF:
		// Every wavefront walks the common region once, at its own
		// pace: each line is used by many WFs but only once per WF.
		base = interBase + p.interCursor
		p.interCursor += mem.Addr(p.w.lineSize)
		coalesced = true
	case ClassMixWF:
		base = p.sharedLine()
	}
	wordsPerLine := p.w.lineSize / mem.WordSize
	p.lineScratch = p.lineScratch[:0]
	for l := range op.Reqs {
		var addr mem.Addr
		if coalesced {
			addr = base + mem.Addr((l%wordsPerLine)*mem.WordSize)
		} else {
			addr = base + mem.Addr(p.rnd.Intn(wordsPerLine)*mem.WordSize)
			if l%2 == 1 {
				// Odd lanes roam another line of the same region so one
				// op touches several lines, as scattered SIMT does.
				if class == ClassIntraWF {
					addr = p.privateLine()
				} else {
					addr = p.sharedLine()
				}
				addr += mem.Addr(p.rnd.Intn(wordsPerLine) * mem.WordSize)
			}
		}
		p.noteLine(mem.LineAddr(addr, p.w.lineSize))
		req := p.newReq(l, addr)
		if isStore {
			req.Op = mem.OpStore
			req.Data = uint32(req.ID)
		} else {
			req.Op = mem.OpLoad
		}
	}
	p.trackOp()
	return op
}

// noteLine adds line to the instruction's distinct-line scratch. A
// linear scan beats a map here: a SIMT instruction touches at most a
// handful of lines (1 when coalesced).
func (p *wfProgram) noteLine(line mem.Addr) {
	for _, l := range p.lineScratch {
		if l == line {
			return
		}
	}
	p.lineScratch = append(p.lineScratch, line)
}

// trackOp records one locality access per distinct line the memory
// instruction touched: a coalesced SIMT access is a single use of its
// line, matching Koo et al.'s line-granularity reuse profiling.
func (p *wfProgram) trackOp() {
	for _, line := range p.lineScratch {
		p.w.tracker.Access(p.wf, line)
	}
}

func (p *wfProgram) privateLine() mem.Addr {
	n := p.w.Prof.PrivateLines
	if n <= 0 {
		n = 1
	}
	return privateBase + mem.Addr(p.wf)*privateRegion + mem.Addr(p.rnd.Intn(n)*p.w.lineSize)
}

func (p *wfProgram) sharedLine() mem.Addr {
	n := p.w.Prof.SharedLines
	if n <= 0 {
		n = 1
	}
	return sharedBase + mem.Addr(p.rnd.Intn(n)*p.w.lineSize)
}

// newReq resets lane's reusable request slot for the next instruction.
func (p *wfProgram) newReq(lane int, addr mem.Addr) *mem.Request {
	p.w.nextID++
	r := &p.reqs[lane]
	*r = mem.Request{
		ID:       p.w.nextID,
		Addr:     addr,
		ThreadID: p.wf*p.w.lanes + lane,
	}
	return r
}
