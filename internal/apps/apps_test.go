package apps

import (
	"testing"

	"drftest/internal/coverage"
	"drftest/internal/mem"
	"drftest/internal/sim"
	"drftest/internal/viper"
)

func TestProfilesWellFormed(t *testing.T) {
	if len(Profiles) != 26 {
		t.Fatalf("expected 26 application profiles (Table IV), got %d", len(Profiles))
	}
	seen := map[string]bool{}
	for _, p := range Profiles {
		if seen[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		sum := p.Streaming + p.IntraWF + p.InterWF + p.MixWF
		if sum < 0.95 || sum > 1.05 {
			t.Errorf("%s: locality mix sums to %.2f", p.Name, sum)
		}
		if p.MemOpsPerLane <= 0 || p.ALUPerMem <= 0 {
			t.Errorf("%s: non-positive lengths", p.Name)
		}
	}
}

func TestAppRunCompletes(t *testing.T) {
	k := sim.NewKernel()
	col := coverage.NewCollector(viper.NewTCPSpec(), viper.NewTCCSpec())
	sys := viper.NewSystem(k, viper.DefaultConfig(), col)
	prof := *ByName("Square")
	prof.MemOpsPerLane = 60
	res := Run(k, sys, prof, 7, 8, 4, 0)
	if !res.Completed {
		t.Fatal("application did not complete")
	}
	if res.Faults != 0 {
		t.Fatalf("protocol faults during app run: %d", res.Faults)
	}
	if res.MemOps == 0 || res.Instructions <= res.MemOps {
		t.Fatalf("implausible instruction counts: instr=%d mem=%d", res.Instructions, res.MemOps)
	}
	if res.Locality[ClassStreaming] < 0.5 {
		t.Errorf("Square should be streaming-dominated, got %v", res.Locality)
	}
}

// TestLocalityMatchesProfiles checks the generated traces actually
// exhibit the reuse classes their profiles promise (the Fig. 6
// correspondence).
func TestLocalityMatchesProfiles(t *testing.T) {
	cases := []struct {
		name  string
		class LocalityClass
		min   float64
	}{
		{"Square", ClassStreaming, 0.6},
		{"DNNMark_Pool", ClassStreaming, 0.3},
		{"MatMul", ClassIntraWF, 0.2},
		{"DCT", ClassIntraWF, 0.2},
		{"BinarySearch", ClassInterWF, 0.15},
		{"FloydWarshall", ClassInterWF, 0.1},
		{"CM", ClassMixWF, 0.3},
		{"Interac", ClassMixWF, 0.3},
		{"SpinMutex", ClassMixWF, 0.2},
	}
	for _, tc := range cases {
		k := sim.NewKernel()
		sys := viper.NewSystem(k, viper.DefaultConfig(), nil)
		prof := *ByName(tc.name)
		prof.MemOpsPerLane = 100
		res := Run(k, sys, prof, 11, 8, 4, 0)
		if !res.Completed {
			t.Fatalf("%s did not complete", tc.name)
		}
		if res.Locality[tc.class] < tc.min {
			t.Errorf("%s: %s fraction %.2f < %.2f (full breakdown %v)",
				tc.name, tc.class, res.Locality[tc.class], tc.min, res.Locality)
		}
	}
}

func TestLocalityTrackerClassification(t *testing.T) {
	tr := NewLocalityTracker(64)
	tr.Access(0, 0x000) // streaming: single touch
	tr.Access(0, 0x040) // intra: two touches, one WF
	tr.Access(0, 0x044)
	tr.Access(0, 0x080) // inter: two WFs, once each
	tr.Access(1, 0x084)
	tr.Access(0, 0x0C0) // mix: two WFs, one reuses
	tr.Access(0, 0x0C4)
	tr.Access(1, 0x0C8)
	b := tr.Breakdown()
	for i, want := range []float64{0.25, 0.25, 0.25, 0.25} {
		if b[i] != want {
			t.Fatalf("breakdown[%d] = %v, want %v (all: %v)", i, b[i], want, b)
		}
	}
}

// TestLocalityTrackerWideWavefronts covers the spill path: wavefront
// IDs beyond the bitmask width classify exactly like narrow ones.
func TestLocalityTrackerWideWavefronts(t *testing.T) {
	tr := NewLocalityTracker(64)
	tr.Access(200, 0x000) // streaming
	tr.Access(200, 0x040) // intra: one wide WF, twice
	tr.Access(200, 0x044)
	tr.Access(0, 0x080) // inter: narrow + wide, once each
	tr.Access(300, 0x084)
	tr.Access(150, 0x0C0) // mix: wide WF reuses, another touches
	tr.Access(150, 0x0C4)
	tr.Access(1, 0x0C8)
	b := tr.Breakdown()
	for i, want := range []float64{0.25, 0.25, 0.25, 0.25} {
		if b[i] != want {
			t.Fatalf("breakdown[%d] = %v, want %v (all: %v)", i, b[i], want, b)
		}
	}
}

// TestLocalityTrackerSteadyStateAllocs pins the value-type line
// records: re-touching known lines allocates nothing (the old tracker
// carried a per-line map and allocated on every access).
func TestLocalityTrackerSteadyStateAllocs(t *testing.T) {
	tr := NewLocalityTracker(64)
	round := func() {
		for wf := 0; wf < 8; wf++ {
			for a := mem.Addr(0); a < 0x400; a += 0x20 {
				tr.Access(wf, a)
			}
		}
	}
	round()
	if n := testing.AllocsPerRun(20, round); n != 0 {
		t.Fatalf("steady-state tracker access allocates %.1f objects, want 0", n)
	}
}
