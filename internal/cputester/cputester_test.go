package cputester

import (
	"testing"

	"drftest/internal/cache"
	"drftest/internal/coverage"
	"drftest/internal/directory"
	"drftest/internal/mem"
	"drftest/internal/memctrl"
	"drftest/internal/moesi"
	"drftest/internal/protocol"
	"drftest/internal/sim"
)

// buildCPUSystem assembles numCPUs moesi caches over a directory and
// memory controller.
func buildCPUSystem(k *sim.Kernel, numCPUs int, cacheCfg cache.Config, rec protocol.Recorder) ([]*moesi.Cache, *directory.Directory) {
	ctrl := memctrl.New(k, memctrl.DefaultConfig(), mem.NewStore(), nil)
	dir := directory.New(k, rec, nil, ctrl, cacheCfg.LineSize)
	spec := moesi.NewCPUSpec()
	caches := make([]*moesi.Cache, numCPUs)
	for i := range caches {
		caches[i] = moesi.NewCache(k, spec, rec, nil, cacheCfg, dir)
	}
	return caches, dir
}

func runCPUTester(t *testing.T, numCPUs int, cacheCfg cache.Config, cfg Config) (*Report, *coverage.Collector) {
	t.Helper()
	k := sim.NewKernel()
	col := coverage.NewCollector(moesi.NewCPUSpec(), directory.NewSpec())
	caches, _ := buildCPUSystem(k, numCPUs, cacheCfg, col)
	tester := New(k, caches, cfg)
	return tester.Run(), col
}

var smallCPUCache = cache.Config{SizeBytes: 512, LineSize: 64, Assoc: 2}

func TestCPUTesterPasses(t *testing.T) {
	for _, numCPUs := range []int{2, 4, 8} {
		cfg := DefaultConfig()
		cfg.OpsPerCPU = 1500
		cfg.NumLocations = 128
		rep, col := runCPUTester(t, numCPUs, smallCPUCache, cfg)
		for _, f := range rep.Failures {
			t.Fatalf("%d CPUs: unexpected failure: %s", numCPUs, f.Message)
		}
		if rep.OpsCompleted != rep.OpsIssued {
			t.Fatalf("%d CPUs: completed %d of %d", numCPUs, rep.OpsCompleted, rep.OpsIssued)
		}
		cpu := col.Matrix("CPU-L1").Summarize(nil)
		dir := col.Matrix("Directory").Summarize(nil)
		t.Logf("%d CPUs: ticks=%d  %s  |  %s", numCPUs, rep.SimTicks, cpu, dir)
	}
}

func TestCPUTesterDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 42
	cfg.OpsPerCPU = 500
	rep1, _ := runCPUTester(t, 4, smallCPUCache, cfg)
	rep2, _ := runCPUTester(t, 4, smallCPUCache, cfg)
	if rep1.SimTicks != rep2.SimTicks || rep1.OpsIssued != rep2.OpsIssued {
		t.Fatalf("non-deterministic: ticks %d vs %d, ops %d vs %d",
			rep1.SimTicks, rep2.SimTicks, rep1.OpsIssued, rep2.OpsIssued)
	}
}

// TestCPUTesterProbesFire checks the tester actually provokes the
// coherence traffic it exists to provoke: probes, dirty write-backs,
// and O-state downgrades.
func TestCPUTesterProbesFire(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OpsPerCPU = 3000
	cfg.NumLocations = 256
	cfg.AddressRangeBytes = 16 * 1024 // span many sets so replacements fire
	cfg.StoreFraction = 0.6
	rep, col := runCPUTester(t, 8, smallCPUCache, cfg)
	if !rep.Passed() {
		t.Fatalf("failures: %v", rep.Failures[0])
	}
	m := col.Matrix("CPU-L1")
	for _, cell := range [][2]int{
		{moesi.StateM, moesi.EvPrbInv},
		{moesi.StateM, moesi.EvPrbShr},
		{moesi.StateO, moesi.EvPrbInv},
		{moesi.StateM, moesi.EvRepl},
		{moesi.StateS, moesi.EvStore},
	} {
		if m.Hits[cell[0]][cell[1]] == 0 {
			t.Errorf("expected CPU-L1 [%s,%s] to fire",
				moesi.States[cell[0]], moesi.Events[cell[1]])
		}
	}
	d := col.Matrix("Directory")
	for _, cell := range [][2]int{
		{directory.StateCS, directory.EvCPURdX},
		{directory.StateCM, directory.EvCPUVic},
		{directory.StateB, directory.EvPrbAckData},
		{directory.StateB, directory.EvPrbAckClean},
	} {
		if d.Hits[cell[0]][cell[1]] == 0 {
			t.Errorf("expected Directory [%s,%s] to fire",
				directory.States[cell[0]], directory.Events[cell[1]])
		}
	}
}

// TestCPUTesterDetectsDroppedProbeData injects a CPU-protocol bug —
// invalidation probes of dirty lines ack without the data — and
// checks the Wood-style SC value check catches the resulting stale
// reads.
func TestCPUTesterDetectsDroppedProbeData(t *testing.T) {
	detected := 0
	for seed := uint64(1); seed <= 6; seed++ {
		k := sim.NewKernel()
		caches, _ := buildCPUSystem(k, 4, smallCPUCache, nil)
		for _, c := range caches {
			c.Bugs.DropProbeData = true
		}
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.OpsPerCPU = 2000
		cfg.NumLocations = 32
		cfg.StoreFraction = 0.6
		tester := New(k, caches, cfg)
		if rep := tester.Run(); !rep.Passed() {
			detected++
			if rep.Failures[0].Deadlock {
				t.Errorf("seed %d: expected value mismatch, got deadlock", seed)
			}
		}
	}
	t.Logf("detected in %d/6 seeds", detected)
	if detected < 3 {
		t.Fatalf("CPU tester too weak: dropped-probe-data caught in only %d/6 seeds", detected)
	}
}
