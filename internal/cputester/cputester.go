// Package cputester implements the Wood-et-al-style random tester for
// the CPU side of the heterogeneous system (§II.B, §IV.C).
//
// Unlike the GPU tester it assumes a strong (SC-like) memory model:
// once a store's response returns, its value is globally visible, so
// the tester needs no episodes — it serializes conflicting accesses by
// claiming a location for the duration of each outstanding operation
// and checks every load against a single expected value per location.
// Its role in the paper is to activate the directory transitions the
// GPU tester cannot reach: CPU fills, upgrades, probes and dirty
// write-backs.
package cputester

import (
	"fmt"
	"time"

	"drftest/internal/mem"
	"drftest/internal/moesi"
	"drftest/internal/rng"
	"drftest/internal/sim"
)

// Config parameterizes a CPU tester run (Table III's CPU column).
type Config struct {
	Seed uint64
	// OpsPerCPU is the test length (paper: 100 … 1M loads).
	OpsPerCPU int
	// NumLocations is how many words the tester touches.
	NumLocations int
	// AddressRangeBytes spreads the locations for false sharing.
	AddressRangeBytes uint64
	// StoreFraction is the probability an op is a store.
	StoreFraction float64
	// DeadlockThreshold / CheckPeriod drive the forward-progress scan.
	DeadlockThreshold uint64
	CheckPeriod       sim.Tick
}

// DefaultConfig returns a moderate CPU tester setup.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		OpsPerCPU:         2000,
		NumLocations:      256,
		StoreFraction:     0.5,
		DeadlockThreshold: 1_000_000,
		CheckPeriod:       50_000,
	}
}

func (c Config) withDefaults() Config {
	if c.OpsPerCPU <= 0 {
		c.OpsPerCPU = 1000
	}
	if c.NumLocations <= 0 {
		c.NumLocations = 256
	}
	if c.AddressRangeBytes == 0 {
		c.AddressRangeBytes = 2 * uint64(c.NumLocations) * mem.WordSize
	}
	if c.StoreFraction <= 0 || c.StoreFraction >= 1 {
		c.StoreFraction = 0.5
	}
	if c.DeadlockThreshold == 0 {
		c.DeadlockThreshold = 1_000_000
	}
	if c.CheckPeriod == 0 {
		c.CheckPeriod = 50_000
	}
	return c
}

// location is one tester word with its claim state.
type location struct {
	addr    mem.Addr
	value   uint32
	writer  int // CPU with an outstanding store, or -1
	readers int // CPUs with outstanding loads
}

// Failure is one detected CPU-side bug.
type Failure struct {
	Tick     uint64
	Addr     mem.Addr
	CPU      int
	Expected uint32
	Got      uint32
	Deadlock bool
	Message  string
}

func (f *Failure) Error() string { return f.Message }

// Report summarizes a CPU tester run.
type Report struct {
	Failures     []*Failure
	OpsIssued    uint64
	OpsCompleted uint64
	SimTicks     uint64
	WallTime     time.Duration
}

// Passed reports whether the run found no bugs.
func (r *Report) Passed() bool { return len(r.Failures) == 0 }

type cpuState struct {
	id      int
	done    int
	loc     *location
	isStore bool
	stval   uint32

	// req is the core's reusable request slot: each CPU has exactly one
	// operation in flight and the cache retains no pointer to it past
	// the response, so a fresh struct per op buys nothing. issueFn is
	// the pre-bound continuation scheduled after every response, so the
	// steady-state issue loop allocates neither requests nor closures.
	req     mem.Request
	issueFn func()
}

// Tester drives one moesi cache per simulated CPU core.
type Tester struct {
	k      *sim.Kernel
	cfg    Config
	rnd    *rng.PCG
	caches []*moesi.Cache
	cpus   []*cpuState
	locs   []*location

	nextID       uint64
	opsIssued    uint64
	opsCompleted uint64
	lastWorkTick uint64
	failures     []*Failure
	deadlockSeen bool
	finished     int
}

// New builds a CPU tester over the given caches (one per core).
func New(k *sim.Kernel, caches []*moesi.Cache, cfg Config) *Tester {
	cfg = cfg.withDefaults()
	t := &Tester{k: k, cfg: cfg, rnd: rng.New(cfg.Seed, 0xC4D), caches: caches}
	slots := int(cfg.AddressRangeBytes / mem.WordSize)
	chosen := make(map[int]struct{}, cfg.NumLocations)
	for len(t.locs) < cfg.NumLocations {
		s := t.rnd.Intn(slots)
		if _, dup := chosen[s]; dup {
			continue
		}
		chosen[s] = struct{}{}
		t.locs = append(t.locs, &location{addr: mem.Addr(s * mem.WordSize), writer: -1})
	}
	for i, c := range caches {
		st := &cpuState{id: i}
		st.issueFn = func() { t.issue(st) }
		t.cpus = append(t.cpus, st)
		c.SetClient(&cpuClient{t: t, cpu: st})
	}
	return t
}

// cpuClient routes one core's responses back into the tester.
type cpuClient struct {
	t   *Tester
	cpu *cpuState
}

func (c *cpuClient) HandleResponse(resp *mem.Response) { c.t.handle(c.cpu, resp) }

// Start schedules every core's first operation and the deadlock scan.
func (t *Tester) Start() {
	for _, cpu := range t.cpus {
		t.k.Schedule(0, cpu.issueFn)
	}
	t.k.Schedule(t.cfg.CheckPeriod, t.heartbeat)
}

// Run executes the whole test and returns its report.
func (t *Tester) Run() *Report {
	start := time.Now()
	t.Start()
	t.k.RunUntilIdle()
	t.finish()
	return &Report{
		Failures:     t.failures,
		OpsIssued:    t.opsIssued,
		OpsCompleted: t.opsCompleted,
		SimTicks:     t.lastWorkTick,
		WallTime:     time.Since(start),
	}
}

// Failures returns the bugs found so far.
func (t *Tester) Failures() []*Failure { return t.failures }

// RNGState returns the tester's PCG stream state, captured for replay
// artifacts.
func (t *Tester) RNGState() (state, inc uint64) { return t.rnd.State() }

// traceComponent names the tester in kernel trace entries.
const traceComponent = "cpu-tester"

func (t *Tester) issue(cpu *cpuState) {
	if t.k.Stopped() {
		return
	}
	if cpu.done >= t.cfg.OpsPerCPU {
		t.finished++
		return
	}
	isStore := t.rnd.Bool(t.cfg.StoreFraction)
	loc := t.pick(cpu.id, isStore)
	if loc == nil {
		isStore = false
		loc = t.pick(cpu.id, false)
	}
	if loc == nil {
		// Every location is being written; retry shortly.
		t.k.Schedule(10, cpu.issueFn)
		return
	}
	cpu.loc = loc
	cpu.isStore = isStore
	t.nextID++
	cpu.req = mem.Request{ID: t.nextID, Addr: loc.addr, ThreadID: cpu.id}
	req := &cpu.req
	if isStore {
		loc.writer = cpu.id
		cpu.stval = uint32(t.nextID)
		req.Op = mem.OpStore
		req.Data = cpu.stval
	} else {
		loc.readers++
		req.Op = mem.OpLoad
	}
	t.opsIssued++
	if t.k.Tracing() {
		label := "issue load"
		if isStore {
			label = "issue store"
		}
		t.k.Trace(traceComponent, label, uint64(loc.addr))
	}
	t.caches[cpu.id].Issue(req)
}

// pick finds a location cpu may access: stores need the location
// wholly unclaimed; loads only need no foreign store outstanding.
func (t *Tester) pick(cpu int, store bool) *location {
	for try := 0; try < 64; try++ {
		loc := t.locs[t.rnd.Intn(len(t.locs))]
		if store && loc.writer < 0 && loc.readers == 0 {
			return loc
		}
		if !store && loc.writer < 0 {
			return loc
		}
	}
	return nil
}

func (t *Tester) handle(cpu *cpuState, resp *mem.Response) {
	t.opsCompleted++
	t.lastWorkTick = resp.Tick
	loc := cpu.loc
	if cpu.isStore {
		if t.k.Tracing() {
			t.k.Trace(traceComponent, "resp store", uint64(loc.addr))
		}
		loc.writer = -1
		loc.value = cpu.stval
	} else {
		if t.k.Tracing() {
			t.k.Trace(traceComponent, "resp load", uint64(loc.addr))
		}
		loc.readers--
		if resp.Data != loc.value {
			if t.k.Tracing() {
				t.k.Trace(traceComponent, "fail value-mismatch", uint64(loc.addr))
			}
			t.failures = append(t.failures, &Failure{
				Tick: resp.Tick, Addr: loc.addr, CPU: cpu.id,
				Expected: loc.value, Got: resp.Data,
				Message: fmt.Sprintf("cpu %d load of %#x returned %d, expected %d",
					cpu.id, uint64(loc.addr), resp.Data, loc.value),
			})
			t.k.Stop()
			return
		}
	}
	cpu.done++
	t.k.Schedule(1, cpu.issueFn)
}

func (t *Tester) heartbeat() {
	if t.finished == len(t.cpus) || t.k.Stopped() {
		return
	}
	now := uint64(t.k.Now())
	for _, c := range t.caches {
		c.ForEachOutstanding(func(r *mem.Request) {
			if t.deadlockSeen || now-r.IssueTick <= t.cfg.DeadlockThreshold {
				return
			}
			t.deadlockSeen = true
			if t.k.Tracing() {
				t.k.Trace(traceComponent, "fail deadlock", uint64(r.Addr))
			}
			t.failures = append(t.failures, &Failure{
				Tick: now, Addr: r.Addr, CPU: r.CUID, Deadlock: true,
				Message: fmt.Sprintf("no forward progress: %s outstanding for %d ticks", r, now-r.IssueTick),
			})
			t.k.Stop()
		})
	}
	if !t.deadlockSeen {
		t.k.Schedule(t.cfg.CheckPeriod, t.heartbeat)
	}
}

func (t *Tester) finish() {
	if len(t.failures) > 0 {
		return
	}
	outstanding := 0
	for _, c := range t.caches {
		outstanding += c.OutstandingCount()
	}
	if outstanding > 0 {
		t.failures = append(t.failures, &Failure{
			Tick: uint64(t.k.Now()), Deadlock: true,
			Message: fmt.Sprintf("simulation idle with %d CPU requests outstanding", outstanding),
		})
	}
}
