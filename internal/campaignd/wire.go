// Package campaignd is the distributed campaign control plane: an
// HTTP/JSON daemon that accepts campaign specs, shards each batch of
// seeds into leases across a local worker pool and remote worker
// processes, merges streamed-back coverage deltas at the batch
// barrier, and persists failure artifacts into a content-addressed
// store.
//
// The daemon owns the campaign state machine (harness.CampaignState):
// corner choice, union merging, attribution and the K-zero-batch
// stopping rule all happen centrally, in batch order, so a distributed
// campaign's outcome is byte-identical to the single-process
// `gputester -campaign` path for the same spec — both drive the same
// Plan/Apply sequence; workers only execute seeds. Leases carry a
// timeout and are reissued when a worker disappears, so every seed in
// the campaign's range runs exactly once *as observed by the merge
// layer* (duplicate results from a slow worker are dropped at the
// barrier; the seeds' deltas are deterministic, so either copy is the
// same bytes).
//
// Wire economics: a worker runs a whole lease (a contiguous slice of
// one batch's seeds) against its reusable run context and posts one
// compact result — the coverage delta as a sparse nonzero-cell list,
// failures with their replay artifacts inline — so merge and I/O costs
// amortize per lease, not per seed, and aggregate seeds/sec scales
// with worker processes.
package campaignd

import (
	"fmt"
	"time"

	"drftest/internal/core"
	"drftest/internal/coverage"
	"drftest/internal/harness"
	"drftest/internal/protocol"
	"drftest/internal/viper"
)

// WireSchema versions the control-plane API payloads. Daemon and
// workers must agree; the lease handshake carries it.
const WireSchema = 1

// DefaultLeaseTimeout is how long the daemon waits for a lease's
// result before requeuing it for another worker.
const DefaultLeaseTimeout = 60 * time.Second

// Spec is a campaign submission: everything the daemon needs to run a
// campaign, and everything a worker needs to execute its leases. It is
// the JSON body of POST /campaigns and rides along with every lease so
// workers can build run contexts without a second round trip.
type Spec struct {
	SysCfg  viper.Config `json:"sysCfg"`
	TestCfg core.Config  `json:"testCfg"`
	// Mode is the corner policy: "uniform", "swarm" or "directed".
	Mode     string `json:"mode,omitempty"`
	BaseSeed uint64 `json:"baseSeed"`
	// BatchSize, SaturateK and MaxSeeds are the campaign shape knobs,
	// with the same defaults as harness.CampaignConfig.
	BatchSize int `json:"batchSize,omitempty"`
	SaturateK int `json:"saturateK,omitempty"`
	MaxSeeds  int `json:"maxSeeds,omitempty"`
	// Fork/Rebuild select the worker-side run-context strategy.
	Fork    bool `json:"fork,omitempty"`
	Rebuild bool `json:"rebuild,omitempty"`
	// TraceDepth sizes the execution-trace ring behind failure
	// artifacts (≤0 → harness.DefaultTraceCapacity).
	TraceDepth int `json:"traceDepth,omitempty"`
	// LeaseSeeds shards each batch into leases of at most this many
	// seeds (≤0 → max(1, BatchSize/4)). Smaller leases spread a batch
	// across more workers; the outcome never depends on it.
	LeaseSeeds int `json:"leaseSeeds,omitempty"`
	// LeaseTimeoutMs is how long the daemon waits for a lease's result
	// before reissuing it (≤0 → the daemon's default). A killed worker
	// therefore never loses seeds — its leases requeue.
	LeaseTimeoutMs int64 `json:"leaseTimeoutMs,omitempty"`
	// Artifacts is set by the daemon at admission when it has an
	// artifact store: workers then ship replay artifacts inline with
	// their results.
	Artifacts bool `json:"artifacts,omitempty"`
}

// withDefaults resolves the spec's sharding defaults (the campaign
// shape defaults live in harness.CampaignConfig.withDefaults).
func (s Spec) withDefaults() Spec {
	if s.BatchSize <= 0 {
		s.BatchSize = 16
	}
	if s.MaxSeeds <= 0 {
		s.MaxSeeds = harness.DefaultCampaignMaxSeeds
	}
	if s.LeaseSeeds <= 0 {
		s.LeaseSeeds = s.BatchSize / 4
		if s.LeaseSeeds < 1 {
			s.LeaseSeeds = 1
		}
	}
	return s
}

// CampaignConfig lowers the spec to the harness campaign config a
// CampaignState or worker run context is built from.
func (s Spec) CampaignConfig() (harness.CampaignConfig, error) {
	mode, err := harness.ParseCampaignMode(s.Mode)
	if err != nil {
		return harness.CampaignConfig{}, err
	}
	if s.Fork && s.Rebuild {
		return harness.CampaignConfig{}, fmt.Errorf("campaignd: spec sets both fork and rebuild")
	}
	return harness.CampaignConfig{
		SysCfg:           s.SysCfg,
		TestCfg:          s.TestCfg,
		BaseSeed:         s.BaseSeed,
		Workers:          1, // per-context; parallelism comes from leases
		BatchSize:        s.BatchSize,
		SaturateK:        s.SaturateK,
		MaxSeeds:         s.MaxSeeds,
		Rebuild:          s.Rebuild,
		Fork:             s.Fork,
		Mode:             mode,
		TraceDepth:       s.TraceDepth,
		CaptureArtifacts: s.Artifacts,
	}, nil
}

// leaseTimeout resolves the spec's lease timeout against the daemon
// default.
func (s Spec) leaseTimeout(def time.Duration) time.Duration {
	if s.LeaseTimeoutMs > 0 {
		return time.Duration(s.LeaseTimeoutMs) * time.Millisecond
	}
	if def > 0 {
		return def
	}
	return DefaultLeaseTimeout
}

// Lease is one unit of work: a contiguous slice of one batch's seeds,
// plus the corner level vector the seeds run under (the corner itself
// is reconstructed worker-side; it is a pure function of the spec's
// base configs and the levels).
type Lease struct {
	Campaign string `json:"campaign"`
	// Batch is the batch index; Lease the shard index within it. A
	// result echoes both so the daemon can drop stale or duplicate
	// submissions at the barrier.
	Batch int `json:"batch"`
	Lease int `json:"lease"`
	// Seeds are First..First+Count-1.
	First  uint64               `json:"first"`
	Count  int                  `json:"count"`
	Levels harness.CornerLevels `json:"levels"`
}

// Lease poll statuses.
const (
	// StatusLease: the response carries a lease to execute.
	StatusLease = "lease"
	// StatusWait: no work right now; poll again.
	StatusWait = "wait"
	// StatusShutdown: the daemon is draining; the worker should exit.
	StatusShutdown = "shutdown"
)

// LeaseRequest is the body of POST /lease: a long-poll for work.
type LeaseRequest struct {
	Schema int `json:"schema"`
	// Worker identifies the polling worker (diagnostics and the
	// active-worker metric only — the daemon never keys correctness on
	// it).
	Worker string `json:"worker"`
	// WaitMs bounds the long poll; the daemon responds StatusWait when
	// it elapses with no work.
	WaitMs int64 `json:"waitMs,omitempty"`
}

// LeaseResponse answers a lease poll.
type LeaseResponse struct {
	Status string `json:"status"`
	Lease  *Lease `json:"lease,omitempty"`
	// Spec is the admitted spec of the lease's campaign, so a worker
	// seeing the campaign for the first time can build its run context
	// without another round trip.
	Spec *Spec `json:"spec,omitempty"`
}

// SparseCell is one nonzero coverage cell on the wire. A whole lease's
// coverage delta is the list of its nonzero cells — for a protocol
// table of a few hundred cells this is a handful of integers per
// lease, versus two full matrices per seed.
type SparseCell struct {
	S int    `json:"s"`
	E int    `json:"e"`
	N uint64 `json:"n"`
}

// LeaseResult is the body of POST /results: one executed lease's
// merge-ready outcome.
type LeaseResult struct {
	Schema   int    `json:"schema"`
	Campaign string `json:"campaign"`
	Batch    int    `json:"batch"`
	Lease    int    `json:"lease"`
	Worker   string `json:"worker,omitempty"`
	// Seeds is the number of seeds executed (must equal the lease's
	// Count; the daemon rejects short results).
	Seeds int `json:"seeds"`
	// L1/L2 are the sparse coverage deltas.
	L1 []SparseCell `json:"l1,omitempty"`
	L2 []SparseCell `json:"l2,omitempty"`
	// Failures carry each failing seed's failures plus its replay
	// artifact inline (Spec.Artifacts set).
	Failures []harness.SeedFailure `json:"failures,omitempty"`
	Ops      uint64                `json:"ops"`
	Events   uint64                `json:"events"`
	WallNs   int64                 `json:"wallNs"`
}

// SparseFromMatrix lists m's nonzero cells in row-major order.
func SparseFromMatrix(m *coverage.Matrix) []SparseCell {
	var out []SparseCell
	for i := range m.Hits {
		for j, n := range m.Hits[i] {
			if n != 0 {
				out = append(out, SparseCell{S: i, E: j, N: n})
			}
		}
	}
	return out
}

// AddSparse folds a sparse delta into dst, bounds-checking every cell
// (wire data is untrusted).
func AddSparse(dst *coverage.Matrix, cells []SparseCell) error {
	for _, c := range cells {
		if c.S < 0 || c.S >= len(dst.Hits) || c.E < 0 || c.E >= len(dst.Hits[c.S]) {
			return fmt.Errorf("sparse cell [%d,%d] outside %s's %dx%d table",
				c.S, c.E, dst.Spec.Name, len(dst.Hits), len(dst.Spec.Events))
		}
		dst.Hits[c.S][c.E] += c.N
	}
	return nil
}

// resultToDelta decodes a wire result into a merge-ready BatchDelta
// over freshly allocated matrices shaped by the campaign's specs.
func resultToDelta(res *LeaseResult, l1Spec, l2Spec *protocol.Spec) (harness.BatchDelta, error) {
	d := harness.BatchDelta{
		Failures: res.Failures,
		Seeds:    res.Seeds,
		Ops:      res.Ops,
		Events:   res.Events,
		Wall:     time.Duration(res.WallNs),
	}
	d.L1 = coverage.NewMatrix(l1Spec)
	d.L2 = coverage.NewMatrix(l2Spec)
	if err := AddSparse(d.L1, res.L1); err != nil {
		return d, err
	}
	if err := AddSparse(d.L2, res.L2); err != nil {
		return d, err
	}
	return d, nil
}
