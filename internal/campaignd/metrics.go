package campaignd

import "sync/atomic"

// Metrics is the daemon's expvar-style counter set, served as JSON by
// GET /metrics. All counters are monotonic totals since daemon start;
// gauges (active workers, campaign states) are computed at snapshot
// time from live server state.
type Metrics struct {
	SeedsRun           atomic.Uint64
	BatchesMerged      atomic.Uint64
	CellsActivated     atomic.Uint64
	LeasesIssued       atomic.Uint64
	LeasesExpired      atomic.Uint64
	LeasesCompleted    atomic.Uint64
	ResultsDropped     atomic.Uint64
	Artifacts          atomic.Uint64
	CampaignsSubmitted atomic.Uint64
	CampaignsCompleted atomic.Uint64
}

// snapshot renders the counters as the /metrics JSON payload; the
// server adds its gauges on top.
func (m *Metrics) snapshot() map[string]any {
	return map[string]any{
		"seedsRun":           m.SeedsRun.Load(),
		"batchesMerged":      m.BatchesMerged.Load(),
		"cellsActivated":     m.CellsActivated.Load(),
		"leasesIssued":       m.LeasesIssued.Load(),
		"leasesExpired":      m.LeasesExpired.Load(),
		"leasesCompleted":    m.LeasesCompleted.Load(),
		"resultsDropped":     m.ResultsDropped.Load(),
		"artifacts":          m.Artifacts.Load(),
		"campaignsSubmitted": m.CampaignsSubmitted.Load(),
		"campaignsCompleted": m.CampaignsCompleted.Load(),
	}
}
