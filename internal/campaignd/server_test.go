package campaignd

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"drftest/internal/core"
	"drftest/internal/harness"
	"drftest/internal/viper"
)

// testSpec is a campaign small enough for e2e tests but large enough
// to span several batches and (in swarm/directed modes) several
// corners.
func testSpec(mode string) Spec {
	cfg := core.DefaultConfig()
	cfg.NumWavefronts = 6
	cfg.EpisodesPerThread = 6
	cfg.ActionsPerEpisode = 24
	cfg.NumSyncVars = 4
	cfg.NumDataVars = 64
	cfg.StoreFraction = 0.6
	cfg.KeepGoing = true
	return Spec{
		SysCfg:     viper.SmallCacheConfig(),
		TestCfg:    cfg,
		Mode:       mode,
		BaseSeed:   100,
		BatchSize:  8,
		SaturateK:  2,
		MaxSeeds:   64,
		LeaseSeeds: 3, // deliberately not a divisor of the batch size
	}
}

// canonical renders a campaign result for equality comparison across
// executors: wall-clock fields are zeroed and artifact capture
// stripped (a daemon with a store rewrites paths; the underlying
// failures must still match exactly).
func canonical(t testing.TB, res *harness.CampaignResult) string {
	t.Helper()
	r := *res
	r.Wall, r.TotalWall = 0, 0
	r.Failures = append([]harness.SeedFailure(nil), r.Failures...)
	for i := range r.Failures {
		r.Failures[i].Artifact = nil
		r.Failures[i].ArtifactPath = ""
		r.Failures[i].ArtifactErr = ""
	}
	b, err := json.Marshal(&r)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return string(b)
}

// localResult runs the spec through the single-process campaign
// engine — the reference every distributed outcome must match
// byte-identically.
func localResult(t *testing.T, spec Spec, workers int) *harness.CampaignResult {
	t.Helper()
	cfg, err := spec.CampaignConfig()
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	cfg.Workers = workers
	cfg.CaptureArtifacts = false
	return harness.RunGPUCampaign(cfg)
}

// daemonResult runs the spec on an in-process daemon with a local
// worker pool and returns the result after draining.
func daemonResult(t *testing.T, spec Spec, localWorkers int, opts Options) *harness.CampaignResult {
	t.Helper()
	opts.LocalWorkers = localWorkers
	opts.Logf = t.Logf
	srv := NewServer(opts)
	srv.Start()
	id, err := srv.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	res, err := srv.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	srv.Drain(ctx)
	return res
}

// finished reports (under the server lock) whether a campaign is done.
func finished(srv *Server, id string) bool {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return srv.campaigns[id].finished()
}

// TestDaemonMatchesLocal is the tentpole determinism pin: the same
// spec produces byte-identical campaign outcomes — union matrices,
// batch records, failure sets, saturation point — whether run by the
// single-process engine or sharded into leases across daemon worker
// pools of different sizes.
func TestDaemonMatchesLocal(t *testing.T) {
	for _, mode := range []string{"uniform", "swarm", "directed"} {
		t.Run(mode, func(t *testing.T) {
			spec := testSpec(mode)
			want := canonical(t, localResult(t, spec, 2))
			for _, workers := range []int{1, 4} {
				got := canonical(t, daemonResult(t, spec, workers, Options{}))
				if got != want {
					t.Errorf("daemon with %d local workers diverged from local run\nlocal:  %.200s\ndaemon: %.200s",
						workers, want, got)
				}
			}
		})
	}
}

// TestDaemonFindsInjectedBug pins the failure path end to end: a
// bug-injected distributed campaign reports exactly the failures the
// local engine finds, and with a store attached every failing seed's
// artifact is persisted content-addressed and the failure rewritten to
// its store path.
func TestDaemonFindsInjectedBug(t *testing.T) {
	spec := testSpec("uniform")
	spec.SysCfg.Bugs.LostWriteRace = true
	spec.MaxSeeds = 24
	spec.SaturateK = 0 // fixed-length: every executor runs exactly 24 seeds

	local := localResult(t, spec, 2)
	if len(local.Failures) == 0 {
		t.Fatal("injected lostwrite bug found no failures locally; test spec too small")
	}

	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res := daemonResult(t, spec, 2, Options{Store: store})
	if got, want := canonical(t, res), canonical(t, local); got != want {
		t.Errorf("bug campaign diverged\nlocal:  %.200s\ndaemon: %.200s", want, got)
	}
	if store.Len() == 0 {
		t.Fatal("store holds no artifacts after a failing campaign")
	}
	for _, sf := range res.Failures {
		if sf.ArtifactPath == "" {
			t.Errorf("seed %d: no artifact path (err %q)", sf.Seed, sf.ArtifactErr)
			continue
		}
		if !strings.Contains(sf.ArtifactPath, "objects") {
			t.Errorf("seed %d: artifact %s not in the store", sf.Seed, sf.ArtifactPath)
		}
		if _, err := harness.LoadArtifact(sf.ArtifactPath); err != nil {
			t.Errorf("seed %d: stored artifact unreadable: %v", sf.Seed, err)
		}
	}
}

// TestDaemonRemoteWorkersMatchLocal is the multi-process e2e pin: a
// daemon with no local pool, serving two genuine worker subprocesses
// over HTTP, produces the byte-identical outcome — and the workers
// exit cleanly when the daemon drains.
func TestDaemonRemoteWorkersMatchLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e in -short mode")
	}
	spec := testSpec("directed")
	spec.SysCfg.Bugs.LostWriteRace = true
	spec.MaxSeeds = 32
	want := canonical(t, localResult(t, spec, 2))

	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Options{Store: store, Logf: t.Logf, ReportDir: t.TempDir()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	w1 := startWorkerProcess(t, ts.URL, "w1", 1)
	w2 := startWorkerProcess(t, ts.URL, "w2", 1)

	id, err := srv.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()
	res, err := srv.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if got := canonical(t, res); got != want {
		t.Errorf("remote-worker campaign diverged from local run\nlocal:  %.200s\ndaemon: %.200s", want, got)
	}
	if len(res.Failures) == 0 {
		t.Error("remote campaign found no failures for the injected bug")
	}

	srv.Drain(ctx)
	if err := w1.Wait(); err != nil {
		t.Errorf("worker 1 exit: %v", err)
	}
	if err := w2.Wait(); err != nil {
		t.Errorf("worker 2 exit: %v", err)
	}
}

// TestLeaseRequeue pins the fault-tolerance path: a lease issued to a
// worker that dies is reissued after its timeout to the next poller,
// the campaign completes with the exact local outcome, and the late
// duplicate submission from the "dead" worker is dropped.
func TestLeaseRequeue(t *testing.T) {
	spec := testSpec("uniform")
	spec.MaxSeeds = 16
	spec.SaturateK = 0
	spec.LeaseTimeoutMs = 100

	srv := NewServer(Options{Logf: t.Logf})
	id, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// The doomed worker takes the first lease and vanishes.
	doomed := srv.nextLease("doomed", time.Second)
	if doomed.Status != StatusLease {
		t.Fatalf("first poll: %+v", doomed)
	}

	// A live worker drains the campaign; the stolen lease must come
	// back to it once the 100ms timeout expires.
	runners := newRunnerSet()
	var reissuedCopy *LeaseResult
	for !finished(srv, id) {
		resp := srv.nextLease("live", 2*time.Second)
		if resp.Status == StatusWait {
			continue
		}
		if resp.Status != StatusLease {
			t.Fatalf("poll: %+v", resp)
		}
		res, err := runners.run(resp.Lease, resp.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Lease.Batch == doomed.Lease.Batch && resp.Lease.Lease == doomed.Lease.Lease {
			cp := *res // the reissue: keep a duplicate to submit late
			reissuedCopy = &cp
		}
		if err := srv.submitResult(res); err != nil {
			t.Fatal(err)
		}
	}
	if reissuedCopy == nil {
		t.Fatal("expired lease was never reissued")
	}
	if srv.metrics.LeasesExpired.Load() == 0 {
		t.Error("no lease expiry counted")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := srv.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonical(t, res), canonical(t, localResult(t, spec, 1)); got != want {
		t.Errorf("requeued campaign diverged from local run")
	}

	// The dead worker's duplicate arrives after the merge: dropped, not
	// double-counted.
	dropped := srv.metrics.ResultsDropped.Load()
	if err := srv.submitResult(reissuedCopy); err != nil {
		t.Errorf("duplicate submission errored: %v", err)
	}
	if got := srv.metrics.ResultsDropped.Load(); got != dropped+1 {
		t.Errorf("duplicate not counted as dropped: %d -> %d", dropped, got)
	}
}

// TestDrainStopsAtBatchBoundary pins graceful shutdown: draining
// mid-campaign finishes the in-flight batch, finalizes the campaign at
// a whole-batch prefix of the canonical local run, and writes the
// final report.
func TestDrainStopsAtBatchBoundary(t *testing.T) {
	spec := testSpec("swarm")
	spec.SaturateK = 0
	spec.MaxSeeds = 512 // far more work than the drain will allow
	reportDir := t.TempDir()

	srv := NewServer(Options{LocalWorkers: 2, Logf: t.Logf, ReportDir: reportDir})
	srv.Start()
	id, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let some batches merge, then pull the plug.
	deadline := time.Now().Add(60 * time.Second)
	for {
		srv.mu.Lock()
		batches := srv.campaigns[id].state.Progress().Batches
		srv.mu.Unlock()
		if batches >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no batches merged before drain deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	srv.Drain(ctx)

	res, err := srv.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if res.SeedsRun == 0 || res.SeedsRun%spec.BatchSize != 0 {
		t.Errorf("drained campaign ran %d seeds; want a nonzero multiple of %d", res.SeedsRun, spec.BatchSize)
	}
	if res.SeedsRun >= spec.MaxSeeds {
		t.Errorf("drain did not truncate the campaign (%d seeds)", res.SeedsRun)
	}

	// The merged prefix must equal the canonical run truncated to the
	// same batch count.
	full := localResult(t, spec, 2)
	for b := 0; b < res.Batches; b++ {
		if res.NewCellsByBatch[b] != full.NewCellsByBatch[b] || res.CornerByBatch[b] != full.CornerByBatch[b] {
			t.Errorf("batch %d diverges from canonical prefix: (%d, %s) vs (%d, %s)", b,
				res.NewCellsByBatch[b], res.CornerByBatch[b],
				full.NewCellsByBatch[b], full.CornerByBatch[b])
		}
	}

	data, err := os.ReadFile(filepath.Join(reportDir, id+".json"))
	if err != nil {
		t.Fatalf("final report: %v", err)
	}
	var report map[string]any
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("final report: %v", err)
	}
	if aborted, _ := report["aborted"].(bool); !aborted {
		t.Error("drained campaign's report not marked aborted")
	}
}

// TestMetricsAndHTTPSurface walks the HTTP API end to end with the
// in-process pool: submit over POST, status long-poll, result report,
// metrics counters consistent with the campaign outcome, and pprof
// reachable.
func TestMetricsAndHTTPSurface(t *testing.T) {
	srv := NewServer(Options{LocalWorkers: 2, Logf: t.Logf})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	spec := testSpec("uniform")
	id, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Status(ctx, "nope", 0); err == nil {
		t.Error("status of unknown campaign did not error")
	}
	report, err := client.WaitDone(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if passed, _ := report["passed"].(bool); !passed {
		t.Errorf("clean campaign reported failure: %v", report["failures"])
	}
	res, err := srv.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if got := int(report["seedsRun"].(float64)); got != res.SeedsRun {
		t.Errorf("report seedsRun %d, result %d", got, res.SeedsRun)
	}

	m, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := 0
	for _, n := range res.NewCellsByBatch {
		wantCells += n
	}
	checks := map[string]int{
		"seedsRun":           res.SeedsRun,
		"batchesMerged":      res.Batches,
		"cellsActivated":     wantCells,
		"campaignsSubmitted": 1,
		"campaignsCompleted": 1,
	}
	for key, want := range checks {
		if got := int(m[key].(float64)); got != want {
			t.Errorf("metrics[%s] = %d, want %d", key, got, want)
		}
	}
	if got := int(m["leasesCompleted"].(float64)); got < res.Batches {
		t.Errorf("leasesCompleted %d < batches %d", got, res.Batches)
	}

	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof endpoint: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof endpoint status %d", resp.StatusCode)
	}

	srv.Drain(ctx)
}
