package campaignd

import (
	"os"
	"strings"
	"testing"
)

func TestStorePutDedupResolve(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	data := []byte(`{"schema":1,"kind":"gpu"}` + "\n")
	h1, p1, created, err := st.Put(data, ObjectMeta{Kind: "gpu", Seed: 7, Tick: 42, Campaign: "c001"})
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Error("first Put not marked created")
	}
	if got, err := os.ReadFile(p1); err != nil || string(got) != string(data) {
		t.Fatalf("object file: %q, %v", got, err)
	}

	// Identical bytes deduplicate; the first metadata wins.
	h2, _, created, err := st.Put(data, ObjectMeta{Kind: "gpu", Seed: 999})
	if err != nil {
		t.Fatal(err)
	}
	if created || h2 != h1 {
		t.Errorf("duplicate Put: created=%v hash %s vs %s", created, h2, h1)
	}
	if st.Len() != 1 {
		t.Errorf("store has %d objects, want 1", st.Len())
	}
	if m, ok := st.Meta(h1); !ok || m.Seed != 7 || m.Tick != 42 || m.Campaign != "c001" {
		t.Errorf("meta = %+v, %v", m, ok)
	}

	other := []byte("different artifact\n")
	h3, _, _, err := st.Put(other, ObjectMeta{Kind: "gpu", Seed: 8, MinimizedFrom: h1})
	if err != nil {
		t.Fatal(err)
	}

	// Resolution: full hash, sha256: prefix, unique abbreviation.
	for _, ref := range []string{h1, "sha256:" + h1, h1[:8], strings.ToUpper(h1[:12])} {
		hash, path, err := st.Resolve(ref)
		if err != nil || hash != h1 || path != p1 {
			t.Errorf("Resolve(%q) = %s, %s, %v", ref, hash, path, err)
		}
	}
	if _, _, err := st.Resolve("00"); err == nil {
		t.Error("too-short prefix resolved")
	}
	if _, _, err := st.Resolve("notahash!"); err == nil {
		t.Error("non-hex ref resolved")
	}
	if _, _, err := st.Resolve(strings.Repeat("0", 64)); err == nil {
		t.Error("absent full hash resolved")
	}
	// An ambiguous prefix must error and name the candidates.
	if common := commonPrefix(h1, h3); len(common) >= 4 {
		if _, _, err := st.Resolve(common); err == nil || !strings.Contains(err.Error(), "ambiguous") {
			t.Errorf("ambiguous prefix %q: %v", common, err)
		}
	}

	// Reopen: the index round-trips, including provenance.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 2 {
		t.Errorf("reopened store has %d objects, want 2", st2.Len())
	}
	if m, ok := st2.Meta(h3); !ok || m.MinimizedFrom != h1 {
		t.Errorf("reopened meta = %+v, %v", m, ok)
	}
	if got := st2.Hashes(); len(got) != 2 {
		t.Errorf("Hashes() = %v", got)
	}
}

func commonPrefix(a, b string) string {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	return a[:i]
}
