package campaignd

import (
	"testing"

	"drftest/internal/coverage"
	"drftest/internal/viper"
)

func TestSparseRoundTrip(t *testing.T) {
	spec := viper.NewTCPSpec()
	m := coverage.NewMatrix(spec)
	m.Hits[0][1] = 3
	m.Hits[2][0] = 1
	last := len(m.Hits) - 1
	m.Hits[last][len(m.Hits[last])-1] = 7

	cells := SparseFromMatrix(m)
	if len(cells) != 3 {
		t.Fatalf("sparse encoding has %d cells, want 3", len(cells))
	}
	back := coverage.NewMatrix(spec)
	if err := AddSparse(back, cells); err != nil {
		t.Fatal(err)
	}
	for i := range m.Hits {
		for j := range m.Hits[i] {
			if m.Hits[i][j] != back.Hits[i][j] {
				t.Fatalf("cell [%d][%d]: %d vs %d", i, j, m.Hits[i][j], back.Hits[i][j])
			}
		}
	}

	// AddSparse accumulates (union merge is addition on the wire too).
	if err := AddSparse(back, cells); err != nil {
		t.Fatal(err)
	}
	if back.Hits[0][1] != 6 {
		t.Errorf("double add: %d, want 6", back.Hits[0][1])
	}

	// Out-of-range cells are rejected, not written.
	for _, bad := range []SparseCell{
		{S: -1, E: 0, N: 1},
		{S: len(m.Hits), E: 0, N: 1},
		{S: 0, E: len(m.Hits[0]), N: 1},
	} {
		if err := AddSparse(back, []SparseCell{bad}); err == nil {
			t.Errorf("cell %+v accepted", bad)
		}
	}
}

func TestSpecDefaults(t *testing.T) {
	s := Spec{}.withDefaults()
	if s.BatchSize != 16 || s.MaxSeeds <= 0 {
		t.Errorf("defaults: %+v", s)
	}
	if s.LeaseSeeds != 4 {
		t.Errorf("LeaseSeeds = %d, want batch/4 = 4", s.LeaseSeeds)
	}
	if s = (Spec{BatchSize: 3}).withDefaults(); s.LeaseSeeds != 1 {
		t.Errorf("small batch LeaseSeeds = %d, want 1", s.LeaseSeeds)
	}
	if s = (Spec{LeaseSeeds: 9}).withDefaults(); s.LeaseSeeds != 9 {
		t.Errorf("explicit LeaseSeeds overridden: %d", s.LeaseSeeds)
	}

	if _, err := (Spec{Fork: true, Rebuild: true}).CampaignConfig(); err == nil {
		t.Error("fork+rebuild spec accepted")
	}
	if _, err := (Spec{Mode: "bogus"}).CampaignConfig(); err == nil {
		t.Error("bogus mode accepted")
	}
}
