package campaignd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"drftest/internal/harness"
)

// leaseRunner executes one campaign's leases on a long-lived reusable
// run context, reconstructing corners from lease level vectors via an
// interning cache (so consecutive leases under one corner keep the
// RunContext's pointer-compare fast paths, exactly like the
// single-process pool).
type leaseRunner struct {
	rc      *harness.RunContext
	corners *harness.CornerCache
}

// runnerSet caches one leaseRunner per campaign — a worker slot serving
// interleaved leases from several campaigns keeps a warm context for
// each.
type runnerSet struct {
	runners map[string]*leaseRunner
}

func newRunnerSet() *runnerSet {
	return &runnerSet{runners: make(map[string]*leaseRunner)}
}

// run executes a lease and encodes its result for the merge barrier.
// spec rides with every lease, so a worker joining mid-campaign builds
// its context without extra round trips.
func (rs *runnerSet) run(l *Lease, spec *Spec) (*LeaseResult, error) {
	if l == nil {
		return nil, errors.New("campaignd: lease response without lease")
	}
	r, ok := rs.runners[l.Campaign]
	if !ok {
		if spec == nil {
			return nil, fmt.Errorf("campaignd: lease for %s without its spec", l.Campaign)
		}
		cfg, err := spec.CampaignConfig()
		if err != nil {
			return nil, fmt.Errorf("campaignd: spec for %s: %w", l.Campaign, err)
		}
		r = &leaseRunner{
			rc: harness.NewRunContext(cfg),
			// Anchor the cache at the spec's base configs — the same
			// anchors the daemon's corner policy uses, so equal level
			// vectors derive the identical corner.
			corners: harness.NewCornerCache(cfg.TestCfg, cfg.SysCfg),
		}
		rs.runners[l.Campaign] = r
	}
	corner := r.corners.Corner(l.Levels)
	for i := 0; i < l.Count; i++ {
		r.rc.RunSeed(l.First+uint64(i), corner)
	}
	d := r.rc.Delta()
	res := &LeaseResult{
		Schema:   WireSchema,
		Campaign: l.Campaign,
		Batch:    l.Batch,
		Lease:    l.Lease,
		Seeds:    d.Seeds,
		L1:       SparseFromMatrix(d.L1),
		L2:       SparseFromMatrix(d.L2),
		// Copy: ClearDelta reuses the context's failures backing array.
		Failures: append([]harness.SeedFailure(nil), d.Failures...),
		Ops:      d.Ops,
		Events:   d.Events,
		WallNs:   int64(d.Wall),
	}
	r.rc.ClearDelta()
	return res, nil
}

// WorkerOptions configures a remote worker process.
type WorkerOptions struct {
	// ID names the worker in daemon logs and the active-worker gauge
	// (empty → "pid-<pid>").
	ID string
	// Slots is the number of concurrent lease executors (≤0 → 1). Each
	// slot keeps its own run contexts.
	Slots int
	// PollWait bounds each long poll (≤0 → 30s).
	PollWait time.Duration
	// HTTP overrides the client (nil → a client with no overall request
	// timeout; lease polls are long).
	HTTP *http.Client
	// Logf receives worker diagnostics (nil → silent).
	Logf func(format string, args ...any)
}

// RunWorker connects a worker process to a daemon at baseURL and
// serves leases until the daemon answers StatusShutdown or ctx ends.
// Cancelling ctx is graceful: each slot finishes its in-flight lease
// and posts the result before returning — seeds already run are never
// thrown away (and if they were, the lease would expire and reissue;
// nothing is lost either way).
func RunWorker(ctx context.Context, baseURL string, opts WorkerOptions) error {
	if opts.ID == "" {
		opts.ID = fmt.Sprintf("pid-%d", os.Getpid())
	}
	if opts.Slots <= 0 {
		opts.Slots = 1
	}
	if opts.PollWait <= 0 {
		opts.PollWait = 30 * time.Second
	}
	if opts.HTTP == nil {
		opts.HTTP = &http.Client{}
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	errs := make(chan error, opts.Slots)
	for i := 0; i < opts.Slots; i++ {
		id := opts.ID
		if opts.Slots > 1 {
			id = fmt.Sprintf("%s/%d", opts.ID, i+1)
		}
		go func() {
			errs <- workerSlot(ctx, baseURL, id, opts, logf)
		}()
	}
	var first error
	for i := 0; i < opts.Slots; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// workerSlot is one lease-serving loop: poll, execute, post, repeat.
func workerSlot(ctx context.Context, baseURL, id string, opts WorkerOptions, logf func(string, ...any)) error {
	runners := newRunnerSet()
	failures := 0
	for {
		if ctx.Err() != nil {
			return nil // graceful: the previous lease's result is posted
		}
		resp, err := pollLease(ctx, baseURL, id, opts)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			failures++
			if failures >= 10 {
				return fmt.Errorf("campaignd worker %s: daemon unreachable: %w", id, err)
			}
			logf("worker %s: poll: %v (retrying)", id, err)
			select {
			case <-time.After(time.Second):
			case <-ctx.Done():
				return nil
			}
			continue
		}
		failures = 0
		switch resp.Status {
		case StatusShutdown:
			logf("worker %s: daemon shutting down", id)
			return nil
		case StatusWait:
			continue
		case StatusLease:
		default:
			return fmt.Errorf("campaignd worker %s: unknown poll status %q", id, resp.Status)
		}
		res, err := runners.run(resp.Lease, resp.Spec)
		if err != nil {
			logf("worker %s: lease %s/%d/%d: %v", id, resp.Lease.Campaign, resp.Lease.Batch, resp.Lease.Lease, err)
			continue // the daemon reissues it on expiry
		}
		res.Worker = id
		// Post even when ctx was cancelled mid-lease: the work is done,
		// shipping it beats forcing a reissue.
		if err := postResult(baseURL, res, opts); err != nil {
			logf("worker %s: post result %s/%d/%d: %v", id, res.Campaign, res.Batch, res.Lease, err)
		}
	}
}

// pollLease long-polls POST /lease.
func pollLease(ctx context.Context, baseURL, id string, opts WorkerOptions) (*LeaseResponse, error) {
	body, err := json.Marshal(LeaseRequest{
		Schema: WireSchema,
		Worker: id,
		WaitMs: opts.PollWait.Milliseconds(),
	})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/lease", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	var out LeaseResponse
	if err := doJSON(opts.HTTP, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// postResult ships a lease result. It deliberately takes no ctx: a
// graceful shutdown still posts completed work.
func postResult(baseURL string, res *LeaseResult, opts WorkerOptions) error {
	body, err := json.Marshal(res)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, baseURL+"/results", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return doJSON(opts.HTTP, req, nil)
}

// doJSON executes a request and decodes a JSON response into out,
// mapping non-2xx responses to errors carrying the server's message.
func doJSON(client *http.Client, req *http.Request, out any) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(data))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}
