package campaignd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// Client is the submit-side API consumer: `gputester -daemon URL`
// uses it to submit a campaign to a running daemon and wait for the
// report (workers use the lease functions in worker.go instead).
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:7077".
	BaseURL string
	// HTTP overrides the client (nil → a default client; requests that
	// long-poll carry their own deadline via context).
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.BaseURL, "/") + path
}

// Submit posts a campaign spec and returns the daemon's campaign ID.
func (c *Client) Submit(ctx context.Context, spec Spec) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/campaigns"), bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	var out struct {
		ID string `json:"id"`
	}
	if err := doJSON(c.httpClient(), req, &out); err != nil {
		return "", fmt.Errorf("submit campaign: %w", err)
	}
	if out.ID == "" {
		return "", fmt.Errorf("submit campaign: daemon returned no id")
	}
	return out.ID, nil
}

// Status fetches a campaign's live status summary. waitMs > 0
// long-polls: the daemon holds the request until the campaign
// finishes or the wait elapses.
func (c *Client) Status(ctx context.Context, id string, waitMs int64) (map[string]any, error) {
	url := c.url("/campaigns/" + id)
	if waitMs > 0 {
		url += fmt.Sprintf("?waitMs=%d", waitMs)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	var out map[string]any
	if err := doJSON(c.httpClient(), req, &out); err != nil {
		return nil, fmt.Errorf("campaign %s status: %w", id, err)
	}
	return out, nil
}

// ResultJSON fetches a finished campaign's report (the same shape
// `gputester -campaign -json` prints). Errors while the campaign is
// still running.
func (c *Client) ResultJSON(ctx context.Context, id string) (map[string]any, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/campaigns/"+id+"/result"), nil)
	if err != nil {
		return nil, err
	}
	var out map[string]any
	if err := doJSON(c.httpClient(), req, &out); err != nil {
		return nil, fmt.Errorf("campaign %s result: %w", id, err)
	}
	return out, nil
}

// WaitDone long-polls status until the campaign finishes, then
// returns its report. ctx bounds the whole wait.
func (c *Client) WaitDone(ctx context.Context, id string) (map[string]any, error) {
	for {
		st, err := c.Status(ctx, id, 30_000)
		if err != nil {
			return nil, err
		}
		if done, _ := st["finished"].(bool); done {
			return c.ResultJSON(ctx, id)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// Metrics fetches the daemon's /metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (map[string]any, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/metrics"), nil)
	if err != nil {
		return nil, err
	}
	var out map[string]any
	if err := doJSON(c.httpClient(), req, &out); err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	return out, nil
}
