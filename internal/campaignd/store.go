package campaignd

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// StoreSchema versions the store index layout.
const StoreSchema = 1

// ObjectMeta is what the store index records about one artifact
// object — enough for `replay` to pick an artifact by hash and for
// humans to see what a hash is without opening it.
type ObjectMeta struct {
	// Kind is the artifact kind ("gpu"/"cpu").
	Kind string `json:"kind"`
	Seed uint64 `json:"seed"`
	// Tick is the artifact's first failing tick (its Write name
	// component).
	Tick uint64 `json:"tick"`
	// Campaign is the submitting campaign's ID, when the daemon stored
	// the object.
	Campaign string `json:"campaign,omitempty"`
	// MinimizedFrom is the hash of the artifact this object was
	// minimized from (`replay -bisect` provenance).
	MinimizedFrom string `json:"minimizedFrom,omitempty"`
	Size          int64  `json:"size"`
}

// storeIndex is the JSON layout of <root>/index.json.
type storeIndex struct {
	Schema  int                   `json:"schema"`
	Objects map[string]ObjectMeta `json:"objects"`
}

// Store is a content-addressed artifact store: objects live under
// <root>/objects/<hh>/<sha256>.json (hh = first two hex digits), named
// by the SHA-256 of their bytes, with <root>/index.json mapping hash →
// metadata. Identical artifacts deduplicate by construction — the
// campaign engine's replay artifacts encode deterministically, so the
// same failing run stored twice (a reissued lease, a re-run campaign)
// is one object. It replaces the loose `-artifact-dir` files for
// daemon campaigns.
type Store struct {
	root string

	mu  sync.Mutex
	idx storeIndex
}

// OpenStore opens (creating if needed) the store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("store %s: %w", dir, err)
	}
	s := &Store{root: dir, idx: storeIndex{Schema: StoreSchema, Objects: map[string]ObjectMeta{}}}
	data, err := os.ReadFile(s.indexPath())
	switch {
	case os.IsNotExist(err):
		return s, nil
	case err != nil:
		return nil, fmt.Errorf("store %s: %w", dir, err)
	}
	if err := json.Unmarshal(data, &s.idx); err != nil {
		return nil, fmt.Errorf("store %s: corrupt index: %w", dir, err)
	}
	if s.idx.Schema != StoreSchema {
		return nil, fmt.Errorf("store %s: index schema %d, this build reads %d", dir, s.idx.Schema, StoreSchema)
	}
	if s.idx.Objects == nil {
		s.idx.Objects = map[string]ObjectMeta{}
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) indexPath() string { return filepath.Join(s.root, "index.json") }

// ObjectPath returns the path a (full) hash's object lives at.
func (s *Store) ObjectPath(hash string) string {
	return filepath.Join(s.root, "objects", hash[:2], hash+".json")
}

// HashBytes returns the store's content address for data.
func HashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Put stores data under its content address. Created is false when the
// object already existed (dedup) — the index keeps the first meta. The
// object file and the index are both written atomically
// (temp + rename), so a killed daemon never leaves a torn store.
func (s *Store) Put(data []byte, meta ObjectMeta) (hash, path string, created bool, err error) {
	hash = HashBytes(data)
	path = s.ObjectPath(hash)
	meta.Size = int64(len(data))

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.idx.Objects[hash]; ok {
		return hash, path, false, nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return hash, path, false, err
	}
	if err := writeFileAtomic(path, data); err != nil {
		return hash, path, false, err
	}
	s.idx.Objects[hash] = meta
	if err := s.writeIndexLocked(); err != nil {
		return hash, path, false, err
	}
	return hash, path, true, nil
}

// writeIndexLocked persists the index; callers hold mu.
func (s *Store) writeIndexLocked() error {
	data, err := json.MarshalIndent(&s.idx, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(s.indexPath(), append(data, '\n'))
}

func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Len returns the number of stored objects.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idx.Objects)
}

// Meta returns a (full) hash's index entry.
func (s *Store) Meta(hash string) (ObjectMeta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.idx.Objects[hash]
	return m, ok
}

// Hashes lists every stored hash in sorted order.
func (s *Store) Hashes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.idx.Objects))
	for h := range s.idx.Objects {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Resolve maps a reference — "sha256:<hex>", a full 64-digit hash, a
// unique hash prefix (≥4 digits), or a path inside the store — to the
// object's full hash and path. Ambiguous prefixes error with the
// candidates, like git's abbreviated object names.
func (s *Store) Resolve(ref string) (hash, path string, err error) {
	r := strings.TrimPrefix(strings.ToLower(ref), "sha256:")
	if !isHex(r) || len(r) < 4 || len(r) > 64 {
		return "", "", fmt.Errorf("store: %q is not a hash or hash prefix (want ≥4 hex digits, optionally sha256:-prefixed)", ref)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(r) == 64 {
		if _, ok := s.idx.Objects[r]; !ok {
			return "", "", fmt.Errorf("store: no object %s", r)
		}
		return r, s.ObjectPath(r), nil
	}
	var matches []string
	for h := range s.idx.Objects {
		if strings.HasPrefix(h, r) {
			matches = append(matches, h)
		}
	}
	switch len(matches) {
	case 0:
		return "", "", fmt.Errorf("store: no object with prefix %s", r)
	case 1:
		return matches[0], s.ObjectPath(matches[0]), nil
	}
	sort.Strings(matches)
	return "", "", fmt.Errorf("store: prefix %s is ambiguous: %s", r, strings.Join(matches, ", "))
}

func isHex(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
