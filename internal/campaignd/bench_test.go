package campaignd

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os/exec"
	"testing"
	"time"

	"drftest/internal/core"
	"drftest/internal/viper"
)

// benchCampaignSpec is a fixed-length campaign (no saturation rule) so
// every scale runs exactly the same seeds — the scaling comparison is
// seeds/sec over identical work.
func benchCampaignSpec() Spec {
	cfg := core.DefaultConfig()
	cfg.NumWavefronts = 8
	cfg.EpisodesPerThread = 8
	cfg.ActionsPerEpisode = 40
	cfg.NumSyncVars = 4
	cfg.NumDataVars = 256
	cfg.KeepGoing = true
	return Spec{
		SysCfg:     viper.SmallCacheConfig(),
		TestCfg:    cfg,
		Mode:       "uniform",
		BaseSeed:   1,
		BatchSize:  16,
		SaturateK:  0,
		MaxSeeds:   64,
		LeaseSeeds: 4,
	}
}

// BenchmarkCampaignScaleWorkers measures aggregate campaign throughput
// against real worker processes: a coordinate-only daemon (no local
// pool) serves leases over HTTP to 1 vs 4 subprocess workers running
// the same fixed 64-seed campaign. The custom seeds/sec metric is the
// scaling gate's input; the outcome is additionally pinned
// byte-identical across the two scales. On a single-CPU host the
// worker processes time-slice one core, so the ratio reflects protocol
// overhead, not parallel speedup — the CI gate reads the recorded
// numcpu and only enforces the scaling floor on multi-core runners.
func BenchmarkCampaignScaleWorkers(b *testing.B) {
	var baseline string
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			srv := NewServer(Options{})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			cmds := make([]*exec.Cmd, workers)
			for i := range cmds {
				cmds[i] = startWorkerProcess(b, ts.URL, fmt.Sprintf("bench-%d", i+1), 1)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
			defer cancel()
			spec := benchCampaignSpec()

			b.ResetTimer()
			seeds := 0
			for i := 0; i < b.N; i++ {
				id, err := srv.Submit(spec)
				if err != nil {
					b.Fatal(err)
				}
				res, err := srv.Wait(ctx, id)
				if err != nil {
					b.Fatal(err)
				}
				seeds += res.SeedsRun
				if i == 0 {
					got := canonical(b, res)
					if baseline == "" {
						baseline = got
					} else if got != baseline {
						b.Fatalf("outcome at %d workers differs from the 1-worker baseline", workers)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(seeds)/b.Elapsed().Seconds(), "seeds/sec")

			srv.Drain(ctx)
			for i, cmd := range cmds {
				if err := cmd.Wait(); err != nil {
					b.Errorf("worker %d exit: %v", i+1, err)
				}
			}
		})
	}
}
