package campaignd

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"testing"
)

// TestMain doubles as the worker-process entry point for the
// distribution tests: re-executing the test binary with
// DRFTEST_WORKER_URL set turns it into a real `gputester -worker`
// equivalent — same RunWorker loop, same wire protocol — so the e2e
// tests exercise genuine multi-process distribution without needing a
// separately built binary.
func TestMain(m *testing.M) {
	if url := os.Getenv("DRFTEST_WORKER_URL"); url != "" {
		slots, _ := strconv.Atoi(os.Getenv("DRFTEST_WORKER_SLOTS"))
		err := RunWorker(context.Background(), url, WorkerOptions{
			ID:    os.Getenv("DRFTEST_WORKER_ID"),
			Slots: slots,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// startWorkerProcess launches one subprocess worker against baseURL
// and returns its handle. Callers wait for it after draining the
// daemon (shutdown status makes it exit 0).
func startWorkerProcess(t testing.TB, baseURL, id string, slots int) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"DRFTEST_WORKER_URL="+baseURL,
		"DRFTEST_WORKER_ID="+id,
		"DRFTEST_WORKER_SLOTS="+strconv.Itoa(slots),
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting worker process: %v", err)
	}
	return cmd
}
