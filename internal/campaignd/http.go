package campaignd

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Handler returns the daemon's HTTP API:
//
//	POST /campaigns            submit a Spec; returns {"id": ...}
//	GET  /campaigns            list campaign summaries
//	GET  /campaigns/{id}       live status (?waitMs=N long-polls for completion)
//	GET  /campaigns/{id}/result final report (409 until the campaign finishes)
//	POST /lease                worker long-poll for a lease
//	POST /results              worker result submission
//	GET  /metrics              counter snapshot + gauges
//	GET  /debug/pprof/...      standard pprof surface
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /campaigns/{id}/result", s.handleResult)
	mux.HandleFunc("POST /lease", s.handleLease)
	mux.HandleFunc("POST /results", s.handleResults)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if !decodeBody(w, r, &spec) {
		return
	}
	id, err := s.Submit(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{
		"id":     id,
		"status": "/campaigns/" + id,
		"result": "/campaigns/" + id + "/result",
	})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]map[string]any, 0, len(s.order))
	for _, c := range s.order {
		out = append(out, s.summaryLocked(c))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// summaryLocked is one campaign's list/status payload; callers hold mu.
func (s *Server) summaryLocked(c *campaign) map[string]any {
	prog := c.state.Progress()
	outstanding := 0
	for _, sh := range c.shards {
		if !sh.done {
			outstanding++
		}
	}
	m := map[string]any{
		"id":       c.id,
		"mode":     c.state.Config().Mode.String(),
		"baseSeed": c.spec.BaseSeed,
		"progress": prog,
		"aborted":  c.aborted,
		"finished": c.finished(),
	}
	if c.shards != nil {
		m["inFlightBatch"] = c.shards[0].lease.Batch
		m["outstandingLeases"] = outstanding
	}
	return m
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	c := s.campaigns[r.PathValue("id")]
	s.mu.Unlock()
	if c == nil {
		writeError(w, http.StatusNotFound, errNoCampaign(r.PathValue("id")))
		return
	}
	if ms, _ := strconv.ParseInt(r.URL.Query().Get("waitMs"), 10, 64); ms > 0 {
		t := time.NewTimer(clampWait(ms))
		select {
		case <-c.done:
		case <-t.C:
		case <-r.Context().Done():
		}
		t.Stop()
	}
	s.mu.Lock()
	out := s.summaryLocked(c)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	c := s.campaigns[r.PathValue("id")]
	var report map[string]any
	if c != nil {
		report = c.report
	}
	s.mu.Unlock()
	switch {
	case c == nil:
		writeError(w, http.StatusNotFound, errNoCampaign(r.PathValue("id")))
	case report == nil:
		writeJSON(w, http.StatusConflict, map[string]string{"error": "campaign still running"})
	default:
		writeJSON(w, http.StatusOK, report)
	}
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Schema != WireSchema {
		writeError(w, http.StatusBadRequest,
			errSchema(req.Schema))
		return
	}
	worker := req.Worker
	if worker == "" {
		worker = r.RemoteAddr
	}
	resp := s.nextLease(worker, clampWait(req.WaitMs))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	var res LeaseResult
	if !decodeBody(w, r, &res) {
		return
	}
	if err := s.submitResult(&res); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	out := s.metrics.snapshot()
	s.mu.Lock()
	ids := make(map[string]struct{}, len(s.pollers))
	for id := range s.pollers {
		ids[id] = struct{}{}
	}
	running := 0
	for _, c := range s.order {
		if !c.finished() {
			running++
		}
		for _, sh := range c.shards {
			if sh.issued && !sh.done {
				ids[sh.worker] = struct{}{}
			}
		}
	}
	out["activeWorkers"] = len(ids)
	out["campaignsRunning"] = running
	out["draining"] = s.draining
	if s.opts.Store != nil {
		out["storeObjects"] = s.opts.Store.Len()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// clampWait bounds client-supplied long-poll waits to [0, 2min].
func clampWait(ms int64) time.Duration {
	if ms < 0 {
		ms = 0
	}
	if ms > 120_000 {
		ms = 120_000
	}
	return time.Duration(ms) * time.Millisecond
}

type errNoCampaign string

func (e errNoCampaign) Error() string { return "no campaign " + string(e) }

type errSchema int

func (e errSchema) Error() string {
	return "unsupported wire schema " + strconv.Itoa(int(e)) +
		" (daemon speaks " + strconv.Itoa(WireSchema) + ")"
}
