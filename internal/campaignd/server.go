package campaignd

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"drftest/internal/harness"
	"drftest/internal/protocol"
)

// Options configures a control-plane Server.
type Options struct {
	// LocalWorkers sizes the daemon's in-process worker pool. Zero means
	// the daemon only coordinates — every seed runs on remote worker
	// processes. Negative disables the pool too (explicit "remote only").
	LocalWorkers int
	// Store, when non-nil, persists failure artifacts: admitted specs
	// get Artifacts set, workers ship replay artifacts inline, and the
	// daemon content-addresses them here, rewriting each failure's
	// ArtifactPath to the stored object.
	Store *Store
	// LeaseTimeout is the default result deadline per lease (specs may
	// override; zero → DefaultLeaseTimeout).
	LeaseTimeout time.Duration
	// ReportDir, when non-empty, receives one <campaign-id>.json final
	// report per finished campaign (the graceful-shutdown record).
	ReportDir string
	// Logf receives daemon diagnostics (nil → silent).
	Logf func(format string, args ...any)
}

// shard is one lease of the current batch and its lifecycle: planned →
// issued (with a result deadline) → done (delta held for the barrier).
// An issued shard whose deadline passes is reissued to the next polling
// worker; whichever copy of the result arrives first wins and the other
// is dropped — the deltas are deterministic, so both are the same.
type shard struct {
	lease    Lease
	issued   bool
	worker   string
	deadline time.Time
	done     bool
	delta    harness.BatchDelta
}

// campaign is one admitted spec and its state machine. The server's
// mutex guards all fields; the CampaignState inside is driven only
// under it (Plan when sharding, Apply at the barrier).
type campaign struct {
	id           string
	spec         Spec
	state        *harness.CampaignState
	l1Spec       *protocol.Spec
	l2Spec       *protocol.Spec
	leaseTimeout time.Duration

	// shards holds the in-flight batch's leases; nil between batches.
	// Plan is idempotent, so a discarded unissued batch re-plans
	// identically.
	shards  []*shard
	aborted bool

	// result/report are set exactly once at finish; done closes then.
	result *harness.CampaignResult
	report map[string]any
	done   chan struct{}
}

// finished reports whether the campaign has a final result.
func (c *campaign) finished() bool { return c.result != nil }

// Server is the campaign control plane: it admits specs, shards
// batches into leases for polling workers (local pool and remote
// processes use the identical lease path), merges results at the batch
// barrier, and owns every campaign's state machine. See the package
// comment for the determinism argument.
type Server struct {
	opts    Options
	metrics Metrics

	mu        sync.Mutex
	wake      chan struct{}
	draining  bool
	campaigns map[string]*campaign
	order     []*campaign
	nextID    int
	// pollers refcounts workers currently blocked in a lease poll — the
	// live half of the active-worker gauge (the other half is workers
	// holding outstanding leases).
	pollers map[string]int

	localWG sync.WaitGroup
}

// NewServer creates a control-plane server. Call Start to launch the
// local worker pool and Handler to expose the HTTP API.
func NewServer(opts Options) *Server {
	if opts.LeaseTimeout <= 0 {
		opts.LeaseTimeout = DefaultLeaseTimeout
	}
	return &Server{
		opts:      opts,
		wake:      make(chan struct{}),
		campaigns: make(map[string]*campaign),
		pollers:   make(map[string]int),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// wakeLocked broadcasts to every blocked lease poll and drain waiter;
// callers hold mu.
func (s *Server) wakeLocked() {
	close(s.wake)
	s.wake = make(chan struct{})
}

// Start launches the local worker pool. Remote workers need no Start —
// they arrive over POST /lease whenever they connect.
func (s *Server) Start() {
	for i := 0; i < s.opts.LocalWorkers; i++ {
		id := fmt.Sprintf("local-%d", i+1)
		s.localWG.Add(1)
		go func() {
			defer s.localWG.Done()
			s.runLocalWorker(id)
		}()
	}
}

// runLocalWorker drives one in-process worker through the exact lease
// protocol remote workers use — same nextLease/submitResult pair, same
// sparse wire encoding — so local and remote execution are one code
// path and behave identically.
func (s *Server) runLocalWorker(id string) {
	runners := newRunnerSet()
	for {
		resp := s.nextLease(id, 30*time.Second)
		switch resp.Status {
		case StatusShutdown:
			return
		case StatusWait:
			continue
		}
		res, err := runners.run(resp.Lease, resp.Spec)
		if err != nil {
			s.logf("campaignd: worker %s: lease %s/%d/%d: %v",
				id, resp.Lease.Campaign, resp.Lease.Batch, resp.Lease.Lease, err)
			continue // the lease times out and reissues
		}
		res.Worker = id
		if err := s.submitResult(res); err != nil {
			s.logf("campaignd: worker %s: submit: %v", id, err)
		}
	}
}

// Submit admits a campaign spec and returns its ID. The spec is
// validated and frozen (defaults resolved, Artifacts set when the
// daemon has a store) — the frozen spec is what every lease carries.
func (s *Server) Submit(spec Spec) (string, error) {
	spec = spec.withDefaults()
	if s.opts.Store != nil {
		spec.Artifacts = true
	}
	cfg, err := spec.CampaignConfig()
	if err != nil {
		return "", err
	}
	l1Spec, l2Spec, _ := harness.CampaignSpecs(cfg.SysCfg)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return "", fmt.Errorf("campaignd: daemon is draining")
	}
	s.nextID++
	c := &campaign{
		id:           fmt.Sprintf("c%03d", s.nextID),
		spec:         spec,
		state:        harness.NewCampaignState(cfg),
		l1Spec:       l1Spec,
		l2Spec:       l2Spec,
		leaseTimeout: spec.leaseTimeout(s.opts.LeaseTimeout),
		done:         make(chan struct{}),
	}
	s.campaigns[c.id] = c
	s.order = append(s.order, c)
	s.metrics.CampaignsSubmitted.Add(1)
	s.wakeLocked()
	s.logf("campaignd: admitted %s: mode=%s baseSeed=%d batch=%d lease=%d",
		c.id, spec.Mode, spec.BaseSeed, spec.BatchSize, spec.LeaseSeeds)
	return c.id, nil
}

// shardLocked plans the campaign's next batch and shards it into
// leases of ≤ LeaseSeeds contiguous seeds; callers hold mu. Returns
// false once the campaign wants no more batches.
func (s *Server) shardLocked(c *campaign) bool {
	plan, ok := c.state.Plan()
	if !ok {
		return false
	}
	step := c.spec.LeaseSeeds
	for off, idx := 0, 0; off < plan.Count; off, idx = off+step, idx+1 {
		n := step
		if rest := plan.Count - off; n > rest {
			n = rest
		}
		c.shards = append(c.shards, &shard{lease: Lease{
			Campaign: c.id,
			Batch:    plan.Index,
			Lease:    idx,
			First:    plan.First + uint64(off),
			Count:    n,
			Levels:   plan.Corner.Levels,
		}})
	}
	return true
}

// issuableLocked finds the next lease to hand a worker: campaigns in
// admission order, within one the lowest unissued (or expired) shard.
// Callers hold mu.
func (s *Server) issuableLocked(now time.Time) (*shard, *campaign) {
	for _, c := range s.order {
		if c.finished() {
			continue
		}
		if c.shards == nil {
			if s.draining {
				continue // no new batches while draining
			}
			if !s.shardLocked(c) {
				continue
			}
		}
		for _, sh := range c.shards {
			if sh.done {
				continue
			}
			if !sh.issued {
				return sh, c
			}
			if now.After(sh.deadline) {
				s.metrics.LeasesExpired.Add(1)
				s.logf("campaignd: lease %s/%d/%d expired on %s; reissuing",
					c.id, sh.lease.Batch, sh.lease.Lease, sh.worker)
				return sh, c
			}
		}
	}
	return nil, nil
}

// earliestDeadlineLocked returns the soonest outstanding-lease
// deadline, so lease polls sleep exactly until the next possible
// reissue. Callers hold mu.
func (s *Server) earliestDeadlineLocked() (time.Time, bool) {
	var d time.Time
	for _, c := range s.order {
		if c.finished() {
			continue
		}
		for _, sh := range c.shards {
			if sh.issued && !sh.done && (d.IsZero() || sh.deadline.Before(d)) {
				d = sh.deadline
			}
		}
	}
	return d, !d.IsZero()
}

// inFlightLocked reports whether any campaign has an issued,
// unfinished lease or an incomplete batch with issued work — the
// condition drain waits out. Callers hold mu.
func (s *Server) inFlightLocked() bool {
	for _, c := range s.order {
		if !c.finished() && c.shards != nil {
			return true
		}
	}
	return false
}

// nextLease is the long-poll core behind POST /lease and the local
// pool: it returns a lease as soon as one is issuable, waking on
// submissions, merges and lease expiries, or StatusWait after wait
// with no work (StatusShutdown once the daemon is drained of in-flight
// batches).
func (s *Server) nextLease(worker string, wait time.Duration) LeaseResponse {
	pollDeadline := time.Now().Add(wait)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pollers[worker]++
	defer func() {
		if s.pollers[worker]--; s.pollers[worker] <= 0 {
			delete(s.pollers, worker)
		}
	}()
	for {
		if s.draining && !s.inFlightLocked() {
			return LeaseResponse{Status: StatusShutdown}
		}
		now := time.Now()
		if sh, c := s.issuableLocked(now); sh != nil {
			sh.issued = true
			sh.worker = worker
			sh.deadline = now.Add(c.leaseTimeout)
			s.metrics.LeasesIssued.Add(1)
			spec := c.spec
			lease := sh.lease
			return LeaseResponse{Status: StatusLease, Lease: &lease, Spec: &spec}
		}
		sleepUntil := pollDeadline
		if d, ok := s.earliestDeadlineLocked(); ok && d.Before(sleepUntil) {
			sleepUntil = d
		}
		if !now.Before(pollDeadline) {
			return LeaseResponse{Status: StatusWait}
		}
		if dur := time.Until(sleepUntil); dur > 0 {
			wakeCh := s.wake
			s.mu.Unlock()
			t := time.NewTimer(dur)
			select {
			case <-wakeCh:
			case <-t.C:
			}
			t.Stop()
			s.mu.Lock()
		}
	}
}

// submitResult accepts one executed lease: artifacts are persisted
// into the store (outside the lock — content addressing makes a
// duplicate's writes no-ops), the sparse delta is decoded, and the
// shard is completed under the lock. When the last shard of the batch
// lands, the deltas merge through CampaignState.Apply in shard order
// and the campaign advances (or finishes). Stale and duplicate results
// are dropped silently; malformed ones error.
func (s *Server) submitResult(res *LeaseResult) error {
	if res.Schema != WireSchema {
		return fmt.Errorf("campaignd: result schema %d, daemon speaks %d", res.Schema, WireSchema)
	}
	s.mu.Lock()
	c := s.campaigns[res.Campaign]
	s.mu.Unlock()
	if c == nil {
		return fmt.Errorf("campaignd: result for unknown campaign %s", res.Campaign)
	}
	if s.opts.Store != nil && c.spec.Artifacts {
		s.persistArtifacts(res)
	}
	delta, err := resultToDelta(res, c.l1Spec, c.l2Spec)
	if err != nil {
		return fmt.Errorf("campaignd: result %s/%d/%d: %w", res.Campaign, res.Batch, res.Lease, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if c.finished() || c.shards == nil || res.Batch != c.shards[0].lease.Batch {
		s.metrics.ResultsDropped.Add(1)
		return nil // stale: the batch already merged (e.g. a reissued lease won)
	}
	if res.Lease < 0 || res.Lease >= len(c.shards) {
		return fmt.Errorf("campaignd: result %s/%d: no lease %d", res.Campaign, res.Batch, res.Lease)
	}
	sh := c.shards[res.Lease]
	if sh.done {
		s.metrics.ResultsDropped.Add(1)
		return nil // duplicate: deterministic deltas, either copy is identical
	}
	if res.Seeds != sh.lease.Count {
		return fmt.Errorf("campaignd: result %s/%d/%d ran %d seeds, lease has %d",
			res.Campaign, res.Batch, res.Lease, res.Seeds, sh.lease.Count)
	}
	sh.done = true
	sh.delta = delta
	s.metrics.LeasesCompleted.Add(1)
	s.metrics.SeedsRun.Add(uint64(res.Seeds))

	for _, other := range c.shards {
		if !other.done {
			s.wakeLocked() // a reissue candidate may now be the head lease
			return nil
		}
	}
	// Batch barrier: every shard landed. Merge in shard order (order is
	// irrelevant to the outcome — union is commutative — but fixing it
	// keeps the path obviously deterministic).
	deltas := make([]harness.BatchDelta, len(c.shards))
	for i, other := range c.shards {
		deltas[i] = other.delta
	}
	prev := c.state.Progress().ActiveCells
	c.state.Apply(deltas)
	prog := c.state.Progress()
	s.metrics.BatchesMerged.Add(1)
	s.metrics.CellsActivated.Add(uint64(prog.ActiveCells - prev))
	c.shards = nil
	if c.state.Done() {
		s.finishLocked(c)
	}
	s.wakeLocked()
	return nil
}

// persistArtifacts moves inline replay artifacts into the store,
// rewriting each failure to reference the stored object.
func (s *Server) persistArtifacts(res *LeaseResult) {
	for i := range res.Failures {
		sf := &res.Failures[i]
		if len(sf.Artifact) == 0 {
			continue
		}
		meta := ObjectMeta{Kind: "gpu", Seed: sf.Seed, Campaign: res.Campaign}
		if len(sf.Failures) > 0 {
			meta.Tick = uint64(sf.Failures[0].Tick)
		}
		hash, path, created, err := s.opts.Store.Put(sf.Artifact, meta)
		if err != nil {
			sf.ArtifactErr = err.Error()
			s.logf("campaignd: store artifact for seed %d: %v", sf.Seed, err)
			continue
		}
		sf.Artifact = nil
		sf.ArtifactPath = path
		if created {
			s.metrics.Artifacts.Add(1)
			s.logf("campaignd: stored artifact sha256:%s (%s seed %d)", hash[:12], res.Campaign, sf.Seed)
		}
	}
}

// finishLocked finalizes a campaign: result, report JSON, report file,
// done broadcast. Callers hold mu.
func (s *Server) finishLocked(c *campaign) {
	c.result = c.state.Result()
	c.report = harness.CampaignReportJSON(c.result, c.spec.BaseSeed)
	c.report["campaign"] = c.id
	c.report["aborted"] = c.aborted
	s.metrics.CampaignsCompleted.Add(1)
	close(c.done)
	s.logf("campaignd: %s finished: seeds=%d batches=%d saturated=%v failures=%d aborted=%v",
		c.id, c.result.SeedsRun, c.result.Batches, c.result.Saturated, len(c.result.Failures), c.aborted)
	if s.opts.ReportDir != "" {
		if err := s.writeReport(c); err != nil {
			s.logf("campaignd: report for %s: %v", c.id, err)
		}
	}
}

// writeReport writes the campaign's final report JSON into ReportDir.
func (s *Server) writeReport(c *campaign) error {
	data, err := json.MarshalIndent(c.report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(s.opts.ReportDir, 0o755); err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(s.opts.ReportDir, c.id+".json"), append(data, '\n'))
}

// Wait blocks until the campaign finishes (or ctx ends) and returns
// its result — the in-process flavor of polling GET /campaigns/{id}.
func (s *Server) Wait(ctx context.Context, id string) (*harness.CampaignResult, error) {
	s.mu.Lock()
	c := s.campaigns[id]
	s.mu.Unlock()
	if c == nil {
		return nil, fmt.Errorf("campaignd: no campaign %s", id)
	}
	select {
	case <-c.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return c.result, nil
}

// Drain gracefully shuts the control plane down: no new campaigns or
// batches are admitted, in-flight batches run to completion (their
// leases keep reissuing on expiry, so a dead worker cannot wedge the
// drain — ctx bounds it), never-issued batches are discarded (Plan is
// idempotent, nothing is lost), and every unfinished campaign is then
// finalized at its merged whole-batch prefix — still a deterministic
// truncation of the spec's canonical Plan/Apply sequence — with its
// final report written. Workers observe StatusShutdown and exit; Drain
// returns once the local pool has too.
func (s *Server) Drain(ctx context.Context) {
	s.mu.Lock()
	s.draining = true
	for _, c := range s.order {
		if c.finished() || c.shards == nil {
			continue
		}
		issued := false
		for _, sh := range c.shards {
			if sh.issued {
				issued = true
				break
			}
		}
		if !issued {
			c.shards = nil // never started; discard, not wait
		}
	}
	s.wakeLocked()
	s.mu.Unlock()

	for {
		s.mu.Lock()
		if !s.inFlightLocked() {
			s.abortRemainingLocked()
			s.mu.Unlock()
			break
		}
		wakeCh := s.wake
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			s.mu.Lock()
			s.logf("campaignd: drain deadline; dropping in-flight batches")
			for _, c := range s.order {
				c.shards = nil
			}
			s.abortRemainingLocked()
			s.mu.Unlock()
			s.localWG.Wait()
			return
		case <-wakeCh:
		case <-time.After(time.Second):
			// belt-and-braces re-check: reissues need a polling worker,
			// and all of them may be between polls
		}
	}
	s.localWG.Wait()
}

// abortRemainingLocked finalizes every unfinished campaign at its
// merged prefix; callers hold mu (draining, no in-flight batches).
func (s *Server) abortRemainingLocked() {
	for _, c := range s.order {
		if c.finished() {
			continue
		}
		if !c.state.Done() {
			c.aborted = true
			c.state.Abort()
		}
		s.finishLocked(c)
	}
	s.wakeLocked()
}
