package viper

import (
	"fmt"

	"drftest/internal/mem"
)

// reqKind tags TCP→TCC traffic.
type reqKind uint8

const (
	msgRdBlk reqKind = iota
	msgWrVicBlk
	msgAtomic
)

func (k reqKind) String() string {
	switch k {
	case msgRdBlk:
		return "RdBlk"
	case msgWrVicBlk:
		return "WrVicBlk"
	case msgAtomic:
		return "Atomic"
	}
	return "?"
}

// tcpMsg is a request from an L1 (TCP) to the L2 (TCC).
type tcpMsg struct {
	kind reqKind
	cu   int
	line mem.Addr
	// payload is the WrVicBlk write-through data: a borrowed line
	// handle (data + per-byte mask of the written bytes). The message
	// owns one reference, taken at send time and transferred onward
	// (to the backend write) or released when the message dies.
	payload *mem.Line
	// payloadEpoch is payload's epoch at send time; consumption
	// re-checks it so a refcount bug that recycles the line mid-flight
	// trips immediately instead of corrupting silently.
	payloadEpoch uint64
	// req is the core request that triggered the message; WrVicBlk and
	// Atomic completion acks are routed back against it. For RdBlk it
	// is the first coalesced load (used in logs only).
	req *mem.Request
}

// setPayload attaches a line handle (transferring the caller's
// reference to the message) and stamps its epoch.
func (m *tcpMsg) setPayload(l *mem.Line) {
	m.payload = l
	m.payloadEpoch = l.Epoch()
}

// checkPayload is the delivery-side half of the epoch handshake.
func (m *tcpMsg) checkPayload() {
	if m.payload.Epoch() != m.payloadEpoch {
		panic(fmt.Sprintf("viper: %s payload for %#x recycled in flight (epoch %d, stamped %d)",
			m.kind, uint64(m.line), m.payload.Epoch(), m.payloadEpoch))
	}
}

// ackKind tags TCC→TCP traffic.
type ackKind uint8

const (
	ackFill   ackKind = iota // TCC_Ack carrying line data
	ackAtomic                // TCC_Ack carrying an atomic's old value
	ackWB                    // TCC_AckWB write completion
)

// tccMsg is a response from the L2 (TCC) to an L1 (TCP).
type tccMsg struct {
	kind ackKind
	line mem.Addr
	// payload is the ackFill line contents, shared by reference with
	// the fill's other consumers (the message owns one reference; see
	// tcpMsg.payload for the epoch handshake).
	payload      *mem.Line
	payloadEpoch uint64
	old          uint32 // ackAtomic: pre-add value
	req          *mem.Request
}

func (m *tccMsg) setPayload(l *mem.Line) {
	m.payload = l
	m.payloadEpoch = l.Epoch()
}

func (m *tccMsg) checkPayload() {
	if m.payload.Epoch() != m.payloadEpoch {
		panic(fmt.Sprintf("viper: fill payload for %#x recycled in flight (epoch %d, stamped %d)",
			uint64(m.line), m.payload.Epoch(), m.payloadEpoch))
	}
}
