package viper

import "drftest/internal/mem"

// reqKind tags TCP→TCC traffic.
type reqKind uint8

const (
	msgRdBlk reqKind = iota
	msgWrVicBlk
	msgAtomic
)

func (k reqKind) String() string {
	switch k {
	case msgRdBlk:
		return "RdBlk"
	case msgWrVicBlk:
		return "WrVicBlk"
	case msgAtomic:
		return "Atomic"
	}
	return "?"
}

// tcpMsg is a request from an L1 (TCP) to the L2 (TCC).
type tcpMsg struct {
	kind reqKind
	cu   int
	line mem.Addr
	// WrVicBlk payload: full-line buffer plus per-byte mask of the
	// written bytes.
	data []byte
	mask []bool
	// req is the core request that triggered the message; WrVicBlk and
	// Atomic completion acks are routed back against it. For RdBlk it
	// is the first coalesced load (used in logs only).
	req *mem.Request
}

// ackKind tags TCC→TCP traffic.
type ackKind uint8

const (
	ackFill   ackKind = iota // TCC_Ack carrying line data
	ackAtomic                // TCC_Ack carrying an atomic's old value
	ackWB                    // TCC_AckWB write completion
)

// tccMsg is a response from the L2 (TCC) to an L1 (TCP).
type tccMsg struct {
	kind ackKind
	line mem.Addr
	data []byte // ackFill: line contents
	old  uint32 // ackAtomic: pre-add value
	req  *mem.Request
}
