package viper

import (
	"testing"

	"drftest/internal/mem"
)

// TestMultiSliceRouting: with a banked L2, lines must consistently land
// on the slice their address selects, and all slices must see traffic.
func TestMultiSliceRouting(t *testing.T) {
	cfg := smallCfg()
	cfg.NumL2Slices = 4
	r := newRig(t, cfg)
	for i := 0; i < 64; i++ {
		r.issue(i%2, mem.OpStore, mem.Addr(0x1000+i*64), uint32(i), i%4)
		r.issue((i+1)%2, mem.OpLoad, mem.Addr(0x1000+i*64), 0, i%4)
	}
	r.run()
	busy := 0
	for _, tcc := range r.sys.TCCs {
		if tcc.Stats()["rdblk"]+tcc.Stats()["wrvicblk"] > 0 {
			busy++
		}
	}
	if busy != 4 {
		t.Fatalf("only %d of 4 L2 slices saw traffic", busy)
	}
	if m := r.sys.AuditL2(r.sys.Mem.Store()); len(m) != 0 {
		t.Fatalf("banked L2 diverged from memory: %v", m)
	}
}

// TestMultiSliceSemantics: the same store/load/atomic scenarios hold
// with a banked L2.
func TestMultiSliceSemantics(t *testing.T) {
	cfg := smallCfg()
	cfg.NumL2Slices = 2
	r := newRig(t, cfg)
	st := r.issue(0, mem.OpStore, 0x100, 9, 0)
	ld := r.issue(1, mem.OpLoad, 0x100, 0, 1)
	a1 := r.issue(0, mem.OpAtomic, 0x140, 2, 0)
	r.run()
	r.resp(t, st)
	if got := r.resp(t, ld).Data; got != 9 && got != 0 {
		t.Fatalf("load saw %d", got) // 0 (raced ahead) or 9 are legal here
	}
	if r.resp(t, a1).Data != 0 {
		t.Fatal("atomic old value wrong")
	}
	if got := r.sys.Mem.Store().ReadWord(0x140); got != 2 {
		t.Fatalf("atomic result %d", got)
	}
}
