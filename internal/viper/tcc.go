package viper

import (
	"encoding/binary"
	"fmt"

	"drftest/internal/cache"
	"drftest/internal/mem"
	"drftest/internal/network"
	"drftest/internal/protocol"
	"drftest/internal/sim"
)

// Backend is what the TCC sits on: either the memory controller
// directly (GPU-only systems) or the shared CPU–GPU system directory
// (heterogeneous systems). It is the global ordering point for data.
//
// The callback shapes mirror memctrl's exactly — done functions are
// pre-bound and carry an opaque ctx instead of closing over call-site
// state, and payloads travel as refcounted line handles — so the
// GPU-only adapter is a pure pass-through and the steady-state miss,
// write-through and atomic paths schedule no closures.
type Backend interface {
	// FetchLine reads size bytes at line and calls done with a line
	// handle the callee then owns (release or retain it).
	FetchLine(line mem.Addr, size int, done func(data *mem.Line, ctx any), ctx any)
	// WriteLine performs a masked line write (payload's bytes under its
	// mask) and calls done when the write is globally performed. The
	// backend takes ownership of one reference to payload.
	WriteLine(line mem.Addr, payload *mem.Line, done func(ctx any), ctx any)
	// Atomic performs a fetch-add on the word at addr. done receives
	// the old value, or nack=true when the ordering point refuses the
	// operation (e.g. a directory mid-probe) and the caller must retry.
	Atomic(addr mem.Addr, delta uint32, done func(old uint32, nack bool, ctx any), ctx any)
}

type tbeKind uint8

const (
	tbeFill tbeKind = iota
	tbeAtomic
)

// tccTBE tracks one line's in-flight transaction at the L2. TBEs are
// recycled through the TCC's free list; backend completions arrive on
// the TCC's shared ctx-style callbacks with the TBE as ctx, so only
// the kernel-facing retry continuation is bound per TBE (once, for the
// TBE's life).
type tccTBE struct {
	kind tbeKind
	line mem.Addr
	cu   int
	req  *mem.Request
	// probed marks a fill whose line was probe-invalidated mid-flight:
	// the arriving data still answers the waiting loads (their values
	// predate the probing writer, which is legal under DRF) but must
	// not be installed.
	probed bool

	retryFn func()
}

// TCC is the GPU's shared L2 cache controller (VIPER's "TCC"). It
// serves fills to the TCPs, merges and forwards write-throughs, routes
// atomics to the global ordering point, and answers directory probes
// in heterogeneous systems.
type TCC struct {
	k          *sim.Kernel
	sliceIndex int
	machine    *protocol.Machine
	array      *cache.Array
	backend    Backend
	tcps       []*TCP
	toTCP      *network.Crossbar
	bugs       BugSet
	pool       *msgPool

	// retryDelay spaces out atomic retries after an AtomicND.
	retryDelay sim.Tick

	tbes    map[mem.Addr]*tccTBE
	tbeFree []*tccTBE
	// allTBEs registers every TBE ever built (bounded by the peak
	// number of concurrent transactions — TBEs are recycled). Needed
	// by snapshots: the backend continuations capture the TBE pointer,
	// so a restore must write contents back into the same objects.
	allTBEs []*tccTBE
	stalled map[mem.Addr][]*tcpMsg
	// stalledFree recycles drained stall queues so repeated contention
	// on hot lines does not allocate a fresh slice per episode.
	stalledFree   [][]*tcpMsg
	stalledProbes map[mem.Addr][]func()
	// sendFns holds one prebound response handler per CU for the
	// allocation-free Link.SendMsg path, built on first use.
	sendFns []func(any)
	wbs     map[mem.Addr]int // in-flight memory writes per line

	// Shared backend continuations, bound once at construction; the
	// per-operation state rides in ctx (the TBE, or the WrVicBlk
	// message), so backend calls allocate nothing.
	fetchDoneFn  func(data *mem.Line, ctx any)
	atomicDoneFn func(old uint32, nack bool, ctx any)
	wbAckFn      func(ctx any)
	noopWBFn     func(ctx any)

	// stats
	rdBlks, wrVicBlks, atomicsSeen, fills, stalls uint64
	wbAcks, droppedMerges, droppedAcks            uint64
}

func newTCC(k *sim.Kernel, spec *protocol.Spec, rec protocol.Recorder, onFault func(*protocol.FaultError), l2 cache.Config, backend Backend, toTCP *network.Crossbar, bugs BugSet, pool *msgPool) *TCC {
	m := protocol.NewMachine(spec, rec)
	m.OnFault = onFault
	c := &TCC{
		k:             k,
		machine:       m,
		array:         cache.NewArray(l2),
		backend:       backend,
		toTCP:         toTCP,
		bugs:          bugs,
		pool:          pool,
		retryDelay:    20,
		tbes:          make(map[mem.Addr]*tccTBE),
		stalled:       make(map[mem.Addr][]*tcpMsg),
		stalledProbes: make(map[mem.Addr][]func()),
		wbs:           make(map[mem.Addr]int),
	}
	c.fetchDoneFn = func(data *mem.Line, ctx any) { c.onData(ctx.(*tccTBE), data) }
	c.atomicDoneFn = func(old uint32, nack bool, ctx any) {
		tbe := ctx.(*tccTBE)
		if nack {
			c.onAtomicND(tbe)
			return
		}
		c.onAtomicD(tbe, old)
	}
	c.wbAckFn = func(ctx any) { c.onWBAck(ctx.(*tcpMsg)) }
	c.noopWBFn = func(any) {}
	return c
}

// getTBE takes a TBE from the free list (or builds one, binding its
// retry continuation to it for life). The caller fills the identity
// fields.
func (c *TCC) getTBE() *tccTBE {
	if n := len(c.tbeFree); n > 0 {
		t := c.tbeFree[n-1]
		c.tbeFree[n-1] = nil
		c.tbeFree = c.tbeFree[:n-1]
		return t
	}
	t := &tccTBE{}
	t.retryFn = func() { c.issueAtomic(t) }
	c.allTBEs = append(c.allTBEs, t)
	return t
}

// putTBE releases a completed transaction's TBE. Safe only once no
// backend callback or retry can still fire for it (the completion
// paths in onData / onAtomicD).
func (c *TCC) putTBE(t *tccTBE) {
	t.req = nil
	t.probed = false
	c.tbeFree = append(c.tbeFree, t)
}

// reset returns the controller to its just-built state: array
// invalidated, in-flight TBEs recycled to the free list, stalled
// messages recycled to the pool, write-through counts and stats
// cleared. Recycling the TBEs is sound only because the kernel has
// already been reset: no backend callback or retry event referencing
// them can still fire.
func (c *TCC) reset() {
	c.array.Reset()
	for line, tbe := range c.tbes {
		delete(c.tbes, line)
		c.putTBE(tbe)
	}
	for line, msgs := range c.stalled {
		for _, m := range msgs {
			c.pool.putTCPMsg(m)
		}
		clear(msgs)
		c.stalledFree = append(c.stalledFree, msgs[:0])
		delete(c.stalled, line)
	}
	clear(c.stalledProbes)
	clear(c.wbs)
	c.rdBlks, c.wrVicBlks, c.atomicsSeen, c.fills, c.stalls = 0, 0, 0, 0, 0
	c.wbAcks, c.droppedMerges, c.droppedAcks = 0, 0, 0
	c.toTCP.Reset()
}

func (c *TCC) lineSize() int { return c.array.Config().LineSize }

func (c *TCC) slice() int { return c.sliceIndex }

func (c *TCC) attachTCP(t *TCP) { c.tcps = append(c.tcps, t) }

// Flush is a no-op for the write-through TCC: a correct controller's
// lines already match memory, and a divergent one must stay divergent
// so the audit can see it.
func (c *TCC) Flush(*mem.Store) {}

// state derives the protocol state of a line from the TBE table and
// the cache array.
func (c *TCC) state(line mem.Addr) int {
	if tbe, ok := c.tbes[line]; ok {
		if tbe.kind == tbeAtomic {
			return TCCStateA
		}
		return TCCStateIV
	}
	if e := c.array.Peek(line); e != nil {
		return TCCStateV
	}
	return TCCStateI
}

// FromTCP processes one request from an L1.
func (c *TCC) FromTCP(msg *tcpMsg) {
	line := msg.line
	st := c.state(line)

	var ev int
	switch msg.kind {
	case msgRdBlk:
		ev = TCCRdBlk
	case msgWrVicBlk:
		ev = TCCWrVicBlk
	case msgAtomic:
		ev = TCCAtomic
	}

	// The NonAtomicRMW bug's fast path hijacks cached atomics before
	// the table is consulted with its real semantics; the transition is
	// still recorded (the implementation *believes* it took it).
	if msg.kind == msgAtomic && c.bugs.NonAtomicRMW && st == TCCStateV {
		c.machine.Fire(st, ev)
		c.buggyLocalAtomic(msg)
		c.pool.putTCPMsg(msg)
		return
	}

	cell := c.machine.Fire(st, ev)
	switch cell.Kind {
	case protocol.Stall:
		c.stalls++
		q, ok := c.stalled[line]
		if !ok {
			if n := len(c.stalledFree); n > 0 {
				q = c.stalledFree[n-1]
				c.stalledFree = c.stalledFree[:n-1]
			}
		}
		c.stalled[line] = append(q, msg)
		return
	case protocol.Undefined:
		c.pool.putTCPMsg(msg)
		return
	}

	// Release points: RdBlk and Atomic messages are dead once this
	// dispatch returns (the TBE holds the core request, not the
	// message); a WrVicBlk stays live until its write-through ack
	// (onWBAck) because it is the backend write's ctx, though its
	// payload reference is handed to the backend at issue.
	switch msg.kind {
	case msgRdBlk:
		c.rdBlks++
		if st == TCCStateV {
			e := c.array.Lookup(line)
			c.sendFillBytes(msg.cu, line, e.Data)
			c.pool.putTCPMsg(msg)
			return
		}
		tbe := c.getTBE()
		tbe.kind, tbe.line, tbe.cu, tbe.req = tbeFill, line, msg.cu, msg.req
		c.tbes[line] = tbe
		c.backend.FetchLine(line, c.lineSize(), c.fetchDoneFn, tbe)
		c.pool.putTCPMsg(msg)

	case msgWrVicBlk:
		c.wrVicBlks++
		msg.checkPayload()
		if st == TCCStateV {
			if c.bugs.LostWriteRace && c.wbs[line] > 0 {
				// BUG: the racing write-through skips the merge into
				// the cached copy, leaving the L2 line stale.
				c.droppedMerges++
			} else {
				c.array.Lookup(line).WriteMasked(msg.payload.Data, msg.payload.Mask())
			}
		}
		c.wbs[line]++
		// The message's payload reference transfers to the backend
		// write; the message itself rides along as ctx so onWBAck can
		// route the completion.
		payload := msg.payload
		msg.payload = nil
		c.backend.WriteLine(line, payload, c.wbAckFn, msg)

	case msgAtomic:
		c.atomicsSeen++
		if st == TCCStateV {
			// Read-invalidate: the global copy is about to change.
			c.array.Invalidate(line)
		}
		tbe := c.getTBE()
		tbe.kind, tbe.line, tbe.cu, tbe.req = tbeAtomic, line, msg.cu, msg.req
		c.tbes[line] = tbe
		c.issueAtomic(tbe)
		c.pool.putTCPMsg(msg)
	}
}

func (c *TCC) issueAtomic(tbe *tccTBE) {
	c.backend.Atomic(tbe.req.Addr, tbe.req.Operand, c.atomicDoneFn, tbe)
}

func (c *TCC) onAtomicD(tbe *tccTBE, old uint32) {
	st := c.state(tbe.line)
	if cell := c.machine.Fire(st, TCCAtomicD); cell.Kind != protocol.Defined {
		return
	}
	delete(c.tbes, tbe.line)
	c.sendAtomicAck(tbe.cu, tbe.line, tbe.req, old)
	c.wake(tbe.line)
	c.putTBE(tbe)
}

func (c *TCC) onAtomicND(tbe *tccTBE) {
	st := c.state(tbe.line)
	if cell := c.machine.Fire(st, TCCAtomicND); cell.Kind != protocol.Defined {
		return
	}
	c.k.Schedule(c.retryDelay, tbe.retryFn)
}

// onData receives a fill from the backend; the TCC owns the data
// handle and transfers it onward to the fill response (installing a
// copy in the array first — cache storage mutates under later merges,
// so the array cannot alias an in-flight payload).
func (c *TCC) onData(tbe *tccTBE, data *mem.Line) {
	line := tbe.line
	st := c.state(line)
	if cell := c.machine.Fire(st, TCCData); cell.Kind != protocol.Defined {
		data.Release()
		return
	}
	if c.tbes[line] != tbe || tbe.kind != tbeFill {
		panic(fmt.Sprintf("viper: TCC data for %#x without fill TBE", uint64(line)))
	}
	delete(c.tbes, line)
	c.fills++
	if !tbe.probed {
		// tbe.probed: the line was probed away mid-fill — serve the
		// data, cache nothing.
		victim := c.array.Victim(line, nil)
		if victim != nil && victim.Valid {
			c.machine.Fire(TCCStateV, TCCL2Repl)
			victim.Valid = false
		}
		e := c.array.Install(victim, line, TCCStateV)
		copy(e.Data, data.Data)
	}
	c.sendFillLine(tbe.cu, line, data)
	c.wake(line)
	c.putTBE(tbe)
}

func (c *TCC) onWBAck(msg *tcpMsg) {
	line := msg.line
	st := c.state(line)
	c.machine.Fire(st, TCCWBAck)
	if c.wbs[line] <= 0 {
		panic(fmt.Sprintf("viper: WBAck underflow for %#x", uint64(line)))
	}
	c.wbs[line]--
	if c.wbs[line] == 0 {
		delete(c.wbs, line)
	}
	c.wbAcks++
	if c.bugs.DropWBAckEvery != 0 && c.wbAcks%c.bugs.DropWBAckEvery == 0 {
		// BUG: the completion ack evaporates; the issuing thread's
		// release will never drain.
		c.droppedAcks++
		c.pool.putTCPMsg(msg)
		return
	}
	cu, req := msg.cu, msg.req
	c.pool.putTCPMsg(msg) // write performed; the backend released the payload
	ack := c.pool.getTCCMsg()
	ack.kind, ack.line, ack.req = ackWB, line, req
	c.send(cu, ack)
}

// ProbeInv is called by the directory to invalidate a line (PrbInv in
// Table II); done runs once the TCC has given up its copy.
func (c *TCC) ProbeInv(line mem.Addr, done func()) {
	st := c.state(line)
	cell := c.machine.Fire(st, TCCPrbInv)
	switch cell.Kind {
	case protocol.Stall:
		c.stalls++
		c.stalledProbes[line] = append(c.stalledProbes[line], func() { c.ProbeInv(line, done) })
		return
	case protocol.Undefined:
		return
	}
	switch st {
	case TCCStateV:
		c.array.Invalidate(line)
	case TCCStateIV:
		c.tbes[line].probed = true
	}
	done()
}

// buggyLocalAtomic is the NonAtomicRMW fast path: read now, answer now,
// write later, never serialize.
func (c *TCC) buggyLocalAtomic(msg *tcpMsg) {
	line := msg.line
	e := c.array.Lookup(line)
	off := mem.LineOffset(msg.req.Addr, c.lineSize())
	old := binary.LittleEndian.Uint32(e.Data[off : off+mem.WordSize])
	c.sendAtomicAck(msg.cu, line, msg.req, old)
	newVal := old + msg.req.Operand
	c.k.Schedule(sim.Tick(c.bugs.nonAtomicWindow()), func() {
		if e2 := c.array.Peek(line); e2 != nil {
			binary.LittleEndian.PutUint32(e2.Data[off:off+mem.WordSize], newVal)
		}
		wl := c.pool.lines.GetMasked(c.lineSize())
		binary.LittleEndian.PutUint32(wl.Data[off:off+mem.WordSize], newVal)
		mask := wl.Mask()
		for i := 0; i < mem.WordSize; i++ {
			mask[off+i] = true
		}
		c.backend.WriteLine(line, wl, c.noopWBFn, nil)
	})
}

// wake retries messages (and probes) stalled on line after its
// transaction completes.
func (c *TCC) wake(line mem.Addr) {
	queue := c.stalled[line]
	if len(queue) > 0 {
		delete(c.stalled, line)
		for _, m := range queue {
			c.FromTCP(m)
		}
		// The re-dispatch above may have re-stalled onto a pool slice,
		// never onto this one (the map entry was deleted first), so the
		// drained queue can go back to the pool.
		clear(queue)
		c.stalledFree = append(c.stalledFree, queue[:0])
	}
	probes := c.stalledProbes[line]
	if len(probes) > 0 {
		delete(c.stalledProbes, line)
		for _, p := range probes {
			p()
		}
	}
}

// sendFillLine sends an ackFill carrying l: the caller's reference
// transfers to the message (released by putTCCMsg after delivery).
func (c *TCC) sendFillLine(cu int, line mem.Addr, l *mem.Line) {
	m := c.pool.getTCCMsg()
	m.kind, m.line = ackFill, line
	m.setPayload(l)
	c.send(cu, m)
}

// sendFillBytes sends an ackFill for bytes the TCC does not own (the
// cache array's storage, which mutates under later write-through
// merges) — the one remaining copy on the V-hit fill path.
func (c *TCC) sendFillBytes(cu int, line mem.Addr, data []byte) {
	l := c.pool.lines.Get(len(data))
	copy(l.Data, data)
	c.sendFillLine(cu, line, l)
}

func (c *TCC) sendAtomicAck(cu int, line mem.Addr, req *mem.Request, old uint32) {
	m := c.pool.getTCCMsg()
	m.kind, m.line, m.req, m.old = ackAtomic, line, req, old
	c.send(cu, m)
}

// send delivers msg to a TCP and recycles it afterwards: FromTCC never
// retains the message, and putTCCMsg releases the fill payload
// reference (fills are copied into the L1 array at delivery).
func (c *TCC) send(cu int, msg *tccMsg) {
	if c.sendFns == nil {
		c.sendFns = make([]func(any), len(c.tcps))
	}
	fn := c.sendFns[cu]
	if fn == nil {
		fn = func(a any) {
			m := a.(*tccMsg)
			c.tcps[cu].FromTCC(m)
			c.pool.putTCCMsg(m)
		}
		c.sendFns[cu] = fn
	}
	c.toTCP.To(cu).SendMsgLine(fn, msg, uint64(msg.line))
}

// AuditAgainstStore compares every valid L2 line against the backing
// store and returns a description of each divergence. With all
// write-throughs drained, a correct TCC is byte-identical to memory;
// a stale line is exactly what the LostWriteRace bug leaves behind.
func (c *TCC) AuditAgainstStore(st *mem.Store) []string {
	var out []string
	buf := make([]byte, c.lineSize())
	c.array.ForEachValid(func(l *cache.Line) {
		st.ReadBytes(l.Tag, buf)
		for i := range buf {
			if l.Data[i] != buf[i] {
				out = append(out, fmt.Sprintf("L2 line %#x byte %d holds %d, memory holds %d",
					uint64(l.Tag), i, l.Data[i], buf[i]))
				return
			}
		}
	})
	return out
}

// Stats returns the controller's activity counters.
func (c *TCC) Stats() map[string]uint64 {
	return map[string]uint64{
		"rdblk":          c.rdBlks,
		"wrvicblk":       c.wrVicBlks,
		"atomics":        c.atomicsSeen,
		"fills":          c.fills,
		"stalls":         c.stalls,
		"wbacks":         c.wbAcks,
		"dropped_merges": c.droppedMerges,
		"dropped_acks":   c.droppedAcks,
	}
}

// tccTBESave is a tccTBE's identity fields (the continuations are
// bound for the TBE's life and never change).
type tccTBESave struct {
	kind   tbeKind
	line   mem.Addr
	cu     int
	req    *mem.Request
	probed bool
}

// tccSnapshot captures one write-through L2 slice.
type tccSnapshot struct {
	array *cache.ArraySnapshot
	// tbeContents is parallel to allTBEs at snapshot time; TBEs built
	// later are recycled onto the free list at restore.
	tbeContents   []tccTBESave
	tbes          map[mem.Addr]*tccTBE
	tbeFree       []*tccTBE
	stalled       map[mem.Addr][]*tcpMsg
	stalledProbes map[mem.Addr][]func()
	wbs           map[mem.Addr]int

	rdBlks, wrVicBlks, atomicsSeen, fills, stalls uint64
	wbAcks, droppedMerges, droppedAcks            uint64

	xbar *network.CrossbarSnapshot
}

func (c *TCC) snapshot() any {
	s := &tccSnapshot{
		array:         c.array.Snapshot(),
		tbeContents:   make([]tccTBESave, len(c.allTBEs)),
		tbes:          make(map[mem.Addr]*tccTBE, len(c.tbes)),
		tbeFree:       append([]*tccTBE(nil), c.tbeFree...),
		stalled:       make(map[mem.Addr][]*tcpMsg, len(c.stalled)),
		stalledProbes: make(map[mem.Addr][]func(), len(c.stalledProbes)),
		wbs:           make(map[mem.Addr]int, len(c.wbs)),
		rdBlks:        c.rdBlks, wrVicBlks: c.wrVicBlks, atomicsSeen: c.atomicsSeen,
		fills: c.fills, stalls: c.stalls, wbAcks: c.wbAcks,
		droppedMerges: c.droppedMerges, droppedAcks: c.droppedAcks,
		xbar: c.toTCP.Snapshot(),
	}
	for i, t := range c.allTBEs {
		s.tbeContents[i] = tccTBESave{kind: t.kind, line: t.line, cu: t.cu, req: t.req, probed: t.probed}
	}
	for line, t := range c.tbes {
		s.tbes[line] = t
	}
	for line, q := range c.stalled {
		s.stalled[line] = append([]*tcpMsg(nil), q...)
	}
	for line, q := range c.stalledProbes {
		s.stalledProbes[line] = append(([]func())(nil), q...)
	}
	for line, n := range c.wbs {
		s.wbs[line] = n
	}
	return s
}

func (c *TCC) restore(snap any) {
	s := snap.(*tccSnapshot)
	c.array.Restore(s.array)
	for i, t := range c.allTBEs {
		if i < len(s.tbeContents) {
			sv := s.tbeContents[i]
			t.kind, t.line, t.cu, t.req, t.probed = sv.kind, sv.line, sv.cu, sv.req, sv.probed
		} else {
			t.req, t.probed = nil, false
		}
	}
	c.tbeFree = append(c.tbeFree[:0], s.tbeFree...)
	c.tbeFree = append(c.tbeFree, c.allTBEs[len(s.tbeContents):]...)
	clear(c.tbes)
	for line, t := range s.tbes {
		c.tbes[line] = t
	}
	clear(c.stalled)
	for line, q := range s.stalled {
		c.stalled[line] = append([]*tcpMsg(nil), q...)
	}
	c.stalledFree = c.stalledFree[:0]
	clear(c.stalledProbes)
	for line, q := range s.stalledProbes {
		c.stalledProbes[line] = append(([]func())(nil), q...)
	}
	clear(c.wbs)
	for line, n := range s.wbs {
		c.wbs[line] = n
	}
	c.rdBlks, c.wrVicBlks, c.atomicsSeen = s.rdBlks, s.wrVicBlks, s.atomicsSeen
	c.fills, c.stalls, c.wbAcks = s.fills, s.stalls, s.wbAcks
	c.droppedMerges, c.droppedAcks = s.droppedMerges, s.droppedAcks
	c.toTCP.Restore(s.xbar)
}
