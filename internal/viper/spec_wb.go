package viper

import "drftest/internal/protocol"

// VIPER-WB is the write-back L2 protocol variant (§IV: "the tester can
// support other GPU protocols as well with minimal extensions"). The
// L2 is the GPU's global visibility point: write-throughs from the L1s
// are absorbed into (write-allocated) L2 lines and acknowledged at
// acceptance; dirty lines reach memory only on eviction. Atomics are
// performed at the L2 itself. The design is in the spirit of
// QuickRelease's throughput-oriented release consistency: releases
// drain as soon as the thread's writes reach the L2, not memory.
//
// The variant is GPU-only — a write-back GPU L2 under the shared
// directory would leave memory stale for CPU readers — so the PrbInv
// row is undefined, as are the directory ack events.

// TCC-WB states.
const (
	TCCWBStateI  = iota // invalid / not present
	TCCWBStateV         // valid clean
	TCCWBStateD         // valid dirty (newer than memory)
	TCCWBStateIV        // awaiting refill data
	TCCWBStateA         // awaiting refill data for an atomic
)

// TCCWBStates names the write-back L2 states.
var TCCWBStates = []string{"I", "V", "D", "IV", "A"}

// NewTCCWBSpec builds the write-back L2 transition table. It reuses
// the Table II event vocabulary; AtomicD/AtomicND (directory acks) and
// PrbInv (remote probes) are undefined in this GPU-only variant.
func NewTCCWBSpec() *protocol.Spec {
	s := protocol.NewSpec("GPU-L2WB", TCCWBStates, TCCEvents)

	s.Trans(TCCWBStateI, TCCRdBlk, TCCWBStateIV, "miss: fetch from memory")
	s.Trans(TCCWBStateV, TCCRdBlk, TCCWBStateV, "hit: send TCC_Ack")
	s.Trans(TCCWBStateD, TCCRdBlk, TCCWBStateD, "dirty hit: send TCC_Ack")
	s.StallOn(TCCWBStateIV, TCCRdBlk)
	s.StallOn(TCCWBStateA, TCCRdBlk)

	s.Trans(TCCWBStateI, TCCWrVicBlk, TCCWBStateIV, "write-allocate: fetch, buffer bytes, ack now")
	s.Trans(TCCWBStateV, TCCWrVicBlk, TCCWBStateD, "merge bytes, ack now")
	s.Trans(TCCWBStateD, TCCWrVicBlk, TCCWBStateD, "merge bytes, ack now")
	s.StallOn(TCCWBStateIV, TCCWrVicBlk)
	s.StallOn(TCCWBStateA, TCCWrVicBlk)

	s.Trans(TCCWBStateI, TCCAtomic, TCCWBStateA, "miss: fetch for atomic")
	s.Trans(TCCWBStateV, TCCAtomic, TCCWBStateD, "perform at L2, TCC_Ack old value")
	s.Trans(TCCWBStateD, TCCAtomic, TCCWBStateD, "perform at L2, TCC_Ack old value")
	s.StallOn(TCCWBStateIV, TCCAtomic)
	s.StallOn(TCCWBStateA, TCCAtomic)

	s.Trans(TCCWBStateIV, TCCData, TCCWBStateV, "fill (+merge buffered writes -> D)")
	s.Trans(TCCWBStateA, TCCData, TCCWBStateD, "fill, perform atomic, TCC_Ack old value")

	s.Trans(TCCWBStateV, TCCL2Repl, TCCWBStateI, "evict clean")
	s.Trans(TCCWBStateD, TCCL2Repl, TCCWBStateI, "evict dirty: write back to memory")

	s.Trans(TCCWBStateI, TCCWBAck, TCCWBStateI, "eviction write-back complete")
	s.Trans(TCCWBStateV, TCCWBAck, TCCWBStateV, "eviction write-back complete (line refilled)")
	s.Trans(TCCWBStateD, TCCWBAck, TCCWBStateD, "eviction write-back complete (line refilled)")
	s.Trans(TCCWBStateIV, TCCWBAck, TCCWBStateIV, "eviction write-back complete (refill in flight)")
	s.Trans(TCCWBStateA, TCCWBAck, TCCWBStateA, "eviction write-back complete (refill in flight)")

	return s
}
