package viper

import (
	"fmt"

	"drftest/internal/cache"
	"drftest/internal/mem"
	"drftest/internal/memctrl"
	"drftest/internal/network"
	"drftest/internal/protocol"
	"drftest/internal/rng"
	"drftest/internal/sim"
	"drftest/internal/stats"
)

// Config describes a GPU memory system under test.
type Config struct {
	// NumCUs is the number of compute units; each has a private L1
	// (TCP) and sequencer. The paper evaluates 8.
	NumCUs int
	// NumL2Slices banks the shared L2 by line address (real TCCs are
	// banked); each slice gets its own controller and an L2 cache of
	// the configured size. Zero means one slice.
	NumL2Slices int
	// L1 and L2 size the caches; both must share a line size.
	L1, L2 cache.Config
	// ReqLatency/RespLatency are the TCP↔TCC link latencies. Request
	// links are always ordered (FIFO) — VIPER's same-CU per-address
	// ordering depends on it — but response links may jitter.
	ReqLatency, RespLatency sim.Tick
	// RespJitter adds up to this many ticks of per-message random
	// latency on the TCC→TCP response links, reordering responses to
	// different lines the way an unordered virtual network would.
	// Responses to the same line cannot race (one transaction per line
	// at a time), so this is safe — and it widens the timing space the
	// tester explores. Zero disables jitter.
	RespJitter sim.Tick
	// JitterSeed seeds the response-jitter randomness.
	JitterSeed uint64
	// L1RespLatency is the sequencer's core-response latency.
	L1RespLatency sim.Tick
	// Mem configures the memory controller (ignored when the system is
	// built over an external backend such as the directory).
	Mem memctrl.Config
	// Bugs selects injected protocol bugs (zero value = correct).
	Bugs BugSet
	// WriteBackL2 selects the VIPER-WB protocol variant: the L2 holds
	// dirty data (the GPU's visibility point) and writes back to
	// memory only on eviction, QuickRelease-style. Write acks return
	// at L2 acceptance, so releases drain much faster. GPU-only: a
	// write-back L2 cannot sit under the heterogeneous directory
	// (memory would be stale for CPU readers).
	WriteBackL2 bool
}

// DefaultConfig returns the paper's application-run GPU configuration:
// 8 CUs, 16KB L1s, 256KB shared L2, 64B lines.
func DefaultConfig() Config {
	return Config{
		NumCUs:        8,
		L1:            cache.Config{SizeBytes: 16 * 1024, LineSize: 64, Assoc: 4},
		L2:            cache.Config{SizeBytes: 256 * 1024, LineSize: 64, Assoc: 16},
		ReqLatency:    8,
		RespLatency:   8,
		L1RespLatency: 1,
		Mem:           memctrl.DefaultConfig(),
	}
}

// SmallCacheConfig returns the paper's "small" tester configuration
// (256B 2-way L1, 1KB 2-way L2) that stresses replacement transitions.
func SmallCacheConfig() Config {
	c := DefaultConfig()
	c.L1 = cache.Config{SizeBytes: 256, LineSize: 64, Assoc: 2}
	c.L2 = cache.Config{SizeBytes: 1024, LineSize: 64, Assoc: 2}
	return c
}

// LargeCacheConfig returns the paper's "large" tester configuration
// (256KB 16-way L1, 1MB 16-way L2) that stresses hit transitions.
func LargeCacheConfig() Config {
	c := DefaultConfig()
	c.L1 = cache.Config{SizeBytes: 256 * 1024, LineSize: 64, Assoc: 16}
	c.L2 = cache.Config{SizeBytes: 1024 * 1024, LineSize: 64, Assoc: 16}
	return c
}

// MixedCacheConfig returns the paper's "mixed" tester configuration
// (small L1, large L2).
func MixedCacheConfig() Config {
	c := DefaultConfig()
	c.L1 = cache.Config{SizeBytes: 256, LineSize: 64, Assoc: 2}
	c.L2 = cache.Config{SizeBytes: 1024 * 1024, LineSize: 64, Assoc: 16}
	return c
}

// System is an assembled GPU memory system: sequencers and L1s per CU,
// a shared L2, and a backend (memory controller or directory).
type System struct {
	Kernel *sim.Kernel
	Cfg    Config
	Seqs   []*Sequencer
	TCPs   []*TCP
	// TCCs holds the (possibly banked) shared L2 slices of the
	// write-through protocol; TCC is the first slice. For the VIPER-WB
	// variant both are nil and l2s holds TCCWB controllers.
	TCC  *TCC
	TCCs []*TCC
	l2s  []l2ctrl
	// Mem is non-nil only for systems built directly over a memory
	// controller.
	Mem *memctrl.Controller

	faults []*protocol.FaultError
	// jrnd is the response-jitter stream shared by every jittered
	// response crossbar, retained so Reset can reseed it.
	jrnd *rng.PCG
	// respXBars holds the per-slice response crossbars, retained so
	// SetRespJitter can retune them between runs.
	respXBars []*network.Crossbar
	// pool is the shared message pool, retained for snapshots.
	pool *msgPool
}

// jitterStream is the PCG stream selector of the response-jitter
// randomness (arbitrary, fixed: reseeding on Reset must reproduce the
// construction-time stream exactly).
const jitterStream = 0x31771

// Reset returns the system to its just-built state for the same
// config: caches invalidated, controller transaction and stall state
// dropped, stats zeroed, response-jitter randomness reseeded, faults
// cleared, and — for systems owning their memory — the controller and
// backing store emptied. The kernel MUST be reset first (Kernel.Reset):
// the state recycled here may still be referenced by pending events,
// and dropping those events is what makes the recycling sound. After
// Kernel.Reset + System.Reset, a run from seed s is bit-identical to a
// run from seed s on a freshly built system (the harness pins this
// with a bit-identity test).
//
// Systems built over an external backend (NewSystemWithBackend) only
// reset the GPU-side state; the backend owner must reset it alongside.
func (s *System) Reset() {
	if s.Kernel.Pending() > 0 {
		panic("viper: System.Reset with pending kernel events — call Kernel.Reset first")
	}
	s.faults = nil
	*s.jrnd = *rng.New(s.Cfg.JitterSeed, jitterStream)
	for _, seq := range s.Seqs {
		seq.reset()
	}
	for _, tcp := range s.TCPs {
		tcp.reset()
	}
	for _, l2 := range s.l2s {
		l2.reset()
	}
	if s.Mem != nil {
		s.Mem.Reset()
	}
	// Last: force-reclaim every payload line. The controllers above
	// dropped their references without releasing (their state was
	// recycled wholesale), so the pool re-parks the whole registry.
	s.pool.reset()
}

// SetRespJitter retunes the response-network jitter window and its
// seed between runs of a reused system: it updates the config so the
// next Reset reseeds the jitter stream from seed, and widens (or
// zeroes) every response crossbar's window. Only valid immediately
// before Reset — in-flight messages must be gone first — so callers
// sequence Kernel.Reset, SetRespJitter, System.Reset. After that
// sequence a run is bit-identical to one on a freshly built system
// with the same RespJitter/JitterSeed in its config.
func (s *System) SetRespJitter(jitter sim.Tick, seed uint64) {
	if s.Kernel.Pending() > 0 {
		panic("viper: SetRespJitter with pending kernel events — call Kernel.Reset first")
	}
	s.Cfg.RespJitter = jitter
	s.Cfg.JitterSeed = seed
	for _, xb := range s.respXBars {
		xb.SetJitter(jitter)
	}
}

// l2ctrl is the controller surface TCPs and the System need from an
// L2 slice, satisfied by both TCC (write-through) and TCCWB
// (write-back).
type l2ctrl interface {
	FromTCP(msg *tcpMsg)
	ProbeInv(line mem.Addr, done func())
	AuditAgainstStore(st *mem.Store) []string
	Flush(st *mem.Store)
	Stats() map[string]uint64
	slice() int
	attachTCP(t *TCP)
	// reset returns the slice to its just-built state (see System.Reset
	// for the contract; the kernel must already be reset).
	reset()
	// snapshot/restore capture and reinstate the slice's full state
	// (see System.Snapshot for the contract).
	snapshot() any
	restore(snap any)
}

// sliceOf routes a line address to its L2 slice.
func (s *System) sliceOf(line mem.Addr) l2ctrl {
	if len(s.l2s) == 1 {
		return s.l2s[0]
	}
	idx := int(line/mem.Addr(s.Cfg.L2.LineSize)) % len(s.l2s)
	return s.l2s[idx]
}

// ProbeInv implements the directory's GPUPort over all slices.
func (s *System) ProbeInv(line mem.Addr, done func()) {
	s.sliceOf(line).ProbeInv(line, done)
}

// AuditL2 compares every slice's cached lines against the backing
// store and returns any divergences. For the write-back variant the
// dirty lines are flushed first (they are legitimately newer than
// memory); for write-through nothing is flushed, so a stale L2 line —
// the LostWriteRace signature — still surfaces.
func (s *System) AuditL2(store *mem.Store) []string {
	if s.Cfg.WriteBackL2 {
		for _, l2 := range s.l2s {
			l2.Flush(store)
		}
	}
	var out []string
	for _, l2 := range s.l2s {
		out = append(out, l2.AuditAgainstStore(store)...)
	}
	return out
}

// Latencies aggregates every sequencer's per-class request latency
// histograms.
func (s *System) Latencies() *stats.LatencySet {
	agg := stats.NewLatencySet("gpu")
	for _, seq := range s.Seqs {
		agg.Merge(seq.Latencies())
	}
	return agg
}

// L2Stats aggregates the activity counters of every L2 slice.
func (s *System) L2Stats() map[string]uint64 {
	out := map[string]uint64{}
	for _, l2 := range s.l2s {
		for k, v := range l2.Stats() {
			out[k] += v
		}
	}
	return out
}

// MemBackend adapts a memory controller to the TCC's Backend interface
// (GPU-only systems; it never NACKs atomics). The callback shapes
// match exactly, so every method is a pure pass-through.
type MemBackend struct{ Ctrl *memctrl.Controller }

// FetchLine implements Backend.
func (b MemBackend) FetchLine(line mem.Addr, size int, done func(*mem.Line, any), ctx any) {
	b.Ctrl.ReadLine(line, size, done, ctx)
}

// WriteLine implements Backend.
func (b MemBackend) WriteLine(line mem.Addr, payload *mem.Line, done func(any), ctx any) {
	b.Ctrl.WriteLine(line, payload, done, ctx)
}

// Atomic implements Backend.
func (b MemBackend) Atomic(addr mem.Addr, delta uint32, done func(uint32, bool, any), ctx any) {
	b.Ctrl.Atomic(addr, delta, done, ctx)
}

// NewSystem builds a GPU system over its own memory controller and
// backing store. The controller shares the system's line pool, so read
// fills and write payloads cross the memory boundary without copying
// and one pool snapshot covers every in-flight payload.
func NewSystem(k *sim.Kernel, cfg Config, rec protocol.Recorder) *System {
	lines := mem.NewLinePool(cfg.L1.LineSize)
	ctrl := memctrl.New(k, cfg.Mem, mem.NewStore(), lines)
	s := newSystem(k, cfg, rec, MemBackend{Ctrl: ctrl}, lines)
	s.Mem = ctrl
	return s
}

// NewSystemWithBackend builds a GPU system whose TCC sits on an
// external backend (e.g. the heterogeneous system directory). The
// system still owns its line pool; payload handles handed to (or
// received from) the backend carry their owning pool, so they cross
// the boundary safely.
func NewSystemWithBackend(k *sim.Kernel, cfg Config, rec protocol.Recorder, backend Backend) *System {
	return newSystem(k, cfg, rec, backend, mem.NewLinePool(cfg.L1.LineSize))
}

func newSystem(k *sim.Kernel, cfg Config, rec protocol.Recorder, backend Backend, lines *mem.LinePool) *System {
	if cfg.NumCUs <= 0 {
		panic("viper: NumCUs must be positive")
	}
	if cfg.L1.LineSize != cfg.L2.LineSize {
		panic(fmt.Sprintf("viper: L1/L2 line size mismatch (%d vs %d)", cfg.L1.LineSize, cfg.L2.LineSize))
	}
	if cfg.WriteBackL2 {
		if _, direct := backend.(MemBackend); !direct {
			panic("viper: VIPER-WB is GPU-only — it cannot sit under a shared directory (memory would be stale for other clients)")
		}
	}
	if cfg.NumL2Slices <= 0 {
		cfg.NumL2Slices = 1
	}
	s := &System{Kernel: k, Cfg: cfg}
	onFault := func(f *protocol.FaultError) {
		s.faults = append(s.faults, f)
		k.Stop()
	}

	jrnd := rng.New(cfg.JitterSeed, jitterStream)
	s.jrnd = jrnd
	pool := newMsgPool(cfg.L1.LineSize, lines)
	s.pool = pool
	tccSpec := NewTCCSpec()
	wbSpec := NewTCCWBSpec()
	for sl := 0; sl < cfg.NumL2Slices; sl++ {
		// Response crossbars are always built jitter-capable: a jittered
		// link with a zero window is behaviorally identical to an ordered
		// one (Send/SendMsg only consult the stream when jitter > 0), and
		// it lets SetRespJitter retune the window between reset runs of a
		// reused system.
		respXBar := network.NewJitterCrossbar(k, fmt.Sprintf("tcc%d->tcp", sl), cfg.NumCUs, cfg.RespLatency, cfg.RespJitter, jrnd)
		s.respXBars = append(s.respXBars, respXBar)
		if cfg.WriteBackL2 {
			wb := newTCCWB(k, wbSpec, rec, onFault, cfg.L2, backend, respXBar, cfg.Bugs, pool)
			wb.sliceIndex = sl
			s.l2s = append(s.l2s, wb)
		} else {
			tcc := newTCC(k, tccSpec, rec, onFault, cfg.L2, backend, respXBar, cfg.Bugs, pool)
			tcc.sliceIndex = sl
			s.TCCs = append(s.TCCs, tcc)
			s.l2s = append(s.l2s, tcc)
		}
	}
	if !cfg.WriteBackL2 {
		s.TCC = s.TCCs[0]
	}

	tcpSpec := NewTCPSpec()
	for cu := 0; cu < cfg.NumCUs; cu++ {
		links := make([]*network.Link, cfg.NumL2Slices)
		for sl := range links {
			links[sl] = network.NewLink(k, fmt.Sprintf("tcp%d->tcc%d", cu, sl), cfg.ReqLatency)
		}
		tcp := newTCP(k, cu, tcpSpec, rec, onFault, cfg.L1, links, s.sliceOf, pool)
		for _, l2 := range s.l2s {
			l2.attachTCP(tcp)
		}
		seq := newSequencer(k, cu, tcp, cfg.L1RespLatency, cfg.Bugs)
		s.TCPs = append(s.TCPs, tcp)
		s.Seqs = append(s.Seqs, seq)
	}
	return s
}

// Faults returns protocol faults (undefined transitions) observed so
// far; a correct protocol under any workload returns none.
func (s *System) Faults() []*protocol.FaultError { return s.faults }

// OutstandingRequests counts in-flight requests across all sequencers.
func (s *System) OutstandingRequests() int {
	n := 0
	for _, seq := range s.Seqs {
		n += seq.OutstandingCount()
	}
	return n
}

// ForEachOutstanding visits every in-flight request in the system.
func (s *System) ForEachOutstanding(visit func(*mem.Request)) {
	for _, seq := range s.Seqs {
		seq.ForEachOutstanding(visit)
	}
}

// SystemSnapshot captures the full GPU memory-system state. Obtain via
// Snapshot, reinstate via Restore.
type SystemSnapshot struct {
	jrnd   rng.PCG
	faults []*protocol.FaultError
	pool   *poolSnapshot
	seqs   []*seqSnapshot
	tcps   []*tcpSnapshot
	l2s    []any
	mem    *memctrl.Snapshot
}

// EnableCheckpointing arms the system for mid-run snapshots: the
// message pool starts tracking every pooled object it hands out, so a
// later Snapshot can capture — and Restore reinstate — the contents of
// messages that are in flight at snapshot time. Without it, Snapshot
// is restricted to quiescent states (no pending kernel events) and
// skips the pool entirely, keeping warm-fork snapshots cheap. Must be
// called before the run whose midpoints will be snapshotted; tracking
// stays on for the system's lifetime.
func (s *System) EnableCheckpointing() { s.pool.enableTracking() }

// Snapshot captures the system's complete state. With checkpointing
// enabled (EnableCheckpointing) any point is snapshottable, including
// mid-run with messages in flight; otherwise the system must be
// quiescent (no pending kernel events), which is the warm-fork case —
// no live messages means pooled contents need no capture. Note the
// kernel's own event state is snapshotted separately (Kernel.Snapshot);
// pairing the two captures a consistent cut.
func (s *System) Snapshot() *SystemSnapshot {
	if !s.pool.track && s.Kernel.Pending() > 0 {
		panic("viper: System.Snapshot mid-run without EnableCheckpointing")
	}
	snap := &SystemSnapshot{
		jrnd:   *s.jrnd,
		faults: append([]*protocol.FaultError(nil), s.faults...),
	}
	if s.pool.track {
		snap.pool = s.pool.snapshot()
	}
	for _, seq := range s.Seqs {
		snap.seqs = append(snap.seqs, seq.snapshot())
	}
	for _, tcp := range s.TCPs {
		snap.tcps = append(snap.tcps, tcp.snapshot())
	}
	for _, l2 := range s.l2s {
		snap.l2s = append(snap.l2s, l2.snapshot())
	}
	if s.Mem != nil {
		snap.mem = s.Mem.Snapshot()
	}
	return snap
}

// Restore reinstates a state captured by Snapshot on this system. The
// kernel must be restored (Kernel.Restore) or reset to a matching cut
// first, for the same reason Reset requires a reset kernel: events
// referencing recycled state must agree with the state being installed.
// After Restore the system is bit-identical to the snapshotted one —
// continuing the run replays the exact same future.
func (s *System) Restore(snap *SystemSnapshot) {
	*s.jrnd = snap.jrnd
	s.faults = append(s.faults[:0], snap.faults...)
	if snap.pool != nil {
		s.pool.restore(snap.pool)
	} else {
		// Quiescent snapshot: nothing referenced a payload line at the
		// cut, so whatever the abandoned run left live is force-
		// reclaimed wholesale (the message free stacks already hold
		// every recycled struct).
		s.pool.reset()
	}
	for i, seq := range s.Seqs {
		seq.restore(snap.seqs[i])
	}
	for i, tcp := range s.TCPs {
		tcp.restore(snap.tcps[i])
	}
	for i, l2 := range s.l2s {
		l2.restore(snap.l2s[i])
	}
	if s.Mem != nil {
		s.Mem.Restore(snap.mem)
	}
}
