package viper

import (
	"strings"
	"testing"

	"drftest/internal/coverage"
	"drftest/internal/mem"
	"drftest/internal/protocol"
	"drftest/internal/sim"
)

// client records responses and can run a hook at delivery time.
type client struct {
	responses map[uint64]*mem.Response
	onResp    func(*mem.Response)
}

func newClient() *client { return &client{responses: make(map[uint64]*mem.Response)} }

func (c *client) HandleResponse(r *mem.Response) {
	cp := *r // the Response is only valid during the call (mem.Requestor)
	c.responses[r.Req.ID] = &cp
	if c.onResp != nil {
		c.onResp(&cp)
	}
}

type rig struct {
	k   *sim.Kernel
	sys *System
	col *coverage.Collector
	cl  *client
	id  uint64
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	k := sim.NewKernel()
	col := coverage.NewCollector(NewTCPSpec(), NewTCCSpec(), NewTCCWBSpec())
	sys := NewSystem(k, cfg, col)
	cl := newClient()
	for _, s := range sys.Seqs {
		s.SetClient(cl)
	}
	return &rig{k: k, sys: sys, col: col, cl: cl}
}

func (r *rig) issue(cu int, op mem.Op, addr mem.Addr, val uint32, thread int) uint64 {
	r.id++
	req := &mem.Request{ID: r.id, Op: op, Addr: addr, ThreadID: thread}
	if op == mem.OpStore {
		req.Data = val
	}
	if op == mem.OpAtomic {
		req.Operand = val
	}
	r.sys.Seqs[cu].Issue(req)
	return r.id
}

func (r *rig) run() { r.k.RunUntilIdle() }

func (r *rig) resp(t *testing.T, id uint64) *mem.Response {
	t.Helper()
	resp, ok := r.cl.responses[id]
	if !ok {
		t.Fatalf("no response for request %d", id)
	}
	return resp
}

func smallCfg() Config {
	c := SmallCacheConfig()
	c.NumCUs = 2
	return c
}

func TestSpecCellCounts(t *testing.T) {
	tcp := NewTCPSpec()
	if u, s, d := tcp.CountKind(protocol.Undefined), tcp.CountKind(protocol.Stall), tcp.CountKind(protocol.Defined); u != 3 || s != 3 || d != 15 {
		t.Fatalf("TCP cells U=%d S=%d D=%d, want 3/3/15", u, s, d)
	}
	tcc := NewTCCSpec()
	if u, s, d := tcc.CountKind(protocol.Undefined), tcc.CountKind(protocol.Stall), tcc.CountKind(protocol.Defined); u != 12 || s != 6 || d != 18 {
		t.Fatalf("TCC cells U=%d S=%d D=%d, want 12/6/18", u, s, d)
	}
}

func TestLoadMissFillsFromMemory(t *testing.T) {
	r := newRig(t, smallCfg())
	r.sys.Mem.Store().WriteWord(0x100, 0xCAFE)
	id := r.issue(0, mem.OpLoad, 0x100, 0, 0)
	r.run()
	if got := r.resp(t, id).Data; got != 0xCAFE {
		t.Fatalf("load returned %#x, want 0xCAFE", got)
	}
	if r.col.Matrix("GPU-L1").Hits[TCPStateI][TCPLoad] == 0 {
		t.Fatal("[I,Load] not recorded")
	}
}

func TestLoadHitIsFasterAndRecorded(t *testing.T) {
	r := newRig(t, smallCfg())
	id1 := r.issue(0, mem.OpLoad, 0x100, 0, 0)
	r.run()
	t1 := r.resp(t, id1).Tick
	start := uint64(r.k.Now())
	id2 := r.issue(0, mem.OpLoad, 0x100, 0, 0)
	r.run()
	t2 := r.resp(t, id2).Tick
	if lat1, lat2 := t1, t2-start; lat2 >= lat1 {
		t.Fatalf("hit latency %d not below miss latency %d", lat2, lat1)
	}
	if r.col.Matrix("GPU-L1").Hits[TCPStateV][TCPLoad] == 0 {
		t.Fatal("[V,Load] hit not recorded")
	}
}

func TestStoreThenLoadSameThread(t *testing.T) {
	r := newRig(t, smallCfg())
	r.issue(0, mem.OpStore, 0x200, 77, 0)
	id := r.issue(0, mem.OpLoad, 0x200, 0, 0)
	r.run()
	if got := r.resp(t, id).Data; got != 77 {
		t.Fatalf("own store not observed: got %d", got)
	}
}

// TestStoreLoadBackToBackNoDrain reproduces the racing case: the load
// is issued immediately after the store's (early) response, while the
// write-through is still in flight — per-address program order must
// still hold via the L1's write-merge buffer.
func TestStoreLoadBackToBackNoDrain(t *testing.T) {
	r := newRig(t, smallCfg())
	var loaded uint32
	stID := r.issue(0, mem.OpStore, 0x240, 55, 0)
	r.cl.onResp = func(resp *mem.Response) {
		if resp.Req.ID == stID {
			id := r.issue(0, mem.OpLoad, 0x240, 0, 0)
			r.cl.onResp = func(resp2 *mem.Response) {
				if resp2.Req.ID == id {
					loaded = resp2.Data
				}
			}
		}
	}
	r.run()
	if loaded != 55 {
		t.Fatalf("load right after store saw %d, want 55", loaded)
	}
}

func TestAtomicFetchAddOldValues(t *testing.T) {
	r := newRig(t, smallCfg())
	id1 := r.issue(0, mem.OpAtomic, 0x300, 5, 0)
	r.run()
	id2 := r.issue(1, mem.OpAtomic, 0x300, 5, 1)
	r.run()
	if r.resp(t, id1).Data != 0 || r.resp(t, id2).Data != 5 {
		t.Fatalf("atomic olds %d,%d want 0,5", r.resp(t, id1).Data, r.resp(t, id2).Data)
	}
	if got := r.sys.Mem.Store().ReadWord(0x300); got != 10 {
		t.Fatalf("memory holds %d, want 10", got)
	}
}

// TestRelaxedStaleReadThenAcquire shows VIPER's relaxed window and the
// acquire fix: a cached copy may go stale after a remote write; a
// load-acquire flash-invalidates and re-fetches fresh data.
func TestRelaxedStaleReadThenAcquire(t *testing.T) {
	r := newRig(t, smallCfg())
	warm := r.issue(0, mem.OpLoad, 0x400, 0, 0)
	r.run()
	if r.resp(t, warm).Data != 0 {
		t.Fatal("expected initial zero")
	}
	st := r.issue(1, mem.OpStore, 0x400, 123, 1)
	r.run()
	_ = st
	stale := r.issue(0, mem.OpLoad, 0x400, 0, 0)
	r.run()
	if got := r.resp(t, stale).Data; got != 0 {
		t.Fatalf("expected stale cached 0 before acquire, got %d", got)
	}
	r.id++
	acq := &mem.Request{ID: r.id, Op: mem.OpAtomic, Addr: 0x500, Operand: 1, Acquire: true, ThreadID: 0}
	r.sys.Seqs[0].Issue(acq)
	r.run()
	fresh := r.issue(0, mem.OpLoad, 0x400, 0, 0)
	r.run()
	if got := r.resp(t, fresh).Data; got != 123 {
		t.Fatalf("post-acquire load saw %d, want 123", got)
	}
	if r.col.Matrix("GPU-L1").Hits[TCPStateV][TCPEvict] == 0 {
		t.Fatal("[V,Evict] flash invalidation not recorded")
	}
}

// TestReleaseWaitsForWriteDrain: a store-release must not complete
// before the thread's earlier write-throughs are globally visible.
func TestReleaseWaitsForWriteDrain(t *testing.T) {
	r := newRig(t, smallCfg())
	r.issue(0, mem.OpStore, 0x600, 9, 0)
	r.id++
	rel := &mem.Request{ID: r.id, Op: mem.OpAtomic, Addr: 0x700, Operand: 1, Release: true, ThreadID: 0}
	relID := r.id
	var memAtRelease uint32
	r.cl.onResp = func(resp *mem.Response) {
		if resp.Req.ID == relID {
			memAtRelease = r.sys.Mem.Store().ReadWord(0x600)
		}
	}
	r.sys.Seqs[0].Issue(rel)
	r.run()
	r.resp(t, relID)
	if memAtRelease != 9 {
		t.Fatalf("release completed before write drained (memory held %d)", memAtRelease)
	}
}

func TestFalseSharingWritesBothLand(t *testing.T) {
	r := newRig(t, smallCfg())
	// Same 64B line, different words, different CUs.
	r.issue(0, mem.OpStore, 0x800, 1, 0)
	r.issue(1, mem.OpStore, 0x804, 2, 1)
	r.run()
	st := r.sys.Mem.Store()
	if st.ReadWord(0x800) != 1 || st.ReadWord(0x804) != 2 {
		t.Fatalf("false-sharing writes lost: %d %d", st.ReadWord(0x800), st.ReadWord(0x804))
	}
}

func TestAtomicToLineStallsFollowers(t *testing.T) {
	r := newRig(t, smallCfg())
	a := r.issue(0, mem.OpAtomic, 0x900, 1, 0)
	l := r.issue(0, mem.OpLoad, 0x904, 0, 1) // same line, different word
	r.run()
	r.resp(t, a)
	r.resp(t, l)
	if r.col.Matrix("GPU-L1").Hits[TCPStateA][TCPLoad] == 0 {
		t.Fatal("[A,Load] stall not recorded")
	}
}

func TestDuplicateRequestIDPanics(t *testing.T) {
	r := newRig(t, smallCfg())
	r.issue(0, mem.OpLoad, 0x100, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate ID accepted")
		}
	}()
	req := &mem.Request{ID: 1, Op: mem.OpLoad, Addr: 0x200}
	r.sys.Seqs[0].Issue(req)
}

func TestIssueBeforeClientPanics(t *testing.T) {
	k := sim.NewKernel()
	sys := NewSystem(k, smallCfg(), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Issue before SetClient accepted")
		}
	}()
	sys.Seqs[0].Issue(&mem.Request{ID: 1, Op: mem.OpLoad})
}

func TestMismatchedLineSizesPanic(t *testing.T) {
	cfg := smallCfg()
	cfg.L2.LineSize = 128
	cfg.L2.SizeBytes = 2048
	defer func() {
		if recover() == nil {
			t.Fatal("line-size mismatch accepted")
		}
	}()
	NewSystem(sim.NewKernel(), cfg, nil)
}

func TestL2AuditCleanAfterDrain(t *testing.T) {
	r := newRig(t, smallCfg())
	for i := 0; i < 32; i++ {
		r.issue(i%2, mem.OpStore, mem.Addr(0x1000+i*4), uint32(i), i%4)
		r.issue((i+1)%2, mem.OpLoad, mem.Addr(0x1000+i*4), 0, i%4)
	}
	r.run()
	if m := r.sys.TCC.AuditAgainstStore(r.sys.Mem.Store()); len(m) != 0 {
		t.Fatalf("L2 diverged from memory: %v", m)
	}
}

func TestBuggyTCCFailsAudit(t *testing.T) {
	cfg := smallCfg()
	cfg.Bugs.LostWriteRace = true
	r := newRig(t, cfg)
	// Warm the L2 line, then race two write-throughs on it.
	r.issue(0, mem.OpLoad, 0x2000, 0, 0)
	r.run()
	r.issue(0, mem.OpStore, 0x2000, 1, 0)
	r.issue(1, mem.OpStore, 0x2004, 2, 1)
	r.issue(0, mem.OpStore, 0x2008, 3, 0)
	r.run()
	if m := r.sys.TCC.AuditAgainstStore(r.sys.Mem.Store()); len(m) == 0 {
		t.Skip("race window not hit under this timing")
	}
}

// TestSpecsRoundTripThroughText: every protocol table survives the
// SLICC-like textual form unchanged — the tables truly are data.
func TestSpecsRoundTripThroughText(t *testing.T) {
	for _, mk := range []func() *protocol.Spec{NewTCPSpec, NewTCCSpec, NewTCCWBSpec} {
		orig := mk()
		var b strings.Builder
		if err := orig.Format(&b); err != nil {
			t.Fatal(err)
		}
		re, err := protocol.ParseSpec(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("%s: reparse failed: %v", orig.Name, err)
		}
		if !orig.Equal(re) {
			t.Fatalf("%s: text round trip changed the table: %v", orig.Name, orig.Diff(re))
		}
	}
}
