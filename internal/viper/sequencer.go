package viper

import (
	"fmt"

	"drftest/internal/mem"
	"drftest/internal/sim"
	"drftest/internal/stats"
)

// Sequencer is the per-CU port between a core (the tester or a GPU
// core model) and its TCP. It implements the consistency-model half of
// VIPER's synchronization operations:
//
//   - store-release: held until every earlier write-through of the
//     issuing thread has been acknowledged (globally performed);
//   - load-acquire: the CU's L1 is flash-invalidated when the response
//     is delivered, so later loads cannot see pre-acquire data.
//
// It also tracks all outstanding requests with their issue ticks, which
// is what the tester's forward-progress (deadlock) checker scans.
type Sequencer struct {
	k           *sim.Kernel
	cu          int
	tcp         *TCP
	client      mem.Requestor
	respLatency sim.Tick
	bugs        BugSet

	pendingWT    map[int]int
	heldReleases map[int][]*mem.Request
	outstanding  map[uint64]*mem.Request

	// Completed requests awaiting delivery, drained FIFO by deliverFn.
	// The response latency is a constant, so delivery order equals
	// completion order and one pre-bound closure serves every response —
	// the steady-state respond path allocates nothing.
	respQ     []pendingResp
	respHead  int
	deliverFn func()
	scratch   mem.Response

	// unit is the sequencer's schedule-exploration ordering domain: a
	// chooser may interleave different sequencers' deliveries but never
	// reorder one sequencer's own (the respQ FIFO pairing above).
	unit uint32

	lat *stats.LatencySet

	issued, completed uint64
}

func newSequencer(k *sim.Kernel, cu int, tcp *TCP, respLatency sim.Tick, bugs BugSet) *Sequencer {
	s := &Sequencer{
		k:            k,
		cu:           cu,
		tcp:          tcp,
		respLatency:  respLatency,
		bugs:         bugs,
		pendingWT:    make(map[int]int),
		heldReleases: make(map[int][]*mem.Request),
		outstanding:  make(map[uint64]*mem.Request),
		lat:          stats.NewLatencySet(fmt.Sprintf("cu%d", cu)),
		unit:         k.NewUnit(),
	}
	s.deliverFn = s.deliverNext
	tcp.seq = s
	return s
}

// reset returns the sequencer to its just-built state: no pending
// write-throughs, held releases, outstanding requests or queued
// responses, and zeroed stats. Client wiring and the pre-bound delivery
// closure are kept. The kernel must already be reset — dropping the
// response queue is only sound once the deliverFn events referencing it
// are gone.
func (s *Sequencer) reset() {
	clear(s.pendingWT)
	clear(s.heldReleases)
	clear(s.outstanding)
	clear(s.respQ)
	s.respQ = s.respQ[:0]
	s.respHead = 0
	s.issued, s.completed = 0, 0
	s.lat.Reset()
	s.scratch = mem.Response{}
}

// pendingResp is one completed request queued for core delivery.
type pendingResp struct {
	req  *mem.Request
	data uint32
}

// SetClient wires the core-side response sink. It must be called
// before the first Issue.
func (s *Sequencer) SetClient(c mem.Requestor) { s.client = c }

// CU returns the sequencer's compute unit ID.
func (s *Sequencer) CU() int { return s.cu }

// Issue accepts one core request. Requests complete asynchronously via
// the client's HandleResponse.
func (s *Sequencer) Issue(req *mem.Request) {
	if s.client == nil {
		panic("viper: Issue before SetClient")
	}
	if _, dup := s.outstanding[req.ID]; dup {
		panic(fmt.Sprintf("viper: duplicate request ID %d", req.ID))
	}
	req.CUID = s.cu
	req.IssueTick = uint64(s.k.Now())
	s.outstanding[req.ID] = req
	s.issued++

	if req.Release && s.pendingWT[req.ThreadID] > 0 {
		s.heldReleases[req.ThreadID] = append(s.heldReleases[req.ThreadID], req)
		return
	}
	s.tcp.CoreRequest(req)
}

// respond delivers a completed request back to the core after the L1
// response latency, applying acquire semantics at delivery time.
//
// The delivery event advertises the response's line footprint to an
// attached schedule chooser — except for acquires (delivery flash-
// invalidates the whole L1) and releases (retirement updates every
// claimed variable's reference state), whose effects are not confined
// to one line and so must stay dependent with everything.
func (s *Sequencer) respond(req *mem.Request, data uint32) {
	s.respQ = append(s.respQ, pendingResp{req: req, data: data})
	tag := sim.MakeUnitTag(sim.CompSequencer, s.unit)
	if !req.Acquire && !req.Release {
		tag = sim.MakeLineTag(sim.CompSequencer, s.unit, uint64(mem.LineAddr(req.Addr, s.tcp.lineSize())))
	}
	s.k.ScheduleTagged(s.respLatency, tag, s.deliverFn)
}

// deliverNext completes the oldest queued response. FIFO matching is
// sound because every respond schedules deliverFn exactly respLatency
// ticks out and simulated time never runs backwards, so deliveries fire
// in queue order. The Response handed to the client is a reused scratch
// value, valid only for the duration of the HandleResponse call (see
// mem.Requestor).
func (s *Sequencer) deliverNext() {
	p := s.respQ[s.respHead]
	s.respQ[s.respHead] = pendingResp{}
	s.respHead++
	if s.respHead == len(s.respQ) {
		s.respQ = s.respQ[:0]
		s.respHead = 0
	}
	req := p.req
	if req.Acquire && !s.bugs.StaleAcquire {
		s.tcp.FlashInvalidate()
	}
	delete(s.outstanding, req.ID)
	s.completed++
	s.recordLatency(req, uint64(s.k.Now())-req.IssueTick)
	s.scratch = mem.Response{Req: req, Data: p.data, Tick: uint64(s.k.Now())}
	s.client.HandleResponse(&s.scratch)
}

// noteWriteThrough records that req's thread gained one in-flight
// write-through.
func (s *Sequencer) noteWriteThrough(req *mem.Request) {
	s.pendingWT[req.ThreadID]++
}

// writeCompleted records a write-through acknowledgement and, when the
// thread fully drains, launches any held store-release.
func (s *Sequencer) writeCompleted(req *mem.Request) {
	tid := req.ThreadID
	if s.pendingWT[tid] <= 0 {
		panic(fmt.Sprintf("viper: write completion underflow for thread %d", tid))
	}
	s.pendingWT[tid]--
	if s.pendingWT[tid] > 0 {
		return
	}
	delete(s.pendingWT, tid)
	held := s.heldReleases[tid]
	if len(held) == 0 {
		return
	}
	delete(s.heldReleases, tid)
	for _, r := range held {
		s.tcp.CoreRequest(r)
	}
}

// ForEachOutstanding visits every request that has been issued but not
// yet answered (including held releases and protocol-stalled requests).
func (s *Sequencer) ForEachOutstanding(visit func(*mem.Request)) {
	for _, r := range s.outstanding {
		visit(r)
	}
}

// OutstandingCount returns the number of in-flight requests.
func (s *Sequencer) OutstandingCount() int { return len(s.outstanding) }

// Stats returns (issued, completed) request counts.
func (s *Sequencer) Stats() (issued, completed uint64) { return s.issued, s.completed }

func (s *Sequencer) recordLatency(req *mem.Request, lat uint64) {
	switch {
	case req.Acquire:
		s.lat.Acquire.Record(lat)
	case req.Release:
		s.lat.Release.Record(lat)
	case req.Op == mem.OpAtomic:
		s.lat.Atomic.Record(lat)
	case req.Op == mem.OpStore:
		s.lat.Store.Record(lat)
	default:
		s.lat.Load.Record(lat)
	}
}

// Latencies exposes the sequencer's per-class latency histograms.
func (s *Sequencer) Latencies() *stats.LatencySet { return s.lat }

// seqSnapshot captures a sequencer's in-flight and stats state.
// Request pointers are retained by identity: they reference the
// tester's request slab, whose slots are write-once within a run.
type seqSnapshot struct {
	pendingWT    map[int]int
	heldReleases map[int][]*mem.Request
	outstanding  map[uint64]*mem.Request
	respQ        []pendingResp
	lat          *stats.LatencySetSnapshot
	issued       uint64
	completed    uint64
}

func (s *Sequencer) snapshot() *seqSnapshot {
	snap := &seqSnapshot{
		pendingWT:    make(map[int]int, len(s.pendingWT)),
		heldReleases: make(map[int][]*mem.Request, len(s.heldReleases)),
		outstanding:  make(map[uint64]*mem.Request, len(s.outstanding)),
		lat:          s.lat.Snapshot(),
		issued:       s.issued,
		completed:    s.completed,
	}
	for k, v := range s.pendingWT {
		snap.pendingWT[k] = v
	}
	for k, v := range s.heldReleases {
		snap.heldReleases[k] = append([]*mem.Request(nil), v...)
	}
	for k, v := range s.outstanding {
		snap.outstanding[k] = v
	}
	if len(s.respQ) > s.respHead {
		snap.respQ = append([]pendingResp(nil), s.respQ[s.respHead:]...)
	}
	return snap
}

func (s *Sequencer) restore(snap *seqSnapshot) {
	clear(s.pendingWT)
	for k, v := range snap.pendingWT {
		s.pendingWT[k] = v
	}
	clear(s.heldReleases)
	for k, v := range snap.heldReleases {
		s.heldReleases[k] = append([]*mem.Request(nil), v...)
	}
	clear(s.outstanding)
	for k, v := range snap.outstanding {
		s.outstanding[k] = v
	}
	clear(s.respQ)
	s.respQ = append(s.respQ[:0], snap.respQ...)
	s.respHead = 0
	s.scratch = mem.Response{}
	s.lat.Restore(snap.lat)
	s.issued, s.completed = snap.issued, snap.completed
}
