package viper

import (
	"testing"

	"drftest/internal/mem"
)

// TestJitteredResponsesStayCorrect: with response-network jitter the
// protocol still delivers correct values and the L2 audit stays clean.
func TestJitteredResponsesStayCorrect(t *testing.T) {
	cfg := smallCfg()
	cfg.RespJitter = 10
	cfg.JitterSeed = 5
	r := newRig(t, cfg)
	for i := 0; i < 64; i++ {
		addr := mem.Addr(0x1000 + i*4)
		r.issue(i%2, mem.OpStore, addr, uint32(i+1), i%4)
	}
	r.run()
	for i := 0; i < 64; i++ {
		addr := mem.Addr(0x1000 + i*4)
		id := r.issue((i+1)%2, mem.OpLoad, addr, 0, i%4)
		r.run()
		if got := r.resp(t, id).Data; got != uint32(i+1) {
			t.Fatalf("load %d saw %d under jitter", i, got)
		}
	}
	if m := r.sys.AuditL2(r.sys.Mem.Store()); len(m) != 0 {
		t.Fatalf("L2 diverged under jitter: %v", m)
	}
}

// TestJitterIsDeterministic: same jitter seed, same run.
func TestJitterIsDeterministic(t *testing.T) {
	run := func() uint64 {
		cfg := smallCfg()
		cfg.RespJitter = 10
		cfg.JitterSeed = 9
		r := newRig(t, cfg)
		for i := 0; i < 32; i++ {
			r.issue(i%2, mem.OpStore, mem.Addr(0x2000+i*4), uint32(i), i%4)
			r.issue((i+1)%2, mem.OpLoad, mem.Addr(0x2000+i*4), 0, i%4)
		}
		r.run()
		return uint64(r.k.Now())
	}
	if run() != run() {
		t.Fatal("jittered runs diverged with the same seed")
	}
}

// TestLatencyHistogramsReflectSemantics: synchronization operations
// must be measurably slower than the plain accesses they order —
// releases wait for drains, atomics take the full L2/memory round
// trip, plain stores complete at L1 acceptance.
func TestLatencyHistogramsReflectSemantics(t *testing.T) {
	r := newRig(t, smallCfg())
	for i := 0; i < 32; i++ {
		r.issue(0, mem.OpStore, mem.Addr(0x3000+i*4), uint32(i), 0)
		r.run()
		r.id++
		rel := &mem.Request{ID: r.id, Op: mem.OpAtomic, Addr: 0x4000, Operand: 1, Release: true, ThreadID: 0}
		r.sys.Seqs[0].Issue(rel)
		r.run()
		r.issue(0, mem.OpLoad, mem.Addr(0x3000+i*4), 0, 0)
		r.run()
	}
	lat := r.sys.Latencies()
	if lat.Store.Count() == 0 || lat.Release.Count() == 0 || lat.Load.Count() == 0 {
		t.Fatal("histograms empty")
	}
	if lat.Release.Mean() <= lat.Store.Mean() {
		t.Fatalf("release mean %.1f should exceed store mean %.1f (drain semantics)",
			lat.Release.Mean(), lat.Store.Mean())
	}
	t.Logf("latencies: store %.1f, load %.1f, release %.1f",
		lat.Store.Mean(), lat.Load.Mean(), lat.Release.Mean())
}
