package viper

import (
	"testing"

	"drftest/internal/mem"
	"drftest/internal/protocol"
)

func wbCfg() Config {
	c := SmallCacheConfig()
	c.NumCUs = 2
	c.WriteBackL2 = true
	return c
}

func TestWBSpecCounts(t *testing.T) {
	s := NewTCCWBSpec()
	u, st, d := s.CountKind(protocol.Undefined), s.CountKind(protocol.Stall), s.CountKind(protocol.Defined)
	if u != 21 || st != 6 || d != 18 {
		t.Fatalf("TCC-WB cells U=%d S=%d D=%d, want 21/6/18", u, st, d)
	}
}

func TestWBStoreVisibleThroughL2NotMemory(t *testing.T) {
	r := newRig(t, wbCfg())
	r.issue(0, mem.OpStore, 0x100, 7, 0)
	r.run()
	// The write lives in the (dirty) L2, not memory — the defining
	// difference from write-through VIPER.
	if got := r.sys.Mem.Store().ReadWord(0x100); got != 0 {
		t.Fatalf("memory holds %d before any eviction; write-back should defer", got)
	}
	id := r.issue(1, mem.OpLoad, 0x100, 0, 1)
	r.run()
	if got := r.resp(t, id).Data; got != 7 {
		t.Fatalf("remote CU read %d through the L2, want 7", got)
	}
}

func TestWBEvictionWritesBack(t *testing.T) {
	r := newRig(t, wbCfg())
	// 1KB 2-way L2 with 64B lines: 8 sets; lines 0x0, 0x200, 0x400 all
	// map to set 0.
	r.issue(0, mem.OpStore, 0x000, 1, 0)
	r.run()
	r.issue(0, mem.OpLoad, 0x200, 0, 0)
	r.run()
	r.issue(0, mem.OpLoad, 0x400, 0, 0)
	r.run()
	if got := r.sys.Mem.Store().ReadWord(0x000); got != 1 {
		t.Fatalf("dirty L2 victim not written back: memory holds %d", got)
	}
	ld := r.issue(1, mem.OpLoad, 0x000, 0, 1)
	r.run()
	if got := r.resp(t, ld).Data; got != 1 {
		t.Fatalf("refetched line lost its data: %d", got)
	}
}

func TestWBAtomicsAtL2(t *testing.T) {
	r := newRig(t, wbCfg())
	a1 := r.issue(0, mem.OpAtomic, 0x300, 5, 0)
	r.run()
	a2 := r.issue(1, mem.OpAtomic, 0x300, 5, 1)
	r.run()
	if r.resp(t, a1).Data != 0 || r.resp(t, a2).Data != 5 {
		t.Fatalf("atomic olds %d,%d want 0,5", r.resp(t, a1).Data, r.resp(t, a2).Data)
	}
	// The result lives in the L2 (dirty), not memory.
	if got := r.sys.Mem.Store().ReadWord(0x300); got != 0 {
		t.Fatalf("memory holds %d; WB atomics must not write through", got)
	}
	st := r.sys.Mem.Store()
	r.sys.AuditL2(st) // flushes
	if got := st.ReadWord(0x300); got != 10 {
		t.Fatalf("flushed value %d, want 10", got)
	}
}

func TestWBReleaseDrainsFaster(t *testing.T) {
	measure := func(cfg Config) uint64 {
		r := newRig(t, cfg)
		r.issue(0, mem.OpStore, 0x600, 9, 0)
		r.id++
		rel := &mem.Request{ID: r.id, Op: mem.OpAtomic, Addr: 0x640, Operand: 1, Release: true, ThreadID: 0}
		relID := r.id
		r.sys.Seqs[0].Issue(rel)
		r.run()
		return r.resp(t, relID).Tick
	}
	wb := measure(wbCfg())
	wt := measure(smallCfg())
	if wb >= wt {
		t.Fatalf("WB release (%d ticks) should drain faster than WT (%d): acks return at L2 acceptance", wb, wt)
	}
	t.Logf("release completion: write-back %d ticks, write-through %d ticks", wb, wt)
}

func TestWBWriteAllocate(t *testing.T) {
	r := newRig(t, wbCfg())
	r.issue(0, mem.OpStore, 0x700, 3, 0) // miss: write-allocate path
	r.run()
	id := r.issue(0, mem.OpLoad, 0x700, 0, 0)
	r.run()
	if got := r.resp(t, id).Data; got != 3 {
		t.Fatalf("write-allocated byte lost: %d", got)
	}
	if r.col.Matrix("GPU-L2WB").Hits[TCCWBStateI][TCCWrVicBlk] == 0 {
		t.Fatal("[I,WrVicBlk] write-allocate not recorded")
	}
	if r.col.Matrix("GPU-L2WB").Hits[TCCWBStateIV][TCCData] == 0 {
		t.Fatal("[IV,Data] fill not recorded")
	}
}
