package viper

import (
	"testing"

	"drftest/internal/mem"
	"drftest/internal/rng"
)

// TestPayloadAliasingProperty drives randomized traffic through the
// full stack — stores that share wt-buffer lines with in-flight
// messages, loads that move fill handles from memory to L1, atomics,
// false sharing across CUs — with payload epoch checking armed at
// every message delivery (msgs.checkPayload). Any line recycled while
// a message still references it panics there, so a clean run is the
// property: no handle is ever used after release. At quiescence every
// reference must be back in the pool (AuditLive(0)).
func TestPayloadAliasingProperty(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		cfg := smallCfg()
		r := newRig(t, cfg)
		r.sys.pool.lines.EnableTracking()
		rnd := rng.New(seed, 0xa11a5)
		// Narrow range: heavy same-line contention, write merging and
		// COW splits in the wt buffers.
		for i := 0; i < 400; i++ {
			cu := rnd.Intn(cfg.NumCUs)
			addr := mem.Addr(rnd.Intn(16) * 4)
			switch rnd.Intn(4) {
			case 0:
				r.issue(cu, mem.OpLoad, addr, 0, cu)
			case 1, 2:
				r.issue(cu, mem.OpStore, addr, uint32(i), cu)
			default:
				// Atomics on a disjoint word keep the sync/data class
				// separation the protocol expects.
				r.issue(cu, mem.OpAtomic, 0x200, 1, cu)
			}
			if rnd.Intn(3) == 0 {
				r.run() // interleave drains with bursts
			}
		}
		r.run()
		// All in-flight payload references must have unwound.
		r.sys.pool.lines.AuditLive(0)
	}
}

// TestPayloadSteadyStateZeroAlloc pins the zero-copy claim at the
// system level: once the line pool is warm, a store+load round trip
// through TCP, TCC and the memory controller allocates no payload
// buffers (pool alloc counter frozen).
func TestPayloadSteadyStateZeroAlloc(t *testing.T) {
	cfg := smallCfg()
	r := newRig(t, cfg)
	// Warm up: touch the working set once.
	for i := 0; i < 32; i++ {
		r.issue(0, mem.OpStore, mem.Addr(i%8*4), uint32(i), 0)
		r.issue(1, mem.OpLoad, mem.Addr(i%8*4), 0, 1)
		r.run()
	}
	_, warm := r.sys.pool.lines.Stats()
	for i := 0; i < 200; i++ {
		r.issue(0, mem.OpStore, mem.Addr(i%8*4), uint32(i), 0)
		r.issue(1, mem.OpLoad, mem.Addr(i%8*4), 0, 1)
		r.run()
	}
	_, after := r.sys.pool.lines.Stats()
	if after != warm {
		t.Fatalf("steady state allocated %d payload lines", after-warm)
	}
}
