package viper

import (
	"testing"

	"drftest/internal/mem"
)

// The tests below pin the L1 corner transitions the paper names as the
// hard-to-reach ones ("store hits on a pending atomic operation",
// replacement of atomic reservations) with exact scenarios.

// TestStoreStallsOnPendingAtomic: [A, StoreThrough] — a store to a
// line mid-atomic stalls and completes after the atomic.
func TestStoreStallsOnPendingAtomic(t *testing.T) {
	r := newRig(t, smallCfg())
	at := r.issue(0, mem.OpAtomic, 0xA00, 1, 0)
	st := r.issue(0, mem.OpStore, 0xA04, 9, 1) // same line, other word
	r.run()
	if r.resp(t, at).Data != 0 {
		t.Fatal("atomic old value wrong")
	}
	r.resp(t, st)
	if got := r.sys.Mem.Store().ReadWord(0xA04); got != 9 {
		t.Fatalf("stalled store lost: memory holds %d", got)
	}
	m := r.col.Matrix("GPU-L1")
	if m.Hits[TCPStateA][TCPStoreThrough] == 0 {
		t.Fatal("[A,StoreThrough] stall not recorded")
	}
}

// TestWriteAckArrivesDuringAtomic: [A, TCC_AckWB] — a write-through
// acked while a later atomic holds the same line in A.
func TestWriteAckArrivesDuringAtomic(t *testing.T) {
	r := newRig(t, smallCfg())
	st := r.issue(0, mem.OpStore, 0xB00, 5, 0)
	at := r.issue(0, mem.OpAtomic, 0xB04, 1, 1) // same line: A before the WB ack returns
	r.run()
	r.resp(t, st)
	r.resp(t, at)
	if r.col.Matrix("GPU-L1").Hits[TCPStateA][TCPTCCAckWB] == 0 {
		t.Fatal("[A,TCC_AckWB] not recorded")
	}
}

// TestAtomicReservationSurvivesReplacement: [A, Repl] — displacing an
// atomic's reservation entry must not lose the transaction.
func TestAtomicReservationSurvivesReplacement(t *testing.T) {
	r := newRig(t, smallCfg()) // 256B 2-way L1: 2 sets, stride 128
	// The loads' memory reads queue ahead of the atomic at the FIFO
	// memory controller, so their fills install — and displace the
	// atomic's reservation — while the atomic is still in flight.
	l1 := r.issue(0, mem.OpLoad, 0x080, 0, 1)
	l2 := r.issue(0, mem.OpLoad, 0x100, 0, 2)
	at := r.issue(0, mem.OpAtomic, 0x000, 3, 0)
	r.run()
	if r.resp(t, at).Data != 0 {
		t.Fatal("displaced atomic returned wrong old value")
	}
	r.resp(t, l1)
	r.resp(t, l2)
	if got := r.sys.Mem.Store().ReadWord(0x000); got != 3 {
		t.Fatalf("displaced atomic never performed: memory holds %d", got)
	}
	if r.col.Matrix("GPU-L1").Hits[TCPStateA][TCPRepl] == 0 {
		t.Fatal("[A,Repl] not recorded")
	}
}

// TestAcquireKeepsPendingAtomic: [A, Evict] — a flash invalidation
// while another thread's atomic is in flight keeps the reservation.
func TestAcquireKeepsPendingAtomic(t *testing.T) {
	r := newRig(t, smallCfg())
	// The acquire queues ahead of the atomic at the FIFO memory, so its
	// flash invalidation runs while the atomic's reservation is in A.
	r.id++
	acq := &mem.Request{ID: r.id, Op: mem.OpAtomic, Addr: 0xD00, Operand: 1, Acquire: true, ThreadID: 1}
	r.sys.Seqs[0].Issue(acq)
	at := r.issue(0, mem.OpAtomic, 0xC00, 2, 0)
	r.run()
	if r.resp(t, at).Data != 0 {
		t.Fatal("atomic corrupted by concurrent flash invalidation")
	}
	if got := r.sys.Mem.Store().ReadWord(0xC00); got != 2 {
		t.Fatalf("atomic lost: memory holds %d", got)
	}
	if r.col.Matrix("GPU-L1").Hits[TCPStateA][TCPEvict] == 0 {
		t.Fatal("[A,Evict] keep-pending not recorded")
	}
}

// TestCoalescedLoads: two loads to one line produce one RdBlk and both
// complete from the single fill.
func TestCoalescedLoads(t *testing.T) {
	r := newRig(t, smallCfg())
	r.sys.Mem.Store().WriteWord(0xE00, 11)
	r.sys.Mem.Store().WriteWord(0xE04, 22)
	a := r.issue(0, mem.OpLoad, 0xE00, 0, 0)
	b := r.issue(0, mem.OpLoad, 0xE04, 0, 1)
	r.run()
	if r.resp(t, a).Data != 11 || r.resp(t, b).Data != 22 {
		t.Fatal("coalesced loads returned wrong values")
	}
	if got := r.sys.TCC.Stats()["rdblk"]; got != 1 {
		t.Fatalf("expected 1 RdBlk for coalesced loads, TCC saw %d", got)
	}
}

// TestAtomicRecycledBehindLoadMiss: an atomic arriving while the line
// has coalesced load misses is recycled (resource hazard) and still
// completes correctly after the fill.
func TestAtomicRecycledBehindLoadMiss(t *testing.T) {
	r := newRig(t, smallCfg())
	ld := r.issue(0, mem.OpLoad, 0xF00, 0, 0)
	at := r.issue(0, mem.OpAtomic, 0xF04, 7, 1) // same line while fill pending
	r.run()
	r.resp(t, ld)
	if r.resp(t, at).Data != 0 {
		t.Fatal("recycled atomic returned wrong old value")
	}
	if got := r.sys.Mem.Store().ReadWord(0xF04); got != 7 {
		t.Fatalf("recycled atomic never performed: %d", got)
	}
}
