package viper

import (
	"encoding/binary"
	"fmt"

	"drftest/internal/cache"
	"drftest/internal/mem"
	"drftest/internal/network"
	"drftest/internal/protocol"
	"drftest/internal/sim"
)

// tcpTBE tracks one line's in-flight transaction at an L1.
type tcpTBE struct {
	line   mem.Addr
	loads  []*mem.Request // coalesced load misses awaiting fill
	atomic *mem.Request   // outstanding atomic, nil if none
	entry  *cache.Line    // reservation entry for the atomic; nil after Repl
}

// TCP is one compute unit's L1 data cache controller (VIPER's "TCP").
// It is write-through and write-no-allocate; atomics bypass it to the
// L2's ordering point, reserving the line in state A while in flight.
type TCP struct {
	k       *sim.Kernel
	id      int
	machine *protocol.Machine
	array   *cache.Array
	toTCC   []*network.Link // one ordered link per L2 slice
	sliceOf func(mem.Addr) l2ctrl
	seq     *Sequencer
	pool    *msgPool

	tbes map[mem.Addr]*tcpTBE
	// tbeFree recycles completed TBEs (and their coalesced-load
	// slices), so the steady-state miss path allocates nothing.
	tbeFree []*tcpTBE
	// sendFns holds one prebound delivery handler per L2 slice for the
	// allocation-free Link.SendMsg path, built on first use (the
	// slice→L2 mapping is fixed for the system's lifetime).
	sendFns []func(any)
	// stalled holds core requests whose (state, event) cell is Stall or
	// that hit the load-TBE/atomic resource hazard; they are retried in
	// arrival order when the line's transaction completes.
	stalled map[mem.Addr][]*mem.Request
	// wt accumulates the bytes of this CU's in-flight write-throughs
	// per line. A fill merges them over the returned data so a thread
	// always observes its own (and its CU's) program-order-earlier
	// stores even when the fill was read from memory before the
	// write-through landed — the per-byte-mask behaviour of real VIPER.
	wt map[mem.Addr]*wtBuf
	// wtFree recycles wtBuf headers (the line payloads they reference
	// recycle through the line pool independently).
	wtFree []*wtBuf

	// stats
	loads, loadHits, stores, atomics, stalls uint64
}

func newTCP(k *sim.Kernel, id int, spec *protocol.Spec, rec protocol.Recorder, onFault func(*protocol.FaultError), l1 cache.Config, toTCC []*network.Link, sliceOf func(mem.Addr) l2ctrl, pool *msgPool) *TCP {
	m := protocol.NewMachine(spec, rec)
	m.OnFault = onFault
	return &TCP{
		k:       k,
		id:      id,
		machine: m,
		array:   cache.NewArray(l1),
		toTCC:   toTCC,
		sliceOf: sliceOf,
		pool:    pool,
		tbes:    make(map[mem.Addr]*tcpTBE),
		stalled: make(map[mem.Addr][]*mem.Request),
		wt:      make(map[mem.Addr]*wtBuf),
	}
}

// reset returns the controller to its just-built state: array
// invalidated, transaction and stall state dropped, write-through
// accumulation buffers recycled into the pool, stats zeroed. In-flight
// TBEs and stalled requests are simply dropped — the kernel reset has
// already dropped the events that would have completed them.
func (t *TCP) reset() {
	t.array.Reset()
	for line, tbe := range t.tbes {
		tbe.loads = tbe.loads[:0]
		tbe.atomic, tbe.entry = nil, nil
		t.tbeFree = append(t.tbeFree, tbe)
		delete(t.tbes, line)
	}
	clear(t.stalled)
	for line, buf := range t.wt {
		// Drop the line reference without releasing: the owning pool's
		// Reset force-reclaims every line, so a release here would
		// double-park lines the in-flight messages also referenced.
		buf.line = nil
		t.wtFree = append(t.wtFree, buf)
		delete(t.wt, line)
	}
	t.loads, t.loadHits, t.stores, t.atomics, t.stalls = 0, 0, 0, 0, 0
	for _, l := range t.toTCC {
		l.Reset()
	}
}

// wtBuf holds the merged bytes of a line's in-flight write-throughs as
// a borrowed line handle. The first store shares its payload line with
// the WrVicBlk message it sends (one line, two references); later
// stores merge through Writable, which copies only if that first
// message is still in flight.
type wtBuf struct {
	line  *mem.Line
	count int
}

func (t *TCP) getWTBuf() *wtBuf {
	if n := len(t.wtFree); n > 0 {
		b := t.wtFree[n-1]
		t.wtFree[n-1] = nil
		t.wtFree = t.wtFree[:n-1]
		return b
	}
	return &wtBuf{}
}

func (t *TCP) lineSize() int { return t.array.Config().LineSize }

func (t *TCP) lineOf(a mem.Addr) mem.Addr { return mem.LineAddr(a, t.lineSize()) }

// state derives the protocol state of a line: A while an atomic is in
// flight (whether or not its reservation entry survived replacement),
// V when a valid copy is cached, I otherwise.
func (t *TCP) state(line mem.Addr) int {
	if tbe, ok := t.tbes[line]; ok && tbe.atomic != nil {
		return TCPStateA
	}
	if e := t.array.Peek(line); e != nil && e.State == TCPStateV {
		return TCPStateV
	}
	return TCPStateI
}

func (t *TCP) tbe(line mem.Addr) *tcpTBE {
	tbe, ok := t.tbes[line]
	if !ok {
		if n := len(t.tbeFree); n > 0 {
			tbe = t.tbeFree[n-1]
			t.tbeFree = t.tbeFree[:n-1]
			*tbe = tcpTBE{line: line, loads: tbe.loads[:0]}
		} else {
			tbe = &tcpTBE{line: line}
		}
		t.tbes[line] = tbe
	}
	return tbe
}

// CoreRequest processes one request from the sequencer.
func (t *TCP) CoreRequest(req *mem.Request) {
	line := t.lineOf(req.Addr)

	// Resource hazard (not a protocol stall): an atomic cannot start
	// while the line has coalesced load misses in flight, because the
	// fill response would then arrive in state A and be misread as the
	// atomic's completion. Ruby handles this by recycling the message.
	if req.Op == mem.OpAtomic {
		if tbe, ok := t.tbes[line]; ok && len(tbe.loads) > 0 {
			t.stall(line, req)
			return
		}
	}

	st := t.state(line)
	var ev int
	switch req.Op {
	case mem.OpLoad:
		ev = TCPLoad
	case mem.OpStore:
		ev = TCPStoreThrough
	case mem.OpAtomic:
		ev = TCPAtomic
	default:
		panic(fmt.Sprintf("viper: unknown op %v", req.Op))
	}

	cell := t.machine.Fire(st, ev)
	switch cell.Kind {
	case protocol.Stall:
		t.stall(line, req)
		return
	case protocol.Undefined:
		return
	}

	switch req.Op {
	case mem.OpLoad:
		t.loads++
		if st == TCPStateV {
			t.loadHits++
			e := t.array.Lookup(req.Addr)
			t.seq.respond(req, t.readWord(e, req.Addr))
			return
		}
		tbe := t.tbe(line)
		tbe.loads = append(tbe.loads, req)
		if len(tbe.loads) == 1 {
			m := t.pool.getTCPMsg()
			m.kind, m.cu, m.line, m.req = msgRdBlk, t.id, line, req
			t.send(m)
		}

	case mem.OpStore:
		t.stores++
		wl := t.wordWrite(req)
		if st == TCPStateV {
			t.array.Lookup(req.Addr).WriteMasked(wl.Data, wl.Mask())
		}
		if buf, ok := t.wt[line]; !ok {
			// First in-flight store to this line: the accumulation
			// buffer IS the message payload (shared, two references).
			buf = t.getWTBuf()
			buf.line, buf.count = wl.Retain(), 1
			t.wt[line] = buf
		} else {
			// Merge the store into the accumulated bytes. Writable
			// copies only if an earlier message still shares the line —
			// in-flight payloads must not see later stores.
			bl := buf.line.Writable()
			buf.line = bl
			bm, wm := bl.Mask(), wl.Mask()
			for i, d := range wl.Data {
				if wm[i] {
					bl.Data[i] = d
					bm[i] = true
				}
			}
			buf.count++
		}
		m := t.pool.getTCPMsg()
		m.kind, m.cu, m.line, m.req = msgWrVicBlk, t.id, line, req
		m.setPayload(wl)
		t.send(m)
		t.seq.noteWriteThrough(req)
		// Plain stores complete at L1 acceptance; global visibility is
		// deferred to the TCC_AckWB — the relaxed-model window the
		// tester exists to stress.
		t.seq.respond(req, req.Data)

	case mem.OpAtomic:
		t.atomics++
		if st == TCPStateV {
			// Read-invalidate: the atomic is performed globally, so the
			// local copy would go stale.
			t.array.Invalidate(line)
		}
		tbe := t.tbe(line)
		tbe.atomic = req
		tbe.entry = t.installReservation(line)
		m := t.pool.getTCPMsg()
		m.kind, m.cu, m.line, m.req = msgAtomic, t.id, line, req
		t.send(m)
	}
}

// installReservation claims a cache entry in state A for an in-flight
// atomic, firing Repl on whichever valid line it displaces.
func (t *TCP) installReservation(line mem.Addr) *cache.Line {
	victim := t.array.Victim(line, nil)
	t.evictVictim(victim)
	return t.array.Install(victim, line, TCPStateA)
}

// evictVictim fires the Repl event for a victim that currently holds a
// valid line.
func (t *TCP) evictVictim(victim *cache.Line) {
	if victim == nil || !victim.Valid {
		return
	}
	t.machine.Fire(victim.State, TCPRepl)
	if victim.State == TCPStateA {
		// The displaced line's atomic stays in flight; the TBE simply
		// loses its reservation entry.
		if tbe, ok := t.tbes[victim.Tag]; ok {
			tbe.entry = nil
		}
	}
	victim.Valid = false
}

// FromTCC processes one response message from the L2.
func (t *TCP) FromTCC(msg *tccMsg) {
	line := msg.line
	st := t.state(line)
	switch msg.kind {
	case ackFill:
		cell := t.machine.Fire(st, TCPTCCAck)
		if cell.Kind != protocol.Defined {
			return
		}
		tbe := t.tbes[line]
		if tbe == nil || len(tbe.loads) == 0 {
			panic(fmt.Sprintf("viper: TCP%d fill for %#x without waiting loads", t.id, uint64(line)))
		}
		victim := t.array.Victim(line, nil)
		t.evictVictim(victim)
		msg.checkPayload()
		e := t.array.Install(victim, line, TCPStateV)
		copy(e.Data, msg.payload.Data)
		if buf, ok := t.wt[line]; ok {
			e.WriteMasked(buf.line.Data, buf.line.Mask())
		}
		// Keep the backing array with the TBE (responses are queued, not
		// delivered inline, so nothing appends to it before the loop ends).
		loads := tbe.loads
		tbe.loads = tbe.loads[:0]
		t.dropTBE(tbe)
		for _, ld := range loads {
			t.seq.respond(ld, t.readWord(e, ld.Addr))
		}
		t.wake(line)

	case ackAtomic:
		cell := t.machine.Fire(st, TCPTCCAck)
		if cell.Kind != protocol.Defined {
			return
		}
		tbe := t.tbes[line]
		if tbe == nil || tbe.atomic == nil {
			panic(fmt.Sprintf("viper: TCP%d atomic ack for %#x without TBE", t.id, uint64(line)))
		}
		req := tbe.atomic
		tbe.atomic = nil
		if tbe.entry != nil {
			tbe.entry.Valid = false // A → I: atomics do not cache data
			tbe.entry = nil
		}
		t.dropTBE(tbe)
		t.seq.respond(req, msg.old)
		t.wake(line)

	case ackWB:
		t.machine.Fire(st, TCPTCCAckWB)
		if buf, ok := t.wt[line]; ok {
			buf.count--
			if buf.count == 0 {
				buf.line.Release()
				buf.line = nil
				delete(t.wt, line)
				t.wtFree = append(t.wtFree, buf)
			}
		}
		t.seq.writeCompleted(msg.req)
	}
}

// FlashInvalidate implements the load-acquire Evict semantic: every
// valid line is invalidated; lines reserved by in-flight atomics are
// kept (they hold no readable data).
func (t *TCP) FlashInvalidate() {
	t.array.FlashInvalidate(func(l *cache.Line) bool {
		t.machine.Fire(l.State, TCPEvict)
		return l.State != TCPStateA
	})
}

func (t *TCP) stall(line mem.Addr, req *mem.Request) {
	t.stalls++
	t.stalled[line] = append(t.stalled[line], req)
}

// wake retries requests stalled on line, in arrival order.
func (t *TCP) wake(line mem.Addr) {
	queue := t.stalled[line]
	if len(queue) == 0 {
		return
	}
	delete(t.stalled, line)
	for _, req := range queue {
		t.CoreRequest(req)
	}
}

// dropTBE retires a TBE once its transaction fully completes. Safe to
// recycle immediately: responses are delivered through the sequencer's
// scheduled queue, so no caller holds the pointer past this dispatch.
func (t *TCP) dropTBE(tbe *tcpTBE) {
	if tbe.atomic == nil && len(tbe.loads) == 0 {
		delete(t.tbes, tbe.line)
		tbe.entry = nil
		t.tbeFree = append(t.tbeFree, tbe)
	}
}

func (t *TCP) send(msg *tcpMsg) {
	l2 := t.sliceOf(msg.line)
	si := 0
	if len(t.toTCC) > 1 {
		si = l2.slice()
	}
	if t.sendFns == nil {
		t.sendFns = make([]func(any), len(t.toTCC))
	}
	fn := t.sendFns[si]
	if fn == nil {
		fn = func(a any) { l2.FromTCP(a.(*tcpMsg)) }
		t.sendFns[si] = fn
	}
	t.toTCC[si].SendMsgLine(fn, msg, uint64(msg.line))
}

func (t *TCP) readWord(e *cache.Line, a mem.Addr) uint32 {
	off := mem.LineOffset(a, t.lineSize())
	return binary.LittleEndian.Uint32(e.Data[off : off+mem.WordSize])
}

// wordWrite builds the masked line payload for a word store: a pooled
// line whose mask covers exactly the stored word. Unmasked bytes are
// recycled garbage by design — every consumer merges under the mask.
// The caller owns the returned reference and hands it to the WrVicBlk
// message (sharing it with the write-through buffer when it is the
// line's first in-flight store).
func (t *TCP) wordWrite(req *mem.Request) *mem.Line {
	l := t.pool.lines.GetMasked(t.lineSize())
	off := mem.LineOffset(req.Addr, t.lineSize())
	binary.LittleEndian.PutUint32(l.Data[off:off+mem.WordSize], req.Data)
	mask := l.Mask()
	for i := 0; i < mem.WordSize; i++ {
		mask[off+i] = true
	}
	return l
}

// Stats returns the controller's activity counters.
func (t *TCP) Stats() (loads, loadHits, stores, atomics, stalls uint64) {
	return t.loads, t.loadHits, t.stores, t.atomics, t.stalls
}

// tcpSnapshot captures one L1 controller. TBEs are saved by value and
// rebuilt as fresh structs on restore — nothing captures a tcpTBE
// pointer across events, so identity is free to change. Write-through
// buffers keep their line-handle identities (contents and refcounts
// restored by the line-pool snapshot); stalled requests reference the
// tester's slab.
type tcpSnapshot struct {
	array   *cache.ArraySnapshot
	tbes    map[mem.Addr]tcpTBE
	stalled map[mem.Addr][]*mem.Request
	wt      map[mem.Addr]wtBuf

	loads, loadHits, stores, atomics, stalls uint64

	links []*network.LinkSnapshot
}

func (t *TCP) snapshot() *tcpSnapshot {
	s := &tcpSnapshot{
		array:   t.array.Snapshot(),
		tbes:    make(map[mem.Addr]tcpTBE, len(t.tbes)),
		stalled: make(map[mem.Addr][]*mem.Request, len(t.stalled)),
		wt:      make(map[mem.Addr]wtBuf, len(t.wt)),
		loads:   t.loads, loadHits: t.loadHits, stores: t.stores,
		atomics: t.atomics, stalls: t.stalls,
		links: make([]*network.LinkSnapshot, len(t.toTCC)),
	}
	for line, tbe := range t.tbes {
		save := *tbe
		save.loads = append([]*mem.Request(nil), tbe.loads...)
		s.tbes[line] = save
	}
	for line, q := range t.stalled {
		s.stalled[line] = append([]*mem.Request(nil), q...)
	}
	for line, buf := range t.wt {
		s.wt[line] = *buf
	}
	for i, l := range t.toTCC {
		s.links[i] = l.Snapshot()
	}
	return s
}

func (t *TCP) restore(s *tcpSnapshot) {
	t.array.Restore(s.array)
	for line, tbe := range t.tbes {
		tbe.loads = tbe.loads[:0]
		tbe.atomic, tbe.entry = nil, nil
		t.tbeFree = append(t.tbeFree, tbe)
		delete(t.tbes, line)
	}
	for line, save := range s.tbes {
		tbe := t.tbe(line)
		tbe.loads = append(tbe.loads[:0], save.loads...)
		tbe.atomic, tbe.entry = save.atomic, save.entry
	}
	clear(t.stalled)
	for line, q := range s.stalled {
		t.stalled[line] = append([]*mem.Request(nil), q...)
	}
	for line, buf := range t.wt {
		buf.line = nil
		t.wtFree = append(t.wtFree, buf)
		delete(t.wt, line)
	}
	for line, save := range s.wt {
		buf := t.getWTBuf()
		*buf = save
		t.wt[line] = buf
	}
	t.loads, t.loadHits, t.stores, t.atomics, t.stalls = s.loads, s.loadHits, s.stores, s.atomics, s.stalls
	for i, l := range t.toTCC {
		l.Restore(s.links[i])
	}
}
