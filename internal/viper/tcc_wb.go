package viper

import (
	"encoding/binary"
	"fmt"

	"drftest/internal/cache"
	"drftest/internal/mem"
	"drftest/internal/network"
	"drftest/internal/protocol"
	"drftest/internal/sim"
)

// wbTBE tracks one line's in-flight fill at the write-back L2.
type wbTBE struct {
	line mem.Addr
	// reader is the CU awaiting a fill response, or -1 when the fill
	// was started by a write-allocate.
	reader int
	// atomic, when non-nil, is performed on the line once it arrives.
	atomic   *mem.Request
	atomicCU int
	// pending buffers write-through bytes accepted while the fill was
	// in flight (write-allocate); they merge over the arriving data.
	// The TBE owns one reference to the masked line.
	pending *mem.Line
}

// TCCWB is the write-back L2 controller of the VIPER-WB variant. It
// presents the same surface to the TCPs as the write-through TCC; the
// sequencer, L1 and tester are untouched — the paper's "minimal
// extensions" claim made concrete.
type TCCWB struct {
	k          *sim.Kernel
	sliceIndex int
	machine    *protocol.Machine
	array      *cache.Array
	backend    Backend
	tcps       []*TCP
	toTCP      *network.Crossbar
	bugs       BugSet
	pool       *msgPool

	tbes    map[mem.Addr]*wbTBE
	stalled map[mem.Addr][]*tcpMsg
	// vicWBs counts in-flight eviction write-backs per line (probes do
	// not exist in this GPU-only variant, so no data needs retention).
	vicWBs map[mem.Addr]int

	// sendFns holds one prebound response handler per CU for the
	// allocation-free Link.SendMsg path, built on first use.
	sendFns []func(any)

	// Shared backend continuations; ctx is the boxed line address (not
	// the TBE), so completions re-look-up state by line and snapshots
	// stay free to rebuild TBE structs.
	fetchDoneFn func(data *mem.Line, ctx any)
	vicWBAckFn  func(ctx any)

	rdBlks, wrVicBlks, atomicsSeen, fills, stalls, evictWBs uint64
}

func newTCCWB(k *sim.Kernel, spec *protocol.Spec, rec protocol.Recorder, onFault func(*protocol.FaultError), l2 cache.Config, backend Backend, toTCP *network.Crossbar, bugs BugSet, pool *msgPool) *TCCWB {
	m := protocol.NewMachine(spec, rec)
	m.OnFault = onFault
	c := &TCCWB{
		k:       k,
		machine: m,
		array:   cache.NewArray(l2),
		backend: backend,
		toTCP:   toTCP,
		bugs:    bugs,
		pool:    pool,
		tbes:    make(map[mem.Addr]*wbTBE),
		stalled: make(map[mem.Addr][]*tcpMsg),
		vicWBs:  make(map[mem.Addr]int),
	}
	c.fetchDoneFn = func(data *mem.Line, ctx any) { c.onData(ctx.(mem.Addr), data) }
	c.vicWBAckFn = func(ctx any) {
		vic := ctx.(mem.Addr)
		c.machine.Fire(c.state(vic), TCCWBAck)
		c.vicWBs[vic]--
		if c.vicWBs[vic] == 0 {
			delete(c.vicWBs, vic)
		}
	}
	return c
}

// reset returns the controller to its just-built state. The WB variant
// allocates TBEs per transaction (no pooling), so dropping the map
// releases them to GC; their pending lines are force-reclaimed by the
// system's pool reset. The kernel reset has already dropped the events
// that referenced them.
func (c *TCCWB) reset() {
	c.array.Reset()
	clear(c.tbes)
	for line, msgs := range c.stalled {
		for _, m := range msgs {
			c.pool.putTCPMsg(m)
		}
		delete(c.stalled, line)
	}
	clear(c.vicWBs)
	c.rdBlks, c.wrVicBlks, c.atomicsSeen, c.fills, c.stalls, c.evictWBs = 0, 0, 0, 0, 0, 0
	c.toTCP.Reset()
}

func (c *TCCWB) lineSize() int { return c.array.Config().LineSize }

func (c *TCCWB) slice() int { return c.sliceIndex }

func (c *TCCWB) attachTCP(t *TCP) { c.tcps = append(c.tcps, t) }

func (c *TCCWB) state(line mem.Addr) int {
	if tbe, ok := c.tbes[line]; ok {
		if tbe.atomic != nil {
			return TCCWBStateA
		}
		return TCCWBStateIV
	}
	if e := c.array.Peek(line); e != nil {
		return e.State
	}
	return TCCWBStateI
}

// FromTCP processes one request from an L1.
func (c *TCCWB) FromTCP(msg *tcpMsg) {
	line := msg.line
	st := c.state(line)

	var ev int
	switch msg.kind {
	case msgRdBlk:
		ev = TCCRdBlk
	case msgWrVicBlk:
		ev = TCCWrVicBlk
	case msgAtomic:
		ev = TCCAtomic
	}

	cell := c.machine.Fire(st, ev)
	switch cell.Kind {
	case protocol.Stall:
		c.stalls++
		c.stalled[line] = append(c.stalled[line], msg)
		return
	case protocol.Undefined:
		c.pool.putTCPMsg(msg)
		return
	}

	switch msg.kind {
	case msgRdBlk:
		c.rdBlks++
		if st == TCCWBStateV || st == TCCWBStateD {
			c.sendFill(msg.cu, line, c.array.Lookup(line).Data)
			c.pool.putTCPMsg(msg)
			return
		}
		c.tbes[line] = &wbTBE{line: line, reader: msg.cu}
		c.fetch(line)
		c.pool.putTCPMsg(msg)

	case msgWrVicBlk:
		c.wrVicBlks++
		msg.checkPayload()
		switch st {
		case TCCWBStateV, TCCWBStateD:
			e := c.array.Lookup(line)
			e.WriteMasked(msg.payload.Data, msg.payload.Mask())
			e.State = TCCWBStateD
		default: // I: write-allocate — buffer bytes, fetch the line
			tbe := &wbTBE{line: line, reader: -1,
				pending: c.pool.lines.GetMasked(c.lineSize())}
			mergeMasked(tbe.pending.Data, tbe.pending.Mask(), msg.payload.Data, msg.payload.Mask())
			c.tbes[line] = tbe
			c.fetch(line)
		}
		// The L2 is the visibility point: the write is globally
		// performed on acceptance.
		cu, req := msg.cu, msg.req
		c.pool.putTCPMsg(msg) // releases the payload reference
		ack := c.pool.getTCCMsg()
		ack.kind, ack.line, ack.req = ackWB, line, req
		c.send(cu, ack)

	case msgAtomic:
		c.atomicsSeen++
		if st == TCCWBStateV || st == TCCWBStateD {
			c.performAtomic(line, c.array.Lookup(line), msg.req, msg.cu)
			c.pool.putTCPMsg(msg)
			return
		}
		c.tbes[line] = &wbTBE{line: line, reader: -1, atomic: msg.req, atomicCU: msg.cu}
		c.fetch(line)
		c.pool.putTCPMsg(msg)
	}
}

func (c *TCCWB) fetch(line mem.Addr) {
	c.backend.FetchLine(line, c.lineSize(), c.fetchDoneFn, line)
}

// performAtomic executes a fetch-add on a cached line, leaving it
// dirty. With the NonAtomicRMW bug injected, the write lands after a
// window during which another atomic can read the same old value.
func (c *TCCWB) performAtomic(line mem.Addr, e *cache.Line, req *mem.Request, cu int) {
	off := mem.LineOffset(req.Addr, c.lineSize())
	old := binary.LittleEndian.Uint32(e.Data[off : off+mem.WordSize])
	c.sendAtomicAck(cu, line, req, old)
	write := func() {
		if cur := c.array.Peek(line); cur != nil && cur == e {
			var b [mem.WordSize]byte
			binary.LittleEndian.PutUint32(b[:], old+req.Operand)
			for i := range b {
				e.Data[off+i] = b[i]
				e.Dirty[off+i] = true
			}
			e.State = TCCWBStateD
		}
	}
	if c.bugs.NonAtomicRMW {
		c.k.Schedule(sim.Tick(c.bugs.nonAtomicWindow()), write)
		return
	}
	write()
}

func (c *TCCWB) onData(line mem.Addr, data *mem.Line) {
	st := c.state(line)
	if cell := c.machine.Fire(st, TCCData); cell.Kind != protocol.Defined {
		data.Release()
		return
	}
	tbe := c.tbes[line]
	if tbe == nil {
		panic(fmt.Sprintf("viper: TCCWB data for %#x without TBE", uint64(line)))
	}
	e := c.install(line)
	copy(e.Data, data.Data)
	data.Release()
	e.State = TCCWBStateV
	if tbe.pending != nil {
		e.WriteMasked(tbe.pending.Data, tbe.pending.Mask())
		tbe.pending.Release()
		tbe.pending = nil
		e.State = TCCWBStateD
	}
	delete(c.tbes, line)
	c.fills++
	if tbe.atomic != nil {
		c.performAtomic(line, e, tbe.atomic, tbe.atomicCU)
	} else if tbe.reader >= 0 {
		c.sendFill(tbe.reader, line, e.Data)
	}
	c.wake(line)
}

// install claims a way for line, writing dirty victims back to memory.
func (c *TCCWB) install(line mem.Addr) *cache.Line {
	victim := c.array.Victim(line, nil)
	if victim != nil && victim.Valid {
		c.machine.Fire(victim.State, TCCL2Repl)
		if victim.State == TCCWBStateD {
			c.evictWBs++
			vicLine := victim.Tag
			wl := c.pool.lines.Get(len(victim.Data))
			copy(wl.Data, victim.Data)
			c.vicWBs[vicLine]++
			c.backend.WriteLine(vicLine, wl, c.vicWBAckFn, vicLine)
		}
		victim.Valid = false
	}
	return c.array.Install(victim, line, TCCWBStateV)
}

// ProbeInv must never be called: the write-back variant is GPU-only.
func (c *TCCWB) ProbeInv(line mem.Addr, done func()) {
	panic("viper: VIPER-WB is a GPU-only protocol; it cannot be probed by a directory")
}

// Flush functionally writes every dirty line to the store (end-of-run
// audit support; the simulation is already idle).
func (c *TCCWB) Flush(st *mem.Store) {
	c.array.ForEachValid(func(l *cache.Line) {
		if l.State == TCCWBStateD {
			st.WriteBytes(l.Tag, l.Data, nil)
			l.State = TCCWBStateV
			l.ClearDirty()
		}
	})
}

// AuditAgainstStore compares clean lines against memory (dirty lines
// are legitimately newer; Flush first for a full audit).
func (c *TCCWB) AuditAgainstStore(st *mem.Store) []string {
	var out []string
	buf := make([]byte, c.lineSize())
	c.array.ForEachValid(func(l *cache.Line) {
		if l.State != TCCWBStateV {
			return
		}
		st.ReadBytes(l.Tag, buf)
		for i := range buf {
			if l.Data[i] != buf[i] {
				out = append(out, fmt.Sprintf("L2WB clean line %#x byte %d holds %d, memory holds %d",
					uint64(l.Tag), i, l.Data[i], buf[i]))
				return
			}
		}
	})
	return out
}

func (c *TCCWB) wake(line mem.Addr) {
	queue := c.stalled[line]
	if len(queue) == 0 {
		return
	}
	delete(c.stalled, line)
	for _, m := range queue {
		c.FromTCP(m)
	}
}

// sendFill copies the cache array's bytes into a pooled line (array
// storage mutates under later writes) and ships it by reference.
func (c *TCCWB) sendFill(cu int, line mem.Addr, data []byte) {
	l := c.pool.lines.Get(len(data))
	copy(l.Data, data)
	m := c.pool.getTCCMsg()
	m.kind, m.line = ackFill, line
	m.setPayload(l)
	c.send(cu, m)
}

func (c *TCCWB) sendAtomicAck(cu int, line mem.Addr, req *mem.Request, old uint32) {
	m := c.pool.getTCCMsg()
	m.kind, m.line, m.req, m.old = ackAtomic, line, req, old
	c.send(cu, m)
}

// send delivers msg to a TCP and recycles it (releasing any fill
// payload reference) afterwards: FromTCC never retains the message.
func (c *TCCWB) send(cu int, msg *tccMsg) {
	if c.sendFns == nil {
		c.sendFns = make([]func(any), len(c.tcps))
	}
	fn := c.sendFns[cu]
	if fn == nil {
		fn = func(a any) {
			m := a.(*tccMsg)
			c.tcps[cu].FromTCC(m)
			c.pool.putTCCMsg(m)
		}
		c.sendFns[cu] = fn
	}
	c.toTCP.To(cu).SendMsgLine(fn, msg, uint64(msg.line))
}

// wbSnapshot captures one write-back L2 slice. wbTBEs are never
// captured by reference across events (completions look them up by
// line — backend ctx is the boxed address), so they are saved by value
// and rebuilt as fresh structs; pending lines keep their handle
// identity, contents restored by the line-pool snapshot.
type wbSnapshot struct {
	array   *cache.ArraySnapshot
	tbes    map[mem.Addr]wbTBE
	stalled map[mem.Addr][]*tcpMsg
	vicWBs  map[mem.Addr]int

	rdBlks, wrVicBlks, atomicsSeen, fills, stalls, evictWBs uint64

	xbar *network.CrossbarSnapshot
}

func (c *TCCWB) snapshot() any {
	s := &wbSnapshot{
		array:   c.array.Snapshot(),
		tbes:    make(map[mem.Addr]wbTBE, len(c.tbes)),
		stalled: make(map[mem.Addr][]*tcpMsg, len(c.stalled)),
		vicWBs:  make(map[mem.Addr]int, len(c.vicWBs)),
		rdBlks:  c.rdBlks, wrVicBlks: c.wrVicBlks, atomicsSeen: c.atomicsSeen,
		fills: c.fills, stalls: c.stalls, evictWBs: c.evictWBs,
		xbar: c.toTCP.Snapshot(),
	}
	for line, tbe := range c.tbes {
		s.tbes[line] = *tbe
	}
	for line, q := range c.stalled {
		s.stalled[line] = append([]*tcpMsg(nil), q...)
	}
	for line, n := range c.vicWBs {
		s.vicWBs[line] = n
	}
	return s
}

func (c *TCCWB) restore(snap any) {
	s := snap.(*wbSnapshot)
	c.array.Restore(s.array)
	clear(c.tbes)
	for line, save := range s.tbes {
		tbe := save
		c.tbes[line] = &tbe
	}
	clear(c.stalled)
	for line, q := range s.stalled {
		c.stalled[line] = append([]*tcpMsg(nil), q...)
	}
	clear(c.vicWBs)
	for line, n := range s.vicWBs {
		c.vicWBs[line] = n
	}
	c.rdBlks, c.wrVicBlks, c.atomicsSeen = s.rdBlks, s.wrVicBlks, s.atomicsSeen
	c.fills, c.stalls, c.evictWBs = s.fills, s.stalls, s.evictWBs
	c.toTCP.Restore(s.xbar)
}

// Stats returns the controller's activity counters.
func (c *TCCWB) Stats() map[string]uint64 {
	return map[string]uint64{
		"rdblk":    c.rdBlks,
		"wrvicblk": c.wrVicBlks,
		"atomics":  c.atomicsSeen,
		"fills":    c.fills,
		"stalls":   c.stalls,
		"evictwbs": c.evictWBs,
	}
}

// mergeMasked overlays src bytes under srcMask onto dst/dstMask.
func mergeMasked(dst []byte, dstMask []bool, src []byte, srcMask []bool) {
	for i := range src {
		if srcMask == nil || srcMask[i] {
			dst[i] = src[i]
			dstMask[i] = true
		}
	}
}
