package viper

// BugSet selects deliberately injected protocol-implementation bugs.
// Each reproduces one of the bug classes discussed in the paper's case
// study (§V): the implementation deviates from the transition tables in
// a way only a checking workload can observe.
//
// The zero value is a correct protocol.
type BugSet struct {
	// LostWriteRace makes the TCC mis-serialize two false-sharing
	// write-throughs racing on one cache line: while an earlier write
	// to the line is still outstanding to memory, a second write skips
	// the merge into the TCC's cached copy, leaving the L2 line stale.
	// This is the paper's Table V bug: a read–write inconsistency on
	// one variable caused by two writes to *different* variables in the
	// same line.
	LostWriteRace bool

	// NonAtomicRMW makes the TCC "optimize" atomics that hit in its
	// cache: instead of forwarding to the global ordering point it
	// reads the old value, answers immediately, and performs the write
	// NonAtomicWindow ticks later without serializing the line. Two
	// concurrent atomics can then observe the same old value, which the
	// tester's monotonicity check flags as duplicate returns.
	NonAtomicRMW bool
	// NonAtomicWindow is the read-to-write gap of the buggy fast path
	// (default 50 ticks when NonAtomicRMW is set).
	NonAtomicWindow uint64

	// DropWBAckEvery makes the TCC silently drop every Nth write
	// completion ack (TCC_AckWB). The issuing thread's store-release
	// then never drains, which the tester's forward-progress checker
	// reports as a deadlock. Zero disables the bug.
	DropWBAckEvery uint64

	// StaleAcquire makes the L1 sequencer skip the flash invalidation
	// on load-acquire, so an episode can read data cached before its
	// acquire — a consistency-model bug rather than a transition bug.
	StaleAcquire bool
}

func (b BugSet) nonAtomicWindow() uint64 {
	if b.NonAtomicWindow == 0 {
		return 50
	}
	return b.NonAtomicWindow
}

// Any reports whether any bug is enabled.
func (b BugSet) Any() bool {
	return b.LostWriteRace || b.NonAtomicRMW || b.DropWBAckEvery != 0 || b.StaleAcquire
}
