package viper

import (
	"testing"

	"drftest/internal/audit"
)

// TestSnapshotFieldAudit pins the System's top-level field set so a
// new subsystem cannot silently escape Snapshot/Restore/Reset (see
// package audit). The per-controller structs are deep and evolve
// faster; their snapshot completeness is pinned behaviorally by the
// harness bit-identity tests instead.
func TestSnapshotFieldAudit(t *testing.T) {
	audit.Fields(t, System{}, map[string]string{
		"Kernel":    "config: owning kernel, snapshotted separately",
		"Cfg":       "config: fixed at construction",
		"Seqs":      "state: per-sequencer snapshots",
		"TCPs":      "state: per-L1 snapshots",
		"TCC":       "state: first l2s entry, snapshotted via l2s",
		"TCCs":      "state: aliases l2s entries, snapshotted via l2s",
		"l2s":       "state: per-L2 snapshots through the l2ctrl interface",
		"Mem":       "state: memory-controller snapshot (COW store included)",
		"faults":    "state: Snapshot/Restore copy the slice",
		"jrnd":      "state: jitter PCG copied by value",
		"respXBars": "state: captured within the per-controller link snapshots",
		"pool":      "pool: registries captured only when tracking (EnableCheckpointing)",
	})
}
