// Package viper implements the GPU VIPER cache coherence protocol the
// paper tests: per-CU write-through L1 caches (TCP) beneath a shared L2
// (TCC), with release-consistency synchronization — load-acquire flash-
// invalidates the L1, store-release drains the thread's write-throughs,
// and atomics are performed at the global ordering point.
//
// The protocol is expressed as explicit (state × event) transition
// tables (see package protocol), using exactly the event vocabulary of
// the paper's Tables I and II and the state vocabulary of its Fig. 4:
// I (invalid), V (valid), IV (awaiting fill), A (atomic in flight).
package viper

import "drftest/internal/protocol"

// TCP (GPU L1) states.
const (
	TCPStateI = iota // invalid / not present
	TCPStateV        // valid clean copy
	TCPStateA        // atomic in flight for this line
)

// TCPStates names the L1 states.
var TCPStates = []string{"I", "V", "A"}

// TCP (GPU L1) events — the paper's Table I.
const (
	TCPLoad         = iota // data read request from GPU
	TCPStoreThrough        // data write request from GPU
	TCPAtomic              // data atomic request from GPU
	TCPTCCAck              // data response from GPU L2
	TCPTCCAckWB            // write completion ack from GPU L2
	TCPEvict               // flash invalidation request from GPU
	TCPRepl                // cache replacement request
)

// TCPEvents names the L1 events (Table I).
var TCPEvents = []string{"Load", "StoreThrough", "Atomic", "TCC_Ack", "TCC_AckWB", "Evict", "Repl"}

// TCPEventDescriptions reproduces the paper's Table I.
var TCPEventDescriptions = map[string]string{
	"Load":         "Data read request from GPU",
	"StoreThrough": "Data write request from GPU",
	"Atomic":       "Data atomic request from GPU",
	"TCC_Ack":      "Data response from GPU L2",
	"TCC_AckWB":    "Write completion ack from GPU L2",
	"Evict":        "Flash invalidation request from GPU",
	"Repl":         "Cache replacement request",
}

// NewTCPSpec builds the GPU L1 transition table.
func NewTCPSpec() *protocol.Spec {
	s := protocol.NewSpec("GPU-L1", TCPStates, TCPEvents)

	s.Trans(TCPStateI, TCPLoad, TCPStateI, "miss: send RdBlk")
	s.Trans(TCPStateV, TCPLoad, TCPStateV, "hit")
	s.StallOn(TCPStateA, TCPLoad)

	s.Trans(TCPStateI, TCPStoreThrough, TCPStateI, "write-through, no allocate")
	s.Trans(TCPStateV, TCPStoreThrough, TCPStateV, "write bytes + write-through")
	s.StallOn(TCPStateA, TCPStoreThrough)

	s.Trans(TCPStateI, TCPAtomic, TCPStateA, "send Atomic")
	s.Trans(TCPStateV, TCPAtomic, TCPStateA, "invalidate copy, send Atomic")
	s.StallOn(TCPStateA, TCPAtomic)

	s.Trans(TCPStateI, TCPTCCAck, TCPStateV, "fill")
	// TCC_Ack in V is undefined: a fill can only be outstanding for an
	// invalid line, and atomic responses arrive in A.
	s.Trans(TCPStateA, TCPTCCAck, TCPStateI, "atomic done, return old value")

	s.Trans(TCPStateI, TCPTCCAckWB, TCPStateI, "write complete")
	s.Trans(TCPStateV, TCPTCCAckWB, TCPStateV, "write complete")
	s.Trans(TCPStateA, TCPTCCAckWB, TCPStateA, "write complete")

	// Evict visits only valid entries, so Evict-in-I is undefined.
	s.Trans(TCPStateV, TCPEvict, TCPStateI, "flash invalidate")
	s.Trans(TCPStateA, TCPEvict, TCPStateA, "keep: atomic pending, no local data")

	// Repl selects only valid victims, so Repl-in-I is undefined.
	s.Trans(TCPStateV, TCPRepl, TCPStateI, "evict clean (write-through)")
	s.Trans(TCPStateA, TCPRepl, TCPStateA, "free entry, TBE holds transaction")

	return s
}

// TCC (GPU L2) states.
const (
	TCCStateI  = iota // invalid / not present
	TCCStateV         // valid
	TCCStateIV        // awaiting refill data
	TCCStateA         // atomic access in flight, awaiting completion ack
)

// TCCStates names the L2 states.
var TCCStates = []string{"I", "V", "IV", "A"}

// TCC (GPU L2) events — the paper's Table II.
const (
	TCCRdBlk    = iota // data read request from GPU L1
	TCCWrVicBlk        // data write request from GPU L1
	TCCAtomic          // data atomic request from GPU L1
	TCCAtomicD         // atomic completion ack
	TCCAtomicND        // atomic incompletion ack (retry)
	TCCData            // data response from memory
	TCCL2Repl          // cache replacement
	TCCPrbInv          // invalidation request from other L2
	TCCWBAck           // write completion ack from memory
)

// TCCEvents names the L2 events (Table II).
var TCCEvents = []string{"RdBlk", "WrVicBlk", "Atomic", "AtomicD", "AtomicND", "Data", "L2_Repl", "PrbInv", "WBAck"}

// TCCEventDescriptions reproduces the paper's Table II.
var TCCEventDescriptions = map[string]string{
	"RdBlk":    "Data read request from GPU L1",
	"WrVicBlk": "Data write request from GPU L1",
	"Atomic":   "Data atomic request from GPU L1",
	"AtomicD":  "Atomic completion ACK",
	"AtomicND": "Atomic incompletion ACK",
	"Data":     "Data response from memory",
	"L2_Repl":  "Cache replacement",
	"PrbInv":   "Invalidation request from other L2",
	"WBAck":    "Write completion ACK from memory",
}

// NewTCCSpec builds the GPU L2 transition table.
func NewTCCSpec() *protocol.Spec {
	s := protocol.NewSpec("GPU-L2", TCCStates, TCCEvents)

	s.Trans(TCCStateI, TCCRdBlk, TCCStateIV, "miss: fetch from memory")
	s.Trans(TCCStateV, TCCRdBlk, TCCStateV, "hit: send TCC_Ack")
	s.StallOn(TCCStateIV, TCCRdBlk)
	s.StallOn(TCCStateA, TCCRdBlk)

	s.Trans(TCCStateI, TCCWrVicBlk, TCCStateI, "forward write, no allocate")
	s.Trans(TCCStateV, TCCWrVicBlk, TCCStateV, "merge bytes + forward write")
	s.StallOn(TCCStateIV, TCCWrVicBlk)
	s.StallOn(TCCStateA, TCCWrVicBlk)

	s.Trans(TCCStateI, TCCAtomic, TCCStateA, "send atomic to ordering point")
	s.Trans(TCCStateV, TCCAtomic, TCCStateA, "invalidate copy, send atomic")
	s.StallOn(TCCStateIV, TCCAtomic)
	s.StallOn(TCCStateA, TCCAtomic)

	s.Trans(TCCStateA, TCCAtomicD, TCCStateI, "atomic done, TCC_Ack old value")
	s.Trans(TCCStateA, TCCAtomicND, TCCStateA, "nacked: retry atomic")

	s.Trans(TCCStateIV, TCCData, TCCStateV, "fill, TCC_Ack requester")

	s.Trans(TCCStateV, TCCL2Repl, TCCStateI, "evict clean (write-through)")

	s.Trans(TCCStateI, TCCPrbInv, TCCStateI, "ack probe")
	s.Trans(TCCStateV, TCCPrbInv, TCCStateI, "invalidate + ack probe")
	// Probes must never wait on lines in transient states, or they
	// deadlock against requests queued behind the probing transaction
	// at the blocking directory. A line mid-fill holds no data yet: the
	// probe is acked immediately and the pending fill is marked
	// non-caching (it serves its waiting loads but installs nothing).
	// A line mid-atomic likewise holds no data.
	s.Trans(TCCStateIV, TCCPrbInv, TCCStateIV, "ack probe: mark fill non-caching")
	s.Trans(TCCStateA, TCCPrbInv, TCCStateA, "ack probe: no data cached")

	s.Trans(TCCStateI, TCCWBAck, TCCStateI, "forward TCC_AckWB")
	s.Trans(TCCStateV, TCCWBAck, TCCStateV, "forward TCC_AckWB")
	s.Trans(TCCStateIV, TCCWBAck, TCCStateIV, "forward TCC_AckWB")
	s.Trans(TCCStateA, TCCWBAck, TCCStateA, "forward TCC_AckWB")

	return s
}
