package viper

// msgPool recycles the protocol-layer message structs and line-sized
// buffers that flow between a system's TCPs and TCCs, so the
// steady-state load/store/atomic paths allocate nothing. The
// simulation is single-threaded, so plain stacks suffice.
//
// Safety model: every get falls back to allocation when the pool is
// empty, so a message that is never released (a stalled fault path, a
// controller variant that does not recycle) merely leaks — only a
// release while the object is still referenced can corrupt, and each
// release point is chosen where the object is provably dead (see
// FromTCP / onWBAck / TCC.send).
type msgPool struct {
	lineSize int
	tcpMsgs  []*tcpMsg
	tccMsgs  []*tccMsg
	data     [][]byte
	masks    [][]bool
}

func newMsgPool(lineSize int) *msgPool { return &msgPool{lineSize: lineSize} }

// getData returns a zeroed line-sized byte buffer (make semantics).
func (p *msgPool) getData() []byte {
	if n := len(p.data); n > 0 {
		b := p.data[n-1]
		p.data[n-1] = nil
		p.data = p.data[:n-1]
		clear(b)
		return b
	}
	return make([]byte, p.lineSize)
}

// getMask returns a zeroed line-sized mask (make semantics).
func (p *msgPool) getMask() []bool {
	if n := len(p.masks); n > 0 {
		m := p.masks[n-1]
		p.masks[n-1] = nil
		p.masks = p.masks[:n-1]
		clear(m)
		return m
	}
	return make([]bool, p.lineSize)
}

func (p *msgPool) putData(b []byte) {
	if len(b) == p.lineSize {
		p.data = append(p.data, b)
	}
}

func (p *msgPool) putMask(m []bool) {
	if len(m) == p.lineSize {
		p.masks = append(p.masks, m)
	}
}

func (p *msgPool) getTCPMsg() *tcpMsg {
	if n := len(p.tcpMsgs); n > 0 {
		m := p.tcpMsgs[n-1]
		p.tcpMsgs[n-1] = nil
		p.tcpMsgs = p.tcpMsgs[:n-1]
		return m
	}
	return &tcpMsg{}
}

// putTCPMsg releases m along with its payload buffers.
func (p *msgPool) putTCPMsg(m *tcpMsg) {
	if m.data != nil {
		p.putData(m.data)
	}
	if m.mask != nil {
		p.putMask(m.mask)
	}
	*m = tcpMsg{}
	p.tcpMsgs = append(p.tcpMsgs, m)
}

func (p *msgPool) getTCCMsg() *tccMsg {
	if n := len(p.tccMsgs); n > 0 {
		m := p.tccMsgs[n-1]
		p.tccMsgs[n-1] = nil
		p.tccMsgs = p.tccMsgs[:n-1]
		return m
	}
	return &tccMsg{}
}

// putTCCMsg releases m along with its fill buffer.
func (p *msgPool) putTCCMsg(m *tccMsg) {
	if m.data != nil {
		p.putData(m.data)
	}
	*m = tccMsg{}
	p.tccMsgs = append(p.tccMsgs, m)
}
