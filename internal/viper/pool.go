package viper

// msgPool recycles the protocol-layer message structs and line-sized
// buffers that flow between a system's TCPs and TCCs, so the
// steady-state load/store/atomic paths allocate nothing. The
// simulation is single-threaded, so plain stacks suffice.
//
// Safety model: every get falls back to allocation when the pool is
// empty, so a message that is never released (a stalled fault path, a
// controller variant that does not recycle) merely leaks — only a
// release while the object is still referenced can corrupt, and each
// release point is chosen where the object is provably dead (see
// FromTCP / onWBAck / TCC.send).
type msgPool struct {
	lineSize int
	tcpMsgs  []*tcpMsg
	tccMsgs  []*tccMsg
	data     [][]byte
	masks    [][]bool

	// Mid-run checkpoint support. Pooled objects are recycled and
	// overwritten, so a checkpoint must save the contents of every
	// object that could be live — which, once tracking is on, is
	// exactly the set allocated since enableTracking drained the free
	// stacks. Registration happens only on the allocation fallback, so
	// the steady-state get/put paths stay branch-one, and with
	// tracking off (campaigns, plain runs) the registries never grow.
	track    bool
	allTCP   []*tcpMsg
	allTCC   []*tccMsg
	allData  [][]byte
	allMasks [][]bool
}

func newMsgPool(lineSize int) *msgPool { return &msgPool{lineSize: lineSize} }

// enableTracking turns on checkpoint registration. The free stacks are
// drained first (dropped to GC) so every object live during the
// tracked run is allocation-registered.
func (p *msgPool) enableTracking() {
	p.track = true
	p.tcpMsgs, p.tccMsgs, p.data, p.masks = nil, nil, nil, nil
}

// getData returns a zeroed line-sized byte buffer (make semantics).
func (p *msgPool) getData() []byte {
	if n := len(p.data); n > 0 {
		b := p.data[n-1]
		p.data[n-1] = nil
		p.data = p.data[:n-1]
		clear(b)
		return b
	}
	b := make([]byte, p.lineSize)
	if p.track {
		p.allData = append(p.allData, b)
	}
	return b
}

// getMask returns a zeroed line-sized mask (make semantics).
func (p *msgPool) getMask() []bool {
	if n := len(p.masks); n > 0 {
		m := p.masks[n-1]
		p.masks[n-1] = nil
		p.masks = p.masks[:n-1]
		clear(m)
		return m
	}
	m := make([]bool, p.lineSize)
	if p.track {
		p.allMasks = append(p.allMasks, m)
	}
	return m
}

func (p *msgPool) putData(b []byte) {
	if len(b) == p.lineSize {
		p.data = append(p.data, b)
	}
}

func (p *msgPool) putMask(m []bool) {
	if len(m) == p.lineSize {
		p.masks = append(p.masks, m)
	}
}

func (p *msgPool) getTCPMsg() *tcpMsg {
	if n := len(p.tcpMsgs); n > 0 {
		m := p.tcpMsgs[n-1]
		p.tcpMsgs[n-1] = nil
		p.tcpMsgs = p.tcpMsgs[:n-1]
		return m
	}
	m := &tcpMsg{}
	if p.track {
		p.allTCP = append(p.allTCP, m)
	}
	return m
}

// putTCPMsg releases m along with its payload buffers.
func (p *msgPool) putTCPMsg(m *tcpMsg) {
	if m.data != nil {
		p.putData(m.data)
	}
	if m.mask != nil {
		p.putMask(m.mask)
	}
	*m = tcpMsg{}
	p.tcpMsgs = append(p.tcpMsgs, m)
}

func (p *msgPool) getTCCMsg() *tccMsg {
	if n := len(p.tccMsgs); n > 0 {
		m := p.tccMsgs[n-1]
		p.tccMsgs[n-1] = nil
		p.tccMsgs = p.tccMsgs[:n-1]
		return m
	}
	m := &tccMsg{}
	if p.track {
		p.allTCC = append(p.allTCC, m)
	}
	return m
}

// putTCCMsg releases m along with its fill buffer.
func (p *msgPool) putTCCMsg(m *tccMsg) {
	if m.data != nil {
		p.putData(m.data)
	}
	*m = tccMsg{}
	p.tccMsgs = append(p.tccMsgs, m)
}

// poolSnapshot captures the contents of every tracked object plus the
// free stacks. Message structs and buffers referenced by live protocol
// state (link queues, TBEs, stall queues, write-through buffers) are
// restored in place, so all the pointers those structures hold stay
// valid after a restore.
type poolSnapshot struct {
	tcpContents  []tcpMsg
	tccContents  []tccMsg
	dataContents [][]byte
	maskContents [][]bool
	freeTCP      []*tcpMsg
	freeTCC      []*tccMsg
	freeData     [][]byte
	freeMasks    [][]bool
}

// snapshot captures every registered object's contents. Only valid
// with tracking enabled — without it the live set is unknown.
func (p *msgPool) snapshot() *poolSnapshot {
	s := &poolSnapshot{
		tcpContents:  make([]tcpMsg, len(p.allTCP)),
		tccContents:  make([]tccMsg, len(p.allTCC)),
		dataContents: make([][]byte, len(p.allData)),
		maskContents: make([][]bool, len(p.allMasks)),
		freeTCP:      append([]*tcpMsg(nil), p.tcpMsgs...),
		freeTCC:      append([]*tccMsg(nil), p.tccMsgs...),
		freeData:     append([][]byte(nil), p.data...),
		freeMasks:    append([][]bool(nil), p.masks...),
	}
	for i, m := range p.allTCP {
		s.tcpContents[i] = *m
	}
	for i, m := range p.allTCC {
		s.tccContents[i] = *m
	}
	for i, b := range p.allData {
		s.dataContents[i] = append([]byte(nil), b...)
	}
	for i, m := range p.allMasks {
		s.maskContents[i] = append([]bool(nil), m...)
	}
	return s
}

// restore writes every registered object's captured contents back and
// rebuilds the free stacks. Objects registered after the snapshot was
// taken did not exist then; they are zeroed and parked on the free
// stacks (pooled objects are interchangeable — identity only matters
// for objects the restored state actually references, which are all
// snapshot-era).
func (p *msgPool) restore(s *poolSnapshot) {
	for i, m := range p.allTCP {
		if i < len(s.tcpContents) {
			*m = s.tcpContents[i]
		} else {
			*m = tcpMsg{}
		}
	}
	for i, m := range p.allTCC {
		if i < len(s.tccContents) {
			*m = s.tccContents[i]
		} else {
			*m = tccMsg{}
		}
	}
	for i, b := range p.allData {
		if i < len(s.dataContents) {
			copy(b, s.dataContents[i])
		}
	}
	for i, m := range p.allMasks {
		if i < len(s.maskContents) {
			copy(m, s.maskContents[i])
		}
	}
	p.tcpMsgs = append(p.tcpMsgs[:0], s.freeTCP...)
	p.tcpMsgs = append(p.tcpMsgs, p.allTCP[len(s.tcpContents):]...)
	p.tccMsgs = append(p.tccMsgs[:0], s.freeTCC...)
	p.tccMsgs = append(p.tccMsgs, p.allTCC[len(s.tccContents):]...)
	p.data = append(p.data[:0], s.freeData...)
	p.data = append(p.data, p.allData[len(s.dataContents):]...)
	p.masks = append(p.masks[:0], s.freeMasks...)
	p.masks = append(p.masks, p.allMasks[len(s.maskContents):]...)
}
