package viper

import "drftest/internal/mem"

// msgPool recycles the protocol-layer message structs that flow
// between a system's TCPs and TCCs, and owns the system's shared
// mem.LinePool for the payloads they carry, so the steady-state
// load/store/atomic paths allocate nothing and line data crosses the
// system by reference. The simulation is single-threaded, so plain
// stacks suffice.
//
// Safety model: every get falls back to allocation when the pool is
// empty, so a message that is never released (a stalled fault path, a
// controller variant that does not recycle) merely leaks — only a
// release while the object is still referenced can corrupt, and each
// release point is chosen where the object is provably dead (see
// FromTCP / onWBAck / TCC.send). Payload lines carry their own
// refcounts and epoch stamps (mem.Line), so a premature recycle of a
// line trips the delivery-side epoch check.
type msgPool struct {
	lineSize int
	tcpMsgs  []*tcpMsg
	tccMsgs  []*tccMsg
	// lines is the shared payload pool; handles flow through messages,
	// write-combining buffers, TBEs, the memory controller and the
	// directory, and release back here from any of them.
	lines *mem.LinePool

	// Mid-run checkpoint support. Pooled message structs are recycled
	// and overwritten, so a checkpoint must save the contents of every
	// struct that could be live — which, once tracking is on, is
	// exactly the set allocated since enableTracking drained the free
	// stacks. Registration happens only on the allocation fallback, so
	// the steady-state get/put paths stay branch-one, and with
	// tracking off (campaigns, plain runs) the registries never grow.
	// The line pool keeps its own always-on registry and is snapshotted
	// alongside.
	track  bool
	allTCP []*tcpMsg
	allTCC []*tccMsg
}

func newMsgPool(lineSize int, lines *mem.LinePool) *msgPool {
	return &msgPool{lineSize: lineSize, lines: lines}
}

// enableTracking turns on checkpoint registration. The message free
// stacks are drained first (dropped to GC) so every struct live during
// the tracked run is allocation-registered; the line pool flips to
// snapshot-capable in place (its registry is always on).
func (p *msgPool) enableTracking() {
	p.track = true
	p.tcpMsgs, p.tccMsgs = nil, nil
	p.lines.EnableTracking()
}

// reset force-reclaims the payload pool. Message structs in flight at
// reset time (early-stopped runs) leak to the GC exactly as before —
// their free stacks survive — but every payload line returns to
// service, so campaign steady states stay allocation-free even across
// faulting seeds. Only valid once the owning kernel has been reset.
func (p *msgPool) reset() {
	p.lines.Reset()
}

func (p *msgPool) getTCPMsg() *tcpMsg {
	if n := len(p.tcpMsgs); n > 0 {
		m := p.tcpMsgs[n-1]
		p.tcpMsgs[n-1] = nil
		p.tcpMsgs = p.tcpMsgs[:n-1]
		return m
	}
	m := &tcpMsg{}
	if p.track {
		p.allTCP = append(p.allTCP, m)
	}
	return m
}

// putTCPMsg releases m along with the payload reference it still
// holds, if any (a WrVicBlk that handed its payload to the backend has
// already cleared the field).
func (p *msgPool) putTCPMsg(m *tcpMsg) {
	if m.payload != nil {
		m.payload.Release()
	}
	*m = tcpMsg{}
	p.tcpMsgs = append(p.tcpMsgs, m)
}

func (p *msgPool) getTCCMsg() *tccMsg {
	if n := len(p.tccMsgs); n > 0 {
		m := p.tccMsgs[n-1]
		p.tccMsgs[n-1] = nil
		p.tccMsgs = p.tccMsgs[:n-1]
		return m
	}
	m := &tccMsg{}
	if p.track {
		p.allTCC = append(p.allTCC, m)
	}
	return m
}

// putTCCMsg releases m along with its fill payload reference.
func (p *msgPool) putTCCMsg(m *tccMsg) {
	if m.payload != nil {
		m.payload.Release()
	}
	*m = tccMsg{}
	p.tccMsgs = append(p.tccMsgs, m)
}

// poolSnapshot captures the contents of every tracked message struct,
// the message free stacks, and the full line-pool state (contents,
// refcounts, free order). Structs and lines referenced by live
// protocol state (link queues, TBEs, stall queues, write-through
// buffers, memctrl queues) are restored in place, so all the pointers
// those structures hold stay valid after a restore.
type poolSnapshot struct {
	tcpContents []tcpMsg
	tccContents []tccMsg
	freeTCP     []*tcpMsg
	freeTCC     []*tccMsg
	lines       *mem.LinePoolSnapshot
}

// snapshot captures every registered object's contents. Only valid
// with tracking enabled — without it the live set is unknown.
func (p *msgPool) snapshot() *poolSnapshot {
	s := &poolSnapshot{
		tcpContents: make([]tcpMsg, len(p.allTCP)),
		tccContents: make([]tccMsg, len(p.allTCC)),
		freeTCP:     append([]*tcpMsg(nil), p.tcpMsgs...),
		freeTCC:     append([]*tccMsg(nil), p.tccMsgs...),
		lines:       p.lines.Snapshot(),
	}
	for i, m := range p.allTCP {
		s.tcpContents[i] = *m
	}
	for i, m := range p.allTCC {
		s.tccContents[i] = *m
	}
	return s
}

// restore writes every registered object's captured contents back and
// rebuilds the free stacks. Objects registered after the snapshot was
// taken did not exist then; they are zeroed and parked on the free
// stacks (pooled objects are interchangeable — identity only matters
// for objects the restored state actually references, which are all
// snapshot-era).
func (p *msgPool) restore(s *poolSnapshot) {
	for i, m := range p.allTCP {
		if i < len(s.tcpContents) {
			*m = s.tcpContents[i]
		} else {
			*m = tcpMsg{}
		}
	}
	for i, m := range p.allTCC {
		if i < len(s.tccContents) {
			*m = s.tccContents[i]
		} else {
			*m = tccMsg{}
		}
	}
	p.tcpMsgs = append(p.tcpMsgs[:0], s.freeTCP...)
	p.tcpMsgs = append(p.tcpMsgs, p.allTCP[len(s.tcpContents):]...)
	p.tccMsgs = append(p.tccMsgs[:0], s.freeTCC...)
	p.tccMsgs = append(p.tccMsgs, p.allTCC[len(s.tccContents):]...)
	p.lines.Restore(s.lines)
}
