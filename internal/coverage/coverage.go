// Package coverage measures protocol state-transition coverage, the
// paper's central metric: which (state, event) cells of a controller's
// transition table a workload activates, how often, and what fraction
// of the reachable cells that is.
//
// It implements protocol.Recorder, classifies cells into the paper's
// four categories (Undefined / Inactive / Active / Impossible, Fig. 7),
// merges runs into unions (Figs. 8–10), and renders the hit-frequency
// heat maps of Fig. 5 as text.
package coverage

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"drftest/internal/protocol"
)

// Class is a cell's testing classification (paper Fig. 7).
type Class uint8

const (
	// ClassUndef marks cells the protocol declares impossible.
	ClassUndef Class = iota
	// ClassInactive marks defined cells the workload never hit.
	ClassInactive
	// ClassActive marks defined cells the workload activated.
	ClassActive
	// ClassImpossible marks defined cells unreachable for the test type
	// (e.g. L2 PrbInv cells when no CPU shares the directory).
	ClassImpossible
)

func (c Class) String() string {
	switch c {
	case ClassUndef:
		return "Undef"
	case ClassInactive:
		return "Inact"
	case ClassActive:
		return "Active"
	case ClassImpossible:
		return "Impsb"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Matrix is the hit-count matrix of one controller, indexed
// [state][event] to match the Spec.
type Matrix struct {
	Spec *protocol.Spec
	Hits [][]uint64
}

// NewMatrix creates a zeroed matrix for spec.
func NewMatrix(spec *protocol.Spec) *Matrix {
	m := &Matrix{Spec: spec, Hits: make([][]uint64, len(spec.States))}
	for i := range m.Hits {
		m.Hits[i] = make([]uint64, len(spec.Events))
	}
	return m
}

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Spec)
	for i := range m.Hits {
		copy(out.Hits[i], m.Hits[i])
	}
	return out
}

// Zero clears the hit counts in place. The Hits tables themselves are
// retained — machines granted direct counters via protocol.CounterSource
// hold references into them, so reallocating here would silently detach
// every live machine from the collector.
func (m *Matrix) Zero() {
	for i := range m.Hits {
		clear(m.Hits[i])
	}
}

// matrixName names a matrix for diagnostics, tolerating a nil Spec.
func matrixName(m *Matrix) string {
	if m == nil || m.Spec == nil {
		return "<nil spec>"
	}
	return m.Spec.Name
}

// Merge adds other's hits into m (run unions). The specs must describe
// the same table shape; a nil matrix or a shape mismatch panics with a
// message naming both specs rather than an opaque index error.
func (m *Matrix) Merge(other *Matrix) {
	m.MergeCountNew(other)
}

// MergeCountNew merges other into m exactly like Merge and returns the
// number of cells that went from zero to nonzero — the "new
// transitions" a saturation-driven campaign watches for.
func (m *Matrix) MergeCountNew(other *Matrix) int {
	return m.MergeCountNewFunc(other, nil)
}

// MergeCountNewFunc merges exactly like MergeCountNew and additionally
// invokes onNew (when non-nil) for every cell that went from zero to
// nonzero, in row-major [state][event] order. It is the campaign
// engine's per-corner attribution hook: the caller learns *which* cold
// cells a batch bought, not just how many, so a coverage-directed
// policy can credit the configuration corner that activated them.
func (m *Matrix) MergeCountNewFunc(other *Matrix, onNew func(state, event int)) int {
	if m == nil || other == nil {
		panic(fmt.Sprintf("coverage: merging nil matrix (%s into %s)", matrixName(other), matrixName(m)))
	}
	if len(m.Hits) != len(other.Hits) {
		panic(fmt.Sprintf("coverage: merging mismatched matrices: %s has %d states, %s has %d",
			matrixName(m), len(m.Hits), matrixName(other), len(other.Hits)))
	}
	newCells := 0
	for i := range m.Hits {
		if len(m.Hits[i]) != len(other.Hits[i]) {
			panic(fmt.Sprintf("coverage: merging mismatched matrices: %s state %d has %d events, %s has %d",
				matrixName(m), i, len(m.Hits[i]), matrixName(other), len(other.Hits[i])))
		}
		for j := range m.Hits[i] {
			if m.Hits[i][j] == 0 && other.Hits[i][j] != 0 {
				newCells++
				if onNew != nil {
					onNew(i, j)
				}
			}
			m.Hits[i][j] += other.Hits[i][j]
		}
	}
	return newCells
}

// Total returns the total number of recorded transitions.
func (m *Matrix) Total() uint64 {
	var n uint64
	for i := range m.Hits {
		for j := range m.Hits[i] {
			n += m.Hits[i][j]
		}
	}
	return n
}

// CellSet names a set of (state, event) cells, used for the
// per-test-type Impossible masks.
type CellSet map[[2]int]bool

// Add marks (state, event) as a member.
func (s CellSet) Add(state, event int) { s[[2]int{state, event}] = true }

// Has reports membership.
func (s CellSet) Has(state, event int) bool { return s[[2]int{state, event}] }

// Classify assigns every cell its class. impossible may be nil.
func (m *Matrix) Classify(impossible CellSet) [][]Class {
	out := make([][]Class, len(m.Hits))
	for i := range m.Hits {
		out[i] = make([]Class, len(m.Hits[i]))
		for j := range m.Hits[i] {
			cell := m.Spec.Cell(i, j)
			switch {
			case cell.Kind == protocol.Undefined:
				out[i][j] = ClassUndef
			case impossible != nil && impossible.Has(i, j):
				out[i][j] = ClassImpossible
			case m.Hits[i][j] > 0:
				out[i][j] = ClassActive
			default:
				out[i][j] = ClassInactive
			}
		}
	}
	return out
}

// Summary holds a matrix's coverage numbers.
type Summary struct {
	Machine    string
	Defined    int // cells with a defined transition (incl. stalls)
	Impossible int // defined cells unreachable for the test type
	Reachable  int // Defined − Impossible
	Active     int // reachable cells hit at least once
	Hits       uint64
}

// Coverage returns Active/Reachable as a fraction in [0, 1].
func (s Summary) Coverage() float64 {
	if s.Reachable == 0 {
		return 0
	}
	return float64(s.Active) / float64(s.Reachable)
}

func (s Summary) String() string {
	return fmt.Sprintf("%s: %d/%d reachable transitions active (%.1f%%), %d hits",
		s.Machine, s.Active, s.Reachable, 100*s.Coverage(), s.Hits)
}

// Summarize computes coverage with the given Impossible mask.
func (m *Matrix) Summarize(impossible CellSet) Summary {
	s := Summary{Machine: m.Spec.Name}
	classes := m.Classify(impossible)
	for i := range classes {
		for j := range classes[i] {
			switch classes[i][j] {
			case ClassActive:
				s.Active++
				s.Defined++
			case ClassInactive:
				s.Defined++
			case ClassImpossible:
				s.Defined++
				s.Impossible++
			}
			s.Hits += m.Hits[i][j]
		}
	}
	s.Reachable = s.Defined - s.Impossible
	return s
}

// Cell identifies one (state, event) transition cell of a matrix.
type Cell struct {
	State, Event int
}

// ColdCells returns the reachable-but-unhit cells — defined, not
// masked impossible, hit count zero — in deterministic row-major
// [state][event] order. It is the typed companion of InactiveCells: a
// coverage-directed campaign queries it at batch boundaries to learn
// which cells are still worth chasing, and because the order is fixed
// the query is safe to use inside determinism-sensitive policy code.
func (m *Matrix) ColdCells(impossible CellSet) []Cell {
	var out []Cell
	classes := m.Classify(impossible)
	for i := range classes {
		for j := range classes[i] {
			if classes[i][j] == ClassInactive {
				out = append(out, Cell{State: i, Event: j})
			}
		}
	}
	return out
}

// CellName renders a cell as "[State, Event]" using the spec's names.
func (m *Matrix) CellName(c Cell) string {
	return fmt.Sprintf("[%s, %s]", m.Spec.States[c.State], m.Spec.Events[c.Event])
}

// InactiveCells lists the reachable-but-unhit cells as "[State, Event]"
// strings, the debugging view designers use to aim new test configs.
func (m *Matrix) InactiveCells(impossible CellSet) []string {
	cold := m.ColdCells(impossible)
	out := make([]string, 0, len(cold))
	for _, c := range cold {
		out = append(out, m.CellName(c))
	}
	sort.Strings(out)
	return out
}

// Collector implements protocol.Recorder over any number of machines.
// Machines that share a spec name (e.g. every CU's "GPU-L1") aggregate
// into one matrix, matching how the paper reports per-level coverage.
type Collector struct {
	matrices map[string]*Matrix
	order    []string
}

// NewCollector registers the given specs ahead of time so empty
// matrices exist even for machines the workload never touches.
func NewCollector(specs ...*protocol.Spec) *Collector {
	c := &Collector{matrices: make(map[string]*Matrix)}
	for _, s := range specs {
		c.register(s)
	}
	return c
}

func (c *Collector) register(spec *protocol.Spec) *Matrix {
	if m, ok := c.matrices[spec.Name]; ok {
		return m
	}
	m := NewMatrix(spec)
	c.matrices[spec.Name] = m
	c.order = append(c.order, spec.Name)
	return m
}

// Record implements protocol.Recorder. Recording for an unregistered
// machine panics: it means the harness forgot a spec, which would
// silently corrupt coverage numbers.
func (c *Collector) Record(machine string, state, event int, _ protocol.Kind) {
	m, ok := c.matrices[machine]
	if !ok {
		panic(fmt.Sprintf("coverage: record for unregistered machine %q", machine))
	}
	m.Hits[state][event]++
}

// Counters implements protocol.CounterSource: a machine whose spec is
// registered gets direct access to its aggregate hit matrix, turning
// per-transition recording into a slice-index increment with no map
// lookup. Machines sharing a spec name still aggregate into one
// matrix, because they receive the same Hits table. Unregistered
// specs decline the fast path (nil, nil), so such machines fall back
// to Record and keep its loud unregistered-machine panic.
func (c *Collector) Counters(spec *protocol.Spec) ([][]uint64, protocol.Recorder) {
	if m, ok := c.matrices[spec.Name]; ok {
		return m.Hits, nil
	}
	return nil, nil
}

// Reset zeroes every registered matrix in place, so machines holding
// direct counter references (protocol.CounterSource) keep recording
// into the same tables afterwards. It is the campaign engine's per-run
// coverage-delta primitive: reset before a run, and the matrices hold
// exactly that run's hits.
func (c *Collector) Reset() {
	for _, name := range c.order {
		c.matrices[name].Zero()
	}
}

// Matrix returns the named machine's matrix, or nil.
func (c *Collector) Matrix(machine string) *Matrix { return c.matrices[machine] }

// CollectorSnapshot captures every registered matrix's hit counts.
type CollectorSnapshot struct {
	hits map[string][][]uint64
}

// Snapshot deep-copies every matrix's hit counts.
func (c *Collector) Snapshot() *CollectorSnapshot {
	s := &CollectorSnapshot{hits: make(map[string][][]uint64, len(c.order))}
	for _, name := range c.order {
		m := c.matrices[name]
		rows := make([][]uint64, len(m.Hits))
		for i := range m.Hits {
			rows[i] = append([]uint64(nil), m.Hits[i]...)
		}
		s.hits[name] = rows
	}
	return s
}

// Restore writes a snapshot's counts back into the existing Hits
// tables in place — like Reset, never reallocating, so machines
// holding direct counter references (protocol.CounterSource) keep
// recording into the same tables afterwards.
func (c *Collector) Restore(s *CollectorSnapshot) {
	for _, name := range c.order {
		m := c.matrices[name]
		rows, ok := s.hits[name]
		if !ok {
			panic(fmt.Sprintf("coverage: restore snapshot missing machine %q", name))
		}
		for i := range m.Hits {
			copy(m.Hits[i], rows[i])
		}
	}
}

// Machines lists registered machines in registration order.
func (c *Collector) Machines() []string { return append([]string(nil), c.order...) }

// heatShades maps log-scaled frequency to glyphs, darkest last.
var heatShades = []rune{'.', ':', '-', '=', '+', '*', '#', '%', '@'}

// RenderHeatmap writes a Fig. 5-style transition hit-frequency heat
// map: rows are events, columns are states; shade depth is
// log-proportional to hit count. Undefined cells print as "U", stall
// cells are shaded like any defined cell.
func (m *Matrix) RenderHeatmap(w io.Writer, impossible CellSet) {
	var max uint64
	for i := range m.Hits {
		for j := range m.Hits[i] {
			if m.Hits[i][j] > max {
				max = m.Hits[i][j]
			}
		}
	}
	logMax := math.Log1p(float64(max))

	fmt.Fprintf(w, "%s transition hit frequency (max=%d)\n", m.Spec.Name, max)
	fmt.Fprintf(w, "%-14s", "")
	for _, st := range m.Spec.States {
		fmt.Fprintf(w, "%8s", st)
	}
	fmt.Fprintln(w)
	for j, ev := range m.Spec.Events {
		fmt.Fprintf(w, "%-14s", ev)
		for i := range m.Spec.States {
			cell := m.Spec.Cell(i, j)
			var glyph string
			switch {
			case cell.Kind == protocol.Undefined:
				glyph = "U"
			case impossible != nil && impossible.Has(i, j):
				glyph = "x"
			case m.Hits[i][j] == 0:
				glyph = " "
			default:
				idx := 0
				if logMax > 0 {
					idx = int(math.Log1p(float64(m.Hits[i][j])) / logMax * float64(len(heatShades)-1))
				}
				glyph = strings.Repeat(string(heatShades[idx]), 3)
			}
			fmt.Fprintf(w, "%8s", glyph)
		}
		fmt.Fprintln(w)
	}
}

// RenderClassGrid writes a Fig. 7-style classification grid.
func (m *Matrix) RenderClassGrid(w io.Writer, impossible CellSet) {
	classes := m.Classify(impossible)
	fmt.Fprintf(w, "%s transition classes\n", m.Spec.Name)
	fmt.Fprintf(w, "%-14s", "")
	for _, st := range m.Spec.States {
		fmt.Fprintf(w, "%8s", st)
	}
	fmt.Fprintln(w)
	for j, ev := range m.Spec.Events {
		fmt.Fprintf(w, "%-14s", ev)
		for i := range m.Spec.States {
			fmt.Fprintf(w, "%8s", classes[i][j])
		}
		fmt.Fprintln(w)
	}
}
