package coverage

import (
	"testing"

	"drftest/internal/audit"
)

// TestSnapshotFieldAudit pins the field sets of the snapshotted
// structs so a new field cannot silently escape
// Snapshot/Restore/Reset (see package audit).
func TestSnapshotFieldAudit(t *testing.T) {
	audit.Fields(t, Collector{}, map[string]string{
		"matrices": "state: per-machine hit tables; Reset zeroes, Snapshot/Restore copy in place",
		"order":    "config: registration order, survives Reset/Restore",
	})
	audit.Fields(t, Matrix{}, map[string]string{
		"Spec": "config: protocol shape, survives Reset/Restore",
		"Hits": "state: hit counters; rows are restored in place (sources hold direct references)",
	})
}
