package coverage

import "encoding/json"

// matrixJSON is the wire form of a Matrix: enough for dashboards and
// CI gates to consume coverage without re-deriving the table shape.
type matrixJSON struct {
	Machine   string     `json:"machine"`
	States    []string   `json:"states"`
	Events    []string   `json:"events"`
	Hits      [][]uint64 `json:"hits"` // [state][event]
	Defined   int        `json:"defined"`
	Active    int        `json:"active"`
	Reachable int        `json:"reachable"`
	Coverage  float64    `json:"coverage"`
}

// MarshalJSON encodes the matrix with its summary (no Impossible mask;
// callers needing masked summaries should emit Summarize themselves).
func (m *Matrix) MarshalJSON() ([]byte, error) {
	s := m.Summarize(nil)
	return json.Marshal(matrixJSON{
		Machine:   m.Spec.Name,
		States:    m.Spec.States,
		Events:    m.Spec.Events,
		Hits:      m.Hits,
		Defined:   s.Defined,
		Active:    s.Active,
		Reachable: s.Reachable,
		Coverage:  s.Coverage(),
	})
}

// MarshalJSON encodes a summary.
func (s Summary) MarshalJSON() ([]byte, error) {
	return json.Marshal(map[string]any{
		"machine":    s.Machine,
		"defined":    s.Defined,
		"impossible": s.Impossible,
		"reachable":  s.Reachable,
		"active":     s.Active,
		"hits":       s.Hits,
		"coverage":   s.Coverage(),
	})
}
