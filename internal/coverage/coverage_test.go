package coverage

import (
	"strings"
	"testing"

	"drftest/internal/protocol"
)

func demoSpec() *protocol.Spec {
	s := protocol.NewSpec("demo", []string{"I", "V"}, []string{"Ld", "St", "Inv"})
	s.Trans(0, 0, 1, "fill")
	s.Trans(1, 0, 1, "hit")
	s.StallOn(0, 1)
	s.Trans(1, 1, 1, "write")
	s.Trans(1, 2, 0, "inv")
	return s
}

func TestCollectorAggregatesByName(t *testing.T) {
	spec := demoSpec()
	c := NewCollector(spec)
	m1 := protocol.NewMachine(spec, c)
	m2 := protocol.NewMachine(spec, c)
	m1.Fire(0, 0)
	m2.Fire(0, 0)
	if got := c.Matrix("demo").Hits[0][0]; got != 2 {
		t.Fatalf("aggregated hits = %d, want 2", got)
	}
	if len(c.Machines()) != 1 {
		t.Fatal("duplicate machine registration")
	}
}

// TestCollectorCountersFastPath pins the CounterSource contract: a
// registered spec gets the matrix's own Hits table (so machine-side
// increments are immediately visible in reports) and no tee;
// unregistered specs are declined so the Record panic still guards
// forgotten registrations.
func TestCollectorCountersFastPath(t *testing.T) {
	spec := demoSpec()
	c := NewCollector(spec)
	hits, tee := c.Counters(spec)
	if hits == nil || tee != nil {
		t.Fatalf("Counters = (%v, %v), want (hits, nil)", hits, tee)
	}
	hits[1][2] = 41
	hits[1][2]++
	if got := c.Matrix("demo").Hits[1][2]; got != 42 {
		t.Fatalf("matrix does not see direct increments: %d", got)
	}
	if h, _ := c.Counters(protocol.NewSpec("ghost", []string{"I"}, []string{"E"})); h != nil {
		t.Fatal("unregistered spec was granted counters")
	}
}

func TestCollectorUnknownMachinePanics(t *testing.T) {
	c := NewCollector()
	defer func() {
		if recover() == nil {
			t.Fatal("record for unregistered machine did not panic")
		}
	}()
	c.Record("ghost", 0, 0, protocol.Defined)
}

func TestClassifyAndSummarize(t *testing.T) {
	m := NewMatrix(demoSpec())
	m.Hits[0][0] = 5 // [I,Ld] active
	m.Hits[1][2] = 1 // [V,Inv] active
	impsb := CellSet{}
	impsb.Add(1, 1) // [V,St] impossible for this test type

	classes := m.Classify(impsb)
	if classes[0][0] != ClassActive || classes[0][2] != ClassUndef ||
		classes[1][1] != ClassImpossible || classes[1][0] != ClassInactive {
		t.Fatalf("classification wrong: %v", classes)
	}

	s := m.Summarize(impsb)
	// 5 defined cells, 1 impossible → 4 reachable, 2 active.
	if s.Defined != 5 || s.Impossible != 1 || s.Reachable != 4 || s.Active != 2 {
		t.Fatalf("summary %+v", s)
	}
	if s.Coverage() != 0.5 {
		t.Fatalf("coverage %.2f, want 0.5", s.Coverage())
	}
	if !strings.Contains(s.String(), "50.0%") {
		t.Fatalf("summary string %q", s)
	}
}

func TestMergeAndClone(t *testing.T) {
	a := NewMatrix(demoSpec())
	b := NewMatrix(demoSpec())
	a.Hits[0][0] = 1
	b.Hits[0][0] = 2
	b.Hits[1][1] = 7
	cl := a.Clone()
	a.Merge(b)
	if a.Hits[0][0] != 3 || a.Hits[1][1] != 7 {
		t.Fatal("merge wrong")
	}
	if cl.Hits[0][0] != 1 || cl.Hits[1][1] != 0 {
		t.Fatal("clone aliases original")
	}
	if a.Total() != 10 {
		t.Fatalf("total %d", a.Total())
	}
}

func TestMergeCountNew(t *testing.T) {
	a := NewMatrix(demoSpec())
	b := NewMatrix(demoSpec())
	a.Hits[0][0] = 1 // already hot: must not count as new
	b.Hits[0][0] = 2
	b.Hits[1][1] = 7 // zero -> nonzero: new
	b.Hits[1][2] = 1 // zero -> nonzero: new
	if n := a.MergeCountNew(b); n != 2 {
		t.Fatalf("MergeCountNew = %d, want 2", n)
	}
	// A second identical merge finds nothing new.
	if n := a.MergeCountNew(b); n != 0 {
		t.Fatalf("repeat MergeCountNew = %d, want 0", n)
	}
}

// mustPanicWith runs fn and asserts it panics with a message
// containing every substring in want.
func mustPanicWith(t *testing.T, fn func(), want ...string) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic, got none")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v (%T), want string", r, r)
		}
		for _, w := range want {
			if !strings.Contains(msg, w) {
				t.Fatalf("panic %q does not mention %q", msg, w)
			}
		}
	}()
	fn()
}

func TestMergePanicsNamedAndEarly(t *testing.T) {
	var nilM *Matrix
	m := NewMatrix(demoSpec())

	mustPanicWith(t, func() { m.Merge(nil) }, "nil matrix", "demo")
	mustPanicWith(t, func() { nilM.Merge(m) }, "nil matrix", "demo")

	other := protocol.NewSpec("tiny", []string{"I"}, []string{"Ld"})
	mustPanicWith(t, func() { m.Merge(NewMatrix(other)) },
		"mismatched", "demo", "tiny", "states")

	// Same outer shape, ragged inner row: the panic must fire before
	// any cell of the bad row is merged, naming the state index.
	ragged := NewMatrix(demoSpec())
	ragged.Hits[1] = ragged.Hits[1][:2]
	dst := NewMatrix(demoSpec())
	dst.Hits[0][0] = 5
	mustPanicWith(t, func() { dst.Merge(ragged) },
		"mismatched", "state 1", "events")
	if dst.Hits[0][0] != 5 {
		t.Fatalf("row 0 corrupted by failed merge: %d", dst.Hits[0][0])
	}
}

// TestMergeCountNewFuncAttribution: the onNew hook must see exactly
// the cells that went cold→hot, in row-major order, and a nil hook
// must behave like MergeCountNew.
func TestMergeCountNewFuncAttribution(t *testing.T) {
	a := NewMatrix(demoSpec())
	b := NewMatrix(demoSpec())
	a.Hits[0][0] = 1 // already hot: hook must not fire for it
	b.Hits[0][0] = 2
	b.Hits[1][1] = 7
	b.Hits[1][2] = 1
	var got []Cell
	n := a.MergeCountNewFunc(b, func(state, event int) {
		got = append(got, Cell{State: state, Event: event})
	})
	want := []Cell{{1, 1}, {1, 2}}
	if n != len(want) || len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("attribution = %v (n=%d), want %v", got, n, want)
	}
	if n := a.MergeCountNewFunc(b, func(int, int) { t.Fatal("hook fired on repeat merge") }); n != 0 {
		t.Fatalf("repeat merge found %d new cells", n)
	}
}

// TestColdCells: the typed cold-cell query must list exactly the
// reachable-but-unhit cells in row-major order, respecting the
// impossible mask, and CellName must render spec names.
func TestColdCells(t *testing.T) {
	m := NewMatrix(demoSpec())
	m.Hits[0][0] = 1 // [I,Ld] hot
	impsb := CellSet{}
	impsb.Add(1, 1) // [V,St] impossible

	cold := m.ColdCells(impsb)
	want := []Cell{{0, 1}, {1, 0}, {1, 2}} // [I,St] stall, [V,Ld], [V,Inv]
	if len(cold) != len(want) {
		t.Fatalf("cold = %v, want %v", cold, want)
	}
	for i := range want {
		if cold[i] != want[i] {
			t.Fatalf("cold = %v, want %v", cold, want)
		}
	}
	if name := m.CellName(cold[0]); name != "[I, St]" {
		t.Fatalf("CellName = %q", name)
	}
	// Activating every cold cell empties the query.
	for _, c := range cold {
		m.Hits[c.State][c.Event] = 1
	}
	if left := m.ColdCells(impsb); len(left) != 0 {
		t.Fatalf("still cold after activation: %v", left)
	}
}

func TestInactiveCells(t *testing.T) {
	m := NewMatrix(demoSpec())
	m.Hits[0][0] = 1
	in := m.InactiveCells(nil)
	want := []string{"[I, St]", "[V, Inv]", "[V, Ld]", "[V, St]"}
	if len(in) != len(want) {
		t.Fatalf("inactive = %v", in)
	}
	for i := range want {
		if in[i] != want[i] {
			t.Fatalf("inactive = %v, want %v", in, want)
		}
	}
}

func TestRenderers(t *testing.T) {
	m := NewMatrix(demoSpec())
	m.Hits[0][0] = 100
	m.Hits[1][0] = 1
	var hb strings.Builder
	m.RenderHeatmap(&hb, nil)
	out := hb.String()
	if !strings.Contains(out, "U") || !strings.Contains(out, "@@@") {
		t.Fatalf("heatmap lacks shading or undef markers:\n%s", out)
	}
	var gb strings.Builder
	m.RenderClassGrid(&gb, nil)
	if !strings.Contains(gb.String(), "Active") || !strings.Contains(gb.String(), "Inact") {
		t.Fatalf("class grid:\n%s", gb.String())
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassUndef: "Undef", ClassInactive: "Inact",
		ClassActive: "Active", ClassImpossible: "Impsb",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}

func TestMatrixJSONRoundTrip(t *testing.T) {
	m := NewMatrix(demoSpec())
	m.Hits[0][0] = 9
	data, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"machine":"demo"`, `"active":1`, `"hits":[[9,0,0],[0,0,0]]`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON missing %s:\n%s", want, data)
		}
	}
	sdata, err := m.Summarize(nil).MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sdata), `"coverage"`) {
		t.Errorf("summary JSON missing coverage: %s", sdata)
	}
}
