package memctrl

import (
	"testing"

	"drftest/internal/audit"
)

// TestSnapshotFieldAudit pins the Controller's field set so a new
// field cannot silently escape Snapshot/Restore/Reset (see package
// audit).
func TestSnapshotFieldAudit(t *testing.T) {
	audit.Fields(t, Controller{}, map[string]string{
		"k":          "config: owning kernel, survives Reset/Restore",
		"cfg":        "config: fixed at construction",
		"store":      "state: backing store, snapshotted via its own COW Snapshot",
		"queue":      "state: Reset clears; Snapshot deep-copies queued data/mask buffers",
		"head":       "state: Reset/Restore normalize the queue to head 0",
		"busy":       "state: Reset clears, Snapshot/Restore copy",
		"inflight":   "state: Reset clears; Snapshot deep-copies in-flight buffers",
		"inflightHd": "state: Reset/Restore normalize to head 0",
		"serviceFn":  "config: pre-bound closure, survives Reset/Restore",
		"completeFn": "config: pre-bound closure, survives Reset/Restore",
		"freeData":   "pool: recycled buffers; Restore re-clones through it, Reset keeps it",
		"freeMasks":  "pool: recycled buffers; Restore re-clones through it, Reset keeps it",
		"reads":      "stats: ResetStats zeroes, Snapshot/Restore copy",
		"writes":     "stats: ResetStats zeroes, Snapshot/Restore copy",
		"atomics":    "stats: ResetStats zeroes, Snapshot/Restore copy",
		"peakQueue":  "stats: ResetStats zeroes, Snapshot/Restore copy",
	})
}
