package memctrl

import (
	"testing"

	"drftest/internal/audit"
)

// TestSnapshotFieldAudit pins the Controller's field set so a new
// field cannot silently escape Snapshot/Restore/Reset (see package
// audit).
func TestSnapshotFieldAudit(t *testing.T) {
	audit.Fields(t, Controller{}, map[string]string{
		"k":          "config: owning kernel, survives Reset/Restore",
		"cfg":        "config: fixed at construction",
		"store":      "state: backing store, snapshotted via its own COW Snapshot",
		"queue":      "state: ring; Reset clears (dropping payload refs; owning system reclaims via pool Reset); Snapshot linearizes, retaining payload handles by identity",
		"busy":       "state: Reset clears, Snapshot/Restore copy",
		"inflight":   "state: ring; Reset clears (dropping payload refs; owning system reclaims via pool Reset); Snapshot linearizes, retaining payload handles by identity",
		"serviceFn":  "config: pre-bound closure, survives Reset/Restore",
		"completeFn": "config: pre-bound closure, survives Reset/Restore",
		"unit":       "config: schedule-exploration ordering domain, fixed at construction",
		"pool":       "pool: shared line pool; the owning system snapshots/resets it at the same cut (private pools are quiescent between runs)",
		"reads":      "stats: ResetStats zeroes, Snapshot/Restore copy",
		"writes":     "stats: ResetStats zeroes, Snapshot/Restore copy",
		"atomics":    "stats: ResetStats zeroes, Snapshot/Restore copy",
		"peakQueue":  "stats: ResetStats zeroes, Snapshot/Restore copy",
	})
}
