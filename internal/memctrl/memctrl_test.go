package memctrl

import (
	"testing"

	"drftest/internal/mem"
	"drftest/internal/sim"
)

func newCtrl() (*sim.Kernel, *Controller) {
	k := sim.NewKernel()
	return k, New(k, Config{AccessLatency: 100, ServicePeriod: 4}, mem.NewStore(), nil)
}

// wline builds a pool-owned unmasked write payload.
func wline(c *Controller, n int, set func(d []byte)) *mem.Line {
	l := c.Pool().Get(n)
	clear(l.Data)
	if set != nil {
		set(l.Data)
	}
	return l
}

func TestReadAfterWriteFIFO(t *testing.T) {
	k, c := newCtrl()
	var got []byte
	c.WriteLine(0x1000, wline(c, 64, func(d []byte) { d[3] = 0xEE }), func(any) {}, nil)
	c.ReadLine(0x1000, 64, func(d *mem.Line, _ any) {
		got = append([]byte(nil), d.Data...)
		d.Release()
	}, nil)
	k.RunUntilIdle()
	if got == nil || got[3] != 0xEE {
		t.Fatal("read did not observe earlier queued write (FIFO broken)")
	}
}

func TestMaskedWrite(t *testing.T) {
	k, c := newCtrl()
	full := wline(c, 8, func(d []byte) {
		for i := range d {
			d[i] = 0x11
		}
	})
	c.WriteLine(0, full, func(any) {}, nil)
	patch := c.Pool().GetMasked(8)
	clear(patch.Data)
	patch.Data[2], patch.Mask()[2] = 0x99, true
	c.WriteLine(0, patch, func(any) {}, nil)
	var got []byte
	c.ReadLine(0, 8, func(d *mem.Line, _ any) {
		got = append([]byte(nil), d.Data...)
		d.Release()
	}, nil)
	k.RunUntilIdle()
	if got[2] != 0x99 || got[1] != 0x11 {
		t.Fatalf("masked write produced %v", got)
	}
}

// TestWriteOwnershipAndCOW pins the handle-transfer contract that
// replaced the old copy-at-enqueue behaviour: a caller that keeps
// using a queued payload must retain it and mutate only through
// Writable, which copies exactly when the queued reference is live.
func TestWriteOwnershipAndCOW(t *testing.T) {
	k, c := newCtrl()
	l := wline(c, 4, func(d []byte) { d[0] = 1 })
	l.Retain() // caller keeps a reference alongside the queued write
	c.WriteLine(0, l, func(any) {}, nil)
	// Caller "reuses the buffer" before service time — through
	// Writable, which must copy (the controller still holds a ref).
	wl := l.Writable()
	if wl == l {
		t.Fatal("Writable aliased a shared payload")
	}
	wl.Data[0] = 99
	wl.Release()
	var got []byte
	c.ReadLine(0, 4, func(d *mem.Line, _ any) {
		got = append([]byte(nil), d.Data...)
		d.Release()
	}, nil)
	k.RunUntilIdle()
	if got[0] != 1 {
		t.Fatal("queued write observed the caller's later mutation")
	}
	// Sole-owner Writable is in-place: no copy when nobody shares.
	solo := wline(c, 4, nil)
	if solo.Writable() != solo {
		t.Fatal("Writable copied a sole-owner payload")
	}
	solo.Release()
}

func TestAtomicSerialized(t *testing.T) {
	k, c := newCtrl()
	seen := map[uint32]bool{}
	for i := 0; i < 50; i++ {
		c.Atomic(0x40, 1, func(old uint32, nack bool, _ any) {
			if nack {
				t.Error("memctrl NACKed an atomic")
			}
			if seen[old] {
				t.Errorf("duplicate atomic old value %d", old)
			}
			seen[old] = true
		}, nil)
	}
	k.RunUntilIdle()
	if len(seen) != 50 {
		t.Fatalf("%d distinct old values, want 50", len(seen))
	}
	if c.Store().ReadWord(0x40) != 50 {
		t.Fatalf("final value %d", c.Store().ReadWord(0x40))
	}
}

func TestServicePeriodSpacesCompletions(t *testing.T) {
	k, c := newCtrl()
	var times []sim.Tick
	for i := 0; i < 5; i++ {
		c.ReadLine(mem.Addr(i*64), 64, func(d *mem.Line, _ any) {
			times = append(times, k.Now())
			d.Release()
		}, nil)
	}
	k.RunUntilIdle()
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] != 4 {
			t.Fatalf("completions spaced %d apart, want ServicePeriod=4: %v", times[i]-times[i-1], times)
		}
	}
	if times[0] < 100 {
		t.Fatalf("first completion at %d, before AccessLatency", times[0])
	}
}

func TestStats(t *testing.T) {
	k, c := newCtrl()
	c.ReadLine(0, 64, func(d *mem.Line, _ any) { d.Release() }, nil)
	c.WriteLine(64, wline(c, 64, nil), func(any) {}, nil)
	c.Atomic(128, 1, func(uint32, bool, any) {}, nil)
	k.RunUntilIdle()
	r, w, a, peak := c.Stats()
	if r != 1 || w != 1 || a != 1 {
		t.Fatalf("stats r=%d w=%d a=%d", r, w, a)
	}
	if peak < 1 {
		t.Fatalf("peak queue %d", peak)
	}
}

// TestSteadyStateRecycles pins the pool behaviour the zero-copy plane
// depends on: after warmup, reads and writes recycle lines instead of
// allocating.
func TestSteadyStateRecycles(t *testing.T) {
	k, c := newCtrl()
	for i := 0; i < 8; i++ {
		c.WriteLine(0, wline(c, 64, nil), func(any) {}, nil)
		c.ReadLine(0, 64, func(d *mem.Line, _ any) { d.Release() }, nil)
		k.RunUntilIdle()
	}
	_, allocsWarm := c.Pool().Stats()
	for i := 0; i < 64; i++ {
		c.WriteLine(0, wline(c, 64, nil), func(any) {}, nil)
		c.ReadLine(0, 64, func(d *mem.Line, _ any) { d.Release() }, nil)
		k.RunUntilIdle()
	}
	_, allocsAfter := c.Pool().Stats()
	if allocsAfter != allocsWarm {
		t.Fatalf("steady state allocated %d new lines", allocsAfter-allocsWarm)
	}
}
