package memctrl

import (
	"testing"

	"drftest/internal/mem"
	"drftest/internal/sim"
)

func newCtrl() (*sim.Kernel, *Controller) {
	k := sim.NewKernel()
	return k, New(k, Config{AccessLatency: 100, ServicePeriod: 4}, mem.NewStore())
}

func TestReadAfterWriteFIFO(t *testing.T) {
	k, c := newCtrl()
	data := make([]byte, 64)
	data[3] = 0xEE
	var got []byte
	c.WriteLine(0x1000, data, nil, func() {})
	c.ReadLine(0x1000, 64, func(d []byte) { got = append([]byte(nil), d...) })
	k.RunUntilIdle()
	if got == nil || got[3] != 0xEE {
		t.Fatal("read did not observe earlier queued write (FIFO broken)")
	}
}

func TestMaskedWrite(t *testing.T) {
	k, c := newCtrl()
	full := make([]byte, 8)
	for i := range full {
		full[i] = 0x11
	}
	c.WriteLine(0, full, nil, func() {})
	patch := make([]byte, 8)
	mask := make([]bool, 8)
	patch[2], mask[2] = 0x99, true
	c.WriteLine(0, patch, mask, func() {})
	var got []byte
	c.ReadLine(0, 8, func(d []byte) { got = append([]byte(nil), d...) })
	k.RunUntilIdle()
	if got[2] != 0x99 || got[1] != 0x11 {
		t.Fatalf("masked write produced %v", got)
	}
}

func TestWriteBuffersAreCopied(t *testing.T) {
	k, c := newCtrl()
	data := make([]byte, 4)
	data[0] = 1
	c.WriteLine(0, data, nil, func() {})
	data[0] = 99 // caller reuses the buffer before service time
	var got []byte
	c.ReadLine(0, 4, func(d []byte) { got = append([]byte(nil), d...) })
	k.RunUntilIdle()
	if got[0] != 1 {
		t.Fatal("controller aliased the caller's write buffer")
	}
}

func TestAtomicSerialized(t *testing.T) {
	k, c := newCtrl()
	seen := map[uint32]bool{}
	for i := 0; i < 50; i++ {
		c.Atomic(0x40, 1, func(old uint32) {
			if seen[old] {
				t.Errorf("duplicate atomic old value %d", old)
			}
			seen[old] = true
		})
	}
	k.RunUntilIdle()
	if len(seen) != 50 {
		t.Fatalf("%d distinct old values, want 50", len(seen))
	}
	if c.Store().ReadWord(0x40) != 50 {
		t.Fatalf("final value %d", c.Store().ReadWord(0x40))
	}
}

func TestServicePeriodSpacesCompletions(t *testing.T) {
	k, c := newCtrl()
	var times []sim.Tick
	for i := 0; i < 5; i++ {
		c.ReadLine(mem.Addr(i*64), 64, func([]byte) { times = append(times, k.Now()) })
	}
	k.RunUntilIdle()
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] != 4 {
			t.Fatalf("completions spaced %d apart, want ServicePeriod=4: %v", times[i]-times[i-1], times)
		}
	}
	if times[0] < 100 {
		t.Fatalf("first completion at %d, before AccessLatency", times[0])
	}
}

func TestStats(t *testing.T) {
	k, c := newCtrl()
	c.ReadLine(0, 64, func([]byte) {})
	c.WriteLine(64, make([]byte, 64), nil, func() {})
	c.Atomic(128, 1, func(uint32) {})
	k.RunUntilIdle()
	r, w, a, peak := c.Stats()
	if r != 1 || w != 1 || a != 1 {
		t.Fatalf("stats r=%d w=%d a=%d", r, w, a)
	}
	if peak < 1 {
		t.Fatalf("peak queue %d", peak)
	}
}
