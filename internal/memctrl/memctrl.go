// Package memctrl models the memory controller and DRAM behind the
// coherence stack: a functional backing store fronted by a
// fixed-latency, rate-limited service queue.
//
// Fidelity here is deliberately modest — the paper's methodology tests
// the coherence protocol, not DRAM timing — but the controller must (a)
// be the global ordering point for line data, (b) honor per-byte write
// masks so write-through merging is observable, and (c) introduce
// queuing delay so request lifetimes vary and transient protocol states
// stay occupied.
//
// The controller sits on every miss and write-through path, so its
// steady state is allocation-free: requests are held by value in a
// head-indexed queue, completion closures are pre-bound, and line
// buffers are recycled through free lists.
package memctrl

import (
	"drftest/internal/mem"
	"drftest/internal/sim"
)

// Config sets the controller's timing.
type Config struct {
	// AccessLatency is the fixed ticks from dequeue to completion.
	AccessLatency sim.Tick
	// ServicePeriod is the minimum ticks between dequeues (inverse
	// bandwidth). Zero means unlimited bandwidth.
	ServicePeriod sim.Tick
}

// DefaultConfig mimics a ~100-cycle DRAM with one request per 4 cycles.
func DefaultConfig() Config {
	return Config{AccessLatency: 100, ServicePeriod: 4}
}

// request is one queued DRAM command. Exactly one of the on* callbacks
// is set, matching kind; the typed fields avoid a per-request adapter
// closure.
type request struct {
	kind     kind
	line     mem.Addr
	size     int
	data     []byte
	mask     []bool
	addr     mem.Addr // word address for atomics
	delta    uint32
	onRead   func(data []byte)
	onWrite  func()
	onAtomic func(old uint32)
}

type kind uint8

const (
	kindRead kind = iota
	kindWrite
	kindAtomic
)

// Controller services line reads, masked line writes and word atomics
// against a backing Store.
type Controller struct {
	k     *sim.Kernel
	cfg   Config
	store *mem.Store

	// queue is head-indexed: pops advance head and the backing array is
	// reset (not reallocated) whenever the queue drains.
	queue []request
	head  int
	busy  bool

	// inflight holds dequeued requests awaiting completion, drained
	// FIFO by completeFn: every dequeue schedules completion exactly
	// AccessLatency ticks out and dequeues happen at nondecreasing
	// ticks, so completions fire in dequeue order.
	inflight   []request
	inflightHd int

	serviceFn  func()
	completeFn func()

	// Free lists for the data/mask copies made by WriteLine and the
	// buffers handed to ReadLine callbacks. Misses fall back to
	// allocation, so an unrecycled buffer is a leak, never a bug.
	freeData  [][]byte
	freeMasks [][]bool

	// stats
	reads, writes, atomics uint64
	peakQueue              int
}

// New creates a controller on kernel k over backing store st.
func New(k *sim.Kernel, cfg Config, st *mem.Store) *Controller {
	c := &Controller{k: k, cfg: cfg, store: st}
	c.serviceFn = c.service
	c.completeFn = c.complete
	return c
}

// Store exposes the backing memory (used to seed initial values and by
// end-of-run consistency audits).
func (c *Controller) Store() *mem.Store { return c.store }

// Reset drops all queued and in-flight requests, zeroes the stats, and
// empties the backing store. The kernel must be reset alongside: the
// pending service/complete events reference the dropped requests, and
// busy=false assumes no serviceFn remains scheduled. Queued payload
// copies are released to GC rather than the free lists — after a reset
// their completion would never fire, so recycling them eagerly risks
// nothing but is also unnecessary (the free lists themselves are kept).
func (c *Controller) Reset() {
	clear(c.queue[:cap(c.queue)])
	c.queue = c.queue[:0]
	c.head = 0
	c.busy = false
	clear(c.inflight[:cap(c.inflight)])
	c.inflight = c.inflight[:0]
	c.inflightHd = 0
	c.reads, c.writes, c.atomics, c.peakQueue = 0, 0, 0, 0
	c.store.Reset()
}

func (c *Controller) getData(n int) []byte {
	for i := len(c.freeData) - 1; i >= 0; i-- {
		if cap(c.freeData[i]) >= n {
			b := c.freeData[i][:n]
			c.freeData[i] = c.freeData[len(c.freeData)-1]
			c.freeData[len(c.freeData)-1] = nil
			c.freeData = c.freeData[:len(c.freeData)-1]
			return b
		}
	}
	return make([]byte, n)
}

func (c *Controller) getMask(n int) []bool {
	for i := len(c.freeMasks) - 1; i >= 0; i-- {
		if cap(c.freeMasks[i]) >= n {
			m := c.freeMasks[i][:n]
			c.freeMasks[i] = c.freeMasks[len(c.freeMasks)-1]
			c.freeMasks[len(c.freeMasks)-1] = nil
			c.freeMasks = c.freeMasks[:len(c.freeMasks)-1]
			return m
		}
	}
	return make([]bool, n)
}

// ReadLine fetches size bytes at line and calls done with the data.
// The data slice is only valid for the duration of the done call: the
// controller recycles the buffer for later reads. Callers must copy
// anything they retain.
func (c *Controller) ReadLine(line mem.Addr, size int, done func(data []byte)) {
	c.enqueue(request{kind: kindRead, line: line, size: size, onRead: done})
}

// WriteLine writes data (length = line size) at line under mask and
// calls done when the write is globally performed.
func (c *Controller) WriteLine(line mem.Addr, data []byte, mask []bool, done func()) {
	// Copy: the caller may reuse its buffers before service time.
	d := c.getData(len(data))
	copy(d, data)
	var m []bool
	if mask != nil {
		m = c.getMask(len(mask))
		copy(m, mask)
	}
	c.enqueue(request{kind: kindWrite, line: line, data: d, mask: m, onWrite: done})
}

// Atomic performs a fetch-add at word address addr and calls done with
// the old value. Atomicity is inherent: the controller services one
// request at a time against the functional store.
func (c *Controller) Atomic(addr mem.Addr, delta uint32, done func(old uint32)) {
	c.enqueue(request{kind: kindAtomic, addr: addr, delta: delta, onAtomic: done})
}

func (c *Controller) enqueue(r request) {
	c.queue = append(c.queue, r)
	if n := len(c.queue) - c.head; n > c.peakQueue {
		c.peakQueue = n
	}
	if !c.busy {
		c.busy = true
		c.k.Schedule(0, c.serviceFn)
	}
}

func (c *Controller) service() {
	if c.head == len(c.queue) {
		c.queue = c.queue[:0]
		c.head = 0
		c.busy = false
		return
	}
	r := c.queue[c.head]
	c.queue[c.head] = request{}
	c.head++
	c.inflight = append(c.inflight, r)
	c.k.Schedule(c.cfg.AccessLatency, c.completeFn)
	period := c.cfg.ServicePeriod
	if period == 0 {
		period = 1
	}
	c.k.Schedule(period, c.serviceFn)
}

func (c *Controller) complete() {
	r := c.inflight[c.inflightHd]
	c.inflight[c.inflightHd] = request{}
	c.inflightHd++
	if c.inflightHd == len(c.inflight) {
		c.inflight = c.inflight[:0]
		c.inflightHd = 0
	}
	switch r.kind {
	case kindRead:
		c.reads++
		data := c.getData(r.size)
		c.store.ReadBytes(r.line, data)
		r.onRead(data)
		c.freeData = append(c.freeData, data)
	case kindWrite:
		c.writes++
		c.store.WriteBytes(r.line, r.data, r.mask)
		c.freeData = append(c.freeData, r.data)
		if r.mask != nil {
			c.freeMasks = append(c.freeMasks, r.mask)
		}
		r.onWrite()
	case kindAtomic:
		c.atomics++
		old := c.store.AtomicAdd(r.addr, r.delta)
		r.onAtomic(old)
	}
}

// Stats returns service counters: reads, writes, atomics serviced and the
// peak queue depth.
func (c *Controller) Stats() (reads, writes, atomics uint64, peakQueue int) {
	return c.reads, c.writes, c.atomics, c.peakQueue
}

// Snapshot captures the controller's queues, stats and backing store.
// Queued payload buffers are deep-copied (the live ones are recycled
// through the free lists and would be overwritten); completion
// callbacks are pre-bound to stable owner objects, so the value copies
// stay valid. The kernel events referencing serviceFn/completeFn must
// be snapshotted alongside by the owner.
type Snapshot struct {
	queue    []request
	inflight []request
	busy     bool

	reads, writes, atomics uint64
	peakQueue              int

	store *mem.StoreSnapshot
}

func snapReqs(src []request) []request {
	if len(src) == 0 {
		return nil
	}
	out := make([]request, len(src))
	copy(out, src)
	for i := range out {
		if out[i].data != nil {
			out[i].data = append([]byte(nil), out[i].data...)
		}
		if out[i].mask != nil {
			out[i].mask = append([]bool(nil), out[i].mask...)
		}
	}
	return out
}

// cloneReq re-privatizes a snapshotted request for live use, drawing
// payload buffers from the free lists (they will be recycled back by
// complete, keeping the snapshot's own buffers pristine for repeated
// restores).
func (c *Controller) cloneReq(r request) request {
	if r.data != nil {
		d := c.getData(len(r.data))
		copy(d, r.data)
		r.data = d
	}
	if r.mask != nil {
		m := c.getMask(len(r.mask))
		copy(m, r.mask)
		r.mask = m
	}
	return r
}

// Snapshot captures the controller and its backing store.
func (c *Controller) Snapshot() *Snapshot {
	return &Snapshot{
		queue:     snapReqs(c.queue[c.head:]),
		inflight:  snapReqs(c.inflight[c.inflightHd:]),
		busy:      c.busy,
		reads:     c.reads,
		writes:    c.writes,
		atomics:   c.atomics,
		peakQueue: c.peakQueue,
		store:     c.store.Snapshot(),
	}
}

// Restore returns the controller and its backing store to the captured
// state. The kernel must be restored in lockstep (the service/complete
// events must match the restored queues).
func (c *Controller) Restore(s *Snapshot) {
	clear(c.queue[:cap(c.queue)])
	c.queue = c.queue[:0]
	c.head = 0
	for _, r := range s.queue {
		c.queue = append(c.queue, c.cloneReq(r))
	}
	clear(c.inflight[:cap(c.inflight)])
	c.inflight = c.inflight[:0]
	c.inflightHd = 0
	for _, r := range s.inflight {
		c.inflight = append(c.inflight, c.cloneReq(r))
	}
	c.busy = s.busy
	c.reads, c.writes, c.atomics, c.peakQueue = s.reads, s.writes, s.atomics, s.peakQueue
	c.store.Restore(s.store)
}
