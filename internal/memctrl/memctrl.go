// Package memctrl models the memory controller and DRAM behind the
// coherence stack: a functional backing store fronted by a
// fixed-latency, rate-limited service queue.
//
// Fidelity here is deliberately modest — the paper's methodology tests
// the coherence protocol, not DRAM timing — but the controller must (a)
// be the global ordering point for line data, (b) honor per-byte write
// masks so write-through merging is observable, and (c) introduce
// queuing delay so request lifetimes vary and transient protocol states
// stay occupied.
package memctrl

import (
	"drftest/internal/mem"
	"drftest/internal/sim"
)

// Config sets the controller's timing.
type Config struct {
	// AccessLatency is the fixed ticks from dequeue to completion.
	AccessLatency sim.Tick
	// ServicePeriod is the minimum ticks between dequeues (inverse
	// bandwidth). Zero means unlimited bandwidth.
	ServicePeriod sim.Tick
}

// DefaultConfig mimics a ~100-cycle DRAM with one request per 4 cycles.
func DefaultConfig() Config {
	return Config{AccessLatency: 100, ServicePeriod: 4}
}

// request is one queued DRAM command.
type request struct {
	kind  kind
	line  mem.Addr
	size  int
	data  []byte
	mask  []bool
	addr  mem.Addr // word address for atomics
	delta uint32
	done  func(data []byte, old uint32)
}

type kind uint8

const (
	kindRead kind = iota
	kindWrite
	kindAtomic
)

// Controller services line reads, masked line writes and word atomics
// against a backing Store.
type Controller struct {
	k     *sim.Kernel
	cfg   Config
	store *mem.Store

	queue []request
	busy  bool

	// stats
	reads, writes, atomics uint64
	peakQueue              int
}

// New creates a controller on kernel k over backing store st.
func New(k *sim.Kernel, cfg Config, st *mem.Store) *Controller {
	return &Controller{k: k, cfg: cfg, store: st}
}

// Store exposes the backing memory (used to seed initial values and by
// end-of-run consistency audits).
func (c *Controller) Store() *mem.Store { return c.store }

// ReadLine fetches size bytes at line and calls done with the data.
func (c *Controller) ReadLine(line mem.Addr, size int, done func(data []byte)) {
	c.enqueue(request{kind: kindRead, line: line, size: size,
		done: func(d []byte, _ uint32) { done(d) }})
}

// WriteLine writes data (length = line size) at line under mask and
// calls done when the write is globally performed.
func (c *Controller) WriteLine(line mem.Addr, data []byte, mask []bool, done func()) {
	// Copy: the caller may reuse its buffers before service time.
	d := make([]byte, len(data))
	copy(d, data)
	var m []bool
	if mask != nil {
		m = make([]bool, len(mask))
		copy(m, mask)
	}
	c.enqueue(request{kind: kindWrite, line: line, data: d, mask: m,
		done: func([]byte, uint32) { done() }})
}

// Atomic performs a fetch-add at word address addr and calls done with
// the old value. Atomicity is inherent: the controller services one
// request at a time against the functional store.
func (c *Controller) Atomic(addr mem.Addr, delta uint32, done func(old uint32)) {
	c.enqueue(request{kind: kindAtomic, addr: addr, delta: delta,
		done: func(_ []byte, old uint32) { done(old) }})
}

func (c *Controller) enqueue(r request) {
	c.queue = append(c.queue, r)
	if len(c.queue) > c.peakQueue {
		c.peakQueue = len(c.queue)
	}
	if !c.busy {
		c.busy = true
		c.k.Schedule(0, c.service)
	}
}

func (c *Controller) service() {
	if len(c.queue) == 0 {
		c.busy = false
		return
	}
	r := c.queue[0]
	c.queue = c.queue[1:]
	c.k.Schedule(c.cfg.AccessLatency, func() { c.complete(r) })
	period := c.cfg.ServicePeriod
	if period == 0 {
		period = 1
	}
	c.k.Schedule(period, c.service)
}

func (c *Controller) complete(r request) {
	switch r.kind {
	case kindRead:
		c.reads++
		data := make([]byte, r.size)
		c.store.ReadBytes(r.line, data)
		r.done(data, 0)
	case kindWrite:
		c.writes++
		c.store.WriteBytes(r.line, r.data, r.mask)
		r.done(nil, 0)
	case kindAtomic:
		c.atomics++
		old := c.store.AtomicAdd(r.addr, r.delta)
		r.done(nil, old)
	}
}

// Stats returns service counters: reads, writes, atomics serviced and the
// peak queue depth.
func (c *Controller) Stats() (reads, writes, atomics uint64, peakQueue int) {
	return c.reads, c.writes, c.atomics, c.peakQueue
}
