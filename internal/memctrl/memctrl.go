// Package memctrl models the memory controller and DRAM behind the
// coherence stack: a functional backing store fronted by a
// fixed-latency, rate-limited service queue.
//
// Fidelity here is deliberately modest — the paper's methodology tests
// the coherence protocol, not DRAM timing — but the controller must (a)
// be the global ordering point for line data, (b) honor per-byte write
// masks so write-through merging is observable, and (c) introduce
// queuing delay so request lifetimes vary and transient protocol states
// stay occupied.
//
// The controller sits on every miss and write-through path, so its
// steady state is allocation- and copy-free: requests are held by value
// in power-of-two ring queues, completion callbacks are pre-bound and carry
// an opaque ctx instead of closing over per-request state, and line
// payloads travel as refcounted *mem.Line handles — WriteLine takes
// ownership of the caller's handle rather than copying its bytes, and
// ReadLine hands the callee a pool-backed handle it then owns.
package memctrl

import (
	"drftest/internal/mem"
	"drftest/internal/sim"
)

// Config sets the controller's timing.
type Config struct {
	// AccessLatency is the fixed ticks from dequeue to completion.
	AccessLatency sim.Tick
	// ServicePeriod is the minimum ticks between dequeues (inverse
	// bandwidth). Zero means unlimited bandwidth.
	ServicePeriod sim.Tick
}

// DefaultConfig mimics a ~100-cycle DRAM with one request per 4 cycles.
func DefaultConfig() Config {
	return Config{AccessLatency: 100, ServicePeriod: 4}
}

// request is one queued DRAM command. Exactly one of the on* callbacks
// is set, matching kind; the typed fields plus the opaque ctx avoid a
// per-request adapter closure.
type request struct {
	kind    kind
	line    mem.Addr
	size    int
	payload *mem.Line // write payload; the request owns one reference
	addr    mem.Addr  // word address for atomics
	delta   uint32

	onRead   func(data *mem.Line, ctx any)
	onWrite  func(ctx any)
	onAtomic func(old uint32, nack bool, ctx any)
	ctx      any
}

type kind uint8

const (
	kindRead kind = iota
	kindWrite
	kindAtomic
)

// ring is a growable power-of-two FIFO of requests. Push and pop are a
// single indexed write each; the backing array doubles only when the
// live window outgrows it, so steady state runs allocation-free at a
// footprint bounded by the peak depth.
type ring struct {
	slots      []request // len is a power of two (or zero)
	head, tail uint64    // pop at head&mask, push at tail&mask
}

func (q *ring) len() int { return int(q.tail - q.head) }

func (q *ring) push(r request) {
	if q.len() == len(q.slots) {
		q.grow()
	}
	q.slots[q.tail&uint64(len(q.slots)-1)] = r
	q.tail++
}

// peek returns the head request without dequeuing it (the next pop's
// result; caller must ensure the ring is non-empty).
func (q *ring) peek() request {
	return q.slots[q.head&uint64(len(q.slots)-1)]
}

func (q *ring) pop() request {
	i := q.head & uint64(len(q.slots)-1)
	r := q.slots[i]
	q.slots[i] = request{}
	q.head++
	return r
}

func (q *ring) grow() {
	n := len(q.slots) * 2
	if n == 0 {
		n = 32
	}
	slots := make([]request, n)
	for i, h := 0, q.head; h != q.tail; i, h = i+1, h+1 {
		slots[i] = q.slots[h&uint64(len(q.slots)-1)]
	}
	q.tail -= q.head
	q.head = 0
	q.slots = slots
}

// reset empties the ring, clearing every slot so dropped requests do
// not pin payloads or ctx objects.
func (q *ring) reset() {
	clear(q.slots)
	q.head, q.tail = 0, 0
}

// save returns the live window in FIFO order (nil when empty).
func (q *ring) save() []request {
	if q.len() == 0 {
		return nil
	}
	out := make([]request, 0, q.len())
	for h := q.head; h != q.tail; h++ {
		out = append(out, q.slots[h&uint64(len(q.slots)-1)])
	}
	return out
}

// load replaces the ring's contents with the given FIFO window.
func (q *ring) load(reqs []request) {
	q.reset()
	for _, r := range reqs {
		q.push(r)
	}
}

// Controller services line reads, masked line writes and word atomics
// against a backing Store.
type Controller struct {
	k     *sim.Kernel
	cfg   Config
	store *mem.Store
	pool  *mem.LinePool

	// queue is a power-of-two ring: slots are reused as head laps the
	// array, so the footprint tracks the peak queue depth instead of
	// the total request count (an append-only head-indexed queue never
	// shrinks while at least one request is always pending).
	queue ring
	busy  bool

	// inflight holds dequeued requests awaiting completion, drained
	// FIFO by completeFn: every dequeue schedules completion exactly
	// AccessLatency ticks out and dequeues happen at nondecreasing
	// ticks, so completions fire in dequeue order.
	inflight ring

	serviceFn  func()
	completeFn func()

	// unit is the controller's schedule-exploration ordering domain:
	// service events pop the request queue's head and completion events
	// pop the inflight queue's head, so both must fire in schedule
	// order for the event→request pairing to hold. Sharing one unit
	// FIFO-locks them (see sim/chooser.go), which is what makes the
	// line tags below sound: the request an event will process is
	// already determined when the event is scheduled.
	unit uint32

	// stats
	reads, writes, atomics uint64
	peakQueue              int
}

// New creates a controller on kernel k over backing store st. Line
// payloads for read fills are drawn from pool; pass the owning
// system's shared pool so handles can flow across components (and so
// one pool snapshot covers every in-flight payload), or nil to give
// the controller a private pool.
func New(k *sim.Kernel, cfg Config, st *mem.Store, pool *mem.LinePool) *Controller {
	if pool == nil {
		pool = mem.NewLinePool(64)
	}
	c := &Controller{k: k, cfg: cfg, store: st, pool: pool, unit: k.NewUnit()}
	c.serviceFn = c.service
	c.completeFn = c.complete
	return c
}

// Store exposes the backing memory (used to seed initial values and by
// end-of-run consistency audits).
func (c *Controller) Store() *mem.Store { return c.store }

// Pool exposes the controller's line pool (the system's shared pool
// when one was supplied to New).
func (c *Controller) Pool() *mem.LinePool { return c.pool }

// Reset drops all queued and in-flight requests, zeroes the stats, and
// empties the backing store. The kernel must be reset alongside: the
// pending service/complete events reference the dropped requests, and
// busy=false assumes no serviceFn remains scheduled. Dropped write
// payloads keep their references — their holders are being reset by
// identity alongside (pool restore or caller reset reclaims them), so
// releasing here would double-free.
func (c *Controller) Reset() {
	c.queue.reset()
	c.busy = false
	c.inflight.reset()
	c.reads, c.writes, c.atomics, c.peakQueue = 0, 0, 0, 0
	c.store.Reset()
}

// ReadLine fetches size bytes at line and calls done with a pool-owned
// data handle. Ownership of the handle transfers to the callee, which
// must Release it (after at most retaining it into longer-lived
// state); nothing is copied on the way.
func (c *Controller) ReadLine(line mem.Addr, size int, done func(data *mem.Line, ctx any), ctx any) {
	c.enqueue(request{kind: kindRead, line: line, size: size, onRead: done, ctx: ctx})
}

// WriteLine writes payload (data under its mask, if any) at line and
// calls done when the write is globally performed. The controller
// takes ownership of one reference to payload: callers that keep using
// the line (e.g. a write-combining buffer) retain their own reference,
// and copy-on-write isolates the queued bytes if they then mutate it.
func (c *Controller) WriteLine(line mem.Addr, payload *mem.Line, done func(ctx any), ctx any) {
	c.enqueue(request{kind: kindWrite, line: line, payload: payload, onWrite: done, ctx: ctx})
}

// Atomic performs a fetch-add at word address addr and calls done with
// the old value. Atomicity is inherent: the controller services one
// request at a time against the functional store. The controller never
// NACKs; the bool matches the shared backend callback shape so
// adapters stay allocation-free.
func (c *Controller) Atomic(addr mem.Addr, delta uint32, done func(old uint32, nack bool, ctx any), ctx any) {
	c.enqueue(request{kind: kindAtomic, addr: addr, delta: delta, onAtomic: done, ctx: ctx})
}

func (c *Controller) enqueue(r request) {
	c.queue.push(r)
	if n := c.queue.len(); n > c.peakQueue {
		c.peakQueue = n
	}
	if !c.busy {
		c.busy = true
		// The queue was empty, so the service event will pop r itself:
		// its footprint is r's line.
		c.k.ScheduleTagged(0, sim.MakeLineTag(sim.CompMemCtrl, c.unit, uint64(r.line)), c.serviceFn)
	}
}

func (c *Controller) service() {
	if c.queue.len() == 0 {
		c.busy = false
		return
	}
	r := c.queue.pop()
	c.inflight.push(r)
	// Completions drain inflight FIFO and the unit keeps them in
	// schedule order, so this completion pops exactly r.
	c.k.ScheduleTagged(c.cfg.AccessLatency, sim.MakeLineTag(sim.CompMemCtrl, c.unit, uint64(r.line)), c.completeFn)
	period := c.cfg.ServicePeriod
	if period == 0 {
		period = 1
	}
	// The next service event pops whatever heads the queue when it
	// fires. Pushes only append and no other service event is pending
	// for this unit, so a non-empty queue pins that request now; an
	// empty queue means the footprint is unknown (the event may idle or
	// pop a not-yet-enqueued request), so stay conservatively untagged
	// on the line while keeping the unit's FIFO lock.
	tag := sim.MakeUnitTag(sim.CompMemCtrl, c.unit)
	if c.queue.len() > 0 {
		tag = sim.MakeLineTag(sim.CompMemCtrl, c.unit, uint64(c.queue.peek().line))
	}
	c.k.ScheduleTagged(period, tag, c.serviceFn)
}

func (c *Controller) complete() {
	r := c.inflight.pop()
	switch r.kind {
	case kindRead:
		c.reads++
		data := c.pool.Get(r.size)
		c.store.ReadBytes(r.line, data.Data)
		r.onRead(data, r.ctx)
	case kindWrite:
		c.writes++
		p := r.payload
		c.store.WriteBytes(r.line, p.Data, p.Mask())
		p.Release()
		r.onWrite(r.ctx)
	case kindAtomic:
		c.atomics++
		old := c.store.AtomicAdd(r.addr, r.delta)
		r.onAtomic(old, false, r.ctx)
	}
}

// Stats returns service counters: reads, writes, atomics serviced and the
// peak queue depth.
func (c *Controller) Stats() (reads, writes, atomics uint64, peakQueue int) {
	return c.reads, c.writes, c.atomics, c.peakQueue
}

// Snapshot captures the controller's queues, stats and backing store.
// Queued requests are captured by value, retaining payload handles and
// callback ctx objects by identity: both are restored-in-place by
// their owners (the shared line pool's Snapshot/Restore covers payload
// contents and refcounts; message/TBE pools cover the ctx objects), so
// a mid-run snapshot needs the owning system to snapshot its pools at
// the same cut. Quiescent snapshots hold no requests at all. The
// kernel events referencing serviceFn/completeFn must be snapshotted
// alongside by the owner.
type Snapshot struct {
	queue    []request
	inflight []request
	busy     bool

	reads, writes, atomics uint64
	peakQueue              int

	store *mem.StoreSnapshot
}

// Snapshot captures the controller and its backing store.
func (c *Controller) Snapshot() *Snapshot {
	return &Snapshot{
		queue:     c.queue.save(),
		inflight:  c.inflight.save(),
		busy:      c.busy,
		reads:     c.reads,
		writes:    c.writes,
		atomics:   c.atomics,
		peakQueue: c.peakQueue,
		store:     c.store.Snapshot(),
	}
}

// Restore returns the controller and its backing store to the captured
// state. The kernel must be restored in lockstep (the service/complete
// events must match the restored queues), and the owning system must
// restore its line/message pools at the same cut so the retained
// payload and ctx identities carry the captured contents.
func (c *Controller) Restore(s *Snapshot) {
	c.queue.load(s.queue)
	c.inflight.load(s.inflight)
	c.busy = s.busy
	c.reads, c.writes, c.atomics, c.peakQueue = s.reads, s.writes, s.atomics, s.peakQueue
	c.store.Restore(s.store)
}
