package explore

import (
	"testing"
)

// benchConfig is the prune-ratio reference exploration the CI gate
// measures: the wide 2-WF workload on big-set caches at depth 8.
func benchConfig(prune bool) Config {
	return Config{
		SysCfg:  exploreBigSetsSys(),
		TestCfg: exploreWideCfg(1),
		Depth:   8,
		Budget:  100_000,
		Prune:   prune,
	}
}

// BenchmarkExploreDPOR explores the reference config with sleep-set
// pruning and reports schedules/sec (completed schedules checked per
// wall second), the prune ratio against naive enumeration of the same
// config (explored paths / naive schedules — the CI gate requires
// ≤ 0.5), and the violation count (the CI gate requires 0 on the clean
// protocol).
func BenchmarkExploreDPOR(b *testing.B) {
	naive, err := Run(benchConfig(false))
	if err != nil {
		b.Fatal(err)
	}

	var schedules, explored, violations uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(benchConfig(true))
		if err != nil {
			b.Fatal(err)
		}
		schedules += res.Schedules
		explored += res.Schedules + res.PrunedPaths
		if res.Violation != nil {
			violations++
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(schedules)/b.Elapsed().Seconds(), "schedules/sec")
	b.ReportMetric(float64(explored)/float64(uint64(b.N)*naive.Schedules), "prune-ratio")
	b.ReportMetric(float64(violations), "violations")
}

// BenchmarkExploreNaive is the unpruned baseline: full enumeration of
// the same reference config, for throughput trending.
func BenchmarkExploreNaive(b *testing.B) {
	var schedules, violations uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(benchConfig(false))
		if err != nil {
			b.Fatal(err)
		}
		schedules += res.Schedules
		if res.Violation != nil {
			violations++
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(schedules)/b.Elapsed().Seconds(), "schedules/sec")
	b.ReportMetric(float64(violations), "violations")
}
