package explore

import (
	"bytes"
	"testing"

	"drftest/internal/core"
	"drftest/internal/harness"
	"drftest/internal/sim"
	"drftest/internal/viper"
)

// runArtifact runs one full tester pass (optionally under a chooser)
// and returns the serialized replay artifact — the bit-identity
// witness covering ops, final RNG state, failures and the trace tail.
func runArtifact(t *testing.T, sys viper.Config, tc core.Config, ch sim.Chooser) []byte {
	t.Helper()
	b := harness.BuildGPU(sys)
	ring := harness.EnableTrace(b.K, harness.DefaultTraceCapacity)
	tester := core.New(b.K, b.Sys, tc)
	if ch != nil {
		b.K.SetChooser(ch)
	}
	rep := tester.Run()
	data, err := harness.NewGPUArtifact(sys, tc, tester, rep, ring).Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestFIFOChooserFullSystemBitIdentical pins the acceptance criterion
// that the chooser seam is invisible by default: a complete GPU tester
// run under FIFOChooser is bit-identical — same artifact bytes, trace
// included — to the same run with no chooser attached.
func TestFIFOChooserFullSystemBitIdentical(t *testing.T) {
	for _, cfg := range []struct {
		name string
		sys  viper.Config
		tc   core.Config
	}{
		{"tiny", exploreSysCfg(), exploreTestCfg(1)},
		{"wide", exploreBigSetsSys(), exploreWideCfg(2)},
		{"rich", exploreBigSetsSys(), exploreRichCfg(3)},
	} {
		plain := runArtifact(t, cfg.sys, cfg.tc, nil)
		fifo := runArtifact(t, cfg.sys, cfg.tc, sim.FIFOChooser{})
		if !bytes.Equal(plain, fifo) {
			t.Fatalf("%s: FIFO-chooser run diverged from default run", cfg.name)
		}
	}
}
