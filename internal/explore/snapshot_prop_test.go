package explore

import (
	"bytes"
	"testing"

	"drftest/internal/harness"
	"drftest/internal/sim"
	"drftest/internal/viper"
)

// snapChooser is a FIFO chooser that exposes the explorer's access
// pattern for testing: it counts Choose calls and takes a full-cut
// snapshot from inside Choose (before the decision fires) whenever the
// call counter hits a requested point — exactly how engine.Choose
// snapshots branching decision points.
type snapChooser struct {
	r     *run
	calls int
	at    map[int]*cut
}

func (c *snapChooser) Choose(now sim.Tick, cands []sim.Enabled) int {
	c.calls++
	if c.at != nil {
		if _, want := c.at[c.calls]; want {
			c.at[c.calls] = c.r.snapshot()
		}
	}
	return 0
}

// fingerprint runs the current schedule to completion and returns the
// full replay artifact serialized — ops, final RNG state, failures and
// the complete trace tail — as the bit-identity witness.
func fingerprint(t *testing.T, sys viper.Config, r *run) []byte {
	t.Helper()
	r.build.K.RunUntilIdle()
	r.tester.Finish()
	rep := r.tester.Report()
	art := harness.NewGPUArtifact(sys, r.testCfg, r.tester, rep, r.ring)
	data, err := art.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSnapshotForkRewindRefork is the explorer's correctness bedrock:
// snapshots taken at arbitrary decision points mid-run must restore
// bit-identically under repeated fork/rewind/refork, including nested
// restores (inner point, then an outer point that predates it, then a
// re-taken inner point). The witness is the serialized replay artifact
// of the completed run.
func TestSnapshotForkRewindRefork(t *testing.T) {
	const outer, inner = 40, 90

	cfg := Config{SysCfg: exploreBigSetsSys(), TestCfg: exploreWideCfg(7)}
	r, err := newRun(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch := &snapChooser{r: r, at: map[int]*cut{outer: nil, inner: nil}}
	r.build.K.SetChooser(ch)

	r.tester.Start()
	want := fingerprint(t, cfg.SysCfg, r)
	cutOuter, cutInner := ch.at[outer], ch.at[inner]
	if cutOuter == nil || cutInner == nil {
		t.Fatalf("run too short: %d Choose calls, need %d", ch.calls, inner)
	}
	ch.at = nil

	// Rewind to the inner point and re-run: bit-identical.
	r.restore(cutInner)
	if got := fingerprint(t, cfg.SysCfg, r); !bytes.Equal(got, want) {
		t.Fatal("restore(inner) diverged from original run")
	}

	// Repeatedly rewind to the outer point, re-take the inner snapshot
	// en route (refork), finish, then rewind to the re-taken inner cut
	// and finish again — every completion must match the original.
	for round := 0; round < 3; round++ {
		r.restore(cutOuter)
		ch.calls = outer
		ch.at = map[int]*cut{inner: nil}
		if got := fingerprint(t, cfg.SysCfg, r); !bytes.Equal(got, want) {
			t.Fatalf("round %d: restore(outer) diverged from original run", round)
		}
		refork := ch.at[inner]
		if refork == nil {
			t.Fatalf("round %d: inner point not reached after outer restore", round)
		}
		ch.at = nil

		r.restore(refork)
		if got := fingerprint(t, cfg.SysCfg, r); !bytes.Equal(got, want) {
			t.Fatalf("round %d: restore(reforked inner) diverged from original run", round)
		}
	}
}
