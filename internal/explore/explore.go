// Package explore implements bounded exhaustive schedule exploration:
// a DPOR-style stateless model-checking mode over the GPU tester.
//
// Where a campaign (internal/harness) samples one random schedule per
// seed, the explorer systematically enumerates the schedules a single
// seed can take. It drives the kernel's schedule choice point
// (sim.Chooser): whenever more than one event is co-enabled at a tick,
// the explorer snapshots the complete run context — kernel, system,
// tester, coverage, trace ring, the same full cut checkpointed replay
// uses — runs one candidate, and later rewinds the cut to run the
// others, depth-first. Every completed schedule is asserted by the
// streaming axiomatic checker (checker.Stream via core's StreamCheck)
// plus the tester's own autonomous checks, so the result upgrades "no
// violation in N random seeds" to "no violation in any explored
// schedule of this seed up to depth D".
//
// Two classic partial-order reductions keep the enumeration tractable:
//
//   - Independence: two events commute when they belong to different
//     ordering units, both declare a line footprint, and the lines
//     neither match nor collide in any cache set (set conflicts share
//     replacement state). Commuting events need not be explored in
//     both orders.
//   - Sleep sets (Godefroid): after exploring the branch that fires
//     event a before b, sibling branches carry a in their sleep set;
//     a stays asleep while everything executed is independent of it,
//     and a branch about to fire a sleeping event is abandoned — the
//     schedule is a reordering of commuting events only, so some
//     already-explored schedule reaches the same verdict.
//
// Soundness is with respect to verdict-relevant state: the checkers'
// inputs and the protocol state they audit. Diagnostic state (trace
// ring order, latency histograms, the event log) may differ between
// schedules a reduction identifies, which is why anything whose effect
// is not provably confined to its declared footprint — RNG-drawing
// issue rounds, acquire flash-invalidates, release retirement —
// carries no footprint and stays dependent with everything. Untagged
// events additionally keep their deterministic relative order, a
// conservative under-approximation of the schedule space (see
// sim/chooser.go).
package explore

import (
	"drftest/internal/core"
	"drftest/internal/coverage"
	"drftest/internal/harness"
	"drftest/internal/sim"
	"drftest/internal/trace"
	"drftest/internal/viper"
)

// DefaultDepth bounds how many multi-candidate choice points may
// branch along one schedule; beyond it the explorer follows FIFO
// order.
const DefaultDepth = 8

// DefaultBudget bounds the number of schedules (completed plus
// abandoned-as-redundant) one exploration may cost.
const DefaultBudget = 10_000

// Config parameterizes one exploration.
type Config struct {
	// SysCfg and TestCfg describe the run to explore. Exploration is
	// only tractable for small configurations (2–4 wavefronts, few
	// variables, short episodes); StreamCheck is forced on so the
	// axiomatic checker asserts every schedule.
	SysCfg  viper.Config
	TestCfg core.Config

	// Depth bounds branching choice points per schedule (<=0 → DefaultDepth).
	Depth int
	// Budget bounds explored schedules (<=0 → DefaultBudget).
	Budget uint64
	// Prune enables the independence/sleep-set reduction. With it off
	// the explorer enumerates naively — the comparison baseline the CI
	// prune-ratio gate measures against.
	Prune bool

	// TraceDepth is the replay trace-ring depth (<=0 → harness default).
	TraceDepth int
	// ArtifactDir, when set, receives the replay artifact of the first
	// violating schedule (with its `schedule` field populated).
	ArtifactDir string
}

// Violation describes the first violating schedule found.
type Violation struct {
	// Schedule is the choice script that reproduces the violation: one
	// chosen event sequence number per multi-candidate choice point, in
	// execution order (the artifact's `schedule` field).
	Schedule []uint64 `json:"schedule"`
	// Failure is the schedule's first failure (empty Kind when the
	// violation was found by the stream checker alone).
	Failure harness.ArtifactFailure `json:"failure"`
	// StreamViolations counts the axiomatic checker's findings.
	StreamViolations int `json:"streamViolations"`
	// ArtifactPath is where the replay artifact was written ("" when no
	// ArtifactDir was configured or the failure was stream-only).
	ArtifactPath string `json:"artifactPath,omitempty"`
}

// Result reports a completed exploration.
type Result struct {
	// Schedules counts completed (fully executed and checked)
	// schedules; PrunedPaths counts schedules abandoned mid-run as
	// sleep-set-redundant; PrunedBranches counts sibling branches
	// skipped without ever running.
	Schedules      uint64 `json:"schedules"`
	PrunedPaths    uint64 `json:"prunedPaths"`
	PrunedBranches uint64 `json:"prunedBranches"`
	// ChoicePoints counts branching decision points snapshotted.
	ChoicePoints uint64 `json:"choicePoints"`
	// Depth and Budget echo the effective bounds.
	Depth  int    `json:"depth"`
	Budget uint64 `json:"budget"`
	// DepthLimited reports that some multi-candidate choice point fell
	// beyond the depth bound (the guarantee is "up to depth D", not
	// total); BudgetExhausted that enumeration stopped at the budget.
	DepthLimited    bool `json:"depthLimited"`
	BudgetExhausted bool `json:"budgetExhausted"`
	// Violation is the first violating schedule, nil for a clean
	// exploration.
	Violation *Violation `json:"violation,omitempty"`

	// Artifact is the in-memory violating-schedule artifact (also
	// written to ArtifactDir when configured); nil for clean runs and
	// stream-only violations.
	Artifact *harness.Artifact `json:"-"`
}

// Complete reports whether the bounded schedule space was fully
// enumerated (no budget exhaustion and no violation cut it short).
func (r *Result) Complete() bool {
	return !r.BudgetExhausted && r.Violation == nil
}

// cut is one full run-context snapshot — the same composition
// checkpointed replay bisection uses (harness.gpuCheckpoint).
type cut struct {
	kernel *sim.KernelSnapshot
	sys    *viper.SystemSnapshot
	tester *core.TesterSnapshot
	col    *coverage.CollectorSnapshot
	ring   *trace.RingSnapshot
}

// run owns the system under exploration. testCfg is the effective
// tester config (StreamCheck forced on) — violation artifacts embed it
// so replay rebuilds the identical tester.
type run struct {
	build   *harness.GPUBuild
	ring    *trace.Ring
	tester  *core.Tester
	testCfg core.Config
}

func newRun(cfg *Config) (*run, error) {
	depth := cfg.TraceDepth
	if depth <= 0 {
		depth = harness.DefaultTraceCapacity
	}
	r := &run{build: harness.BuildGPU(cfg.SysCfg)}
	r.build.Sys.EnableCheckpointing()
	r.ring = harness.EnableTrace(r.build.K, depth)
	tc := cfg.TestCfg
	tc.StreamCheck = true
	r.testCfg = tc
	r.tester = core.New(r.build.K, r.build.Sys, tc)
	if err := r.tester.CanCheckpoint(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *run) snapshot() *cut {
	return &cut{
		kernel: r.build.K.Snapshot(),
		sys:    r.build.Sys.Snapshot(),
		tester: r.tester.Snapshot(),
		col:    r.build.Col.Snapshot(),
		ring:   r.ring.Snapshot(),
	}
}

func (r *run) restore(c *cut) {
	r.build.K.Restore(c.kernel)
	r.build.Sys.Restore(c.sys)
	r.tester.Restore(c.tester)
	r.build.Col.Restore(c.col)
	r.ring.Restore(c.ring)
}

// Run explores the configured run's schedule space depth-first and
// returns the exploration report. It stops at the first violating
// schedule.
func Run(cfg Config) (*Result, error) {
	if cfg.Depth <= 0 {
		cfg.Depth = DefaultDepth
	}
	if cfg.Budget == 0 {
		cfg.Budget = DefaultBudget
	}
	r, err := newRun(&cfg)
	if err != nil {
		return nil, err
	}
	e := &engine{
		cfg:  &cfg,
		run:  r,
		geom: newDepGeom(cfg.SysCfg),
		live: make(map[uint64]uint64),
		res:  Result{Depth: cfg.Depth, Budget: cfg.Budget},
	}
	r.build.K.SetChooser(e)

	r.tester.Start()
	for {
		r.build.K.RunUntilIdle()
		stop, err := e.scheduleDone()
		if err != nil {
			return nil, err
		}
		if stop || !e.backtrack() {
			break
		}
	}
	r.build.K.SetChooser(nil)
	// Quiesce the stream pipeline's worker goroutine (Report finishes
	// the stream, which joins it) so explorations don't leak. Finish is
	// idempotent, so this is a no-op after a completed final schedule.
	_ = r.tester.Report()
	return &e.res, nil
}
