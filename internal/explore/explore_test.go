package explore

import (
	"testing"

	"drftest/internal/cache"
	"drftest/internal/core"
	"drftest/internal/coverage"
	"drftest/internal/sim"
	"drftest/internal/viper"
)

// exploreSysCfg is the reference exploration system: the smallest
// interesting GPU — 2 CUs over one L2 slice with tiny caches, no
// response jitter (the chooser, not latency randomness, is the source
// of reordering in exhaustive mode).
func exploreSysCfg() viper.Config {
	c := viper.SmallCacheConfig()
	c.NumCUs = 2
	c.NumL2Slices = 1
	c.RespJitter = 0
	return c
}

// exploreTestCfg is the reference exploration workload: 2 wavefronts,
// 2 variables (1 sync + 1 data), short episodes — the acceptance
// criteria's "clean 2-WF/2-variable config".
func exploreTestCfg(seed uint64) core.Config {
	return core.Config{
		Seed:              seed,
		NumWavefronts:     2,
		ThreadsPerWF:      1,
		EpisodesPerThread: 1,
		ActionsPerEpisode: 6,
		NumSyncVars:       1,
		NumDataVars:       1,
		AddressRangeBytes: 64,
		StoreFraction:     0.6,
		AtomicDelta:       1,
		DeadlockThreshold: 20_000,
		CheckPeriod:       5_000,
		LogCapacity:       256,
	}
}

// exploreSpreadCfg spreads more data variables across distinct cache
// lines so disjoint-line traffic actually exists — the workload shape
// where the independence relation has something to commute.
func exploreSpreadCfg(seed uint64) core.Config {
	c := exploreTestCfg(seed)
	c.ThreadsPerWF = 2
	c.ActionsPerEpisode = 8
	c.NumSyncVars = 2
	c.NumDataVars = 8
	c.AddressRangeBytes = 64 * 64
	return c
}

// exploreBigSetsSys widens the caches so distinct lines rarely share a
// set: the geometry where independence-based pruning pays off (the tiny
// 2-set L1 of SmallCacheConfig makes almost every line pair conflict).
func exploreBigSetsSys() viper.Config {
	c := exploreSysCfg()
	c.L1 = cache.Config{SizeBytes: 4096, LineSize: 64, Assoc: 2}
	c.L2 = cache.Config{SizeBytes: 16384, LineSize: 64, Assoc: 2}
	return c
}

// exploreWideCfg is the prune-ratio reference workload: still 2
// wavefronts, but enough disjoint-line data variables that most
// co-enabled event pairs commute.
func exploreWideCfg(seed uint64) core.Config {
	c := exploreTestCfg(seed)
	c.ThreadsPerWF = 2
	c.ActionsPerEpisode = 10
	c.NumSyncVars = 1
	c.NumDataVars = 16
	c.AddressRangeBytes = 16 * 64 * 8
	c.StoreFraction = 0.7
	return c
}

// exploreRichCfg is a denser 2-wavefront workload (2 lanes, 8 episodes)
// whose longer history can leave stale lines in an L1 — the shape the
// StaleAcquire bug needs.
func exploreRichCfg(seed uint64) core.Config {
	c := exploreTestCfg(seed)
	c.ThreadsPerWF = 2
	c.EpisodesPerThread = 8
	c.ActionsPerEpisode = 30
	c.NumSyncVars = 2
	c.NumDataVars = 12
	c.AddressRangeBytes = 2048
	return c
}

// defaultRunFails runs the config once under the default FIFO schedule
// (stream checking on, like the explorer) and reports whether anything
// was flagged.
func defaultRunFails(sys viper.Config, tc core.Config) bool {
	k := sim.NewKernel()
	col := coverage.NewCollector(viper.NewTCPSpec(), viper.NewTCCSpec())
	s := viper.NewSystem(k, sys, col)
	tc.StreamCheck = true
	tester := core.New(k, s, tc)
	rep := tester.Run()
	return len(rep.Failures) > 0 || len(rep.StreamViolations) > 0
}

// TestExploreCleanReference is the headline acceptance check: on the
// clean 2-WF/2-variable reference config the explorer enumerates the
// full bounded schedule space and reports no violation in any schedule
// up to the depth bound.
func TestExploreCleanReference(t *testing.T) {
	res, err := Run(Config{
		SysCfg:  exploreSysCfg(),
		TestCfg: exploreTestCfg(1),
		Depth:   6,
		Budget:  100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("clean reference config produced a violation: %+v", res.Violation)
	}
	if !res.Complete() {
		t.Fatalf("bounded space not fully enumerated: %+v", res)
	}
	// Every branching point on this config is binary and the workload
	// has more than Depth of them, so the bounded space is exactly
	// 2^Depth schedules. Pinning the count keeps enumeration
	// deterministic across refactors.
	if want := uint64(1) << 6; res.Schedules != want {
		t.Fatalf("expected %d schedules at depth 6, got %d", want, res.Schedules)
	}
	if res.ChoicePoints == 0 {
		t.Fatal("no branching choice points on a 2-WF config")
	}
	t.Logf("clean: %d schedules, %d choice points, depth-limited=%v",
		res.Schedules, res.ChoicePoints, res.DepthLimited)
}

// TestExplorePruneRatio pins the partial-order reduction's value: on
// the reference wide config, DPOR-style pruning must explore at most
// half the schedules naive enumeration does, and both must agree the
// protocol is clean. This is the invariant the CI benchmark gate
// enforces (scripts/bench.sh).
func TestExplorePruneRatio(t *testing.T) {
	base := Config{
		SysCfg:  exploreBigSetsSys(),
		TestCfg: exploreWideCfg(1),
		Depth:   8,
		Budget:  100_000,
	}

	naiveCfg := base
	res, err := Run(naiveCfg)
	if err != nil {
		t.Fatal(err)
	}
	pruneCfg := base
	pruneCfg.Prune = true
	pres, err := Run(pruneCfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*Result{"naive": res, "pruned": pres} {
		if r.Violation != nil {
			t.Fatalf("%s exploration flagged a clean protocol: %+v", name, r.Violation)
		}
		if !r.Complete() {
			t.Fatalf("%s exploration incomplete: %+v", name, r)
		}
	}
	explored := pres.Schedules + pres.PrunedPaths
	t.Logf("naive %d schedules; pruned %d (%d completed + %d abandoned), ratio %.3f",
		res.Schedules, explored, pres.Schedules, pres.PrunedPaths,
		float64(explored)/float64(res.Schedules))
	if explored*2 > res.Schedules {
		t.Fatalf("pruning too weak: explored %d of %d naive schedules (> 0.5x)",
			explored, res.Schedules)
	}
}

// TestExploreBudget pins budget accounting: enumeration stops exactly
// at the budget, counting completed and abandoned schedules alike.
func TestExploreBudget(t *testing.T) {
	res, err := Run(Config{
		SysCfg:  exploreSysCfg(),
		TestCfg: exploreTestCfg(1),
		Depth:   10,
		Budget:  10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.BudgetExhausted {
		t.Fatalf("expected budget exhaustion: %+v", res)
	}
	if got := res.Schedules + res.PrunedPaths; got != 10 {
		t.Fatalf("expected exactly 10 explored paths at budget 10, got %d", got)
	}
	if res.Complete() {
		t.Fatal("budget-exhausted exploration must not report completeness")
	}
}

// TestExploreDeterministic pins that exploration itself is
// reproducible: two explorations of the same config produce identical
// results.
func TestExploreDeterministic(t *testing.T) {
	cfg := Config{
		SysCfg:  exploreBigSetsSys(),
		TestCfg: exploreWideCfg(3),
		Depth:   8,
		Budget:  100_000,
		Prune:   true,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("explorations diverged:\n  first:  %+v\n  second: %+v", a, b)
	}
}
