package explore

import (
	"testing"

	"drftest/internal/audit"
)

// TestStateFieldAudits pins the explorer's state structs: a new field
// on the DFS engine, its stack nodes, or the full-cut snapshot must
// declare how backtracking treats it — restored by the cut, rebuilt per
// branch, or accumulated across the whole exploration — before it can
// land.
func TestStateFieldAudits(t *testing.T) {
	audit.Fields(t, cut{}, map[string]string{
		"kernel": "cut: kernel event-queue snapshot, restored verbatim on backtrack",
		"sys":    "cut: full coherence-stack snapshot, restored verbatim on backtrack",
		"tester": "cut: tester + stream-checker snapshot, restored verbatim on backtrack",
		"col":    "cut: coverage-collector snapshot, restored verbatim on backtrack",
		"ring":   "cut: trace-ring snapshot, restored verbatim on backtrack",
	})
	audit.Fields(t, node{}, map[string]string{
		"cut":       "branch: snapshot taken inside Choose before the decision fired; restored to re-present the identical candidate set",
		"cands":     "branch: viable candidates at the decision, fixed once taken",
		"next":      "branch: next sibling index, advanced by resumeChoose",
		"sleep":     "branch: sleep set as it stood at the decision (Godefroid's Z), cloned into each sibling",
		"scriptLen": "branch: script length at the decision, truncation point on backtrack",
	})
	audit.Fields(t, engine{}, map[string]string{
		"cfg":     "config: exploration parameters, fixed for the run",
		"run":     "config: system under exploration; its state is carried by cuts, not the engine",
		"geom":    "config: cache geometry for the independence relation, fixed at construction",
		"stack":   "dfs: open decision points; pushed by Choose, popped by backtrack",
		"script":  "dfs: current path's choice script, truncated to node.scriptLen on backtrack",
		"live":    "dfs: current path's sleep set; rebuilt from node.sleep on resume, mutated by pick",
		"resume":  "dfs: armed by backtrack, consumed by the next Choose call",
		"aborted": "dfs: set when a path is abandoned as sleep-set-redundant, cleared by scheduleDone",
		"res":     "report: accumulates across the whole exploration, never rewound",
	})
	audit.Fields(t, run{}, map[string]string{
		"build":   "config: kernel + system + collector under exploration",
		"ring":    "config: replay trace ring (snapshotted via cuts)",
		"tester":  "config: tester under exploration (snapshotted via cuts)",
		"testCfg": "config: effective tester config (StreamCheck forced on), embedded in violation artifacts",
	})
}
