package explore

import (
	"drftest/internal/harness"
	"drftest/internal/sim"
	"drftest/internal/viper"
)

// depGeom holds the cache geometry the independence relation needs:
// two line-footprinted events only commute when their lines are
// distinct AND map to different sets at every cache level — same-set
// lines interact through replacement state (victim choice, LRU), so
// their order is observable protocol state.
type depGeom struct {
	lineSize uint64
	l1Sets   uint64
	l2Sets   uint64
}

func newDepGeom(c viper.Config) depGeom {
	return depGeom{
		lineSize: uint64(c.L1.LineSize),
		l1Sets:   uint64(c.L1.Sets()),
		l2Sets:   uint64(c.L2.Sets()),
	}
}

// conflict reports whether two line addresses can touch shared cache
// state.
func (g depGeom) conflict(la, lb uint64) bool {
	if la == lb {
		return true
	}
	a, b := la/g.lineSize, lb/g.lineSize
	return a%g.l1Sets == b%g.l1Sets || a%g.l2Sets == b%g.l2Sets
}

// dependent is the explorer's dependence relation over event tags.
// Everything is dependent unless both events declare a line footprint,
// belong to different ordering units, and their lines cannot conflict
// — the conservative direction is always "dependent", which costs
// exploration work but never soundness.
func (e *engine) dependent(aTag, bTag uint64) bool {
	if aTag == 0 || bTag == 0 {
		return true
	}
	if sim.TagUnit(aTag) == sim.TagUnit(bTag) {
		return true
	}
	la, aok := sim.TagLine(aTag)
	lb, bok := sim.TagLine(bTag)
	if !aok || !bok {
		return true
	}
	return e.geom.conflict(la, lb)
}

// node is one open branching decision point on the DFS stack.
type node struct {
	// cut is the full run-context snapshot taken from inside Choose,
	// before the decision fired: restoring it re-presents the identical
	// candidate set.
	cut *cut
	// cands are the viable (not-asleep) candidates; next indexes the
	// one the resumed Choose call takes.
	cands []sim.Enabled
	next  int
	// sleep is the live sleep set as it stood at this decision (the Z
	// of Godefroid's algorithm), seq → tag.
	sleep map[uint64]uint64
	// scriptLen is the schedule script's length at this decision, for
	// truncation on backtrack.
	scriptLen int
}

// engine is the DFS explorer; it implements sim.Chooser.
type engine struct {
	cfg  *Config
	run  *run
	geom depGeom

	stack  []*node
	script []uint64
	// live is the current path's sleep set: events that an
	// already-explored sibling branch fired first and nothing dependent
	// has executed since, seq → tag.
	live map[uint64]uint64
	// resume marks that the next Choose call re-presents the stack
	// top's decision (the cut was just restored) and must take its next
	// candidate.
	resume  bool
	aborted bool
	res     Result
}

// Choose implements sim.Chooser: it is called once per fired event and
// is where branching decision points are snapshotted.
func (e *engine) Choose(now sim.Tick, cands []sim.Enabled) int {
	if e.resume {
		return e.resumeChoose(cands)
	}

	viable := cands
	if e.cfg.Prune && len(e.live) > 0 {
		viable = viable[:0:0]
		for _, c := range cands {
			if _, asleep := e.live[c.Seq]; !asleep {
				viable = append(viable, c)
			}
		}
		if len(viable) == 0 {
			// Every candidate is asleep: any continuation is a
			// commuting reordering of an explored schedule. Abandon the
			// path.
			e.aborted = true
			e.res.PrunedPaths++
			e.run.build.K.Stop()
			return 0
		}
		e.res.PrunedBranches += uint64(len(cands) - len(viable))
	}

	if len(viable) > 1 && len(e.stack) < e.cfg.Depth {
		n := &node{
			cands:     append([]sim.Enabled(nil), viable...),
			next:      1,
			sleep:     cloneSleep(e.live),
			scriptLen: len(e.script),
		}
		n.cut = e.run.snapshot()
		e.stack = append(e.stack, n)
		e.res.ChoicePoints++
	} else if len(viable) > 1 {
		e.res.DepthLimited = true
	}

	return e.pick(cands, viable[0])
}

// resumeChoose continues the stack top's decision with its next
// unexplored candidate: the sibling branch. Per Godefroid, the branch
// firing candidate i starts with sleep set
// {s ∈ Z ∪ {cands[0..i-1]} : s independent of cands[i]}.
func (e *engine) resumeChoose(cands []sim.Enabled) int {
	e.resume = false
	n := e.stack[len(e.stack)-1]
	chosen := n.cands[n.next]
	n.next++

	e.live = make(map[uint64]uint64, len(n.sleep)+n.next)
	for seq, tag := range n.sleep {
		e.live[seq] = tag
	}
	for i := 0; i < n.next-1; i++ {
		e.live[n.cands[i].Seq] = n.cands[i].Tag
	}
	return e.pick(cands, chosen)
}

// pick records and returns the chosen candidate's index, waking every
// sleeping event that depends on it.
func (e *engine) pick(cands []sim.Enabled, chosen sim.Enabled) int {
	for seq, tag := range e.live {
		if seq == chosen.Seq || e.dependent(tag, chosen.Tag) {
			delete(e.live, seq)
		}
	}
	if len(cands) > 1 {
		e.script = append(e.script, chosen.Seq)
	}
	for i := range cands {
		if cands[i].Seq == chosen.Seq {
			return i
		}
	}
	panic("explore: chosen candidate vanished from the candidate set")
}

func cloneSleep(m map[uint64]uint64) map[uint64]uint64 {
	out := make(map[uint64]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// scheduleDone accounts for the schedule that just ended (completed or
// abandoned) and reports whether exploration must stop (violation
// found or budget exhausted).
func (e *engine) scheduleDone() (stop bool, err error) {
	if e.aborted {
		// Sleep-set-redundant path: already counted, no verdict.
		e.aborted = false
	} else {
		e.res.Schedules++
		e.run.tester.Finish()
		rep := e.run.tester.Report()
		if len(rep.Failures) > 0 || len(rep.StreamViolations) > 0 {
			v := &Violation{
				Schedule:         append([]uint64(nil), e.script...),
				StreamViolations: len(rep.StreamViolations),
			}
			if len(rep.Failures) > 0 {
				art := harness.NewGPUArtifact(e.cfg.SysCfg, e.run.testCfg, e.run.tester, rep, e.run.ring)
				art.Schedule = v.Schedule
				v.Failure = art.FirstFailure()
				e.res.Artifact = art
				if e.cfg.ArtifactDir != "" {
					path, werr := art.Write(e.cfg.ArtifactDir)
					if werr != nil {
						return true, werr
					}
					v.ArtifactPath = path
				}
			}
			e.res.Violation = v
			return true, nil
		}
	}
	if e.res.Schedules+e.res.PrunedPaths >= e.cfg.Budget {
		e.res.BudgetExhausted = true
		return true, nil
	}
	return false, nil
}

// backtrack rewinds to the deepest decision point with an unexplored
// candidate and arms the resumed Choose. It returns false when the
// stack is exhausted (the bounded space is fully enumerated).
func (e *engine) backtrack() bool {
	for len(e.stack) > 0 {
		n := e.stack[len(e.stack)-1]
		if n.next < len(n.cands) {
			e.run.restore(n.cut)
			e.script = e.script[:n.scriptLen]
			e.resume = true
			return true
		}
		e.stack[len(e.stack)-1] = nil
		e.stack = e.stack[:len(e.stack)-1]
	}
	return false
}
