package explore

import (
	"testing"

	"drftest/internal/core"
	"drftest/internal/harness"
	"drftest/internal/viper"
)

// TestExploreFindsInjectedBugs asserts the satellite acceptance
// criterion: each injected protocol bug is found at a minimal
// 2-wavefront configuration within the depth bound, and the emitted
// schedule artifact replays to the same violation bit-identically.
func TestExploreFindsInjectedBugs(t *testing.T) {
	cases := []struct {
		name string
		bugs viper.BugSet
		sys  viper.Config
		tc   core.Config
	}{
		// LostWriteRace needs two false-sharing writes racing on one
		// line: the spread config's 2 lanes per WF provide them.
		{"lostwrite", viper.BugSet{LostWriteRace: true}, exploreSysCfg(), exploreSpreadCfg(3)},
		// NonAtomicRMW surfaces on the tiniest config: both WFs
		// fetch-add the single sync variable.
		{"nonatomic", viper.BugSet{NonAtomicRMW: true}, exploreSysCfg(), exploreTestCfg(1)},
		// A dropped write-back ack deadlocks the issuing thread; every
		// 2nd ack dropped so even a 6-action episode hits one.
		{"dropack", viper.BugSet{DropWBAckEvery: 2}, exploreSysCfg(), exploreTestCfg(1)},
		// StaleAcquire needs an episode to re-read a line its CU cached
		// before the acquire — the richer 2-lane, 8-episode history.
		{"staleacquire", viper.BugSet{StaleAcquire: true}, exploreBigSetsSys(), exploreRichCfg(2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys := tc.sys
			sys.Bugs = tc.bugs
			dir := t.TempDir()
			res, err := Run(Config{
				SysCfg:      sys,
				TestCfg:     tc.tc,
				Depth:       10,
				Budget:      5_000,
				Prune:       true,
				ArtifactDir: dir,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation == nil {
				t.Fatalf("bug %s not found within depth bound: %+v", tc.name, res)
			}
			if res.Violation.ArtifactPath == "" {
				t.Fatalf("violation found but no artifact written: %+v", res.Violation)
			}
			t.Logf("%s: violation after %d schedules (+%d pruned), schedule length %d",
				tc.name, res.Schedules, res.PrunedPaths, len(res.Violation.Schedule))

			// The written artifact must replay to the same violation
			// bit-identically, with the recorded schedule pinned.
			art, err := harness.LoadArtifact(res.Violation.ArtifactPath)
			if err != nil {
				t.Fatal(err)
			}
			if len(art.Schedule) != len(res.Violation.Schedule) {
				t.Fatalf("artifact schedule length %d != violation schedule length %d",
					len(art.Schedule), len(res.Violation.Schedule))
			}
			replayed, err := harness.Replay(art)
			if err != nil {
				t.Fatal(err)
			}
			if err := harness.CheckReproduced(art, replayed); err != nil {
				t.Fatalf("schedule artifact did not reproduce: %v", err)
			}
		})
	}
}

// TestExploreBeatsRandomSchedule is the mode's raison d'être: a seed
// whose default (random-program, FIFO-schedule) run is clean, but where
// systematic schedule enumeration of that same program exposes the
// injected StaleAcquire bug.
func TestExploreBeatsRandomSchedule(t *testing.T) {
	sys := exploreBigSetsSys()
	sys.Bugs = viper.BugSet{StaleAcquire: true}
	tc := exploreRichCfg(16)
	if defaultRunFails(sys, tc) {
		t.Fatal("expected the default schedule of seed 16 to be clean; workload generation changed")
	}
	res, err := Run(Config{
		SysCfg:  sys,
		TestCfg: tc,
		Depth:   14,
		Budget:  3_000,
		Prune:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatalf("exploration did not expose the bug the random schedule missed: %+v", res)
	}
	t.Logf("default schedule clean; violation on explored schedule %d (+%d pruned), schedule length %d",
		res.Schedules, res.PrunedPaths, len(res.Violation.Schedule))
}
