// Package gpucore models the detailed GPU compute-unit pipeline that
// application-based testing must simulate and the DRF tester bypasses.
//
// The paper's >50× tester speedup comes precisely from this layer: a
// real GPU model fetches, decodes and issues every instruction of the
// application — most of which are ALU work that contributes nothing to
// coherence coverage — whereas the tester injects memory operations
// straight into the L1 sequencers. Each instruction here costs a chain
// of pipeline events (fetch → decode → execute), so application runs
// burn simulation work in proportion to their instruction count, just
// like gem5's GPU model does.
package gpucore

import (
	"drftest/internal/mem"
	"drftest/internal/sim"
	"drftest/internal/viper"
)

// Config sets the pipeline stage latencies in ticks.
type Config struct {
	FetchLatency   sim.Tick
	DecodeLatency  sim.Tick
	ExecuteLatency sim.Tick
}

// DefaultConfig returns a simple 3-stage, 1-tick-per-stage pipeline.
func DefaultConfig() Config {
	return Config{FetchLatency: 1, DecodeLatency: 1, ExecuteLatency: 1}
}

// MemOp is one SIMT memory instruction: every lane of the wavefront
// issues its request in lockstep.
type MemOp struct {
	Reqs []*mem.Request
}

// Program feeds a wavefront its instruction stream.
type Program interface {
	// Next returns the number of ALU instructions to execute before
	// the next memory instruction, the memory instruction itself, and
	// done=true when the wavefront has finished (remaining fields are
	// then ignored).
	Next() (aluOps int, op MemOp, done bool)
}

type wfCtx struct {
	id       int
	prog     Program
	pending  int
	finished bool
}

// Core is one CU's pipeline front-end driving any number of wavefronts
// over the CU's sequencer.
type Core struct {
	k   *sim.Kernel
	cfg Config
	seq *viper.Sequencer
	wfs []*wfCtx

	// onWFDone is called once per wavefront completion.
	onWFDone func()

	instructions uint64
	memOps       uint64
	aluOps       uint64
}

// New builds a core over seq. The core registers itself as the
// sequencer's client.
func New(k *sim.Kernel, cfg Config, seq *viper.Sequencer, onWFDone func()) *Core {
	c := &Core{k: k, cfg: cfg, seq: seq, onWFDone: onWFDone}
	seq.SetClient(c)
	return c
}

// AddWavefront registers a wavefront running prog. The wavefront's ID
// must be unique within the core and is used to route responses, so
// every request the program emits must carry it in WFID... the core
// assigns it here.
func (c *Core) AddWavefront(prog Program) int {
	wf := &wfCtx{id: len(c.wfs), prog: prog}
	c.wfs = append(c.wfs, wf)
	return wf.id
}

// Start begins executing every wavefront.
func (c *Core) Start() {
	for _, wf := range c.wfs {
		wf := wf
		c.k.Schedule(0, func() { c.fetch(wf) })
	}
}

// Stats returns (instructions, memOps, aluOps) executed.
func (c *Core) Stats() (instructions, memOps, aluOps uint64) {
	return c.instructions, c.memOps, c.aluOps
}

// fetch begins the next instruction group for wf.
func (c *Core) fetch(wf *wfCtx) {
	if c.k.Stopped() || wf.finished {
		return
	}
	alu, op, done := wf.prog.Next()
	if done {
		wf.finished = true
		if c.onWFDone != nil {
			c.onWFDone()
		}
		return
	}
	c.runALU(wf, alu, op)
}

// runALU pushes alu instructions through the pipeline one at a time —
// this event chain is the "detailed model" cost — then issues the
// memory instruction.
func (c *Core) runALU(wf *wfCtx, alu int, op MemOp) {
	if alu <= 0 {
		c.issueMem(wf, op)
		return
	}
	c.instructions++
	c.aluOps++
	c.k.Schedule(c.cfg.FetchLatency, func() {
		c.k.Schedule(c.cfg.DecodeLatency, func() {
			c.k.Schedule(c.cfg.ExecuteLatency, func() {
				c.runALU(wf, alu-1, op)
			})
		})
	})
}

func (c *Core) issueMem(wf *wfCtx, op MemOp) {
	c.instructions++
	c.memOps++
	wf.pending = len(op.Reqs)
	if wf.pending == 0 {
		c.k.Schedule(1, func() { c.fetch(wf) })
		return
	}
	// The memory instruction also traverses the pipeline before its
	// lanes reach the sequencer.
	lat := c.cfg.FetchLatency + c.cfg.DecodeLatency + c.cfg.ExecuteLatency
	c.k.Schedule(lat, func() {
		for _, req := range op.Reqs {
			req.WFID = wf.id
			c.seq.Issue(req)
		}
	})
}

// HandleResponse implements mem.Requestor: lockstep — the wavefront
// resumes when every lane's request completed.
func (c *Core) HandleResponse(resp *mem.Response) {
	wf := c.wfs[resp.Req.WFID]
	wf.pending--
	if wf.pending == 0 {
		c.k.Schedule(1, func() { c.fetch(wf) })
	}
}
