// Package gpucore models the detailed GPU compute-unit pipeline that
// application-based testing must simulate and the DRF tester bypasses.
//
// The paper's >50× tester speedup comes precisely from this layer: a
// real GPU model fetches, decodes and issues every instruction of the
// application — most of which are ALU work that contributes nothing to
// coherence coverage — whereas the tester injects memory operations
// straight into the L1 sequencers. Each instruction here costs a chain
// of pipeline events (fetch → decode → execute), so application runs
// burn simulation work in proportion to their instruction count, just
// like gem5's GPU model does.
package gpucore

import (
	"drftest/internal/mem"
	"drftest/internal/sim"
	"drftest/internal/viper"
)

// Config sets the pipeline stage latencies in ticks.
type Config struct {
	FetchLatency   sim.Tick
	DecodeLatency  sim.Tick
	ExecuteLatency sim.Tick
}

// DefaultConfig returns a simple 3-stage, 1-tick-per-stage pipeline.
func DefaultConfig() Config {
	return Config{FetchLatency: 1, DecodeLatency: 1, ExecuteLatency: 1}
}

// MemOp is one SIMT memory instruction: every lane of the wavefront
// issues its request in lockstep.
type MemOp struct {
	Reqs []*mem.Request
}

// Program feeds a wavefront its instruction stream.
type Program interface {
	// Next returns the number of ALU instructions to execute before
	// the next memory instruction, the memory instruction itself, and
	// done=true when the wavefront has finished (remaining fields are
	// then ignored).
	//
	// Borrow contract: the returned MemOp's Reqs slice and the Request
	// structs it points to remain the program's property. The core
	// reads them only between this call and the completion of the last
	// lane's response, so a program may reuse one lane-indexed slice
	// and its Request slots across calls (each slot must keep a
	// lane-stable ThreadID: write-through acks that are still in
	// flight after the wavefront resumes are routed by ThreadID).
	Next() (aluOps int, op MemOp, done bool)
}

type wfCtx struct {
	id       int
	prog     Program
	pending  int
	finished bool

	// In-flight instruction group: alu instructions still to execute
	// before op issues, and the pipeline stage of the current one.
	alu   int
	op    MemOp
	stage uint8

	// Pre-bound continuations, created once per wavefront so the
	// per-instruction event chain schedules no new closures.
	fetchFn func()
	stageFn func()
	issueFn func()
}

// Core is one CU's pipeline front-end driving any number of wavefronts
// over the CU's sequencer.
type Core struct {
	k   *sim.Kernel
	cfg Config
	seq *viper.Sequencer
	wfs []*wfCtx

	// onWFDone is called once per wavefront completion.
	onWFDone func()

	instructions uint64
	memOps       uint64
	aluOps       uint64
}

// New builds a core over seq. The core registers itself as the
// sequencer's client.
func New(k *sim.Kernel, cfg Config, seq *viper.Sequencer, onWFDone func()) *Core {
	c := &Core{k: k, cfg: cfg, seq: seq, onWFDone: onWFDone}
	seq.SetClient(c)
	return c
}

// AddWavefront registers a wavefront running prog. The wavefront's ID
// must be unique within the core and is used to route responses, so
// every request the program emits must carry it in WFID... the core
// assigns it here.
func (c *Core) AddWavefront(prog Program) int {
	wf := &wfCtx{id: len(c.wfs), prog: prog}
	wf.fetchFn = func() { c.fetch(wf) }
	wf.stageFn = func() { c.stepALU(wf) }
	wf.issueFn = func() { c.issueLanes(wf) }
	c.wfs = append(c.wfs, wf)
	return wf.id
}

// Start begins executing every wavefront.
func (c *Core) Start() {
	for _, wf := range c.wfs {
		c.k.Schedule(0, wf.fetchFn)
	}
}

// Stats returns (instructions, memOps, aluOps) executed.
func (c *Core) Stats() (instructions, memOps, aluOps uint64) {
	return c.instructions, c.memOps, c.aluOps
}

// fetch begins the next instruction group for wf.
func (c *Core) fetch(wf *wfCtx) {
	if c.k.Stopped() || wf.finished {
		return
	}
	alu, op, done := wf.prog.Next()
	if done {
		wf.finished = true
		if c.onWFDone != nil {
			c.onWFDone()
		}
		return
	}
	wf.alu, wf.op = alu, op
	c.advance(wf)
}

// advance starts the next ALU instruction of the in-flight group —
// this event chain is the "detailed model" cost — or, once the group
// is drained, issues its memory instruction.
func (c *Core) advance(wf *wfCtx) {
	if wf.alu <= 0 {
		c.issueMem(wf)
		return
	}
	c.instructions++
	c.aluOps++
	wf.stage = 0
	c.k.Schedule(c.cfg.FetchLatency, wf.stageFn)
}

// stepALU walks one ALU instruction through fetch → decode → execute,
// one event per stage.
func (c *Core) stepALU(wf *wfCtx) {
	switch wf.stage {
	case 0:
		wf.stage = 1
		c.k.Schedule(c.cfg.DecodeLatency, wf.stageFn)
	case 1:
		wf.stage = 2
		c.k.Schedule(c.cfg.ExecuteLatency, wf.stageFn)
	default:
		wf.alu--
		c.advance(wf)
	}
}

func (c *Core) issueMem(wf *wfCtx) {
	c.instructions++
	c.memOps++
	wf.pending = len(wf.op.Reqs)
	if wf.pending == 0 {
		c.k.Schedule(1, wf.fetchFn)
		return
	}
	// The memory instruction also traverses the pipeline before its
	// lanes reach the sequencer.
	lat := c.cfg.FetchLatency + c.cfg.DecodeLatency + c.cfg.ExecuteLatency
	c.k.Schedule(lat, wf.issueFn)
}

func (c *Core) issueLanes(wf *wfCtx) {
	for _, req := range wf.op.Reqs {
		req.WFID = wf.id
		c.seq.Issue(req)
	}
}

// HandleResponse implements mem.Requestor: lockstep — the wavefront
// resumes when every lane's request completed.
func (c *Core) HandleResponse(resp *mem.Response) {
	wf := c.wfs[resp.Req.WFID]
	wf.pending--
	if wf.pending == 0 {
		c.k.Schedule(1, wf.fetchFn)
	}
}
