package gpucore

import (
	"testing"

	"drftest/internal/mem"
	"drftest/internal/sim"
	"drftest/internal/viper"
)

// scriptProgram emits n memory ops with fixed ALU padding.
type scriptProgram struct {
	n, alu  int
	lanes   int
	nextID  *uint64
	issued  int
	addrGen func(op, lane int) mem.Addr
}

func (p *scriptProgram) Next() (int, MemOp, bool) {
	if p.issued >= p.n {
		return 0, MemOp{}, true
	}
	op := MemOp{Reqs: make([]*mem.Request, p.lanes)}
	for l := range op.Reqs {
		*p.nextID++
		op.Reqs[l] = &mem.Request{ID: *p.nextID, Op: mem.OpLoad, Addr: p.addrGen(p.issued, l), ThreadID: l}
	}
	p.issued++
	return p.alu, op, false
}

func build(t *testing.T) (*sim.Kernel, *viper.System) {
	t.Helper()
	k := sim.NewKernel()
	cfg := viper.SmallCacheConfig()
	cfg.NumCUs = 1
	return k, viper.NewSystem(k, cfg, nil)
}

func TestCoreRunsProgramToCompletion(t *testing.T) {
	k, sys := build(t)
	var id uint64
	done := 0
	core := New(k, DefaultConfig(), sys.Seqs[0], func() { done++ })
	prog := &scriptProgram{n: 10, alu: 5, lanes: 4, nextID: &id,
		addrGen: func(op, lane int) mem.Addr { return mem.Addr(op*64 + lane*4) }}
	core.AddWavefront(prog)
	core.Start()
	k.RunUntilIdle()
	if done != 1 {
		t.Fatalf("wavefront completions = %d", done)
	}
	instr, memOps, aluOps := core.Stats()
	if memOps != 10 || aluOps == 0 || instr != memOps+aluOps {
		t.Fatalf("stats instr=%d mem=%d alu=%d", instr, memOps, aluOps)
	}
}

// TestALUWorkCostsEvents: the detailed model must burn kernel events
// proportional to ALU count — the basis of the tester's speed edge.
func TestALUWorkCostsEvents(t *testing.T) {
	run := func(alu int) uint64 {
		k, sys := build(t)
		var id uint64
		core := New(k, DefaultConfig(), sys.Seqs[0], nil)
		core.AddWavefront(&scriptProgram{n: 20, alu: alu, lanes: 2, nextID: &id,
			addrGen: func(op, lane int) mem.Addr { return mem.Addr(op*64 + lane*4) }})
		core.Start()
		k.RunUntilIdle()
		return k.Executed()
	}
	lean, fat := run(0), run(40)
	if fat < lean+20*40*2 {
		t.Fatalf("ALU work too cheap: %d events with alu=0, %d with alu=40", lean, fat)
	}
}

// TestLockstep: a wavefront must not start its next memory op until
// every lane of the previous one completed.
func TestLockstep(t *testing.T) {
	k, sys := build(t)
	var id uint64
	core := New(k, DefaultConfig(), sys.Seqs[0], nil)
	// Lane 0 streams fresh lines (slow misses), lane 1 hammers one
	// line (fast hits): with lockstep both lanes advance together.
	prog := &scriptProgram{n: 8, alu: 0, lanes: 2, nextID: &id,
		addrGen: func(op, lane int) mem.Addr {
			if lane == 0 {
				return mem.Addr(0x10000 + op*64)
			}
			return 0x40
		}}
	core.AddWavefront(prog)
	core.Start()
	k.RunUntilIdle()
	_, memOps, _ := core.Stats()
	if memOps != 8 {
		t.Fatalf("memOps=%d", memOps)
	}
	if sys.OutstandingRequests() != 0 {
		t.Fatal("requests left outstanding")
	}
}

func TestMultipleWavefrontsInterleave(t *testing.T) {
	k, sys := build(t)
	var id uint64
	done := 0
	core := New(k, DefaultConfig(), sys.Seqs[0], func() { done++ })
	for wf := 0; wf < 4; wf++ {
		wf := wf
		core.AddWavefront(&scriptProgram{n: 6, alu: 3, lanes: 2, nextID: &id,
			addrGen: func(op, lane int) mem.Addr { return mem.Addr(wf*0x1000 + op*64 + lane*4) }})
	}
	core.Start()
	k.RunUntilIdle()
	if done != 4 {
		t.Fatalf("completed %d of 4 wavefronts", done)
	}
}
