package protocol

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file gives transition tables a textual form, the counterpart to
// Ruby's SLICC: protocol tables can be written, reviewed and versioned
// as text and loaded at runtime, instead of living only in Go code.
// The dynamic semantics (actions) still live in controllers; the table
// is the contract the coverage machinery, renderers and documentation
// all share.
//
// Grammar (line-oriented; '#' starts a comment):
//
//	protocol <name>
//	states   <S0> <S1> ...
//	events   <E0> <E1> ...
//	<state> <event> -> <next> [label...]   # defined transition
//	<state> <event> stall                  # stall cell
//
// Unlisted (state, event) pairs are Undefined, as in SLICC.

// ParseSpec reads a Spec from its textual form.
func ParseSpec(r io.Reader) (*Spec, error) {
	sc := bufio.NewScanner(r)
	var spec *Spec
	var name string
	var states, events []string
	stateIdx := map[string]int{}
	eventIdx := map[string]int{}
	lineNo := 0

	ensureSpec := func() error {
		if spec != nil {
			return nil
		}
		if name == "" || len(states) == 0 || len(events) == 0 {
			return fmt.Errorf("line %d: transitions before protocol/states/events headers", lineNo)
		}
		spec = NewSpec(name, states, events)
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "protocol":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: protocol wants exactly one name", lineNo)
			}
			name = fields[1]
		case "states":
			states = fields[1:]
			for i, s := range states {
				if _, dup := stateIdx[s]; dup {
					return nil, fmt.Errorf("line %d: duplicate state %q", lineNo, s)
				}
				stateIdx[s] = i
			}
		case "events":
			events = fields[1:]
			for i, e := range events {
				if _, dup := eventIdx[e]; dup {
					return nil, fmt.Errorf("line %d: duplicate event %q", lineNo, e)
				}
				eventIdx[e] = i
			}
		default:
			if err := ensureSpec(); err != nil {
				return nil, err
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("line %d: want '<state> <event> -> <next> [label]' or '<state> <event> stall'", lineNo)
			}
			st, ok := stateIdx[fields[0]]
			if !ok {
				return nil, fmt.Errorf("line %d: unknown state %q", lineNo, fields[0])
			}
			ev, ok := eventIdx[fields[1]]
			if !ok {
				return nil, fmt.Errorf("line %d: unknown event %q", lineNo, fields[1])
			}
			if spec.Cell(st, ev).Kind != Undefined {
				return nil, fmt.Errorf("line %d: cell (%s, %s) defined twice", lineNo, fields[0], fields[1])
			}
			if fields[2] == "stall" {
				if len(fields) != 3 {
					return nil, fmt.Errorf("line %d: stall takes no arguments", lineNo)
				}
				spec.StallOn(st, ev)
				continue
			}
			if fields[2] != "->" || len(fields) < 4 {
				return nil, fmt.Errorf("line %d: want '-> <next>'", lineNo)
			}
			next, ok := stateIdx[fields[3]]
			if !ok {
				return nil, fmt.Errorf("line %d: unknown next state %q", lineNo, fields[3])
			}
			spec.Trans(st, ev, next, strings.Join(fields[4:], " "))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := ensureSpec(); err != nil {
		return nil, err
	}
	return spec, nil
}

// Format writes the spec in the textual form ParseSpec reads
// (round-trippable).
func (s *Spec) Format(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "protocol %s\nstates %s\nevents %s\n",
		s.Name, strings.Join(s.States, " "), strings.Join(s.Events, " ")); err != nil {
		return err
	}
	for st := range s.States {
		for ev := range s.Events {
			cell := s.cells[st][ev]
			switch cell.Kind {
			case Stall:
				if _, err := fmt.Fprintf(w, "%s %s stall\n", s.States[st], s.Events[ev]); err != nil {
					return err
				}
			case Defined:
				line := fmt.Sprintf("%s %s -> %s", s.States[st], s.Events[ev], s.States[cell.Next])
				if cell.Label != "" {
					line += " " + cell.Label
				}
				if _, err := fmt.Fprintln(w, line); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Equal reports whether two specs declare identical tables (names,
// state/event vocabularies, and every cell's kind, next state and
// label).
func (s *Spec) Equal(o *Spec) bool {
	if s.Name != o.Name || len(s.States) != len(o.States) || len(s.Events) != len(o.Events) {
		return false
	}
	for i := range s.States {
		if s.States[i] != o.States[i] {
			return false
		}
	}
	for i := range s.Events {
		if s.Events[i] != o.Events[i] {
			return false
		}
	}
	for st := range s.States {
		for ev := range s.Events {
			a, b := s.cells[st][ev], o.cells[st][ev]
			if a != b {
				return false
			}
		}
	}
	return true
}

// Diff lists human-readable differences between two tables, for
// protocol-evolution reviews.
func (s *Spec) Diff(o *Spec) []string {
	var out []string
	if s.Name != o.Name {
		out = append(out, fmt.Sprintf("name: %s vs %s", s.Name, o.Name))
	}
	if strings.Join(s.States, ",") != strings.Join(o.States, ",") ||
		strings.Join(s.Events, ",") != strings.Join(o.Events, ",") {
		out = append(out, "state/event vocabularies differ")
		return out
	}
	for st := range s.States {
		for ev := range s.Events {
			a, b := s.cells[st][ev], o.cells[st][ev]
			if a != b {
				out = append(out, fmt.Sprintf("[%s, %s]: %s vs %s",
					s.States[st], s.Events[ev], cellString(s, a), cellString(o, b)))
			}
		}
	}
	sort.Strings(out)
	return out
}

func cellString(s *Spec, c Cell) string {
	switch c.Kind {
	case Undefined:
		return "Undef"
	case Stall:
		return "Stall"
	default:
		return "-> " + s.States[c.Next]
	}
}
