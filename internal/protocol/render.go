package protocol

import (
	"fmt"
	"io"
)

// Render writes the transition table in the layout of the paper's
// Fig. 4: rows are events, columns are states, each defined cell shows
// its destination state, stalls print "Stall" and undefined cells
// print "Undef".
func (s *Spec) Render(w io.Writer) {
	fmt.Fprintf(w, "%s transition table (%d states × %d events)\n", s.Name, len(s.States), len(s.Events))
	fmt.Fprintf(w, "%-14s", "")
	for _, st := range s.States {
		fmt.Fprintf(w, "%10s", st)
	}
	fmt.Fprintln(w)
	for e, ev := range s.Events {
		fmt.Fprintf(w, "%-14s", ev)
		for st := range s.States {
			cell := s.cells[st][e]
			switch cell.Kind {
			case Undefined:
				fmt.Fprintf(w, "%10s", "Undef")
			case Stall:
				fmt.Fprintf(w, "%10s", "Stall")
			case Defined:
				fmt.Fprintf(w, "%10s", "-> "+s.States[cell.Next])
			}
		}
		fmt.Fprintln(w)
	}
}

// RenderActions writes the table with action labels, the designer's
// reference view.
func (s *Spec) RenderActions(w io.Writer) {
	for e, ev := range s.Events {
		for st, stName := range s.States {
			cell := s.cells[st][e]
			if cell.Kind == Defined {
				fmt.Fprintf(w, "  [%s, %s] -> %s: %s\n", stName, ev, s.States[cell.Next], cell.Label)
			}
		}
	}
}
