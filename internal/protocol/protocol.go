// Package protocol is the SLICC-analogue at the heart of the model: a
// declarative (state × event) transition table plus the machinery a
// cache controller needs to consult it, record coverage, and fault on
// undefined transitions.
//
// Ruby's SLICC compiles protocol specifications into exactly this form,
// and the paper measures testing quality as the fraction of defined
// (state, event) cells a workload activates. Keeping the table explicit
// and first-class is what lets the coverage package reproduce the
// paper's heat maps (Fig. 5), classification grids (Fig. 7), and
// coverage percentages (Figs. 8–10) for any controller.
package protocol

import "fmt"

// Kind classifies a (state, event) cell of a transition table.
type Kind uint8

const (
	// Undefined means the protocol declares the event impossible in
	// the state; observing it is itself a protocol bug ("Undef" in the
	// paper's Fig. 7).
	Undefined Kind = iota
	// Stall means the controller must hold the message and retry after
	// the line's state changes.
	Stall
	// Defined means the cell has a real transition.
	Defined
)

func (k Kind) String() string {
	switch k {
	case Undefined:
		return "Undef"
	case Stall:
		return "Stall"
	case Defined:
		return "Defined"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Cell is one entry of a transition table.
type Cell struct {
	Kind Kind
	// Next is the destination state for Defined cells; for Stall and
	// Undefined cells it is ignored. A Defined cell may keep Next equal
	// to the current state (self-transition).
	Next int
	// Label names the transition's action, for table printouts.
	Label string
}

// Spec declares a controller's states, events and transition table.
// Cells defaults to Undefined, matching SLICC's "anything not written
// is an error" semantics.
type Spec struct {
	Name   string
	States []string
	Events []string
	cells  [][]Cell // [state][event]
}

// NewSpec creates an empty spec with every cell Undefined.
func NewSpec(name string, states, events []string) *Spec {
	s := &Spec{Name: name, States: states, Events: events}
	s.cells = make([][]Cell, len(states))
	for i := range s.cells {
		s.cells[i] = make([]Cell, len(events))
		for j := range s.cells[i] {
			s.cells[i][j] = Cell{Kind: Undefined}
		}
	}
	return s
}

// Trans declares a defined transition state --event--> next.
func (s *Spec) Trans(state, event, next int, label string) *Spec {
	s.check(state, event)
	if next < 0 || next >= len(s.States) {
		panic(fmt.Sprintf("protocol %s: bad next state %d", s.Name, next))
	}
	s.cells[state][event] = Cell{Kind: Defined, Next: next, Label: label}
	return s
}

// StallOn declares that event stalls in state.
func (s *Spec) StallOn(state, event int) *Spec {
	s.check(state, event)
	s.cells[state][event] = Cell{Kind: Stall, Next: state, Label: "stall"}
	return s
}

func (s *Spec) check(state, event int) {
	if state < 0 || state >= len(s.States) || event < 0 || event >= len(s.Events) {
		panic(fmt.Sprintf("protocol %s: cell (%d,%d) out of range", s.Name, state, event))
	}
}

// Cell returns the cell at (state, event).
func (s *Spec) Cell(state, event int) Cell {
	s.check(state, event)
	return s.cells[state][event]
}

// NumCells returns the table size.
func (s *Spec) NumCells() int { return len(s.States) * len(s.Events) }

// CountKind returns how many cells have kind k.
func (s *Spec) CountKind(k Kind) int {
	n := 0
	for _, row := range s.cells {
		for _, c := range row {
			if c.Kind == k {
				n++
			}
		}
	}
	return n
}

// Recorder receives every fired transition. The coverage package
// implements it; a nil recorder is allowed everywhere.
type Recorder interface {
	// Record notes that machine saw event in state; kind is the cell's
	// declared kind (Undefined firings are recorded before faulting so
	// the failure itself is visible in the matrix).
	Record(machine string, state, event int, kind Kind)
}

// CounterSource is the fast-path extension of Recorder. A recorder
// that implements it can hand a machine direct access to the
// [state][event] hit-count table it would otherwise maintain through
// Record. NewMachine queries it once at bind time; when Counters
// returns a non-nil table, the machine increments
// hits[state][event] itself on every Fire — no per-transition name
// lookup — and forwards to tee (which may be nil) for any remaining
// side effects, such as tracing. Returning (nil, nil) declines the
// fast path for that spec and the machine falls back to calling
// Record, preserving whatever behavior (including panics on unknown
// machines) the recorder implements there.
type CounterSource interface {
	Counters(spec *Spec) (hits [][]uint64, tee Recorder)
}

// FaultError reports an undefined transition: the protocol
// implementation let an event reach a state that cannot accept it.
type FaultError struct {
	Machine      string
	State, Event string
	Detail       string
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("protocol fault: machine %s received %s in state %s (%s)", e.Machine, e.Event, e.State, e.Detail)
}

// Machine binds a Spec to a Recorder and a fault sink. Controllers call
// Fire for every message they process.
type Machine struct {
	Spec *Spec
	rec  Recorder
	// hits, when non-nil, is the CounterSource fast path: Fire bumps
	// hits[state][event] directly and forwards to tee (if non-nil)
	// instead of calling rec.Record.
	hits [][]uint64
	tee  Recorder
	// OnFault is invoked for undefined transitions. If nil, Fire
	// panics, which is the right default for a simulator: an undefined
	// transition means the model itself is broken.
	OnFault func(*FaultError)
}

// NewMachine binds spec to recorder rec (which may be nil). If rec is
// a CounterSource that grants direct counters for spec, the machine
// records through them; otherwise every Fire goes through rec.Record.
// With no recorder and no counters, recording is a no-op.
func NewMachine(spec *Spec, rec Recorder) *Machine {
	m := &Machine{Spec: spec, rec: rec}
	if cs, ok := rec.(CounterSource); ok {
		if hits, tee := cs.Counters(spec); hits != nil {
			m.hits, m.tee = hits, tee
			m.rec = nil
		}
	}
	return m
}

// Fire looks up (state, event), records it, and returns the cell.
// Undefined cells invoke the fault sink and return with Kind==Undefined
// so the caller can abandon the message.
func (m *Machine) Fire(state, event int) Cell {
	c := m.Spec.Cell(state, event)
	if m.hits != nil {
		m.hits[state][event]++
		if m.tee != nil {
			m.tee.Record(m.Spec.Name, state, event, c.Kind)
		}
	} else if m.rec != nil {
		m.rec.Record(m.Spec.Name, state, event, c.Kind)
	}
	if c.Kind == Undefined {
		f := &FaultError{
			Machine: m.Spec.Name,
			State:   m.Spec.States[state],
			Event:   m.Spec.Events[event],
			Detail:  "undefined transition",
		}
		if m.OnFault != nil {
			m.OnFault(f)
		} else {
			panic(f)
		}
	}
	return c
}
