package protocol

import (
	"strings"
	"testing"
)

func demoSpec() *Spec {
	s := NewSpec("demo", []string{"I", "V"}, []string{"Ld", "St", "Inv"})
	s.Trans(0, 0, 1, "fill")
	s.Trans(1, 0, 1, "hit")
	s.StallOn(0, 1)
	s.Trans(1, 1, 1, "write")
	s.Trans(1, 2, 0, "inv")
	return s
}

func TestSpecDefaultsUndefined(t *testing.T) {
	s := demoSpec()
	if s.Cell(0, 2).Kind != Undefined {
		t.Fatal("unwritten cell is not Undefined")
	}
	if s.NumCells() != 6 {
		t.Fatalf("NumCells=%d", s.NumCells())
	}
	if s.CountKind(Undefined) != 1 || s.CountKind(Stall) != 1 || s.CountKind(Defined) != 4 {
		t.Fatalf("kind counts wrong: U=%d S=%d D=%d",
			s.CountKind(Undefined), s.CountKind(Stall), s.CountKind(Defined))
	}
}

func TestSpecOutOfRangePanics(t *testing.T) {
	s := demoSpec()
	for _, f := range []func(){
		func() { s.Trans(5, 0, 0, "x") },
		func() { s.Trans(0, 9, 0, "x") },
		func() { s.Trans(0, 0, 9, "x") },
		func() { s.Cell(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			f()
		}()
	}
}

type recordingSink struct {
	fired [][3]interface{}
}

func (r *recordingSink) Record(m string, s, e int, k Kind) {
	r.fired = append(r.fired, [3]interface{}{m, [2]int{s, e}, k})
}

func TestMachineFireRecords(t *testing.T) {
	rec := &recordingSink{}
	m := NewMachine(demoSpec(), rec)
	cell := m.Fire(0, 0)
	if cell.Kind != Defined || cell.Next != 1 {
		t.Fatalf("Fire returned %+v", cell)
	}
	if len(rec.fired) != 1 {
		t.Fatal("transition not recorded")
	}
}

// counterSink grants the fast path for every spec and remembers what
// its tee saw.
type counterSink struct {
	hits [][]uint64
	tee  *recordingSink
}

func (c *counterSink) Record(string, int, int, Kind) {
	panic("fast-path machine must not call Record")
}

func (c *counterSink) Counters(spec *Spec) ([][]uint64, Recorder) {
	if c.hits == nil {
		c.hits = make([][]uint64, len(spec.States))
		for i := range c.hits {
			c.hits[i] = make([]uint64, len(spec.Events))
		}
	}
	return c.hits, c.tee
}

func TestMachineCounterFastPath(t *testing.T) {
	src := &counterSink{tee: &recordingSink{}}
	m := NewMachine(demoSpec(), src)
	m.Fire(0, 0)
	m.Fire(0, 0)
	m.Fire(1, 1)
	if src.hits[0][0] != 2 || src.hits[1][1] != 1 {
		t.Fatalf("direct counters = %v", src.hits)
	}
	if len(src.tee.fired) != 3 {
		t.Fatalf("tee saw %d records, want 3", len(src.tee.fired))
	}
}

// decliningSource is a CounterSource that refuses the fast path, so
// the machine must stay on Record.
type decliningSource struct{ recordingSink }

func (d *decliningSource) Counters(*Spec) ([][]uint64, Recorder) { return nil, nil }

func TestMachineDeclinedCountersFallBack(t *testing.T) {
	src := &decliningSource{}
	m := NewMachine(demoSpec(), src)
	m.Fire(0, 0)
	if len(src.fired) != 1 {
		t.Fatal("declined fast path did not fall back to Record")
	}
}

// TestMachineNoRecorderNoOp pins the nil-safety contract: a machine
// with no recorder (and hence no counters) records nothing and must
// not panic on defined transitions.
func TestMachineNoRecorderNoOp(t *testing.T) {
	m := NewMachine(demoSpec(), nil)
	if cell := m.Fire(0, 0); cell.Kind != Defined {
		t.Fatalf("Fire returned %+v", cell)
	}
	if m.hits != nil || m.rec != nil {
		t.Fatal("recorder-less machine holds recording state")
	}
}

func TestMachineUndefinedFaults(t *testing.T) {
	var fault *FaultError
	m := NewMachine(demoSpec(), nil)
	m.OnFault = func(f *FaultError) { fault = f }
	cell := m.Fire(0, 2)
	if cell.Kind != Undefined {
		t.Fatal("undefined cell returned wrong kind")
	}
	if fault == nil || fault.State != "I" || fault.Event != "Inv" {
		t.Fatalf("fault = %+v", fault)
	}
	if !strings.Contains(fault.Error(), "demo") {
		t.Fatalf("fault message lacks machine name: %s", fault.Error())
	}
}

func TestMachineUndefinedPanicsWithoutSink(t *testing.T) {
	m := NewMachine(demoSpec(), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("undefined transition without sink did not panic")
		}
	}()
	m.Fire(0, 2)
}

func TestRenderShowsAllCellKinds(t *testing.T) {
	var b strings.Builder
	demoSpec().Render(&b)
	out := b.String()
	for _, want := range []string{"Undef", "Stall", "-> V", "-> I", "Ld", "St", "Inv"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	b.Reset()
	demoSpec().RenderActions(&b)
	if !strings.Contains(b.String(), "fill") {
		t.Error("RenderActions missing action labels")
	}
}

func TestKindString(t *testing.T) {
	if Undefined.String() != "Undef" || Stall.String() != "Stall" || Defined.String() != "Defined" {
		t.Fatal("Kind.String broken")
	}
}
