package protocol

import (
	"strings"
	"testing"
)

const demoText = `
# a tiny MSI-ish demo
protocol demo
states I V
events Ld St Inv

I Ld -> V fill
V Ld -> V hit
I St stall
V St -> V write
V Inv -> I inv
`

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec(strings.NewReader(demoText))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "demo" || len(s.States) != 2 || len(s.Events) != 3 {
		t.Fatalf("parsed shape wrong: %+v", s)
	}
	if c := s.Cell(0, 0); c.Kind != Defined || c.Next != 1 || c.Label != "fill" {
		t.Fatalf("cell [I,Ld] = %+v", c)
	}
	if s.Cell(0, 1).Kind != Stall {
		t.Fatal("[I,St] should stall")
	}
	if s.Cell(0, 2).Kind != Undefined {
		t.Fatal("[I,Inv] should default Undefined")
	}
}

func TestParseRoundTrip(t *testing.T) {
	orig := demoSpec()
	var b strings.Builder
	if err := orig.Format(&b); err != nil {
		t.Fatal(err)
	}
	re, err := ParseSpec(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("reparse failed: %v\ntext:\n%s", err, b.String())
	}
	if !orig.Equal(re) {
		t.Fatalf("round trip changed the table:\n%v", orig.Diff(re))
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"transitions before headers": "I Ld -> V\n",
		"unknown state":              "protocol p\nstates I\nevents E\nQ E -> I\n",
		"unknown event":              "protocol p\nstates I\nevents E\nI Q -> I\n",
		"unknown next":               "protocol p\nstates I\nevents E\nI E -> Q\n",
		"duplicate cell":             "protocol p\nstates I\nevents E\nI E -> I\nI E stall\n",
		"duplicate state":            "protocol p\nstates I I\nevents E\n",
		"bad arrow":                  "protocol p\nstates I\nevents E\nI E => I\n",
		"stall with args":            "protocol p\nstates I\nevents E\nI E stall now\n",
		"missing headers":            "protocol p\nstates I\n",
	}
	for name, text := range cases {
		if _, err := ParseSpec(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parse accepted invalid input", name)
		}
	}
}

func TestEqualAndDiff(t *testing.T) {
	a, b := demoSpec(), demoSpec()
	if !a.Equal(b) {
		t.Fatal("identical specs not Equal")
	}
	b.Trans(0, 2, 0, "changed")
	if a.Equal(b) {
		t.Fatal("differing specs Equal")
	}
	diff := a.Diff(b)
	if len(diff) != 1 || !strings.Contains(diff[0], "[I, Inv]") {
		t.Fatalf("diff = %v", diff)
	}
}
