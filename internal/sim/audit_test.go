package sim

import (
	"testing"

	"drftest/internal/audit"
)

// TestSnapshotFieldAudit pins the Kernel's field set so a new field
// cannot silently escape Snapshot/Restore/Reset (see package audit).
func TestSnapshotFieldAudit(t *testing.T) {
	audit.Fields(t, Kernel{}, map[string]string{
		"curr":     "state: current-tick FIFO, captured/cleared with the event queues",
		"next":     "state: next-tick FIFO, captured/cleared with the event queues",
		"far":      "state: far-horizon heap, captured/cleared with the event queues",
		"now":      "state: Reset zeroes, Snapshot/Restore copy",
		"seq":      "state: Reset zeroes, Snapshot/Restore copy",
		"executed": "stats: Reset zeroes, Snapshot/Restore copy",
		"stopped":  "state: Reset/ClearStop clear, Snapshot/Restore copy",
		"pollers":  "config: registered poller closures survive Reset/Restore; due ticks are state",
		"pollNext": "state: recomputed/copied with the pollers' due ticks",
		"tracer":   "config: attached ring, snapshotted separately by its owner",
		"chooser":  "config: attached schedule chooser, survives Reset like the tracer",
		"enabled":  "state: drained choice-point event set, captured/cleared with the event queues",
		"unitSeq":  "config: unit-ID counter; stale-but-unique across Reset is sound (see NewUnit)",
		"candBuf":  "scratch: rebuilt by buildCandidates before every Choose",
		"candPos":  "scratch: rebuilt by buildCandidates before every Choose",
		"unitSeen": "scratch: rebuilt by buildCandidates before every Choose",
	})
	audit.Fields(t, KernelSnapshot{}, map[string]string{
		"curr":     "state: restored into the curr FIFO",
		"next":     "state: restored into the next FIFO",
		"far":      "state: restored heap-ordered verbatim",
		"enabled":  "state: restored into the drained choice-point set",
		"now":      "state: copied",
		"seq":      "state: copied",
		"executed": "state: copied",
		"stopped":  "state: copied",
		"pollers":  "state: copied (closures by reference)",
		"pollNext": "state: copied",
	})
}
