package sim

import (
	"testing"

	"drftest/internal/trace"
)

// benchmarkEventLoop drives a self-rescheduling event chain — the
// kernel's hot path — with one registered poller, the shape of a real
// tester run (heartbeat poller + request/response events).
func benchmarkEventLoop(b *testing.B, k *Kernel) {
	polls := 0
	k.AddPoller(1000, func() { polls++ })
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			k.Schedule(1, step)
		}
	}
	k.Schedule(1, step)
	b.ResetTimer()
	k.RunUntilIdle()
	if n != b.N {
		b.Fatalf("ran %d of %d events", n, b.N)
	}
}

// BenchmarkEventLoop measures the event loop with tracing disabled
// (the default); it is the baseline the tracing subsystem must stay
// within 2% of.
func BenchmarkEventLoop(b *testing.B) {
	benchmarkEventLoop(b, NewKernel())
}

// BenchmarkEventLoopTracing measures the loop with an attached ring
// and one trace entry recorded per event — the enabled-tracing cost.
func BenchmarkEventLoopTracing(b *testing.B) {
	k := NewKernel()
	k.SetTracer(trace.NewRing(4096))
	polls := 0
	k.AddPoller(1000, func() { polls++ })
	n := 0
	var step func()
	step = func() {
		n++
		k.Trace("bench", "step", uint64(n))
		if n < b.N {
			k.Schedule(1, step)
		}
	}
	k.Schedule(1, step)
	b.ResetTimer()
	k.RunUntilIdle()
}
