package sim

import (
	"testing"

	"drftest/internal/trace"
)

// benchmarkEventLoop drives a self-rescheduling event chain — the
// kernel's hot path — with one registered poller, the shape of a real
// tester run (heartbeat poller + request/response events).
func benchmarkEventLoop(b *testing.B, k *Kernel) {
	polls := 0
	k.AddPoller(1000, func() { polls++ })
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			k.Schedule(1, step)
		}
	}
	k.Schedule(1, step)
	b.ReportAllocs()
	b.ResetTimer()
	k.RunUntilIdle()
	if n != b.N {
		b.Fatalf("ran %d of %d events", n, b.N)
	}
}

// BenchmarkEventLoop measures the event loop with tracing disabled
// (the default); it is the baseline the tracing subsystem must stay
// within 2% of.
func BenchmarkEventLoop(b *testing.B) {
	benchmarkEventLoop(b, NewKernel())
}

// BenchmarkEventLoopDeep measures the loop with 10k pending events of
// mixed delays, so most scheduling traffic lands in the far heap
// rather than the near-tick lanes: the worst-case ordering load, where
// sift-up/down depth is what's being paid for.
func BenchmarkEventLoopDeep(b *testing.B) {
	k := NewKernel()
	delays := [8]Tick{1, 3, 900, 40, 7, 2500, 170, 12}
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			k.Schedule(delays[n&7], step)
		}
	}
	const depth = 10_000
	for i := 0; i < depth; i++ {
		k.Schedule(delays[i&7]+Tick(i), step)
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.RunUntilIdle()
	if n < b.N {
		b.Fatalf("ran %d of %d events", n, b.N)
	}
}

// BenchmarkEventLoopTracing measures the loop with an attached ring
// and one trace entry recorded per event — the enabled-tracing cost.
func BenchmarkEventLoopTracing(b *testing.B) {
	k := NewKernel()
	k.SetTracer(trace.NewRing(4096))
	polls := 0
	k.AddPoller(1000, func() { polls++ })
	n := 0
	var step func()
	step = func() {
		n++
		k.Trace("bench", "step", uint64(n))
		if n < b.N {
			k.Schedule(1, step)
		}
	}
	k.Schedule(1, step)
	b.ResetTimer()
	k.RunUntilIdle()
}
