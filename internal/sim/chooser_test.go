package sim

import (
	"reflect"
	"testing"
)

// chooserWorkload schedules a self-expanding web of events — mixed
// tags, units, delays, same-tick bursts — and records firing order.
// The tiny LCG keeps it deterministic without touching global RNG.
func chooserWorkload(k *Kernel) *[]int {
	order := &[]int{}
	lcg := uint64(0x9e3779b97f4a7c15)
	next := func(n uint64) uint64 {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return (lcg >> 33) % n
	}
	units := []uint32{k.NewUnit(), k.NewUnit(), k.NewUnit()}
	id := 0
	var spawn func(depth int)
	spawn = func(depth int) {
		n := int(next(3)) + 1
		for i := 0; i < n; i++ {
			id++
			ev := id
			delay := Tick(next(4))
			var tag uint64
			switch next(3) {
			case 0:
				tag = 0
			case 1:
				tag = MakeUnitTag(CompLink, units[next(uint64(len(units)))])
			default:
				tag = MakeLineTag(CompLink, units[next(uint64(len(units)))], next(16)*64)
			}
			k.ScheduleTagged(delay, tag, func() {
				*order = append(*order, ev)
				if depth < 4 {
					spawn(depth + 1)
				}
			})
		}
	}
	spawn(0)
	return order
}

// TestChooserFIFOBitIdentical pins the chooser seam's zero-cost
// default: a run under FIFOChooser fires the identical event sequence,
// tick for tick, as a run with no chooser at all.
func TestChooserFIFOBitIdentical(t *testing.T) {
	plain := NewKernel()
	plainOrder := chooserWorkload(plain)
	plain.RunUntilIdle()

	fifo := NewKernel()
	fifoOrder := chooserWorkload(fifo)
	fifo.SetChooser(FIFOChooser{})
	fifo.RunUntilIdle()

	if !reflect.DeepEqual(*plainOrder, *fifoOrder) {
		t.Fatalf("FIFO chooser diverged from default order:\n  plain: %v\n  fifo:  %v", *plainOrder, *fifoOrder)
	}
	if plain.Executed() != fifo.Executed() || plain.Now() != fifo.Now() {
		t.Fatalf("kernel counters diverged: executed %d/%d, now %d/%d",
			plain.Executed(), fifo.Executed(), plain.Now(), fifo.Now())
	}
}

// pickFn adapts a func to Chooser.
type pickFn func(now Tick, cands []Enabled) int

func (f pickFn) Choose(now Tick, cands []Enabled) int { return f(now, cands) }

// TestChooserReordersAcrossUnits proves the choice point is real: a
// chooser that always picks the last candidate flips the firing order
// of same-tick events on different units.
func TestChooserReordersAcrossUnits(t *testing.T) {
	k := NewKernel()
	ua, ub := k.NewUnit(), k.NewUnit()
	var order []string
	k.ScheduleTagged(1, MakeUnitTag(CompLink, ua), func() { order = append(order, "a") })
	k.ScheduleTagged(1, MakeUnitTag(CompLink, ub), func() { order = append(order, "b") })
	k.SetChooser(pickFn(func(_ Tick, cands []Enabled) int { return len(cands) - 1 }))
	k.RunUntilIdle()
	if got := order[0] + order[1]; got != "ba" {
		t.Fatalf("last-candidate chooser did not reorder: %v", order)
	}
}

// TestChooserPerUnitFIFO pins the soundness invariant the component
// FIFOs rely on: the candidate set never offers two events of one unit,
// and a unit's events fire in scheduling order no matter what the
// chooser picks.
func TestChooserPerUnitFIFO(t *testing.T) {
	k := NewKernel()
	ua, ub := k.NewUnit(), k.NewUnit()
	var order []int
	sched := func(id int, unit uint32) {
		k.ScheduleTagged(1, MakeUnitTag(CompLink, unit), func() { order = append(order, id) })
	}
	sched(1, ua)
	sched(2, ua)
	sched(3, ub)
	sched(4, ub)
	k.Schedule(1, func() { order = append(order, 5) }) // untagged: pseudo-unit 0
	k.Schedule(1, func() { order = append(order, 6) })

	k.SetChooser(pickFn(func(_ Tick, cands []Enabled) int {
		seen := map[uint64]bool{}
		for _, c := range cands {
			u := TagUnit(c.Tag)
			if seen[u] {
				t.Fatalf("candidate set offers unit %d twice: %v", u, cands)
			}
			seen[u] = true
		}
		return len(cands) - 1
	}))
	k.RunUntilIdle()

	pos := map[int]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, pair := range [][2]int{{1, 2}, {3, 4}, {5, 6}} {
		if pos[pair[0]] > pos[pair[1]] {
			t.Fatalf("unit-internal order violated: %d fired after %d in %v", pair[0], pair[1], order)
		}
	}
}

// recordChooser picks the last candidate at every multi-candidate
// point and records the chosen sequence numbers — the script a replay
// artifact would carry.
type recordChooser struct {
	script []uint64
}

func (r *recordChooser) Choose(_ Tick, cands []Enabled) int {
	i := len(cands) - 1
	if len(cands) > 1 {
		r.script = append(r.script, cands[i].Seq)
	}
	return i
}

// TestScriptChooserReplay pins schedule replay: re-running the same
// workload under a ScriptChooser built from a recorded script
// reproduces the recorded firing order exactly and consumes the whole
// script.
func TestScriptChooserReplay(t *testing.T) {
	rec := NewKernel()
	recOrder := chooserWorkload(rec)
	rc := &recordChooser{}
	rec.SetChooser(rc)
	rec.RunUntilIdle()
	if len(rc.script) == 0 {
		t.Fatal("workload produced no multi-candidate choice points")
	}

	rep := NewKernel()
	repOrder := chooserWorkload(rep)
	sc := NewScriptChooser(rc.script)
	rep.SetChooser(sc)
	rep.RunUntilIdle()

	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if sc.Consumed() != len(rc.script) {
		t.Fatalf("replay consumed %d of %d recorded choices", sc.Consumed(), len(rc.script))
	}
	if !reflect.DeepEqual(*recOrder, *repOrder) {
		t.Fatalf("script replay diverged:\n  recorded: %v\n  replay:   %v", *recOrder, *repOrder)
	}
}

// TestScriptChooserDivergence pins the failure mode: a script entry
// matching no candidate reports through Err (falling back to FIFO)
// instead of panicking mid-run.
func TestScriptChooserDivergence(t *testing.T) {
	k := NewKernel()
	ua, ub := k.NewUnit(), k.NewUnit()
	k.ScheduleTagged(1, MakeUnitTag(CompLink, ua), func() {})
	k.ScheduleTagged(1, MakeUnitTag(CompLink, ub), func() {})
	sc := NewScriptChooser([]uint64{1 << 40})
	k.SetChooser(sc)
	k.RunUntilIdle()
	if sc.Err() == nil {
		t.Fatal("bogus script entry did not surface through Err")
	}
	if k.Pending() != 0 {
		t.Fatal("divergent replay did not finish the run")
	}
}

// TestChooserSnapshotInChoose pins the explorer's core access pattern:
// a kernel snapshot taken from inside Choose (before the chosen event
// fires) restores to re-present the identical candidate set, and the
// rewound run can take the other branch.
func TestChooserSnapshotInChoose(t *testing.T) {
	k := NewKernel()
	ua, ub := k.NewUnit(), k.NewUnit()
	var order []string
	mk := func(name string, unit uint32) {
		k.ScheduleTagged(1, MakeUnitTag(CompLink, unit), func() { order = append(order, name) })
	}
	mk("a", ua)
	mk("b", ub)

	var snap *KernelSnapshot
	var firstCands []Enabled
	k.SetChooser(pickFn(func(_ Tick, cands []Enabled) int {
		if snap == nil && len(cands) > 1 {
			snap = k.Snapshot()
			firstCands = append([]Enabled(nil), cands...)
		}
		return 0
	}))
	k.RunUntilIdle()
	if snap == nil {
		t.Fatal("no multi-candidate choice point")
	}
	if got := order[0] + order[1]; got != "ab" {
		t.Fatalf("FIFO branch fired %q, want \"ab\"", got)
	}

	order = order[:0]
	k.Restore(snap)
	var resumed []Enabled
	k.SetChooser(pickFn(func(_ Tick, cands []Enabled) int {
		if resumed == nil {
			resumed = append([]Enabled(nil), cands...)
			for i := range cands {
				if cands[i].Seq == firstCands[len(firstCands)-1].Seq {
					return i
				}
			}
		}
		return 0
	}))
	k.RunUntilIdle()
	if !reflect.DeepEqual(firstCands, resumed) {
		t.Fatalf("restored choice point differs:\n  first:   %v\n  resumed: %v", firstCands, resumed)
	}
	if got := order[0] + order[1]; got != "ba" {
		t.Fatalf("sibling branch fired %q, want \"ba\"", got)
	}
}

// TestChooserStopInChoose pins the abandon path: Stop called from
// inside Choose halts the run without firing the chosen event.
func TestChooserStopInChoose(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.Schedule(1, func() { fired++ })
	k.SetChooser(pickFn(func(_ Tick, cands []Enabled) int {
		k.Stop()
		return 0
	}))
	k.RunUntilIdle()
	if fired != 0 {
		t.Fatalf("event fired despite Stop from Choose (fired=%d)", fired)
	}
}
