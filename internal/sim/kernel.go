// Package sim provides the discrete-event simulation kernel underlying
// the whole memory-system model.
//
// It plays the role of gem5's event queue: components schedule closures
// at future ticks and the kernel executes them in deterministic order.
// Events at the same tick fire in scheduling order (stable FIFO
// tie-break), which is what makes whole simulations bit-reproducible
// from a seed.
//
// The pending-event structure is built for the workload's shape: the
// vast majority of schedules in tester runs are delay-0/1
// self-reschedules (pipeline stages, lockstep rounds, link hops), so
// those bypass the priority queue entirely through two FIFO lanes
// anchored at the current and the next tick. Everything further out
// lands in a hand-rolled value-typed 4-ary min-heap — no
// container/heap, no interface boxing, no per-event pointer — so the
// steady-state event loop allocates nothing (guarded by
// TestEventLoopZeroAllocs).
package sim

import (
	"fmt"

	"drftest/internal/trace"
)

// Tick is the simulated time unit. One tick is one clock cycle of the
// memory system; latencies throughout the model are expressed in ticks.
type Tick uint64

// MaxTick is the largest representable tick, used as an "infinite"
// horizon for Run.
const MaxTick = Tick(^uint64(0))

// event is one scheduled closure. Events are held by value everywhere
// in the kernel: moving them costs a 4-word copy, never an allocation.
// tag is the event's schedule-exploration identity (unit + line
// footprint, see chooser.go); it is zero for events scheduled through
// plain Schedule and never affects the default event loop.
type event struct {
	when Tick
	seq  uint64 // stable tie-break for same-tick events
	tag  uint64
	fn   func()
}

// before is the kernel's total order: tick, then schedule order.
func (e *event) before(o *event) bool {
	return e.when < o.when || (e.when == o.when && e.seq < o.seq)
}

// eventFIFO is a growable ring buffer of events, the fast lane for
// near-tick schedules. Capacity is a power of two and persists across
// pops, so a warmed-up FIFO never allocates.
type eventFIFO struct {
	buf  []event
	head int
	n    int
}

func (f *eventFIFO) push(e event) {
	if f.n == len(f.buf) {
		f.grow()
	}
	f.buf[(f.head+f.n)&(len(f.buf)-1)] = e
	f.n++
}

// peek returns the oldest event; it must not be called on an empty
// FIFO. FIFO entries share one tick, so oldest == lowest seq.
func (f *eventFIFO) peek() *event { return &f.buf[f.head] }

func (f *eventFIFO) pop() event {
	slot := &f.buf[f.head]
	e := *slot
	slot.fn = nil // release the closure for GC
	f.head = (f.head + 1) & (len(f.buf) - 1)
	f.n--
	return e
}

// reset drops every queued event, releasing the closures for GC while
// keeping the warmed-up ring capacity.
func (f *eventFIFO) reset() {
	for i := 0; i < f.n; i++ {
		f.buf[(f.head+i)&(len(f.buf)-1)].fn = nil
	}
	f.head, f.n = 0, 0
}

func (f *eventFIFO) grow() {
	cap2 := len(f.buf) * 2
	if cap2 == 0 {
		cap2 = 16
	}
	buf := make([]event, cap2)
	for i := 0; i < f.n; i++ {
		buf[i] = f.buf[(f.head+i)&(len(f.buf)-1)]
	}
	f.buf = buf
	f.head = 0
}

// eventHeap4 is a value-typed 4-ary min-heap ordered by (when, seq).
// A 4-ary layout halves the tree depth of a binary heap, trading a few
// extra comparisons per level for far fewer cache-missing moves — the
// classic d-ary heap trade-off, which wins for the sift-down-heavy
// pop/push mix of an event queue.
type eventHeap4 []event

func (h eventHeap4) siftUp(i int) {
	e := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !e.before(&h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
}

func (h eventHeap4) siftDown(i int) {
	n := len(h)
	e := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h[c].before(&h[min]) {
				min = c
			}
		}
		if !h[min].before(&e) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = e
}

func (h *eventHeap4) push(e event) {
	*h = append(*h, e)
	h.siftUp(len(*h) - 1)
}

func (h *eventHeap4) popMin() event {
	old := *h
	e := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n].fn = nil // release the closure for GC
	*h = old[:n]
	if n > 0 {
		(*h).siftDown(0)
	}
	return e
}

// poller is one periodic service with its own cadence.
type poller struct {
	period Tick
	next   Tick
	fn     func()
}

// event sources, in tie-break-free priority order (see popNext).
const (
	srcNone = iota
	srcCurr
	srcNext
	srcFar
)

// Kernel is a single-threaded discrete-event scheduler. The zero value
// is ready to use.
//
// Invariants: every event in curr is at tick now, every event in next
// is at tick now+1, and far's minimum is at tick >= now. The three
// sources together hold the pending set; popNext merges them by
// (when, seq).
type Kernel struct {
	curr eventFIFO  // events at the current tick
	next eventFIFO  // events at the next tick
	far  eventHeap4 // events scheduled two or more ticks out

	now      Tick
	seq      uint64
	executed uint64
	stopped  bool
	pollers  []poller
	pollNext Tick // min over pollers' next-due ticks
	tracer   *trace.Ring

	// Schedule choice-point state (chooser.go). enabled holds the
	// current tick's drained, seq-sorted event set while a chooser is
	// attached; it is always empty in the default loop. candBuf,
	// candPos, and unitSeen are its per-call scratch.
	chooser  Chooser
	enabled  []event
	unitSeq  uint32
	candBuf  []Enabled
	candPos  []int
	unitSeen []uint64
}

// NewKernel returns a fresh kernel at tick zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current simulated time.
func (k *Kernel) Now() Tick { return k.now }

// Reset returns the kernel to its just-constructed state — tick zero,
// no pending events, no pollers, stop flag cleared — while keeping the
// warmed-up queue capacities and any attached tracer. Pending events
// are dropped (their closures released for GC): a campaign reusing one
// system across runs must not let a previous run's in-flight events
// fire into the next one, so components holding state referenced by
// those events (controllers, testers) must be reset alongside.
func (k *Kernel) Reset() {
	k.curr.reset()
	k.next.reset()
	for i := range k.far {
		k.far[i].fn = nil
	}
	k.far = k.far[:0]
	for i := range k.enabled {
		k.enabled[i].fn = nil
	}
	k.enabled = k.enabled[:0]
	k.now, k.seq, k.executed = 0, 0, 0
	k.stopped = false
	k.pollers = k.pollers[:0]
	k.pollNext = 0
}

// Executed returns the number of events executed so far. It is the
// kernel-level measure of simulation work and backs the paper's
// "simulation runtime" comparisons.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending returns the number of scheduled, not-yet-fired events.
func (k *Kernel) Pending() int { return k.curr.n + k.next.n + len(k.far) + len(k.enabled) }

// Schedule runs fn delay ticks from now. A zero delay runs fn later in
// the current tick, after all previously scheduled same-tick events.
func (k *Kernel) Schedule(delay Tick, fn func()) {
	k.ScheduleTagged(delay, 0, fn)
}

// ScheduleTagged is Schedule with a schedule-exploration tag (see
// chooser.go): the tag declares the event's ordering unit and line
// footprint to an attached Chooser. It has no effect on the default
// event loop.
func (k *Kernel) ScheduleTagged(delay Tick, tag uint64, fn func()) {
	if fn == nil {
		panic("sim: Schedule with nil fn")
	}
	k.seq++
	e := event{when: k.now + delay, seq: k.seq, tag: tag, fn: fn}
	switch delay {
	case 0:
		k.curr.push(e)
	case 1:
		k.next.push(e)
	default:
		k.far.push(e)
	}
}

// ScheduleAt runs fn at absolute tick when, which must not be in the
// past.
func (k *Kernel) ScheduleAt(when Tick, fn func()) {
	if when < k.now {
		panic(fmt.Sprintf("sim: ScheduleAt into the past (now=%d when=%d)", k.now, when))
	}
	k.Schedule(when-k.now, fn)
}

// AddPoller registers fn to run every period ticks while the simulation
// has work. Pollers implement periodic services such as the tester's
// forward-progress (deadlock) scan. Each poller keeps its own cadence:
// registering a fast poller does not make a slow one fire faster.
func (k *Kernel) AddPoller(period Tick, fn func()) {
	if period == 0 {
		panic("sim: poller with zero period")
	}
	if fn == nil {
		panic("sim: AddPoller with nil fn")
	}
	p := poller{period: period, next: k.now, fn: fn}
	if len(k.pollers) == 0 || p.next < k.pollNext {
		k.pollNext = p.next
	}
	k.pollers = append(k.pollers, p)
}

// Stop makes the current Run call return after the in-flight event
// completes. It is how checkers abort a simulation on a detected bug.
// The flag is sticky: later Run calls return immediately until
// ClearStop, so a Stop issued between phases is never lost.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// ClearStop re-arms a stopped kernel so a subsequent Run proceeds.
func (k *Kernel) ClearStop() { k.stopped = false }

// peekNext locates the earliest pending event across the three sources
// without removing it. It returns srcNone when nothing is pending.
func (k *Kernel) peekNext() (src int, e *event) {
	if k.curr.n > 0 {
		// curr entries are at tick now; only far can hold an
		// earlier-scheduled (lower-seq) event at the same tick.
		src, e = srcCurr, k.curr.peek()
	} else if k.next.n > 0 {
		src, e = srcNext, k.next.peek()
	}
	if len(k.far) > 0 && (e == nil || k.far[0].before(e)) {
		src, e = srcFar, &k.far[0]
	}
	return src, e
}

// popNext removes and returns the event peekNext chose.
func (k *Kernel) popNext(src int) event {
	switch src {
	case srcCurr:
		return k.curr.pop()
	case srcNext:
		return k.next.pop()
	default:
		return k.far.popMin()
	}
}

// advanceTo moves simulated time forward to t, re-anchoring the FIFO
// lanes. Both lanes are empty whenever time jumps by two or more ticks
// (their events would otherwise have fired first), so only the
// one-tick step has lane state to rotate.
func (k *Kernel) advanceTo(t Tick) {
	if t == k.now+1 {
		// curr is empty (its events fire before any later tick), so the
		// next-tick lane becomes the current lane and curr's spare
		// buffer is recycled as the new next-tick lane.
		k.curr, k.next = k.next, k.curr
	}
	k.now = t
}

// Run executes events in order until the queue drains, the horizon is
// passed, or Stop is called. It returns the tick at which it stopped.
// A pre-set stop flag (a Stop issued outside any Run, e.g. by a
// checker during drain or setup) makes Run return immediately.
func (k *Kernel) Run(until Tick) Tick {
	if k.chooser != nil {
		return k.runChoose(until)
	}
	if len(k.enabled) > 0 {
		panic("sim: Run with a drained enabled set but no chooser (choose-mode snapshot restored into a chooser-less kernel)")
	}
	for !k.stopped {
		src, head := k.peekNext()
		if src == srcNone || head.when > until {
			break
		}
		e := k.popNext(src)
		if e.when > k.now {
			k.advanceTo(e.when)
		}
		k.firePollers()
		k.executed++
		e.fn()
	}
	return k.now
}

// RunUntilIdle executes events until no work remains or Stop is called.
func (k *Kernel) RunUntilIdle() Tick { return k.Run(MaxTick) }

func (k *Kernel) firePollers() {
	if len(k.pollers) == 0 || k.now < k.pollNext {
		return
	}
	next := MaxTick
	for i := range k.pollers {
		p := &k.pollers[i]
		if k.now >= p.next {
			p.next = k.now + p.period
			p.fn()
		}
		if p.next < next {
			next = p.next
		}
	}
	k.pollNext = next
}

// Snapshot captures the kernel's complete scheduling state — pending
// events (including their closures), current tick, sequence counter,
// executed count, stop flag, and pollers — so a later Restore resumes
// the simulation from exactly this point.
//
// Closures are captured by reference: an event's fn still points at
// whatever component state it closed over. Restoring into the *same*
// object graph is therefore only sound when those components are
// restored alongside (see the harness checkpoint machinery); the
// kernel itself only promises to replay the identical event sequence.
type KernelSnapshot struct {
	curr, next []event // normalized oldest-first
	far        []event // heap-ordered, as stored
	enabled    []event // drained choice-point set, seq order (chooser.go)
	now        Tick
	seq        uint64
	executed   uint64
	stopped    bool
	pollers    []poller
	pollNext   Tick
}

// snapshotFIFO copies f's events oldest-first into a fresh slice.
func snapshotFIFO(f *eventFIFO) []event {
	if f.n == 0 {
		return nil
	}
	out := make([]event, f.n)
	for i := 0; i < f.n; i++ {
		out[i] = f.buf[(f.head+i)&(len(f.buf)-1)]
	}
	return out
}

// restoreFIFO replaces f's contents with the snapshot's events,
// keeping f's warmed-up ring capacity.
func (f *eventFIFO) restoreFrom(events []event) {
	f.reset()
	for _, e := range events {
		f.push(e)
	}
}

// Snapshot captures the full scheduling state. The returned snapshot
// shares no mutable storage with the kernel: Restore may be called any
// number of times, before or after further simulation.
func (k *Kernel) Snapshot() *KernelSnapshot {
	return &KernelSnapshot{
		curr:     snapshotFIFO(&k.curr),
		next:     snapshotFIFO(&k.next),
		far:      append([]event(nil), k.far...),
		enabled:  append([]event(nil), k.enabled...),
		now:      k.now,
		seq:      k.seq,
		executed: k.executed,
		stopped:  k.stopped,
		pollers:  append([]poller(nil), k.pollers...),
		pollNext: k.pollNext,
	}
}

// Restore rewinds the kernel to the snapshot's state. The attached
// tracer is deliberately not part of the snapshot — the trace ring has
// its own Snapshot/Restore and is owned by the harness.
func (k *Kernel) Restore(s *KernelSnapshot) {
	k.curr.restoreFrom(s.curr)
	k.next.restoreFrom(s.next)
	for i := range k.far {
		k.far[i].fn = nil
	}
	// The saved slice is already heap-ordered, so copying it back
	// verbatim re-establishes the heap invariant.
	k.far = append(k.far[:0], s.far...)
	for i := range k.enabled {
		k.enabled[i].fn = nil
	}
	k.enabled = append(k.enabled[:0], s.enabled...)
	k.now, k.seq, k.executed = s.now, s.seq, s.executed
	k.stopped = s.stopped
	k.pollers = append(k.pollers[:0], s.pollers...)
	k.pollNext = s.pollNext
}

// SetTracer attaches ring as the kernel's execution trace (nil, or a
// zero-capacity ring, disables tracing). The kernel stamps entries
// with its current tick; components record through Trace.
func (k *Kernel) SetTracer(r *trace.Ring) { k.tracer = r }

// Tracer returns the attached trace ring, which may be nil.
func (k *Kernel) Tracer() *trace.Ring { return k.tracer }

// Tracing reports whether trace entries are being recorded. Components
// check it before building labels so tracing is free when disabled.
// The nil check is explicit — like Trace — rather than delegated to a
// method call through a possibly-nil receiver.
func (k *Kernel) Tracing() bool { return k.tracer != nil && k.tracer.Enabled() }

// Trace records one event at the current tick. It is a no-op without
// an enabled tracer.
func (k *Kernel) Trace(component, label string, addr uint64) {
	if k.tracer == nil {
		return
	}
	k.tracer.Append(uint64(k.now), component, label, addr)
}
