// Package sim provides the discrete-event simulation kernel underlying
// the whole memory-system model.
//
// It plays the role of gem5's event queue: components schedule closures
// at future ticks and the kernel executes them in deterministic order.
// Events at the same tick fire in scheduling order (stable FIFO
// tie-break), which is what makes whole simulations bit-reproducible
// from a seed.
package sim

import (
	"container/heap"
	"fmt"
)

// Tick is the simulated time unit. One tick is one clock cycle of the
// memory system; latencies throughout the model are expressed in ticks.
type Tick uint64

// MaxTick is the largest representable tick, used as an "infinite"
// horizon for Run.
const MaxTick = Tick(^uint64(0))

type event struct {
	when Tick
	seq  uint64 // stable tie-break for same-tick events
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a single-threaded discrete-event scheduler. The zero value
// is ready to use.
type Kernel struct {
	pq        eventHeap
	now       Tick
	seq       uint64
	executed  uint64
	stopped   bool
	pollers   []func()
	pollEvery Tick
	pollNext  Tick
}

// NewKernel returns a fresh kernel at tick zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current simulated time.
func (k *Kernel) Now() Tick { return k.now }

// Executed returns the number of events executed so far. It is the
// kernel-level measure of simulation work and backs the paper's
// "simulation runtime" comparisons.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending returns the number of scheduled, not-yet-fired events.
func (k *Kernel) Pending() int { return len(k.pq) }

// Schedule runs fn delay ticks from now. A zero delay runs fn later in
// the current tick, after all previously scheduled same-tick events.
func (k *Kernel) Schedule(delay Tick, fn func()) {
	if fn == nil {
		panic("sim: Schedule with nil fn")
	}
	k.seq++
	heap.Push(&k.pq, &event{when: k.now + delay, seq: k.seq, fn: fn})
}

// ScheduleAt runs fn at absolute tick when, which must not be in the
// past.
func (k *Kernel) ScheduleAt(when Tick, fn func()) {
	if when < k.now {
		panic(fmt.Sprintf("sim: ScheduleAt into the past (now=%d when=%d)", k.now, when))
	}
	k.Schedule(when-k.now, fn)
}

// AddPoller registers fn to run every period ticks while the simulation
// has work. Pollers implement periodic services such as the tester's
// forward-progress (deadlock) scan.
func (k *Kernel) AddPoller(period Tick, fn func()) {
	if period == 0 {
		panic("sim: poller with zero period")
	}
	k.pollers = append(k.pollers, fn)
	if k.pollEvery == 0 || period < k.pollEvery {
		k.pollEvery = period
	}
}

// Stop makes the current Run call return after the in-flight event
// completes. It is how checkers abort a simulation on a detected bug.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// Run executes events in order until the queue drains, the horizon is
// passed, or Stop is called. It returns the tick at which it stopped.
func (k *Kernel) Run(until Tick) Tick {
	k.stopped = false
	for len(k.pq) > 0 && !k.stopped {
		e := k.pq[0]
		if e.when > until {
			break
		}
		heap.Pop(&k.pq)
		if e.when > k.now {
			k.now = e.when
		}
		k.firePollers()
		k.executed++
		e.fn()
	}
	return k.now
}

// RunUntilIdle executes events until no work remains or Stop is called.
func (k *Kernel) RunUntilIdle() Tick { return k.Run(MaxTick) }

func (k *Kernel) firePollers() {
	if k.pollEvery == 0 || k.now < k.pollNext {
		return
	}
	k.pollNext = k.now + k.pollEvery
	for _, p := range k.pollers {
		p()
	}
}
