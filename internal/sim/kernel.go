// Package sim provides the discrete-event simulation kernel underlying
// the whole memory-system model.
//
// It plays the role of gem5's event queue: components schedule closures
// at future ticks and the kernel executes them in deterministic order.
// Events at the same tick fire in scheduling order (stable FIFO
// tie-break), which is what makes whole simulations bit-reproducible
// from a seed.
package sim

import (
	"container/heap"
	"fmt"

	"drftest/internal/trace"
)

// Tick is the simulated time unit. One tick is one clock cycle of the
// memory system; latencies throughout the model are expressed in ticks.
type Tick uint64

// MaxTick is the largest representable tick, used as an "infinite"
// horizon for Run.
const MaxTick = Tick(^uint64(0))

type event struct {
	when Tick
	seq  uint64 // stable tie-break for same-tick events
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// poller is one periodic service with its own cadence.
type poller struct {
	period Tick
	next   Tick
	fn     func()
}

// Kernel is a single-threaded discrete-event scheduler. The zero value
// is ready to use.
type Kernel struct {
	pq       eventHeap
	now      Tick
	seq      uint64
	executed uint64
	stopped  bool
	pollers  []poller
	pollNext Tick // min over pollers' next-due ticks
	tracer   *trace.Ring
}

// NewKernel returns a fresh kernel at tick zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current simulated time.
func (k *Kernel) Now() Tick { return k.now }

// Executed returns the number of events executed so far. It is the
// kernel-level measure of simulation work and backs the paper's
// "simulation runtime" comparisons.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending returns the number of scheduled, not-yet-fired events.
func (k *Kernel) Pending() int { return len(k.pq) }

// Schedule runs fn delay ticks from now. A zero delay runs fn later in
// the current tick, after all previously scheduled same-tick events.
func (k *Kernel) Schedule(delay Tick, fn func()) {
	if fn == nil {
		panic("sim: Schedule with nil fn")
	}
	k.seq++
	heap.Push(&k.pq, &event{when: k.now + delay, seq: k.seq, fn: fn})
}

// ScheduleAt runs fn at absolute tick when, which must not be in the
// past.
func (k *Kernel) ScheduleAt(when Tick, fn func()) {
	if when < k.now {
		panic(fmt.Sprintf("sim: ScheduleAt into the past (now=%d when=%d)", k.now, when))
	}
	k.Schedule(when-k.now, fn)
}

// AddPoller registers fn to run every period ticks while the simulation
// has work. Pollers implement periodic services such as the tester's
// forward-progress (deadlock) scan. Each poller keeps its own cadence:
// registering a fast poller does not make a slow one fire faster.
func (k *Kernel) AddPoller(period Tick, fn func()) {
	if period == 0 {
		panic("sim: poller with zero period")
	}
	if fn == nil {
		panic("sim: AddPoller with nil fn")
	}
	p := poller{period: period, next: k.now, fn: fn}
	if len(k.pollers) == 0 || p.next < k.pollNext {
		k.pollNext = p.next
	}
	k.pollers = append(k.pollers, p)
}

// Stop makes the current Run call return after the in-flight event
// completes. It is how checkers abort a simulation on a detected bug.
// The flag is sticky: later Run calls return immediately until
// ClearStop, so a Stop issued between phases is never lost.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// ClearStop re-arms a stopped kernel so a subsequent Run proceeds.
func (k *Kernel) ClearStop() { k.stopped = false }

// Run executes events in order until the queue drains, the horizon is
// passed, or Stop is called. It returns the tick at which it stopped.
// A pre-set stop flag (a Stop issued outside any Run, e.g. by a
// checker during drain or setup) makes Run return immediately.
func (k *Kernel) Run(until Tick) Tick {
	for len(k.pq) > 0 && !k.stopped {
		e := k.pq[0]
		if e.when > until {
			break
		}
		heap.Pop(&k.pq)
		if e.when > k.now {
			k.now = e.when
		}
		k.firePollers()
		k.executed++
		e.fn()
	}
	return k.now
}

// RunUntilIdle executes events until no work remains or Stop is called.
func (k *Kernel) RunUntilIdle() Tick { return k.Run(MaxTick) }

func (k *Kernel) firePollers() {
	if len(k.pollers) == 0 || k.now < k.pollNext {
		return
	}
	next := MaxTick
	for i := range k.pollers {
		p := &k.pollers[i]
		if k.now >= p.next {
			p.next = k.now + p.period
			p.fn()
		}
		if p.next < next {
			next = p.next
		}
	}
	k.pollNext = next
}

// SetTracer attaches ring as the kernel's execution trace (nil, or a
// zero-capacity ring, disables tracing). The kernel stamps entries
// with its current tick; components record through Trace.
func (k *Kernel) SetTracer(r *trace.Ring) { k.tracer = r }

// Tracer returns the attached trace ring, which may be nil.
func (k *Kernel) Tracer() *trace.Ring { return k.tracer }

// Tracing reports whether trace entries are being recorded. Components
// check it before building labels so tracing is free when disabled.
func (k *Kernel) Tracing() bool { return k.tracer.Enabled() }

// Trace records one event at the current tick. It is a no-op without
// an enabled tracer.
func (k *Kernel) Trace(component, label string, addr uint64) {
	if k.tracer == nil {
		return
	}
	k.tracer.Append(uint64(k.now), component, label, addr)
}
