package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"drftest/internal/trace"
)

func TestRunsInTimeOrder(t *testing.T) {
	k := NewKernel()
	var order []Tick
	for _, d := range []Tick{30, 10, 20, 10, 0} {
		d := d
		k.Schedule(d, func() { order = append(order, k.Now()) })
	}
	k.RunUntilIdle()
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if len(order) != 5 {
		t.Fatalf("fired %d of 5 events", len(order))
	}
}

func TestSameTickFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5, func() { order = append(order, i) })
	}
	k.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-tick events reordered: %v", order)
		}
	}
}

func TestZeroDelayRunsLaterSameTick(t *testing.T) {
	k := NewKernel()
	var trace []string
	k.Schedule(1, func() {
		trace = append(trace, "a")
		k.Schedule(0, func() { trace = append(trace, "c") })
	})
	k.Schedule(1, func() { trace = append(trace, "b") })
	k.RunUntilIdle()
	if got := trace[0] + trace[1] + trace[2]; got != "abc" {
		t.Fatalf("zero-delay ordering wrong: %v", trace)
	}
	if k.Now() != 1 {
		t.Fatalf("time advanced to %d, want 1", k.Now())
	}
}

func TestRunHorizon(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.Schedule(10, func() { fired++ })
	k.Schedule(20, func() { fired++ })
	k.Run(15)
	if fired != 1 {
		t.Fatalf("horizon 15 fired %d events", fired)
	}
	if k.Pending() != 1 {
		t.Fatalf("pending %d, want 1", k.Pending())
	}
	k.RunUntilIdle()
	if fired != 2 {
		t.Fatal("remaining event lost")
	}
}

func TestStop(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.Schedule(1, func() { fired++; k.Stop() })
	k.Schedule(2, func() { fired++ })
	k.RunUntilIdle()
	if fired != 1 {
		t.Fatalf("Stop did not halt the run (fired=%d)", fired)
	}
	if !k.Stopped() {
		t.Fatal("Stopped() false after Stop")
	}
}

func TestScheduleAtPastPanics(t *testing.T) {
	k := NewKernel()
	k.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("ScheduleAt into the past did not panic")
			}
		}()
		k.ScheduleAt(5, func() {})
	})
	k.RunUntilIdle()
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) did not panic")
		}
	}()
	NewKernel().Schedule(1, nil)
}

func TestExecutedCount(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 17; i++ {
		k.Schedule(Tick(i), func() {})
	}
	k.RunUntilIdle()
	if k.Executed() != 17 {
		t.Fatalf("Executed=%d, want 17", k.Executed())
	}
}

func TestPollerFiresPeriodically(t *testing.T) {
	k := NewKernel()
	polls := 0
	k.AddPoller(10, func() { polls++ })
	for i := Tick(0); i <= 100; i += 5 {
		k.Schedule(i, func() {})
	}
	k.RunUntilIdle()
	if polls < 9 || polls > 12 {
		t.Fatalf("poller fired %d times over 100 ticks at period 10", polls)
	}
}

// TestPollersKeepOwnPeriods: two pollers registered with different
// periods each fire at their own cadence (regression: firePollers used
// to run every poller at the minimum registered period).
func TestPollersKeepOwnPeriods(t *testing.T) {
	k := NewKernel()
	fast, slow := 0, 0
	k.AddPoller(10, func() { fast++ })
	k.AddPoller(30, func() { slow++ })
	for i := Tick(0); i <= 300; i += 5 {
		k.Schedule(i, func() {})
	}
	k.RunUntilIdle()
	// Events land on every multiple of 5 in [0, 300], so the pollers
	// fire exactly at multiples of their own periods.
	if fast != 31 {
		t.Fatalf("period-10 poller fired %d times over 300 ticks, want 31", fast)
	}
	if slow != 11 {
		t.Fatalf("period-30 poller fired %d times over 300 ticks, want 11", slow)
	}
}

// TestStopBeforeRunHonored: a Stop issued between Run calls must not
// be discarded (regression: Run reset the flag on entry).
func TestStopBeforeRunHonored(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.Schedule(1, func() { fired++ })
	k.Stop()
	if got := k.Run(MaxTick); got != 0 {
		t.Fatalf("stopped Run advanced time to %d", got)
	}
	if fired != 0 || k.Pending() != 1 {
		t.Fatalf("stopped Run executed events (fired=%d pending=%d)", fired, k.Pending())
	}
	if !k.Stopped() {
		t.Fatal("stop flag lost across Run")
	}
	k.ClearStop()
	k.RunUntilIdle()
	if fired != 1 {
		t.Fatalf("ClearStop did not re-arm the kernel (fired=%d)", fired)
	}
}

func TestKernelTrace(t *testing.T) {
	k := NewKernel()
	if k.Tracing() {
		t.Fatal("fresh kernel reports tracing enabled")
	}
	k.Trace("c", "before-tracer", 0) // must not panic with nil tracer

	ring := k.Tracer()
	if ring != nil {
		t.Fatal("fresh kernel has a tracer")
	}
	k.SetTracer(nil)
	k.Schedule(7, func() { k.Trace("comp", "ev", 0x40) })
	k.RunUntilIdle()

	k2 := NewKernel()
	r := trace.NewRing(8)
	k2.SetTracer(r)
	if !k2.Tracing() {
		t.Fatal("tracing not enabled after SetTracer")
	}
	k2.Schedule(7, func() { k2.Trace("comp", "ev", 0x40) })
	k2.RunUntilIdle()
	got := r.Entries()
	if len(got) != 1 || got[0].Tick != 7 || got[0].Seq != 1 ||
		got[0].Component != "comp" || got[0].Label != "ev" || got[0].Addr != 0x40 {
		t.Fatalf("trace recorded %+v", got)
	}
}

// TestOrderProperty: any random batch of scheduled delays fires in
// nondecreasing time order with FIFO tie-break.
func TestOrderProperty(t *testing.T) {
	err := quick.Check(func(delays []uint8) bool {
		k := NewKernel()
		type fire struct {
			at  Tick
			seq int
		}
		var fires []fire
		for i, d := range delays {
			i, d := i, d
			k.Schedule(Tick(d%50), func() { fires = append(fires, fire{k.Now(), i}) })
		}
		k.RunUntilIdle()
		if len(fires) != len(delays) {
			return false
		}
		for i := 1; i < len(fires); i++ {
			if fires[i].at < fires[i-1].at {
				return false
			}
			if fires[i].at == fires[i-1].at && delays[fires[i].seq]%50 == delays[fires[i-1].seq]%50 &&
				fires[i].seq < fires[i-1].seq {
				return false // same tick, same delay ⇒ FIFO by schedule order
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// refKernel is an executable model of the scheduler's original
// semantics: one flat pending list, fired in (tick, then schedule
// order) — exactly what container/heap with a seq tie-break did. The
// lane/heap kernel must be observationally identical to it.
type refKernel struct {
	now     Tick
	seq     uint64
	pending []refEvent
}

type refEvent struct {
	when Tick
	seq  uint64
	id   int
}

func (r *refKernel) schedule(delay Tick, id int) {
	r.seq++
	r.pending = append(r.pending, refEvent{when: r.now + delay, seq: r.seq, id: id})
}

func (r *refKernel) run(fire func(id int)) {
	for len(r.pending) > 0 {
		min := 0
		for i := 1; i < len(r.pending); i++ {
			e, m := r.pending[i], r.pending[min]
			if e.when < m.when || (e.when == m.when && e.seq < m.seq) {
				min = i
			}
		}
		e := r.pending[min]
		r.pending[min] = r.pending[len(r.pending)-1]
		r.pending = r.pending[:len(r.pending)-1]
		r.now = e.when
		fire(e.id)
	}
}

// TestOrderMatchesReferenceSemantics drives the kernel and the
// reference model with an identical randomized script — same-tick
// bursts, delay-0 chains, far-future jumps, events scheduling more
// events (via Schedule and ScheduleAt) as they fire — and requires the
// exact same fire sequence. This is the ordering contract the FIFO
// lanes + 4-ary heap must preserve bit-for-bit.
func TestOrderMatchesReferenceSemantics(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		rnd := rand.New(rand.NewSource(int64(seed)))

		// Pre-generate the script so both executions see identical
		// decisions: initial (delay, burst) seeds plus, for every event
		// that ever fires, the children it spawns when it does.
		type spawn struct {
			delay Tick
			useAt bool
		}
		delayPool := []Tick{0, 0, 0, 1, 1, 1, 2, 3, 5, 7, 40, 1000}
		const maxEvents = 600
		initial := make([]Tick, 30)
		for i := range initial {
			initial[i] = delayPool[rnd.Intn(len(delayPool))]
		}
		children := make([][]spawn, maxEvents)
		for i := range children {
			kids := make([]spawn, rnd.Intn(3))
			for j := range kids {
				kids[j] = spawn{delay: delayPool[rnd.Intn(len(delayPool))], useAt: rnd.Intn(4) == 0}
			}
			children[i] = kids
		}

		// Execution 1: the real kernel.
		var gotOrder []int
		{
			k := NewKernel()
			next := 0
			var fire func(id int)
			add := func(s spawn) {
				if next >= maxEvents {
					return
				}
				id := next
				next++
				if s.useAt {
					k.ScheduleAt(k.Now()+s.delay, func() { fire(id) })
				} else {
					k.Schedule(s.delay, func() { fire(id) })
				}
			}
			fire = func(id int) {
				gotOrder = append(gotOrder, id)
				for _, s := range children[id] {
					add(s)
				}
			}
			for _, d := range initial {
				add(spawn{delay: d})
			}
			k.RunUntilIdle()
		}

		// Execution 2: the reference model. ScheduleAt(now+d) and
		// Schedule(d) are the same operation in the model.
		var wantOrder []int
		{
			r := &refKernel{}
			next := 0
			add := func(d Tick) {
				if next >= maxEvents {
					return
				}
				r.schedule(d, next)
				next++
			}
			for _, d := range initial {
				add(d)
			}
			r.run(func(id int) {
				wantOrder = append(wantOrder, id)
				for _, s := range children[id] {
					add(s.delay)
				}
			})
		}

		if len(gotOrder) != len(wantOrder) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(gotOrder), len(wantOrder))
		}
		for i := range gotOrder {
			if gotOrder[i] != wantOrder[i] {
				t.Fatalf("seed %d: fire %d is event %d, reference fired %d\nkernel:    %v\nreference: %v",
					seed, i, gotOrder[i], wantOrder[i], gotOrder, wantOrder)
			}
		}
	}
}

// TestEventLoopZeroAllocs pins the steady-state event loop — delay-0/1
// self-reschedules with a registered poller, plus a warmed far-heap
// path — at zero allocations per event.
func TestEventLoopZeroAllocs(t *testing.T) {
	k := NewKernel()
	k.AddPoller(1000, func() {})
	var step func()
	n := 0
	step = func() {
		n++
		switch n % 16 {
		case 0:
			k.Schedule(0, step)
		case 5:
			k.Schedule(40, step) // exercise the far heap too
		default:
			k.Schedule(1, step)
		}
	}
	// Warm the lane rings and the heap's backing array.
	k.Schedule(1, step)
	k.Run(k.Now() + 2000)
	if k.Stopped() || n == 0 {
		t.Fatal("warm-up did not run")
	}

	avg := testing.AllocsPerRun(20, func() {
		k.Run(k.Now() + 500)
	})
	if avg != 0 {
		t.Fatalf("steady-state event loop allocates %.2f times per 500-tick run, want 0", avg)
	}
}
