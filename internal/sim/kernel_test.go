package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestRunsInTimeOrder(t *testing.T) {
	k := NewKernel()
	var order []Tick
	for _, d := range []Tick{30, 10, 20, 10, 0} {
		d := d
		k.Schedule(d, func() { order = append(order, k.Now()) })
	}
	k.RunUntilIdle()
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if len(order) != 5 {
		t.Fatalf("fired %d of 5 events", len(order))
	}
}

func TestSameTickFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5, func() { order = append(order, i) })
	}
	k.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-tick events reordered: %v", order)
		}
	}
}

func TestZeroDelayRunsLaterSameTick(t *testing.T) {
	k := NewKernel()
	var trace []string
	k.Schedule(1, func() {
		trace = append(trace, "a")
		k.Schedule(0, func() { trace = append(trace, "c") })
	})
	k.Schedule(1, func() { trace = append(trace, "b") })
	k.RunUntilIdle()
	if got := trace[0] + trace[1] + trace[2]; got != "abc" {
		t.Fatalf("zero-delay ordering wrong: %v", trace)
	}
	if k.Now() != 1 {
		t.Fatalf("time advanced to %d, want 1", k.Now())
	}
}

func TestRunHorizon(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.Schedule(10, func() { fired++ })
	k.Schedule(20, func() { fired++ })
	k.Run(15)
	if fired != 1 {
		t.Fatalf("horizon 15 fired %d events", fired)
	}
	if k.Pending() != 1 {
		t.Fatalf("pending %d, want 1", k.Pending())
	}
	k.RunUntilIdle()
	if fired != 2 {
		t.Fatal("remaining event lost")
	}
}

func TestStop(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.Schedule(1, func() { fired++; k.Stop() })
	k.Schedule(2, func() { fired++ })
	k.RunUntilIdle()
	if fired != 1 {
		t.Fatalf("Stop did not halt the run (fired=%d)", fired)
	}
	if !k.Stopped() {
		t.Fatal("Stopped() false after Stop")
	}
}

func TestScheduleAtPastPanics(t *testing.T) {
	k := NewKernel()
	k.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("ScheduleAt into the past did not panic")
			}
		}()
		k.ScheduleAt(5, func() {})
	})
	k.RunUntilIdle()
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) did not panic")
		}
	}()
	NewKernel().Schedule(1, nil)
}

func TestExecutedCount(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 17; i++ {
		k.Schedule(Tick(i), func() {})
	}
	k.RunUntilIdle()
	if k.Executed() != 17 {
		t.Fatalf("Executed=%d, want 17", k.Executed())
	}
}

func TestPollerFiresPeriodically(t *testing.T) {
	k := NewKernel()
	polls := 0
	k.AddPoller(10, func() { polls++ })
	for i := Tick(0); i <= 100; i += 5 {
		k.Schedule(i, func() {})
	}
	k.RunUntilIdle()
	if polls < 9 || polls > 12 {
		t.Fatalf("poller fired %d times over 100 ticks at period 10", polls)
	}
}

// TestOrderProperty: any random batch of scheduled delays fires in
// nondecreasing time order with FIFO tie-break.
func TestOrderProperty(t *testing.T) {
	err := quick.Check(func(delays []uint8) bool {
		k := NewKernel()
		type fire struct {
			at  Tick
			seq int
		}
		var fires []fire
		for i, d := range delays {
			i, d := i, d
			k.Schedule(Tick(d%50), func() { fires = append(fires, fire{k.Now(), i}) })
		}
		k.RunUntilIdle()
		if len(fires) != len(delays) {
			return false
		}
		for i := 1; i < len(fires); i++ {
			if fires[i].at < fires[i-1].at {
				return false
			}
			if fires[i].at == fires[i-1].at && delays[fires[i].seq]%50 == delays[fires[i-1].seq]%50 &&
				fires[i].seq < fires[i-1].seq {
				return false // same tick, same delay ⇒ FIFO by schedule order
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
