// Schedule choice points: the kernel-level seam the bounded exhaustive
// explorer (internal/explore) drives.
//
// The default event loop fires same-tick events in scheduling order — a
// single, deterministic interleaving. With a Chooser attached, the
// kernel instead drains every event that is co-enabled at the current
// tick into an enabled set and asks the Chooser which one fires next.
// The only ordering the kernel still enforces is per *unit*: events
// tagged with the same unit (one link's deliveries, one sequencer's
// responses) fire in scheduling order, because those components pair a
// prebound drain closure with an internal FIFO queue and reordering
// their events against each other would desynchronize the pairing, not
// model a real behavior. Untagged events all share pseudo-unit 0 and
// therefore keep their deterministic relative order — a conservative
// under-approximation that is always sound.
//
// Tags also carry an optional cache-line footprint, which is what the
// explorer's independence relation (events on disjoint lines of
// different units commute) is computed from. A tag is one uint64:
//
//	[63........44][43.................0]
//	 comp | unit    line address + 1 (0 = unknown footprint)
//
// The FIFO chooser reproduces the default order bit-for-bit; the
// script chooser replays a recorded schedule (the artifact `schedule`
// field) bit-identically.
package sim

import "fmt"

// Component classes for tag construction. Class 0 is reserved for
// untagged events.
const (
	CompLink      uint32 = 1 // network.Link message deliveries
	CompSequencer uint32 = 2 // viper.Sequencer response deliveries
	CompTester    uint32 = 3 // core tester wavefront issue rounds
	CompMemCtrl   uint32 = 4 // memctrl service/completion events
)

const (
	tagLineBits = 44
	tagLineMask = (uint64(1) << tagLineBits) - 1
	tagUnitBits = 16
	tagUnitMask = (uint32(1) << tagUnitBits) - 1
)

// MakeUnitTag builds an event tag carrying a component class and unit
// but no line footprint: the event stays ordered within its unit and
// is treated as dependent with everything by the explorer.
func MakeUnitTag(comp, unit uint32) uint64 {
	return (uint64(comp)<<tagUnitBits | uint64(unit&tagUnitMask)) << tagLineBits
}

// MakeLineTag builds an event tag carrying a component class, unit,
// and the cache-line address the event touches. Line addresses are
// stored +1 so a zero line field always means "unknown footprint"; an
// address too large for the field degrades to unknown, which is merely
// conservative.
func MakeLineTag(comp, unit uint32, lineAddr uint64) uint64 {
	t := MakeUnitTag(comp, unit)
	if lineAddr+1 > tagLineMask {
		return t
	}
	return t | (lineAddr + 1)
}

// TagUnit extracts a tag's component+unit key. Zero identifies the
// untagged pseudo-unit.
func TagUnit(tag uint64) uint64 { return tag >> tagLineBits }

// TagLine extracts a tag's line footprint. ok is false when the event
// declared no (or an unrepresentable) footprint.
func TagLine(tag uint64) (lineAddr uint64, ok bool) {
	lf := tag & tagLineMask
	if lf == 0 {
		return 0, false
	}
	return lf - 1, true
}

// NewUnit hands out a fresh unit ID for tag construction. Unit IDs are
// per-kernel and deliberately survive Reset — components (links,
// sequencers) outlive kernel resets, and a stale-but-unique ID is
// always sound. IDs wrap after 2^16 units, which merely merges
// ordering domains (conservative), never splits them.
func (k *Kernel) NewUnit() uint32 {
	k.unitSeq++
	return k.unitSeq & tagUnitMask
}

// Enabled describes one co-enabled candidate event offered to a
// Chooser: its global scheduling sequence number (the stable identity
// a schedule script records) and its tag.
type Enabled struct {
	Seq uint64
	Tag uint64
}

// Chooser picks which co-enabled event fires next. Choose is called
// once per fired event — even when only one candidate is enabled — so
// an explorer observes the complete event stream, which sleep-set
// maintenance needs. It must return an index into candidates; the
// candidate list is the per-unit heads of the enabled set, ordered by
// scheduling sequence (so candidates[0] is always the default FIFO
// pick). The slice is reused across calls and must not be retained.
//
// A Choose implementation may call Kernel.Stop to abandon the run; the
// chosen event is then not fired.
type Chooser interface {
	Choose(now Tick, candidates []Enabled) int
}

// SetChooser attaches (or, with nil, detaches) a schedule chooser.
// With no chooser the event loop is the plain deterministic FIFO loop,
// bit-for-bit identical to builds without choice points. Attaching a
// chooser mid-run is only valid between Run calls. Like the tracer,
// the chooser survives Reset.
func (k *Kernel) SetChooser(c Chooser) { k.chooser = c }

// FIFOChooser always picks the lowest-sequence candidate — the default
// deterministic order. A run under FIFOChooser is bit-identical to a
// run with no chooser at all (pinned by TestChooserFIFOBitIdentical).
type FIFOChooser struct{}

// Choose picks candidates[0], the global FIFO head.
func (FIFOChooser) Choose(Tick, []Enabled) int { return 0 }

// ScriptChooser replays a recorded schedule: at every choice point
// with more than one candidate it consumes the next recorded sequence
// number and picks the matching candidate. Single-candidate calls and
// calls past the end of the script fall back to FIFO order. A recorded
// sequence number that matches no candidate marks the replay diverged;
// the error is reported through Err rather than panicking so the
// caller can surface it after the run.
type ScriptChooser struct {
	script []uint64
	pos    int
	err    error
}

// NewScriptChooser builds a chooser replaying script (a sequence of
// chosen event sequence numbers, one per multi-candidate choice point,
// in execution order).
func NewScriptChooser(script []uint64) *ScriptChooser {
	return &ScriptChooser{script: script}
}

// Choose follows the script.
func (s *ScriptChooser) Choose(now Tick, cands []Enabled) int {
	if len(cands) < 2 || s.err != nil || s.pos >= len(s.script) {
		return 0
	}
	want := s.script[s.pos]
	s.pos++
	for i := range cands {
		if cands[i].Seq == want {
			return i
		}
	}
	s.err = fmt.Errorf("sim: schedule diverged at tick %d: scripted event seq %d not among %d candidates (script entry %d of %d)",
		now, want, len(cands), s.pos, len(s.script))
	return 0
}

// Err reports a divergence detected during replay, if any.
func (s *ScriptChooser) Err() error { return s.err }

// Consumed returns how many script entries have been consumed; a fully
// faithful replay consumes the whole script.
func (s *ScriptChooser) Consumed() int { return s.pos }

// runChoose is the choice-point event loop: Run dispatches here when a
// chooser is attached. Instead of firing the head event directly, it
// drains everything enabled at the current tick into k.enabled (kept
// sorted by seq), builds the per-unit head candidates, and lets the
// chooser pick. All loop state lives in kernel fields so a Snapshot
// taken from inside Choose captures a resumable cut.
func (k *Kernel) runChoose(until Tick) Tick {
	for !k.stopped {
		if len(k.enabled) == 0 {
			src, head := k.peekNext()
			if src == srcNone || head.when > until {
				break
			}
			if head.when > k.now {
				k.advanceTo(head.when)
			}
			k.firePollers()
			k.drainTick()
		}
		k.buildCandidates()
		i := k.chooser.Choose(k.now, k.candBuf)
		if k.stopped {
			break
		}
		if i < 0 || i >= len(k.candBuf) {
			panic(fmt.Sprintf("sim: Choose returned %d of %d candidates", i, len(k.candBuf)))
		}
		pos := k.candPos[i]
		e := k.enabled[pos]
		copy(k.enabled[pos:], k.enabled[pos+1:])
		k.enabled[len(k.enabled)-1].fn = nil
		k.enabled = k.enabled[:len(k.enabled)-1]
		k.executed++
		e.fn()
		// Delay-0 schedules from the fired event join the enabled set;
		// they carry higher seqs, so appending keeps it sorted.
		for k.curr.n > 0 {
			k.enabled = append(k.enabled, k.curr.pop())
		}
	}
	return k.now
}

// drainTick moves every event pending at the current tick (the curr
// FIFO plus any far-heap events that have come due) into the enabled
// set, merged in seq order.
func (k *Kernel) drainTick() {
	for k.curr.n > 0 || (len(k.far) > 0 && k.far[0].when == k.now) {
		if k.curr.n > 0 && (len(k.far) == 0 || k.far[0].when != k.now || k.curr.peek().seq < k.far[0].seq) {
			k.enabled = append(k.enabled, k.curr.pop())
		} else {
			k.enabled = append(k.enabled, k.far.popMin())
		}
	}
}

// buildCandidates scans the enabled set (seq-sorted) and collects the
// first event of each unit: per-unit FIFO order is the one constraint
// choosers cannot override. candidates[0] is the global seq head.
func (k *Kernel) buildCandidates() {
	k.candBuf = k.candBuf[:0]
	k.candPos = k.candPos[:0]
	k.unitSeen = k.unitSeen[:0]
scan:
	for i := range k.enabled {
		u := TagUnit(k.enabled[i].tag)
		for _, seen := range k.unitSeen {
			if seen == u {
				continue scan
			}
		}
		k.unitSeen = append(k.unitSeen, u)
		k.candBuf = append(k.candBuf, Enabled{Seq: k.enabled[i].seq, Tag: k.enabled[i].tag})
		k.candPos = append(k.candPos, i)
	}
}
