package directory

import (
	"strings"
	"testing"

	"drftest/internal/coverage"
	"drftest/internal/mem"
	"drftest/internal/memctrl"
	"drftest/internal/protocol"
	"drftest/internal/sim"
)

// fakeCPU is a scriptable CPUPort.
type fakeCPU struct {
	probes []bool // inv flags, in order
	ack    func(inv bool) (dirty []byte, fromVic bool)
}

func (f *fakeCPU) Probe(line mem.Addr, inv bool, ack func([]byte, bool)) {
	f.probes = append(f.probes, inv)
	if f.ack != nil {
		d, v := f.ack(inv)
		ack(d, v)
		return
	}
	ack(nil, false)
}

// fakeGPU is a scriptable GPUPort.
type fakeGPU struct{ probes int }

func (f *fakeGPU) ProbeInv(line mem.Addr, done func()) {
	f.probes++
	done()
}

func newDir(t *testing.T) (*sim.Kernel, *Directory, *mem.Store, *coverage.Collector) {
	t.Helper()
	k := sim.NewKernel()
	col := coverage.NewCollector(NewSpec())
	store := mem.NewStore()
	ctrl := memctrl.New(k, memctrl.DefaultConfig(), store, nil)
	return k, New(k, col, nil, ctrl, 64), store, col
}

func TestSpecCounts(t *testing.T) {
	s := NewSpec()
	if s.NumCells() != 70 {
		t.Fatalf("directory has %d cells, want 70", s.NumCells())
	}
	coverable := s.NumCells() - s.CountKind(0) // protocol.Undefined == 0
	if coverable != 50 {
		t.Fatalf("coverable cells = %d, want 50", coverable)
	}
}

func TestGPUFetchSetsGState(t *testing.T) {
	k, d, store, _ := newDir(t)
	store.WriteWord(0x40, 7)
	var got []byte
	d.FetchLine(0x40, 64, func(data *mem.Line, _ any) {
		got = append([]byte(nil), data.Data...)
		data.Release()
	}, nil)
	k.RunUntilIdle()
	if got == nil || got[0] != 7 {
		t.Fatal("fetch returned wrong data")
	}
	if d.state(0x40) != StateG {
		t.Fatalf("state after GPU fetch = %s", States[d.state(0x40)])
	}
}

func TestCPUReadProbesGPU(t *testing.T) {
	k, d, _, _ := newDir(t)
	gpu := &fakeGPU{}
	d.AttachGPU(gpu)
	cpu := d.AttachCPU(&fakeCPU{})
	d.FetchLine(0x80, 64, func(l *mem.Line, _ any) { l.Release() }, nil)
	k.RunUntilIdle()
	var kind FillKind
	d.CPURead(cpu, 0x80, func(_ []byte, fk FillKind) { kind = fk })
	k.RunUntilIdle()
	if gpu.probes != 1 {
		t.Fatalf("GPU probed %d times, want 1", gpu.probes)
	}
	if kind != FillE {
		t.Fatalf("sole CPU reader got %v, want FillE", kind)
	}
	if d.state(0x80) != StateCM {
		t.Fatal("E-grant should make the line CM (potential dirty owner)")
	}
}

func TestStaleWriteBackIgnored(t *testing.T) {
	k, d, store, col := newDir(t)
	cpu := d.AttachCPU(&fakeCPU{})
	store.WriteWord(0x100, 1)
	// Write-back for a line the directory thinks is uncached: the
	// victim raced a probe; memory must not be clobbered.
	stale := make([]byte, 64)
	stale[0] = 0xFF
	done := false
	d.CPUWriteBack(cpu, 0x100, stale, func() { done = true })
	k.RunUntilIdle()
	if !done {
		t.Fatal("stale vic never acknowledged")
	}
	if store.ReadWord(0x100) != 1 {
		t.Fatal("stale victim corrupted memory")
	}
	if col.Matrix("Directory").Hits[StateU][EvCPUVic] == 0 {
		t.Fatal("[U,CPU_Vic] stale path not recorded")
	}
	if _, _, staleVics := d.Stats(); staleVics != 1 {
		t.Fatalf("staleVics=%d", staleVics)
	}
}

func TestAtomicNackInB(t *testing.T) {
	k, d, _, col := newDir(t)
	// Start a long transaction on the line, then fire an atomic at it
	// mid-flight: the atomic must NACK, not stall.
	d.FetchLine(0x140, 64, func(l *mem.Line, _ any) { l.Release() }, nil)
	nacked := false
	d.Atomic(0x140, 1, func(_ uint32, nack bool, _ any) { nacked = nack }, nil)
	k.RunUntilIdle()
	if !nacked {
		t.Fatal("atomic on a busy line was not NACKed")
	}
	if col.Matrix("Directory").Hits[StateB][EvGPUAt] == 0 {
		t.Fatal("[B,GPU_At] not recorded")
	}
}

func TestAtomicCleansCPUCopies(t *testing.T) {
	k, d, store, _ := newDir(t)
	dirty := make([]byte, 64)
	dirty[0] = 9
	fc := &fakeCPU{ack: func(inv bool) ([]byte, bool) {
		if inv {
			return dirty, false
		}
		return nil, false
	}}
	cpu := d.AttachCPU(fc)
	d.CPUReadX(cpu, 0x180, false, func([]byte, FillKind) {})
	k.RunUntilIdle()
	if d.state(0x180) != StateCM {
		t.Fatal("CPU should own the line")
	}
	// First atomic: NACK + cleanup; retry until success.
	var old uint32
	var fire func()
	fire = func() {
		d.Atomic(0x180, 1, func(o uint32, nack bool, _ any) {
			if nack {
				k.Schedule(20, fire)
				return
			}
			old = o + 1 // mark completion (old is 9<<0? value check below)
		}, nil)
	}
	fire()
	k.RunUntilIdle()
	if len(fc.probes) == 0 {
		t.Fatal("CPU copy never probed")
	}
	if store.ByteAt(0x180) == 0 {
		t.Fatal("dirty CPU data never reached memory")
	}
	if old == 0 {
		t.Fatal("atomic never succeeded after cleanup")
	}
	if d.state(0x180) != StateU && d.state(0x180) != StateG {
		t.Fatalf("post-atomic state = %s", States[d.state(0x180)])
	}
}

func TestBlockingSerializesSameLine(t *testing.T) {
	k, d, _, _ := newDir(t)
	order := []int{}
	d.FetchLine(0x200, 64, func(l *mem.Line, _ any) { order = append(order, 1); l.Release() }, nil)
	d.FetchLine(0x200, 64, func(l *mem.Line, _ any) { order = append(order, 2); l.Release() }, nil)
	payload := d.lines.Get(64)
	clear(payload.Data)
	d.WriteLine(0x200, payload, func(any) { order = append(order, 3) }, nil)
	k.RunUntilIdle()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("blocked ops completed out of order: %v", order)
	}
}

func TestUpgradeVsFullFill(t *testing.T) {
	k, d, _, col := newDir(t)
	cpu := d.AttachCPU(&fakeCPU{})
	d.CPURead(cpu, 0x240, func([]byte, FillKind) {})
	k.RunUntilIdle()
	// Upgrade: requester still holds the line → nil data fill.
	var data []byte = []byte{1}
	d.CPUReadX(cpu, 0x240, true, func(b []byte, _ FillKind) { data = b })
	k.RunUntilIdle()
	if data != nil {
		t.Fatal("upgrade should carry no data")
	}
	if col.Matrix("Directory").Hits[StateCM][EvCPUUpg] == 0 {
		t.Fatal("[CM,CPU_Upg] not recorded")
	}
	// Stale upgrade: have=true but directory no longer lists the cpu.
	d2cpu := d.AttachCPU(&fakeCPU{})
	d.CPUReadX(d2cpu, 0x240, true, func(b []byte, _ FillKind) { data = b })
	k.RunUntilIdle()
	if data == nil {
		t.Fatal("stale upgrade must be serviced as a full fill")
	}
}

// TestDirectorySpecTextRoundTrip: the directory table survives the
// SLICC-like textual form.
func TestDirectorySpecTextRoundTrip(t *testing.T) {
	orig := NewSpec()
	var b strings.Builder
	if err := orig.Format(&b); err != nil {
		t.Fatal(err)
	}
	re, err := protocol.ParseSpec(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(re) {
		t.Fatalf("round trip changed the table: %v", orig.Diff(re))
	}
}

// TestDirectorySteadyStateAllocs pins the closure-free transaction
// engine: once the TBE pool, stall queues and response FIFO are warm,
// a round of GPU fetches, write-throughs and atomics over a fixed
// working set allocates nothing. (CPU/DMA read responses are excluded:
// they hand out a fresh copy of borrowed bytes by contract.)
func TestDirectorySteadyStateAllocs(t *testing.T) {
	k, d, _, _ := newDir(t)
	pool := mem.NewLinePool(64)
	lines := []mem.Addr{0x000, 0x040, 0x080, 0x0c0, 0x100, 0x140, 0x180, 0x1c0}
	round := func() {
		for _, ln := range lines {
			d.FetchLine(ln, 64, func(l *mem.Line, _ any) { l.Release() }, nil)
		}
		k.RunUntilIdle()
		for _, ln := range lines {
			wl := pool.Get(64)
			wl.Data[0] = byte(ln)
			d.WriteLine(ln, wl, func(any) {}, nil)
		}
		k.RunUntilIdle()
		for _, ln := range lines {
			d.Atomic(ln, 1, func(uint32, bool, any) {}, nil)
		}
		k.RunUntilIdle()
	}
	for i := 0; i < 3; i++ {
		round() // warm pools, maps and rings
	}
	if n := testing.AllocsPerRun(50, round); n != 0 {
		t.Fatalf("steady-state directory round allocates %.1f objects, want 0", n)
	}
}
