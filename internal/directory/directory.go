package directory

import (
	"fmt"
	"sort"

	"drftest/internal/mem"
	"drftest/internal/memctrl"
	"drftest/internal/protocol"
	"drftest/internal/sim"
)

// CPUPort is a CPU cache as the directory sees it.
type CPUPort interface {
	// Probe asks the cache to invalidate (inv) or downgrade (!inv) the
	// line. ack carries the dirty line data (nil if clean) and fromVic
	// when the data came from a pending write-back rather than a live
	// copy.
	Probe(line mem.Addr, inv bool, ack func(dirty []byte, fromVic bool))
}

// GPUPort is the GPU L2 as the directory sees it.
type GPUPort interface {
	ProbeInv(line mem.Addr, done func())
}

// FillKind tells a CPU cache what permission its fill grants.
type FillKind uint8

const (
	// FillS grants a shared clean copy.
	FillS FillKind = iota
	// FillE grants an exclusive clean copy.
	FillE
	// FillM grants write permission (store miss or upgrade; data is
	// nil for upgrades — the cache keeps its bytes).
	FillM
)

type dirOp uint8

const (
	opGPURd dirOp = iota
	opGPUWr
	opGPUAt
	opGPUClean // post-NACK cleanup of CPU copies
	opCPURd
	opCPURdX
	opCPUVic
	opDMARd
	opDMAWr
)

type tbe struct {
	op   dirOp
	line mem.Addr
	cpu  int
	gpu  int // requesting GPU for GPU ops; -1 otherwise

	probesOut int
	dirty     []byte // probe data that must reach memory
	serve     []byte // probe data served directly (owner keeps O)
	upgrade   bool   // CPURdX by an existing sharer: no data needed

	wrData []byte
	wrMask []bool
	atAddr mem.Addr
	delta  uint32

	doneData func([]byte)
	doneCPU  func([]byte, FillKind)
	done     func()
	doneAt   func(uint32, bool)
}

// Directory is the blocking CPU–GPU–DMA system directory. It
// implements the GPU L2's backend interface (FetchLine / WriteLine /
// Atomic) structurally, so a viper system can be built directly on it.
type Directory struct {
	k        *sim.Kernel
	machine  *protocol.Machine
	mem      *memctrl.Controller
	lineSize int

	// probeLatency and respLatency model the interconnect hops.
	probeLatency sim.Tick
	respLatency  sim.Tick

	gpus []GPUPort
	cpus []CPUPort

	// gpuHolders lists which GPU L2s may hold each line; multi-GPU
	// systems probe the *other* L2s on writes and atomics (Table II's
	// "invalidation request from other L2").
	gpuHolders map[mem.Addr]map[int]bool
	sharers    map[mem.Addr]map[int]bool
	owner      map[mem.Addr]int
	tbes       map[mem.Addr]*tbe
	stalled    map[mem.Addr][]func()

	// stats
	nacks, probes, staleVics uint64
}

// New builds a directory over ctrl with the given line size.
func New(k *sim.Kernel, rec protocol.Recorder, onFault func(*protocol.FaultError), ctrl *memctrl.Controller, lineSize int) *Directory {
	m := protocol.NewMachine(NewSpec(), rec)
	m.OnFault = onFault
	return &Directory{
		k:            k,
		machine:      m,
		mem:          ctrl,
		lineSize:     lineSize,
		probeLatency: 8,
		respLatency:  8,
		gpuHolders:   make(map[mem.Addr]map[int]bool),
		sharers:      make(map[mem.Addr]map[int]bool),
		owner:        make(map[mem.Addr]int),
		tbes:         make(map[mem.Addr]*tbe),
		stalled:      make(map[mem.Addr][]func()),
	}
}

// AttachGPU registers a GPU (slot 0) for probes — the common
// single-GPU case. Multi-GPU systems use AddGPU/BindGPU/GPUBackend.
func (d *Directory) AttachGPU(gpu GPUPort) {
	if len(d.gpus) == 0 {
		d.AddGPU()
	}
	d.BindGPU(0, gpu)
}

// AddGPU reserves a GPU slot and returns its ID; the port is bound
// later with BindGPU (the viper system needs the backend to build, and
// the directory needs the built system to probe).
func (d *Directory) AddGPU() int {
	d.gpus = append(d.gpus, nil)
	return len(d.gpus) - 1
}

// BindGPU wires the probe port for a reserved GPU slot.
func (d *Directory) BindGPU(id int, gpu GPUPort) { d.gpus[id] = gpu }

// GPUBackend returns the memory backend GPU id's L2 should be built
// on; it tags every request with the GPU's identity so the directory
// can probe the other GPUs' L2 copies.
func (d *Directory) GPUBackend(id int) GPUBackendPort {
	return GPUBackendPort{d: d, id: id}
}

// GPUBackendPort adapts one GPU's view of the directory to the viper
// Backend interface.
type GPUBackendPort struct {
	d  *Directory
	id int
}

// FetchLine implements the GPU L2 backend.
func (g GPUBackendPort) FetchLine(line mem.Addr, size int, done func([]byte)) {
	g.d.gpuFetch(g.id, line, size, done)
}

// WriteLine implements the GPU L2 backend.
func (g GPUBackendPort) WriteLine(line mem.Addr, data []byte, mask []bool, done func()) {
	g.d.gpuWrite(g.id, line, data, mask, done)
}

// Atomic implements the GPU L2 backend.
func (g GPUBackendPort) Atomic(addr mem.Addr, delta uint32, done func(uint32, bool)) {
	g.d.gpuAtomic(g.id, addr, delta, done)
}

// AttachCPU registers a CPU cache and returns its port ID.
func (d *Directory) AttachCPU(c CPUPort) int {
	d.cpus = append(d.cpus, c)
	return len(d.cpus) - 1
}

// Memory exposes the backing memory controller.
func (d *Directory) Memory() *memctrl.Controller { return d.mem }

// Stats returns (nacks, probes, staleVics).
func (d *Directory) Stats() (nacks, probes, staleVics uint64) {
	return d.nacks, d.probes, d.staleVics
}

func (d *Directory) state(line mem.Addr) int {
	if _, busy := d.tbes[line]; busy {
		return StateB
	}
	if len(d.gpuHolders[line]) > 0 {
		return StateG
	}
	if d.ownerOf(line) >= 0 {
		return StateCM
	}
	if len(d.sharers[line]) > 0 {
		return StateCS
	}
	return StateU
}

func (d *Directory) ownerOf(line mem.Addr) int {
	if o, ok := d.owner[line]; ok {
		return o
	}
	return -1
}

// request fires ev for line; on stall it queues retry, otherwise it
// calls start with the pre-transaction stable state.
func (d *Directory) request(line mem.Addr, ev int, retry func(), start func(st int)) {
	st := d.state(line)
	cell := d.machine.Fire(st, ev)
	switch cell.Kind {
	case protocol.Stall:
		d.stalled[line] = append(d.stalled[line], retry)
	case protocol.Defined:
		start(st)
	}
}

// --- GPU side ---

// FetchLine, WriteLine and Atomic keep the single-GPU convenience
// surface (GPU slot 0); multi-GPU systems go through GPUBackend.

// FetchLine services a GPU L2 miss.
func (d *Directory) FetchLine(line mem.Addr, size int, done func([]byte)) {
	d.gpuFetch(0, line, size, done)
}

// WriteLine services a GPU write-through.
func (d *Directory) WriteLine(line mem.Addr, data []byte, mask []bool, done func()) {
	d.gpuWrite(0, line, data, mask, done)
}

// Atomic services a GPU atomic.
func (d *Directory) Atomic(addr mem.Addr, delta uint32, done func(old uint32, nack bool)) {
	d.gpuAtomic(0, addr, delta, done)
}

func (d *Directory) gpuFetch(gpu int, line mem.Addr, size int, done func([]byte)) {
	if size != d.lineSize {
		panic(fmt.Sprintf("directory: fetch size %d != line size %d", size, d.lineSize))
	}
	d.request(line, EvGPURd,
		func() { d.gpuFetch(gpu, line, size, done) },
		func(st int) {
			d.begin(&tbe{op: opGPURd, line: line, gpu: gpu, doneData: done}, st)
		})
}

func (d *Directory) gpuWrite(gpu int, line mem.Addr, data []byte, mask []bool, done func()) {
	d.request(line, EvGPUWr,
		func() { d.gpuWrite(gpu, line, data, mask, done) },
		func(st int) {
			d.begin(&tbe{op: opGPUWr, line: line, gpu: gpu, wrData: data, wrMask: mask, done: done}, st)
		})
}

// gpuAtomic never blocks the requester: a busy or CPU-held line is
// NACKed (the TCC's AtomicND path) and, for CPU-held lines, a cleanup
// transaction evicts the CPU copies so the retry can succeed.
func (d *Directory) gpuAtomic(gpu int, addr mem.Addr, delta uint32, done func(old uint32, nack bool)) {
	line := mem.LineAddr(addr, d.lineSize)
	st := d.state(line)
	cell := d.machine.Fire(st, EvGPUAt)
	if cell.Kind != protocol.Defined {
		return
	}
	switch st {
	case StateB:
		d.nacks++
		d.k.Schedule(d.respLatency, func() { done(0, true) })
	case StateCS, StateCM:
		d.nacks++
		d.k.Schedule(d.respLatency, func() { done(0, true) })
		d.begin(&tbe{op: opGPUClean, line: line, gpu: gpu}, st)
	default:
		d.begin(&tbe{op: opGPUAt, line: line, gpu: gpu, atAddr: addr, delta: delta, doneAt: done}, st)
	}
}

// --- CPU side ---

// CPURead services a CPU load miss.
func (d *Directory) CPURead(cpu int, line mem.Addr, done func(data []byte, kind FillKind)) {
	d.request(line, EvCPURd,
		func() { d.CPURead(cpu, line, done) },
		func(st int) {
			d.begin(&tbe{op: opCPURd, line: line, cpu: cpu, doneCPU: done}, st)
		})
}

// CPUReadX services a CPU store miss or upgrade. have reports whether
// the requester still holds a valid copy; only when both the requester
// and the directory agree is the fill an upgrade (nil data) — sharer
// lists go stale when caches silently drop clean lines, and probes can
// invalidate the requester's copy while its request is in flight.
func (d *Directory) CPUReadX(cpu int, line mem.Addr, have bool, done func(data []byte, kind FillKind)) {
	ev := EvCPURdX
	if have {
		// The requester believes it holds a copy: an upgrade. A stale
		// upgrade (the directory no longer lists the requester — a
		// probe raced the request) is still accepted but serviced as a
		// full exclusive fill.
		ev = EvCPUUpg
	}
	d.request(line, ev,
		func() { d.CPUReadX(cpu, line, have, done) },
		func(st int) {
			t := &tbe{op: opCPURdX, line: line, cpu: cpu, doneCPU: done}
			t.upgrade = have && d.sharers[line][cpu]
			d.begin(t, st)
		})
}

// CPUWriteBack services a dirty victim. Write-backs that lost a race
// with a probe (the directory no longer believes cpu owns the line)
// are acknowledged without touching memory.
func (d *Directory) CPUWriteBack(cpu int, line mem.Addr, data []byte, done func()) {
	d.request(line, EvCPUVic,
		func() { d.CPUWriteBack(cpu, line, data, done) },
		func(st int) {
			if st != StateCM || d.ownerOf(line) != cpu {
				d.staleVics++
				d.k.Schedule(d.respLatency, done)
				return
			}
			d.begin(&tbe{op: opCPUVic, line: line, cpu: cpu, wrData: data, done: done}, st)
		})
}

// --- DMA side ---

// DMARead services a DMA engine read.
func (d *Directory) DMARead(line mem.Addr, done func([]byte)) {
	d.request(line, EvDMARd,
		func() { d.DMARead(line, done) },
		func(st int) {
			d.begin(&tbe{op: opDMARd, line: line, doneData: done}, st)
		})
}

// DMAWrite services a DMA engine write.
func (d *Directory) DMAWrite(line mem.Addr, data []byte, done func()) {
	d.request(line, EvDMAWr,
		func() { d.DMAWrite(line, data, done) },
		func(st int) {
			d.begin(&tbe{op: opDMAWr, line: line, wrData: data, done: done}, st)
		})
}

// --- transaction engine ---

func (d *Directory) begin(t *tbe, st int) {
	d.tbes[t.line] = t
	switch st {
	case StateG:
		switch {
		case t.op >= opCPURd:
			// CPU and DMA ops displace every GPU copy.
			d.probeGPUs(t, -1)
		case t.op == opGPUWr || t.op == opGPUAt:
			// A write or atomic from one GPU invalidates the *other*
			// GPUs' L2 copies (write-through keeps the requester's own
			// slice coherent).
			d.probeGPUs(t, t.gpu)
		}
	case StateCS, StateCM:
		switch t.op {
		case opCPURd:
			if o := d.ownerOf(t.line); o >= 0 {
				d.probeCPU(t, o, false)
			}
		case opCPURdX:
			d.probeAllCPUs(t, t.cpu)
		case opCPUVic:
			// The victim's data is already in hand; no probes.
		default: // GPU and DMA ops clean out every CPU copy
			d.probeAllCPUs(t, -1)
		}
	}
	if t.probesOut == 0 {
		d.afterProbes(t)
	}
}

// probeGPUs invalidates every GPU holder of t.line except `except`
// (-1 probes all).
func (d *Directory) probeGPUs(t *tbe, except int) {
	ids := make([]int, 0, len(d.gpuHolders[t.line]))
	for id := range d.gpuHolders[t.line] {
		if id != except {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		id := id
		t.probesOut++
		d.probes++
		line := t.line
		d.k.Schedule(d.probeLatency, func() {
			d.gpus[id].ProbeInv(line, func() {
				d.k.Schedule(d.probeLatency, func() {
					delete(d.gpuHolders[line], id)
					d.probeAck(t, nil, false, -1, true)
				})
			})
		})
	}
}

func (d *Directory) probeAllCPUs(t *tbe, except int) {
	ids := make([]int, 0, len(d.sharers[t.line])+1)
	for id := range d.sharers[t.line] {
		ids = append(ids, id)
	}
	if o := d.ownerOf(t.line); o >= 0 && !d.sharers[t.line][o] {
		ids = append(ids, o)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if id != except {
			d.probeCPU(t, id, true)
		}
	}
}

func (d *Directory) probeCPU(t *tbe, cpu int, inv bool) {
	t.probesOut++
	d.probes++
	line := t.line
	d.k.Schedule(d.probeLatency, func() {
		d.cpus[cpu].Probe(line, inv, func(dirty []byte, fromVic bool) {
			d.k.Schedule(d.probeLatency, func() {
				if inv {
					delete(d.sharers[line], cpu)
					if d.ownerOf(line) == cpu {
						delete(d.owner, line)
					}
				} else {
					// Downgrade probe: a clean or vic'd answer means no
					// dirty owner remains.
					if dirty == nil || fromVic {
						delete(d.owner, line)
					}
					if fromVic {
						delete(d.sharers[line], cpu)
					}
				}
				d.probeAck(t, dirty, fromVic, cpu, inv)
			})
		})
	})
}

func (d *Directory) probeAck(t *tbe, dirty []byte, fromVic bool, _ int, inv bool) {
	switch {
	case dirty != nil && t.op == opCPURd && !inv && !fromVic:
		// The owner keeps an O copy and serves the data; memory may
		// stay stale while an owner exists.
		d.machine.Fire(StateB, EvPrbAckOwned)
		t.serve = dirty
	case dirty != nil:
		d.machine.Fire(StateB, EvPrbAckData)
		t.dirty = dirty
	default:
		d.machine.Fire(StateB, EvPrbAckClean)
	}
	t.probesOut--
	if t.probesOut == 0 {
		d.afterProbes(t)
	}
}

// afterProbes flushes collected dirty data to memory, then runs the
// operation's own memory phase.
func (d *Directory) afterProbes(t *tbe) {
	if t.dirty != nil {
		data := t.dirty
		t.dirty = nil
		d.mem.WriteLine(t.line, data, nil, func() {
			d.machine.Fire(StateB, EvMemWBAck)
			d.memPhase(t)
		})
		return
	}
	d.memPhase(t)
}

func (d *Directory) memPhase(t *tbe) {
	switch t.op {
	case opGPURd, opDMARd:
		d.mem.ReadLine(t.line, d.lineSize, func(data []byte) {
			d.machine.Fire(StateB, EvMemData)
			d.complete(t, data)
		})
	case opCPURd:
		if t.serve != nil {
			d.complete(t, t.serve)
			return
		}
		d.mem.ReadLine(t.line, d.lineSize, func(data []byte) {
			d.machine.Fire(StateB, EvMemData)
			d.complete(t, data)
		})
	case opCPURdX:
		if t.upgrade {
			d.complete(t, nil)
			return
		}
		d.mem.ReadLine(t.line, d.lineSize, func(data []byte) {
			d.machine.Fire(StateB, EvMemData)
			d.complete(t, data)
		})
	case opGPUWr, opCPUVic, opDMAWr:
		d.mem.WriteLine(t.line, t.wrData, t.wrMask, func() {
			d.machine.Fire(StateB, EvMemWBAck)
			d.complete(t, nil)
		})
	case opGPUAt:
		d.mem.Atomic(t.atAddr, t.delta, func(old uint32) {
			d.machine.Fire(StateB, EvMemData)
			d.complete(t, nil)
			d.k.Schedule(d.respLatency, func() { t.doneAt(old, false) })
		})
	case opGPUClean:
		d.complete(t, nil)
	}
}

func (d *Directory) complete(t *tbe, data []byte) {
	delete(d.tbes, t.line)
	line := t.line
	switch t.op {
	case opGPURd:
		set, ok := d.gpuHolders[line]
		if !ok {
			set = make(map[int]bool)
			d.gpuHolders[line] = set
		}
		set[t.gpu] = true
		d.respondData(t, data)
	case opGPUWr, opDMAWr, opDMARd:
		if t.op == opDMARd {
			d.respondData(t, data)
		} else {
			d.k.Schedule(d.respLatency, t.done)
		}
	case opCPURd:
		kind := FillS
		if len(d.sharers[line]) == 0 && d.ownerOf(line) < 0 {
			kind = FillE
			d.owner[line] = t.cpu
		}
		d.addSharer(line, t.cpu)
		d.respondCPU(t, data, kind)
	case opCPURdX:
		for id := range d.sharers[line] {
			delete(d.sharers[line], id)
		}
		d.addSharer(line, t.cpu)
		d.owner[line] = t.cpu
		d.respondCPU(t, data, FillM)
	case opCPUVic:
		delete(d.owner, line)
		delete(d.sharers[line], t.cpu)
		d.k.Schedule(d.respLatency, t.done)
	case opGPUAt, opGPUClean:
		// opGPUAt responds from memPhase (it needs the old value);
		// opGPUClean has no requester.
	}
	d.wake(line)
}

func (d *Directory) addSharer(line mem.Addr, cpu int) {
	set, ok := d.sharers[line]
	if !ok {
		set = make(map[int]bool)
		d.sharers[line] = set
	}
	set[cpu] = true
}

func (d *Directory) respondData(t *tbe, data []byte) {
	buf := make([]byte, len(data))
	copy(buf, data)
	d.k.Schedule(d.respLatency, func() { t.doneData(buf) })
}

func (d *Directory) respondCPU(t *tbe, data []byte, kind FillKind) {
	var buf []byte
	if data != nil {
		buf = make([]byte, len(data))
		copy(buf, data)
	}
	d.k.Schedule(d.respLatency, func() { t.doneCPU(buf, kind) })
}

func (d *Directory) wake(line mem.Addr) {
	queue := d.stalled[line]
	if len(queue) == 0 {
		return
	}
	delete(d.stalled, line)
	for _, retry := range queue {
		retry()
	}
}

// DebugDump renders the directory's live state for diagnosing hangs.
func (d *Directory) DebugDump() string {
	out := ""
	for line, t := range d.tbes {
		out += fmt.Sprintf("TBE line=%#x op=%d gpu=%d cpu=%d probesOut=%d\n", uint64(line), t.op, t.gpu, t.cpu, t.probesOut)
	}
	for line, q := range d.stalled {
		out += fmt.Sprintf("stalled line=%#x count=%d\n", uint64(line), len(q))
	}
	for line, hs := range d.gpuHolders {
		if len(hs) > 0 {
			out += fmt.Sprintf("holders line=%#x %v\n", uint64(line), hs)
		}
	}
	return out
}
