package directory

import (
	"fmt"
	"math/bits"

	"drftest/internal/mem"
	"drftest/internal/memctrl"
	"drftest/internal/protocol"
	"drftest/internal/sim"
)

// CPUPort is a CPU cache as the directory sees it.
type CPUPort interface {
	// Probe asks the cache to invalidate (inv) or downgrade (!inv) the
	// line. ack carries the dirty line data (nil if clean) and fromVic
	// when the data came from a pending write-back rather than a live
	// copy.
	Probe(line mem.Addr, inv bool, ack func(dirty []byte, fromVic bool))
}

// GPUPort is the GPU L2 as the directory sees it.
type GPUPort interface {
	ProbeInv(line mem.Addr, done func())
}

// FillKind tells a CPU cache what permission its fill grants.
type FillKind uint8

const (
	// FillS grants a shared clean copy.
	FillS FillKind = iota
	// FillE grants an exclusive clean copy.
	FillE
	// FillM grants write permission (store miss or upgrade; data is
	// nil for upgrades — the cache keeps its bytes).
	FillM
)

type dirOp uint8

const (
	opGPURd dirOp = iota
	opGPUWr
	opGPUAt
	opGPUClean // post-NACK cleanup of CPU copies
	opCPURd
	opCPURdX
	opCPUVic
	opDMARd
	opDMAWr
)

// maxPorts bounds the CPU and GPU port counts so holder and sharer
// sets fit in one bitmask word (no per-line set allocation).
const maxPorts = 64

// tbe carries one transaction from request to completion. TBEs are
// pooled: entry points fill one from the free list, complete (or the
// stale-vic early out) zeroes it back. Everything a stalled retry
// needs is in here, so the stall queue holds no closures.
type tbe struct {
	op   dirOp
	line mem.Addr
	cpu  int
	gpu  int // requesting GPU for GPU ops

	probesOut int
	dirty     []byte // probe data that must reach memory
	serve     []byte // probe data served directly (owner keeps O)
	have      bool   // CPURdX requester believes it holds a copy
	upgrade   bool   // CPURdX by an existing sharer: no data needed

	// wrLine is a GPU write-through payload: a borrowed line handle the
	// TBE owns until the memory phase hands it to the controller.
	wrLine *mem.Line
	wrData []byte // CPU victim / DMA write payload (borrowed bytes)
	atAddr mem.Addr
	delta  uint32

	doneData func([]byte)
	doneCPU  func([]byte, FillKind)
	done     func()
	// GPU-side completions carry the requester's opaque ctx (gctx); the
	// fill transfers a line handle the callee then owns.
	doneGPUData func(*mem.Line, any)
	doneGPU     func(any)
	doneAt      func(uint32, bool, any)
	gctx        any
}

// stalledReq is one queued retry: the event to re-fire plus the
// already-built TBE, so a stall-and-wake cycle allocates nothing.
type stalledReq struct {
	ev int
	t  *tbe
}

// pendingResp is one queued completion delivery. All requester
// responses leave the directory after the same constant respLatency
// and the kernel is stable, so a reusable FIFO drained by one prebound
// handler replaces a per-completion closure (the network.Link SendMsg
// pattern). fn holds the typed callback; kind selects its signature.
type pendingResp struct {
	kind    uint8
	nack    bool
	cpuKind FillKind
	old     uint32
	fn      any
	line    *mem.Line
	buf     []byte
	gctx    any
}

const (
	respPlain   uint8 = iota // fn: func()
	respGPUWr                // fn: func(any)
	respGPUFill              // fn: func(*mem.Line, any)
	respAtomic               // fn: func(uint32, bool, any)
	respData                 // fn: func([]byte)
	respCPU                  // fn: func([]byte, FillKind)
)

// Directory is the blocking CPU–GPU–DMA system directory. It
// implements the GPU L2's backend interface (FetchLine / WriteLine /
// Atomic) structurally, so a viper system can be built directly on it.
type Directory struct {
	k        *sim.Kernel
	machine  *protocol.Machine
	mem      *memctrl.Controller
	lineSize int
	// lines supplies payload handles for the writes the directory
	// originates itself (CPU victim flushes, DMA writes); GPU payloads
	// arrive as handles and pass through untouched.
	lines *mem.LinePool

	// probeLatency and respLatency model the interconnect hops.
	probeLatency sim.Tick
	respLatency  sim.Tick

	gpus []GPUPort
	cpus []CPUPort

	// gpuHolders is the bitmask of GPU L2s that may hold each line;
	// multi-GPU systems probe the *other* L2s on writes and atomics
	// (Table II's "invalidation request from other L2"). sharers is
	// the same for CPU caches.
	gpuHolders map[mem.Addr]uint64
	sharers    map[mem.Addr]uint64
	owner      map[mem.Addr]int
	tbes       map[mem.Addr]*tbe
	stalled    map[mem.Addr][]stalledReq

	// Free lists: retired TBEs and drained stall queues (their backing
	// arrays) cycle back through these instead of the heap.
	tbeFree   []*tbe
	stallFree [][]stalledReq

	// Completion FIFO (see pendingResp).
	respQ    []pendingResp
	respHead int
	respFn   func()

	// Prebound memory-controller callbacks; the TBE rides as ctx.
	onGPUFill   func(*mem.Line, any)
	onReadData  func(*mem.Line, any)
	onWriteDone func(any)
	onDirtyWB   func(any)
	onAtomicOld func(uint32, bool, any)

	// stats
	nacks, probes, staleVics uint64
}

// New builds a directory over ctrl with the given line size.
func New(k *sim.Kernel, rec protocol.Recorder, onFault func(*protocol.FaultError), ctrl *memctrl.Controller, lineSize int) *Directory {
	m := protocol.NewMachine(NewSpec(), rec)
	m.OnFault = onFault
	d := &Directory{
		k:            k,
		machine:      m,
		mem:          ctrl,
		lineSize:     lineSize,
		lines:        mem.NewLinePool(lineSize),
		probeLatency: 8,
		respLatency:  8,
		gpuHolders:   make(map[mem.Addr]uint64),
		sharers:      make(map[mem.Addr]uint64),
		owner:        make(map[mem.Addr]int),
		tbes:         make(map[mem.Addr]*tbe),
		stalled:      make(map[mem.Addr][]stalledReq),
	}
	d.respFn = d.deliverResp
	d.onGPUFill = func(data *mem.Line, ctx any) {
		t := ctx.(*tbe)
		d.machine.Fire(StateB, EvMemData)
		d.completeGPUFill(t, data)
	}
	d.onReadData = func(data *mem.Line, ctx any) {
		t := ctx.(*tbe)
		d.machine.Fire(StateB, EvMemData)
		d.complete(t, data.Data)
		data.Release()
	}
	d.onWriteDone = func(ctx any) {
		t := ctx.(*tbe)
		d.machine.Fire(StateB, EvMemWBAck)
		d.complete(t, nil)
	}
	d.onDirtyWB = func(ctx any) {
		t := ctx.(*tbe)
		d.machine.Fire(StateB, EvMemWBAck)
		d.memPhase(t)
	}
	d.onAtomicOld = func(old uint32, _ bool, ctx any) {
		t := ctx.(*tbe)
		d.machine.Fire(StateB, EvMemData)
		fn, gctx := t.doneAt, t.gctx
		// complete recycles the TBE and runs stalled retries; the
		// response is queued after so event order matches the retries'.
		d.complete(t, nil)
		d.pushResp(pendingResp{kind: respAtomic, fn: fn, old: old, gctx: gctx})
	}
	return d
}

// AttachGPU registers a GPU (slot 0) for probes — the common
// single-GPU case. Multi-GPU systems use AddGPU/BindGPU/GPUBackend.
func (d *Directory) AttachGPU(gpu GPUPort) {
	if len(d.gpus) == 0 {
		d.AddGPU()
	}
	d.BindGPU(0, gpu)
}

// AddGPU reserves a GPU slot and returns its ID; the port is bound
// later with BindGPU (the viper system needs the backend to build, and
// the directory needs the built system to probe).
func (d *Directory) AddGPU() int {
	if len(d.gpus) == maxPorts {
		panic("directory: too many GPUs for the holder bitmask")
	}
	d.gpus = append(d.gpus, nil)
	return len(d.gpus) - 1
}

// BindGPU wires the probe port for a reserved GPU slot.
func (d *Directory) BindGPU(id int, gpu GPUPort) { d.gpus[id] = gpu }

// GPUBackend returns the memory backend GPU id's L2 should be built
// on; it tags every request with the GPU's identity so the directory
// can probe the other GPUs' L2 copies.
func (d *Directory) GPUBackend(id int) GPUBackendPort {
	return GPUBackendPort{d: d, id: id}
}

// GPUBackendPort adapts one GPU's view of the directory to the viper
// Backend interface.
type GPUBackendPort struct {
	d  *Directory
	id int
}

// FetchLine implements the GPU L2 backend.
func (g GPUBackendPort) FetchLine(line mem.Addr, size int, done func(*mem.Line, any), ctx any) {
	g.d.gpuFetch(g.id, line, size, done, ctx)
}

// WriteLine implements the GPU L2 backend.
func (g GPUBackendPort) WriteLine(line mem.Addr, payload *mem.Line, done func(any), ctx any) {
	g.d.gpuWrite(g.id, line, payload, done, ctx)
}

// Atomic implements the GPU L2 backend.
func (g GPUBackendPort) Atomic(addr mem.Addr, delta uint32, done func(uint32, bool, any), ctx any) {
	g.d.gpuAtomic(g.id, addr, delta, done, ctx)
}

// AttachCPU registers a CPU cache and returns its port ID.
func (d *Directory) AttachCPU(c CPUPort) int {
	if len(d.cpus) == maxPorts {
		panic("directory: too many CPUs for the sharer bitmask")
	}
	d.cpus = append(d.cpus, c)
	return len(d.cpus) - 1
}

// Memory exposes the backing memory controller.
func (d *Directory) Memory() *memctrl.Controller { return d.mem }

// Stats returns (nacks, probes, staleVics).
func (d *Directory) Stats() (nacks, probes, staleVics uint64) {
	return d.nacks, d.probes, d.staleVics
}

func (d *Directory) state(line mem.Addr) int {
	if _, busy := d.tbes[line]; busy {
		return StateB
	}
	if d.gpuHolders[line] != 0 {
		return StateG
	}
	if d.ownerOf(line) >= 0 {
		return StateCM
	}
	if d.sharers[line] != 0 {
		return StateCS
	}
	return StateU
}

func (d *Directory) ownerOf(line mem.Addr) int {
	if o, ok := d.owner[line]; ok {
		return o
	}
	return -1
}

func (d *Directory) getTBE() *tbe {
	if n := len(d.tbeFree); n > 0 {
		t := d.tbeFree[n-1]
		d.tbeFree = d.tbeFree[:n-1]
		return t
	}
	return &tbe{}
}

func (d *Directory) putTBE(t *tbe) {
	*t = tbe{}
	d.tbeFree = append(d.tbeFree, t)
}

func (d *Directory) pushResp(r pendingResp) {
	d.respQ = append(d.respQ, r)
	d.k.Schedule(d.respLatency, d.respFn)
}

// deliverResp completes the oldest queued response. FIFO matching is
// sound because every response is scheduled exactly respLatency ticks
// out and the kernel is stable, so deliveries fire in queue order.
func (d *Directory) deliverResp() {
	r := d.respQ[d.respHead]
	d.respQ[d.respHead] = pendingResp{}
	d.respHead++
	if d.respHead == len(d.respQ) {
		d.respQ = d.respQ[:0]
		d.respHead = 0
	}
	switch r.kind {
	case respPlain:
		r.fn.(func())()
	case respGPUWr:
		r.fn.(func(any))(r.gctx)
	case respGPUFill:
		r.fn.(func(*mem.Line, any))(r.line, r.gctx)
	case respAtomic:
		r.fn.(func(uint32, bool, any))(r.old, r.nack, r.gctx)
	case respData:
		r.fn.(func([]byte))(r.buf)
	case respCPU:
		r.fn.(func([]byte, FillKind))(r.buf, r.cpuKind)
	}
}

// request fires ev for line; on stall it queues the TBE for a wake
// retry, otherwise the transaction starts against the pre-transaction
// stable state.
func (d *Directory) request(line mem.Addr, ev int, t *tbe) {
	st := d.state(line)
	cell := d.machine.Fire(st, ev)
	switch cell.Kind {
	case protocol.Stall:
		q, ok := d.stalled[line]
		if !ok && len(d.stallFree) > 0 {
			q = d.stallFree[len(d.stallFree)-1]
			d.stallFree = d.stallFree[:len(d.stallFree)-1]
		}
		d.stalled[line] = append(q, stalledReq{ev: ev, t: t})
	case protocol.Defined:
		d.start(t, st)
	}
}

// start runs the per-op admission logic that must see the transaction's
// actual start state (not its enqueue state), then begins it.
func (d *Directory) start(t *tbe, st int) {
	switch t.op {
	case opCPURdX:
		// Upgrade validity is judged now: sharer lists go stale while a
		// request waits, and probes can invalidate the requester's copy.
		t.upgrade = t.have && d.sharers[t.line]&(1<<uint(t.cpu)) != 0
	case opCPUVic:
		// Write-backs that lost a race with a probe (the directory no
		// longer believes t.cpu owns the line) are acknowledged without
		// touching memory.
		if st != StateCM || d.ownerOf(t.line) != t.cpu {
			d.staleVics++
			d.pushResp(pendingResp{kind: respPlain, fn: t.done})
			d.putTBE(t)
			return
		}
	}
	d.begin(t, st)
}

// --- GPU side ---

// FetchLine, WriteLine and Atomic keep the single-GPU convenience
// surface (GPU slot 0); multi-GPU systems go through GPUBackend.

// FetchLine services a GPU L2 miss.
func (d *Directory) FetchLine(line mem.Addr, size int, done func(*mem.Line, any), ctx any) {
	d.gpuFetch(0, line, size, done, ctx)
}

// WriteLine services a GPU write-through.
func (d *Directory) WriteLine(line mem.Addr, payload *mem.Line, done func(any), ctx any) {
	d.gpuWrite(0, line, payload, done, ctx)
}

// Atomic services a GPU atomic.
func (d *Directory) Atomic(addr mem.Addr, delta uint32, done func(old uint32, nack bool, ctx any), ctx any) {
	d.gpuAtomic(0, addr, delta, done, ctx)
}

func (d *Directory) gpuFetch(gpu int, line mem.Addr, size int, done func(*mem.Line, any), ctx any) {
	if size != d.lineSize {
		panic(fmt.Sprintf("directory: fetch size %d != line size %d", size, d.lineSize))
	}
	t := d.getTBE()
	t.op, t.line, t.gpu, t.doneGPUData, t.gctx = opGPURd, line, gpu, done, ctx
	d.request(line, EvGPURd, t)
}

func (d *Directory) gpuWrite(gpu int, line mem.Addr, payload *mem.Line, done func(any), ctx any) {
	t := d.getTBE()
	t.op, t.line, t.gpu, t.wrLine, t.doneGPU, t.gctx = opGPUWr, line, gpu, payload, done, ctx
	d.request(line, EvGPUWr, t)
}

// gpuAtomic never blocks the requester: a busy or CPU-held line is
// NACKed (the TCC's AtomicND path) and, for CPU-held lines, a cleanup
// transaction evicts the CPU copies so the retry can succeed.
func (d *Directory) gpuAtomic(gpu int, addr mem.Addr, delta uint32, done func(old uint32, nack bool, ctx any), ctx any) {
	line := mem.LineAddr(addr, d.lineSize)
	st := d.state(line)
	cell := d.machine.Fire(st, EvGPUAt)
	if cell.Kind != protocol.Defined {
		return
	}
	switch st {
	case StateB:
		d.nacks++
		d.pushResp(pendingResp{kind: respAtomic, fn: done, nack: true, gctx: ctx})
	case StateCS, StateCM:
		d.nacks++
		d.pushResp(pendingResp{kind: respAtomic, fn: done, nack: true, gctx: ctx})
		t := d.getTBE()
		t.op, t.line, t.gpu = opGPUClean, line, gpu
		d.begin(t, st)
	default:
		t := d.getTBE()
		t.op, t.line, t.gpu = opGPUAt, line, gpu
		t.atAddr, t.delta, t.doneAt, t.gctx = addr, delta, done, ctx
		d.begin(t, st)
	}
}

// --- CPU side ---

// CPURead services a CPU load miss.
func (d *Directory) CPURead(cpu int, line mem.Addr, done func(data []byte, kind FillKind)) {
	t := d.getTBE()
	t.op, t.line, t.cpu, t.doneCPU = opCPURd, line, cpu, done
	d.request(line, EvCPURd, t)
}

// CPUReadX services a CPU store miss or upgrade. have reports whether
// the requester still holds a valid copy; only when both the requester
// and the directory agree is the fill an upgrade (nil data) — see
// start. A stale upgrade is still accepted but serviced as a full
// exclusive fill.
func (d *Directory) CPUReadX(cpu int, line mem.Addr, have bool, done func(data []byte, kind FillKind)) {
	ev := EvCPURdX
	if have {
		ev = EvCPUUpg
	}
	t := d.getTBE()
	t.op, t.line, t.cpu, t.have, t.doneCPU = opCPURdX, line, cpu, have, done
	d.request(line, ev, t)
}

// CPUWriteBack services a dirty victim (stale victims are filtered in
// start).
func (d *Directory) CPUWriteBack(cpu int, line mem.Addr, data []byte, done func()) {
	t := d.getTBE()
	t.op, t.line, t.cpu, t.wrData, t.done = opCPUVic, line, cpu, data, done
	d.request(line, EvCPUVic, t)
}

// --- DMA side ---

// DMARead services a DMA engine read.
func (d *Directory) DMARead(line mem.Addr, done func([]byte)) {
	t := d.getTBE()
	t.op, t.line, t.doneData = opDMARd, line, done
	d.request(line, EvDMARd, t)
}

// DMAWrite services a DMA engine write.
func (d *Directory) DMAWrite(line mem.Addr, data []byte, done func()) {
	t := d.getTBE()
	t.op, t.line, t.wrData, t.done = opDMAWr, line, data, done
	d.request(line, EvDMAWr, t)
}

// --- transaction engine ---

func (d *Directory) begin(t *tbe, st int) {
	d.tbes[t.line] = t
	switch st {
	case StateG:
		switch {
		case t.op >= opCPURd:
			// CPU and DMA ops displace every GPU copy.
			d.probeGPUs(t, -1)
		case t.op == opGPUWr || t.op == opGPUAt:
			// A write or atomic from one GPU invalidates the *other*
			// GPUs' L2 copies (write-through keeps the requester's own
			// slice coherent).
			d.probeGPUs(t, t.gpu)
		}
	case StateCS, StateCM:
		switch t.op {
		case opCPURd:
			if o := d.ownerOf(t.line); o >= 0 {
				d.probeCPU(t, o, false)
			}
		case opCPURdX:
			d.probeAllCPUs(t, t.cpu)
		case opCPUVic:
			// The victim's data is already in hand; no probes.
		default: // GPU and DMA ops clean out every CPU copy
			d.probeAllCPUs(t, -1)
		}
	}
	if t.probesOut == 0 {
		d.afterProbes(t)
	}
}

// probeGPUs invalidates every GPU holder of t.line except `except`
// (-1 probes all). Bitmask iteration walks holders in ascending ID
// order.
func (d *Directory) probeGPUs(t *tbe, except int) {
	hs := d.gpuHolders[t.line]
	if except >= 0 {
		hs &^= 1 << uint(except)
	}
	line := t.line
	for rest := hs; rest != 0; rest &= rest - 1 {
		id := bits.TrailingZeros64(rest)
		t.probesOut++
		d.probes++
		d.k.Schedule(d.probeLatency, func() {
			d.gpus[id].ProbeInv(line, func() {
				d.k.Schedule(d.probeLatency, func() {
					d.clearHolder(line, id)
					d.probeAck(t, nil, false, -1, true)
				})
			})
		})
	}
}

func (d *Directory) clearHolder(line mem.Addr, id int) {
	if hs := d.gpuHolders[line] &^ (1 << uint(id)); hs == 0 {
		delete(d.gpuHolders, line)
	} else {
		d.gpuHolders[line] = hs
	}
}

func (d *Directory) clearSharer(line mem.Addr, cpu int) {
	if ss := d.sharers[line] &^ (1 << uint(cpu)); ss == 0 {
		delete(d.sharers, line)
	} else {
		d.sharers[line] = ss
	}
}

func (d *Directory) probeAllCPUs(t *tbe, except int) {
	ids := d.sharers[t.line]
	if o := d.ownerOf(t.line); o >= 0 {
		ids |= 1 << uint(o)
	}
	if except >= 0 {
		ids &^= 1 << uint(except)
	}
	for rest := ids; rest != 0; rest &= rest - 1 {
		d.probeCPU(t, bits.TrailingZeros64(rest), true)
	}
}

func (d *Directory) probeCPU(t *tbe, cpu int, inv bool) {
	t.probesOut++
	d.probes++
	line := t.line
	d.k.Schedule(d.probeLatency, func() {
		d.cpus[cpu].Probe(line, inv, func(dirty []byte, fromVic bool) {
			d.k.Schedule(d.probeLatency, func() {
				if inv {
					d.clearSharer(line, cpu)
					if d.ownerOf(line) == cpu {
						delete(d.owner, line)
					}
				} else {
					// Downgrade probe: a clean or vic'd answer means no
					// dirty owner remains.
					if dirty == nil || fromVic {
						delete(d.owner, line)
					}
					if fromVic {
						d.clearSharer(line, cpu)
					}
				}
				d.probeAck(t, dirty, fromVic, cpu, inv)
			})
		})
	})
}

func (d *Directory) probeAck(t *tbe, dirty []byte, fromVic bool, _ int, inv bool) {
	switch {
	case dirty != nil && t.op == opCPURd && !inv && !fromVic:
		// The owner keeps an O copy and serves the data; memory may
		// stay stale while an owner exists.
		d.machine.Fire(StateB, EvPrbAckOwned)
		t.serve = dirty
	case dirty != nil:
		d.machine.Fire(StateB, EvPrbAckData)
		t.dirty = dirty
	default:
		d.machine.Fire(StateB, EvPrbAckClean)
	}
	t.probesOut--
	if t.probesOut == 0 {
		d.afterProbes(t)
	}
}

// afterProbes flushes collected dirty data to memory, then runs the
// operation's own memory phase.
func (d *Directory) afterProbes(t *tbe) {
	if t.dirty != nil {
		data := t.dirty
		t.dirty = nil
		wl := d.lines.Get(len(data))
		copy(wl.Data, data)
		d.mem.WriteLine(t.line, wl, d.onDirtyWB, t)
		return
	}
	d.memPhase(t)
}

// borrowWrite copies borrowed bytes into a pool line and issues the
// masked-less write: the caller's buffer is free to be reused the
// moment this returns, matching the old controller's copy-at-enqueue
// contract that CPU caches and the DMA engine rely on.
func (d *Directory) borrowWrite(line mem.Addr, data []byte, t *tbe) {
	wl := d.lines.Get(len(data))
	copy(wl.Data, data)
	d.mem.WriteLine(line, wl, d.onWriteDone, t)
}

func (d *Directory) memPhase(t *tbe) {
	switch t.op {
	case opGPURd:
		d.mem.ReadLine(t.line, d.lineSize, d.onGPUFill, t)
	case opDMARd:
		d.mem.ReadLine(t.line, d.lineSize, d.onReadData, t)
	case opCPURd:
		if t.serve != nil {
			d.complete(t, t.serve)
			return
		}
		d.mem.ReadLine(t.line, d.lineSize, d.onReadData, t)
	case opCPURdX:
		if t.upgrade {
			d.complete(t, nil)
			return
		}
		d.mem.ReadLine(t.line, d.lineSize, d.onReadData, t)
	case opGPUWr:
		// The GPU's payload handle passes through to the controller
		// untouched — the zero-copy write path.
		wl := t.wrLine
		t.wrLine = nil
		d.mem.WriteLine(t.line, wl, d.onWriteDone, t)
	case opCPUVic, opDMAWr:
		d.borrowWrite(t.line, t.wrData, t)
	case opGPUAt:
		d.mem.Atomic(t.atAddr, t.delta, d.onAtomicOld, t)
	case opGPUClean:
		d.complete(t, nil)
	}
}

// completeGPUFill finishes a GPU read: holder bookkeeping, then the
// data handle transfers to the requesting L2 without a copy.
func (d *Directory) completeGPUFill(t *tbe, data *mem.Line) {
	line := t.line
	delete(d.tbes, line)
	d.gpuHolders[line] |= 1 << uint(t.gpu)
	d.pushResp(pendingResp{kind: respGPUFill, fn: t.doneGPUData, line: data, gctx: t.gctx})
	d.putTBE(t)
	d.wake(line)
}

func (d *Directory) complete(t *tbe, data []byte) {
	delete(d.tbes, t.line)
	line := t.line
	switch t.op {
	case opGPUWr:
		d.pushResp(pendingResp{kind: respGPUWr, fn: t.doneGPU, gctx: t.gctx})
	case opDMAWr:
		d.pushResp(pendingResp{kind: respPlain, fn: t.done})
	case opDMARd:
		d.respondData(t, data)
	case opCPURd:
		kind := FillS
		if d.sharers[line] == 0 && d.ownerOf(line) < 0 {
			kind = FillE
			d.owner[line] = t.cpu
		}
		d.sharers[line] |= 1 << uint(t.cpu)
		d.respondCPU(t, data, kind)
	case opCPURdX:
		d.sharers[line] = 1 << uint(t.cpu)
		d.owner[line] = t.cpu
		d.respondCPU(t, data, FillM)
	case opCPUVic:
		delete(d.owner, line)
		d.clearSharer(line, t.cpu)
		d.pushResp(pendingResp{kind: respPlain, fn: t.done})
	case opGPUAt, opGPUClean:
		// opGPUAt responds from its memory-phase callback (it needs the
		// old value); opGPUClean has no requester.
	}
	d.putTBE(t)
	d.wake(line)
}

func (d *Directory) respondData(t *tbe, data []byte) {
	buf := make([]byte, len(data))
	copy(buf, data)
	d.pushResp(pendingResp{kind: respData, fn: t.doneData, buf: buf})
}

func (d *Directory) respondCPU(t *tbe, data []byte, kind FillKind) {
	var buf []byte
	if data != nil {
		buf = make([]byte, len(data))
		copy(buf, data)
	}
	d.pushResp(pendingResp{kind: respCPU, fn: t.doneCPU, buf: buf, cpuKind: kind})
}

func (d *Directory) wake(line mem.Addr) {
	queue, ok := d.stalled[line]
	if !ok {
		return
	}
	delete(d.stalled, line)
	for i, r := range queue {
		queue[i] = stalledReq{}
		d.request(line, r.ev, r.t)
	}
	d.stallFree = append(d.stallFree, queue[:0])
}

// DebugDump renders the directory's live state for diagnosing hangs.
func (d *Directory) DebugDump() string {
	out := ""
	for line, t := range d.tbes {
		out += fmt.Sprintf("TBE line=%#x op=%d gpu=%d cpu=%d probesOut=%d\n", uint64(line), t.op, t.gpu, t.cpu, t.probesOut)
	}
	for line, q := range d.stalled {
		out += fmt.Sprintf("stalled line=%#x count=%d\n", uint64(line), len(q))
	}
	for line, hs := range d.gpuHolders {
		if hs != 0 {
			out += fmt.Sprintf("holders line=%#x mask=%#x\n", uint64(line), hs)
		}
	}
	return out
}
