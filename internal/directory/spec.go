// Package directory implements the heterogeneous system directory
// shared by the GPU's L2, the CPU caches, and the DMA engine — the
// structure whose coverage the paper's §IV.C experiment measures.
//
// The directory is blocking: every operation claims a per-line TBE,
// moves the line to state B, optionally probes current holders, talks
// to memory, responds, and unblocks. GPU requests arrive through the
// viper Backend interface; CPU requests through the moesi caches; DMA
// requests only from application runs — which is why DMA transitions
// are uniquely activated by application-based testing (Fig. 10).
package directory

import "drftest/internal/protocol"

// Directory states.
const (
	StateU  = iota // memory owns the line (uncached)
	StateG         // the GPU L2 may hold a copy
	StateCS        // CPU caches hold clean shared copies
	StateCM        // a CPU cache may own the line dirty (E/M/O granted)
	StateB         // blocked: a transaction owns the line
)

// States names the directory states.
var States = []string{"U", "G", "CS", "CM", "B"}

// Directory events.
const (
	EvGPURd       = iota // line fetch from GPU L2
	EvGPUWr              // write-through from GPU L2
	EvGPUAt              // atomic from GPU L2
	EvCPURd              // shared read from a CPU cache
	EvCPURdX             // exclusive read (store miss) from a CPU cache
	EvCPUUpg             // upgrade (store to a held copy) from a CPU cache
	EvCPUVic             // dirty write-back from a CPU cache
	EvDMARd              // DMA read
	EvDMAWr              // DMA write
	EvPrbAckClean        // probe acknowledged without data
	EvPrbAckData         // invalidation probe acknowledged with dirty data
	EvPrbAckOwned        // downgrade probe answered with data, owner keeps O
	EvMemData            // data (or atomic result) from memory
	EvMemWBAck           // write completion from memory
)

// Events names the directory events.
var Events = []string{
	"GPU_Rd", "GPU_Wr", "GPU_At", "CPU_Rd", "CPU_RdX", "CPU_Upg", "CPU_Vic",
	"DMA_Rd", "DMA_Wr", "PrbAckC", "PrbAckD", "PrbAckO", "MemData", "MemWBAck",
}

// NewSpec builds the directory transition table.
func NewSpec() *protocol.Spec {
	s := protocol.NewSpec("Directory", States, Events)

	for _, ev := range []int{EvGPURd, EvGPUWr, EvCPURd, EvCPURdX, EvCPUUpg, EvDMARd, EvDMAWr} {
		s.Trans(StateU, ev, StateB, "start transaction")
		s.Trans(StateG, ev, StateB, "start transaction (probe GPU if foreign)")
		s.Trans(StateCS, ev, StateB, "start transaction (probe sharers)")
		s.Trans(StateCM, ev, StateB, "start transaction (probe dirty owner)")
		s.StallOn(StateB, ev)
	}

	// Atomics are never stalled: a busy or CPU-held line NACKs the
	// requester (the TCC retries — its AtomicND event), and a CPU-held
	// line additionally starts a cleanup transaction so the retry can
	// succeed.
	s.Trans(StateU, EvGPUAt, StateB, "atomic at memory")
	s.Trans(StateG, EvGPUAt, StateB, "atomic at memory")
	s.Trans(StateCS, EvGPUAt, StateB, "NACK + clean CPU copies")
	s.Trans(StateCM, EvGPUAt, StateB, "NACK + flush dirty owner")
	s.Trans(StateB, EvGPUAt, StateB, "NACK: line busy")

	// A write-back can race with a probe that already extracted the
	// dirty data; the directory then acknowledges the stale victim
	// without touching memory.
	s.Trans(StateU, EvCPUVic, StateU, "stale victim: ack, no write")
	s.Trans(StateG, EvCPUVic, StateG, "stale victim: ack, no write")
	s.Trans(StateCS, EvCPUVic, StateCS, "stale victim: ack, no write")
	s.Trans(StateCM, EvCPUVic, StateB, "write back dirty line")
	s.StallOn(StateB, EvCPUVic)

	s.Trans(StateB, EvPrbAckClean, StateB, "collect clean ack")
	s.Trans(StateB, EvPrbAckData, StateB, "collect dirty data (owner gone)")
	s.Trans(StateB, EvPrbAckOwned, StateB, "serve owner data (owner keeps O)")
	s.Trans(StateB, EvMemData, StateB, "memory data: respond")
	s.Trans(StateB, EvMemWBAck, StateB, "memory write done")

	return s
}
