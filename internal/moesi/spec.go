// Package moesi implements the CPU side of the heterogeneous system:
// per-core write-back caches speaking a MOESI-style invalidation
// protocol against the shared system directory, standing in for gem5's
// MOESI_AMD_Base corepair protocol.
//
// The CPU caches exist for the paper's §IV.C experiment: the CPU
// random tester drives them to activate the directory transitions the
// GPU tester cannot reach (probes, dirty write-backs, sharer
// invalidations), so the union of the two testers covers far more of
// the directory than either alone.
package moesi

import "drftest/internal/protocol"

// CPU cache states.
const (
	StateI = iota // invalid
	StateS        // shared clean
	StateE        // exclusive clean
	StateM        // modified (sole dirty owner)
	StateO        // owned (dirty, shared with S copies)
)

// States names the CPU cache states.
var States = []string{"I", "S", "E", "M", "O"}

// CPU cache events.
const (
	EvLoad   = iota // core load
	EvStore         // core store
	EvDataS         // shared fill from directory
	EvDataE         // exclusive clean fill
	EvDataM         // fill with write permission (store miss/upgrade)
	EvRepl          // replacement
	EvPrbInv        // directory probe: invalidate
	EvPrbShr        // directory probe: downgrade/share
	EvWBAck         // write-back acknowledgement
)

// Events names the CPU cache events.
var Events = []string{"Load", "Store", "DataS", "DataE", "DataM", "Repl", "PrbInv", "PrbShr", "WBAck"}

// NewCPUSpec builds the CPU cache transition table.
func NewCPUSpec() *protocol.Spec {
	s := protocol.NewSpec("CPU-L1", States, Events)

	s.Trans(StateI, EvLoad, StateI, "miss: send CPURd")
	s.Trans(StateS, EvLoad, StateS, "hit")
	s.Trans(StateE, EvLoad, StateE, "hit")
	s.Trans(StateM, EvLoad, StateM, "hit")
	s.Trans(StateO, EvLoad, StateO, "hit")

	s.Trans(StateI, EvStore, StateI, "miss: send CPURdX")
	s.Trans(StateS, EvStore, StateS, "upgrade: send CPURdX")
	s.Trans(StateE, EvStore, StateM, "silent upgrade")
	s.Trans(StateM, EvStore, StateM, "hit")
	s.Trans(StateO, EvStore, StateO, "upgrade: send CPURdX")

	s.Trans(StateI, EvDataS, StateS, "fill shared")
	s.Trans(StateI, EvDataE, StateE, "fill exclusive")
	s.Trans(StateI, EvDataM, StateM, "fill with write permission")
	s.Trans(StateS, EvDataM, StateM, "upgrade complete")
	s.Trans(StateO, EvDataM, StateM, "upgrade complete")

	s.Trans(StateS, EvRepl, StateI, "drop clean")
	s.Trans(StateE, EvRepl, StateI, "drop clean")
	s.Trans(StateM, EvRepl, StateI, "write back dirty (CPUVic)")
	s.Trans(StateO, EvRepl, StateI, "write back dirty (CPUVic)")

	s.Trans(StateI, EvPrbInv, StateI, "ack clean (silently replaced)")
	s.Trans(StateS, EvPrbInv, StateI, "invalidate, ack clean")
	s.Trans(StateE, EvPrbInv, StateI, "invalidate, ack clean")
	s.Trans(StateM, EvPrbInv, StateI, "invalidate, ack dirty data")
	s.Trans(StateO, EvPrbInv, StateI, "invalidate, ack dirty data")

	s.Trans(StateI, EvPrbShr, StateI, "ack clean (silently replaced)")
	s.Trans(StateS, EvPrbShr, StateS, "ack clean")
	s.Trans(StateE, EvPrbShr, StateS, "downgrade, ack clean")
	s.Trans(StateM, EvPrbShr, StateO, "downgrade, ack dirty data")
	s.Trans(StateO, EvPrbShr, StateO, "ack dirty data")

	s.Trans(StateI, EvWBAck, StateI, "write-back complete")

	return s
}
