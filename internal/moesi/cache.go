package moesi

import (
	"encoding/binary"
	"fmt"

	"drftest/internal/cache"
	"drftest/internal/directory"
	"drftest/internal/mem"
	"drftest/internal/protocol"
	"drftest/internal/sim"
)

// cpuTBE tracks one line's in-flight fill or upgrade.
type cpuTBE struct {
	line mem.Addr
	req  *mem.Request
}

// vicTBE holds a dirty victim's data until the directory acknowledges
// the write-back; probes that race with the victim are answered from
// here (fromVic).
type vicTBE struct {
	line mem.Addr
	data []byte
}

// Bugs selects injected CPU-protocol bugs for the Wood-style tester's
// case studies (zero value = correct).
type Bugs struct {
	// DropProbeData makes the cache answer invalidation probes of
	// dirty (M/O) lines as if they were clean, losing the newest data:
	// the next reader fetches stale memory — a classic write-back
	// protocol bug the SC value check catches immediately.
	DropProbeData bool
}

// Cache is one CPU core's private write-back cache. It implements the
// directory's CPUPort and accepts core requests like a sequencer.
type Cache struct {
	k           *sim.Kernel
	id          int
	machine     *protocol.Machine
	array       *cache.Array
	dir         *directory.Directory
	reqLatency  sim.Tick
	respLatency sim.Tick
	client      mem.Requestor

	// Bugs injects protocol-implementation bugs; set before traffic.
	Bugs Bugs

	tbes        map[mem.Addr]*cpuTBE
	vics        map[mem.Addr]*vicTBE
	stalled     map[mem.Addr][]*mem.Request
	outstanding map[uint64]*mem.Request

	loads, loadHits, stores, storeHits, writebacks uint64
}

// NewCache builds a CPU cache and attaches it to dir.
func NewCache(k *sim.Kernel, spec *protocol.Spec, rec protocol.Recorder, onFault func(*protocol.FaultError), cfg cache.Config, dir *directory.Directory) *Cache {
	m := protocol.NewMachine(spec, rec)
	m.OnFault = onFault
	c := &Cache{
		k:           k,
		machine:     m,
		array:       cache.NewArray(cfg),
		dir:         dir,
		reqLatency:  4,
		respLatency: 1,
		tbes:        make(map[mem.Addr]*cpuTBE),
		vics:        make(map[mem.Addr]*vicTBE),
		stalled:     make(map[mem.Addr][]*mem.Request),
		outstanding: make(map[uint64]*mem.Request),
	}
	c.id = dir.AttachCPU(c)
	return c
}

// ID returns the cache's directory port ID.
func (c *Cache) ID() int { return c.id }

// SetClient wires the core-side response sink.
func (c *Cache) SetClient(client mem.Requestor) { c.client = client }

func (c *Cache) lineSize() int { return c.array.Config().LineSize }

func (c *Cache) state(line mem.Addr) int {
	if e := c.array.Peek(line); e != nil {
		return e.State
	}
	return StateI
}

// Issue accepts one core request (load or store).
func (c *Cache) Issue(req *mem.Request) {
	if c.client == nil {
		panic("moesi: Issue before SetClient")
	}
	if _, dup := c.outstanding[req.ID]; dup {
		panic(fmt.Sprintf("moesi: duplicate request ID %d", req.ID))
	}
	req.IssueTick = uint64(c.k.Now())
	req.CUID = c.id
	c.outstanding[req.ID] = req
	c.process(req)
}

func (c *Cache) process(req *mem.Request) {
	line := mem.LineAddr(req.Addr, c.lineSize())
	// Resource hazard: one in-flight transaction per line.
	if _, busy := c.tbes[line]; busy {
		c.stalled[line] = append(c.stalled[line], req)
		return
	}
	st := c.state(line)
	switch req.Op {
	case mem.OpLoad:
		c.loads++
		c.machine.Fire(st, EvLoad)
		if st != StateI {
			c.loadHits++
			c.respond(req, c.readWord(line, req.Addr))
			return
		}
		c.tbes[line] = &cpuTBE{line: line, req: req}
		c.k.Schedule(c.reqLatency, func() {
			c.dir.CPURead(c.id, line, func(data []byte, kind directory.FillKind) {
				c.onFill(line, data, kind)
			})
		})

	case mem.OpStore:
		c.stores++
		c.machine.Fire(st, EvStore)
		switch st {
		case StateE, StateM:
			c.storeHits++
			e := c.array.Lookup(line)
			e.State = StateM
			c.writeWord(e, req.Addr, req.Data)
			c.respond(req, req.Data)
		default: // I, S, O: need write permission from the directory
			c.tbes[line] = &cpuTBE{line: line, req: req}
			c.k.Schedule(c.reqLatency, func() {
				have := c.state(line) != StateI
				c.dir.CPUReadX(c.id, line, have, func(data []byte, kind directory.FillKind) {
					c.onFill(line, data, kind)
				})
			})
		}

	default:
		panic(fmt.Sprintf("moesi: unsupported op %v (CPU caches take loads and stores only)", req.Op))
	}
}

func (c *Cache) onFill(line mem.Addr, data []byte, kind directory.FillKind) {
	st := c.state(line)
	var e *cache.Line
	switch kind {
	case directory.FillS:
		c.machine.Fire(st, EvDataS)
		e = c.install(line, StateS, data)
	case directory.FillE:
		c.machine.Fire(st, EvDataE)
		e = c.install(line, StateE, data)
	case directory.FillM:
		c.machine.Fire(st, EvDataM)
		if data == nil {
			// Upgrade: the cache keeps its own bytes.
			e = c.array.Lookup(line)
			if e == nil {
				panic(fmt.Sprintf("moesi: upgrade fill for %#x without a cached line", uint64(line)))
			}
			e.State = StateM
		} else {
			e = c.install(line, StateM, data)
		}
	}
	tbe := c.tbes[line]
	if tbe == nil {
		panic(fmt.Sprintf("moesi: fill for %#x without TBE", uint64(line)))
	}
	delete(c.tbes, line)
	req := tbe.req
	if req.Op == mem.OpStore {
		e.State = StateM
		c.writeWord(e, req.Addr, req.Data)
		c.respond(req, req.Data)
	} else {
		c.respond(req, c.readWordFrom(e, req.Addr))
	}
	c.wake(line)
}

// install claims a way for line, writing back any dirty victim. Lines
// with an in-flight transaction are never victimized: evicting a line
// mid-upgrade would invalidate the copy its pending fill assumes.
func (c *Cache) install(line mem.Addr, state int, data []byte) *cache.Line {
	victim := c.array.Victim(line, func(l *cache.Line) bool {
		_, busy := c.tbes[l.Tag]
		return !busy
	})
	if victim == nil {
		panic(fmt.Sprintf("moesi: cache %d set for %#x fully pinned by in-flight transactions", c.id, uint64(line)))
	}
	if victim.Valid {
		c.machine.Fire(victim.State, EvRepl)
		if victim.State == StateM || victim.State == StateO {
			c.writeBack(victim)
		}
		victim.Valid = false
	}
	e := c.array.Install(victim, line, state)
	copy(e.Data, data)
	return e
}

func (c *Cache) writeBack(victim *cache.Line) {
	c.writebacks++
	line := victim.Tag
	buf := make([]byte, len(victim.Data))
	copy(buf, victim.Data)
	c.vics[line] = &vicTBE{line: line, data: buf}
	c.k.Schedule(c.reqLatency, func() {
		c.dir.CPUWriteBack(c.id, line, buf, func() {
			c.machine.Fire(c.state(line), EvWBAck)
			delete(c.vics, line)
		})
	})
}

// Probe implements directory.CPUPort.
func (c *Cache) Probe(line mem.Addr, inv bool, ack func(dirty []byte, fromVic bool)) {
	if vic, pending := c.vics[line]; pending {
		// The line's dirty data is travelling in a write-back; answer
		// the probe from the victim buffer so it is not lost.
		if inv {
			c.machine.Fire(StateI, EvPrbInv)
		} else {
			c.machine.Fire(StateI, EvPrbShr)
		}
		ack(vic.data, true)
		return
	}
	st := c.state(line)
	if inv {
		c.machine.Fire(st, EvPrbInv)
		var dirty []byte
		if st == StateM || st == StateO {
			e := c.array.Peek(line)
			dirty = make([]byte, len(e.Data))
			copy(dirty, e.Data)
		}
		if c.Bugs.DropProbeData {
			// BUG: the dirty data evaporates with the invalidation.
			dirty = nil
		}
		c.array.Invalidate(line)
		ack(dirty, false)
		return
	}
	c.machine.Fire(st, EvPrbShr)
	switch st {
	case StateM, StateO:
		e := c.array.Peek(line)
		dirty := make([]byte, len(e.Data))
		copy(dirty, e.Data)
		e.State = StateO
		ack(dirty, false)
	case StateE:
		c.array.Peek(line).State = StateS
		ack(nil, false)
	default:
		ack(nil, false)
	}
}

func (c *Cache) respond(req *mem.Request, data uint32) {
	c.k.Schedule(c.respLatency, func() {
		delete(c.outstanding, req.ID)
		c.client.HandleResponse(&mem.Response{Req: req, Data: data, Tick: uint64(c.k.Now())})
	})
}

func (c *Cache) wake(line mem.Addr) {
	queue := c.stalled[line]
	if len(queue) == 0 {
		return
	}
	delete(c.stalled, line)
	for _, req := range queue {
		c.process(req)
	}
}

func (c *Cache) readWord(line mem.Addr, a mem.Addr) uint32 {
	return c.readWordFrom(c.array.Lookup(line), a)
}

func (c *Cache) readWordFrom(e *cache.Line, a mem.Addr) uint32 {
	off := mem.LineOffset(a, c.lineSize())
	return binary.LittleEndian.Uint32(e.Data[off : off+mem.WordSize])
}

func (c *Cache) writeWord(e *cache.Line, a mem.Addr, v uint32) {
	off := mem.LineOffset(a, c.lineSize())
	var b [mem.WordSize]byte
	binary.LittleEndian.PutUint32(b[:], v)
	for i := range b {
		e.Data[off+i] = b[i]
		e.Dirty[off+i] = true
	}
}

// ForEachOutstanding visits the cache's in-flight core requests.
func (c *Cache) ForEachOutstanding(visit func(*mem.Request)) {
	for _, r := range c.outstanding {
		visit(r)
	}
}

// OutstandingCount returns the number of in-flight core requests.
func (c *Cache) OutstandingCount() int { return len(c.outstanding) }

// Stats returns load/store hit counters and write-backs.
func (c *Cache) Stats() (loads, loadHits, stores, storeHits, writebacks uint64) {
	return c.loads, c.loadHits, c.stores, c.storeHits, c.writebacks
}

// CacheSnapshot captures one CPU cache's state: array contents, TBEs,
// victim buffers, stall queues, in-flight requests, and stats.
//
// Request pointers are retained by identity (tester slab slots are
// write-once within a run). Victim data buffers are deep-copied, which
// is sound even with a write-back in flight: the buffer is never
// written after creation, so a content-equal replacement serves probes
// identically while the original travels in the scheduled event.
type CacheSnapshot struct {
	array       *cache.ArraySnapshot
	tbes        map[mem.Addr]cpuTBE
	vics        map[mem.Addr][]byte
	stalled     map[mem.Addr][]*mem.Request
	outstanding map[uint64]*mem.Request

	loads, loadHits, stores, storeHits, writebacks uint64
}

// Snapshot captures the cache's complete state. Pair with a kernel
// snapshot taken at the same instant for a consistent cut.
func (c *Cache) Snapshot() *CacheSnapshot {
	s := &CacheSnapshot{
		array:       c.array.Snapshot(),
		tbes:        make(map[mem.Addr]cpuTBE, len(c.tbes)),
		vics:        make(map[mem.Addr][]byte, len(c.vics)),
		stalled:     make(map[mem.Addr][]*mem.Request, len(c.stalled)),
		outstanding: make(map[uint64]*mem.Request, len(c.outstanding)),
		loads:       c.loads, loadHits: c.loadHits,
		stores: c.stores, storeHits: c.storeHits,
		writebacks: c.writebacks,
	}
	for line, t := range c.tbes {
		s.tbes[line] = *t
	}
	for line, v := range c.vics {
		s.vics[line] = append([]byte(nil), v.data...)
	}
	for line, q := range c.stalled {
		s.stalled[line] = append([]*mem.Request(nil), q...)
	}
	for id, r := range c.outstanding {
		s.outstanding[id] = r
	}
	return s
}

// Restore reinstates a state captured by Snapshot on this cache. The
// kernel must be restored to the matching cut first.
func (c *Cache) Restore(s *CacheSnapshot) {
	c.array.Restore(s.array)
	clear(c.tbes)
	for line, t := range s.tbes {
		tbe := t
		c.tbes[line] = &tbe
	}
	clear(c.vics)
	for line, data := range s.vics {
		c.vics[line] = &vicTBE{line: line, data: append([]byte(nil), data...)}
	}
	clear(c.stalled)
	for line, q := range s.stalled {
		c.stalled[line] = append([]*mem.Request(nil), q...)
	}
	clear(c.outstanding)
	for id, r := range s.outstanding {
		c.outstanding[id] = r
	}
	c.loads, c.loadHits = s.loads, s.loadHits
	c.stores, c.storeHits = s.stores, s.storeHits
	c.writebacks = s.writebacks
}
