package moesi

import (
	"strings"
	"testing"

	"drftest/internal/cache"
	"drftest/internal/coverage"
	"drftest/internal/directory"
	"drftest/internal/mem"
	"drftest/internal/memctrl"
	"drftest/internal/protocol"
	"drftest/internal/sim"
)

type client struct {
	responses map[uint64]*mem.Response
}

func (c *client) HandleResponse(r *mem.Response) {
	cp := *r // the Response is only valid during the call (mem.Requestor)
	c.responses[r.Req.ID] = &cp
}

type rig struct {
	k      *sim.Kernel
	caches []*Cache
	dir    *directory.Directory
	store  *mem.Store
	col    *coverage.Collector
	cl     *client
	id     uint64
}

func newRig(t *testing.T, numCPUs int) *rig {
	t.Helper()
	k := sim.NewKernel()
	col := coverage.NewCollector(NewCPUSpec(), directory.NewSpec())
	store := mem.NewStore()
	ctrl := memctrl.New(k, memctrl.DefaultConfig(), store, nil)
	dir := directory.New(k, col, nil, ctrl, 64)
	cl := &client{responses: make(map[uint64]*mem.Response)}
	r := &rig{k: k, dir: dir, store: store, col: col, cl: cl}
	spec := NewCPUSpec()
	for i := 0; i < numCPUs; i++ {
		c := NewCache(k, spec, col, nil, cache.Config{SizeBytes: 512, LineSize: 64, Assoc: 2}, dir)
		c.SetClient(cl)
		r.caches = append(r.caches, c)
	}
	return r
}

func (r *rig) issue(cpu int, op mem.Op, addr mem.Addr, val uint32) uint64 {
	r.id++
	req := &mem.Request{ID: r.id, Op: op, Addr: addr, ThreadID: cpu}
	if op == mem.OpStore {
		req.Data = val
	}
	r.caches[cpu].Issue(req)
	return r.id
}

func (r *rig) run() { r.k.RunUntilIdle() }

func (r *rig) data(t *testing.T, id uint64) uint32 {
	t.Helper()
	resp, ok := r.cl.responses[id]
	if !ok {
		t.Fatalf("no response for %d", id)
	}
	return resp.Data
}

func TestCPUSpecCounts(t *testing.T) {
	s := NewCPUSpec()
	if d := s.CountKind(2); d != 30 { // protocol.Defined
		t.Fatalf("CPU spec defines %d cells, want 30", d)
	}
}

func TestLoadMissGetsExclusive(t *testing.T) {
	r := newRig(t, 2)
	r.store.WriteWord(0x100, 42)
	id := r.issue(0, mem.OpLoad, 0x100, 0)
	r.run()
	if r.data(t, id) != 42 {
		t.Fatal("load wrong value")
	}
	if r.col.Matrix("CPU-L1").Hits[StateI][EvDataE] == 0 {
		t.Fatal("sole reader should fill exclusive (DataE)")
	}
}

func TestSecondReaderGetsShared(t *testing.T) {
	r := newRig(t, 2)
	r.issue(0, mem.OpLoad, 0x100, 0)
	r.run()
	id := r.issue(1, mem.OpLoad, 0x100, 0)
	r.run()
	_ = r.data(t, id)
	if r.col.Matrix("CPU-L1").Hits[StateI][EvDataS] == 0 {
		t.Fatal("second reader should fill shared (DataS)")
	}
}

func TestStoreThenRemoteLoadSeesValue(t *testing.T) {
	r := newRig(t, 2)
	st := r.issue(0, mem.OpStore, 0x200, 99)
	r.run()
	_ = r.data(t, st)
	ld := r.issue(1, mem.OpLoad, 0x200, 0)
	r.run()
	if got := r.data(t, ld); got != 99 {
		t.Fatalf("remote load saw %d, want 99 (dirty owner must be probed)", got)
	}
	m := r.col.Matrix("CPU-L1")
	if m.Hits[StateM][EvPrbShr] == 0 {
		t.Fatal("[M,PrbShr] downgrade not recorded")
	}
	if r.col.Matrix("Directory").Hits[directory.StateB][directory.EvPrbAckOwned] == 0 {
		t.Fatal("owner-serve probe ack not recorded at directory")
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	r := newRig(t, 3)
	r.issue(0, mem.OpLoad, 0x300, 0)
	r.issue(1, mem.OpLoad, 0x300, 0)
	r.run()
	st := r.issue(2, mem.OpStore, 0x300, 7)
	r.run()
	_ = r.data(t, st)
	// Sharers were probed clean; a later read must see the new value
	// via the new owner.
	ld := r.issue(0, mem.OpLoad, 0x300, 0)
	r.run()
	if got := r.data(t, ld); got != 7 {
		t.Fatalf("reader after invalidation saw %d, want 7", got)
	}
}

func TestUpgradeFromShared(t *testing.T) {
	r := newRig(t, 2)
	r.issue(0, mem.OpLoad, 0x400, 0)
	r.issue(1, mem.OpLoad, 0x400, 0)
	r.run()
	st := r.issue(0, mem.OpStore, 0x400, 5)
	r.run()
	_ = r.data(t, st)
	m := r.col.Matrix("CPU-L1")
	if m.Hits[StateS][EvStore] == 0 || m.Hits[StateS][EvDataM] == 0 {
		t.Fatal("S-state upgrade path not exercised")
	}
	if r.col.Matrix("Directory").Hits[directory.StateCS][directory.EvCPUUpg] == 0 &&
		r.col.Matrix("Directory").Hits[directory.StateCM][directory.EvCPUUpg] == 0 {
		t.Fatal("directory upgrade event not recorded")
	}
}

func TestSilentUpgradeFromExclusive(t *testing.T) {
	r := newRig(t, 1)
	r.issue(0, mem.OpLoad, 0x500, 0) // sole reader → E
	r.run()
	st := r.issue(0, mem.OpStore, 0x500, 3)
	r.run()
	_ = r.data(t, st)
	if r.col.Matrix("CPU-L1").Hits[StateE][EvStore] == 0 {
		t.Fatal("E→M silent upgrade not recorded")
	}
	// No directory traffic for the silent upgrade.
	if r.col.Matrix("Directory").Hits[directory.StateCM][directory.EvCPUUpg] != 0 {
		t.Fatal("silent upgrade leaked to the directory")
	}
}

func TestDirtyWriteBackOnReplacement(t *testing.T) {
	r := newRig(t, 1)
	// 512B 2-way: lines 0x0, 0x200, 0x400 map to set 0.
	r.issue(0, mem.OpStore, 0x000, 1)
	r.run()
	r.issue(0, mem.OpStore, 0x200, 2)
	r.run()
	r.issue(0, mem.OpStore, 0x400, 3)
	r.run()
	if got := r.store.ReadWord(0x000); got != 1 {
		t.Fatalf("dirty victim not written back: memory holds %d", got)
	}
	m := r.col.Matrix("CPU-L1")
	if m.Hits[StateM][EvRepl] == 0 || m.Hits[StateI][EvWBAck] == 0 {
		t.Fatal("write-back path events missing")
	}
	// And the data must still be readable afterwards.
	ld := r.issue(0, mem.OpLoad, 0x000, 0)
	r.run()
	if r.data(t, ld) != 1 {
		t.Fatal("written-back line lost its data")
	}
}

func TestOwnedStateServesWithoutMemoryWrite(t *testing.T) {
	r := newRig(t, 2)
	r.issue(0, mem.OpStore, 0x600, 11)
	r.run()
	r.issue(1, mem.OpLoad, 0x600, 0)
	r.run()
	// Owner downgraded M→O and served the data; memory may stay stale.
	if r.col.Matrix("CPU-L1").Hits[StateM][EvPrbShr] == 0 {
		t.Fatal("downgrade to O not recorded")
	}
	// A second store from the owner upgrades O→M.
	st := r.issue(0, mem.OpStore, 0x600, 12)
	r.run()
	_ = r.data(t, st)
	if r.col.Matrix("CPU-L1").Hits[StateO][EvStore] == 0 {
		t.Fatal("O-state upgrade not recorded")
	}
	ld := r.issue(1, mem.OpLoad, 0x600, 0)
	r.run()
	if got := r.data(t, ld); got != 12 {
		t.Fatalf("reader saw %d after O upgrade, want 12", got)
	}
}

// TestCPUSpecTextRoundTrip: the CPU table survives the SLICC-like
// textual form.
func TestCPUSpecTextRoundTrip(t *testing.T) {
	orig := NewCPUSpec()
	var b strings.Builder
	if err := orig.Format(&b); err != nil {
		t.Fatal(err)
	}
	re, err := protocol.ParseSpec(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(re) {
		t.Fatalf("round trip changed the table: %v", orig.Diff(re))
	}
}
