package core

import (
	"fmt"
	"strings"

	"drftest/internal/mem"
)

// FailureKind classifies a detected bug.
type FailureKind uint8

const (
	// FailValueMismatch is a read–write inconsistency: a load observed
	// a value other than the one the DRF reference memory mandates.
	FailValueMismatch FailureKind = iota
	// FailDuplicateAtomic is an atomicity violation: two atomics on a
	// sync variable returned the same old value.
	FailDuplicateAtomic
	// FailBadAtomicValue is an atomic old value outside the legal
	// arithmetic progression.
	FailBadAtomicValue
	// FailDeadlock is a forward-progress violation: a request exceeded
	// the deadlock threshold without a response.
	FailDeadlock
	// FailProtocolFault is an undefined protocol transition.
	FailProtocolFault
	// FailFinalAudit is an end-of-run divergence between reference
	// memory and the simulated memory/L2 contents.
	FailFinalAudit
)

func (k FailureKind) String() string {
	switch k {
	case FailValueMismatch:
		return "value-mismatch"
	case FailDuplicateAtomic:
		return "duplicate-atomic"
	case FailBadAtomicValue:
		return "bad-atomic-value"
	case FailDeadlock:
		return "deadlock"
	case FailProtocolFault:
		return "protocol-fault"
	case FailFinalAudit:
		return "final-audit"
	}
	return fmt.Sprintf("FailureKind(%d)", uint8(k))
}

// Failure is one detected bug with the debugging context the paper's
// §III.D / Table V describe.
type Failure struct {
	Kind    FailureKind
	Tick    uint64
	Addr    mem.Addr
	Message string

	// Expected/Got apply to value and atomic failures.
	Expected uint32
	Got      uint32

	// LastReader/LastWriter reproduce Table V for value mismatches;
	// for duplicate atomics they are the two conflicting operations.
	LastReader *AccessRecord
	LastWriter *AccessRecord

	// Window holds the recent transactions touching Addr.
	Window []LogEntry
}

func (f *Failure) Error() string { return f.Message }

// TableV renders the failure in the two-column layout of the paper's
// Table V.
func (f *Failure) TableV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s at tick %d (addr %#x)\n", f.Kind, f.Tick, uint64(f.Addr))
	fmt.Fprintf(&b, "%s\n", f.Message)
	if f.LastReader != nil && f.LastWriter != nil {
		row := func(label string, rv, wv any) {
			fmt.Fprintf(&b, "  %-20s %-14v %-14v\n", label, rv, wv)
		}
		fmt.Fprintf(&b, "  %-20s %-14s %-14s\n", "", "Last Reader", "Last Writer")
		row("Thread ID", f.LastReader.ThreadID, f.LastWriter.ThreadID)
		row("Thread group ID", f.LastReader.WFID, f.LastWriter.WFID)
		row("Episode ID", f.LastReader.EpisodeID, f.LastWriter.EpisodeID)
		row("Address", fmt.Sprintf("%#x", uint64(f.LastReader.Addr)), fmt.Sprintf("%#x", uint64(f.LastWriter.Addr)))
		row("Cycle", f.LastReader.Cycle, f.LastWriter.Cycle)
		row("Read/Written Value", f.LastReader.Value, f.LastWriter.Value)
	}
	if len(f.Window) > 0 {
		fmt.Fprintf(&b, "  recent transactions on %#x:\n", uint64(f.Addr))
		for _, e := range f.Window {
			fmt.Fprintf(&b, "    %s\n", e)
		}
	}
	return b.String()
}
