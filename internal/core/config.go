// Package core implements the paper's contribution: a completely
// autonomous, random, data-race-free (DRF) tester for GPU cache
// coherence protocols under relaxed memory models.
//
// The tester replaces the GPU core model: its threads attach directly
// to the L1 sequencers and issue *episodes* — critical-section-shaped
// sequences beginning with an atomic acquire of a synchronization
// variable, followed by random loads/stores of data variables chosen so
// that no two concurrently live episodes race, and ending with an
// atomic release. Because the generated program is data-race-free, the
// tester can maintain a reference memory and deterministically know the
// value every load must observe, the old value every atomic must
// return, and that every request must complete — giving it the three
// autonomous checks of §III.C: value consistency, atomicity
// (monotonicity/uniqueness), and forward progress.
package core

import "drftest/internal/sim"

// Config parameterizes one GPU tester run (the knobs of Table III).
type Config struct {
	// Seed drives all of the run's randomness; equal seeds replay
	// identical runs, which is what makes failures reproducible.
	Seed uint64

	// NumWavefronts is the number of lockstep thread groups; wavefront
	// w attaches to CU (w mod NumCUs).
	NumWavefronts int
	// ThreadsPerWF is the number of lanes per wavefront; lanes advance
	// in lockstep (SIMT).
	ThreadsPerWF int

	// EpisodesPerThread is the number of episodes each thread executes
	// (paper: 10 or 100). Every lane of a wavefront runs its own
	// episodes, so a wavefront as a whole retires
	// ThreadsPerWF × EpisodesPerThread of them; the field was once named
	// EpisodesPerWF after the paper's per-wavefront phrasing, and keeps
	// that name in JSON so schema-v1 replay artifacts stay loadable.
	EpisodesPerThread int `json:"EpisodesPerWF"`
	// ActionsPerEpisode is the total memory operations per episode,
	// including the acquire and release (paper: 100 or 200).
	ActionsPerEpisode int

	// NumSyncVars is the number of atomic (synchronization) locations
	// (paper: 10 or 100); NumDataVars the number of regular locations
	// (paper: 1M).
	NumSyncVars int
	NumDataVars int
	// AddressRangeBytes is the span variables are randomly mapped into;
	// the default (twice the packed size) makes distinct variables
	// co-locate in cache lines, provoking false sharing (Fig. 2).
	AddressRangeBytes uint64

	// StoreFraction is the probability a generated data action is a
	// store rather than a load.
	StoreFraction float64

	// AtomicDelta is the constant every atomic adds; old values per
	// sync variable must be unique multiples of it.
	AtomicDelta uint32

	// DeadlockThreshold is the age, in ticks, beyond which an
	// unanswered request is reported as a deadlock (paper: 1M cycles).
	DeadlockThreshold uint64
	// CheckPeriod is how often the forward-progress scan runs.
	CheckPeriod sim.Tick

	// LogCapacity bounds the in-memory transaction log used for
	// failure reports (0 = default).
	LogCapacity int

	// StopOnFailure halts the simulation at the first detected bug
	// (default behaviour; set KeepGoing to gather multiple failures).
	KeepGoing bool

	// RecordTrace captures the complete execution (every operation plus
	// episode creation/retirement ordering) in Report.Trace so the
	// independent axiomatic checker (internal/checker) can re-verify
	// the run offline, TSOTool-style.
	RecordTrace bool

	// StreamCheck runs the axiomatic checker online: every completed
	// operation and episode retirement is folded into the bounded
	// per-variable state of a checker.Stream as the run progresses, and
	// Report.StreamViolations carries its findings. Unlike RecordTrace
	// it never materializes the execution, so it can ride along on
	// arbitrarily long runs. The folding happens off the critical path,
	// in a dedicated checker goroutine fed through a fixed-capacity
	// SPSC ring (checker.Pipeline); reports are byte-identical to
	// inline folding.
	StreamCheck bool

	// StreamInline forces the online checker to fold events inline on
	// the simulation thread instead of in the pipeline's checker
	// goroutine. The pipeline falls back to inline folding on its own
	// when GOMAXPROCS is 1; this knob pins that mode anywhere — the
	// two must produce byte-identical reports, and determinism triage
	// wants either side of the comparison on demand.
	StreamInline bool
}

// DefaultConfig returns a moderate tester configuration suitable for a
// quick run on the default 8-CU system.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		NumWavefronts:     16,
		ThreadsPerWF:      4,
		EpisodesPerThread: 10,
		ActionsPerEpisode: 100,
		NumSyncVars:       10,
		NumDataVars:       4096,
		StoreFraction:     0.45,
		AtomicDelta:       1,
		DeadlockThreshold: 1_000_000,
		CheckPeriod:       50_000,
		LogCapacity:       4096,
	}
}

func (c Config) withDefaults() Config {
	if c.ThreadsPerWF <= 0 {
		c.ThreadsPerWF = 4
	}
	if c.NumWavefronts <= 0 {
		c.NumWavefronts = 1
	}
	if c.EpisodesPerThread <= 0 {
		c.EpisodesPerThread = 1
	}
	if c.ActionsPerEpisode < 2 {
		c.ActionsPerEpisode = 2
	}
	if c.NumSyncVars <= 0 {
		c.NumSyncVars = 1
	}
	if c.NumDataVars <= 0 {
		c.NumDataVars = 1024
	}
	if c.AtomicDelta == 0 {
		c.AtomicDelta = 1
	}
	if c.StoreFraction <= 0 || c.StoreFraction >= 1 {
		c.StoreFraction = 0.45
	}
	if c.DeadlockThreshold == 0 {
		c.DeadlockThreshold = 1_000_000
	}
	if c.CheckPeriod == 0 {
		c.CheckPeriod = 50_000
	}
	if c.LogCapacity <= 0 {
		c.LogCapacity = 4096
	}
	if c.AddressRangeBytes == 0 {
		c.AddressRangeBytes = 2 * uint64(c.NumSyncVars+c.NumDataVars) * 4
	}
	return c
}

// TotalThreads returns the number of tester threads.
func (c Config) TotalThreads() int { return c.NumWavefronts * c.ThreadsPerWF }

// TotalActions returns the total number of memory operations the run
// will issue.
func (c Config) TotalActions() uint64 {
	return uint64(c.TotalThreads()) * uint64(c.EpisodesPerThread) * uint64(c.ActionsPerEpisode)
}
