package core

import (
	"testing"
	"testing/quick"

	"drftest/internal/mem"
	"drftest/internal/rng"
	"drftest/internal/sim"
	"drftest/internal/viper"
)

func TestDeterminism(t *testing.T) {
	run := func() *Report {
		cfg := DefaultConfig()
		cfg.Seed = 99
		cfg.NumWavefronts = 8
		cfg.EpisodesPerThread = 4
		cfg.ActionsPerEpisode = 30
		k := sim.NewKernel()
		sys := viper.NewSystem(k, viper.SmallCacheConfig(), nil)
		return New(k, sys, cfg).Run()
	}
	a, b := run(), run()
	if a.OpsIssued != b.OpsIssued || a.SimTicks != b.SimTicks ||
		a.EventsExecuted != b.EventsExecuted || a.Transactions != b.Transactions {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if !a.Passed() || !b.Passed() {
		t.Fatal("unexpected failures")
	}
}

func TestSeedChangesRun(t *testing.T) {
	run := func(seed uint64) uint64 {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.NumWavefronts = 4
		cfg.EpisodesPerThread = 3
		cfg.ActionsPerEpisode = 20
		k := sim.NewKernel()
		sys := viper.NewSystem(k, viper.SmallCacheConfig(), nil)
		return New(k, sys, cfg).Run().SimTicks
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical timing (suspicious)")
	}
}

// TestEpisodesPerThreadSemantics pins what the renamed field means:
// EpisodesPerThread is per *thread* — a run retires exactly
// NumWavefronts × ThreadsPerWF × EpisodesPerThread episodes and issues
// exactly that many × ActionsPerEpisode operations (the field's old
// name, EpisodesPerWF, wrongly suggested a per-wavefront total).
func TestEpisodesPerThreadSemantics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 3
	cfg.NumWavefronts = 5
	cfg.ThreadsPerWF = 3
	cfg.EpisodesPerThread = 4
	cfg.ActionsPerEpisode = 12
	k := sim.NewKernel()
	sys := viper.NewSystem(k, viper.SmallCacheConfig(), nil)
	rep := New(k, sys, cfg).Run()
	if !rep.Passed() {
		t.Fatalf("unexpected failures: %v", rep.Failures)
	}
	wantEpisodes := uint64(5 * 3 * 4)
	if rep.EpisodesRetired != wantEpisodes {
		t.Fatalf("retired %d episodes, want threads×episodes = %d", rep.EpisodesRetired, wantEpisodes)
	}
	wantOps := cfg.TotalActions()
	if wantOps != wantEpisodes*12 {
		t.Fatalf("TotalActions = %d, want %d", wantOps, wantEpisodes*12)
	}
	if rep.OpsIssued != wantOps || rep.OpsCompleted != wantOps {
		t.Fatalf("issued/completed %d/%d ops, want %d", rep.OpsIssued, rep.OpsCompleted, wantOps)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.ThreadsPerWF == 0 || cfg.NumDataVars == 0 || cfg.AtomicDelta == 0 ||
		cfg.DeadlockThreshold == 0 || cfg.AddressRangeBytes == 0 {
		t.Fatalf("withDefaults left zeros: %+v", cfg)
	}
	if got := cfg.TotalActions(); got == 0 {
		t.Fatal("TotalActions zero")
	}
}

func TestAddressSpaceProperties(t *testing.T) {
	err := quick.Check(func(seed uint64, nSyncRaw, nDataRaw uint8) bool {
		nSync := int(nSyncRaw%8) + 1
		nData := int(nDataRaw%64) + 1
		rangeBytes := 4 * uint64(nSync+nData) * mem.WordSize
		sp := buildAddressSpace(rng.New(seed, 1), nSync, nData, rangeBytes)
		if len(sp.syncVars) != nSync || len(sp.dataVars) != nData {
			return false
		}
		seen := map[mem.Addr]bool{}
		for _, v := range append(append([]*variable{}, sp.syncVars...), sp.dataVars...) {
			if v.addr%mem.WordSize != 0 || uint64(v.addr) >= rangeBytes || seen[v.addr] {
				return false
			}
			seen[v.addr] = true
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAddressSpaceTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversubscribed range accepted")
		}
	}()
	buildAddressSpace(rng.New(1, 1), 10, 10, 16)
}

// TestEpisodeGenerationIsRaceFree is the §III.A invariant as a
// property test: across any interleaving of episode creation and
// retirement, no variable ever has two live writers, or a live writer
// alongside a foreign live reader.
func TestEpisodeGenerationIsRaceFree(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.NumWavefronts = 4
		cfg.ActionsPerEpisode = 12
		cfg.NumSyncVars = 3
		cfg.NumDataVars = 64
		k := sim.NewKernel()
		sys := viper.NewSystem(k, viper.SmallCacheConfig(), nil)
		tester := New(k, sys, cfg)

		rnd := rng.New(seed, 77)
		var live []*episode
		for step := 0; step < 200; step++ {
			if len(live) == 0 || rnd.Bool(0.6) {
				live = append(live, tester.newEpisode())
			} else {
				idx := rnd.Intn(len(live))
				ep := live[idx]
				// Retire claims without the memory-system round trip.
				for _, v := range ep.claimOrder {
					v.release(ep.id)
				}
				live = append(live[:idx], live[idx+1:]...)
			}
			// Invariant check over every variable.
			liveIDs := map[uint64]bool{}
			for _, ep := range live {
				liveIDs[ep.id] = true
			}
			for _, v := range tester.space.dataVars {
				if v.writer != 0 {
					if !liveIDs[v.writer] {
						return false // stale claim
					}
					for r := range v.readers {
						if r != v.writer && liveIDs[r] {
							return false // concurrent reader + writer
						}
					}
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

// TestEpisodeShape: every generated episode is acquire…actions…release
// on one sync variable, with the configured length.
func TestEpisodeShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ActionsPerEpisode = 17
	cfg.NumDataVars = 128
	k := sim.NewKernel()
	sys := viper.NewSystem(k, viper.SmallCacheConfig(), nil)
	tester := New(k, sys, cfg)
	for i := 0; i < 50; i++ {
		ep := tester.newEpisode()
		if len(ep.ops) != 17 {
			t.Fatalf("episode has %d ops", len(ep.ops))
		}
		if ep.ops[0].kind != opAcquire || ep.ops[0].v != ep.sync {
			t.Fatal("episode must begin with acquire of its sync var")
		}
		if ep.ops[16].kind != opRelease || ep.ops[16].v != ep.sync {
			t.Fatal("episode must end with release of its sync var")
		}
		for _, op := range ep.ops[1:16] {
			if op.kind != opLoad && op.kind != opStore {
				t.Fatal("episode body must be loads/stores")
			}
			if op.v.sync {
				t.Fatal("episode body touched a sync variable (DRF class violation)")
			}
		}
		for _, v := range ep.claimOrder {
			v.release(ep.id)
		}
	}
}

func TestEventLogRing(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Append(LogEntry{Tick: uint64(i), Addr: mem.Addr(i % 2)})
	}
	if l.Total() != 10 {
		t.Fatalf("total %d", l.Total())
	}
	recent := l.Recent(10)
	if len(recent) != 4 || recent[0].Tick != 6 || recent[3].Tick != 9 {
		t.Fatalf("ring contents wrong: %+v", recent)
	}
	forAddr := l.ForAddr(1, 10)
	for _, e := range forAddr {
		if e.Addr != 1 {
			t.Fatal("ForAddr filter broken")
		}
	}
	if len(forAddr) != 2 {
		t.Fatalf("ForAddr returned %d entries", len(forAddr))
	}
	if Dump(recent) == "" {
		t.Fatal("Dump empty")
	}
}

func TestFalseSharingCounter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumSyncVars = 16
	cfg.NumDataVars = 256
	cfg.AddressRangeBytes = 2 * (16 + 256) * 4
	k := sim.NewKernel()
	sys := viper.NewSystem(k, viper.SmallCacheConfig(), nil)
	tester := New(k, sys, cfg)
	if tester.FalseSharingLines() == 0 {
		t.Fatal("dense random mapping produced no sync/data false sharing")
	}
}

func TestFailureKindStrings(t *testing.T) {
	kinds := []FailureKind{FailValueMismatch, FailDuplicateAtomic, FailBadAtomicValue,
		FailDeadlock, FailProtocolFault, FailFinalAudit}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("bad kind string %q", s)
		}
		seen[s] = true
	}
}

// TestKeepGoingCollectsMultipleFailures: with KeepGoing the tester
// gathers several failures from one buggy run rather than stopping at
// the first.
func TestKeepGoingCollectsMultipleFailures(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.NumWavefronts = 8
		cfg.EpisodesPerThread = 8
		cfg.ActionsPerEpisode = 30
		cfg.NumSyncVars = 4
		cfg.NumDataVars = 48
		cfg.StoreFraction = 0.6
		cfg.KeepGoing = true
		k := sim.NewKernel()
		sysCfg := viper.SmallCacheConfig()
		sysCfg.Bugs.NonAtomicRMW = true
		sys := viper.NewSystem(k, sysCfg, nil)
		rep := New(k, sys, cfg).Run()
		if len(rep.Failures) > 1 {
			return // collected several, as intended
		}
	}
	t.Fatal("KeepGoing never collected more than one failure across 8 seeds")
}

// TestExtremeContentionDoesNotPanic: when live episodes claim every
// data variable, generation must degrade to legal sync-variable
// atomics instead of failing (regression: this exact configuration
// panicked the generator at high seeds).
func TestExtremeContentionDoesNotPanic(t *testing.T) {
	for seed := uint64(280); seed < 320; seed++ {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.NumWavefronts = 8
		cfg.ThreadsPerWF = 4
		cfg.EpisodesPerThread = 8
		cfg.ActionsPerEpisode = 30
		cfg.NumSyncVars = 4
		cfg.NumDataVars = 8 // far fewer variables than live claims
		cfg.StoreFraction = 0.6
		k := sim.NewKernel()
		sys := viper.NewSystem(k, viper.SmallCacheConfig(), nil)
		rep := New(k, sys, cfg).Run()
		if !rep.Passed() {
			t.Fatalf("seed %d: false alarm under extreme contention: %v", seed, rep.Failures[0])
		}
		if rep.OpsCompleted != cfg.TotalActions() {
			t.Fatalf("seed %d: ops lost under contention", seed)
		}
	}
}
