package core

import (
	"fmt"

	"drftest/internal/mem"
	"drftest/internal/rng"
)

// AccessRecord identifies one access to a variable, the unit of the
// paper's Table V failure reports. Packed small: sync variables keep
// one record per distinct atomic old value, so the struct size scales
// the checker's per-run footprint.
type AccessRecord struct {
	EpisodeID uint64
	Addr      mem.Addr
	Cycle     uint64
	ThreadID  int32
	WFID      int32
	Value     uint32
}

func (a AccessRecord) String() string {
	return fmt.Sprintf("thread=%d group=%d episode=%d addr=%#x cycle=%d value=%d",
		a.ThreadID, a.WFID, a.EpisodeID, uint64(a.Addr), a.Cycle, a.Value)
}

// variable is one tester location. Sync variables are accessed only by
// atomics; data variables only by loads and stores — the DRF class
// separation of §III.A.
type variable struct {
	id   int
	sync bool
	addr mem.Addr

	// Claims by live episodes enforcing the two §III.A race-freedom
	// rules. writer==0 means unclaimed (episode IDs start at 1).
	readers map[uint64]struct{}
	writer  uint64

	// value is the retired reference value (data variables): what any
	// load outside the writing episode must observe.
	value uint32

	// Atomic bookkeeping (sync variables): returned old values must be
	// unique multiples of the delta; completed counts the responses.
	seenOld   map[uint32]AccessRecord
	completed uint64

	// lastWIdx indexes the address space's lastWriters side slice, -1
	// when the variable was never stored. Keeping the 48-byte record
	// out of line shrinks the slab by ~2/3: a large space has far more
	// variables than any run ever stores to.
	lastWIdx int32
}

// canLoad reports whether episode eps may generate a load of v: no
// *other* live episode may be storing it.
func (v *variable) canLoad(eps uint64) bool {
	return v.writer == 0 || v.writer == eps
}

// ensureReaders lazily allocates the reader-claim map. Most data
// variables in a large address space are never claimed, so the map is
// built on first claim instead of at address-space construction.
func (v *variable) ensureReaders() map[uint64]struct{} {
	if v.readers == nil {
		v.readers = make(map[uint64]struct{})
	}
	return v.readers
}

// canStore reports whether episode eps may generate a store of v: no
// other live episode may be loading or storing it.
func (v *variable) canStore(eps uint64) bool {
	if v.writer != 0 && v.writer != eps {
		return false
	}
	for r := range v.readers {
		if r != eps {
			return false
		}
	}
	return true
}

func (v *variable) claimRead(eps uint64)  { v.ensureReaders()[eps] = struct{}{} }
func (v *variable) claimWrite(eps uint64) { v.writer = eps }

func (v *variable) release(eps uint64) {
	delete(v.readers, eps)
	if v.writer == eps {
		v.writer = 0
	}
}

// addressSpace maps variables to random word-aligned addresses in a
// range (Fig. 2's random variable→address mapping). Because the range
// is only modestly larger than the packed variable footprint, multiple
// variables — including sync next to data — land in the same cache
// line, which is the false-sharing engine of the whole methodology.
type addressSpace struct {
	syncVars []*variable
	dataVars []*variable

	// slab/chosen/addrs are the backing storage, retained so rebuild
	// (campaign reset path) can regenerate the mapping without
	// reallocating a 100k-variable space per seed.
	slab   []variable
	chosen []uint64
	addrs  []mem.Addr

	// lastWriters holds the most recent store record per stored-to
	// variable, indexed by variable.lastWIdx. Dense in touched
	// variables rather than all variables.
	lastWriters []AccessRecord
}

// setLastWriter records the most recent store to v.
func (sp *addressSpace) setLastWriter(v *variable, rec AccessRecord) {
	if v.lastWIdx < 0 {
		v.lastWIdx = int32(len(sp.lastWriters))
		sp.lastWriters = append(sp.lastWriters, rec)
		return
	}
	sp.lastWriters[v.lastWIdx] = rec
}

// lastWriter returns the most recent store record for v, if any.
func (sp *addressSpace) lastWriter(v *variable) (AccessRecord, bool) {
	if v.lastWIdx < 0 {
		return AccessRecord{}, false
	}
	return sp.lastWriters[v.lastWIdx], true
}

func buildAddressSpace(rnd *rng.PCG, numSync, numData int, rangeBytes uint64) *addressSpace {
	sp := &addressSpace{}
	sp.rebuild(rnd, numSync, numData, rangeBytes)
	return sp
}

// rebuild regenerates the random variable→address mapping in place with
// fresh randomness, reusing the variable slab, the sampling bitset, and
// the per-variable maps from a previous build when the shape allows. A
// rebuilt space is semantically indistinguishable from a fresh one:
// every scalar field is reassigned, and retained maps are cleared —
// sound because nothing in the tester depends on map bucket layout or
// iteration order (claims are membership predicates, seenOld is
// lookup-only).
func (sp *addressSpace) rebuild(rnd *rng.PCG, numSync, numData int, rangeBytes uint64) {
	total := numSync + numData
	slots := int(rangeBytes / mem.WordSize)
	if slots < total {
		panic(fmt.Sprintf("core: address range %dB too small for %d variables", rangeBytes, total))
	}

	// Sample `total` distinct word slots from [0, slots). A bitset
	// tracks occupancy: the range is by construction only a small
	// multiple of the variable count, so the set costs slots/8 bytes
	// in one allocation where a map would cost tens of bytes per entry
	// and a hash per probe.
	words := (slots + 63) / 64
	if cap(sp.chosen) < words {
		sp.chosen = make([]uint64, words)
	} else {
		sp.chosen = sp.chosen[:words]
		clear(sp.chosen)
	}
	if cap(sp.addrs) < total {
		sp.addrs = make([]mem.Addr, 0, total)
	} else {
		sp.addrs = sp.addrs[:0]
	}
	for len(sp.addrs) < total {
		s := rnd.Intn(slots)
		if sp.chosen[s>>6]&(1<<(s&63)) != 0 {
			continue
		}
		sp.chosen[s>>6] |= 1 << (s & 63)
		sp.addrs = append(sp.addrs, mem.Addr(s*mem.WordSize))
	}
	// The first numSync sampled slots become sync variables; sampling
	// order is random, so sync variables scatter across the range.
	// Variables live in one slab: a 100k-variable space costs one
	// allocation, not 100k, and reader-claim maps are built lazily on
	// first claim (ensureReaders).
	if len(sp.slab) != total {
		sp.slab = make([]variable, total)
		sp.syncVars = make([]*variable, 0, numSync)
		sp.dataVars = make([]*variable, 0, numData)
	}
	sp.syncVars = sp.syncVars[:0]
	sp.dataVars = sp.dataVars[:0]
	sp.lastWriters = sp.lastWriters[:0]
	for i, a := range sp.addrs {
		v := &sp.slab[i]
		readers, seenOld := v.readers, v.seenOld
		if readers != nil {
			clear(readers)
		}
		*v = variable{id: i, sync: i < numSync, addr: a, readers: readers, lastWIdx: -1}
		if v.sync {
			if seenOld == nil {
				seenOld = make(map[uint32]AccessRecord)
			} else {
				clear(seenOld)
			}
			v.seenOld = seenOld
			sp.syncVars = append(sp.syncVars, v)
		} else {
			sp.dataVars = append(sp.dataVars, v)
		}
	}
}

// falseSharingPairs counts cache lines containing both a sync and a
// data variable — a measure of how much cross-class false sharing the
// mapping created.
func (sp *addressSpace) falseSharingPairs(lineSize int) int {
	// Variables live in a dense range, so a flat per-line table beats a
	// map: index by line number, two role bits per line.
	maxLine := mem.Addr(0)
	for _, v := range sp.syncVars {
		if l := mem.LineAddr(v.addr, lineSize); l > maxLine {
			maxLine = l
		}
	}
	for _, v := range sp.dataVars {
		if l := mem.LineAddr(v.addr, lineSize); l > maxLine {
			maxLine = l
		}
	}
	kind := make([]uint8, maxLine/mem.Addr(lineSize)+1)
	for _, v := range sp.syncVars {
		kind[mem.LineAddr(v.addr, lineSize)/mem.Addr(lineSize)] |= 1
	}
	for _, v := range sp.dataVars {
		kind[mem.LineAddr(v.addr, lineSize)/mem.Addr(lineSize)] |= 2
	}
	n := 0
	for _, k := range kind {
		if k == 3 {
			n++
		}
	}
	return n
}
