package core

import (
	"fmt"
	"strings"

	"drftest/internal/mem"
)

// LogKind distinguishes request issue records from response records.
type LogKind uint8

const (
	LogIssue LogKind = iota
	LogResp
)

func (k LogKind) String() string {
	if k == LogIssue {
		return "issue"
	}
	return "resp"
}

// LogEntry is one memory transaction in the tester's rolling event log
// (§III.D): enough identity to reconstruct the window of activity
// around a failure. Fields are packed small on purpose — the ring
// holds thousands of entries and is part of every tester's footprint.
type LogEntry struct {
	Tick      uint64
	Addr      mem.Addr
	EpisodeID uint64
	Value     uint32
	ThreadID  int32
	WFID      int32
	Op        mem.Op
	Kind      LogKind
	Acquire   bool
	Release   bool
}

func (e LogEntry) String() string {
	sem := ""
	if e.Acquire {
		sem = " acq"
	}
	if e.Release {
		sem += " rel"
	}
	return fmt.Sprintf("%8d %-5s %s%s addr=%#06x val=%-6d thr=%d wf=%d eps=%d",
		e.Tick, e.Kind.String(), e.Op, sem, uint64(e.Addr), e.Value, e.ThreadID, e.WFID, e.EpisodeID)
}

// EventLog is a fixed-capacity ring of recent transactions.
type EventLog struct {
	entries []LogEntry
	next    int
	full    bool
	total   uint64
}

// NewEventLog creates a log holding the last capacity entries.
func NewEventLog(capacity int) *EventLog {
	return &EventLog{entries: make([]LogEntry, capacity)}
}

// Append records one transaction.
func (l *EventLog) Append(e LogEntry) {
	l.entries[l.next] = e
	l.next++
	l.total++
	if l.next == len(l.entries) {
		l.next = 0
		l.full = true
	}
}

// Reset empties the log without reallocating its ring. Stale entries
// past the write cursor are unreachable (snapshot reads [:next] until
// the ring wraps again), so they need no clearing.
func (l *EventLog) Reset() {
	l.next = 0
	l.full = false
	l.total = 0
}

// Total returns the number of transactions ever recorded.
func (l *EventLog) Total() uint64 { return l.total }

// Recent returns up to n most-recent entries, oldest first.
func (l *EventLog) Recent(n int) []LogEntry {
	all := l.snapshot()
	if n < len(all) {
		all = all[len(all)-n:]
	}
	return all
}

// ForAddr returns up to n most-recent entries touching addr, oldest
// first — the "zoom into the window" view a protocol designer uses.
func (l *EventLog) ForAddr(addr mem.Addr, n int) []LogEntry {
	all := l.snapshot()
	var out []LogEntry
	for _, e := range all {
		if e.Addr == addr {
			out = append(out, e)
		}
	}
	if n < len(out) {
		out = out[len(out)-n:]
	}
	return out
}

func (l *EventLog) snapshot() []LogEntry {
	if !l.full {
		return append([]LogEntry(nil), l.entries[:l.next]...)
	}
	out := make([]LogEntry, 0, len(l.entries))
	out = append(out, l.entries[l.next:]...)
	out = append(out, l.entries[:l.next]...)
	return out
}

// Dump renders entries as a table.
func Dump(entries []LogEntry) string {
	var b strings.Builder
	for _, e := range entries {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
