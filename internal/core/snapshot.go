package core

import (
	"fmt"

	"drftest/internal/checker"
	"drftest/internal/mem"
	"drftest/internal/rng"
	"drftest/internal/viper"
)

// This file implements the tester half of the checkpoint/fork design:
//
//   - Fork rearms the tester for a new seed by restoring its systems
//     from a warm snapshot instead of Reset-scanning them — the
//     campaign fast path.
//   - Snapshot/Restore deep-capture the tester's own run state so a
//     checkpointed replay (cmd/replay -bisect) can rewind a run to an
//     earlier tick and re-execute it bit-identically.
//
// Restore reinstates state into the SAME object graph: pre-bound
// closures (wavefront issueFn, heartbeatFn, sequencer deliverFn) keep
// working because the objects they captured are retained and only
// their contents change. Pointers into the variable slab stay valid
// for the same reason. Live episodes are the exception — nothing
// pre-binds them (issue/retire reach them via thr.ep), so Restore
// installs fresh structs.

// spaceSave captures the address space: every slab variable (claims,
// reference values, atomic bookkeeping) plus the random address
// mapping.
type spaceSave struct {
	slab        []variable
	addrs       []mem.Addr
	lastWriters []AccessRecord
}

// episodeSave captures one live episode. Variable pointers are
// retained by identity — they index the retained slab.
type episodeSave struct {
	id         uint64
	sync       *variable
	ops        []genOp
	next       int
	createSeq  uint64
	traceSeq   int
	writes     map[int]uint32
	claims     map[int]*variable
	claimOrder []*variable
}

type threadSave struct {
	ep           *episodeSave
	episodesDone int
	curOp        genOp
}

type wfSave struct {
	outstanding int
	finished    bool
}

type logSave struct {
	entries []LogEntry
	next    int
	full    bool
	total   uint64
}

// TesterSnapshot captures a tester's complete mid-run state; obtain
// via Snapshot, reinstate via Restore.
type TesterSnapshot struct {
	cfg     Config
	rnd     rng.PCG
	space   spaceSave
	threads []threadSave
	wfs     []wfSave
	log     logSave

	failures     []*Failure
	deadlockSeen bool
	lastWorkTick uint64
	genSeq       uint64

	traceOps []checker.Op
	epMeta   map[uint64]checker.EpisodeMeta
	stream   *checker.StreamSnapshot

	nextReqID     uint64
	nextEpisodeID uint64
	storeValue    uint32
	finishedWFs   int
	done          bool

	// reqSlab is the slice header only: slab slots are write-once
	// within a run, and a restored replay re-issues the identical
	// requests into the identical slots.
	reqSlab []mem.Request
	epFree  []*episode

	opsIssued, opsCompleted, episodesRetired uint64
}

// OpsCompleted returns the number of operations completed so far — the
// monotone progress counter replay bisection searches for deadlocks.
func (t *Tester) OpsCompleted() uint64 { return t.opsCompleted }

// Report summarizes the run so far: the stepped-execution companion of
// Run, for callers that drive the kernel in slices (Start +
// Kernel.Run + Finish + Report, as checkpointed replay does).
func (t *Tester) Report() *Report { return t.report() }

// FailureCount returns the number of failures detected so far.
func (t *Tester) FailureCount() int { return len(t.failures) }

// CanCheckpoint reports whether this tester supports mid-run
// Snapshot/Restore. Every component now does: the online stream
// checker — historically the one holdout, because its verification
// frontier only moved forward — gained Snapshot/Restore of its own
// (checker.StreamSnapshot), so online checking composes with
// checkpointed replay and campaign forking. The method is retained as
// the callers' seam for any future non-checkpointable component.
func (t *Tester) CanCheckpoint() error {
	return nil
}

func saveVar(v *variable) variable {
	s := *v
	if v.readers != nil {
		s.readers = make(map[uint64]struct{}, len(v.readers))
		for r := range v.readers {
			s.readers[r] = struct{}{}
		}
	}
	if v.seenOld != nil {
		s.seenOld = make(map[uint32]AccessRecord, len(v.seenOld))
		for k, rec := range v.seenOld {
			s.seenOld[k] = rec
		}
	}
	return s
}

func restoreVar(v *variable, s *variable) {
	readers, seenOld := v.readers, v.seenOld
	*v = *s
	v.readers, v.seenOld = readers, seenOld
	if s.readers != nil {
		if v.readers == nil {
			v.readers = make(map[uint64]struct{}, len(s.readers))
		} else {
			clear(v.readers)
		}
		for r := range s.readers {
			v.readers[r] = struct{}{}
		}
	} else if v.readers != nil {
		clear(v.readers)
	}
	if s.seenOld != nil {
		if v.seenOld == nil {
			v.seenOld = make(map[uint32]AccessRecord, len(s.seenOld))
		} else {
			clear(v.seenOld)
		}
		for k, rec := range s.seenOld {
			v.seenOld[k] = rec
		}
	} else if v.seenOld != nil {
		clear(v.seenOld)
	}
}

func saveEpisode(ep *episode) *episodeSave {
	s := &episodeSave{
		id:         ep.id,
		sync:       ep.sync,
		ops:        append([]genOp(nil), ep.ops...),
		next:       ep.next,
		createSeq:  ep.createSeq,
		traceSeq:   ep.traceSeq,
		writes:     make(map[int]uint32, len(ep.writes)),
		claims:     make(map[int]*variable, len(ep.claims)),
		claimOrder: append([]*variable(nil), ep.claimOrder...),
	}
	for k, v := range ep.writes {
		s.writes[k] = v
	}
	for k, v := range ep.claims {
		s.claims[k] = v
	}
	return s
}

func restoreEpisode(s *episodeSave) *episode {
	ep := &episode{
		id:         s.id,
		sync:       s.sync,
		ops:        append([]genOp(nil), s.ops...),
		next:       s.next,
		createSeq:  s.createSeq,
		traceSeq:   s.traceSeq,
		writes:     make(map[int]uint32, len(s.writes)),
		claims:     make(map[int]*variable, len(s.claims)),
		claimOrder: append([]*variable(nil), s.claimOrder...),
	}
	for k, v := range s.writes {
		ep.writes[k] = v
	}
	for k, v := range s.claims {
		ep.claims[k] = v
	}
	return ep
}

// Snapshot captures the tester's complete state. Pair with kernel and
// system snapshots taken at the same instant for a consistent cut.
// Panics if the tester cannot checkpoint (CanCheckpoint).
func (t *Tester) Snapshot() *TesterSnapshot {
	if err := t.CanCheckpoint(); err != nil {
		panic(err.Error())
	}
	s := &TesterSnapshot{
		cfg: t.cfg,
		rnd: *t.rnd,
		space: spaceSave{
			slab:        make([]variable, len(t.space.slab)),
			addrs:       append([]mem.Addr(nil), t.space.addrs...),
			lastWriters: append([]AccessRecord(nil), t.space.lastWriters...),
		},
		threads:       make([]threadSave, len(t.threads)),
		wfs:           make([]wfSave, len(t.wfs)),
		log:           logSave{entries: append([]LogEntry(nil), t.log.entries...), next: t.log.next, full: t.log.full, total: t.log.total},
		failures:      append([]*Failure(nil), t.failures...),
		deadlockSeen:  t.deadlockSeen,
		lastWorkTick:  t.lastWorkTick,
		genSeq:        t.genSeq,
		nextReqID:     t.nextReqID,
		nextEpisodeID: t.nextEpisodeID,
		storeValue:    t.storeValue,
		finishedWFs:   t.finishedWFs,
		done:          t.done,
		reqSlab:       t.reqSlab,
		epFree:        append([]*episode(nil), t.epFree...),

		opsIssued:       t.opsIssued,
		opsCompleted:    t.opsCompleted,
		episodesRetired: t.episodesRetired,
	}
	for i := range t.space.slab {
		s.space.slab[i] = saveVar(&t.space.slab[i])
	}
	for i, thr := range t.threads {
		ts := threadSave{episodesDone: thr.episodesDone, curOp: thr.curOp}
		if thr.ep != nil {
			ts.ep = saveEpisode(thr.ep)
		}
		s.threads[i] = ts
	}
	for i, wf := range t.wfs {
		s.wfs[i] = wfSave{outstanding: wf.outstanding, finished: wf.finished}
	}
	if t.trace != nil {
		s.traceOps = append([]checker.Op(nil), t.trace.Ops...)
		s.epMeta = make(map[uint64]checker.EpisodeMeta, len(t.epMeta))
		for id, m := range t.epMeta {
			s.epMeta[id] = *m
		}
	}
	if t.stream != nil {
		s.stream = t.stream.Snapshot()
	}
	return s
}

// Restore reinstates a state captured by Snapshot on this tester. The
// kernel and systems must be restored to the matching cut first, and
// the tester's shape (wavefronts, threads, log capacity) must equal
// the snapshot's — Restore rewinds a run, it does not rebuild one.
func (t *Tester) Restore(s *TesterSnapshot) {
	if len(t.threads) != len(s.threads) || len(t.wfs) != len(s.wfs) {
		panic("core: Restore with mismatched wavefront/thread shape")
	}
	if len(t.log.entries) != len(s.log.entries) {
		panic("core: Restore with mismatched log capacity")
	}
	if len(t.space.slab) != len(s.space.slab) {
		panic("core: Restore with mismatched address-space shape")
	}
	if (t.stream != nil) != (s.stream != nil) {
		panic("core: Restore with mismatched stream-checker shape")
	}
	t.cfg = s.cfg
	*t.rnd = s.rnd
	for i := range s.space.slab {
		restoreVar(&t.space.slab[i], &s.space.slab[i])
	}
	t.space.addrs = append(t.space.addrs[:0], s.space.addrs...)
	t.space.lastWriters = append(t.space.lastWriters[:0], s.space.lastWriters...)
	for i, ts := range s.threads {
		thr := t.threads[i]
		thr.episodesDone = ts.episodesDone
		thr.curOp = ts.curOp
		if ts.ep != nil {
			thr.ep = restoreEpisode(ts.ep)
		} else {
			thr.ep = nil
		}
	}
	for i, ws := range s.wfs {
		t.wfs[i].outstanding = ws.outstanding
		t.wfs[i].finished = ws.finished
	}
	copy(t.log.entries, s.log.entries)
	t.log.next, t.log.full, t.log.total = s.log.next, s.log.full, s.log.total
	t.failures = append(t.failures[:0], s.failures...)
	t.deadlockSeen = s.deadlockSeen
	t.lastWorkTick = s.lastWorkTick
	t.genSeq = s.genSeq
	if t.trace != nil {
		t.trace.Ops = append(t.trace.Ops[:0], s.traceOps...)
		clear(t.epMeta)
		for id, m := range s.epMeta {
			mc := m
			t.epMeta[id] = &mc
		}
	}
	if t.stream != nil {
		t.stream.Restore(s.stream)
	}
	t.nextReqID = s.nextReqID
	t.nextEpisodeID = s.nextEpisodeID
	t.storeValue = s.storeValue
	t.finishedWFs = s.finishedWFs
	t.done = s.done
	t.reqSlab = s.reqSlab
	t.epFree = append(t.epFree[:0], s.epFree...)
	t.opsIssued = s.opsIssued
	t.opsCompleted = s.opsCompleted
	t.episodesRetired = s.episodesRetired
}

// Fork rearms the tester and its systems for a fresh run from seed by
// restoring the systems from a warm snapshot instead of Reset-scanning
// them: a snapshot armed over a quiescent system makes each per-seed
// restore O(state touched since the snapshot) where System.Reset pays
// O(cache capacity) invalidation scans every time. snaps must hold one
// snapshot per system, taken at a clean (just-built or just-reset)
// quiescent point of the SAME configuration. After Fork the subsequent
// Run is bit-identical to one on a freshly built tester with this
// seed — the same contract as Reset, pinned by the same tests.
func (t *Tester) Fork(seed uint64, snaps []*viper.SystemSnapshot) {
	if len(snaps) != len(t.systems) {
		panic(fmt.Sprintf("core: Fork with %d snapshots for %d systems", len(snaps), len(t.systems)))
	}
	t.k.Reset()
	for i, sys := range t.systems {
		sys.Restore(snaps[i])
	}
	t.Reset(seed)
}
