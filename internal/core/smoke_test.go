package core

import (
	"testing"

	"drftest/internal/coverage"
	"drftest/internal/sim"
	"drftest/internal/viper"
)

func runTester(t *testing.T, sysCfg viper.Config, cfg Config) (*Report, *coverage.Collector) {
	t.Helper()
	k := sim.NewKernel()
	col := coverage.NewCollector(viper.NewTCPSpec(), viper.NewTCCSpec())
	sys := viper.NewSystem(k, sysCfg, col)
	tester := New(k, sys, cfg)
	rep := tester.Run()
	return rep, col
}

func TestSmokeCorrectProtocolPasses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumWavefronts = 8
	cfg.EpisodesPerThread = 5
	cfg.ActionsPerEpisode = 20
	rep, col := runTester(t, viper.SmallCacheConfig(), cfg)
	for _, f := range rep.Failures {
		t.Errorf("unexpected failure: %s", f.TableV())
	}
	if rep.OpsIssued != cfg.TotalActions() {
		t.Errorf("issued %d ops, want %d", rep.OpsIssued, cfg.TotalActions())
	}
	if rep.OpsCompleted != rep.OpsIssued {
		t.Errorf("completed %d of %d ops", rep.OpsCompleted, rep.OpsIssued)
	}
	l1 := col.Matrix("GPU-L1").Summarize(nil)
	l2 := col.Matrix("GPU-L2").Summarize(nil)
	t.Logf("sim ticks=%d events=%d episodes=%d falseSharedLines=%d", rep.SimTicks, rep.EventsExecuted, rep.EpisodesRetired, rep.FalseSharedLines)
	t.Logf("L1 %s", l1)
	t.Logf("L2 %s", l2)
	if l1.Active == 0 || l2.Active == 0 {
		t.Fatal("no transitions recorded")
	}
}
