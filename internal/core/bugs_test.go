package core

import (
	"testing"

	"drftest/internal/coverage"
	"drftest/internal/sim"
	"drftest/internal/viper"
)

// bugConfig is a contention-heavy tester setup: few variables, dense
// mapping, lots of false sharing — the configuration §V recommends for
// exposing racing-write bugs quickly.
func bugConfig(seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.NumWavefronts = 8
	cfg.ThreadsPerWF = 4
	cfg.EpisodesPerThread = 8
	cfg.ActionsPerEpisode = 30
	cfg.NumSyncVars = 4
	cfg.NumDataVars = 48
	cfg.StoreFraction = 0.6
	return cfg
}

func runWithBugs(t *testing.T, bugs viper.BugSet, cfg Config) *Report {
	t.Helper()
	k := sim.NewKernel()
	col := coverage.NewCollector(viper.NewTCPSpec(), viper.NewTCCSpec())
	sysCfg := viper.SmallCacheConfig()
	sysCfg.Bugs = bugs
	sys := viper.NewSystem(k, sysCfg, col)
	tester := New(k, sys, cfg)
	return tester.Run()
}

func hasKind(rep *Report, kind FailureKind) bool {
	for _, f := range rep.Failures {
		if f.Kind == kind {
			return true
		}
	}
	return false
}

func kinds(rep *Report) []FailureKind {
	var out []FailureKind
	for _, f := range rep.Failures {
		out = append(out, f.Kind)
	}
	return out
}

// detectAcrossSeeds asserts the bug is caught for most seeds (a single
// seed may randomly fail to provoke the race) and that at least one
// failure of the wanted kinds appears overall.
func detectAcrossSeeds(t *testing.T, bugs viper.BugSet, want map[FailureKind]bool, seeds int, mut func(*Config)) {
	t.Helper()
	detected := 0
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		cfg := bugConfig(seed)
		if mut != nil {
			mut(&cfg)
		}
		rep := runWithBugs(t, bugs, cfg)
		matched := false
		for _, f := range rep.Failures {
			if want[f.Kind] {
				matched = true
			}
		}
		if matched {
			detected++
		} else if len(rep.Failures) > 0 {
			t.Logf("seed %d: unexpected failure kinds %v", seed, kinds(rep))
		}
	}
	t.Logf("detected in %d/%d seeds", detected, seeds)
	if detected == 0 {
		t.Fatalf("bug %+v never detected across %d seeds", bugs, seeds)
	}
	if detected < seeds/2 {
		t.Errorf("bug %+v detected in only %d/%d seeds; tester is too weak", bugs, detected, seeds)
	}
}

func TestDetectsLostWriteRace(t *testing.T) {
	detectAcrossSeeds(t,
		viper.BugSet{LostWriteRace: true},
		map[FailureKind]bool{FailValueMismatch: true, FailFinalAudit: true},
		8, nil)
}

func TestDetectsNonAtomicRMW(t *testing.T) {
	detectAcrossSeeds(t,
		viper.BugSet{NonAtomicRMW: true},
		map[FailureKind]bool{FailDuplicateAtomic: true, FailBadAtomicValue: true, FailValueMismatch: true, FailFinalAudit: true},
		8, nil)
}

func TestDetectsDroppedWBAckAsDeadlock(t *testing.T) {
	detectAcrossSeeds(t,
		viper.BugSet{DropWBAckEvery: 20},
		map[FailureKind]bool{FailDeadlock: true},
		4, func(cfg *Config) {
			cfg.DeadlockThreshold = 20_000
			cfg.CheckPeriod = 5_000
		})
}

func TestDetectsStaleAcquire(t *testing.T) {
	detectAcrossSeeds(t,
		viper.BugSet{StaleAcquire: true},
		map[FailureKind]bool{FailValueMismatch: true},
		8, nil)
}

// TestTableVReportShape checks the failure report carries the paper's
// Table V fields: both accesses identified by thread, group, episode,
// address, cycle, and value.
func TestTableVReportShape(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		rep := runWithBugs(t, viper.BugSet{LostWriteRace: true}, bugConfig(seed))
		for _, f := range rep.Failures {
			if f.Kind != FailValueMismatch || f.LastWriter == nil || f.LastReader == nil {
				continue
			}
			if f.LastReader.Cycle == 0 || f.LastWriter.Cycle == 0 {
				t.Fatalf("report missing cycles: %s", f.TableV())
			}
			if len(f.Window) == 0 {
				t.Fatalf("report missing transaction window: %s", f.TableV())
			}
			tv := f.TableV()
			for _, want := range []string{"Thread ID", "Episode ID", "Cycle", "Read/Written Value"} {
				if !contains(tv, want) {
					t.Fatalf("TableV output missing %q:\n%s", want, tv)
				}
			}
			return
		}
	}
	t.Skip("no value-mismatch failure with full reader/writer context found")
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
