package core

import (
	"testing"

	"drftest/internal/checker"
	"drftest/internal/viper"
)

// TestStreamCheckCleanRun runs the tester with the online axiomatic
// checker riding along and asserts it agrees with the offline checker
// replaying the recorded trace: both must find a correct protocol
// clean.
func TestStreamCheckCleanRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumWavefronts = 8
	cfg.EpisodesPerThread = 5
	cfg.ActionsPerEpisode = 20
	cfg.RecordTrace = true
	cfg.StreamCheck = true
	rep, _ := runTester(t, viper.SmallCacheConfig(), cfg)
	for _, f := range rep.Failures {
		t.Errorf("unexpected failure: %s", f.TableV())
	}
	if len(rep.StreamViolations) != 0 {
		t.Fatalf("online checker flagged a clean run: %v", rep.StreamViolations)
	}
	if rep.Trace == nil {
		t.Fatal("no trace recorded")
	}
	if vs := checker.Verify(rep.Trace); len(vs) != 0 {
		t.Fatalf("offline checker disagrees: %v", vs)
	}
}

// TestStreamCheckWithoutTrace verifies StreamCheck works alone: the
// online fold needs no recorded trace, which is its entire point —
// bounded memory on arbitrarily long runs.
func TestStreamCheckWithoutTrace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumWavefronts = 4
	cfg.EpisodesPerThread = 4
	cfg.ActionsPerEpisode = 16
	cfg.StreamCheck = true
	rep, _ := runTester(t, viper.SmallCacheConfig(), cfg)
	if rep.Trace != nil {
		t.Fatal("trace recorded without RecordTrace")
	}
	if len(rep.StreamViolations) != 0 {
		t.Fatalf("online checker flagged a clean run: %v", rep.StreamViolations)
	}
}
