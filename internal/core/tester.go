package core

import (
	"fmt"
	"time"

	"drftest/internal/checker"
	"drftest/internal/mem"
	"drftest/internal/rng"
	"drftest/internal/sim"
	"drftest/internal/viper"
)

type opKind uint8

const (
	opAcquire opKind = iota
	opLoad
	opStore
	opRelease
	// opExtra is a plain (non-acquire, non-release) atomic on the
	// episode's own sync variable, generated only when contention
	// leaves no race-free data action — sync variables are never
	// claimed, so it is always legal under DRF.
	opExtra
)

// traceComponent names the tester in kernel trace entries.
const traceComponent = "gpu-tester"

// testerStream is the PCG stream selector of the tester's main RNG
// (arbitrary, fixed: Reset must reproduce the construction-time stream).
const testerStream = 0xD2F

func opName(k opKind) string {
	switch k {
	case opAcquire:
		return "acquire"
	case opLoad:
		return "load"
	case opStore:
		return "store"
	case opRelease:
		return "release"
	case opExtra:
		return "extra-atomic"
	}
	return "?"
}

// genOp is one pre-generated episode action.
type genOp struct {
	kind     opKind
	v        *variable
	storeVal uint32
}

// episode is one live critical-section-shaped action sequence.
type episode struct {
	id        uint64
	sync      *variable
	ops       []genOp
	next      int
	createSeq uint64
	traceSeq  int
	writes    map[int]uint32 // var id → this episode's latest written value
	claims    map[int]*variable
	// claimOrder lists claimed variables in claim order; fallback
	// generation iterates it instead of the map to stay deterministic.
	claimOrder []*variable
}

// thread is one tester lane.
type thread struct {
	id, wf, lane int
	ep           *episode
	episodesDone int
	curOp        genOp
}

// wavefront is a lockstep group of threads bound to one CU.
type wavefront struct {
	id, cu      int
	threads     []*thread
	outstanding int
	finished    bool
	// issueFn is the wavefront's pre-bound next-round closure, built
	// once at construction so per-round scheduling never allocates.
	issueFn func()
	// issueTag marks issue-round events with a per-wavefront ordering
	// unit for schedule exploration: a chooser may interleave different
	// wavefronts' rounds. Rounds draw from the tester's shared RNG, so
	// they carry no line footprint (dependent with everything).
	issueTag uint64
}

// Tester is the autonomous DRF GPU tester: it generates wavefronts of
// DRF episodes against a VIPER system, checks every response, and
// reports failures with Table V-style context.
type Tester struct {
	k       *sim.Kernel
	cfg     Config
	systems []*viper.System
	seqs    []*viper.Sequencer
	rnd     *rng.PCG

	space   *addressSpace
	threads []*thread
	wfs     []*wavefront
	log     *EventLog

	failures      []*Failure
	deadlockSeen  bool
	lastWorkTick  uint64
	genSeq        uint64
	trace         *checker.Trace
	stream        *checker.Pipeline
	epMeta        map[uint64]*checker.EpisodeMeta
	nextReqID     uint64
	nextEpisodeID uint64
	storeValue    uint32
	finishedWFs   int
	done          bool

	// reqSlab hands out requests in chunks so the issue path pays one
	// allocation per reqSlabSize ops instead of one per op; heartbeatFn
	// is the pre-bound poller closure; epFree recycles retired episodes
	// (their maps and op slices) for the next generation.
	reqSlab     []mem.Request
	heartbeatFn func()
	epFree      []*episode

	// stats
	opsIssued, opsCompleted, episodesRetired uint64
}

// New builds a tester over sys. The tester registers itself as every
// sequencer's client.
func New(k *sim.Kernel, sys *viper.System, cfg Config) *Tester {
	return NewMulti(k, []*viper.System{sys}, cfg)
}

// NewMulti builds one tester spanning several GPU systems (a
// multi-GPU configuration over a shared directory, §III.B): wavefronts
// are distributed round-robin over every CU of every GPU, and the DRF
// checks apply globally.
func NewMulti(k *sim.Kernel, systems []*viper.System, cfg Config) *Tester {
	cfg = cfg.withDefaults()
	t := &Tester{
		k:       k,
		cfg:     cfg,
		systems: systems,
		rnd:     rng.New(cfg.Seed, testerStream),
		log:     NewEventLog(cfg.LogCapacity),
	}
	lineSize := systems[0].Cfg.L1.LineSize
	for _, sys := range systems {
		if sys.Cfg.L1.LineSize != lineSize {
			panic("core: all GPUs under one tester must share a line size")
		}
		t.seqs = append(t.seqs, sys.Seqs...)
	}
	t.space = buildAddressSpace(t.rnd.Split(), cfg.NumSyncVars, cfg.NumDataVars, cfg.AddressRangeBytes)
	if cfg.RecordTrace {
		t.trace = &checker.Trace{AtomicDelta: cfg.AtomicDelta}
		t.epMeta = make(map[uint64]*checker.EpisodeMeta)
	}
	if cfg.StreamCheck {
		t.stream = checker.NewPipeline(cfg.AtomicDelta, cfg.StreamInline)
	}

	numCUs := len(t.seqs)
	for w := 0; w < cfg.NumWavefronts; w++ {
		wf := &wavefront{id: w, cu: w % numCUs}
		wf.issueFn = func() { t.issueRound(wf) }
		wf.issueTag = sim.MakeUnitTag(sim.CompTester, t.k.NewUnit())
		for l := 0; l < cfg.ThreadsPerWF; l++ {
			thr := &thread{id: len(t.threads), wf: w, lane: l}
			t.threads = append(t.threads, thr)
			wf.threads = append(wf.threads, thr)
		}
		t.wfs = append(t.wfs, wf)
	}
	t.heartbeatFn = t.heartbeat
	for _, seq := range t.seqs {
		seq.SetClient(t)
	}
	return t
}

// Reset rearms the tester for a fresh run from seed over the same
// (already-reset) kernel and systems: episode, claim, reference and
// failure state is cleared, the main RNG is reseeded, and the random
// variable→address mapping is regenerated, so the subsequent Run is
// bit-identical to the run of a freshly constructed Tester with
// cfg.Seed = seed. The request slab, episode free list, wavefront
// wiring, and pre-bound closures are retained — their contents are
// fully reinitialized on reuse — which is what makes a campaign's
// reset-per-seed loop allocation-light. The caller must reset the
// kernel (and each system) first; the tester's pending events must be
// gone before its state is recycled.
func (t *Tester) Reset(seed uint64) {
	t.cfg.Seed = seed
	*t.rnd = *rng.New(seed, testerStream)
	t.log.Reset()
	t.space.rebuild(t.rnd.Split(), t.cfg.NumSyncVars, t.cfg.NumDataVars, t.cfg.AddressRangeBytes)
	for _, thr := range t.threads {
		thr.ep = nil
		thr.episodesDone = 0
		thr.curOp = genOp{}
	}
	for _, wf := range t.wfs {
		wf.outstanding = 0
		wf.finished = false
	}
	t.failures = nil
	t.deadlockSeen = false
	t.lastWorkTick = 0
	t.genSeq = 0
	if t.cfg.RecordTrace {
		t.trace = &checker.Trace{AtomicDelta: t.cfg.AtomicDelta}
		t.epMeta = make(map[uint64]*checker.EpisodeMeta)
	}
	if t.cfg.StreamCheck {
		// Reuse the pipeline (its ring and the stream's fold maps)
		// across runs; rebuild only when the inline knob changed.
		if t.stream != nil && t.stream.ForcedInline() == t.cfg.StreamInline {
			t.stream.Reset(t.cfg.AtomicDelta)
		} else {
			if t.stream != nil {
				t.stream.Close()
			}
			t.stream = checker.NewPipeline(t.cfg.AtomicDelta, t.cfg.StreamInline)
		}
	}
	t.nextReqID = 0
	t.nextEpisodeID = 0
	t.storeValue = 0
	t.finishedWFs = 0
	t.done = false
	t.opsIssued, t.opsCompleted, t.episodesRetired = 0, 0, 0
}

// ResetWithConfig is Reset for a run whose tester configuration also
// changes (a campaign dealing each batch a different config corner).
// The wavefront/thread arrays are rebuilt only when the shape
// (NumWavefronts/ThreadsPerWF) actually changed, and the log only when
// its capacity did, so corner churn keeps the reset path's
// allocation-light behavior for same-shape corners. The same contract
// as Reset applies: kernel and systems must already be reset, and the
// subsequent Run is bit-identical to a freshly built Tester with this
// config and seed. cfg.Seed is overridden by seed.
func (t *Tester) ResetWithConfig(seed uint64, cfg Config) {
	cfg = cfg.withDefaults()
	old := t.cfg
	t.cfg = cfg
	if cfg.NumWavefronts != old.NumWavefronts || cfg.ThreadsPerWF != old.ThreadsPerWF {
		t.threads = t.threads[:0]
		t.wfs = t.wfs[:0]
		numCUs := len(t.seqs)
		for w := 0; w < cfg.NumWavefronts; w++ {
			wf := &wavefront{id: w, cu: w % numCUs}
			wf.issueFn = func() { t.issueRound(wf) }
			wf.issueTag = sim.MakeUnitTag(sim.CompTester, t.k.NewUnit())
			for l := 0; l < cfg.ThreadsPerWF; l++ {
				thr := &thread{id: len(t.threads), wf: w, lane: l}
				t.threads = append(t.threads, thr)
				wf.threads = append(wf.threads, thr)
			}
			t.wfs = append(t.wfs, wf)
		}
	}
	if cfg.LogCapacity != old.LogCapacity {
		t.log = NewEventLog(cfg.LogCapacity)
	}
	// Reset only rebuilds the trace/stream checkers when the new config
	// enables them; clear stale ones here so a corner that disables
	// checking doesn't report the previous corner's trace.
	if !cfg.RecordTrace {
		t.trace = nil
		t.epMeta = nil
	}
	if !cfg.StreamCheck {
		if t.stream != nil {
			t.stream.Close()
		}
		t.stream = nil
	}
	t.Reset(seed)
}

// FalseSharingLines reports how many cache lines mix sync and data
// variables under the run's random mapping.
func (t *Tester) FalseSharingLines() int {
	return t.space.falseSharingPairs(t.systems[0].Cfg.L1.LineSize)
}

// Log exposes the rolling transaction log.
func (t *Tester) Log() *EventLog { return t.log }

// Failures returns the bugs detected so far.
func (t *Tester) Failures() []*Failure { return t.failures }

// Trace returns the recorded execution (nil unless Config.RecordTrace
// was set), with episode metadata finalized.
func (t *Tester) Trace() *checker.Trace {
	if t.trace == nil {
		return nil
	}
	t.report() // finalizes trace.Episodes
	return t.trace
}

// Start schedules the first lockstep round of every wavefront and the
// forward-progress heartbeat.
func (t *Tester) Start() {
	for _, wf := range t.wfs {
		t.k.ScheduleTagged(0, wf.issueTag, wf.issueFn)
	}
	t.k.Schedule(t.cfg.CheckPeriod, t.heartbeatFn)
}

// Run executes the whole test: start, simulate to completion, final
// audit. It returns the run's report.
func (t *Tester) Run() *Report {
	start := time.Now()
	t.Start()
	t.k.RunUntilIdle()
	t.Finish()
	r := t.report()
	r.WallTime = time.Since(start)
	return r
}

// issueRound issues the next action of every unfinished thread in wf.
func (t *Tester) issueRound(wf *wavefront) {
	if t.k.Stopped() || wf.finished {
		return
	}
	issued := 0
	for _, thr := range wf.threads {
		if thr.episodesDone >= t.cfg.EpisodesPerThread {
			continue
		}
		if thr.ep == nil {
			thr.ep = t.newEpisode()
		}
		op := thr.ep.ops[thr.ep.next]
		thr.ep.next++
		thr.curOp = op
		t.issueOp(wf, thr, op)
		issued++
	}
	if issued == 0 {
		wf.finished = true
		t.finishedWFs++
		if t.finishedWFs == len(t.wfs) {
			t.done = true
		}
	}
}

// reqSlabSize is the request-arena chunk length. Chunks stay reachable
// while any of their requests is in flight, so larger chunks trade a
// little retention for fewer allocations.
const reqSlabSize = 256

func (t *Tester) issueOp(wf *wavefront, thr *thread, op genOp) {
	t.nextReqID++
	if len(t.reqSlab) == 0 {
		t.reqSlab = make([]mem.Request, reqSlabSize)
	}
	req := &t.reqSlab[0]
	t.reqSlab = t.reqSlab[1:]
	*req = mem.Request{
		ID:        t.nextReqID,
		Addr:      op.v.addr,
		ThreadID:  thr.id,
		WFID:      thr.wf,
		EpisodeID: thr.ep.id,
	}
	switch op.kind {
	case opAcquire:
		req.Op = mem.OpAtomic
		req.Operand = t.cfg.AtomicDelta
		req.Acquire = true
	case opRelease:
		req.Op = mem.OpAtomic
		req.Operand = t.cfg.AtomicDelta
		req.Release = true
	case opExtra:
		req.Op = mem.OpAtomic
		req.Operand = t.cfg.AtomicDelta
	case opLoad:
		req.Op = mem.OpLoad
	case opStore:
		req.Op = mem.OpStore
		req.Data = op.storeVal
		// The thread's own later loads must observe this value from
		// issue onward (program order).
		thr.ep.writes[op.v.id] = op.storeVal
	}
	wf.outstanding++
	t.opsIssued++
	if t.k.Tracing() {
		t.k.Trace(traceComponent, "issue "+opName(op.kind), uint64(req.Addr))
	}
	t.log.Append(LogEntry{
		Tick: uint64(t.k.Now()), Kind: LogIssue, Op: req.Op, Addr: req.Addr,
		ThreadID: int32(thr.id), WFID: int32(thr.wf), EpisodeID: thr.ep.id,
		Value: req.Data, Acquire: req.Acquire, Release: req.Release,
	})
	t.seqs[wf.cu].Issue(req)
}

// newEpisode generates a fresh episode obeying the §III.A race-freedom
// rules against every live episode.
func (t *Tester) newEpisode() *episode {
	t.nextEpisodeID++
	var ep *episode
	if n := len(t.epFree); n > 0 {
		ep = t.epFree[n-1]
		t.epFree = t.epFree[:n-1]
		clear(ep.writes)
		clear(ep.claims)
		*ep = episode{
			writes:     ep.writes,
			claims:     ep.claims,
			ops:        ep.ops[:0],
			claimOrder: ep.claimOrder[:0],
		}
	} else {
		ep = &episode{
			writes: make(map[int]uint32),
			claims: make(map[int]*variable),
		}
	}
	ep.id = t.nextEpisodeID
	ep.sync = t.space.syncVars[t.rnd.Intn(len(t.space.syncVars))]
	t.genSeq++
	ep.createSeq = t.genSeq
	if t.trace != nil {
		t.epMeta[ep.id] = &checker.EpisodeMeta{ID: ep.id, CreateSeq: ep.createSeq}
	}
	if t.stream != nil {
		t.stream.BeginEpisode(ep.id, ep.createSeq)
	}
	n := t.cfg.ActionsPerEpisode
	if cap(ep.ops) < n {
		ep.ops = make([]genOp, 0, n)
	}
	ep.ops = append(ep.ops, genOp{kind: opAcquire, v: ep.sync})
	for i := 0; i < n-2; i++ {
		ep.ops = append(ep.ops, t.genDataOp(ep))
	}
	ep.ops = append(ep.ops, genOp{kind: opRelease, v: ep.sync})
	return ep
}

func (t *Tester) genDataOp(ep *episode) genOp {
	wantStore := t.rnd.Bool(t.cfg.StoreFraction)
	if v := t.pickData(ep.id, wantStore); v != nil {
		return t.claimOp(ep, v, wantStore)
	}
	// Contention fallbacks: the opposite kind by sampling, then a
	// deterministic scan of the whole variable space, and finally — if
	// literally every data variable is claimed by a live foreign
	// episode — an always-legal plain atomic on the episode's own sync
	// variable. The episode keeps its configured length either way.
	if v := t.pickData(ep.id, !wantStore); v != nil {
		return t.claimOp(ep, v, !wantStore)
	}
	for _, v := range t.space.dataVars {
		if v.canLoad(ep.id) {
			return t.claimOp(ep, v, false)
		}
	}
	return genOp{kind: opExtra, v: ep.sync}
}

// pickData rejection-samples a data variable that episode eps may
// access with the requested kind.
func (t *Tester) pickData(eps uint64, store bool) *variable {
	vars := t.space.dataVars
	for try := 0; try < 64; try++ {
		v := vars[t.rnd.Intn(len(vars))]
		if store && v.canStore(eps) {
			return v
		}
		if !store && v.canLoad(eps) {
			return v
		}
	}
	return nil
}

func (t *Tester) claimOp(ep *episode, v *variable, store bool) genOp {
	if _, seen := ep.claims[v.id]; !seen {
		ep.claims[v.id] = v
		ep.claimOrder = append(ep.claimOrder, v)
	}
	if store {
		v.claimWrite(ep.id)
		t.storeValue++
		return genOp{kind: opStore, v: v, storeVal: t.storeValue}
	}
	v.claimRead(ep.id)
	return genOp{kind: opLoad, v: v}
}

// HandleResponse implements mem.Requestor: every response is checked
// against the reference state before the lockstep round advances.
func (t *Tester) HandleResponse(resp *mem.Response) {
	req := resp.Req
	thr := t.threads[req.ThreadID]
	wf := t.wfs[thr.wf]
	ep := thr.ep
	op := thr.curOp
	t.opsCompleted++
	t.lastWorkTick = resp.Tick
	if t.k.Tracing() {
		t.k.Trace(traceComponent, "resp "+opName(op.kind), uint64(req.Addr))
	}

	t.log.Append(LogEntry{
		Tick: resp.Tick, Kind: LogResp, Op: req.Op, Addr: req.Addr,
		ThreadID: int32(thr.id), WFID: int32(thr.wf), EpisodeID: req.EpisodeID,
		Value: resp.Data, Acquire: req.Acquire, Release: req.Release,
	})

	rec := AccessRecord{
		ThreadID: int32(thr.id), WFID: int32(thr.wf), EpisodeID: req.EpisodeID,
		Addr: req.Addr, Cycle: resp.Tick, Value: resp.Data,
	}

	if t.trace != nil || t.stream != nil {
		top := t.buildTraceOp(thr, ep, op, req, resp)
		if t.trace != nil {
			t.trace.Ops = append(t.trace.Ops, top)
		}
		if t.stream != nil {
			t.stream.Observe(top)
		}
	}

	switch op.kind {
	case opLoad:
		t.checkLoad(ep, op.v, rec, resp)
	case opStore:
		wrec := rec
		wrec.Value = req.Data
		t.space.setLastWriter(op.v, wrec)
	case opAcquire, opRelease, opExtra:
		t.checkAtomic(op.v, rec)
		if op.kind == opRelease {
			t.retire(thr, ep)
		}
	}

	wf.outstanding--
	if wf.outstanding == 0 && !t.k.Stopped() {
		t.k.ScheduleTagged(1, wf.issueTag, wf.issueFn)
	}
}

// checkLoad enforces the DRF value rule: a load sees the episode's own
// latest store to the variable, or the globally retired value.
func (t *Tester) checkLoad(ep *episode, v *variable, rec AccessRecord, resp *mem.Response) {
	expected, own := ep.writes[v.id]
	if !own {
		expected = v.value
	}
	if resp.Data == expected {
		return
	}
	// Copy rec on the failure path only: taking &rec itself would make
	// the parameter escape and heap-allocate on every clean load.
	r := rec
	f := &Failure{
		Kind: FailValueMismatch, Tick: resp.Tick, Addr: v.addr,
		Expected: expected, Got: resp.Data,
		Message: fmt.Sprintf("load of %#x returned %d, expected %d (own-write=%v)",
			uint64(v.addr), resp.Data, expected, own),
		LastReader: &r,
		Window:     t.log.ForAddr(v.addr, 16),
	}
	if w, ok := t.space.lastWriter(v); ok {
		f.LastWriter = &w
	}
	t.fail(f)
}

// checkAtomic enforces atomicity: old values of the fetch-adds on a
// sync variable must be unique multiples of the delta, bounded by the
// number of issued atomics.
func (t *Tester) checkAtomic(v *variable, rec AccessRecord) {
	old := rec.Value
	// rec copies live on the failure paths only: a defer closing over
	// rec (or &rec in a Failure) would heap-allocate on every clean
	// atomic.
	if old%t.cfg.AtomicDelta != 0 {
		r := rec
		t.fail(&Failure{
			Kind: FailBadAtomicValue, Tick: rec.Cycle, Addr: v.addr,
			Got: old,
			Message: fmt.Sprintf("atomic on %#x returned %d, not a multiple of delta %d",
				uint64(v.addr), old, t.cfg.AtomicDelta),
			LastReader: &r,
			Window:     t.log.ForAddr(v.addr, 16),
		})
	} else if prev, dup := v.seenOld[old]; dup {
		p, r := prev, rec
		t.fail(&Failure{
			Kind: FailDuplicateAtomic, Tick: rec.Cycle, Addr: v.addr,
			Got: old,
			Message: fmt.Sprintf("two atomics on %#x returned the same old value %d: atomicity violated",
				uint64(v.addr), old),
			LastReader: &p,
			LastWriter: &r,
			Window:     t.log.ForAddr(v.addr, 16),
		})
	}
	v.seenOld[old] = rec
	v.completed++
}

// buildTraceOp converts a completed operation into the axiomatic
// checker's form, shared by the recorded trace and the online stream.
func (t *Tester) buildTraceOp(thr *thread, ep *episode, op genOp, req *mem.Request, resp *mem.Response) checker.Op {
	ep.traceSeq++
	top := checker.Op{
		Var:     op.v.id,
		Sync:    op.v.sync,
		Thread:  thr.id,
		Episode: ep.id,
		Seq:     ep.traceSeq,
	}
	switch op.kind {
	case opLoad:
		top.Kind = checker.OpLoad
		top.Value = resp.Data
	case opStore:
		top.Kind = checker.OpStore
		top.Value = req.Data
	default:
		top.Kind = checker.OpAtomic
		top.Value = resp.Data
	}
	return top
}

// retire completes an episode: its writes become the globally visible
// reference values and its claims are released, legalising new accesses
// by future episodes (§III.C: "a newly written value becomes globally
// visible to other threads after the episode retires").
func (t *Tester) retire(thr *thread, ep *episode) {
	t.genSeq++
	if t.trace != nil {
		if m := t.epMeta[ep.id]; m != nil {
			m.Thread = thr.id
			m.RetireSeq = t.genSeq
		}
	}
	if t.stream != nil {
		t.stream.RetireEpisode(ep.id, t.genSeq)
	}
	for id, val := range ep.writes {
		ep.claims[id].value = val
	}
	for _, v := range ep.claimOrder {
		v.release(ep.id)
	}
	t.episodesRetired++
	// Nothing references a retired episode (its last op has completed
	// and thr.ep is cleared below), so its maps and slices go back to
	// the free list for the next generation.
	t.epFree = append(t.epFree, ep)
	thr.ep = nil
	thr.episodesDone++
}

// heartbeat is the periodic forward-progress check (§III.C): any
// request older than the threshold is reported as a deadlock.
func (t *Tester) heartbeat() {
	if t.done || t.k.Stopped() {
		return
	}
	now := uint64(t.k.Now())
	// Report the oldest over-threshold request (ties broken by ID):
	// outstanding sets are maps, so reporting the first one encountered
	// would vary with iteration order and break run determinism.
	var stuck *mem.Request
	t.forEachOutstanding(func(r *mem.Request) {
		if now-r.IssueTick <= t.cfg.DeadlockThreshold {
			return
		}
		if stuck == nil || r.IssueTick < stuck.IssueTick ||
			(r.IssueTick == stuck.IssueTick && r.ID < stuck.ID) {
			stuck = r
		}
	})
	if stuck == nil {
		t.k.Schedule(t.cfg.CheckPeriod, t.heartbeatFn)
		return
	}
	t.deadlockSeen = true
	if t.k.Tracing() {
		t.k.Trace(traceComponent, "fail "+FailDeadlock.String(), uint64(stuck.Addr))
	}
	t.failures = append(t.failures, &Failure{
		Kind: FailDeadlock, Tick: now, Addr: stuck.Addr,
		Message: fmt.Sprintf("no forward progress: %s outstanding for %d ticks (threshold %d)",
			stuck, now-stuck.IssueTick, t.cfg.DeadlockThreshold),
		Window: t.log.ForAddr(stuck.Addr, 16),
	})
	t.k.Stop()
}

func (t *Tester) forEachOutstanding(visit func(*mem.Request)) {
	for _, sys := range t.systems {
		sys.ForEachOutstanding(visit)
	}
}

func (t *Tester) outstandingCount() int {
	n := 0
	for _, sys := range t.systems {
		n += sys.OutstandingRequests()
	}
	return n
}

func (t *Tester) fail(f *Failure) {
	if t.k.Tracing() {
		t.k.Trace(traceComponent, "fail "+f.Kind.String(), uint64(f.Addr))
	}
	t.failures = append(t.failures, f)
	if !t.cfg.KeepGoing {
		t.k.Stop()
	}
}

// RNGState returns the tester's main PCG stream state, captured for
// replay artifacts (matching states confirm a replay consumed the
// identical randomness).
func (t *Tester) RNGState() (state, inc uint64) { return t.rnd.State() }

// Finish runs the end-of-run audits. With a correct protocol, the
// reference memory, the simulated DRAM, and the L2's cached lines must
// all agree, and nothing may remain outstanding.
func (t *Tester) Finish() {
	for _, sys := range t.systems {
		for _, f := range sys.Faults() {
			t.failures = append(t.failures, &Failure{
				Kind: FailProtocolFault, Tick: uint64(t.k.Now()), Message: f.Error(),
			})
		}
	}
	if len(t.failures) > 0 {
		return
	}

	if n := t.outstandingCount(); n > 0 && !t.done {
		now := uint64(t.k.Now())
		t.forEachOutstanding(func(r *mem.Request) {
			if t.deadlockSeen {
				return
			}
			t.deadlockSeen = true
			t.failures = append(t.failures, &Failure{
				Kind: FailDeadlock, Tick: now, Addr: r.Addr,
				Message: fmt.Sprintf("simulation idle with %d requests outstanding; first: %s (issued at %d)",
					n, r, r.IssueTick),
				Window: t.log.ForAddr(r.Addr, 16),
			})
		})
		return
	}

	if len(t.systems) != 1 || t.systems[0].Mem == nil {
		return // directory-backed runs audit via AuditStore(store)
	}
	t.AuditStore(t.systems[0].Mem.Store())
}

// AuditStore compares the reference state against the backing store
// and the L2's cached lines. The L2 audit runs first: for write-back
// variants it flushes dirty lines into the store, making memory
// authoritative for the variable checks that follow.
func (t *Tester) AuditStore(store *mem.Store) {
	for _, sys := range t.systems {
		for _, m := range sys.AuditL2(store) {
			t.failures = append(t.failures, &Failure{
				Kind:    FailFinalAudit,
				Message: "L2 audit: " + m,
			})
		}
	}
	for _, v := range t.space.dataVars {
		if got := store.ReadWord(v.addr); got != v.value {
			t.failures = append(t.failures, &Failure{
				Kind: FailFinalAudit, Addr: v.addr, Expected: v.value, Got: got,
				Message: fmt.Sprintf("final memory audit: %#x holds %d, reference says %d",
					uint64(v.addr), got, v.value),
				Window: t.log.ForAddr(v.addr, 16),
			})
		}
	}
	for _, v := range t.space.syncVars {
		want := uint32(v.completed) * t.cfg.AtomicDelta
		if got := store.ReadWord(v.addr); got != want {
			t.failures = append(t.failures, &Failure{
				Kind: FailFinalAudit, Addr: v.addr, Expected: want, Got: got,
				Message: fmt.Sprintf("final atomic audit: sync %#x holds %d after %d atomics (want %d)",
					uint64(v.addr), got, v.completed, want),
				Window: t.log.ForAddr(v.addr, 16),
			})
		}
	}
}

// Report summarizes a finished run.
type Report struct {
	Failures []*Failure
	// Trace is the recorded execution when Config.RecordTrace is set
	// (nil otherwise); feed it to checker.Verify for an independent
	// axiomatic re-verification.
	Trace *checker.Trace
	// StreamViolations holds the online axiomatic checker's findings
	// when Config.StreamCheck is set (nil otherwise, and nil for a
	// clean run).
	StreamViolations []checker.Violation
	SimTicks         uint64
	EventsExecuted   uint64
	OpsIssued        uint64
	OpsCompleted     uint64
	EpisodesRetired  uint64
	Transactions     uint64
	FalseSharedLines int
	WallTime         time.Duration
}

// Passed reports whether the run found no bugs.
func (r *Report) Passed() bool { return len(r.Failures) == 0 }

func sortUint64s(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func (t *Tester) report() *Report {
	if t.trace != nil {
		ids := make([]uint64, 0, len(t.epMeta))
		for id := range t.epMeta {
			ids = append(ids, id)
		}
		sortUint64s(ids)
		t.trace.Episodes = t.trace.Episodes[:0]
		for _, id := range ids {
			t.trace.Episodes = append(t.trace.Episodes, *t.epMeta[id])
		}
	}
	var streamViols []checker.Violation
	if t.stream != nil {
		streamViols = t.stream.Finish()
	}
	return &Report{
		Failures:         t.failures,
		Trace:            t.trace,
		StreamViolations: streamViols,
		SimTicks:         t.lastWorkTick,
		EventsExecuted:   t.k.Executed(),
		OpsIssued:        t.opsIssued,
		OpsCompleted:     t.opsCompleted,
		EpisodesRetired:  t.episodesRetired,
		Transactions:     t.log.Total(),
		FalseSharedLines: t.FalseSharingLines(),
	}
}
