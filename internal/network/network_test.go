package network

import (
	"testing"

	"drftest/internal/rng"
	"drftest/internal/sim"
)

func TestLinkLatency(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, "test", 7)
	var arrived sim.Tick
	k.Schedule(3, func() {
		l.Send(func() { arrived = k.Now() })
	})
	k.RunUntilIdle()
	if arrived != 10 {
		t.Fatalf("message arrived at %d, want 10", arrived)
	}
	if l.Sent() != 1 {
		t.Fatalf("Sent=%d", l.Sent())
	}
}

func TestLinkPreservesOrder(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, "fifo", 5)
	var order []int
	for i := 0; i < 20; i++ {
		i := i
		l.Send(func() { order = append(order, i) })
	}
	k.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("ordered link reordered messages: %v", order)
		}
	}
}

func TestJitterLinkBounds(t *testing.T) {
	k := sim.NewKernel()
	l := NewJitterLink(k, "jit", 10, 5, rng.New(1, 1))
	var arrivals []sim.Tick
	for i := 0; i < 200; i++ {
		l.Send(func() { arrivals = append(arrivals, k.Now()) })
	}
	k.RunUntilIdle()
	sawJitter := false
	for _, a := range arrivals {
		if a < 10 || a > 15 {
			t.Fatalf("arrival at %d outside [10,15]", a)
		}
		if a != 10 {
			sawJitter = true
		}
	}
	if !sawJitter {
		t.Fatal("jitter link never jittered")
	}
}

func TestCrossbar(t *testing.T) {
	k := sim.NewKernel()
	c := NewCrossbar(k, "xbar", 4, 2)
	got := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		c.To(i).Send(func() { got[i]++ })
		c.To(i).Send(func() { got[i]++ })
	}
	k.RunUntilIdle()
	for i, n := range got {
		if n != 2 {
			t.Fatalf("port %d received %d messages", i, n)
		}
	}
	if c.TotalSent() != 8 {
		t.Fatalf("TotalSent=%d", c.TotalSent())
	}
}
