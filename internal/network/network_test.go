package network

import (
	"testing"

	"drftest/internal/rng"
	"drftest/internal/sim"
)

func TestLinkLatency(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, "test", 7)
	var arrived sim.Tick
	k.Schedule(3, func() {
		l.Send(func() { arrived = k.Now() })
	})
	k.RunUntilIdle()
	if arrived != 10 {
		t.Fatalf("message arrived at %d, want 10", arrived)
	}
	if l.Sent() != 1 {
		t.Fatalf("Sent=%d", l.Sent())
	}
}

func TestLinkPreservesOrder(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, "fifo", 5)
	var order []int
	for i := 0; i < 20; i++ {
		i := i
		l.Send(func() { order = append(order, i) })
	}
	k.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("ordered link reordered messages: %v", order)
		}
	}
}

func TestJitterLinkBounds(t *testing.T) {
	k := sim.NewKernel()
	l := NewJitterLink(k, "jit", 10, 5, rng.New(1, 1))
	var arrivals []sim.Tick
	for i := 0; i < 200; i++ {
		l.Send(func() { arrivals = append(arrivals, k.Now()) })
	}
	k.RunUntilIdle()
	sawJitter := false
	for _, a := range arrivals {
		if a < 10 || a > 15 {
			t.Fatalf("arrival at %d outside [10,15]", a)
		}
		if a != 10 {
			sawJitter = true
		}
	}
	if !sawJitter {
		t.Fatal("jitter link never jittered")
	}
}

func TestSendMsgFIFOAndInterleaving(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, "typed", 5)
	var order []int
	record := func(a any) { order = append(order, *a.(*int)) }
	vals := make([]int, 40)
	for i := range vals {
		vals[i] = i
		if i%3 == 0 {
			// Interleave the closure path: both ride the same
			// constant-latency link, so arrival order must stay
			// send order across the two paths.
			v := &vals[i]
			l.Send(func() { record(v) })
			continue
		}
		l.SendMsg(record, &vals[i])
	}
	k.RunUntilIdle()
	if len(order) != len(vals) {
		t.Fatalf("delivered %d of %d messages", len(order), len(vals))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("SendMsg reordered messages: %v", order)
		}
	}
	if int(l.Sent()) != len(vals) {
		t.Fatalf("Sent=%d, want %d", l.Sent(), len(vals))
	}
}

func TestSendMsgJitterFallback(t *testing.T) {
	k := sim.NewKernel()
	l := NewJitterLink(k, "jit", 10, 5, rng.New(2, 3))
	var arrivals []sim.Tick
	n := 0
	fn := func(any) { arrivals = append(arrivals, k.Now()); n++ }
	for i := 0; i < 200; i++ {
		l.SendMsg(fn, nil)
	}
	k.RunUntilIdle()
	if n != 200 {
		t.Fatalf("delivered %d of 200", n)
	}
	sawJitter := false
	for _, a := range arrivals {
		if a < 10 || a > 15 {
			t.Fatalf("arrival at %d outside [10,15]", a)
		}
		if a != 10 {
			sawJitter = true
		}
	}
	if !sawJitter {
		t.Fatal("jittered SendMsg never jittered")
	}
}

func TestLinkResetDropsQueuedMessages(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, "reset", 5)
	delivered := 0
	fn := func(any) { delivered++ }
	l.SendMsg(fn, nil)
	l.SendMsg(fn, nil)
	// Reset is only valid alongside a kernel reset: the deliver events
	// and the message FIFO must be dropped together.
	k.Reset()
	l.Reset()
	if l.Sent() != 0 {
		t.Fatalf("Sent=%d after reset", l.Sent())
	}
	l.SendMsg(fn, nil)
	k.RunUntilIdle()
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1 (pre-reset messages must not leak)", delivered)
	}
}

func TestCrossbar(t *testing.T) {
	k := sim.NewKernel()
	c := NewCrossbar(k, "xbar", 4, 2)
	got := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		c.To(i).Send(func() { got[i]++ })
		c.To(i).Send(func() { got[i]++ })
	}
	k.RunUntilIdle()
	for i, n := range got {
		if n != 2 {
			t.Fatalf("port %d received %d messages", i, n)
		}
	}
	if c.TotalSent() != 8 {
		t.Fatalf("TotalSent=%d", c.TotalSent())
	}
}
