// Package network models the on-chip interconnect as Ruby-style
// message buffers: point-to-point links that deliver messages after a
// configurable latency, either in order (virtual channel semantics) or
// with bounded random jitter.
//
// Unordered delivery matters for testing: many coherence bugs only
// appear when two messages race, and the paper's methodology relies on
// the network reordering traffic enough to expose them. Links therefore
// support a jitter window, with all randomness drawn from a
// deterministic per-link stream.
package network

import (
	"drftest/internal/rng"
	"drftest/internal/sim"
)

// pendingMsg is one queued typed delivery: a prebound handler plus its
// argument — the allocation-free alternative to a per-message closure.
type pendingMsg struct {
	fn  func(any)
	arg any
}

// Link is a one-way channel between two components.
type Link struct {
	k       *sim.Kernel
	name    string
	latency sim.Tick
	jitter  sim.Tick
	rnd     *rng.PCG

	// SendMsg state: an ordered link delivers strictly FIFO (constant
	// latency, stable kernel ordering), so one prebound drain closure
	// and a reusable queue serve every typed message.
	msgQ      []pendingMsg
	msgHead   int
	deliverFn func()

	// unit is the link's schedule-exploration ordering domain: every
	// delivery event carries it, so a schedule chooser can interleave
	// different links' traffic but never reorder one link against
	// itself — the FIFO queue/event pairing above depends on that.
	unit uint32

	sent uint64
}

// NewLink creates an ordered link with fixed latency.
func NewLink(k *sim.Kernel, name string, latency sim.Tick) *Link {
	l := &Link{k: k, name: name, latency: latency, unit: k.NewUnit()}
	l.deliverFn = l.deliverNext
	return l
}

// NewJitterLink creates a link whose per-message latency is uniform in
// [latency, latency+jitter]; messages may therefore be reordered.
func NewJitterLink(k *sim.Kernel, name string, latency, jitter sim.Tick, rnd *rng.PCG) *Link {
	l := &Link{k: k, name: name, latency: latency, jitter: jitter, rnd: rnd, unit: k.NewUnit()}
	l.deliverFn = l.deliverNext
	return l
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// SetJitter changes the link's jitter window. Only valid while nothing
// is queued or in flight (e.g. between reset runs of a reused system):
// the ordered path's FIFO matching assumes the window is fixed for the
// life of every queued message. A link built without a random stream
// cannot become jittered.
func (l *Link) SetJitter(jitter sim.Tick) {
	if jitter > 0 && l.rnd == nil {
		panic("network: SetJitter on a link built without a jitter stream")
	}
	l.jitter = jitter
}

// Sent returns the number of messages sent on the link.
func (l *Link) Sent() uint64 { return l.sent }

// ResetStats zeroes the link's traffic counter. The jitter RNG is
// shared with (and reseeded by) the owning system, so it is not
// touched here.
func (l *Link) ResetStats() { l.sent = 0 }

// Send delivers deliver() at the far end after the link's latency.
func (l *Link) Send(deliver func()) {
	l.sent++
	d := l.latency
	if l.jitter > 0 {
		d += sim.Tick(l.rnd.Intn(int(l.jitter) + 1))
	}
	l.k.ScheduleTagged(d, sim.MakeUnitTag(sim.CompLink, l.unit), deliver)
}

// SendMsg delivers fn(arg) at the far end after the link's latency.
// fn should be a prebound per-destination handler: on an ordered link
// the message then rides the reusable FIFO and nothing is allocated
// per send. A jittered link may reorder deliveries, which a FIFO
// cannot express, so it falls back to a per-message closure.
func (l *Link) SendMsg(fn func(any), arg any) {
	l.sendMsgTagged(sim.MakeUnitTag(sim.CompLink, l.unit), fn, arg)
}

// SendMsgLine is SendMsg for a message whose effect is confined to one
// cache line: the delivery event advertises the line to an attached
// schedule chooser so the explorer's independence relation can commute
// it with deliveries touching disjoint lines. Delivery semantics are
// identical to SendMsg.
func (l *Link) SendMsgLine(fn func(any), arg any, lineAddr uint64) {
	l.sendMsgTagged(sim.MakeLineTag(sim.CompLink, l.unit, lineAddr), fn, arg)
}

func (l *Link) sendMsgTagged(tag uint64, fn func(any), arg any) {
	l.sent++
	if l.jitter > 0 {
		d := l.latency + sim.Tick(l.rnd.Intn(int(l.jitter)+1))
		l.k.ScheduleTagged(d, tag, func() { fn(arg) })
		return
	}
	l.msgQ = append(l.msgQ, pendingMsg{fn: fn, arg: arg})
	l.k.ScheduleTagged(l.latency, tag, l.deliverFn)
}

// deliverNext completes the oldest queued typed message. FIFO matching
// is sound for the ordered path only: every SendMsg schedules
// deliverFn exactly latency ticks out and the kernel is stable, so
// deliveries fire in queue order.
func (l *Link) deliverNext() {
	p := l.msgQ[l.msgHead]
	l.msgQ[l.msgHead] = pendingMsg{}
	l.msgHead++
	if l.msgHead == len(l.msgQ) {
		l.msgQ = l.msgQ[:0]
		l.msgHead = 0
	}
	p.fn(p.arg)
}

// Reset drops queued typed messages and zeroes the traffic counter,
// returning the link to its just-built state. Only valid after the
// owning kernel has been reset (the queued delivery events must
// already be gone, or the queue and the events would desynchronize).
func (l *Link) Reset() {
	clear(l.msgQ)
	l.msgQ = l.msgQ[:0]
	l.msgHead = 0
	l.sent = 0
}

// LinkSnapshot captures a link's queued messages and traffic counter.
// Message arguments are retained by pointer: callers that pool message
// objects must restore those objects' contents themselves (the viper
// system does this via its pool registries). The jitter RNG is owned
// and snapshotted by the owning system, not here.
type LinkSnapshot struct {
	msgs []pendingMsg
	sent uint64
}

// Snapshot captures the link's state. The snapshot shares no mutable
// storage with the link.
func (l *Link) Snapshot() *LinkSnapshot {
	s := &LinkSnapshot{sent: l.sent}
	if len(l.msgQ) > l.msgHead {
		s.msgs = append([]pendingMsg(nil), l.msgQ[l.msgHead:]...)
	}
	return s
}

// Restore returns the link to the captured state. As with Reset, only
// valid when the owning kernel is being restored in lockstep (the
// queued delivery events and the queue must stay synchronized).
func (l *Link) Restore(s *LinkSnapshot) {
	clear(l.msgQ)
	l.msgQ = append(l.msgQ[:0], s.msgs...)
	l.msgHead = 0
	l.sent = s.sent
}

// Crossbar bundles the per-destination links of a shared structure
// (e.g. the L2's response paths back to every L1) and tracks aggregate
// traffic.
type Crossbar struct {
	links []*Link
}

// NewCrossbar builds n identical ordered links named prefix.i.
func NewCrossbar(k *sim.Kernel, prefix string, n int, latency sim.Tick) *Crossbar {
	c := &Crossbar{links: make([]*Link, n)}
	for i := range c.links {
		c.links[i] = NewLink(k, prefix, latency)
	}
	return c
}

// NewJitterCrossbar builds n jittered links sharing one random stream
// (an unordered virtual network).
func NewJitterCrossbar(k *sim.Kernel, prefix string, n int, latency, jitter sim.Tick, rnd *rng.PCG) *Crossbar {
	c := &Crossbar{links: make([]*Link, n)}
	for i := range c.links {
		c.links[i] = NewJitterLink(k, prefix, latency, jitter, rnd)
	}
	return c
}

// To returns the link to destination i.
func (c *Crossbar) To(i int) *Link { return c.links[i] }

// SetJitter changes every port's jitter window (see Link.SetJitter).
func (c *Crossbar) SetJitter(jitter sim.Tick) {
	for _, l := range c.links {
		l.SetJitter(jitter)
	}
}

// ResetStats zeroes every port's traffic counter.
func (c *Crossbar) ResetStats() {
	for _, l := range c.links {
		l.ResetStats()
	}
}

// Reset fully resets every port (see Link.Reset).
func (c *Crossbar) Reset() {
	for _, l := range c.links {
		l.Reset()
	}
}

// CrossbarSnapshot captures every port of a crossbar.
type CrossbarSnapshot struct {
	links []*LinkSnapshot
}

// Snapshot captures every port's state.
func (c *Crossbar) Snapshot() *CrossbarSnapshot {
	s := &CrossbarSnapshot{links: make([]*LinkSnapshot, len(c.links))}
	for i, l := range c.links {
		s.links[i] = l.Snapshot()
	}
	return s
}

// Restore returns every port to the captured state.
func (c *Crossbar) Restore(s *CrossbarSnapshot) {
	for i, l := range c.links {
		l.Restore(s.links[i])
	}
}

// TotalSent sums traffic across all ports.
func (c *Crossbar) TotalSent() uint64 {
	var n uint64
	for _, l := range c.links {
		n += l.Sent()
	}
	return n
}
