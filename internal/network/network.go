// Package network models the on-chip interconnect as Ruby-style
// message buffers: point-to-point links that deliver messages after a
// configurable latency, either in order (virtual channel semantics) or
// with bounded random jitter.
//
// Unordered delivery matters for testing: many coherence bugs only
// appear when two messages race, and the paper's methodology relies on
// the network reordering traffic enough to expose them. Links therefore
// support a jitter window, with all randomness drawn from a
// deterministic per-link stream.
package network

import (
	"drftest/internal/rng"
	"drftest/internal/sim"
)

// Link is a one-way channel between two components.
type Link struct {
	k       *sim.Kernel
	name    string
	latency sim.Tick
	jitter  sim.Tick
	rnd     *rng.PCG

	sent uint64
}

// NewLink creates an ordered link with fixed latency.
func NewLink(k *sim.Kernel, name string, latency sim.Tick) *Link {
	return &Link{k: k, name: name, latency: latency}
}

// NewJitterLink creates a link whose per-message latency is uniform in
// [latency, latency+jitter]; messages may therefore be reordered.
func NewJitterLink(k *sim.Kernel, name string, latency, jitter sim.Tick, rnd *rng.PCG) *Link {
	return &Link{k: k, name: name, latency: latency, jitter: jitter, rnd: rnd}
}

// Name returns the link's name.
func (l *Link) Name() string { return l.name }

// Sent returns the number of messages sent on the link.
func (l *Link) Sent() uint64 { return l.sent }

// Send delivers deliver() at the far end after the link's latency.
func (l *Link) Send(deliver func()) {
	l.sent++
	d := l.latency
	if l.jitter > 0 {
		d += sim.Tick(l.rnd.Intn(int(l.jitter) + 1))
	}
	l.k.Schedule(d, deliver)
}

// Crossbar bundles the per-destination links of a shared structure
// (e.g. the L2's response paths back to every L1) and tracks aggregate
// traffic.
type Crossbar struct {
	links []*Link
}

// NewCrossbar builds n identical ordered links named prefix.i.
func NewCrossbar(k *sim.Kernel, prefix string, n int, latency sim.Tick) *Crossbar {
	c := &Crossbar{links: make([]*Link, n)}
	for i := range c.links {
		c.links[i] = NewLink(k, prefix, latency)
	}
	return c
}

// NewJitterCrossbar builds n jittered links sharing one random stream
// (an unordered virtual network).
func NewJitterCrossbar(k *sim.Kernel, prefix string, n int, latency, jitter sim.Tick, rnd *rng.PCG) *Crossbar {
	c := &Crossbar{links: make([]*Link, n)}
	for i := range c.links {
		c.links[i] = NewJitterLink(k, prefix, latency, jitter, rnd)
	}
	return c
}

// To returns the link to destination i.
func (c *Crossbar) To(i int) *Link { return c.links[i] }

// TotalSent sums traffic across all ports.
func (c *Crossbar) TotalSent() uint64 {
	var n uint64
	for _, l := range c.links {
		n += l.Sent()
	}
	return n
}
