package network

import (
	"testing"

	"drftest/internal/audit"
)

// TestSnapshotFieldAudit pins the field sets of the snapshotted
// structs so a new field cannot silently escape
// Snapshot/Restore/Reset/ResetStats (see package audit). The audit
// exists because Link once grew run state (msgQ) that ResetStats —
// correctly — does not touch: every field needs an explicit home.
func TestSnapshotFieldAudit(t *testing.T) {
	audit.Fields(t, Link{}, map[string]string{
		"k":         "config: owning kernel, survives Reset/Restore",
		"name":      "config: fixed at construction",
		"latency":   "config: fixed at construction",
		"jitter":    "config: retuned only via SetJitter between runs",
		"rnd":       "config: jitter stream owned and reseeded by the owning system",
		"msgQ":      "state: queued typed messages — Reset clears, Snapshot/Restore copy (normalized to head 0)",
		"msgHead":   "state: Reset/Restore zero it (queue normalized)",
		"deliverFn": "config: pre-bound drain closure, survives Reset/Restore",
		"unit":      "config: schedule-exploration ordering domain, fixed at construction",
		"sent":      "stats: ResetStats/Reset zero, Snapshot/Restore copy",
	})
	audit.Fields(t, pendingMsg{}, map[string]string{
		"fn":  "state: copied by Link.Snapshot; pooled handler, identity-stable",
		"arg": "state: copied by pointer — pooled message contents are restored by the pool owner",
	})
	audit.Fields(t, Crossbar{}, map[string]string{
		"links": "config: fixed port list; Reset/ResetStats/Snapshot/Restore fan out per port",
	})
}
