// Quickstart: run the autonomous DRF GPU tester against the VIPER
// coherence protocol and report transition coverage.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"drftest"
)

func main() {
	// A small-cache system stresses replacement transitions hardest;
	// the tester needs no other guidance — it generates its own
	// data-race-free workload and checks every response itself.
	sys := drftest.SmallCaches()

	cfg := drftest.DefaultTesterConfig()
	cfg.Seed = 42
	cfg.EpisodesPerThread = 10
	cfg.ActionsPerEpisode = 100

	res := drftest.RunGPUTester(sys, cfg)

	fmt.Printf("issued %d memory operations over %d simulated cycles (%.1fms wall)\n",
		res.Report.OpsIssued, res.Report.SimTicks,
		float64(res.Report.WallTime.Microseconds())/1000)
	fmt.Printf("coverage: %s\n", res.L1)
	fmt.Printf("          %s\n", res.L2)

	if !res.Report.Passed() {
		fmt.Println("coherence bugs detected:")
		for _, f := range res.Report.Failures {
			fmt.Println(f.TableV())
		}
		os.Exit(1)
	}
	fmt.Println("protocol passed: every load, atomic and release behaved per SC-for-DRF")
}
