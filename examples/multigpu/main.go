// Multigpu: the §III.B topology extension — one DRF tester spanning
// two GPUs that share a system directory. Writes and atomics from one
// GPU probe-invalidate the other's L2, which makes the L2's PrbInv
// transitions (Impossible in any single-GPU system) coverable — and
// gives the tester a whole new class of races to check.
//
//	go run ./examples/multigpu
package main

import (
	"fmt"
	"os"

	"drftest"
)

func main() {
	sysCfg := drftest.SmallCaches()
	sysCfg.NumCUs = 4

	cfg := drftest.DefaultTesterConfig()
	cfg.Seed = 7
	cfg.NumWavefronts = 16
	cfg.EpisodesPerThread = 10
	cfg.ActionsPerEpisode = 60
	cfg.NumSyncVars = 8
	cfg.NumDataVars = 1024

	res := drftest.RunMultiGPUTester(2, sysCfg, cfg)
	if !res.Report.Passed() {
		fmt.Println("bugs detected:")
		for _, f := range res.Report.Failures {
			fmt.Println(f.TableV())
		}
		os.Exit(1)
	}
	fmt.Println("2 GPUs × 4 CUs, one tester spanning both — PASS")
	fmt.Printf("  %s\n  %s\n", res.L1, res.L2)
	if inactive := res.L2Matrix.InactiveCells(nil); len(inactive) == 0 {
		fmt.Println("  every defined L2 transition — including the inter-GPU probe row — activated")
	} else {
		fmt.Printf("  still inactive: %v\n", inactive)
	}
}
