// Heterogeneous: reproduce the §IV.C workflow — run the GPU tester
// over the shared CPU–GPU system directory, run the CPU tester
// separately, and take the union of their directory coverage (the
// paper's Fig. 10(c)).
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"os"

	"drftest"
)

func main() {
	// GPU tester with the VIPER L2 sitting on the system directory.
	gpuCfg := drftest.DefaultTesterConfig()
	gpuCfg.Seed = 3
	gpuCfg.EpisodesPerThread = 8
	gpuCfg.ActionsPerEpisode = 60
	gpuRes := drftest.RunGPUTesterHetero(drftest.SmallCaches(), gpuCfg)
	if !gpuRes.Report.Passed() {
		fmt.Println("GPU tester failed:", gpuRes.Report.Failures[0])
		os.Exit(1)
	}
	gpuDir := gpuRes.Directory.Summarize(nil)
	fmt.Printf("GPU tester alone:  %s\n", gpuDir)

	// CPU tester on its own system, as the paper runs it.
	cpuCfg := drftest.DefaultCPUTesterConfig()
	cpuCfg.Seed = 5
	cpuCfg.OpsPerCPU = 5000
	cpuRes := drftest.RunCPUTester(8, cpuCfg)
	if !cpuRes.Report.Passed() {
		fmt.Println("CPU tester failed:", cpuRes.Report.Failures[0])
		os.Exit(1)
	}
	fmt.Printf("CPU tester alone:  %s\n", cpuRes.Directory.Summarize(nil))
	fmt.Printf("                   %s\n", cpuRes.CPUL1)

	// The union: each tester activates directory transitions the other
	// cannot reach (GPU events vs CPU fills, upgrades, probes and
	// write-backs).
	union := gpuRes.Directory.Clone()
	union.Merge(cpuRes.Directory)
	fmt.Printf("testers union:     %s\n", union.Summarize(nil))
	fmt.Println("\nremaining inactive directory cells (DMA-related ones need application runs):")
	fmt.Printf("  %v\n", union.InactiveCells(nil))
}
