// Sweep: explore the tester configuration space (the paper's §IV.A) —
// different cache sizes stress different transition subsets, and only
// the union of several configurations reaches full coverage.
//
//	go run ./examples/sweep
package main

import (
	"fmt"

	"drftest"
)

func main() {
	systems := []struct {
		name string
		cfg  drftest.SystemConfig
	}{
		{"small  (256B L1 / 1KB L2)", drftest.SmallCaches()},
		{"large  (256KB L1 / 1MB L2)", drftest.LargeCaches()},
		{"mixed  (256B L1 / 1MB L2)", drftest.MixedCaches()},
	}

	var unionL1, unionL2 *drftest.CoverageMatrix
	fmt.Println("per-configuration coverage (same test length, same seed):")
	for _, s := range systems {
		cfg := drftest.DefaultTesterConfig()
		cfg.Seed = 7
		cfg.EpisodesPerThread = 10
		cfg.ActionsPerEpisode = 100

		res := drftest.RunGPUTester(s.cfg, cfg)
		if !res.Report.Passed() {
			fmt.Printf("  %s: FAILED (%d bugs)\n", s.name, len(res.Report.Failures))
			continue
		}
		fmt.Printf("  %-28s L1 %5.1f%%  L2 %5.1f%%  (%d ops, %d cycles)\n",
			s.name, 100*res.L1.Coverage(), 100*res.L2.Coverage(),
			res.Report.OpsIssued, res.Report.SimTicks)

		if unionL1 == nil {
			unionL1, unionL2 = res.L1Matrix.Clone(), res.L2Matrix.Clone()
		} else {
			unionL1.Merge(res.L1Matrix)
			unionL2.Merge(res.L2Matrix)
		}
	}

	fmt.Println("\nunion across configurations:")
	fmt.Printf("  %s\n", unionL1.Summarize(nil))
	fmt.Printf("  %s\n", unionL2.Summarize(drftest.L2ImpossibleGPUOnly()))
	if inactive := unionL1.InactiveCells(nil); len(inactive) > 0 {
		fmt.Printf("  still inactive in L1: %v — add a config that stresses these\n", inactive)
	} else {
		fmt.Println("  every reachable L1 transition activated")
	}
}
